// Recovery determinacy tests: killing a worker PE mid-run and recovering
// it by respawn + single-assignment replay must be invisible in the
// results. Every kernel runs at 2/4/8 PEs with a deterministic kill
// schedule (PE 1 dies after its first few worker-to-worker frames), with
// the dynamic mechanisms off and all on, and the dumped arrays are
// compared bit for bit — values and presence masks — against the unkilled
// in-process run. Stats.Recoveries confirms the recovery path actually
// executed rather than the run finishing before the fault fired.
package pods_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	pods "repro"
	"repro/internal/kernels"
)

// killAfterFrames is the deterministic fault schedule: PE 1's endpoint is
// severed the moment it has sent this many frames (data frames and probe
// acks count, so the kill fires mid-run even for a PE whose computation is
// entirely local).
const killAfterFrames = 2

func TestBackendAgreementWithWorkerKill(t *testing.T) {
	for _, k := range kernels.All() {
		t.Run(k.Name, func(t *testing.T) {
			t.Parallel()
			p, err := pods.Compile(k.File(), k.Source)
			if err != nil {
				t.Fatal(err)
			}
			args := k.Args(determinacyN)
			ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
			defer cancel()

			configs := []struct {
				name string
				cfg  pods.ClusterConfig
			}{
				{"base", pods.ClusterConfig{PageElems: determinacyPage}},
				{"steal+adapt+evict", pods.ClusterConfig{
					PageElems: determinacyPage, Steal: true, Adapt: true, CachePages: 2,
					ProbeInterval: 20 * time.Microsecond,
				}},
			}
			for _, pes := range []int{2, 4, 8} {
				for _, c := range configs {
					label := fmt.Sprintf("%s@%d+kill", c.name, pes)

					ref := c.cfg
					ref.NumPEs = pes
					refRes, err := p.ExecuteCluster(ctx, ref, args...)
					if err != nil {
						t.Fatalf("%s: unkilled run: %v", label, err)
					}
					want := gather(t, k, label+"/ref", refRes.Array)

					killed := c.cfg
					killed.NumPEs = pes
					killed.Recover = true
					killed.KillPE = 1
					killed.KillAfter = killAfterFrames
					kRes, err := p.ExecuteCluster(ctx, killed, args...)
					if err != nil {
						t.Fatalf("%s: killed run: %v", label, err)
					}
					assertSame(t, label, gather(t, k, label, kRes.Array), want)

					// A fired kill cannot yield zero recoveries: the dead
					// endpoint surfaces a down notice and the driver either
					// recovers (counted) or fails the run (caught above) —
					// and because probe acks advance the kill counter every
					// round, the fault always fires before termination.
					st := kRes.Stats()
					if st.Recoveries < 1 {
						t.Errorf("%s: Recoveries = %d, want >= 1", label, st.Recoveries)
						continue
					}
					if st.ReplayedSPs < 1 {
						t.Errorf("%s: ReplayedSPs = %d, want >= 1 after a recovery", label, st.ReplayedSPs)
					}
				}
			}
		})
	}
}
