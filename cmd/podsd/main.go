// Command podsd runs PODS programs on the message-passing cluster runtime.
// It is both halves of a distributed deployment:
//
// Worker mode serves one PE as its own OS process. The worker is program-
// agnostic — the driver ships it the compiled program, the cluster geometry
// and the peer list in its init message, so the same worker binary serves
// any program:
//
//	podsd -worker -listen 127.0.0.1:7101
//
// Driver mode compiles an Idlite program (or loads a .pods file) and runs
// it — over TCP workers when -workers is given, or on in-process channel-
// transport workers otherwise:
//
//	podsd -pes 4 -args 16 prog.id                                # in-process
//	podsd -workers 127.0.0.1:7101,127.0.0.1:7102 -args 16 prog.id  # TCP
//	podsd -builtin matmul -pes 8 -args 12 -dump C
//
// With -spares, a TCP driver survives worker deaths: a dead PE is fenced
// behind a fresh incarnation, re-homed onto the next spare address, and
// its assignments are replayed — single assignment makes the re-execution
// idempotent, so the results are bit-identical to an undisturbed run:
//
//	podsd -workers w1:7101,w2:7101 -spares w3:7101 -builtin relax -args 16,8
//
// Observability: -metrics serves live counters while a run is in flight
// (plain-text /metrics, expvar /debug/vars, and /debug/pprof) in either
// mode; -trace / -timeline make a driver run record every PE's event ring
// and export it as Chrome trace_event JSON (open at https://ui.perfetto.dev)
// and a per-probe-round CSV:
//
//	podsd -worker -listen 0.0.0.0:7101 -metrics 0.0.0.0:7070
//	podsd -builtin relax -pes 8 -steal -trace relax.json -timeline relax.csv
//
// Job-server mode keeps the fleet up across programs: -serve opens a
// persistent fleet (in-process or over TCP workers) and accepts compiled
// programs over the framed protocol — any number of jobs run concurrently
// on the same workers, each isolated under its own job ID, admitted under
// -max-jobs and per-job -max-instrs / -max-elems budget caps. With
// -metrics the same fleet also accepts HTTP submissions: POST a .pods
// program body to /jobs. -submit is the matching client: it compiles (or
// loads) a program, ships it to a server, and prints the streamed result
// and arrays exactly like a local run:
//
//	podsd -serve 0.0.0.0:7200 -pes 8 -max-jobs 16 -metrics 0.0.0.0:7070
//	podsd -submit host:7200 -builtin matmul -args 12 -dump C
//	curl --data-binary @prog.pods 'http://host:7070/jobs?args=16'
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the -metrics server
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/cluster/trace"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/kernels"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "podsd:", err)
		os.Exit(1)
	}
}

func run(argv []string) error {
	fs := flag.NewFlagSet("podsd", flag.ContinueOnError)
	worker := fs.Bool("worker", false, "run as a TCP worker PE (persistent: serves driver sessions until killed)")
	listen := fs.String("listen", "127.0.0.1:0", "worker/server listen address")
	serveAddr := fs.String("serve", "", "run as a job server: keep a fleet up on this address and accept submitted programs")
	submitAddr := fs.String("submit", "", "submit the program to a job server at this address instead of running locally")
	maxJobs := fs.Int("max-jobs", 0, "cap concurrently admitted jobs in -serve mode (default 16)")
	maxInstrs := fs.Int64("max-instrs", 0, "per-job executed-instruction budget cap (0 = unlimited); -serve caps clients, driver/-submit sets the job's own budget")
	maxElems := fs.Int64("max-elems", 0, "per-job allocated-element budget cap (0 = unlimited); -serve caps clients, driver/-submit sets the job's own budget")
	workers := fs.String("workers", "", "comma-separated worker addresses (driver mode; empty = in-process)")
	spares := fs.String("spares", "", "comma-separated standby worker addresses a recovery can re-home a dead PE onto (implies -recover)")
	recoverFlag := fs.Bool("recover", false, "survive worker deaths by respawn + single-assignment replay instead of failing the run")
	pes := fs.Int("pes", 0, "number of in-process worker PEs (default 4)")
	argsFlag := fs.String("args", "", "comma-separated integer arguments for main")
	builtin := fs.String("builtin", "", "run a built-in kernel: matmul | heat | pipeline | mirror | triangular | triread | relax")
	dump := fs.String("dump", "", "print the named array after the run")
	pageElems := fs.Int("page", 0, "I-structure page size in elements (default 32)")
	cachePages := fs.Int("cache", 0, "cap each PE's remote page cache at this many pages, CLOCK-evicted (0 = unbounded)")
	steal := fs.Bool("steal", false, "enable dynamic work stealing between PEs")
	adapt := fs.Bool("adapt", false, "enable adaptive repartitioning of Range Filter bounds between sweeps")
	heat := fs.Bool("heat", false, "enable the unified page-heat machinery: streaming prefetch, page-granular steal locality, adaptive cache cap, rebind migration")
	latency := fs.Duration("latency", 0, "inject per-hop latency into the in-process transport")
	timeout := fs.Duration("timeout", 2*time.Minute, "abort a (possibly deadlocked) run after this long")
	metrics := fs.String("metrics", "", "serve live metrics on this address (/metrics, /debug/vars, /debug/pprof)")
	traceOut := fs.String("trace", "", "record a trace and write it as Chrome trace_event JSON to this file (driver mode)")
	timelineOut := fs.String("timeline", "", "record a trace and write the per-round metrics timeline CSV to this file (driver mode)")
	traceCap := fs.Int("trace-cap", 0, "per-PE trace ring capacity in events (default 4096)")
	traceSample := fs.Int("trace-sample", 0, "record every Nth SP instance's dispatch/complete events (default 1 = all)")
	if err := fs.Parse(argv); err != nil {
		return err
	}

	if *metrics != "" {
		if err := serveMetrics(*metrics); err != nil {
			return err
		}
	}

	if *worker {
		return serveWorker(*listen)
	}

	if *serveAddr != "" {
		cfg := cluster.Config{NumPEs: *pes, Latency: *latency, Recover: *recoverFlag,
			MaxJobs: *maxJobs, MaxInstrs: *maxInstrs, MaxElems: *maxElems}
		if *workers != "" {
			cfg.Workers = strings.Split(*workers, ",")
		}
		if *spares != "" {
			cfg.Spares = strings.Split(*spares, ",")
			cfg.Recover = true
		}
		return serveJobs(*serveAddr, cfg)
	}

	var name, src string
	var precompiled *isa.Program
	switch {
	case *builtin != "":
		k, ok := kernels.ByName(*builtin)
		if !ok {
			return fmt.Errorf("unknown builtin %q", *builtin)
		}
		name, src = k.File(), k.Source
	case fs.NArg() == 1:
		name = fs.Arg(0)
		data, err := os.ReadFile(name)
		if err != nil {
			return err
		}
		if strings.HasSuffix(name, ".pods") {
			precompiled, err = isa.UnmarshalPods(data)
			if err != nil {
				return err
			}
		} else {
			src = string(data)
		}
	default:
		return fmt.Errorf("usage: podsd [flags] prog.id|prog.pods (or -builtin NAME, or -worker)")
	}

	args, err := parseArgs(*argsFlag)
	if err != nil {
		return err
	}

	prog := precompiled
	if prog == nil {
		sys, err := core.CompileSource(name, src, core.Options{})
		if err != nil {
			return err
		}
		prog = sys.Program
	}

	if *submitAddr != "" {
		cfg := cluster.Config{PageElems: *pageElems, CachePages: *cachePages,
			Steal: *steal, Adapt: *adapt, Heat: *heat,
			TraceCap: *traceCap, TraceSample: *traceSample,
			MaxInstrs: *maxInstrs, MaxElems: *maxElems}
		return submitJob(*submitAddr, name, prog, cfg, args, *dump, *timeout)
	}

	cfg := cluster.Config{NumPEs: *pes, PageElems: *pageElems, CachePages: *cachePages,
		Steal: *steal, Adapt: *adapt, Heat: *heat, Latency: *latency, Recover: *recoverFlag,
		TraceCap: *traceCap, TraceSample: *traceSample,
		MaxInstrs: *maxInstrs, MaxElems: *maxElems}
	cfg.Trace = *traceOut != "" || *timelineOut != ""
	if *workers != "" {
		cfg.Workers = strings.Split(*workers, ",")
	}
	if *spares != "" {
		cfg.Spares = strings.Split(*spares, ",")
		cfg.Recover = true
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	start := time.Now()
	res, err := cluster.Execute(ctx, prog, cfg, args...)
	if err != nil {
		return err
	}
	wall := time.Since(start)

	transport := "chan"
	if len(cfg.Workers) > 0 {
		transport = "tcp"
	}
	n := res.NumPEs
	st := res.Stats
	fmt.Printf("%s on %d PEs (%s): %.3f ms wall, %d msgs, %d deferred reads, %d/%d cache hits/misses, %d/%d evictions/refetches, %d/%d prefetches/hits, %d steals, %d forwards, %d rebounds, %d recoveries, %d replayed\n",
		name, n, transport, float64(wall.Microseconds())/1000, st.MsgsSent, st.DeferredReads, st.CacheHits, st.CacheMisses,
		st.Evictions, st.Refetches, st.Prefetches, st.PrefetchHits, st.Steals, st.Forwards, st.Rebounds, st.Recoveries, st.ReplayedSPs)
	if res.Value != nil {
		fmt.Printf("result: %s\n", res.Value)
	}
	fmt.Printf("arrays: %s\n", strings.Join(res.ArrayNames(), ", "))
	if res.Trace != nil {
		if err := writeTraceFiles(res, prog, *traceOut, *timelineOut); err != nil {
			return err
		}
	}
	if *dump != "" {
		vals, mask, dims, err := res.ReadArray(*dump)
		if err != nil {
			return err
		}
		printDump(os.Stdout, *dump, dims, vals, mask)
	}
	return nil
}

// parseArgs turns the -args flag's comma-separated integers into main
// arguments.
func parseArgs(s string) ([]isa.Value, error) {
	if s == "" {
		return nil, nil
	}
	var args []isa.Value
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad argument %q: %w", part, err)
		}
		args = append(args, isa.Int(v))
	}
	return args, nil
}

// printDump renders one array in the canonical -dump format (row-major,
// 10-wide cells, '·' for never-written elements). The driver, the job
// client, and the HTTP endpoint all share it so their outputs diff clean.
func printDump(w io.Writer, name string, dims []int, vals []float64, mask []bool) {
	fmt.Fprintf(w, "\n%s %v:\n", name, dims)
	cols := 1
	if len(dims) > 0 && dims[len(dims)-1] > 0 {
		cols = dims[len(dims)-1]
	}
	for i, v := range vals {
		if i > 0 && i%cols == 0 {
			fmt.Fprintln(w)
		}
		if mask[i] {
			fmt.Fprintf(w, "%10.4f", v)
		} else {
			fmt.Fprintf(w, "%10s", "·")
		}
	}
	fmt.Fprintln(w)
}

// submitJob ships a compiled program to a job server and prints the
// streamed reply in the local-run layout.
func submitJob(addr, name string, prog *isa.Program, cfg cluster.Config, args []isa.Value, dump string, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	start := time.Now()
	reply, err := cluster.SubmitJob(ctx, addr, prog, cfg, args...)
	if err != nil {
		return err
	}
	fmt.Printf("%s on job server %s: %.3f ms wall\n",
		name, addr, float64(time.Since(start).Microseconds())/1000)
	if reply.Value != nil {
		fmt.Printf("result: %s\n", reply.Value)
	}
	names := make([]string, len(reply.Arrays))
	for i := range reply.Arrays {
		names[i] = reply.Arrays[i].Name
	}
	fmt.Printf("arrays: %s\n", strings.Join(names, ", "))
	if dump != "" {
		a, err := reply.Array(dump)
		if err != nil {
			return err
		}
		printDump(os.Stdout, dump, a.Dims, a.Vals, a.Mask)
	}
	return nil
}

// serveJobs opens a persistent fleet and serves submitted jobs on addr
// until the process is killed. With -metrics set, the fleet also accepts
// HTTP submissions on POST /jobs (body: a compiled .pods program; query:
// args=1,2 main arguments, dump=NAME to include an array in the reply).
func serveJobs(addr string, cfg cluster.Config) error {
	ctx := context.Background()
	fleet, err := cluster.OpenFleet(ctx, cfg)
	if err != nil {
		return err
	}
	defer fleet.Close()
	http.HandleFunc("/jobs", jobsHandler(fleet))
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	transport := "chan"
	if len(cfg.Workers) > 0 {
		transport = "tcp"
	}
	fmt.Printf("podsd job server on %s (%s transport)\n", ln.Addr(), transport)
	return fleet.ServeJobs(ctx, ln)
}

// jobsHandler is the HTTP front door to a serving fleet.
func jobsHandler(fleet *cluster.Fleet) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST a compiled .pods program", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		prog, err := isa.UnmarshalPods(body)
		if err != nil {
			http.Error(w, fmt.Sprintf("decoding program: %v", err), http.StatusBadRequest)
			return
		}
		args, err := parseArgs(r.URL.Query().Get("args"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		res, err := fleet.Submit(r.Context(), prog, cluster.Config{}, args...)
		if err != nil {
			code := http.StatusInternalServerError
			if strings.Contains(err.Error(), "rejected") {
				code = http.StatusTooManyRequests
			}
			http.Error(w, err.Error(), code)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if res.Value != nil {
			fmt.Fprintf(w, "result: %s\n", res.Value)
		}
		fmt.Fprintf(w, "arrays: %s\n", strings.Join(res.ArrayNames(), ", "))
		if d := r.URL.Query().Get("dump"); d != "" {
			vals, mask, dims, err := res.ReadArray(d)
			if err != nil {
				fmt.Fprintf(w, "dump error: %v\n", err)
				return
			}
			printDump(w, d, dims, vals, mask)
		}
	}
}

// writeTraceFiles exports a traced run: Chrome trace_event JSON and/or the
// per-round timeline CSV, plus a one-line summary of what was captured.
func writeTraceFiles(res *cluster.Result, prog *isa.Program, traceOut, timelineOut string) error {
	tr := res.Trace
	fmt.Printf("trace: %d events over %d PEs (%d dropped), %d timeline samples\n",
		tr.Events(), tr.NumPEs, tr.Drops(), len(tr.Timeline.Samples))
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		name := func(tmpl int64) string {
			if t := prog.Template(int(tmpl)); t != nil {
				return t.Name
			}
			return ""
		}
		err = trace.WriteChrome(f, tr, name)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Printf("trace: wrote %s (open at https://ui.perfetto.dev)\n", traceOut)
	}
	if timelineOut != "" {
		f, err := os.Create(timelineOut)
		if err != nil {
			return err
		}
		err = trace.WriteTimelineCSV(f, tr.Timeline)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Printf("trace: wrote %s\n", timelineOut)
	}
	return nil
}

// serveMetrics starts the live-observability HTTP server: plain-text
// /metrics, expvar's /debug/vars, and net/http/pprof's /debug/pprof (both
// register on the default mux via their package init). Serving starts
// before the run so a second machine can watch counters move mid-run.
func serveMetrics(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("metrics listener: %w", err)
	}
	mux := http.DefaultServeMux
	mux.Handle("/metrics", cluster.MetricsHandler())
	fmt.Printf("podsd metrics on http://%s/metrics\n", ln.Addr())
	go func() {
		if serr := http.Serve(ln, mux); serr != nil {
			fmt.Fprintln(os.Stderr, "podsd: metrics server:", serr)
		}
	}()
	return nil
}

// serveWorker serves driver sessions forever: each cluster.ServeWorker
// call hosts one driver's fleet (any number of jobs) and returns when
// that driver disconnects; the loop then listens again on the same
// address (pinned after the first bind, so ':0' keeps its port) for the
// next driver. The worker process stays up across drivers and jobs.
func serveWorker(addr string) error {
	for {
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			return err
		}
		addr = ln.Addr().String()
		fmt.Printf("podsd worker listening on %s\n", ln.Addr())
		if err := cluster.ServeWorker(context.Background(), ln); err != nil {
			return err
		}
	}
}
