package main

import (
	"context"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/cluster"
)

func TestRunBuiltinMatmulInProcess(t *testing.T) {
	if err := run([]string{"-builtin", "matmul", "-pes", "4", "-args", "6", "-dump", "C"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSourceFile(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "p.id")
	prog := `
func main(n: int) -> int {
	s = 0;
	for k = 1 to n {
		next s = s + k;
	}
	return s;
}`
	if err := os.WriteFile(src, []byte(prog), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-pes", "2", "-args", "10", src}); err != nil {
		t.Fatal(err)
	}
}

// TestRunOverTCPWorkers drives in-process TCP workers through the same
// code path a multi-process deployment uses.
func TestRunOverTCPWorkers(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var addrs []string
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, ln.Addr().String())
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := cluster.ServeWorker(ctx, ln); err != nil && ctx.Err() == nil {
				t.Errorf("worker: %v", err)
			}
		}()
	}
	err := run([]string{"-builtin", "mirror", "-workers", addrs[0] + "," + addrs[1], "-args", "8"})
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-builtin", "nope"}); err == nil {
		t.Fatal("want error for unknown builtin")
	}
	if err := run([]string{}); err == nil {
		t.Fatal("want usage error with no program")
	}
	if err := run([]string{"-builtin", "matmul", "-args", "x"}); err == nil {
		t.Fatal("want error for bad argument")
	}
}
