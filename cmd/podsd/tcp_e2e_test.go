package main

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/kernels"
)

// TestTCPMultiProcessAgainstInProcess is the real multi-process leg of the
// CI matrix: it builds the podsd binary, starts four workers as separate
// OS processes on loopback for every kernel in the registry, drives them
// over TCP, and diffs the dumped arrays bit-for-bit against the in-process
// channel-transport backend. The dynamic scheduling knobs rotate across
// kernels so stealing and adaptive repartitioning both get exercised over
// real sockets.
//
// The leg costs a couple of dozen process launches, so it is opt-in:
// set PODS_TCP_E2E=1 (the ci workflow's tcp-multiproc job does).
func TestTCPMultiProcessAgainstInProcess(t *testing.T) {
	if os.Getenv("PODS_TCP_E2E") == "" {
		t.Skip("set PODS_TCP_E2E=1 to run the multi-process TCP leg")
	}
	bin := filepath.Join(t.TempDir(), "podsd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building podsd: %v\n%s", err, out)
	}

	const (
		numWorkers = 4
		n          = 10
		pageElems  = 8
	)
	configs := []cluster.Config{
		{},
		{Steal: true},
		{Adapt: true, ProbeInterval: 20 * time.Microsecond},
		{Steal: true, Adapt: true, ProbeInterval: 20 * time.Microsecond},
	}
	for ki, k := range kernels.All() {
		t.Run(k.Name, func(t *testing.T) {
			sys, err := core.CompileSource(k.File(), k.Source, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			args := k.Args(n)
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()

			cfg := configs[ki%len(configs)]
			if k.Name == "relax" {
				// The drifting-skew kernel is the one whose rebinds engage;
				// make sure it runs them (with steals) over real sockets.
				cfg = configs[3]
			}
			cfg.PageElems = pageElems

			// In-process reference run with the same knobs.
			ref := cfg
			ref.NumPEs = numWorkers
			refRes, err := cluster.Execute(ctx, sys.Program, ref, args...)
			if err != nil {
				t.Fatalf("in-process run: %v", err)
			}

			// Four worker processes on loopback.
			tcp := cfg
			tcp.Workers = make([]string, numWorkers)
			for i := range tcp.Workers {
				tcp.Workers[i] = startWorkerProcess(t, ctx, bin, i)
			}
			tcpRes, err := cluster.Execute(ctx, sys.Program, tcp, args...)
			if err != nil {
				t.Fatalf("tcp run (steal=%v adapt=%v): %v", cfg.Steal, cfg.Adapt, err)
			}

			for _, name := range k.Arrays {
				rv, rm, _, err := refRes.ReadArray(name)
				if err != nil {
					t.Fatal(err)
				}
				tv, tm, _, err := tcpRes.ReadArray(name)
				if err != nil {
					t.Fatal(err)
				}
				if len(tv) != len(rv) {
					t.Fatalf("%s: %d elements over TCP, %d in-process", name, len(tv), len(rv))
				}
				for i := range rv {
					if tm[i] != rm[i] || (rm[i] && tv[i] != rv[i]) {
						t.Fatalf("%s[%d]: tcp=%v/%v in-process=%v/%v (backends disagree)",
							name, i, tv[i], tm[i], rv[i], rm[i])
					}
				}
			}
			t.Logf("steal=%v adapt=%v: %d msgs, %d steals, %d rebounds",
				cfg.Steal, cfg.Adapt, tcpRes.Stats.MsgsSent, tcpRes.Stats.Steals, tcpRes.Stats.Rebounds)
		})
	}
}

// startWorkerProcess launches one `podsd -worker` OS process on a kernel-
// assigned loopback port and returns the address it reports. The process
// serves exactly one run and exits when the driver sends KStop; the
// cleanup reaps it (or kills it if the run never reached it).
func startWorkerProcess(t *testing.T, ctx context.Context, bin string, idx int) string {
	t.Helper()
	cmd := exec.Command(bin, "-worker", "-listen", "127.0.0.1:0")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting worker %d: %v", idx, err)
	}
	t.Cleanup(func() {
		done := make(chan struct{})
		go func() {
			_ = cmd.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			_ = cmd.Process.Kill()
			<-done
		}
	})

	addrCh := make(chan string, 1)
	errCh := make(chan error, 1)
	go func() {
		line, err := bufio.NewReader(stdout).ReadString('\n')
		if err != nil {
			errCh <- fmt.Errorf("worker %d produced no listen line: %w", idx, err)
			return
		}
		const prefix = "podsd worker listening on "
		if !strings.HasPrefix(line, prefix) {
			errCh <- fmt.Errorf("worker %d: unexpected line %q", idx, line)
			return
		}
		addrCh <- strings.TrimSpace(strings.TrimPrefix(line, prefix))
	}()
	select {
	case addr := <-addrCh:
		return addr
	case err := <-errCh:
		t.Fatal(err)
	case <-ctx.Done():
		t.Fatalf("worker %d: timed out waiting for listen address", idx)
	}
	return ""
}
