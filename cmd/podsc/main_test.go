package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/isa"
)

func TestCompileBuiltins(t *testing.T) {
	for _, b := range []string{"simple", "conduction", "matmul"} {
		if err := run([]string{"-builtin", b}); err != nil {
			t.Errorf("builtin %s: %v", b, err)
		}
	}
}

func TestCompileFileAndEmitPods(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "p.id")
	out := filepath.Join(dir, "p.pods")
	prog := `
func main(n: int) {
	A = array(n);
	for i = 1 to n {
		A[i] = float(i);
	}
}`
	if err := os.WriteFile(src, []byte(prog), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-listing", "-o", out, src}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	p, err := isa.ReadPods(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Templates) != 2 {
		t.Errorf("templates = %d, want 2", len(p.Templates))
	}
}

func TestCompileErrors(t *testing.T) {
	if err := run([]string{"-builtin", "nope"}); err == nil {
		t.Error("unknown builtin accepted")
	}
	if err := run([]string{"/does/not/exist.id"}); err == nil {
		t.Error("missing file accepted")
	}
	if err := run(nil); err == nil {
		t.Error("no args accepted")
	}
}
