// Command podsc is the PODS compiler driver: it compiles an Idlite source
// file through the frontend, Translator and Partitioner and prints the
// partitioning report and (optionally) the Subcompact Process disassembly.
//
// Usage:
//
//	podsc [-no-dist] [-listing] prog.id
//	podsc -builtin simple -listing
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/simple"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "podsc:", err)
		os.Exit(1)
	}
}

func run(argv []string) error {
	fs := flag.NewFlagSet("podsc", flag.ContinueOnError)
	noDist := fs.Bool("no-dist", false, "disable loop distribution (ablation)")
	listing := fs.Bool("listing", false, "print the SP disassembly")
	builtin := fs.String("builtin", "", "compile a built-in program: simple | conduction | matmul")
	out := fs.String("o", "", "write the compiled program to a .pods file")
	if err := fs.Parse(argv); err != nil {
		return err
	}

	var name, src string
	switch {
	case *builtin != "":
		name = *builtin + ".id"
		switch *builtin {
		case "simple":
			src = simple.Source
		case "conduction":
			src = simple.ConductionSource
		case "matmul":
			src = bench.MatmulSource
		default:
			return fmt.Errorf("unknown builtin %q", *builtin)
		}
	case fs.NArg() == 1:
		name = fs.Arg(0)
		data, err := os.ReadFile(name)
		if err != nil {
			return err
		}
		src = string(data)
	default:
		return fmt.Errorf("usage: podsc [-no-dist] [-listing] prog.id")
	}

	sys, err := core.CompileSource(name, src, core.Options{DisableDistribution: *noDist})
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d SP templates\n\n", name, len(sys.Program.Templates))
	fmt.Print(sys.Report.String())
	if *listing {
		fmt.Println()
		fmt.Print(sys.Listing())
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := isa.WritePods(f, sys.Program); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", *out)
	}
	return nil
}
