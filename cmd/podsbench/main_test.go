package main

import "testing"

func TestQuickSweepAllExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if err := run([]string{"-quick"}); err != nil {
		t.Fatal(err)
	}
}

func TestSingleExperimentSelection(t *testing.T) {
	for _, exp := range []string{"T1", "T2", "E1", "BACK"} {
		if err := run([]string{"-quick", "-exp", exp}); err != nil {
			t.Errorf("%s: %v", exp, err)
		}
	}
}
