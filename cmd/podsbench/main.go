// Command podsbench regenerates every table and figure of the paper's
// evaluation section (see DESIGN.md §4 for the experiment index):
//
//	T1  — §5.1 iPSC/2 instruction-time table vs the simulator's cost model
//	T2  — §5.1 Array-Manager task times and message costs
//	F8  — Figure 8: functional-unit utilization balance (16×16 SIMPLE)
//	F9  — Figure 9: EU utilization per problem size
//	F10 — Figure 10: SIMPLE speed-up incl. the P&R control-driven baseline
//	E1  — §5.3.4 efficiency comparison (conduction 32×32, 1 PE)
//	X1  — generic matrix-multiply example
//	ABL — ablations (distribution off, cache off, control-driven)
//	PAGE — page-size sensitivity sweep ([BIC89] "not a critical parameter")
//	BACK — the three execution backends (sim, podsrt, cluster) head-to-head
//	       on the paper kernels (matmul, heat, pipeline)
//	SKEW — work stealing on/off × PE counts on the skewed kernels
//	       (triangular, mirror): wall clock, makespan, utilization recovered
//	ADAPT — adaptive Range-Filter repartitioning on/off × work stealing
//	       on/off × PE counts on the drifting-skew relax kernel: makespan,
//	       utilization, rebound count
//	CACHE — bounded page cache with CLOCK eviction: hit rate, makespan,
//	       evictions and refetches vs. the per-shard page cap on heat,
//	       relax, and matmul (cap 0 = unbounded control arm)
//	TRACE — observability overhead: tracing off vs on (event rings +
//	       per-round metric snapshots) on relax and matmul, asserting the
//	       makespan grows ≤5%; with -csv it also writes the traced relax
//	       run as Chrome trace_event JSON (Perfetto-loadable), the
//	       per-round timeline CSV, and a per-PE counter breakdown
//	SERVE — multi-program job service: a persistent fleet takes a sustained
//	       closed-loop stream of mixed heat/relax/matmul/triangular jobs
//	       from concurrent clients; reports job throughput and the latency
//	       distribution (p50/p90/p99), every job verified against the
//	       simulator
//
// Usage:
//
//	podsbench                  # everything, paper-scale axes
//	podsbench -exp F10         # a single experiment
//	podsbench -quick           # reduced axes for smoke runs
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "podsbench:", err)
		os.Exit(1)
	}
}

func run(argv []string) error {
	fs := flag.NewFlagSet("podsbench", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment id (T1,T2,F8,F9,F10,E1,X1,ABL,PAGE,BACK,SKEW,ADAPT,CACHE,TRACE,SERVE) or 'all'")
	quick := fs.Bool("quick", false, "reduced axes (smaller sizes, fewer PE counts)")
	csvDir := fs.String("csv", "", "also write figure data as CSV files into this directory")
	if err := fs.Parse(argv); err != nil {
		return err
	}

	pes := bench.DefaultPECounts
	sizes := bench.DefaultSizes
	e1n := 32
	ablN, ablPEs := 32, 16
	backN, backPEs := 24, 8
	skewN, skewPEs := 96, []int{1, 2, 4, 8}
	adaptN, adaptSweeps, adaptPEs := 64, 6, []int{1, 2, 4, 8}
	cacheN, cachePEs, cacheCaps := 32, 8, []int{0, 2, 4, 8, 16, 32}
	traceN, tracePEs, traceReps := 48, 8, 3
	serveN, servePEs, serveClients, serveJobs := 12, 8, 6, 48
	if *quick {
		pes = []int{1, 4, 16}
		sizes = []int{8, 16}
		e1n = 16
		ablN, ablPEs = 16, 8
		backN, backPEs = 12, 4
		skewN, skewPEs = 32, []int{1, 4}
		adaptN, adaptSweeps, adaptPEs = 32, 4, []int{1, 8}
		cacheN, cachePEs, cacheCaps = 16, 4, []int{0, 2, 8}
		traceN, traceReps = 24, 2
		serveN, servePEs, serveClients, serveJobs = 10, 4, 4, 16
	}

	want := map[string]bool{}
	for _, e := range strings.Split(strings.ToUpper(*exp), ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["ALL"]
	section := func(id string) bool { return all || want[id] }
	hr := strings.Repeat("=", 78)

	start := time.Now()
	if section("T1") {
		fmt.Println(hr)
		fmt.Print(bench.TableT1())
	}
	if section("T2") {
		fmt.Println(hr)
		fmt.Print(bench.TableT2())
	}
	if section("F8") {
		fmt.Println(hr)
		r, err := bench.Figure8(16, pes)
		if err != nil {
			return err
		}
		fmt.Print(r.Format())
		if err := emitCSV(*csvDir, "figure8.csv", r.WriteCSV); err != nil {
			return err
		}
	}
	if section("F9") {
		fmt.Println(hr)
		r, err := bench.Figure9(sizes, pes)
		if err != nil {
			return err
		}
		fmt.Print(r.Format())
		if err := emitCSV(*csvDir, "figure9.csv", r.WriteCSV); err != nil {
			return err
		}
	}
	if section("F10") {
		fmt.Println(hr)
		r, err := bench.Figure10(sizes, pes)
		if err != nil {
			return err
		}
		fmt.Print(r.Format())
		if err := emitCSV(*csvDir, "figure10.csv", r.WriteCSV); err != nil {
			return err
		}
	}
	if section("E1") {
		fmt.Println(hr)
		r, err := bench.EfficiencyE1(e1n)
		if err != nil {
			return err
		}
		fmt.Print(r.Format())
	}
	if section("X1") {
		fmt.Println(hr)
		r, err := bench.MatmulX1(32, pes)
		if err != nil {
			return err
		}
		fmt.Print(r.Format())
	}
	if section("ABL") {
		fmt.Println(hr)
		r, err := bench.Ablations(ablN, ablPEs)
		if err != nil {
			return err
		}
		fmt.Print(r.Format())
	}
	if section("PAGE") {
		fmt.Println(hr)
		r, err := bench.PageSweep(ablN, ablPEs, []int{8, 16, 32, 64, 128})
		if err != nil {
			return err
		}
		fmt.Print(r.Format())
	}
	if section("BACK") {
		fmt.Println(hr)
		r, err := bench.Backends(backN, backPEs)
		if err != nil {
			return err
		}
		fmt.Print(r.Format())
		if err := emitCSV(*csvDir, "backends.csv", r.WriteCSV); err != nil {
			return err
		}
	}
	if section("SKEW") {
		fmt.Println(hr)
		r, err := bench.Skew(skewN, skewPEs)
		if err != nil {
			return err
		}
		fmt.Print(r.Format())
		if err := emitCSV(*csvDir, "skew.csv", r.WriteCSV); err != nil {
			return err
		}
	}
	if section("ADAPT") {
		fmt.Println(hr)
		r, err := bench.Adapt(adaptN, adaptSweeps, adaptPEs)
		if err != nil {
			return err
		}
		fmt.Print(r.Format())
		if err := emitCSV(*csvDir, "adapt.csv", r.WriteCSV); err != nil {
			return err
		}
	}
	if section("CACHE") {
		fmt.Println(hr)
		r, err := bench.Cache(cacheN, cachePEs, cacheCaps)
		if err != nil {
			return err
		}
		fmt.Print(r.Format())
		if err := emitCSV(*csvDir, "cache.csv", r.WriteCSV); err != nil {
			return err
		}
		// BENCH_CACHE.json is the machine-readable record of the heat
		// machinery's acceptance numbers; written unconditionally (into
		// -csv's directory when given, the working directory otherwise).
		jsonDir := *csvDir
		if jsonDir == "" {
			jsonDir = "."
		}
		if err := emitCSV(jsonDir, "BENCH_CACHE.json", r.WriteJSON); err != nil {
			return err
		}
	}
	if section("TRACE") {
		fmt.Println(hr)
		r, err := bench.Trace(traceN, tracePEs, traceReps)
		if err != nil {
			return err
		}
		fmt.Print(r.Format())
		if err := r.Check(); err != nil {
			return err
		}
		if err := emitCSV(*csvDir, "trace.csv", r.WriteCSV); err != nil {
			return err
		}
		if err := emitCSV(*csvDir, "trace_pe.csv", r.WritePerPECSV); err != nil {
			return err
		}
		chrome := func(w io.Writer) error { return r.WriteChromeJSON(w, "relax") }
		if err := emitCSV(*csvDir, "relax_trace.json", chrome); err != nil {
			return err
		}
		timeline := func(w io.Writer) error { return r.WriteTimelineCSV(w, "relax") }
		if err := emitCSV(*csvDir, "relax_timeline.csv", timeline); err != nil {
			return err
		}
	}
	if section("SERVE") {
		fmt.Println(hr)
		r, err := bench.Serve(serveN, servePEs, serveClients, serveJobs)
		if err != nil {
			return err
		}
		fmt.Print(r.Format())
		if err := emitCSV(*csvDir, "serve.csv", r.WriteCSV); err != nil {
			return err
		}
	}
	fmt.Println(hr)
	fmt.Printf("total wall time: %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// emitCSV writes one figure's data into dir (no-op when dir is empty).
func emitCSV(dir, name string, write func(io.Writer) error) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := write(f); err != nil {
		return err
	}
	fmt.Printf("(wrote %s)\n", filepath.Join(dir, name))
	return nil
}
