// Command podsim compiles an Idlite program and runs it on the simulated
// PODS multiprocessor, printing virtual execution time, per-unit
// utilizations and dynamic counts.
//
// Usage:
//
//	podsim -pes 8 -args 32 prog.id
//	podsim -builtin simple -pes 32 -args 64
//	podsim -builtin matmul -pes 8 -args 24 -dump C
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/sim"
	"repro/internal/simple"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "podsim:", err)
		os.Exit(1)
	}
}

func run(argv []string) error {
	fs := flag.NewFlagSet("podsim", flag.ContinueOnError)
	pes := fs.Int("pes", 4, "number of processing elements")
	argsFlag := fs.String("args", "", "comma-separated integer arguments for main")
	builtin := fs.String("builtin", "", "run a built-in program: simple | conduction | matmul | heat | pipeline | mirror")
	noDist := fs.Bool("no-dist", false, "disable loop distribution (ablation)")
	stall := fs.Bool("stall", false, "control-driven baseline (no remote-latency hiding)")
	noCache := fs.Bool("no-cache", false, "disable the software page cache (ablation)")
	dump := fs.String("dump", "", "print the named array after the run")
	pageElems := fs.Int("page", 0, "I-structure page size in elements (default 32)")
	trace := fs.Bool("trace", false, "print SP lifecycle events (spawn/block/unblock/halt) to stderr")
	perPE := fs.Bool("perpe", false, "print the per-PE utilization table (load balance)")
	if err := fs.Parse(argv); err != nil {
		return err
	}

	var name, src string
	var precompiled *isa.Program
	switch {
	case *builtin != "":
		name = *builtin + ".id"
		switch *builtin {
		case "simple":
			src = simple.Source
		case "conduction":
			src = simple.ConductionSource
		default:
			k, ok := kernels.ByName(*builtin)
			if !ok {
				return fmt.Errorf("unknown builtin %q", *builtin)
			}
			name, src = k.File(), k.Source
		}
	case fs.NArg() == 1:
		name = fs.Arg(0)
		data, err := os.ReadFile(name)
		if err != nil {
			return err
		}
		if strings.HasSuffix(name, ".pods") {
			precompiled, err = isa.UnmarshalPods(data)
			if err != nil {
				return err
			}
		} else {
			src = string(data)
		}
	default:
		return fmt.Errorf("usage: podsim [flags] prog.id|prog.pods (or -builtin NAME)")
	}

	var args []isa.Value
	if *argsFlag != "" {
		for _, part := range strings.Split(*argsFlag, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
			if err != nil {
				return fmt.Errorf("bad argument %q: %w", part, err)
			}
			args = append(args, isa.Int(v))
		}
	}

	prog := precompiled
	if prog == nil {
		sys, err := core.CompileSource(name, src, core.Options{DisableDistribution: *noDist})
		if err != nil {
			return err
		}
		prog = sys.Program
	}
	cfg := sim.Config{
		NumPEs: *pes, Stall: *stall, DisableCache: *noCache, PageElems: *pageElems,
	}
	if *trace {
		cfg.Trace = os.Stderr
	}
	m, err := sim.New(prog, cfg)
	if err != nil {
		return err
	}
	res, err := m.Run(args...)
	if err != nil {
		return err
	}

	fmt.Printf("%s on %d PEs: %s\n", name, *pes, res)
	if res.MainValue != nil {
		fmt.Printf("result: %+v\n", *res.MainValue)
	}
	if *perPE {
		fmt.Printf("\nper-PE utilization (EU imbalance %.2fx):\n%s", res.LoadImbalance(), res.PerPE())
	}
	fmt.Printf("arrays: %s\n", strings.Join(m.ArrayNames(), ", "))
	if *dump != "" {
		vals, mask, dims, err := m.ReadArray(*dump)
		if err != nil {
			return err
		}
		fmt.Printf("\n%s %v:\n", *dump, dims)
		cols := dims[len(dims)-1]
		for i, v := range vals {
			if i > 0 && i%cols == 0 {
				fmt.Println()
			}
			if mask[i] {
				fmt.Printf("%10.4f", v)
			} else {
				fmt.Printf("%10s", "·")
			}
		}
		fmt.Println()
	}
	return nil
}
