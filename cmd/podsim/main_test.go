package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestSimulateBuiltinMatmul(t *testing.T) {
	if err := run([]string{"-builtin", "matmul", "-pes", "4", "-args", "6", "-dump", "C"}); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateVariantFlags(t *testing.T) {
	for _, extra := range [][]string{
		{"-no-dist"},
		{"-stall"},
		{"-no-cache"},
		{"-page", "16"},
		{"-perpe"},
	} {
		args := append([]string{"-builtin", "conduction", "-pes", "2", "-args", "8"}, extra...)
		if err := run(args); err != nil {
			t.Errorf("%v: %v", extra, err)
		}
	}
}

func TestSimulatePodsFile(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "p.id")
	prog := `
func main(n: int) -> int {
	s = 0;
	for k = 1 to n {
		next s = s + k;
	}
	return s;
}`
	if err := os.WriteFile(src, []byte(prog), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-pes", "2", "-args", "10", src}); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateErrors(t *testing.T) {
	if err := run([]string{"-builtin", "nope"}); err == nil {
		t.Error("unknown builtin accepted")
	}
	if err := run([]string{"-builtin", "matmul", "-args", "x"}); err == nil {
		t.Error("bad args accepted")
	}
	if err := run(nil); err == nil {
		t.Error("no input accepted")
	}
	// Wrong argument count for main.
	if err := run([]string{"-builtin", "matmul"}); err == nil {
		t.Error("missing main args accepted")
	}
}
