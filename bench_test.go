// Benchmarks regenerating the paper's evaluation artifacts, one per table
// and figure (see DESIGN.md §4 for the experiment index). Each benchmark
// reports the headline quantity of its artifact as a custom metric, so
// `go test -bench=. -benchmem` both exercises the machinery and prints the
// reproduced numbers. cmd/podsbench prints the full paper-scale axes.
package pods_test

import (
	"testing"
	"time"

	"repro/internal/bench"
)

// BenchmarkTableT1InstrTimes exercises the §5.1 instruction-cost table
// rendering (T1) and fails if the model drifts from the paper's numbers.
func BenchmarkTableT1InstrTimes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := bench.TableT1()
		if len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTableT2AMCosts exercises the §5.1 Array-Manager cost table (T2).
func BenchmarkTableT2AMCosts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := bench.TableT2()
		if len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFigure8UnitUtilization regenerates Figure 8 (unit balance,
// 16×16 SIMPLE) on a reduced PE axis and reports the EU:next-unit ratio.
func BenchmarkFigure8UnitUtilization(b *testing.B) {
	var euOver float64
	for i := 0; i < b.N; i++ {
		r, err := bench.Figure8(16, []int{1, 8})
		if err != nil {
			b.Fatal(err)
		}
		eu := r.Util["EU"][1]
		rest := 0.0
		for _, u := range []string{"MU", "RU", "AM", "MM"} {
			if v := r.Util[u][1]; v > rest {
				rest = v
			}
		}
		euOver = eu / rest
	}
	b.ReportMetric(euOver, "EU/next-busiest")
}

// BenchmarkFigure9EUUtilization regenerates Figure 9 on a reduced axis and
// reports the 32×32 EU utilization at 8 PEs.
func BenchmarkFigure9EUUtilization(b *testing.B) {
	var util float64
	for i := 0; i < b.N; i++ {
		r, err := bench.Figure9([]int{16, 32}, []int{1, 8})
		if err != nil {
			b.Fatal(err)
		}
		util = r.Util[1][1]
	}
	b.ReportMetric(100*util, "EU%@8PE")
}

// BenchmarkFigure10Speedup regenerates Figure 10 on a reduced axis and
// reports the 32×32 speed-up at 16 PEs (paper's full-scale 32-PE numbers:
// 8.1 / 12.4 / 18.9 for the three sizes).
func BenchmarkFigure10Speedup(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		r, err := bench.Figure10([]int{16, 32}, []int{1, 4, 16})
		if err != nil {
			b.Fatal(err)
		}
		speedup = r.Speedup[1][2]
	}
	b.ReportMetric(speedup, "speedup:32x32@16PE")
}

// BenchmarkFigure10Baseline measures the P&R control-driven baseline alone
// (the comparison curve of Figure 10).
func BenchmarkFigure10Baseline(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		r1, err := bench.RunSimple(32, 1, bench.VariantPR)
		if err != nil {
			b.Fatal(err)
		}
		r16, err := bench.RunSimple(32, 16, bench.VariantPR)
		if err != nil {
			b.Fatal(err)
		}
		speedup = float64(r1.Time) / float64(r16.Time)
	}
	b.ReportMetric(speedup, "P&R-speedup:32x32@16PE")
}

// BenchmarkEfficiencyComparison regenerates E1 (§5.3.4) and reports the
// PODS-vs-ideal-sequential ratio (paper: 1.91).
func BenchmarkEfficiencyComparison(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		r, err := bench.EfficiencyE1(32)
		if err != nil {
			b.Fatal(err)
		}
		ratio = r.Ratio
	}
	b.ReportMetric(ratio, "PODS/seq-ratio")
}

// BenchmarkMatmulPipeline regenerates X1 (the §5.2 generic example) and
// reports its 8-PE speed-up.
func BenchmarkMatmulPipeline(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		r, err := bench.MatmulX1(16, []int{1, 8})
		if err != nil {
			b.Fatal(err)
		}
		speedup = r.Speedup[1]
	}
	b.ReportMetric(speedup, "speedup:16x16@8PE")
}

// BenchmarkAblationNoDistribution measures how much §4.2's loop
// distribution buys (DESIGN.md ablation).
func BenchmarkAblationNoDistribution(b *testing.B) {
	var slowdown float64
	for i := 0; i < b.N; i++ {
		full, err := bench.RunSimple(16, 8, bench.VariantPODS)
		if err != nil {
			b.Fatal(err)
		}
		nodist, err := bench.RunSimple(16, 8, bench.VariantNoDist)
		if err != nil {
			b.Fatal(err)
		}
		slowdown = float64(nodist.Time) / float64(full.Time)
	}
	b.ReportMetric(slowdown, "nodist-slowdown")
}

// BenchmarkAblationNoCache measures how much §4's software page cache buys.
func BenchmarkAblationNoCache(b *testing.B) {
	var slowdown float64
	for i := 0; i < b.N; i++ {
		full, err := bench.RunSimple(16, 8, bench.VariantPODS)
		if err != nil {
			b.Fatal(err)
		}
		nocache, err := bench.RunSimple(16, 8, bench.VariantNoCache)
		if err != nil {
			b.Fatal(err)
		}
		slowdown = float64(nocache.Time) / float64(full.Time)
	}
	b.ReportMetric(slowdown, "nocache-slowdown")
}

// BenchmarkBackends runs the three execution backends head-to-head on the
// paper kernels (experiment BACK): the same partitioned program on the
// discrete-event simulator, the shared-memory goroutine runtime, and the
// message-passing cluster runtime. Compare sub-benchmark wall times to see
// what share-nothing message passing costs (and buys) at this scale.
func BenchmarkBackends(b *testing.B) {
	const n, pes = 16, 4
	for _, kernel := range []string{"matmul", "heat", "pipeline"} {
		for _, backend := range bench.BackendNames {
			b.Run(kernel+"/"+backend, func(b *testing.B) {
				var wall time.Duration
				for i := 0; i < b.N; i++ {
					d, err := bench.RunBackend(kernel, n, pes, backend)
					if err != nil {
						b.Fatal(err)
					}
					wall += d
				}
				b.ReportMetric(float64(wall.Microseconds())/1000/float64(b.N), "wall-ms")
			})
		}
	}
}

// BenchmarkSkewSteal regenerates the SKEW experiment on a reduced axis
// (triangular + mirror at 4 PEs) and reports how much of the skewed
// kernel's makespan — the maximum per-PE instruction count, the wall-clock
// bound on one-core-per-PE hardware — work stealing recovers.
func BenchmarkSkewSteal(b *testing.B) {
	var ratio, util float64
	for i := 0; i < b.N; i++ {
		r, err := bench.Skew(48, []int{4}, "triangular")
		if err != nil {
			b.Fatal(err)
		}
		c := r.Cells["triangular"][4]
		ratio = float64(c[0].Makespan) / float64(c[1].Makespan)
		util = c[1].Util
	}
	b.ReportMetric(ratio, "makespan-off/on:tri@4PE")
	b.ReportMetric(util, "util-on:tri@4PE")
}

// BenchmarkAdaptRebind regenerates the ADAPT experiment on a reduced axis
// (relax at 8 PEs) and reports how much of the drifting-skew kernel's
// makespan adaptive repartitioning recovers over the static split, plus
// the utilization the adaptive arm reaches.
func BenchmarkAdaptRebind(b *testing.B) {
	var ratio, util float64
	for i := 0; i < b.N; i++ {
		r, err := bench.Adapt(48, 5, []int{8})
		if err != nil {
			b.Fatal(err)
		}
		cell := r.Cells[8]
		ratio = float64(cell[0][0].Makespan) / float64(cell[0][1].Makespan)
		util = cell[0][1].Util
	}
	b.ReportMetric(ratio, "makespan-static/adapt:relax@8PE")
	b.ReportMetric(util, "util-adapt:relax@8PE")
}

// BenchmarkSimulatorThroughput measures raw simulator speed (virtual
// instructions per wall second) on the 16×16 SIMPLE — a performance guard
// for the DES core itself.
func BenchmarkSimulatorThroughput(b *testing.B) {
	var instrs int64
	for i := 0; i < b.N; i++ {
		res, err := bench.RunSimple(16, 8, bench.VariantPODS)
		if err != nil {
			b.Fatal(err)
		}
		instrs = res.Counts.Instructions
	}
	b.ReportMetric(float64(instrs), "sim-instrs/op")
}
