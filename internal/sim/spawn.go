package sim

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/timing"
)

// performSpawn implements the L operator (local spawn) and the distributing
// L operator LD (§4.2.1): "In the case of LD, the same data value is
// replicated and routed to all PEs, thus causing an instance of an identical
// SP to be spawned on every PE."
//
// A spawn charges the Memory Manager (load SP, build PCB) and the Matching
// Unit (register the new SP's entry) on the target PE; remote spawns
// additionally pay one small message through the Routing Unit and network.
func (p *pe) performSpawn(sp *spInst, in *isa.Instr, now int64, dist bool) {
	m := p.m
	tmpl := m.prog.Template(int(in.Imm.I))
	if tmpl == nil {
		m.fail(fmt.Errorf("sim: SP %q pc %d: spawn of unknown template %d", sp.tmpl.Name, sp.pc, in.Imm.I))
		return
	}
	args := make([]isa.Value, len(in.Args))
	for i, a := range in.Args {
		args[i] = sp.frame[a]
	}
	targets := []*pe{p}
	if dist && !m.cfg.ZeroOverhead {
		targets = m.pes
	}
	for _, q := range targets {
		id := m.newSPID()
		target := q
		if m.cfg.ZeroOverhead {
			m.instantiate(target, tmpl, id, args, now)
			target.wakeEU(now)
			continue
		}
		if target.id == p.id {
			p.activate(now, target, tmpl, id, args)
			continue
		}
		m.counts.SmallMsgs++
		m.counts.SPsRemote++
		m.serve(&p.ru, now, timing.SmallMessageRUTime, func(t int64) {
			m.at(t+timing.NetworkTime, func(t2 int64) {
				p.activate(t2, target, tmpl, id, args)
			})
		})
	}
}

// activate runs the MM (frame/PCB creation) and MU (matching-table entry)
// service chain on the target PE and makes the instance ready.
func (p *pe) activate(t int64, target *pe, tmpl *isa.Template, id int64, args []isa.Value) {
	m := p.m
	m.serve(&target.mm, t, timing.ActivateSPTime, func(t2 int64) {
		m.serve(&target.mu, t2, timing.MatchTime, func(t3 int64) {
			m.counts.TokensMatched++
			m.instantiate(target, tmpl, id, args, t3)
			target.wakeEU(t3)
		})
	})
}

// performSend implements inter-SP tokens (loop results, function returns).
// The token goes through the destination PE's Matching Unit ("only tokens
// exchanged between different SPs go through the Matching Unit", §5.1).
func (p *pe) performSend(sp *spInst, in *isa.Instr, now int64) {
	m := p.m
	ref := sp.frame[in.A]
	if ref.Kind != isa.KindSP {
		m.fail(fmt.Errorf("sim: SP %q pc %d: SEND target is %s, not an SP reference", sp.tmpl.Name, sp.pc, ref))
		return
	}
	val := sp.frame[in.B]
	base := int64(0)
	if len(in.Args) > 0 {
		base = sp.frame[in.Args[0]].AsInt()
	}
	slot := int(base + in.Imm.I)
	id := ref.I

	if id == 0 {
		// Environment continuation: program result, no machine cost.
		m.deliver(now, 0, slot, val)
		return
	}
	if m.cfg.ZeroOverhead {
		m.deliver(now, id, slot, val)
		return
	}
	loc, ok := m.spLoc[id]
	if !ok {
		m.fail(fmt.Errorf("sim: SP %q pc %d: token for dead SP %d", sp.tmpl.Name, sp.pc, id))
		return
	}
	target := m.pes[loc]
	if target.id == p.id {
		m.serve(&target.mu, now, timing.MatchTime, func(t int64) {
			m.counts.TokensMatched++
			m.deliver(t, id, slot, val)
		})
		return
	}
	m.counts.SmallMsgs++
	m.serve(&p.ru, now, timing.SmallMessageRUTime, func(t int64) {
		m.at(t+timing.NetworkTime, func(t2 int64) {
			m.serve(&target.mu, t2, timing.MatchTime, func(t3 int64) {
				m.counts.TokensMatched++
				m.deliver(t3, id, slot, val)
			})
		})
	})
}
