// Package sim is the PODS simulator: a deterministic discrete-event model of
// a distributed-memory MIMD machine (an iPSC/2-like hypercube) executing
// translated dataflow programs as Subcompact Processes. Each PE has five
// concurrently operating functional units — Execution Unit, Matching Unit,
// Memory Manager, Array Manager, Routing Unit (paper Figure 7) — and the
// network is modeled as pure propagation delay. All service times come from
// internal/timing, i.e. from §5.1 of the paper.
package sim

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/isa"
	"repro/internal/istructure"
)

// unit is one functional unit with FIFO service: a job scheduled at time t
// starts at max(t, free) and occupies the unit for its duration.
type unit struct {
	free int64
	busy int64
}

// serve schedules dur of work on u no earlier than `earliest` and runs fn
// when the work completes.
func (m *Machine) serve(u *unit, earliest, dur int64, fn func(t int64)) {
	start := earliest
	if u.free > start {
		start = u.free
	}
	end := start + dur
	u.free = end
	u.busy += dur
	if fn != nil {
		m.at(end, fn)
	} else if end > m.horizon {
		m.horizon = end
	}
}

// extend adds extra occupancy to a unit from within its own completion
// handler (used when a job's true length is only known at execution time,
// e.g. releasing queued I-structure reads on a write).
func (m *Machine) extend(u *unit, now, extra int64) int64 {
	if u.free < now {
		u.free = now
	}
	u.free += extra
	u.busy += extra
	return u.free
}

type spState uint8

const (
	spReady spState = iota + 1
	spRunning
	spBlocked
	spStalled // baseline (Stall) mode: EU waiting in place
)

// spInst is one live SP instance: a template plus an operand frame with
// presence bits and a program counter — the paper's PCB ("the starting
// address of the SP, a program counter, and a status field").
type spInst struct {
	id      int64
	tmpl    *isa.Template
	frame   []isa.Value
	present []bool
	pc      int
	state   spState
	blocked int // slot index the SP is blocked on
	pe      int
}

type pe struct {
	id    int
	m     *Machine
	shard *istructure.Shard

	eu unit // execution unit (managed by exec.go, but busy time lives here)
	mu unit // matching unit
	mm unit // memory manager
	am unit // array manager
	ru unit // routing unit

	ready    []*spInst
	cur      *spInst
	euActive bool

	// stallOn is set by a remote read in the control-driven baseline
	// (Config.Stall): the EU waits on this slot instead of switching SPs.
	stallOn int

	sps map[int64]*spInst
}

// Machine simulates a PODS multiprocessor executing one program.
type Machine struct {
	cfg  Config
	prog *isa.Program
	pes  []*pe

	events  eventHeap
	seq     int64
	now     int64
	horizon int64 // latest unit-completion time with no callback

	nextSP    int64
	nextArray int64

	spLoc   map[int64]int // SP instance id → PE
	arrays  map[int64]*istructure.Header
	byName  map[string]int64 // last allocated array per source name
	nameSeq []string

	counts Counts
	failed error

	mainResult *isa.Value
}

// New builds a machine for a validated program.
func New(prog *isa.Program, cfg Config) (*Machine, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if prog == nil {
		return nil, errors.New("sim: nil program")
	}
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	m := &Machine{
		cfg:    cfg,
		prog:   prog,
		spLoc:  make(map[int64]int),
		arrays: make(map[int64]*istructure.Header),
		byName: make(map[string]int64),
	}
	m.pes = make([]*pe, cfg.NumPEs)
	for i := range m.pes {
		m.pes[i] = &pe{id: i, m: m, shard: istructure.NewShard(i), stallOn: isa.None, sps: make(map[int64]*spInst)}
	}
	return m, nil
}

// fail records the first fatal simulation error and halts event processing.
func (m *Machine) fail(err error) {
	if m.failed == nil {
		m.failed = err
	}
}

// trace emits one lifecycle line when tracing is enabled.
func (m *Machine) trace(t int64, pe int, format string, args ...interface{}) {
	if m.cfg.Trace == nil {
		return
	}
	fmt.Fprintf(m.cfg.Trace, "[%10.3fµs] PE%-2d %s\n", float64(t)/1000, pe, fmt.Sprintf(format, args...))
}

// DeadlockError reports SPs still alive when the event queue drained.
type DeadlockError struct {
	Report string
}

func (e *DeadlockError) Error() string {
	return "sim: deadlock — live SPs remain with no pending events:\n" + e.Report
}

// Run instantiates the entry template with the given arguments on PE 0 and
// processes events until the machine drains. It can be called once.
func (m *Machine) Run(args ...isa.Value) (*Result, error) {
	entry := m.prog.Entry()
	want := entry.NParams
	if entry.HasResult {
		want -= 2
	}
	if len(args) != want {
		return nil, fmt.Errorf("sim: entry %q wants %d args, got %d", entry.Name, want, len(args))
	}
	if entry.HasResult {
		args = append(append([]isa.Value{}, args...), isa.SPRef(0), isa.Int(0))
	}
	m.instantiate(m.pes[0], entry, m.newSPID(), args, 0)
	m.pes[0].wakeEU(0)

	var nEvents int64
	for len(m.events) > 0 && m.failed == nil {
		ev := m.events[0]
		m.events[0] = m.events[len(m.events)-1]
		m.events = m.events[:len(m.events)-1]
		down(m.events, 0)
		if ev.t < m.now {
			return nil, fmt.Errorf("sim: time went backwards (%d < %d)", ev.t, m.now)
		}
		m.now = ev.t
		ev.fn(ev.t)
		nEvents++
		if nEvents > m.cfg.MaxEvents {
			return nil, fmt.Errorf("sim: exceeded %d events (livelock?)", m.cfg.MaxEvents)
		}
	}
	if m.failed != nil {
		return nil, m.failed
	}
	if rep := m.liveReport(); rep != "" {
		return nil, &DeadlockError{Report: rep}
	}
	end := m.now
	if m.horizon > end {
		end = m.horizon
	}
	res := &Result{Time: end, Counts: m.counts}
	res.PEs = make([]UnitStats, len(m.pes))
	for i, p := range m.pes {
		res.PEs[i] = UnitStats{EU: p.eu.busy, MU: p.mu.busy, MM: p.mm.busy, AM: p.am.busy, RU: p.ru.busy}
	}
	if m.mainResult != nil {
		res.MainValue = &ReturnedValue{Kind: m.mainResult.Kind.String(), I: m.mainResult.I, F: m.mainResult.F}
	}
	for _, p := range m.pes {
		res.Counts.DeferredReads += p.shard.DeferredReads
		res.Counts.CacheHits += p.shard.CacheHits
		res.Counts.CacheMisses += p.shard.CacheMisses
	}
	return res, nil
}

// down restores the heap property after replacing the root (inlined sift-down
// to avoid re-wrapping container/heap on the hot path).
func down(h eventHeap, i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		j := l
		if r := l + 1; r < n && h.Less(r, l) {
			j = r
		}
		if !h.Less(j, i) {
			return
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}

func (m *Machine) newSPID() int64 {
	m.nextSP++
	return m.nextSP
}

// instantiate creates a live SP instance on p (state change only; the MM/MU
// service costs are charged by the spawn path).
func (m *Machine) instantiate(p *pe, tmpl *isa.Template, id int64, args []isa.Value, t int64) *spInst {
	sp := &spInst{
		id:      id,
		tmpl:    tmpl,
		frame:   make([]isa.Value, tmpl.NSlots),
		present: make([]bool, tmpl.NSlots),
		pc:      0,
		state:   spReady,
		blocked: isa.None,
		pe:      p.id,
	}
	if len(args) != tmpl.NParams {
		m.fail(fmt.Errorf("sim: template %q spawned with %d args, wants %d", tmpl.Name, len(args), tmpl.NParams))
		return sp
	}
	copy(sp.frame, args)
	for i := range args {
		sp.present[i] = true
	}
	p.sps[id] = sp
	m.spLoc[id] = p.id
	p.ready = append(p.ready, sp)
	m.counts.SPsCreated++
	m.trace(t, p.id, "spawn SP#%d %q (ready)", id, tmpl.Name)
	return sp
}

// destroy removes a halted SP.
func (m *Machine) destroy(sp *spInst) {
	p := m.pes[sp.pe]
	delete(p.sps, sp.id)
	delete(m.spLoc, sp.id)
}

// deliver places a token value into slot of SP instance id, waking the
// instance if it was blocked (or stalled) on that slot. Instance 0 is the
// environment: its tokens become the program result.
func (m *Machine) deliver(t int64, id int64, slot int, v isa.Value) {
	if id == 0 {
		val := v
		m.mainResult = &val
		return
	}
	loc, ok := m.spLoc[id]
	if !ok {
		m.fail(fmt.Errorf("sim: token for dead/unknown SP %d (slot %d)", id, slot))
		return
	}
	p := m.pes[loc]
	sp := p.sps[id]
	if slot < 0 || slot >= len(sp.frame) {
		m.fail(fmt.Errorf("sim: token slot %d out of range for SP %d (%q)", slot, id, sp.tmpl.Name))
		return
	}
	sp.frame[slot] = v
	sp.present[slot] = true
	switch sp.state {
	case spBlocked:
		if sp.blocked == slot {
			sp.state = spReady
			sp.blocked = isa.None
			p.ready = append(p.ready, sp)
			m.trace(t, p.id, "unblock SP#%d %q (slot %d arrived)", sp.id, sp.tmpl.Name, slot)
			p.wakeEU(t)
		}
	case spStalled:
		if sp.blocked == slot {
			sp.state = spRunning
			sp.blocked = isa.None
			m.trace(t, p.id, "resume SP#%d %q (stall satisfied)", sp.id, sp.tmpl.Name)
			p.wakeEU(t)
		}
	}
}

// liveReport describes all live SPs (empty when none) for deadlock errors.
func (m *Machine) liveReport() string {
	var lines []string
	for _, p := range m.pes {
		for _, sp := range p.sps {
			state := "ready"
			switch sp.state {
			case spRunning:
				state = "running"
			case spBlocked:
				state = fmt.Sprintf("blocked on slot %d", sp.blocked)
			case spStalled:
				state = fmt.Sprintf("stalled on slot %d", sp.blocked)
			}
			pend := p.shard.PendingReads()
			lines = append(lines, fmt.Sprintf("  PE%d SP#%d %q pc=%d %s (pe pending reads: %d)",
				p.id, sp.id, sp.tmpl.Name, sp.pc, state, pend))
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// header returns the installed header for an array handle.
func (m *Machine) header(id int64) *istructure.Header { return m.arrays[id] }

// ReadArray gathers a named array's contents from all shards after a run.
// Values never written are returned as NaN-free zeros with ok=false in mask.
func (m *Machine) ReadArray(name string) (vals []float64, mask []bool, dims []int, err error) {
	id, ok := m.byName[name]
	if !ok {
		return nil, nil, nil, fmt.Errorf("sim: unknown array %q", name)
	}
	h := m.arrays[id]
	n := h.Elems()
	vals = make([]float64, n)
	mask = make([]bool, n)
	for off := 0; off < n; off++ {
		owner := h.OwnerOf(off)
		if v, present := m.pes[owner].shard.Peek(id, off); present {
			vals[off] = v.AsFloat()
			mask[off] = true
		}
	}
	return vals, mask, append([]int(nil), h.Dims...), nil
}

// ArrayNames lists allocated source-level array names in allocation order.
func (m *Machine) ArrayNames() []string { return append([]string(nil), m.nameSeq...) }
