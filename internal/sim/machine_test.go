package sim

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/istructure"
)

// fillLoopProgram builds: main(n) { A = alloc(n); for i = 1..n { A[i] = i*2 } }
// as a single SP (no spawns) — the smallest complete machine exercise.
func fillLoopProgram() *isa.Program {
	// Slots: 0=n(param) 1=A 2=i 3=one 4=cond 5=val
	a := newAsm(0, "main", isa.TmplMain, 1, 6)
	a.alloc(isa.ALLOC, 1, "A", 0)
	a.konst(3, isa.Int(1))
	a.move(2, 3)
	a.label("head")
	a.bin(isa.CMPGT, 4, 2, 0)
	a.brtrue(4, "exit")
	a.bin(isa.IMUL, 5, 2, 3).bin(isa.IADD, 5, 5, 2) // val = i*1 + i = 2i
	a.awrite(1, 5, 2)
	a.bin(isa.IADD, 2, 2, 3)
	a.jump("head")
	a.label("exit")
	a.halt()
	return &isa.Program{Templates: []*isa.Template{a.done()}, EntryID: 0}
}

func TestSinglePEFillLoop(t *testing.T) {
	m, err := New(fillLoopProgram(), Config{NumPEs: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(isa.Int(8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Time <= 0 {
		t.Fatalf("virtual time = %d, want > 0", res.Time)
	}
	vals, mask, dims, err := m.ReadArray("A")
	if err != nil {
		t.Fatal(err)
	}
	if len(dims) != 1 || dims[0] != 8 {
		t.Fatalf("dims = %v, want [8]", dims)
	}
	for i := 0; i < 8; i++ {
		if !mask[i] {
			t.Fatalf("element %d never written", i)
		}
		if want := float64(2 * (i + 1)); vals[i] != want {
			t.Errorf("A[%d] = %v, want %v", i+1, vals[i], want)
		}
	}
	if res.Counts.LocalWrites != 8 {
		t.Errorf("LocalWrites = %d, want 8", res.Counts.LocalWrites)
	}
	if res.Counts.Instructions == 0 || res.PEs[0].EU == 0 {
		t.Error("no instructions or EU busy time recorded")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() *Result {
		m, err := New(fillLoopProgram(), Config{NumPEs: 1})
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run(isa.Int(16))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Time != b.Time || a.Counts != b.Counts {
		t.Fatalf("non-deterministic simulation:\n%v\n%v", a, b)
	}
}

// deferredReadProgram: main spawns a child that reads A[1] (written later by
// main) and writes A[2] = A[1] + 1. Exercises deferred reads and unblocking.
func deferredReadProgram() *isa.Program {
	// child(A): slots 0=A 1=tmp 2=one 3=sum 4=idx1 5=idx2
	c := newAsm(1, "child", isa.TmplFunc, 1, 6)
	c.konst(4, isa.Int(1)).konst(5, isa.Int(2)).konst(2, isa.Int(1))
	c.aread(1, 0, 4)
	c.bin(isa.IADD, 3, 1, 2) // blocks until A[1] arrives
	c.awrite(0, 3, 5)
	c.halt()

	// main: slots 0=A 1=ten 2=idx1 3=n
	a := newAsm(0, "main", isa.TmplMain, 0, 4)
	a.konst(3, isa.Int(4))
	a.alloc(isa.ALLOC, 0, "A", 3)
	a.spawn(isa.SPAWN, 1, 0)
	a.konst(1, isa.Int(10)).konst(2, isa.Int(1))
	a.awrite(0, 1, 2)
	a.halt()
	return &isa.Program{Templates: []*isa.Template{a.done(), c.done()}, EntryID: 0}
}

func TestDeferredReadAcrossSPs(t *testing.T) {
	m, err := New(deferredReadProgram(), Config{NumPEs: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	vals, mask, _, err := m.ReadArray("A")
	if err != nil {
		t.Fatal(err)
	}
	if !mask[0] || !mask[1] {
		t.Fatalf("A[1],A[2] written = %v,%v; want both", mask[0], mask[1])
	}
	if vals[1] != 11 {
		t.Errorf("A[2] = %v, want 11", vals[1])
	}
	if res.Counts.SPsCreated != 2 {
		t.Errorf("SPsCreated = %d, want 2", res.Counts.SPsCreated)
	}
	if res.Counts.CtxSwitches == 0 {
		t.Error("expected at least one context switch (child blocked on A[1])")
	}
}

// returnProgram: main computes 6*7 and returns it to the environment.
func returnProgram() *isa.Program {
	// slots: 0=retRef(param) 1=retBase(param) 2=a 3=b 4=r
	a := newAsm(0, "main", isa.TmplMain, 2, 5)
	a.t.HasResult = true
	a.t.NResults = 1
	a.konst(2, isa.Int(6)).konst(3, isa.Int(7))
	a.bin(isa.IMUL, 4, 2, 3)
	a.send(0, 4, 1, 0)
	a.halt()
	return &isa.Program{Templates: []*isa.Template{a.done()}, EntryID: 0}
}

func TestMainReturnValue(t *testing.T) {
	m, err := New(returnProgram(), Config{NumPEs: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.MainValue == nil || res.MainValue.I != 42 {
		t.Fatalf("MainValue = %+v, want 42", res.MainValue)
	}
}

func TestDeadlockDetected(t *testing.T) {
	// main reads A[1] which nobody writes, then tries to use it.
	a := newAsm(0, "main", isa.TmplMain, 0, 4)
	a.konst(3, isa.Int(4))
	a.alloc(isa.ALLOC, 0, "A", 3)
	a.konst(2, isa.Int(1))
	a.aread(1, 0, 2)
	a.bin(isa.IADD, 1, 1, 2) // blocks forever
	a.halt()
	prog := &isa.Program{Templates: []*isa.Template{a.done()}, EntryID: 0}
	m, err := New(prog, Config{NumPEs: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Run()
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if !strings.Contains(dl.Report, "main") {
		t.Errorf("deadlock report should name the SP: %s", dl.Report)
	}
}

func TestSingleAssignmentViolationDetected(t *testing.T) {
	a := newAsm(0, "main", isa.TmplMain, 0, 4)
	a.konst(3, isa.Int(4))
	a.alloc(isa.ALLOC, 0, "A", 3)
	a.konst(2, isa.Int(1)).konst(1, isa.Int(5))
	a.awrite(0, 1, 2)
	a.awrite(0, 1, 2)
	a.halt()
	prog := &isa.Program{Templates: []*isa.Template{a.done()}, EntryID: 0}
	m, err := New(prog, Config{NumPEs: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Run()
	var sav *istructure.SingleAssignmentError
	if !errors.As(err, &sav) {
		t.Fatalf("err = %v, want SingleAssignmentError", err)
	}
}

// distributedFillProgram hand-builds what the partitioner produces: main
// allocates a distributed array and LD-spawns a row loop whose bounds are
// clamped by a row Range Filter; the loop writes A[i] = 3i.
func distributedFillProgram() *isa.Program {
	// loop(A, init, limit): slots 0=A 1=init 2=limit 3=i 4=lim 5=one
	//   6=cond 7=val 8=rfLo 9=rfHi
	l := newAsm(1, "iloop", isa.TmplLoop, 3, 10)
	l.konst(5, isa.Int(1))
	l.move(3, 1)
	l.own(isa.ROWLO, 8, 0, isa.None)
	l.bin(isa.MAX, 3, 3, 8)
	l.move(4, 2)
	l.own(isa.ROWHI, 9, 0, isa.None)
	l.bin(isa.MIN, 4, 4, 9)
	l.label("head")
	l.bin(isa.CMPGT, 6, 3, 4)
	l.brtrue(6, "exit")
	l.bin(isa.IMUL, 7, 3, 5).bin(isa.IADD, 7, 7, 3).bin(isa.IADD, 7, 7, 3) // 3i
	l.awrite(0, 7, 3)
	l.bin(isa.IADD, 3, 3, 5)
	l.jump("head")
	l.label("exit")
	l.halt()
	l.t.Distributed = true
	l.t.RFKind = isa.RFRow

	// main(n): slots 0=n 1=A 2=initOne
	a := newAsm(0, "main", isa.TmplMain, 1, 3)
	a.alloc(isa.ALLOCD, 1, "A", 0)
	a.konst(2, isa.Int(1))
	a.spawn(isa.SPAWND, 1, 1, 2, 0)
	a.halt()
	return &isa.Program{Templates: []*isa.Template{a.done(), l.done()}, EntryID: 0}
}

func TestDistributedFillAcrossPEs(t *testing.T) {
	for _, pes := range []int{1, 2, 4, 8} {
		m, err := New(distributedFillProgram(), Config{NumPEs: pes, PageElems: 8, DistThreshold: 16})
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run(isa.Int(64))
		if err != nil {
			t.Fatalf("PEs=%d: %v", pes, err)
		}
		vals, mask, _, err := m.ReadArray("A")
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 64; i++ {
			if !mask[i] {
				t.Fatalf("PEs=%d: A[%d] never written", pes, i+1)
			}
			if want := float64(3 * (i + 1)); vals[i] != want {
				t.Fatalf("PEs=%d: A[%d] = %v, want %v", pes, i+1, vals[i], want)
			}
		}
		if pes > 1 {
			if res.Counts.SPsCreated != int64(1+pes) {
				t.Errorf("PEs=%d: SPsCreated = %d, want %d (main + one loop copy per PE)", pes, res.Counts.SPsCreated, 1+pes)
			}
			// Row-aligned distribution: every write must be local.
			if res.Counts.RemoteWrites != 0 {
				t.Errorf("PEs=%d: RemoteWrites = %d, want 0 (RF follows ownership)", pes, res.Counts.RemoteWrites)
			}
		}
	}
}

func TestDistributedSpeedup(t *testing.T) {
	times := map[int]int64{}
	for _, pes := range []int{1, 8} {
		m, err := New(distributedFillProgram(), Config{NumPEs: pes, PageElems: 8, DistThreshold: 16})
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run(isa.Int(1024))
		if err != nil {
			t.Fatal(err)
		}
		times[pes] = res.Time
	}
	speedup := float64(times[1]) / float64(times[8])
	if speedup < 3 {
		t.Errorf("speed-up 1→8 PEs = %.2f, want ≥ 3 (parallel row fill)", speedup)
	}
}

func TestStallModeSlower(t *testing.T) {
	// In control-driven baseline mode the child cannot hide the deferred
	// read latency, but results must be identical.
	for _, stall := range []bool{false, true} {
		m, err := New(deferredReadProgram(), Config{NumPEs: 1, Stall: stall})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(); err != nil {
			t.Fatalf("stall=%v: %v", stall, err)
		}
		vals, _, _, _ := m.ReadArray("A")
		if vals[1] != 11 {
			t.Fatalf("stall=%v: A[2] = %v, want 11", stall, vals[1])
		}
	}
}

func TestZeroOverheadFaster(t *testing.T) {
	run := func(zero bool) int64 {
		m, err := New(fillLoopProgram(), Config{NumPEs: 1, ZeroOverhead: zero})
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run(isa.Int(32))
		if err != nil {
			t.Fatal(err)
		}
		return res.Time
	}
	with, without := run(false), run(true)
	if without >= with {
		t.Errorf("zero-overhead time %d should be < full time %d", without, with)
	}
}

func TestZeroOverheadRejectsMultiPE(t *testing.T) {
	if _, err := New(fillLoopProgram(), Config{NumPEs: 2, ZeroOverhead: true}); err == nil {
		t.Fatal("ZeroOverhead with 2 PEs should be rejected")
	}
}

func TestRunArgCountChecked(t *testing.T) {
	m, err := New(fillLoopProgram(), Config{NumPEs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err == nil {
		t.Fatal("missing args should fail")
	}
}
