package sim

import (
	"repro/internal/isa"
)

// asm is a tiny test assembler for hand-building SP templates.
type asm struct {
	t      *isa.Template
	labels map[string]int
	fixups map[int]string // code index → label
}

func newAsm(id int, name string, kind isa.TemplateKind, nparams, nslots int) *asm {
	return &asm{
		t: &isa.Template{
			ID: id, Name: name, Kind: kind,
			NParams: nparams, NSlots: nslots,
			Names: map[string]int{},
		},
		labels: map[string]int{},
		fixups: map[int]string{},
	}
}

func (a *asm) emit(in isa.Instr) *asm {
	a.t.Code = append(a.t.Code, in)
	return a
}

func (a *asm) label(name string) *asm {
	a.labels[name] = len(a.t.Code)
	return a
}

func (a *asm) konst(dst int, v isa.Value) *asm {
	in := isa.NewInstr(isa.CONST)
	in.Dst, in.Imm = dst, v
	return a.emit(in)
}

func (a *asm) move(dst, src int) *asm {
	in := isa.NewInstr(isa.MOVE)
	in.Dst, in.A = dst, src
	return a.emit(in)
}

func (a *asm) clear(dst int) *asm {
	in := isa.NewInstr(isa.CLEAR)
	in.Dst = dst
	return a.emit(in)
}

func (a *asm) bin(op isa.Opcode, dst, x, y int) *asm {
	in := isa.NewInstr(op)
	in.Dst, in.A, in.B = dst, x, y
	return a.emit(in)
}

func (a *asm) un(op isa.Opcode, dst, x int) *asm {
	in := isa.NewInstr(op)
	in.Dst, in.A = dst, x
	return a.emit(in)
}

func (a *asm) jump(label string) *asm {
	in := isa.NewInstr(isa.JUMP)
	a.fixups[len(a.t.Code)] = label
	return a.emit(in)
}

func (a *asm) brfalse(cond int, label string) *asm {
	in := isa.NewInstr(isa.BRFALSE)
	in.A = cond
	a.fixups[len(a.t.Code)] = label
	return a.emit(in)
}

func (a *asm) brtrue(cond int, label string) *asm {
	in := isa.NewInstr(isa.BRTRUE)
	in.A = cond
	a.fixups[len(a.t.Code)] = label
	return a.emit(in)
}

func (a *asm) alloc(op isa.Opcode, dst int, name string, extents ...int) *asm {
	in := isa.NewInstr(op)
	in.Dst, in.Args, in.Comment = dst, extents, name
	return a.emit(in)
}

func (a *asm) aread(dst, arr int, idx ...int) *asm {
	in := isa.NewInstr(isa.AREAD)
	in.Dst, in.A, in.Args = dst, arr, idx
	return a.emit(in)
}

func (a *asm) awrite(arr, val int, idx ...int) *asm {
	in := isa.NewInstr(isa.AWRITE)
	in.A, in.B, in.Args = arr, val, idx
	return a.emit(in)
}

func (a *asm) spawn(op isa.Opcode, tmplID int, args ...int) *asm {
	in := isa.NewInstr(op)
	in.Imm = isa.Int(int64(tmplID))
	in.Args = args
	return a.emit(in)
}

func (a *asm) send(ref, val, baseSlot int, off int64) *asm {
	in := isa.NewInstr(isa.SEND)
	in.A, in.B, in.Imm = ref, val, isa.Int(off)
	if baseSlot != isa.None {
		in.Args = []int{baseSlot}
	}
	return a.emit(in)
}

func (a *asm) self(dst int) *asm {
	in := isa.NewInstr(isa.SELF)
	in.Dst = dst
	return a.emit(in)
}

func (a *asm) own(op isa.Opcode, dst, arr, aux int) *asm {
	in := isa.NewInstr(op)
	in.Dst, in.A, in.B = dst, arr, aux
	return a.emit(in)
}

func (a *asm) halt() *asm { return a.emit(isa.NewInstr(isa.HALT)) }

func (a *asm) done() *isa.Template {
	for pc, lbl := range a.fixups {
		target, ok := a.labels[lbl]
		if !ok {
			panic("asm: undefined label " + lbl)
		}
		a.t.Code[pc].Target = target
	}
	return a.t
}
