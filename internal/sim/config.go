package sim

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/rtcfg"
	"repro/internal/timing"
)

// Config parameterizes a simulated PODS machine.
type Config struct {
	// NumPEs is the number of processing elements (paper: 1–32).
	NumPEs int

	// PageElems is the I-structure page size in elements (paper: 32).
	PageElems int

	// DistThreshold is the minimum element count for an ALLOCD array to be
	// physically distributed; smaller arrays stay on the allocating PE.
	DistThreshold int

	// Stall switches the machine into the Pingali&Rogers-style baseline
	// (§6): control-driven execution with no latency tolerance — the EU
	// waits out every remote array access instead of context-switching to
	// another ready SP. Local producer-consumer waits still reschedule,
	// which models a correct static ordering of the compiled code.
	Stall bool

	// ZeroOverhead models the "most efficient sequential version" of
	// §5.3.4: all PODS machinery (matching, process management, routing,
	// array-manager service) is free and instantaneous; only instruction
	// execution and 2.7 µs array accesses cost time. Requires NumPEs == 1.
	ZeroOverhead bool

	// DisableCache turns off the software page cache of §4 (ablation):
	// every remote read fetches just its value from the owner, nothing is
	// cached, and locality of reference is not exploited.
	DisableCache bool

	// MaxEvents aborts runaway simulations (0 = default limit).
	MaxEvents int64

	// Trace, when non-nil, receives one line per SP lifecycle event
	// (spawn, block, unblock, halt, array allocation) with virtual
	// timestamps — the paper's process-state view (running/ready/blocked)
	// made observable.
	Trace io.Writer
}

func (c *Config) fill() error {
	g := rtcfg.Geometry{PEs: c.NumPEs, PageElems: c.PageElems, DistThreshold: c.DistThreshold}
	if err := g.Fill(1); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	c.NumPEs, c.PageElems, c.DistThreshold = g.PEs, g.PageElems, g.DistThreshold
	if c.MaxEvents <= 0 {
		c.MaxEvents = 2_000_000_000
	}
	if c.ZeroOverhead && c.NumPEs != 1 {
		return fmt.Errorf("sim: ZeroOverhead requires NumPEs == 1, got %d", c.NumPEs)
	}
	return nil
}

// UnitStats is the accumulated busy time of one PE's functional units.
type UnitStats struct {
	EU timing.Duration // Execution Unit
	MU timing.Duration // Matching Unit ("MS" in the paper's Figure 8)
	MM timing.Duration // Memory Manager
	AM timing.Duration // Array Manager
	RU timing.Duration // Routing Unit
}

// Counts aggregates machine-wide dynamic event counts.
type Counts struct {
	Instructions  int64
	CtxSwitches   int64
	SPsCreated    int64
	SPsRemote     int64 // SP instances created by remote (LD) spawns
	TokensMatched int64 // Matching Unit operations
	SmallMsgs     int64 // <100 B network messages (tokens, requests, spawns)
	PageMsgs      int64 // page transfers
	LocalReads    int64 // array reads satisfied from owned memory
	RemoteReads   int64 // array reads that needed cache or network
	CacheHits     int64
	CacheMisses   int64
	DeferredReads int64 // I-structure reads enqueued on absent elements
	LocalWrites   int64
	RemoteWrites  int64
	ArraysAlloced int64
}

// Result reports one completed simulation.
type Result struct {
	// Time is the total virtual execution time in nanoseconds.
	Time timing.Duration

	// PEs holds per-PE unit busy times; utilization is busy/Time.
	PEs []UnitStats

	Counts Counts

	// MainValue holds the entry block's returned value, if it returns one.
	MainValue *ReturnedValue
}

// ReturnedValue wraps the program's result token.
type ReturnedValue struct {
	Kind string
	I    int64
	F    float64
}

// Seconds converts the virtual time to seconds.
func (r *Result) Seconds() float64 { return float64(r.Time) / 1e9 }

// Utilization returns the average utilization of a unit across PEs,
// selected by name ("EU", "MU", "MM", "AM", "RU").
func (r *Result) Utilization(unit string) float64 {
	if r.Time == 0 || len(r.PEs) == 0 {
		return 0
	}
	var sum timing.Duration
	for _, pe := range r.PEs {
		switch unit {
		case "EU":
			sum += pe.EU
		case "MU", "MS":
			sum += pe.MU
		case "MM":
			sum += pe.MM
		case "AM":
			sum += pe.AM
		case "RU":
			sum += pe.RU
		}
	}
	return float64(sum) / float64(r.Time) / float64(len(r.PEs))
}

// String renders a compact summary.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "time=%.3f ms  EU=%.1f%% MU=%.1f%% RU=%.1f%% AM=%.1f%% MM=%.1f%%",
		float64(r.Time)/1e6,
		100*r.Utilization("EU"), 100*r.Utilization("MU"), 100*r.Utilization("RU"),
		100*r.Utilization("AM"), 100*r.Utilization("MM"))
	fmt.Fprintf(&b, "  instrs=%d ctx=%d sps=%d msgs=%d pages=%d",
		r.Counts.Instructions, r.Counts.CtxSwitches, r.Counts.SPsCreated,
		r.Counts.SmallMsgs, r.Counts.PageMsgs)
	return b.String()
}

// PerPE renders a per-PE utilization table (load balance view).
func (r *Result) PerPE() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-5s %8s %8s %8s %8s %8s\n", "PE", "EU", "MU", "RU", "AM", "MM")
	for i, u := range r.PEs {
		pct := func(d timing.Duration) float64 {
			if r.Time == 0 {
				return 0
			}
			return 100 * float64(d) / float64(r.Time)
		}
		fmt.Fprintf(&b, "%-5d %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n",
			i, pct(u.EU), pct(u.MU), pct(u.RU), pct(u.AM), pct(u.MM))
	}
	return b.String()
}

// LoadImbalance reports the ratio of the busiest to the average EU busy
// time across PEs (1.0 = perfectly balanced).
func (r *Result) LoadImbalance() float64 {
	if len(r.PEs) == 0 {
		return 1
	}
	var max, sum timing.Duration
	for _, u := range r.PEs {
		if u.EU > max {
			max = u.EU
		}
		sum += u.EU
	}
	if sum == 0 {
		return 1
	}
	avg := float64(sum) / float64(len(r.PEs))
	return float64(max) / avg
}
