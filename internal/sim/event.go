package sim

import "container/heap"

// event is one scheduled action in virtual time. Events are totally ordered
// by (time, sequence number), making every simulation bit-for-bit
// reproducible.
type event struct {
	t   int64
	seq int64
	fn  func(t int64)
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// at schedules fn at virtual time t.
func (m *Machine) at(t int64, fn func(t int64)) {
	m.seq++
	heap.Push(&m.events, event{t: t, seq: m.seq, fn: fn})
}
