package sim

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/timing"
)

// wakeEU ensures an EU stepping chain is active at or after time t. If a
// chain is already active it will observe the new work itself.
func (p *pe) wakeEU(t int64) {
	if p.euActive {
		return
	}
	p.euActive = true
	start := t
	if p.eu.free > start {
		start = p.eu.free
	}
	p.m.at(start, func(tt int64) { p.euStep(tt, false) })
}

// euStep executes instructions for the current SP starting at time t.
//
// The EU runs *bursts* of pure instructions (and local present array reads)
// inside a single event; any instruction with an external effect ends the
// burst so that functional-unit occupancy stays causally ordered. When an
// operand slot is absent, the EU first re-schedules itself at the current
// time with settled=true so that all already-scheduled deliveries at earlier
// virtual times are applied; if the operand is still absent on the settled
// attempt, the SP blocks ("the SP is blocked and the PE switches to another
// ready SP", §3) — or, in the control-driven baseline, the EU stalls.
func (p *pe) euStep(t int64, settled bool) {
	m := p.m
	now := t
	for {
		if m.failed != nil {
			p.euActive = false
			return
		}
		if p.cur == nil {
			if len(p.ready) == 0 {
				p.euActive = false
				if p.eu.free < now {
					p.eu.free = now
				}
				return
			}
			p.cur = p.ready[0]
			copy(p.ready, p.ready[1:])
			p.ready = p.ready[:len(p.ready)-1]
			p.cur.state = spRunning
			if !m.cfg.ZeroOverhead {
				now += timing.ContextSwitchTime
				p.eu.busy += timing.ContextSwitchTime
			}
			m.counts.CtxSwitches++
			settled = false
		}
		sp := p.cur
		if sp.pc < 0 || sp.pc >= len(sp.tmpl.Code) {
			m.fail(fmt.Errorf("sim: SP %q pc %d out of range", sp.tmpl.Name, sp.pc))
			return
		}
		in := &sp.tmpl.Code[sp.pc]

		if missing := firstAbsent(sp, in); missing != isa.None {
			if !settled {
				// Re-schedule at the current time so that deliveries already
				// scheduled at virtual times ≤ now are applied before we
				// decide to block (the burst may have advanced past them).
				m.at(now, func(tt int64) { p.euStep(tt, true) })
				return
			}
			sp.blocked = missing
			sp.state = spBlocked
			m.trace(now, p.id, "block SP#%d %q at pc %d on slot %d", sp.id, sp.tmpl.Name, sp.pc, missing)
			p.cur = nil
			continue // context-switch charge happens when the next SP is picked
		}
		settled = false

		cost := p.instrCost(sp, in)
		now += cost
		p.eu.busy += cost
		m.counts.Instructions++

		halted, endBurst := p.perform(sp, in, now)
		if m.failed != nil {
			p.euActive = false
			return
		}
		if halted {
			p.cur = nil
			continue
		}
		if endBurst {
			if p.stallOn != isa.None {
				// Control-driven baseline (§6): the EU waits out the
				// remote access instead of multithreading over it.
				slot := p.stallOn
				p.stallOn = isa.None
				if !sp.present[slot] {
					sp.state = spStalled
					sp.blocked = slot
					p.euActive = false
					if p.eu.free < now {
						p.eu.free = now
					}
					return
				}
			}
			m.at(now, func(tt int64) { p.euStep(tt, false) })
			return
		}
	}
}

// firstAbsent returns the first absent input slot of in, or isa.None.
func firstAbsent(sp *spInst, in *isa.Instr) int {
	if in.A != isa.None && !sp.present[in.A] {
		return in.A
	}
	if in.B != isa.None && !sp.present[in.B] {
		return in.B
	}
	for _, a := range in.Args {
		if !sp.present[a] {
			return a
		}
	}
	return isa.None
}

// instrCost returns the EU time for in, resolving comparison operand kinds.
// In ZeroOverhead mode (the §5.3.4 hand-written-sequential stand-in) the
// PODS control machinery — spawns, sends, continuation plumbing, Range
// Filters — costs nothing: a compiled sequential program has none of it.
func (p *pe) instrCost(sp *spInst, in *isa.Instr) int64 {
	if p.m.cfg.ZeroOverhead {
		switch in.Op {
		case isa.SPAWN, isa.SPAWND, isa.SEND, isa.SELF, isa.CLEAR, isa.HALT,
			isa.ALLOC, isa.ALLOCD, isa.NOP,
			isa.ROWLO, isa.ROWHI, isa.COLLO, isa.COLHI, isa.UNIFLO, isa.UNIFHI:
			return 0
		}
	}
	floatCmp := false
	switch in.Op {
	case isa.CMPLT, isa.CMPLE, isa.CMPGT, isa.CMPGE, isa.CMPEQ, isa.CMPNE:
		floatCmp = sp.frame[in.A].Kind == isa.KindFloat || sp.frame[in.B].Kind == isa.KindFloat
	}
	cost := timing.InstrTime(in.Op, floatCmp)
	if !p.m.cfg.ZeroOverhead {
		// SP operand slots live in Execution Memory (§3): every executed
		// instruction reads its operands from slots and stores its result
		// back, unlike register-allocated compiled code. Charge one memory
		// reference per operand and per result.
		nIn := len(in.Args)
		if in.A != isa.None {
			nIn++
		}
		if in.B != isa.None {
			nIn++
		}
		cost += int64(nIn) * timing.MemReadTime
		if in.Dst != isa.None {
			cost += timing.MemWriteTime
		}
	}
	return cost
}

// set stores a result in the SP frame.
func (sp *spInst) set(slot int, v isa.Value) {
	sp.frame[slot] = v
	sp.present[slot] = true
}

// perform executes the semantic action of in at virtual time now (the time
// the instruction completes on the EU). It returns whether the SP halted and
// whether the burst must end. The program counter is advanced here.
func (p *pe) perform(sp *spInst, in *isa.Instr, now int64) (halted, endBurst bool) {
	m := p.m
	f := sp.frame
	next := sp.pc + 1

	if isa.IsScalar(in.Op) {
		var bv isa.Value
		if in.B != isa.None {
			bv = f[in.B]
		}
		v, err := isa.EvalScalar(in.Op, f[in.A], bv)
		if err != nil {
			m.fail(fmt.Errorf("sim: SP %q pc %d: %v", sp.tmpl.Name, sp.pc, err))
			return false, true
		}
		sp.set(in.Dst, v)
		sp.pc = next
		return false, false
	}

	switch in.Op {
	case isa.NOP:

	case isa.CONST:
		sp.set(in.Dst, in.Imm)
	case isa.MOVE:
		sp.set(in.Dst, f[in.A])
	case isa.CLEAR:
		sp.present[in.Dst] = false
	case isa.SELF:
		sp.set(in.Dst, isa.SPRef(sp.id))

	case isa.JUMP:
		next = in.Target
	case isa.BRFALSE:
		if !f[in.A].AsBool() {
			next = in.Target
		}
	case isa.BRTRUE:
		if f[in.A].AsBool() {
			next = in.Target
		}

	case isa.ROWLO, isa.ROWHI, isa.COLLO, isa.COLHI, isa.UNIFLO, isa.UNIFHI:
		p.performOwnership(sp, in)

	case isa.ALLOC, isa.ALLOCD:
		endBurst = p.performAlloc(sp, in, now)
	case isa.AREAD:
		endBurst = p.performRead(sp, in, now)
	case isa.AWRITE:
		p.performWrite(sp, in, now)
		endBurst = true
	case isa.SPAWN:
		p.performSpawn(sp, in, now, false)
		endBurst = true
	case isa.SPAWND:
		p.performSpawn(sp, in, now, true)
		endBurst = true
	case isa.SEND:
		p.performSend(sp, in, now)
		endBurst = true

	case isa.HALT:
		m.trace(now, p.id, "halt SP#%d %q", sp.id, sp.tmpl.Name)
		m.destroy(sp)
		m.serve(&p.mm, now, timing.ReleaseSPTime, nil)
		sp.pc = next
		return true, false

	default:
		m.fail(fmt.Errorf("sim: SP %q pc %d: unimplemented opcode %s", sp.tmpl.Name, sp.pc, in.Op))
		return false, true
	}

	sp.pc = next
	return false, endBurst
}

// performOwnership answers Range-Filter queries against the local array
// header (§4.2.2). Empty ownership yields an empty range (lo=1, hi=0 style)
// so the filtered loop executes zero iterations.
func (p *pe) performOwnership(sp *spInst, in *isa.Instr) {
	m := p.m
	if in.Op == isa.UNIFLO || in.Op == isa.UNIFHI {
		lo := sp.frame[in.A].AsInt()
		hi := sp.frame[in.B].AsInt()
		n := hi - lo + 1
		if n < 0 {
			n = 0
		}
		pes := int64(m.cfg.NumPEs)
		id := int64(p.id)
		blo := lo + n*id/pes
		bhi := lo + n*(id+1)/pes - 1
		if in.Op == isa.UNIFLO {
			sp.set(in.Dst, isa.Int(blo))
		} else {
			sp.set(in.Dst, isa.Int(bhi))
		}
		return
	}
	h := m.header(sp.frame[in.A].I)
	if h == nil {
		m.fail(fmt.Errorf("sim: SP %q pc %d: ownership query on unknown array", sp.tmpl.Name, sp.pc))
		return
	}
	switch in.Op {
	case isa.ROWLO, isa.ROWHI:
		lo, hi, ok := h.OwnedRows(p.id)
		if !ok {
			lo, hi = 1, 0 // empty range
		}
		if in.Op == isa.ROWLO {
			sp.set(in.Dst, isa.Int(lo))
		} else {
			sp.set(in.Dst, isa.Int(hi))
		}
	case isa.COLLO, isa.COLHI:
		row := sp.frame[in.B].AsInt()
		lo, hi, ok := h.OwnedCols(p.id, row)
		if !ok {
			lo, hi = 1, 0
		}
		if in.Op == isa.COLLO {
			sp.set(in.Dst, isa.Int(lo))
		} else {
			sp.set(in.Dst, isa.Int(hi))
		}
	}
}
