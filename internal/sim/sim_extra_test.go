package sim

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

// uniformFillProgram distributes a 1-D fill with the uniform Range Filter
// (UNIFLO/UNIFHI) instead of ownership ranges.
func uniformFillProgram() *isa.Program {
	// loop(A, init, limit): slots 0=A 1=init 2=limit 3=i 4=lim 5=one
	//   6=cond 7=val 8=uLo 9=uHi
	l := newAsm(1, "uloop", isa.TmplLoop, 3, 10)
	l.move(3, 1)
	l.move(4, 2)
	l.own(isa.UNIFLO, 8, 3, 4)
	l.own(isa.UNIFHI, 9, 3, 4)
	l.move(3, 8)
	l.move(4, 9)
	l.konst(5, isa.Int(1))
	l.label("head")
	l.bin(isa.CMPGT, 6, 3, 4)
	l.brtrue(6, "exit")
	l.bin(isa.IMUL, 7, 3, 3)
	l.awrite(0, 7, 3)
	l.bin(isa.IADD, 3, 3, 5)
	l.jump("head")
	l.label("exit")
	l.halt()
	l.t.Distributed = true
	l.t.RFKind = isa.RFUniform

	a := newAsm(0, "main", isa.TmplMain, 1, 3)
	a.alloc(isa.ALLOCD, 1, "A", 0)
	a.konst(2, isa.Int(1))
	a.spawn(isa.SPAWND, 1, 1, 2, 0)
	a.halt()
	return &isa.Program{Templates: []*isa.Template{a.done(), l.done()}, EntryID: 0}
}

// TestUniformFilterTilesRange property: for any n and PE count, the uniform
// block split covers every index exactly once.
func TestUniformFilterTilesRange(t *testing.T) {
	f := func(nU, pesU uint8) bool {
		n := int(nU%60) + 1
		pes := int(pesU%16) + 1
		m, err := New(uniformFillProgram(), Config{NumPEs: pes, PageElems: 8, DistThreshold: 16})
		if err != nil {
			return false
		}
		if _, err := m.Run(isa.Int(int64(n))); err != nil {
			t.Logf("n=%d pes=%d: %v", n, pes, err)
			return false
		}
		vals, mask, _, err := m.ReadArray("A")
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if !mask[i] || vals[i] != float64((i+1)*(i+1)) {
				t.Logf("n=%d pes=%d: A[%d]=%v written=%v", n, pes, i+1, vals[i], mask[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestMorePEsThanRows: a distributed fill where most PEs own nothing must
// still terminate with the correct result (empty RF ranges).
func TestMorePEsThanRows(t *testing.T) {
	m, err := New(distributedFillProgram(), Config{NumPEs: 16, PageElems: 8, DistThreshold: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(isa.Int(8)); err != nil {
		t.Fatal(err)
	}
	vals, mask, _, _ := m.ReadArray("A")
	for i := 0; i < 8; i++ {
		if !mask[i] || vals[i] != float64(3*(i+1)) {
			t.Fatalf("A[%d]=%v written=%v", i+1, vals[i], mask[i])
		}
	}
}

// TestRemoteWriteAndDeferredRemoteRead exercises the cross-PE write path
// plus a remote read queued before its producer writes.
func TestRemoteWriteAndDeferredRemoteRead(t *testing.T) {
	// reader(A): reads A[n] (owned by the last PE), writes A[1]+read → A[2].
	r := newAsm(1, "reader", isa.TmplFunc, 2, 6)
	// slots: 0=A 1=n 2=tmp 3=two 4=sum
	r.aread(2, 0, 1) // A[n] — remote for PE0, absent until writer runs
	r.konst(3, isa.Int(2))
	r.bin(isa.FADD, 4, 2, 2)
	r.awrite(0, 4, 3)
	r.halt()

	// writer(A, n): writes A[n] = 21.
	w := newAsm(2, "writer", isa.TmplFunc, 2, 4)
	w.konst(2, isa.Float(21))
	w.awrite(0, 2, 1)
	w.halt()

	// main(n): A = allocd(n); spawn reader; spawn writer.
	a := newAsm(0, "main", isa.TmplMain, 1, 3)
	a.alloc(isa.ALLOCD, 1, "A", 0)
	a.spawn(isa.SPAWN, 1, 1, 0)
	a.spawn(isa.SPAWN, 2, 1, 0)
	a.halt()
	prog := &isa.Program{Templates: []*isa.Template{a.done(), r.done(), w.done()}, EntryID: 0}

	m, err := New(prog, Config{NumPEs: 4, PageElems: 8, DistThreshold: 16})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(isa.Int(64))
	if err != nil {
		t.Fatal(err)
	}
	vals, mask, _, _ := m.ReadArray("A")
	if !mask[1] || vals[1] != 42 {
		t.Fatalf("A[2]=%v written=%v, want 42", vals[1], mask[1])
	}
	if res.Counts.RemoteReads == 0 {
		t.Error("expected remote reads")
	}
}

func TestStallModeDeterministicAndCorrect(t *testing.T) {
	// The P&R baseline must still produce identical array contents.
	for _, stall := range []bool{false, true} {
		m, err := New(distributedFillProgram(), Config{NumPEs: 4, PageElems: 8, DistThreshold: 16, Stall: stall})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(isa.Int(64)); err != nil {
			t.Fatalf("stall=%v: %v", stall, err)
		}
		vals, _, _, _ := m.ReadArray("A")
		for i := 0; i < 64; i++ {
			if vals[i] != float64(3*(i+1)) {
				t.Fatalf("stall=%v: A[%d]=%v", stall, i+1, vals[i])
			}
		}
	}
}

func TestDisableCacheStillCorrect(t *testing.T) {
	m, err := New(deferredReadProgram(), Config{NumPEs: 1, DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	vals, _, _, _ := m.ReadArray("A")
	if vals[1] != 11 {
		t.Fatalf("A[2]=%v want 11", vals[1])
	}
}

func TestMaxEventsGuard(t *testing.T) {
	// An SP spinning in an infinite loop must hit the event/instruction
	// guard rather than hang. Build: loop forever incrementing a slot and
	// writing different array cells (each write is an event).
	a := newAsm(0, "main", isa.TmplMain, 0, 6)
	a.konst(3, isa.Int(1000000))
	a.alloc(isa.ALLOC, 0, "A", 3)
	a.konst(1, isa.Int(1)).konst(2, isa.Int(1))
	a.label("head")
	a.un(isa.ITOF, 4, 1)
	a.awrite(0, 4, 1)
	a.bin(isa.IADD, 1, 1, 2)
	a.jump("head")
	prog := &isa.Program{Templates: []*isa.Template{a.done()}, EntryID: 0}
	m, err := New(prog, Config{NumPEs: 1, MaxEvents: 5000})
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Run()
	if err == nil || !strings.Contains(err.Error(), "events") {
		t.Fatalf("err = %v, want event-guard error", err)
	}
}

func TestResultUtilizationAccessors(t *testing.T) {
	m, err := New(fillLoopProgram(), Config{NumPEs: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(isa.Int(8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Utilization("EU") <= 0 || res.Utilization("EU") > 1 {
		t.Errorf("EU util = %v", res.Utilization("EU"))
	}
	if res.Utilization("MS") != res.Utilization("MU") {
		t.Error("MS must alias MU (the paper's Figure 8 label)")
	}
	if res.Utilization("bogus") != 0 {
		t.Error("unknown unit should be 0")
	}
	if !strings.Contains(res.String(), "EU=") {
		t.Errorf("summary: %s", res.String())
	}
	if res.Seconds() <= 0 {
		t.Error("Seconds() must be positive")
	}
}

func TestReadArrayUnknownName(t *testing.T) {
	m, err := New(fillLoopProgram(), Config{NumPEs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(isa.Int(4)); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := m.ReadArray("nope"); err == nil {
		t.Fatal("unknown array should error")
	}
	names := m.ArrayNames()
	if len(names) != 1 || names[0] != "A" {
		t.Fatalf("names = %v", names)
	}
}

func TestBoundsErrorFailsRun(t *testing.T) {
	a := newAsm(0, "main", isa.TmplMain, 0, 4)
	a.konst(3, isa.Int(4))
	a.alloc(isa.ALLOC, 0, "A", 3)
	a.konst(2, isa.Int(99)).konst(1, isa.Int(5))
	a.awrite(0, 1, 2) // A[99] out of bounds
	a.halt()
	prog := &isa.Program{Templates: []*isa.Template{a.done()}, EntryID: 0}
	m, err := New(prog, Config{NumPEs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("err = %v, want bounds error", err)
	}
}

func TestSpawnArgMismatchFails(t *testing.T) {
	c := newAsm(1, "child", isa.TmplFunc, 3, 4)
	c.halt()
	a := newAsm(0, "main", isa.TmplMain, 0, 2)
	a.konst(0, isa.Int(1))
	a.spawn(isa.SPAWN, 1, 0) // child wants 3 args, gets 1
	a.halt()
	prog := &isa.Program{Templates: []*isa.Template{a.done(), c.done()}, EntryID: 0}
	m, err := New(prog, Config{NumPEs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err == nil {
		t.Fatal("arg-count mismatch should fail")
	}
}

func TestTraceOutput(t *testing.T) {
	var buf strings.Builder
	m, err := New(deferredReadProgram(), Config{NumPEs: 1, Trace: &buf})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"spawn SP#", "alloc \"A\"", "block SP#", "unblock SP#", "halt SP#"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
}

func TestPerPEAndImbalance(t *testing.T) {
	m, err := New(distributedFillProgram(), Config{NumPEs: 4, PageElems: 8, DistThreshold: 16})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(isa.Int(64))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.LoadImbalance(); got < 1.0 || got > 2.0 {
		t.Errorf("imbalance = %.2f for a uniform fill, want near 1", got)
	}
	tbl := res.PerPE()
	if !strings.Contains(tbl, "PE") || strings.Count(tbl, "\n") != 5 {
		t.Errorf("per-PE table:\n%s", tbl)
	}
}
