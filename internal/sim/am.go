package sim

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/istructure"
	"repro/internal/timing"
)

// performAlloc implements the (distributing) allocate operator of §4.1.
// The array ID is delivered split-phase: "the SP initiating the allocation
// is not blocked while the allocate operation is in progress".
//
// State (headers and shard segments) is installed eagerly on every PE so
// that a racing writer can never observe a half-allocated array; the
// *timing* of the allocation — local AM service, broadcast messages, remote
// AM service — is charged asynchronously exactly as in the paper.
func (p *pe) performAlloc(sp *spInst, in *isa.Instr, now int64) (endBurst bool) {
	m := p.m
	dims := make([]int, len(in.Args))
	elems := 1
	for i, a := range in.Args {
		dims[i] = int(sp.frame[a].AsInt())
		elems *= dims[i]
	}
	m.nextArray++
	id := m.nextArray
	dist := in.Op == isa.ALLOCD && m.cfg.NumPEs > 1 && elems >= m.cfg.DistThreshold && !m.cfg.ZeroOverhead
	name := in.Comment
	if name == "" {
		name = fmt.Sprintf("anon%d", id)
	}
	h, err := istructure.NewHeader(id, name, dims, m.cfg.PageElems, m.cfg.NumPEs, p.id, dist)
	if err != nil {
		m.fail(fmt.Errorf("sim: SP %q pc %d: %w", sp.tmpl.Name, sp.pc, err))
		return true
	}
	m.arrays[id] = h
	if _, seen := m.byName[name]; !seen {
		m.nameSeq = append(m.nameSeq, name)
	}
	m.byName[name] = id
	for _, q := range m.pes {
		if err := q.shard.Install(h); err != nil {
			m.fail(err)
			return true
		}
	}
	m.counts.ArraysAlloced++
	m.trace(now, p.id, "alloc %q id=%d dims=%v dist=%v", name, id, dims, dist)

	sp.present[in.Dst] = false
	spID, dst := sp.id, in.Dst
	if m.cfg.ZeroOverhead {
		m.deliver(now, spID, dst, isa.Array(id))
		return false
	}
	// Local Array Manager builds the header, allocates space, returns the ID
	// to the requesting SP, then broadcasts to all other PEs (§4.1).
	m.serve(&p.am, now, timing.AMAllocTime, func(t int64) {
		m.deliver(t, spID, dst, isa.Array(id))
		if !dist {
			return
		}
		for _, q := range m.pes {
			if q.id == p.id {
				continue
			}
			target := q
			m.counts.SmallMsgs++
			m.serve(&p.ru, t, timing.SmallMessageRUTime, func(t2 int64) {
				m.at(t2+timing.NetworkTime, func(t3 int64) {
					m.serve(&target.am, t3, timing.AMAllocTime, nil)
				})
			})
		}
	})
	return true
}

// resolveAccess decodes an array access instruction into (header, offset).
func (p *pe) resolveAccess(sp *spInst, arrSlot int, idxSlots []int) (*istructure.Header, int, bool) {
	m := p.m
	hv := sp.frame[arrSlot]
	if hv.Kind != isa.KindArray {
		m.fail(fmt.Errorf("sim: SP %q pc %d: %s is not an array handle", sp.tmpl.Name, sp.pc, hv))
		return nil, 0, false
	}
	h := m.header(hv.I)
	if h == nil {
		m.fail(fmt.Errorf("sim: SP %q pc %d: unknown array id %d", sp.tmpl.Name, sp.pc, hv.I))
		return nil, 0, false
	}
	idx := make([]int64, len(idxSlots))
	for i, s := range idxSlots {
		idx[i] = sp.frame[s].AsInt()
	}
	off, err := h.Offset(idx)
	if err != nil {
		m.fail(fmt.Errorf("sim: SP %q pc %d: %w", sp.tmpl.Name, sp.pc, err))
		return nil, 0, false
	}
	return h, off, true
}

// performRead implements the split-phase I-structure read of §4/5.1. The
// 2.7 µs address-arithmetic cost was already charged by the EU. A local
// present element is delivered immediately (and the burst continues); all
// other cases go through the Array Manager and end the burst.
func (p *pe) performRead(sp *spInst, in *isa.Instr, now int64) (endBurst bool) {
	m := p.m
	h, off, ok := p.resolveAccess(sp, in.A, in.Args)
	if !ok {
		return true
	}
	sp.present[in.Dst] = false
	spID, dst := sp.id, in.Dst

	if m.cfg.ZeroOverhead {
		if v, present := p.shard.Peek(h.ID, off); present {
			sp.set(in.Dst, v)
			m.counts.LocalReads++
			return false
		}
		// Sequential semantics should never read ahead of a write; fall
		// through to the deferred path so the deadlock detector reports it.
	}

	owner := h.OwnerOf(off)
	if owner == p.id {
		if v, present := p.shard.Peek(h.ID, off); present {
			sp.set(in.Dst, v)
			m.counts.LocalReads++
			return false
		}
		// Element absent: the AM enqueues the read (I-structure deferred
		// read); the matching write will release it.
		m.counts.LocalReads++
		w := istructure.Waiter{PE: p.id, SP: spID, Slot: dst}
		arr := h.ID
		m.serve(&p.am, now, timing.AMEnqueueTime, func(t int64) {
			v, res, err := p.shard.ReadLocal(arr, off, w)
			if err != nil {
				m.fail(err)
				return
			}
			if res == istructure.ReadHit {
				// The write landed between issue and AM service.
				m.deliver(t, spID, dst, v)
			}
		})
		return true
	}

	// Remote element: probe the software page cache first (§4).
	m.counts.RemoteReads++
	arr := h.ID
	if m.cfg.Stall {
		// Control-driven baseline: the EU waits out the access when the
		// data already exists and is merely remote (pure communication
		// latency, which P&R cannot hide). A read of a value that has not
		// been produced yet is a true dependence — a static schedule would
		// have ordered it after the producer, so it blocks normally.
		if _, _, hit := p.shard.CacheLookup(arr, h, off); hit {
			p.stallOn = dst
		} else if _, present := m.pes[owner].shard.Peek(h.ID, off); present {
			p.stallOn = dst
		}
	}
	if m.cfg.DisableCache {
		m.serve(&p.am, now, timing.AMCachedReadTime, func(t int64) {
			p.shard.CacheMisses++
			p.sendReadRequest(t, arr, h, off, owner, spID, dst)
		})
		return true
	}
	m.serve(&p.am, now, timing.AMCachedReadTime, func(t int64) {
		if v, _, hit := p.shard.CacheLookup(arr, h, off); hit {
			p.shard.CacheHits++
			end := m.extend(&p.am, t, timing.AMDeliverTime)
			m.deliver(end, spID, dst, v)
			return
		}
		p.shard.CacheMisses++
		end := m.extend(&p.am, t, timing.AMCacheMissExtra)
		p.sendReadRequest(end, arr, h, off, owner, spID, dst)
	})
	return true
}

// sendReadRequest ships a read request to the owner PE; the owner returns
// the whole page if the element is present, else queues the request. Read
// requests are synchronous (unbatchable), so they pay Dunigan's full
// short-message latency in flight.
func (p *pe) sendReadRequest(t int64, arr int64, h *istructure.Header, off, owner int, spID int64, dst int) {
	m := p.m
	m.counts.SmallMsgs++
	target := m.pes[owner]
	m.serve(&p.ru, t, timing.SmallMessageRUTime, func(t2 int64) {
		m.at(t2+timing.SyncMessageFlight+timing.NetworkTime, func(t3 int64) {
			m.serve(&target.am, t3, timing.AMRemoteReadTime, func(t4 int64) {
				if v, present := target.shard.Peek(arr, off); present {
					if m.cfg.DisableCache {
						target.sendValue(t4, p.id, spID, dst, v)
						return
					}
					target.sendPage(t4, arr, h, off, p.id, spID, dst)
					return
				}
				end := m.extend(&target.am, t4, timing.AMEnqueueTime)
				_ = end
				if err := target.shard.QueueRemote(arr, off, istructure.RemoteWaiter{PE: p.id, SP: spID, Slot: dst}); err != nil {
					m.fail(err)
				}
			})
		})
	})
}

// sendPage extracts the page containing off and ships it to reqPE, where it
// is installed in the software cache and the requested element is delivered
// to the waiting SP.
//
// The Routing Unit is occupied only for the message *setup* (the batched
// small-message estimate): on the iPSC/2's Direct-Connect hardware the
// transfer itself is DMA-driven, so Dunigan's long-message equation is
// charged as in-flight latency, not node occupancy.
func (p *pe) sendPage(t int64, arr int64, h *istructure.Header, off, reqPE int, spID int64, dstSlot int) {
	m := p.m
	pageIdx, pg, elems, err := p.shard.ExtractPage(arr, off)
	if err != nil {
		m.fail(err)
		return
	}
	sendEnd := m.extend(&p.am, t, timing.PageSendTime(elems))
	m.counts.PageMsgs++
	req := m.pes[reqPE]
	flight := timing.DuniganTime(elems * timing.ElemBytes)
	m.serve(&p.ru, sendEnd, timing.SmallMessageRUTime, func(t2 int64) {
		m.at(t2+flight+timing.NetworkTime, func(t3 int64) {
			m.serve(&req.am, t3, timing.PageReceiveTime(elems), func(t4 int64) {
				req.shard.InstallPage(arr, pageIdx, pg)
				i := off - pageIdx*h.PageElems
				if i < 0 || i >= len(pg.Vals) || !pg.Set[i] {
					m.fail(fmt.Errorf("sim: page %d of array %d shipped without requested element", pageIdx, arr))
					return
				}
				end := m.extend(&req.am, t4, timing.AMDeliverTime)
				m.deliver(end, spID, dstSlot, pg.Vals[i])
			})
		})
	})
}

// sendValue ships a single element value to a waiting SP on another PE as a
// small message (used by deferred-read releases and the no-cache ablation).
// Replies are synchronous — the reader is waiting — so they pay Dunigan's
// full short-message latency.
func (p *pe) sendValue(t int64, reqPE int, spID int64, dstSlot int, v isa.Value) {
	m := p.m
	req := m.pes[reqPE]
	m.counts.SmallMsgs++
	m.serve(&p.ru, t, timing.SmallMessageRUTime, func(t2 int64) {
		m.at(t2+timing.SyncMessageFlight+timing.NetworkTime, func(t3 int64) {
			m.serve(&req.mu, t3, timing.MatchTime, func(t4 int64) {
				m.counts.TokensMatched++
				m.deliver(t4, spID, dstSlot, v)
			})
		})
	})
}

// performWrite implements the I-structure write (§5.1 Array Manager):
// local writes release queued local readers and ship pages to queued remote
// readers; remote writes travel to the owner PE.
func (p *pe) performWrite(sp *spInst, in *isa.Instr, now int64) {
	m := p.m
	h, off, ok := p.resolveAccess(sp, in.A, in.Args)
	if !ok {
		return
	}
	val := sp.frame[in.B]
	spName := sp.tmpl.Name

	if m.cfg.ZeroOverhead {
		local, remote, err := p.shard.Write(h.ID, off, val)
		if err != nil {
			m.fail(fmt.Errorf("sim: SP %q: %w", spName, err))
			return
		}
		for _, w := range local {
			m.deliver(now, w.SP, w.Slot, val)
		}
		for _, rw := range remote {
			m.deliver(now, rw.SP, rw.Slot, val)
		}
		m.counts.LocalWrites++
		return
	}

	owner := h.OwnerOf(off)
	if owner == p.id {
		m.counts.LocalWrites++
		p.ownerWrite(now, h, off, val, spName)
		return
	}
	// Remote write: "the value is sent to the target PE, which writes it
	// into the appropriate array slot" (§5.1).
	m.counts.RemoteWrites++
	m.counts.SmallMsgs++
	target := m.pes[owner]
	m.serve(&p.ru, now, timing.SmallMessageRUTime, func(t int64) {
		m.at(t+timing.NetworkTime, func(t2 int64) {
			target.ownerWrite(t2, h, off, val, spName)
		})
	})
}

// ownerWrite performs the write on the owning PE's Array Manager and
// releases any deferred local readers and queued remote page requests.
func (p *pe) ownerWrite(now int64, h *istructure.Header, off int, val isa.Value, spName string) {
	m := p.m
	arr := h.ID
	m.serve(&p.am, now, timing.AMWriteTime, func(t int64) {
		local, remote, err := p.shard.Write(arr, off, val)
		if err != nil {
			m.fail(fmt.Errorf("sim: SP %q: %w", spName, err))
			return
		}
		if n := int64(len(local) + len(remote)); n > 0 {
			// "Array Write: memory_write_time + number_queued_reads *
			// message_time" — release each deferred reader.
			end := m.extend(&p.am, t, n*timing.AMPerQueuedRead)
			for _, w := range local {
				m.deliver(end, w.SP, w.Slot, val)
			}
			// Queued remote readers receive the value as a token (pages
			// are only shipped for reads that find the element present,
			// §5.1 Array Manager).
			for _, rw := range remote {
				p.sendValue(end, rw.PE, rw.SP, rw.Slot, val)
			}
		}
	})
}
