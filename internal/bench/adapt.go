package bench

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/isa"
	"repro/internal/kernels"
)

// The ADAPT experiment measures what runtime-adaptive repartitioning of
// Range Filter bounds buys on the drifting-skew relax kernel, where the
// expensive rows rotate across sweeps so no fixed partition stays right.
// Each (PE count) cell runs the full 2×2 of adaptation off/on × work
// stealing off/on and reports
//
//   - the wall-clock time of each run,
//   - the makespan (max per-PE executed instructions — the speed-up proxy
//     on an oversubscribed host, as in SKEW),
//   - the recovered utilization (mean/max per-PE instructions), and
//   - the rebound count: how many cut-vector broadcasts the coordinator
//     issued (0 in the adapt-off arms by construction).
//
// Stealing and adaptation compose rather than compete: stealing reacts
// within a sweep by migrating whole not-yet-started SPs, adaptation fixes
// the split between sweeps so there is less left to steal.

// AdaptCell is one (PEs, steal, adapt) measurement.
type AdaptCell struct {
	Wall     time.Duration
	Makespan int64   // max per-PE executed instructions
	Util     float64 // mean/max per-PE executed instructions
	Rebounds int64
	Steals   int64
}

// AdaptResult is the ADAPT experiment output.
type AdaptResult struct {
	N      int
	Sweeps int
	PEs    []int
	// Cells[pes][steal][adapt] — off at index 0, on at 1.
	Cells map[int][2][2]AdaptCell
}

// Adapt runs the ADAPT experiment: the relax kernel at problem size n with
// the given sweep count, over the given PE counts.
func Adapt(n, sweeps int, pes []int) (*AdaptResult, error) {
	if cluster.ForceStealFromEnv() || cluster.ForceAdaptFromEnv() {
		// Either override would silently flip a control arm on, reporting
		// a ~1.0 ratio as if the mechanism bought nothing.
		return nil, fmt.Errorf("bench: ADAPT needs genuine off control arms; unset PODS_FORCE_STEAL and PODS_FORCE_ADAPT")
	}
	prog, err := Compile("relax.id", kernels.Relax, true)
	if err != nil {
		return nil, err
	}
	args := []isa.Value{isa.Int(int64(n)), isa.Int(int64(sweeps))}
	r := &AdaptResult{N: n, Sweeps: sweeps, PEs: pes, Cells: make(map[int][2][2]AdaptCell)}
	ctx := context.Background()
	for _, p := range pes {
		var cell [2][2]AdaptCell
		for si, steal := range []bool{false, true} {
			for ai, adapt := range []bool{false, true} {
				runCtx, cancel := context.WithTimeout(ctx, 2*time.Minute)
				start := time.Now()
				res, err := cluster.Execute(runCtx, prog,
					cluster.Config{NumPEs: p, Steal: steal, Adapt: adapt}, args...)
				cancel()
				if err != nil {
					return nil, fmt.Errorf("relax @%dPE steal=%v adapt=%v: %w", p, steal, adapt, err)
				}
				c := AdaptCell{
					Wall:     time.Since(start),
					Rebounds: res.Stats.Rebounds,
					Steals:   res.Stats.Steals,
				}
				var sum int64
				for _, v := range res.PEInstrs {
					sum += v
					if v > c.Makespan {
						c.Makespan = v
					}
				}
				if c.Makespan > 0 {
					c.Util = float64(sum) / float64(p) / float64(c.Makespan)
				}
				cell[si][ai] = c
			}
		}
		r.Cells[p] = cell
	}
	return r, nil
}

// Format renders the experiment.
func (r *AdaptResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ADAPT — adaptive Range-Filter repartitioning on the drifting-skew relax kernel, n=%d sweeps=%d\n", r.N, r.Sweeps)
	fmt.Fprintf(&b, "(makespan = max per-PE instrs; util = mean÷max; rebounds = cut broadcasts issued)\n\n")
	fmt.Fprintf(&b, "%4s %-9s %12s %10s %7s %8s %7s\n",
		"PEs", "arm", "wall-ms", "makespan", "util", "rebounds", "steals")
	ms := func(d time.Duration) string {
		return fmt.Sprintf("%.3f", float64(d.Microseconds())/1000)
	}
	arms := []struct {
		si, ai int
		name   string
	}{{0, 0, "static"}, {0, 1, "adapt"}, {1, 0, "steal"}, {1, 1, "both"}}
	for _, p := range r.PEs {
		cell := r.Cells[p]
		for _, a := range arms {
			c := cell[a.si][a.ai]
			fmt.Fprintf(&b, "%4d %-9s %12s %10d %7.2f %8d %7d\n",
				p, a.name, ms(c.Wall), c.Makespan, c.Util, c.Rebounds, c.Steals)
		}
	}
	return b.String()
}

// WriteCSV emits pes,steal,adapt,wall_ms,makespan,util,rebounds,steals rows.
func (r *AdaptResult) WriteCSV(w io.Writer) error {
	var rows [][]string
	onOff := []string{"off", "on"}
	for _, p := range r.PEs {
		cell := r.Cells[p]
		for si := 0; si < 2; si++ {
			for ai := 0; ai < 2; ai++ {
				c := cell[si][ai]
				rows = append(rows, []string{
					strconv.Itoa(p), onOff[si], onOff[ai],
					fmtF(float64(c.Wall.Microseconds()) / 1000),
					strconv.FormatInt(c.Makespan, 10),
					fmtF(c.Util),
					strconv.FormatInt(c.Rebounds, 10),
					strconv.FormatInt(c.Steals, 10),
				})
			}
		}
	}
	return writeCSV(w, []string{"pes", "steal", "adapt", "wall_ms", "makespan", "util", "rebounds", "steals"}, rows)
}
