package bench

import (
	"encoding/csv"
	"io"
	"strconv"
)

// CSV writers for the figure data, so results can be re-plotted without
// parsing the human-readable tables.

func writeCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }

// WriteCSV emits Figure 8 as unit,pes,utilization rows.
func (r *F8Result) WriteCSV(w io.Writer) error {
	var rows [][]string
	for _, u := range r.Units {
		for pi, p := range r.PEs {
			rows = append(rows, []string{u, strconv.Itoa(p), fmtF(r.Util[u][pi])})
		}
	}
	return writeCSV(w, []string{"unit", "pes", "utilization"}, rows)
}

// WriteCSV emits Figure 9 as size,pes,eu_utilization rows.
func (r *F9Result) WriteCSV(w io.Writer) error {
	var rows [][]string
	for si, n := range r.Sizes {
		for pi, p := range r.PEs {
			rows = append(rows, []string{strconv.Itoa(n), strconv.Itoa(p), fmtF(r.Util[si][pi])})
		}
	}
	return writeCSV(w, []string{"size", "pes", "eu_utilization"}, rows)
}

// WriteCSV emits Figure 10 as series,pes,speedup,seconds rows (the P&R
// baseline appears as series "PR<size>").
func (r *F10Result) WriteCSV(w io.Writer) error {
	var rows [][]string
	for si, n := range r.Sizes {
		for pi, p := range r.PEs {
			rows = append(rows, []string{
				strconv.Itoa(n), strconv.Itoa(p),
				fmtF(r.Speedup[si][pi]), fmtF(r.Times[si][pi]),
			})
		}
	}
	for pi, p := range r.PEs {
		rows = append(rows, []string{
			"PR" + strconv.Itoa(r.PRSize), strconv.Itoa(p),
			fmtF(r.PRSpeedup[pi]), "",
		})
	}
	return writeCSV(w, []string{"series", "pes", "speedup", "seconds"}, rows)
}
