package bench

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	ctrace "repro/internal/cluster/trace"
	"repro/internal/kernels"
)

// The TRACE experiment measures what always-on observability costs: each
// kernel runs with tracing off and on (event recorder + per-round metric
// snapshots + driver-side timeline assembly) and reports the overhead
// ratio. The claim under test is that tracing is cheap enough to leave on:
// the instruction makespan — max per-PE executed instructions, the
// deterministic speed-up proxy used by SKEW and ADAPT — must grow by at
// most TraceOverheadLimit. Wall-clock times are reported informationally
// (they are too noisy on an oversubscribed CI host to gate on). Each arm
// runs Reps times and keeps the minimum, squeezing scheduler noise out of
// both sides of the ratio.

// TraceOverheadLimit is the acceptance bound on the makespan ratio of a
// traced run over an untraced one.
const TraceOverheadLimit = 1.05

// TraceCell is one (kernel, tracing on/off) arm: best-of-Reps measurement.
type TraceCell struct {
	Wall     time.Duration // min over reps
	Makespan int64         // min over reps of max per-PE executed instructions
	Events   int           // trace events gathered (traced arm only)
	Drops    int64         // events dropped to the ring bound (traced arm only)
	Samples  int           // timeline samples assembled (traced arm only)
}

// TraceResult is the TRACE experiment output.
type TraceResult struct {
	N       int
	PEs     int
	Reps    int
	Kernels []string
	Off     map[string]TraceCell
	On      map[string]TraceCell
	// Overhead[kernel] = On.Makespan / Off.Makespan.
	Overhead map[string]float64
	// PEStats[kernel] is the traced arm's per-PE counter breakdown.
	PEStats map[string][]cluster.PEStat

	// Retained traced-arm data for artifact export.
	traces map[string]*ctrace.Trace
	names  map[string]func(tmpl int64) string
}

// traceKernels are the default workloads: the drifting-skew relax kernel
// (steal + adapt traffic) and matmul (page-fetch traffic).
var traceKernels = []string{"relax", "matmul"}

// Trace runs the TRACE experiment at problem size n on pes PEs with work
// stealing and adaptive repartitioning enabled (the busiest configuration —
// every event kind fires). reps < 1 is clamped to 1.
func Trace(n, pes, reps int, kerns ...string) (*TraceResult, error) {
	if cluster.ForceTraceFromEnv() {
		// The override would silently trace the control arm too, reporting
		// a ~1.0 ratio as if tracing cost nothing.
		return nil, fmt.Errorf("bench: TRACE needs a genuine untraced control arm; unset PODS_FORCE_TRACE")
	}
	if reps < 1 {
		reps = 1
	}
	if len(kerns) == 0 {
		kerns = traceKernels
	}
	r := &TraceResult{
		N: n, PEs: pes, Reps: reps, Kernels: kerns,
		Off:      make(map[string]TraceCell),
		On:       make(map[string]TraceCell),
		Overhead: make(map[string]float64),
		PEStats:  make(map[string][]cluster.PEStat),
		traces:   make(map[string]*ctrace.Trace),
		names:    make(map[string]func(int64) string),
	}
	ctx := context.Background()
	for _, kn := range kerns {
		k, ok := kernels.ByName(kn)
		if !ok {
			return nil, fmt.Errorf("bench: unknown kernel %q", kn)
		}
		prog, err := Compile(k.File(), k.Source, true)
		if err != nil {
			return nil, err
		}
		for _, traced := range []bool{false, true} {
			cell := TraceCell{Wall: time.Duration(1<<63 - 1)}
			for rep := 0; rep < reps; rep++ {
				runCtx, cancel := context.WithTimeout(ctx, 2*time.Minute)
				start := time.Now()
				res, err := cluster.Execute(runCtx, prog,
					cluster.Config{NumPEs: pes, Steal: true, Adapt: true, Trace: traced},
					k.Args(n)...)
				cancel()
				if err != nil {
					return nil, fmt.Errorf("%s @%dPE trace=%v: %w", kn, pes, traced, err)
				}
				var mk int64
				for _, v := range res.PEInstrs {
					if v > mk {
						mk = v
					}
				}
				if wall := time.Since(start); wall < cell.Wall {
					cell.Wall = wall
				}
				if cell.Makespan == 0 || mk < cell.Makespan {
					cell.Makespan = mk
				}
				if res.Trace != nil {
					cell.Events = res.Trace.Events()
					cell.Drops = res.Trace.Drops()
					cell.Samples = len(res.Trace.Timeline.Samples)
					r.PEStats[kn] = res.PEStats
					r.traces[kn] = res.Trace
					p := prog
					r.names[kn] = func(tmpl int64) string {
						if t := p.Template(int(tmpl)); t != nil {
							return t.Name
						}
						return ""
					}
				}
			}
			if traced {
				r.On[kn] = cell
			} else {
				r.Off[kn] = cell
			}
		}
		if off := r.Off[kn].Makespan; off > 0 {
			r.Overhead[kn] = float64(r.On[kn].Makespan) / float64(off)
		} else {
			r.Overhead[kn] = 1
		}
	}
	return r, nil
}

// Check enforces the acceptance bound: every kernel's traced makespan must
// stay within TraceOverheadLimit of the untraced one.
func (r *TraceResult) Check() error {
	for _, kn := range r.Kernels {
		if ov := r.Overhead[kn]; ov > TraceOverheadLimit {
			return fmt.Errorf("bench: TRACE overhead on %s is %.3f× (limit %.2f×): traced makespan %d vs %d",
				kn, ov, TraceOverheadLimit, r.On[kn].Makespan, r.Off[kn].Makespan)
		}
	}
	return nil
}

// Format renders the experiment.
func (r *TraceResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "TRACE — observability overhead, n=%d @%d PEs steal+adapt, best of %d reps\n", r.N, r.PEs, r.Reps)
	fmt.Fprintf(&b, "(makespan = max per-PE instrs; overhead = traced÷untraced makespan, limit %.2f×)\n\n", TraceOverheadLimit)
	fmt.Fprintf(&b, "%-8s %-6s %12s %10s %9s %8s %6s %8s\n",
		"kernel", "trace", "wall-ms", "makespan", "overhead", "events", "drops", "samples")
	ms := func(d time.Duration) string {
		return fmt.Sprintf("%.3f", float64(d.Microseconds())/1000)
	}
	for _, kn := range r.Kernels {
		off, on := r.Off[kn], r.On[kn]
		fmt.Fprintf(&b, "%-8s %-6s %12s %10d %9s %8s %6s %8s\n",
			kn, "off", ms(off.Wall), off.Makespan, "", "", "", "")
		fmt.Fprintf(&b, "%-8s %-6s %12s %10d %8.3fx %8d %6d %8d\n",
			kn, "on", ms(on.Wall), on.Makespan, r.Overhead[kn], on.Events, on.Drops, on.Samples)
	}
	return b.String()
}

// WriteCSV emits kernel,trace,wall_ms,makespan,overhead,events,drops,samples rows.
func (r *TraceResult) WriteCSV(w io.Writer) error {
	var rows [][]string
	for _, kn := range r.Kernels {
		for i, cell := range []TraceCell{r.Off[kn], r.On[kn]} {
			onOff, ov := "off", ""
			if i == 1 {
				onOff, ov = "on", fmtF(r.Overhead[kn])
			}
			rows = append(rows, []string{
				kn, onOff,
				fmtF(float64(cell.Wall.Microseconds()) / 1000),
				strconv.FormatInt(cell.Makespan, 10),
				ov,
				strconv.Itoa(cell.Events),
				strconv.FormatInt(cell.Drops, 10),
				strconv.Itoa(cell.Samples),
			})
		}
	}
	return writeCSV(w, []string{"kernel", "trace", "wall_ms", "makespan", "overhead", "events", "drops", "samples"}, rows)
}

// WriteChromeJSON renders the named kernel's traced run in the Chrome
// trace_event JSON array format (load at https://ui.perfetto.dev).
func (r *TraceResult) WriteChromeJSON(w io.Writer, kernel string) error {
	tr, ok := r.traces[kernel]
	if !ok {
		return fmt.Errorf("bench: no trace retained for kernel %q", kernel)
	}
	return ctrace.WriteChrome(w, tr, r.names[kernel])
}

// WriteTimelineCSV renders the named kernel's per-probe-round metrics
// timeline as CSV.
func (r *TraceResult) WriteTimelineCSV(w io.Writer, kernel string) error {
	tr, ok := r.traces[kernel]
	if !ok || tr.Timeline == nil {
		return fmt.Errorf("bench: no timeline retained for kernel %q", kernel)
	}
	return ctrace.WriteTimelineCSV(w, tr.Timeline)
}

// WritePerPECSV emits the traced arm's per-PE counter breakdown — one row
// per (kernel, PE) — so load-balance and locality claims are checkable per
// worker rather than only as cluster-wide sums.
func (r *TraceResult) WritePerPECSV(w io.Writer) error {
	i64 := func(v int64) string { return strconv.FormatInt(v, 10) }
	var rows [][]string
	for _, kn := range r.Kernels {
		for _, s := range r.PEStats[kn] {
			rows = append(rows, []string{
				kn, strconv.Itoa(s.PE), i64(s.Instrs), i64(s.Sent), i64(s.Recv),
				i64(s.DeferredReads), i64(s.CacheHits), i64(s.CacheMisses),
				i64(s.Evictions), i64(s.Refetches), i64(s.Steals), i64(s.Forwards),
				i64(s.Replayed), i64(s.Prefetches), i64(s.PrefetchHits), i64(s.CacheCapNow),
			})
		}
	}
	return writeCSV(w, []string{"kernel", "pe", "instrs", "sent", "recv", "deferred",
		"hits", "misses", "evicts", "refetches", "steals", "forwards", "replayed",
		"prefetches", "prefetch_hits", "cache_cap"}, rows)
}
