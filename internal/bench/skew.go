package bench

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/kernels"
)

// The SKEW experiment measures what dynamic work stealing buys on kernels
// whose static SPAWND partitioning is load-imbalanced: the triangular
// kernel (row i costs O(i²), so the last PE's block dominates) and the
// mirror kernel (every consumer read is remote). Each (kernel, PE count)
// cell runs the cluster runtime with stealing off and on and reports
//
//   - the wall-clock time of each run,
//   - the makespan: the maximum per-PE executed-instruction count, which
//     is what wall-clock converges to on hardware with one core per PE
//     (on an oversubscribed host the PEs time-share, so wall-clock alone
//     under-reports the rebalance), and
//   - the recovered utilization: mean/max per-PE instructions — the
//     fraction of the busiest PE's load the average PE carries, 1.0 being
//     perfect balance.

// SkewCell is one (kernel, PEs, steal) measurement.
type SkewCell struct {
	Wall     time.Duration
	Makespan int64   // max per-PE executed instructions
	Util     float64 // mean/max per-PE executed instructions
	Steals   int64
	Forwards int64
}

// SkewResult is the SKEW experiment output.
type SkewResult struct {
	N       int
	PEs     []int
	Kernels []string
	// Cells[kernel][pes][steal-on] — steal-off at index 0, steal-on at 1.
	Cells map[string]map[int][2]SkewCell
}

// skewKernels are the workloads whose static partition skews.
var skewKernels = []string{"triangular", "mirror"}

// Skew runs the SKEW experiment at problem size n over the given PE
// counts. With no explicit kernels it covers every skewed kernel; a
// caller interested in a single cell (the benchmarks) names it to avoid
// paying for the rest of the matrix.
func Skew(n int, pes []int, kerns ...string) (*SkewResult, error) {
	if cluster.ForceStealFromEnv() {
		// The override would silently flip the steal-off control arm on,
		// reporting a ~1.0 makespan ratio as if stealing bought nothing.
		return nil, fmt.Errorf("bench: SKEW needs a genuine steal-off control arm; unset PODS_FORCE_STEAL")
	}
	if len(kerns) == 0 {
		kerns = skewKernels
	}
	r := &SkewResult{
		N:       n,
		PEs:     pes,
		Kernels: kerns,
		Cells:   make(map[string]map[int][2]SkewCell),
	}
	ctx := context.Background()
	for _, kn := range r.Kernels {
		k, ok := kernels.ByName(kn)
		if !ok {
			return nil, fmt.Errorf("bench: unknown kernel %q", kn)
		}
		prog, err := Compile(k.File(), k.Source, true)
		if err != nil {
			return nil, err
		}
		r.Cells[kn] = make(map[int][2]SkewCell)
		for _, p := range pes {
			var pair [2]SkewCell
			for si, steal := range []bool{false, true} {
				runCtx, cancel := context.WithTimeout(ctx, 2*time.Minute)
				start := time.Now()
				res, err := cluster.Execute(runCtx, prog,
					cluster.Config{NumPEs: p, Steal: steal}, k.Args(n)...)
				cancel()
				if err != nil {
					return nil, fmt.Errorf("%s @%dPE steal=%v: %w", kn, p, steal, err)
				}
				cell := SkewCell{
					Wall:     time.Since(start),
					Steals:   res.Stats.Steals,
					Forwards: res.Stats.Forwards,
				}
				var sum int64
				for _, v := range res.PEInstrs {
					sum += v
					if v > cell.Makespan {
						cell.Makespan = v
					}
				}
				if cell.Makespan > 0 {
					cell.Util = float64(sum) / float64(p) / float64(cell.Makespan)
				}
				pair[si] = cell
			}
			r.Cells[kn][p] = pair
		}
	}
	return r, nil
}

// Format renders the experiment.
func (r *SkewResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "SKEW — work stealing on skewed kernels, n=%d (wall ms / makespan=max per-PE instrs / util=mean÷max)\n", r.N)
	fmt.Fprintf(&b, "wall-clock gains need one core per PE; on an oversubscribed host the makespan column is the speed-up proxy\n\n")
	fmt.Fprintf(&b, "%-11s %4s %12s %12s %10s %10s %7s %7s %8s\n",
		"kernel", "PEs", "wall-off", "wall-on", "mkspan-off", "mkspan-on", "utl-off", "utl-on", "steals")
	ms := func(d time.Duration) string {
		return fmt.Sprintf("%.3f", float64(d.Microseconds())/1000)
	}
	for _, kn := range r.Kernels {
		for _, p := range r.PEs {
			c := r.Cells[kn][p]
			fmt.Fprintf(&b, "%-11s %4d %12s %12s %10d %10d %7.2f %7.2f %8d\n",
				kn, p, ms(c[0].Wall), ms(c[1].Wall),
				c[0].Makespan, c[1].Makespan, c[0].Util, c[1].Util, c[1].Steals)
		}
	}
	return b.String()
}

// WriteCSV emits kernel,pes,steal,wall_ms,makespan,util,steals,forwards rows.
func (r *SkewResult) WriteCSV(w io.Writer) error {
	var rows [][]string
	for _, kn := range r.Kernels {
		for _, p := range r.PEs {
			for si, steal := range []string{"off", "on"} {
				c := r.Cells[kn][p][si]
				rows = append(rows, []string{
					kn, strconv.Itoa(p), steal,
					fmtF(float64(c.Wall.Microseconds()) / 1000),
					strconv.FormatInt(c.Makespan, 10),
					fmtF(c.Util),
					strconv.FormatInt(c.Steals, 10),
					strconv.FormatInt(c.Forwards, 10),
				})
			}
		}
	}
	return writeCSV(w, []string{"kernel", "pes", "steal", "wall_ms", "makespan", "util", "steals", "forwards"}, rows)
}
