package bench

import (
	"fmt"
	"strings"

	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/sim"
	"repro/internal/simple"
	"repro/internal/timing"
)

// TableT1 renders the §5.1 instruction-execution-time table next to the
// cost model actually used by the simulator, so any drift is visible.
func TableT1() string {
	type row struct {
		name  string
		paper float64 // µs from the paper
		op    isa.Opcode
		flt   bool
	}
	rows := []row{
		{"integer add", 0.300, isa.IADD, false},
		{"integer subtraction", 0.300, isa.ISUB, false},
		{"bitwise logical", 0.558, isa.AND, false},
		{"floating point negate", 0.555, isa.FNEG, false},
		{"floating point compare", 5.803, isa.CMPLT, true},
		{"floating point power", 96.418, isa.FPOW, false},
		{"floating point abs", 12.626, isa.FABS, false},
		{"floating point square root", 18.929, isa.FSQRT, false},
		{"floating point multiply", 7.217, isa.FMUL, false},
		{"floating point division", 10.707, isa.FDIV, false},
		{"floating point addition", 6.753, isa.FADD, false},
		{"floating point subtraction", 6.757, isa.FSUB, false},
	}
	var b strings.Builder
	b.WriteString("Table T1 — iPSC/2 instruction execution times (paper §5.1) vs simulator cost model\n\n")
	fmt.Fprintf(&b, "%-30s %12s %12s\n", "instruction", "paper (µs)", "model (µs)")
	for _, r := range rows {
		model := float64(timing.InstrTime(r.op, r.flt)) / 1000.0
		mark := ""
		if model != r.paper {
			mark = "  <-- MISMATCH"
		}
		fmt.Fprintf(&b, "%-30s %12.3f %12.3f%s\n", r.name, r.paper, model, mark)
	}
	b.WriteString("\nderived entries (documented in internal/timing):\n")
	fmt.Fprintf(&b, "%-30s %12s %12.3f\n", "integer multiply", "(derived)", float64(timing.IntMulTime)/1000)
	fmt.Fprintf(&b, "%-30s %12s %12.3f\n", "local array read", "2.700", float64(timing.LocalArrayReadTime)/1000)
	fmt.Fprintf(&b, "%-30s %12s %12.3f\n", "context switch", "1.312", float64(timing.ContextSwitchTime)/1000)
	return b.String()
}

// TableT2 renders the §5.1 Array Manager / message-cost table.
func TableT2() string {
	var b strings.Builder
	b.WriteString("Table T2 — Array Manager task times and message costs (paper §5.1)\n\n")
	f := func(name string, paperUS, modelNS float64) {
		fmt.Fprintf(&b, "%-34s %12.1f %12.1f\n", name, paperUS, modelNS/1000)
	}
	fmt.Fprintf(&b, "%-34s %12s %12s\n", "task", "paper (µs)", "model (µs)")
	f("memory read", 0.3, float64(timing.MemReadTime))
	f("memory write", 0.4, float64(timing.MemWriteTime))
	f("unit-to-unit signal", 1.0, float64(timing.UnitSignalTime))
	f("enqueue early read", 2.9, float64(timing.EnqueuedReadTime))
	f("allocate array (+signal)", 101.0, float64(timing.AMAllocTime))
	f("matching-unit lookup", 15.0, float64(timing.MatchTime))
	f("memory-manager list op", 0.9, float64(timing.MMListOpTime))
	f("token in batched message (RU)", 19.5, float64(timing.SmallMessageRUTime))
	f("network propagation (2.5 hops)", 2.5, float64(timing.NetworkTime))
	b.WriteString("\nDunigan message equation (ORNL/TM-10881):\n")
	fmt.Fprintf(&b, "  <=100 bytes: %8.1f µs (paper: 390)\n", float64(timing.DuniganTime(100))/1000)
	fmt.Fprintf(&b, "  256-byte page: %6.1f µs (paper: 697 + 0.4*256 = 799.4)\n", float64(timing.DuniganTime(256))/1000)
	fmt.Fprintf(&b, "  page send (32 elems, owner AM): %5.1f µs\n", float64(timing.PageSendTime(32))/1000)
	fmt.Fprintf(&b, "  page receive (32 elems):        %5.1f µs\n", float64(timing.PageReceiveTime(32))/1000)
	return b.String()
}

// MatmulSource is the generic matrix-multiply example of §5.2 ("a few
// generic examples, such as matrix multiply") used by experiment X1. The
// canonical text lives in internal/kernels so all harnesses share it.
const MatmulSource = kernels.Matmul

// X1Result is the matrix-multiply speed-up experiment.
type X1Result struct {
	N       int
	PEs     []int
	Speedup []float64
}

// MatmulX1 runs matmul across PE counts.
func MatmulX1(n int, peCounts []int) (*X1Result, error) {
	r := &X1Result{N: n, PEs: peCounts}
	var base float64
	for _, pes := range peCounts {
		res, err := Run(MatmulSource, "matmul.id", n, pes, VariantPODS)
		if err != nil {
			return nil, err
		}
		if base == 0 {
			base = float64(res.Time)
		}
		r.Speedup = append(r.Speedup, base/float64(res.Time))
	}
	return r, nil
}

// Format renders the experiment.
func (r *X1Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "X1 — %dx%d matrix multiply speed-up (generic example, §5.2)\n\n", r.N, r.N)
	fmt.Fprintf(&b, "%-8s", "PEs")
	for _, p := range r.PEs {
		fmt.Fprintf(&b, "%8d", p)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-8s", "speedup")
	for _, v := range r.Speedup {
		fmt.Fprintf(&b, "%8.2f", v)
	}
	b.WriteByte('\n')
	return b.String()
}

// PageSweepResult measures sensitivity to the I-structure page size.
type PageSweepResult struct {
	N, PEs  int
	Pages   []int
	Seconds []float64
}

// PageSweep reruns SIMPLE with several page sizes. The paper (citing
// [BIC89]) states the page size "is not a critical parameter"; this
// experiment quantifies that claim on our reproduction.
func PageSweep(n, pes int, pages []int) (*PageSweepResult, error) {
	prog, err := Compile("simple.id", simple.Source, true)
	if err != nil {
		return nil, err
	}
	r := &PageSweepResult{N: n, PEs: pes, Pages: pages}
	for _, pg := range pages {
		m, err := sim.New(prog, sim.Config{NumPEs: pes, PageElems: pg})
		if err != nil {
			return nil, err
		}
		res, err := m.Run(isa.Int(int64(n)))
		if err != nil {
			return nil, fmt.Errorf("page sweep (page=%d): %w", pg, err)
		}
		r.Seconds = append(r.Seconds, res.Seconds())
	}
	return r, nil
}

// Format renders the sweep with the spread between best and worst.
func (r *PageSweepResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Page-size sweep — SIMPLE %dx%d on %d PEs (paper: not a critical parameter)\n\n", r.N, r.N, r.PEs)
	lo, hi := r.Seconds[0], r.Seconds[0]
	for i, pg := range r.Pages {
		fmt.Fprintf(&b, "  %3d elems/page: %8.3f s\n", pg, r.Seconds[i])
		if r.Seconds[i] < lo {
			lo = r.Seconds[i]
		}
		if r.Seconds[i] > hi {
			hi = r.Seconds[i]
		}
	}
	fmt.Fprintf(&b, "  spread: %.2fx\n", hi/lo)
	return b.String()
}

// AblationResult compares PODS against its ablated variants at one size.
type AblationResult struct {
	N, PEs  int
	Seconds map[string]float64
}

// Ablations measures the contribution of the paper's mechanisms at the
// given configuration: distribution off (§4.2), page cache off (§4),
// control-driven stalls (§6 baseline).
func Ablations(n, pes int) (*AblationResult, error) {
	r := &AblationResult{N: n, PEs: pes, Seconds: map[string]float64{}}
	for _, v := range []Variant{VariantPODS, VariantNoDist, VariantNoCache, VariantPR} {
		res, err := RunSimple(n, pes, v)
		if err != nil {
			return nil, fmt.Errorf("ablation %s: %w", v, err)
		}
		r.Seconds[v.String()] = res.Seconds()
	}
	return r, nil
}

// Format renders the ablation table.
func (r *AblationResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablations — SIMPLE %dx%d on %d PEs (virtual seconds, lower is better)\n\n", r.N, r.N, r.PEs)
	base := r.Seconds["PODS"]
	for _, k := range []string{"PODS", "nodist", "nocache", "P&R"} {
		v := r.Seconds[k]
		fmt.Fprintf(&b, "%-10s %10.3f s   %6.2fx vs PODS\n", k, v, v/base)
	}
	return b.String()
}
