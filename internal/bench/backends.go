package bench

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/kernels"
	"repro/internal/podsrt"
	"repro/internal/sim"
)

// The BACK experiment benchmarks the three execution backends head-to-head
// on the paper kernels: the discrete-event simulator (whose "time" is
// virtual iPSC/2 nanoseconds but whose wall cost is the DES itself), the
// shared-memory goroutine runtime, and the message-passing cluster runtime.
// All three execute the identical partitioned program, so the comparison
// isolates the runtime architecture: mutex-protected shared I-structures
// vs. share-nothing workers paying real messages for every remote access.

// Backend names accepted by RunBackend.
const (
	BackendSim     = "sim"
	BackendPodsrt  = "podsrt"
	BackendCluster = "cluster"
)

// BackendNames lists the backends in presentation order.
var BackendNames = []string{BackendSim, BackendPodsrt, BackendCluster}

// RunBackend compiles (cached) and executes one kernel once on one backend.
// It returns the wall-clock duration of the execution only (compilation
// excluded).
func RunBackend(kernelName string, n, pes int, backend string) (time.Duration, error) {
	k, ok := kernels.ByName(kernelName)
	if !ok {
		return 0, fmt.Errorf("bench: unknown kernel %q", kernelName)
	}
	prog, err := Compile(k.File(), k.Source, true)
	if err != nil {
		return 0, err
	}
	args := k.Args(n)
	start := time.Now()
	switch backend {
	case BackendSim:
		m, err := sim.New(prog, sim.Config{NumPEs: pes})
		if err != nil {
			return 0, err
		}
		if _, err := m.Run(args...); err != nil {
			return 0, err
		}
	case BackendPodsrt:
		rt, err := podsrt.New(prog, podsrt.Config{VirtualPEs: pes})
		if err != nil {
			return 0, err
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		if _, err := rt.Run(ctx, args...); err != nil {
			return 0, err
		}
	case BackendCluster:
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		if _, err := cluster.Execute(ctx, prog, cluster.Config{NumPEs: pes}, args...); err != nil {
			return 0, err
		}
	default:
		return 0, fmt.Errorf("bench: unknown backend %q", backend)
	}
	return time.Since(start), nil
}

// BackendsResult is the BACK experiment: wall-clock times for every
// (kernel, backend) pair at a fixed problem size and PE count.
type BackendsResult struct {
	N       int
	PEs     int
	Kernels []string
	// Wall[kernel][backend] is the measured wall-clock time.
	Wall map[string]map[string]time.Duration
	// SimVirtual[kernel] is the simulator's virtual iPSC/2 time.
	SimVirtual map[string]time.Duration
}

// Backends runs the BACK experiment on the paper kernels.
func Backends(n, pes int) (*BackendsResult, error) {
	r := &BackendsResult{
		N:          n,
		PEs:        pes,
		Kernels:    []string{"matmul", "heat", "pipeline"},
		Wall:       make(map[string]map[string]time.Duration),
		SimVirtual: make(map[string]time.Duration),
	}
	for _, kn := range r.Kernels {
		r.Wall[kn] = make(map[string]time.Duration)
		for _, backend := range BackendNames {
			d, err := RunBackend(kn, n, pes, backend)
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %w", kn, backend, err)
			}
			r.Wall[kn][backend] = d
		}
		// One more sim run for the virtual-time column (cheap at these
		// sizes, and it keeps RunBackend's contract wall-only).
		k, _ := kernels.ByName(kn)
		prog, err := Compile(k.File(), k.Source, true)
		if err != nil {
			return nil, err
		}
		m, err := sim.New(prog, sim.Config{NumPEs: pes})
		if err != nil {
			return nil, err
		}
		res, err := m.Run(k.Args(n)...)
		if err != nil {
			return nil, err
		}
		r.SimVirtual[kn] = time.Duration(res.Time)
	}
	return r, nil
}

// Format renders the experiment.
func (r *BackendsResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "BACK — backend head-to-head, n=%d, %d PEs (wall-clock ms)\n\n", r.N, r.PEs)
	fmt.Fprintf(&b, "%-10s %12s %12s %12s %14s\n", "kernel", "sim", "podsrt", "cluster", "sim-virtual")
	ms := func(d time.Duration) string {
		return fmt.Sprintf("%.3f", float64(d.Microseconds())/1000)
	}
	for _, kn := range r.Kernels {
		w := r.Wall[kn]
		fmt.Fprintf(&b, "%-10s %12s %12s %12s %14s\n",
			kn, ms(w[BackendSim]), ms(w[BackendPodsrt]), ms(w[BackendCluster]), ms(r.SimVirtual[kn]))
	}
	return b.String()
}

// WriteCSV emits kernel,backend,wall_ms rows (plus sim-virtual rows).
func (r *BackendsResult) WriteCSV(w io.Writer) error {
	var rows [][]string
	for _, kn := range r.Kernels {
		for _, backend := range BackendNames {
			rows = append(rows, []string{kn, backend, fmtF(float64(r.Wall[kn][backend].Microseconds()) / 1000)})
		}
		rows = append(rows, []string{kn, "sim-virtual", fmtF(float64(r.SimVirtual[kn].Microseconds()) / 1000)})
	}
	return writeCSV(w, []string{"kernel", "backend", "wall_ms"}, rows)
}
