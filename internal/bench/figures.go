package bench

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// F8Result is Figure 8: average utilization of each functional unit for a
// 16×16 SIMPLE as the PE count grows.
type F8Result struct {
	N     int
	PEs   []int
	Units []string
	// Util[unit][peIdx] in [0,1].
	Util map[string][]float64
}

// Figure8 regenerates Figure 8.
func Figure8(n int, peCounts []int) (*F8Result, error) {
	r := &F8Result{
		N: n, PEs: peCounts,
		Units: []string{"EU", "MU", "RU", "AM", "MM"},
		Util:  make(map[string][]float64),
	}
	for _, pes := range peCounts {
		res, err := RunSimple(n, pes, VariantPODS)
		if err != nil {
			return nil, fmt.Errorf("figure 8 (PEs=%d): %w", pes, err)
		}
		for _, u := range r.Units {
			r.Util[u] = append(r.Util[u], res.Utilization(u))
		}
	}
	return r, nil
}

// Format renders the figure as an aligned table.
func (r *F8Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8 — average utilization of each functional unit (SIMPLE %dx%d)\n", r.N, r.N)
	fmt.Fprintf(&b, "paper: EU is by far the most utilized unit at every PE count;\n")
	fmt.Fprintf(&b, "       all supporting units are lightly loaded (no special hardware needed)\n\n")
	fmt.Fprintf(&b, "%-6s", "unit")
	for _, p := range r.PEs {
		fmt.Fprintf(&b, "%8dPE", p)
	}
	b.WriteByte('\n')
	for _, u := range r.Units {
		label := u
		if u == "MU" {
			label = "MU(MS)"
		}
		fmt.Fprintf(&b, "%-6s", label)
		for _, v := range r.Util[u] {
			fmt.Fprintf(&b, "%9.1f%%", 100*v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// F9Result is Figure 9: EU utilization per problem size and PE count.
type F9Result struct {
	Sizes []int
	PEs   []int
	// Util[sizeIdx][peIdx].
	Util [][]float64
}

// Figure9 regenerates Figure 9.
func Figure9(sizes, peCounts []int) (*F9Result, error) {
	r := &F9Result{Sizes: sizes, PEs: peCounts}
	for _, n := range sizes {
		var row []float64
		for _, pes := range peCounts {
			res, err := RunSimple(n, pes, VariantPODS)
			if err != nil {
				return nil, fmt.Errorf("figure 9 (%dx%d, PEs=%d): %w", n, n, pes, err)
			}
			row = append(row, res.Utilization("EU"))
		}
		r.Util = append(r.Util, row)
	}
	return r, nil
}

// Format renders the figure.
func (r *F9Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9 — Execution Unit utilization for SIMPLE\n")
	fmt.Fprintf(&b, "paper: utilization falls with PE count; larger problems sustain more\n")
	fmt.Fprintf(&b, "       (64x64: ~70%% at 1 PE down to ~50%% at 32 PEs)\n\n")
	fmt.Fprintf(&b, "%-8s", "size")
	for _, p := range r.PEs {
		fmt.Fprintf(&b, "%8dPE", p)
	}
	b.WriteByte('\n')
	for i, n := range r.Sizes {
		fmt.Fprintf(&b, "%-8s", fmt.Sprintf("%dx%d", n, n))
		for _, v := range r.Util[i] {
			fmt.Fprintf(&b, "%9.1f%%", 100*v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// F10Result is Figure 10: speed-up of SIMPLE per problem size, with the
// Pingali & Rogers control-driven baseline at the largest size.
type F10Result struct {
	Sizes []int
	PEs   []int
	// Speedup[sizeIdx][peIdx] = T(1)/T(p).
	Speedup [][]float64
	// PRSize / PRSpeedup: the baseline curve (paper plots P&R at 64×64).
	PRSize    int
	PRSpeedup []float64
	// Times[sizeIdx][peIdx] = virtual seconds.
	Times [][]float64
}

// Figure10 regenerates Figure 10.
func Figure10(sizes, peCounts []int) (*F10Result, error) {
	r := &F10Result{Sizes: sizes, PEs: peCounts}
	for _, n := range sizes {
		var base *sim.Result
		var sp, tm []float64
		for _, pes := range peCounts {
			res, err := RunSimple(n, pes, VariantPODS)
			if err != nil {
				return nil, fmt.Errorf("figure 10 (%dx%d, PEs=%d): %w", n, n, pes, err)
			}
			if base == nil {
				base = res
			}
			sp = append(sp, float64(base.Time)/float64(res.Time))
			tm = append(tm, res.Seconds())
		}
		r.Speedup = append(r.Speedup, sp)
		r.Times = append(r.Times, tm)
	}
	// P&R baseline at the largest size.
	r.PRSize = sizes[len(sizes)-1]
	var prBase *sim.Result
	for _, pes := range peCounts {
		res, err := RunSimple(r.PRSize, pes, VariantPR)
		if err != nil {
			return nil, fmt.Errorf("figure 10 P&R (PEs=%d): %w", pes, err)
		}
		if prBase == nil {
			prBase = res
		}
		r.PRSpeedup = append(r.PRSpeedup, float64(prBase.Time)/float64(res.Time))
	}
	return r, nil
}

// Format renders the figure.
func (r *F10Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 10 — speed-up of SIMPLE (T1/Tp)\n")
	fmt.Fprintf(&b, "paper at 32 PEs: 16x16 -> 8.1, 32x32 -> 12.4, 64x64 -> 18.9;\n")
	fmt.Fprintf(&b, "       PODS beats the P&R compiled baseline at 64x64 for large PE counts\n\n")
	fmt.Fprintf(&b, "%-10s", "series")
	for _, p := range r.PEs {
		fmt.Fprintf(&b, "%8dPE", p)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-10s", "linear")
	for _, p := range r.PEs {
		fmt.Fprintf(&b, "%10.2f", float64(p))
	}
	b.WriteByte('\n')
	for i, n := range r.Sizes {
		fmt.Fprintf(&b, "%-10s", fmt.Sprintf("%dx%d", n, n))
		for _, v := range r.Speedup[i] {
			fmt.Fprintf(&b, "%10.2f", v)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-10s", fmt.Sprintf("P&R %d", r.PRSize))
	for _, v := range r.PRSpeedup {
		fmt.Fprintf(&b, "%10.2f", v)
	}
	b.WriteByte('\n')
	return b.String()
}

// E1Result is the §5.3.4 efficiency comparison.
type E1Result struct {
	N          int
	SeqSeconds float64 // ideal sequential (the paper's compiled C: 0.9 s)
	PodsSec    float64 // PODS on one PE (the paper: 1.72 s)
	Ratio      float64
}

// EfficiencyE1 regenerates the §5.3.4 comparison on standalone conduction.
func EfficiencyE1(n int) (*E1Result, error) {
	seq, err := RunConduction(n, 1, VariantSeq)
	if err != nil {
		return nil, err
	}
	pods, err := RunConduction(n, 1, VariantPODS)
	if err != nil {
		return nil, err
	}
	return &E1Result{
		N:          n,
		SeqSeconds: seq.Seconds(),
		PodsSec:    pods.Seconds(),
		Ratio:      pods.Seconds() / seq.Seconds(),
	}, nil
}

// Format renders the comparison.
func (r *E1Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E1 — efficiency comparison (conduction %dx%d on 1 PE, §5.3.4)\n", r.N, r.N)
	fmt.Fprintf(&b, "paper: sequential C 0.9 s vs PODS 1.72 s => ratio 1.91\n\n")
	fmt.Fprintf(&b, "ideal sequential: %8.3f s (virtual)\n", r.SeqSeconds)
	fmt.Fprintf(&b, "PODS on 1 PE:     %8.3f s (virtual)\n", r.PodsSec)
	fmt.Fprintf(&b, "ratio:            %8.2f   (paper: %.2f)\n", r.Ratio, PaperEfficiencyRatio)
	return b.String()
}
