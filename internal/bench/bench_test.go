package bench

import (
	"strings"
	"testing"
)

// Small axes keep unit tests fast; cmd/podsbench runs the full sweep.
var (
	testPEs   = []int{1, 4, 16}
	testSizes = []int{8, 16}
)

func TestFigure8Shape(t *testing.T) {
	r, err := Figure8(16, testPEs)
	if err != nil {
		t.Fatal(err)
	}
	for pi := range r.PEs {
		eu := r.Util["EU"][pi]
		for _, u := range []string{"MU", "RU", "AM", "MM"} {
			if r.Util[u][pi] >= eu {
				t.Errorf("PEs=%d: %s utilization %.3f >= EU %.3f", r.PEs[pi], u, r.Util[u][pi], eu)
			}
		}
	}
	out := r.Format()
	if !strings.Contains(out, "Figure 8") || !strings.Contains(out, "EU") {
		t.Errorf("format output malformed:\n%s", out)
	}
}

func TestFigure9Shape(t *testing.T) {
	r, err := Figure9(testSizes, testPEs)
	if err != nil {
		t.Fatal(err)
	}
	// Larger problems sustain higher EU utilization at the largest PE count.
	last := len(testPEs) - 1
	if r.Util[1][last] <= r.Util[0][last] {
		t.Errorf("EU util at %d PEs: %dx%d %.3f should exceed %dx%d %.3f",
			testPEs[last], testSizes[1], testSizes[1], r.Util[1][last],
			testSizes[0], testSizes[0], r.Util[0][last])
	}
	// Utilization decreases from 1 PE to many PEs.
	for i := range testSizes {
		if r.Util[i][last] >= r.Util[i][0] {
			t.Errorf("size %d: EU util should fall with PE count (%.3f -> %.3f)",
				testSizes[i], r.Util[i][0], r.Util[i][last])
		}
	}
}

func TestFigure10Shape(t *testing.T) {
	r, err := Figure10(testSizes, testPEs)
	if err != nil {
		t.Fatal(err)
	}
	last := len(testPEs) - 1
	// Speed-up at the largest PE count is ordered by problem size.
	if r.Speedup[1][last] <= r.Speedup[0][last] {
		t.Errorf("larger problem should speed up more: %v vs %v", r.Speedup[1], r.Speedup[0])
	}
	// Speed-up grows with PEs for the biggest size.
	for p := 1; p <= last; p++ {
		if r.Speedup[1][p] <= r.Speedup[1][p-1] {
			t.Errorf("64-equivalent speed-up not monotonic: %v", r.Speedup[1])
		}
	}
	// PODS >= P&R at the largest size and PE count (the paper's headline).
	if r.Speedup[1][last] < r.PRSpeedup[last] {
		t.Errorf("PODS %.2f should beat P&R %.2f at %d PEs", r.Speedup[1][last], r.PRSpeedup[last], testPEs[last])
	}
	if s := r.Format(); !strings.Contains(s, "P&R") {
		t.Errorf("format missing baseline:\n%s", s)
	}
}

func TestEfficiencyE1(t *testing.T) {
	r, err := EfficiencyE1(16)
	if err != nil {
		t.Fatal(err)
	}
	if r.Ratio <= 1.0 {
		t.Errorf("PODS with overheads (%.3fs) must be slower than ideal sequential (%.3fs)", r.PodsSec, r.SeqSeconds)
	}
	if r.Ratio > 5.0 {
		t.Errorf("ratio %.2f implausibly far from the paper's 1.91", r.Ratio)
	}
}

func TestMatmulX1(t *testing.T) {
	r, err := MatmulX1(12, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if r.Speedup[1] <= 1.2 {
		t.Errorf("matmul should speed up on 4 PEs, got %.2f", r.Speedup[1])
	}
}

func TestAblations(t *testing.T) {
	r, err := Ablations(16, 8)
	if err != nil {
		t.Fatal(err)
	}
	pods := r.Seconds["PODS"]
	if r.Seconds["nodist"] <= pods {
		t.Errorf("disabling distribution should hurt: PODS %.3f vs nodist %.3f", pods, r.Seconds["nodist"])
	}
	if r.Seconds["P&R"] < pods {
		t.Errorf("control-driven stalling should not beat PODS: %.3f vs %.3f", r.Seconds["P&R"], pods)
	}
}

func TestTablesRender(t *testing.T) {
	t1 := TableT1()
	if strings.Contains(t1, "MISMATCH") {
		t.Errorf("cost model drifted from the paper's table:\n%s", t1)
	}
	if !strings.Contains(t1, "96.418") {
		t.Errorf("T1 missing fpow entry:\n%s", t1)
	}
	t2 := TableT2()
	if !strings.Contains(t2, "Dunigan") || !strings.Contains(t2, "19.5") {
		t.Errorf("T2 malformed:\n%s", t2)
	}
}

func TestPageSweepNotCritical(t *testing.T) {
	r, err := PageSweep(16, 4, []int{8, 32, 64})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := r.Seconds[0], r.Seconds[0]
	for _, s := range r.Seconds {
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	// [BIC89]: page size is not a critical parameter — the spread across an
	// 8x range of page sizes should stay well under 2x.
	if hi/lo > 2.0 {
		t.Errorf("page-size spread %.2fx too large:\n%s", hi/lo, r.Format())
	}
}

func TestCSVWriters(t *testing.T) {
	f8, err := Figure8(8, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := f8.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b.String(), "unit,pes,utilization\n") {
		t.Errorf("f8 csv: %s", b.String())
	}
	f10, err := Figure10([]int{8}, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	b.Reset()
	if err := f10.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "PR8") || strings.Count(out, "\n") != 5 {
		t.Errorf("f10 csv:\n%s", out)
	}
	f9, err := Figure9([]int{8}, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	b.Reset()
	if err := f9.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b.String(), "size,pes,eu_utilization\n") {
		t.Errorf("f9 csv: %s", b.String())
	}
}

// TestCacheShape pins the CACHE experiment's structural claims: the
// unbounded control arm never evicts, a tight cap really evicts and
// refetches on a remote-read-heavy kernel, hit rates are well-formed, and
// the bounded arm's hit rate cannot beat the unbounded one (eviction can
// only lose hits). Results are schedule-dependent in magnitude but not in
// these invariants — the cluster counters are gathered after termination.
func TestCacheShape(t *testing.T) {
	r, err := Cache(16, 4, []int{0, 2}, "heat")
	if err != nil {
		t.Fatal(err)
	}
	unbounded, capped := r.Cells["heat"][0], r.Cells["heat"][2]
	if unbounded.Evictions != 0 || unbounded.Refetches != 0 {
		t.Fatalf("unbounded arm evicted (%d evictions, %d refetches) — control is contaminated",
			unbounded.Evictions, unbounded.Refetches)
	}
	if capped.Evictions == 0 {
		t.Fatal("cap 2 never evicted on heat — the bound was not exercised")
	}
	for _, c := range []CacheCell{unbounded, capped} {
		if c.HitRate < 0 || c.HitRate > 1 {
			t.Fatalf("hit rate %v out of [0,1]", c.HitRate)
		}
		if c.Makespan <= 0 {
			t.Fatalf("makespan %d, want positive", c.Makespan)
		}
	}
	// Schedule noise can move individual hits either way, but eviction
	// cannot systematically create them: allow a small tolerance only.
	if capped.HitRate > unbounded.HitRate+0.05 {
		t.Errorf("capped hit rate %.3f beats unbounded %.3f — eviction cannot create hits",
			capped.HitRate, unbounded.HitRate)
	}
	out := r.Format()
	if !strings.Contains(out, "CACHE") || !strings.Contains(out, "hitrate") {
		t.Errorf("format output malformed:\n%s", out)
	}
	var b strings.Builder
	if err := r.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b.String(), "kernel,cap,heat,wall_ms,makespan,hit_rate,hits,misses,evictions,refetches,prefetches,prefetch_hits,cap_end\n") {
		t.Errorf("cache csv: %s", b.String())
	}
	if !strings.Contains(b.String(), "triread+steal") {
		t.Errorf("cache csv missing the post-steal probe rows: %s", b.String())
	}
}

// TestAdaptShape pins the ADAPT experiment's headline claim: on the
// drifting-skew relax kernel at 8 PEs, adaptive repartitioning must beat
// the static split — lower makespan, higher utilization — and must have
// actually rebounded to do it. Rebind timing depends on the wall-clock
// probe cadence racing real execution, so one unlucky run on a loaded
// machine can land its rebinds too late to clear the margin; the claim is
// that the mechanism works, not that every schedule is lucky, so the test
// accepts the best of three attempts before failing.
func TestAdaptShape(t *testing.T) {
	var r *AdaptResult
	var static, adapt AdaptCell
	for attempt := 1; ; attempt++ {
		var err error
		r, err = Adapt(48, 5, []int{8})
		if err != nil {
			t.Fatal(err)
		}
		cell := r.Cells[8]
		static, adapt = cell[0][0], cell[0][1]
		if static.Rebounds != 0 {
			t.Fatalf("static arm issued %d rebounds — control is contaminated", static.Rebounds)
		}
		won := adapt.Rebounds > 0 &&
			float64(adapt.Makespan) < 0.95*float64(static.Makespan) &&
			adapt.Util > static.Util
		if won {
			break
		}
		t.Logf("attempt %d: rebounds=%d makespan %d vs static %d, util %.2f vs %.2f",
			attempt, adapt.Rebounds, adapt.Makespan, static.Makespan, adapt.Util, static.Util)
		if attempt == 3 {
			t.Fatalf("adaptation never beat the static split by >5%% in %d attempts", attempt)
		}
	}
	out := r.Format()
	if !strings.Contains(out, "ADAPT") || !strings.Contains(out, "rebounds") {
		t.Errorf("format output malformed:\n%s", out)
	}
	var b strings.Builder
	if err := r.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b.String(), "pes,steal,adapt,wall_ms,makespan,util,rebounds,steals\n") {
		t.Errorf("adapt csv: %s", b.String())
	}
}

// TestTraceShape pins the TRACE experiment's headline claim: the flight
// recorder is cheap enough to leave on. The instruction makespan is the
// gate (wall clock is informational), and the ≤5% bound rides on steal
// scheduling variance, so — like TestAdaptShape — the test accepts the
// best of three attempts before failing.
func TestTraceShape(t *testing.T) {
	var r *TraceResult
	for attempt := 1; ; attempt++ {
		var err error
		r, err = Trace(24, 4, 2, "relax")
		if err != nil {
			t.Fatal(err)
		}
		if err = r.Check(); err == nil {
			break
		}
		t.Logf("attempt %d: %v", attempt, err)
		if attempt == 3 {
			t.Fatalf("trace overhead never cleared the bound in %d attempts: %v", attempt, err)
		}
	}
	on := r.On["relax"]
	if on.Events == 0 || on.Samples == 0 {
		t.Fatalf("traced arm gathered no data: %+v", on)
	}
	if len(r.PEStats["relax"]) != 4 {
		t.Fatalf("per-PE stats for %d PEs, want 4", len(r.PEStats["relax"]))
	}
	out := r.Format()
	if !strings.Contains(out, "TRACE") || !strings.Contains(out, "overhead") {
		t.Errorf("format output malformed:\n%s", out)
	}
	var b strings.Builder
	if err := r.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b.String(), "kernel,trace,wall_ms,makespan,overhead,events,drops,samples\n") {
		t.Errorf("trace csv: %s", b.String())
	}
	b.Reset()
	if err := r.WritePerPECSV(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b.String(), "kernel,pe,instrs,") {
		t.Errorf("per-pe csv: %s", b.String())
	}
	b.Reset()
	if err := r.WriteChromeJSON(&b, "relax"); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b.String(), "[") {
		t.Errorf("chrome json does not open an array: %.40s", b.String())
	}
	b.Reset()
	if err := r.WriteTimelineCSV(&b, "relax"); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b.String(), "round,pe,wall_ms,") {
		t.Errorf("timeline csv: %s", b.String())
	}
}

// TestServeSmoke runs a tiny SERVE experiment: a few mixed jobs on a small
// persistent fleet, every one verified against the simulator inside Serve
// itself, and the summary plus CSV must be well-formed.
func TestServeSmoke(t *testing.T) {
	r, err := Serve(8, 2, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r.Jobs != 8 || len(r.Records) != 8 {
		t.Fatalf("recorded %d/%d jobs, want 8", len(r.Records), r.Jobs)
	}
	if r.Throughput <= 0 || r.P99 <= 0 || r.P99 < r.P50 {
		t.Fatalf("degenerate latency summary: throughput=%v p50=%v p99=%v",
			r.Throughput, r.P50, r.P99)
	}
	for _, mx := range serveMix {
		if s := r.PerKernel[mx.Kernel]; s.Jobs != 2 {
			t.Errorf("%s ran %d jobs, want 2", mx.Kernel, s.Jobs)
		}
	}
	if !strings.Contains(r.Format(), "throughput") {
		t.Errorf("summary missing throughput: %s", r.Format())
	}
	var b strings.Builder
	if err := r.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b.String(), "job,kernel,client,start_ms,latency_ms\n") {
		t.Errorf("serve csv: %s", b.String())
	}
}
