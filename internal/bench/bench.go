// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (§5): the §5.1 timing tables (T1, T2),
// Figure 8 (functional-unit balance), Figure 9 (EU utilization), Figure 10
// (SIMPLE speed-up incl. the Pingali & Rogers baseline), the §5.3.4
// efficiency comparison (E1), the matrix-multiply generic example (X1), and
// the ablations called out in DESIGN.md.
package bench

import (
	"fmt"
	"sync"

	"repro/internal/idlang"
	"repro/internal/isa"
	"repro/internal/partition"
	"repro/internal/sim"
	"repro/internal/simple"
	"repro/internal/translate"
)

// Variant selects an execution model for a run.
type Variant uint8

// Execution variants.
const (
	VariantPODS    Variant = iota + 1 // full PODS: data-driven SPs, split-phase, caching
	VariantPR                         // Pingali&Rogers-style: control-driven, EU stalls on absent operands
	VariantSeq                        // ideal sequential: 1 PE, zero PODS overheads (§5.3.4 baseline)
	VariantNoDist                     // ablation: partitioner distribution disabled
	VariantNoCache                    // ablation: software page cache disabled
)

func (v Variant) String() string {
	switch v {
	case VariantPODS:
		return "PODS"
	case VariantPR:
		return "P&R"
	case VariantSeq:
		return "seq"
	case VariantNoDist:
		return "nodist"
	case VariantNoCache:
		return "nocache"
	default:
		return "?"
	}
}

// compiled caches translated programs per (source, distribution) pair.
var compiled struct {
	mu    sync.Mutex
	progs map[string]*isa.Program
}

// Compile compiles Idlite source through translate+partition.
// Distribution can be disabled for the NoDist ablation.
func Compile(name, src string, distribute bool) (*isa.Program, error) {
	compiled.mu.Lock()
	defer compiled.mu.Unlock()
	key := fmt.Sprintf("%s/dist=%v", name, distribute)
	if compiled.progs == nil {
		compiled.progs = make(map[string]*isa.Program)
	}
	if p, ok := compiled.progs[key]; ok {
		return p, nil
	}
	gp, err := idlang.Compile(name, src)
	if err != nil {
		return nil, err
	}
	prog, err := translate.Translate(gp)
	if err != nil {
		return nil, err
	}
	if _, err := partition.Partition(prog, partition.Options{DisableDistribution: !distribute}); err != nil {
		return nil, err
	}
	compiled.progs[key] = prog
	return prog, nil
}

// Run simulates the program with the given mesh size under a variant.
func Run(src, name string, n, pes int, v Variant) (*sim.Result, error) {
	cfg := sim.Config{NumPEs: pes}
	distribute := true
	switch v {
	case VariantPR:
		cfg.Stall = true
	case VariantSeq:
		cfg.NumPEs = 1
		cfg.ZeroOverhead = true
		distribute = false // sequential code has no Range Filters
	case VariantNoDist:
		distribute = false
	case VariantNoCache:
		cfg.DisableCache = true
	}
	prog, err := Compile(name, src, distribute)
	if err != nil {
		return nil, err
	}
	m, err := sim.New(prog, cfg)
	if err != nil {
		return nil, err
	}
	return m.Run(isa.Int(int64(n)))
}

// RunSimple simulates the full SIMPLE step.
func RunSimple(n, pes int, v Variant) (*sim.Result, error) {
	return Run(simple.Source, "simple.id", n, pes, v)
}

// RunConduction simulates the standalone conduction routine (§5.3.4).
func RunConduction(n, pes int, v Variant) (*sim.Result, error) {
	return Run(simple.ConductionSource, "conduction.id", n, pes, v)
}

// DefaultPECounts is the paper's PE axis.
var DefaultPECounts = []int{1, 2, 4, 8, 16, 32}

// DefaultSizes is the paper's problem-size axis.
var DefaultSizes = []int{16, 32, 64}

// PaperSpeedup32 records the paper's Figure 10 speed-ups at 32 PEs.
var PaperSpeedup32 = map[int]float64{16: 8.1, 32: 12.4, 64: 18.9}

// PaperEfficiencyRatio is §5.3.4's PODS-vs-sequential ratio (1.72s/0.9s).
const PaperEfficiencyRatio = 1.72 / 0.9
