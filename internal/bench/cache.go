package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/isa"
	"repro/internal/kernels"
)

// The CACHE experiment measures what bounding the software page cache
// costs and buys: each (kernel, cap) cell runs the cluster runtime with
// Config.CachePages at the given cap (0 = unbounded, the control arm) and
// reports
//
//   - the hit rate: cache hits / (hits + misses) over all remote reads —
//     the curve that shows how small the cache can get before remote
//     traffic explodes,
//   - evictions and refetches: how hard the CLOCK bound worked and how
//     often it threw away a page that was needed again,
//   - the makespan (max per-PE executed instructions) and wall clock, so
//     the memory bound's performance price is visible next to its
//     footprint.
//
// Kernels: heat (the Jacobi step whose boundary reads exercise neighbour
// pages — the SIMPLE building block named in the ROADMAP item), relax
// (sweep-structured reads over a version-blocked array, so the working set
// rotates and a bounded cache must keep re-deciding what to hold), and
// matmul (every row task re-reads all of B, so its working set exceeds any
// small cap and the hit-rate curve actually bends — heat and relax touch
// remote pages in tight bursts and barely notice eviction).
//
// Since the page-heat machinery landed (Config.Heat), every bounded cell
// also runs a heat-on arm: streaming prefetch plus the adaptive cap,
// against the same fixed budget as the floor. The heat arm's hit rate at
// the caps where the plain bound collapses — matmul under a working set
// many times the cap — is the experiment's headline. A separate triread
// probe compares post-steal remote fetches with stealing on: array-
// granular locality (heat off, the PR 4 baseline) against page-granular
// ranking plus prefetch (heat on).

// CacheCell is one (kernel, cap, heat) measurement.
type CacheCell struct {
	Wall         time.Duration
	Makespan     int64   // max per-PE executed instructions
	HitRate      float64 // hits / (hits + misses); 1.0 when there were no remote reads
	Hits         int64
	Misses       int64
	Evictions    int64
	Refetches    int64
	Prefetches   int64 // pages requested ahead of the miss (heat arm)
	PrefetchHits int64 // prefetched pages that later served a demand read
	CapEnd       int64 // final resident-page budget summed over PEs (adaptive cap)
}

// CacheResult is the CACHE experiment output.
type CacheResult struct {
	N       int
	PEs     int
	Caps    []int // page-cache caps; 0 = unbounded control arm
	Kernels []string
	// Cells[kernel][cap] is the plain bounded cache (heat off).
	Cells map[string]map[int]CacheCell
	// HeatCells[kernel][cap] is the same budget with Config.Heat on
	// (prefetch + adaptive cap). The unbounded cap 0 is skipped — with no
	// bound there is nothing for the machinery to win back.
	HeatCells map[string]map[int]CacheCell

	// StealOff/StealOn are the triread post-steal probe: the deterministic
	// hand-pumped steal schedule (cluster.StealFetchProbe) at StealCap
	// pages, heat off vs on. Misses are the post-steal demand fetches the
	// page-granular grant ranking and prefetch are meant to avoid.
	StealCap          int
	StealOff, StealOn cluster.StealFetchStats
}

// cacheKernels are the default workloads for the cap sweep.
var cacheKernels = []string{"heat", "relax", "matmul"}

// Cache runs the CACHE experiment at problem size n on pes PEs over the
// given cache caps. With no explicit kernels it covers the default trio; a
// caller interested in a single cell names one to avoid the rest.
func Cache(n, pes int, caps []int, kerns ...string) (*CacheResult, error) {
	if _, forced := cluster.ForceCachePagesFromEnv(); forced {
		// The override would silently cap the unbounded control arm,
		// reporting a ~1.0 hit-rate ratio as if the bound cost nothing.
		return nil, fmt.Errorf("bench: CACHE needs a genuine unbounded control arm; unset PODS_FORCE_CACHE_PAGES")
	}
	if cluster.ForcePrefetchFromEnv() {
		// Likewise: the heat-off arms are the baseline the heat arms are
		// measured against.
		return nil, fmt.Errorf("bench: CACHE needs a genuine heat-off baseline; unset PODS_FORCE_PREFETCH")
	}
	if len(kerns) == 0 {
		kerns = cacheKernels
	}
	r := &CacheResult{
		N:         n,
		PEs:       pes,
		Caps:      caps,
		Kernels:   kerns,
		Cells:     make(map[string]map[int]CacheCell),
		HeatCells: make(map[string]map[int]CacheCell),
	}
	ctx := context.Background()
	run := func(prog *isa.Program, cfg cluster.Config, args []isa.Value) (CacheCell, error) {
		runCtx, cancel := context.WithTimeout(ctx, 2*time.Minute)
		defer cancel()
		start := time.Now()
		res, err := cluster.Execute(runCtx, prog, cfg, args...)
		if err != nil {
			return CacheCell{}, err
		}
		cell := CacheCell{
			Wall:         time.Since(start),
			Hits:         res.Stats.CacheHits,
			Misses:       res.Stats.CacheMisses,
			Evictions:    res.Stats.Evictions,
			Refetches:    res.Stats.Refetches,
			Prefetches:   res.Stats.Prefetches,
			PrefetchHits: res.Stats.PrefetchHits,
			CapEnd:       res.Stats.CacheCapNow,
		}
		if total := cell.Hits + cell.Misses; total > 0 {
			cell.HitRate = float64(cell.Hits) / float64(total)
		} else {
			cell.HitRate = 1
		}
		for _, v := range res.PEInstrs {
			if v > cell.Makespan {
				cell.Makespan = v
			}
		}
		return cell, nil
	}
	for _, kn := range r.Kernels {
		k, ok := kernels.ByName(kn)
		if !ok {
			return nil, fmt.Errorf("bench: unknown kernel %q", kn)
		}
		prog, err := Compile(k.File(), k.Source, true)
		if err != nil {
			return nil, err
		}
		r.Cells[kn] = make(map[int]CacheCell)
		r.HeatCells[kn] = make(map[int]CacheCell)
		for _, cap := range caps {
			cell, err := run(prog, cluster.Config{NumPEs: pes, CachePages: cap}, k.Args(n))
			if err != nil {
				return nil, fmt.Errorf("%s @cap=%d: %w", kn, cap, err)
			}
			r.Cells[kn][cap] = cell
			if cap == 0 {
				continue // unbounded: nothing for the heat machinery to win back
			}
			hcell, err := run(prog, cluster.Config{NumPEs: pes, CachePages: cap, Heat: true}, k.Args(n))
			if err != nil {
				return nil, fmt.Errorf("%s @cap=%d heat: %w", kn, cap, err)
			}
			r.HeatCells[kn][cap] = hcell
		}
	}

	// The post-steal locality probe: triread reads one shared array, so
	// array-granular steal locality cannot separate candidates and the
	// thief pays a demand fetch per stolen row's page. Page-granular
	// ranking plus prefetch is what the heat machinery claims to fix. The
	// probe runs the deterministic pumped schedule so both arms see
	// identical steal opportunities and the fetch counts are exact, and it
	// is pinned to the configuration of the original batched-locality
	// acceptance test (triread, n=26 @8 PEs) so "versus the PR 4 baseline"
	// is a like-for-like comparison regardless of the sweep's own n.
	const stealN, stealPEs = 26, 8
	tk, ok := kernels.ByName("triread")
	if !ok {
		return nil, fmt.Errorf("bench: unknown kernel %q", "triread")
	}
	tprog, err := Compile(tk.File(), tk.Source, true)
	if err != nil {
		return nil, err
	}
	r.StealCap = 8
	for _, heatOn := range []bool{false, true} {
		st, err := cluster.StealFetchProbe(tprog, tk.Args(stealN), stealPEs, r.StealCap, heatOn)
		if err != nil {
			return nil, fmt.Errorf("triread steal probe heat=%v: %w", heatOn, err)
		}
		if heatOn {
			r.StealOn = st
		} else {
			r.StealOff = st
		}
	}
	return r, nil
}

// Format renders the experiment.
func (r *CacheResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CACHE — bounded page cache with CLOCK eviction, n=%d @%dPE (cap in pages per shard; 0 = unbounded)\n", r.N, r.PEs)
	fmt.Fprintf(&b, "hit-rate = hits÷(hits+misses) over remote reads; refetches = evicted pages fetched again\n")
	fmt.Fprintf(&b, "heat = streaming prefetch + adaptive cap on the same budget; cap-end = final budget summed over PEs\n\n")
	fmt.Fprintf(&b, "%-8s %5s %-4s %12s %10s %8s %8s %8s %8s %9s %9s %7s %7s\n",
		"kernel", "cap", "heat", "wall-ms", "makespan", "hitrate", "hits", "misses", "evicts", "refetches", "prefetch", "pf-hit", "cap-end")
	ms := func(d time.Duration) string {
		return fmt.Sprintf("%.3f", float64(d.Microseconds())/1000)
	}
	row := func(kn string, cap int, heat string, c CacheCell) {
		fmt.Fprintf(&b, "%-8s %5d %-4s %12s %10d %8.3f %8d %8d %8d %9d %9d %7d %7d\n",
			kn, cap, heat, ms(c.Wall), c.Makespan, c.HitRate, c.Hits, c.Misses,
			c.Evictions, c.Refetches, c.Prefetches, c.PrefetchHits, c.CapEnd)
	}
	for _, kn := range r.Kernels {
		for _, cap := range r.Caps {
			row(kn, cap, "off", r.Cells[kn][cap])
			if hc, ok := r.HeatCells[kn][cap]; ok {
				row(kn, cap, "on", hc)
			}
		}
	}
	fmt.Fprintf(&b, "\ntriread post-steal probe (pumped schedule, steal on, cap %d):\n", r.StealCap)
	fmt.Fprintf(&b, "  heat off: %d steals, %d demand fetches, %d hits\n",
		r.StealOff.Steals, r.StealOff.Misses, r.StealOff.Hits)
	fmt.Fprintf(&b, "  heat on:  %d steals, %d demand fetches, %d hits, %d prefetches (%d hit)\n",
		r.StealOn.Steals, r.StealOn.Misses, r.StealOn.Hits, r.StealOn.Prefetches, r.StealOn.PrefetchHits)
	return b.String()
}

// WriteCSV emits kernel,cap,heat,wall_ms,makespan,hit_rate,hits,misses,
// evictions,refetches,prefetches,prefetch_hits,cap_end rows; the triread
// post-steal probe rides along as kernel "triread+steal".
func (r *CacheResult) WriteCSV(w io.Writer) error {
	var rows [][]string
	row := func(kn string, cap int, heat string, c CacheCell) {
		rows = append(rows, []string{
			kn, strconv.Itoa(cap), heat,
			fmtF(float64(c.Wall.Microseconds()) / 1000),
			strconv.FormatInt(c.Makespan, 10),
			fmtF(c.HitRate),
			strconv.FormatInt(c.Hits, 10),
			strconv.FormatInt(c.Misses, 10),
			strconv.FormatInt(c.Evictions, 10),
			strconv.FormatInt(c.Refetches, 10),
			strconv.FormatInt(c.Prefetches, 10),
			strconv.FormatInt(c.PrefetchHits, 10),
			strconv.FormatInt(c.CapEnd, 10),
		})
	}
	for _, kn := range r.Kernels {
		for _, cap := range r.Caps {
			row(kn, cap, "off", r.Cells[kn][cap])
			if hc, ok := r.HeatCells[kn][cap]; ok {
				row(kn, cap, "on", hc)
			}
		}
	}
	probe := func(heat string, st cluster.StealFetchStats) {
		hr := 1.0
		if total := st.Hits + st.Misses; total > 0 {
			hr = float64(st.Hits) / float64(total)
		}
		rows = append(rows, []string{
			"triread+steal", strconv.Itoa(r.StealCap), heat, "", "",
			fmtF(hr),
			strconv.FormatInt(st.Hits, 10),
			strconv.FormatInt(st.Misses, 10),
			"", "",
			strconv.FormatInt(st.Prefetches, 10),
			strconv.FormatInt(st.PrefetchHits, 10),
			"",
		})
	}
	probe("off", r.StealOff)
	probe("on", r.StealOn)
	return writeCSV(w, []string{"kernel", "cap", "heat", "wall_ms", "makespan", "hit_rate",
		"hits", "misses", "evictions", "refetches", "prefetches", "prefetch_hits", "cap_end"}, rows)
}

// WriteJSON emits the whole experiment as one machine-readable document
// (the BENCH_CACHE.json artifact). Map keys are stringified caps, so the
// document round-trips through ordinary JSON tooling.
func (r *CacheResult) WriteJSON(w io.Writer) error {
	type cell struct {
		WallMS       float64 `json:"wall_ms"`
		Makespan     int64   `json:"makespan"`
		HitRate      float64 `json:"hit_rate"`
		Hits         int64   `json:"hits"`
		Misses       int64   `json:"misses"`
		Evictions    int64   `json:"evictions"`
		Refetches    int64   `json:"refetches"`
		Prefetches   int64   `json:"prefetches"`
		PrefetchHits int64   `json:"prefetch_hits"`
		CapEnd       int64   `json:"cap_end"`
	}
	conv := func(c CacheCell) cell {
		return cell{
			WallMS:   float64(c.Wall.Microseconds()) / 1000,
			Makespan: c.Makespan, HitRate: c.HitRate,
			Hits: c.Hits, Misses: c.Misses,
			Evictions: c.Evictions, Refetches: c.Refetches,
			Prefetches: c.Prefetches, PrefetchHits: c.PrefetchHits,
			CapEnd: c.CapEnd,
		}
	}
	type probe struct {
		Steals       int64 `json:"steals"`
		Misses       int64 `json:"misses"`
		Hits         int64 `json:"hits"`
		Prefetches   int64 `json:"prefetches"`
		PrefetchHits int64 `json:"prefetch_hits"`
	}
	convP := func(st cluster.StealFetchStats) probe {
		return probe{Steals: st.Steals, Misses: st.Misses, Hits: st.Hits,
			Prefetches: st.Prefetches, PrefetchHits: st.PrefetchHits}
	}
	doc := struct {
		N         int                        `json:"n"`
		PEs       int                        `json:"pes"`
		Caps      []int                      `json:"caps"`
		Kernels   []string                   `json:"kernels"`
		Cells     map[string]map[string]cell `json:"cells"`
		HeatCells map[string]map[string]cell `json:"heat_cells"`
		StealCap  int                        `json:"steal_cap"`
		StealOff  probe                      `json:"triread_steal_heat_off"`
		StealOn   probe                      `json:"triread_steal_heat_on"`
	}{
		N: r.N, PEs: r.PEs, Caps: r.Caps, Kernels: r.Kernels,
		Cells:     make(map[string]map[string]cell),
		HeatCells: make(map[string]map[string]cell),
		StealCap:  r.StealCap,
		StealOff:  convP(r.StealOff), StealOn: convP(r.StealOn),
	}
	for kn, byCap := range r.Cells {
		doc.Cells[kn] = make(map[string]cell)
		for cap, c := range byCap {
			doc.Cells[kn][strconv.Itoa(cap)] = conv(c)
		}
	}
	for kn, byCap := range r.HeatCells {
		doc.HeatCells[kn] = make(map[string]cell)
		for cap, c := range byCap {
			doc.HeatCells[kn][strconv.Itoa(cap)] = conv(c)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
