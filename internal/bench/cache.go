package bench

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/kernels"
)

// The CACHE experiment measures what bounding the software page cache
// costs and buys: each (kernel, cap) cell runs the cluster runtime with
// Config.CachePages at the given cap (0 = unbounded, the control arm) and
// reports
//
//   - the hit rate: cache hits / (hits + misses) over all remote reads —
//     the curve that shows how small the cache can get before remote
//     traffic explodes,
//   - evictions and refetches: how hard the CLOCK bound worked and how
//     often it threw away a page that was needed again,
//   - the makespan (max per-PE executed instructions) and wall clock, so
//     the memory bound's performance price is visible next to its
//     footprint.
//
// Kernels: heat (the Jacobi step whose boundary reads exercise neighbour
// pages — the SIMPLE building block named in the ROADMAP item), relax
// (sweep-structured reads over a version-blocked array, so the working set
// rotates and a bounded cache must keep re-deciding what to hold), and
// matmul (every row task re-reads all of B, so its working set exceeds any
// small cap and the hit-rate curve actually bends — heat and relax touch
// remote pages in tight bursts and barely notice eviction).

// CacheCell is one (kernel, cap) measurement.
type CacheCell struct {
	Wall      time.Duration
	Makespan  int64   // max per-PE executed instructions
	HitRate   float64 // hits / (hits + misses); 1.0 when there were no remote reads
	Hits      int64
	Misses    int64
	Evictions int64
	Refetches int64
}

// CacheResult is the CACHE experiment output.
type CacheResult struct {
	N       int
	PEs     int
	Caps    []int // page-cache caps; 0 = unbounded control arm
	Kernels []string
	// Cells[kernel][cap].
	Cells map[string]map[int]CacheCell
}

// cacheKernels are the default workloads for the cap sweep.
var cacheKernels = []string{"heat", "relax", "matmul"}

// Cache runs the CACHE experiment at problem size n on pes PEs over the
// given cache caps. With no explicit kernels it covers the default trio; a
// caller interested in a single cell names one to avoid the rest.
func Cache(n, pes int, caps []int, kerns ...string) (*CacheResult, error) {
	if _, forced := cluster.ForceCachePagesFromEnv(); forced {
		// The override would silently cap the unbounded control arm,
		// reporting a ~1.0 hit-rate ratio as if the bound cost nothing.
		return nil, fmt.Errorf("bench: CACHE needs a genuine unbounded control arm; unset PODS_FORCE_CACHE_PAGES")
	}
	if len(kerns) == 0 {
		kerns = cacheKernels
	}
	r := &CacheResult{
		N:       n,
		PEs:     pes,
		Caps:    caps,
		Kernels: kerns,
		Cells:   make(map[string]map[int]CacheCell),
	}
	ctx := context.Background()
	for _, kn := range r.Kernels {
		k, ok := kernels.ByName(kn)
		if !ok {
			return nil, fmt.Errorf("bench: unknown kernel %q", kn)
		}
		prog, err := Compile(k.File(), k.Source, true)
		if err != nil {
			return nil, err
		}
		r.Cells[kn] = make(map[int]CacheCell)
		for _, cap := range caps {
			runCtx, cancel := context.WithTimeout(ctx, 2*time.Minute)
			start := time.Now()
			res, err := cluster.Execute(runCtx, prog,
				cluster.Config{NumPEs: pes, CachePages: cap}, k.Args(n)...)
			cancel()
			if err != nil {
				return nil, fmt.Errorf("%s @cap=%d: %w", kn, cap, err)
			}
			cell := CacheCell{
				Wall:      time.Since(start),
				Hits:      res.Stats.CacheHits,
				Misses:    res.Stats.CacheMisses,
				Evictions: res.Stats.Evictions,
				Refetches: res.Stats.Refetches,
			}
			if total := cell.Hits + cell.Misses; total > 0 {
				cell.HitRate = float64(cell.Hits) / float64(total)
			} else {
				cell.HitRate = 1
			}
			for _, v := range res.PEInstrs {
				if v > cell.Makespan {
					cell.Makespan = v
				}
			}
			r.Cells[kn][cap] = cell
		}
	}
	return r, nil
}

// Format renders the experiment.
func (r *CacheResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CACHE — bounded page cache with CLOCK eviction, n=%d @%dPE (cap in pages per shard; 0 = unbounded)\n", r.N, r.PEs)
	fmt.Fprintf(&b, "hit-rate = hits÷(hits+misses) over remote reads; refetches = evicted pages fetched again\n\n")
	fmt.Fprintf(&b, "%-8s %5s %12s %10s %8s %8s %8s %8s %9s\n",
		"kernel", "cap", "wall-ms", "makespan", "hitrate", "hits", "misses", "evicts", "refetches")
	ms := func(d time.Duration) string {
		return fmt.Sprintf("%.3f", float64(d.Microseconds())/1000)
	}
	for _, kn := range r.Kernels {
		for _, cap := range r.Caps {
			c := r.Cells[kn][cap]
			fmt.Fprintf(&b, "%-8s %5d %12s %10d %8.3f %8d %8d %8d %9d\n",
				kn, cap, ms(c.Wall), c.Makespan, c.HitRate, c.Hits, c.Misses, c.Evictions, c.Refetches)
		}
	}
	return b.String()
}

// WriteCSV emits kernel,cap,wall_ms,makespan,hit_rate,hits,misses,
// evictions,refetches rows.
func (r *CacheResult) WriteCSV(w io.Writer) error {
	var rows [][]string
	for _, kn := range r.Kernels {
		for _, cap := range r.Caps {
			c := r.Cells[kn][cap]
			rows = append(rows, []string{
				kn, strconv.Itoa(cap),
				fmtF(float64(c.Wall.Microseconds()) / 1000),
				strconv.FormatInt(c.Makespan, 10),
				fmtF(c.HitRate),
				strconv.FormatInt(c.Hits, 10),
				strconv.FormatInt(c.Misses, 10),
				strconv.FormatInt(c.Evictions, 10),
				strconv.FormatInt(c.Refetches, 10),
			})
		}
	}
	return writeCSV(w, []string{"kernel", "cap", "wall_ms", "makespan", "hit_rate", "hits", "misses", "evictions", "refetches"}, rows)
}
