package bench

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/sim"
)

// The SERVE experiment measures the multi-program job service: one
// persistent fleet of workers takes a sustained closed-loop stream of
// mixed jobs (heat, relax, matmul, triangular — each with its own knob
// set, from fully static to steal+adapt+cache) from several concurrent
// clients, and the harness reports job throughput and the latency
// distribution (p50/p90/p99/max). Every job's arrays are verified
// against the simulator reference as they complete, so the numbers are
// only reported for runs that stayed bit-for-bit correct under
// multi-tenant load.

// serveMix is the sustained mixed load: each submitted job cycles through
// these (kernel, knobs) pairs round-robin.
var serveMix = []struct {
	Kernel string
	Cfg    cluster.Config
}{
	{"matmul", cluster.Config{PageElems: 8}},
	{"heat", cluster.Config{PageElems: 8, Steal: true}},
	{"relax", cluster.Config{PageElems: 8, Adapt: true, ProbeInterval: 200 * time.Microsecond}},
	{"triangular", cluster.Config{PageElems: 8, Steal: true, CachePages: 2}},
}

// ServeJobRecord is one completed job's measurement.
type ServeJobRecord struct {
	Index   int           // submission order
	Kernel  string        // which mix entry ran
	Client  int           // submitting client
	Start   time.Duration // submit time relative to experiment start
	Latency time.Duration // submit-to-result wall time
}

// ServeKernelStat aggregates one kernel's share of the mix.
type ServeKernelStat struct {
	Jobs int
	Mean time.Duration
	P99  time.Duration
}

// ServeResult is the SERVE experiment output.
type ServeResult struct {
	N       int // per-job problem size
	PEs     int
	Clients int // concurrent closed-loop submitters
	Jobs    int // total jobs completed

	Wall       time.Duration // experiment wall time
	Throughput float64       // jobs per second
	Mean       time.Duration
	P50        time.Duration
	P90        time.Duration
	P99        time.Duration
	Max        time.Duration

	PerKernel map[string]ServeKernelStat
	Records   []ServeJobRecord
}

// serveRef is a kernel's compiled program plus its simulator-reference
// arrays, computed once and checked against every job of that kernel.
type serveRef struct {
	prog  *isa.Program
	args  []isa.Value
	names []string
	vals  map[string][]float64
	masks map[string][]bool
}

// Serve runs the SERVE experiment: clients closed-loop submitters pushing
// jobs total jobs of the mixed load at problem size n onto one persistent
// fleet of pes workers.
func Serve(n, pes, clients, jobs int) (*ServeResult, error) {
	if clients < 1 || jobs < 1 {
		return nil, fmt.Errorf("bench: SERVE needs at least one client and one job")
	}

	refs := make([]serveRef, len(serveMix))
	for i, mx := range serveMix {
		k, ok := kernels.ByName(mx.Kernel)
		if !ok {
			return nil, fmt.Errorf("bench: unknown kernel %q", mx.Kernel)
		}
		prog, err := Compile(k.File(), k.Source, true)
		if err != nil {
			return nil, err
		}
		args := k.Args(n)
		m, err := sim.New(prog, sim.Config{NumPEs: pes})
		if err != nil {
			return nil, err
		}
		if _, err := m.Run(args...); err != nil {
			return nil, err
		}
		ref := serveRef{prog: prog, args: args, names: k.Arrays,
			vals: make(map[string][]float64), masks: make(map[string][]bool)}
		for _, name := range k.Arrays {
			v, mask, _, err := m.ReadArray(name)
			if err != nil {
				return nil, err
			}
			ref.vals[name], ref.masks[name] = v, mask
		}
		refs[i] = ref
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	fleet, err := cluster.OpenFleet(ctx, cluster.Config{NumPEs: pes, MaxJobs: clients + 1})
	if err != nil {
		return nil, err
	}
	defer fleet.Close()

	r := &ServeResult{
		N: n, PEs: pes, Clients: clients, Jobs: jobs,
		PerKernel: make(map[string]ServeKernelStat),
		Records:   make([]ServeJobRecord, jobs),
	}
	var (
		next   int64 = -1 // atomic job-index dispenser
		wg     sync.WaitGroup
		mu     sync.Mutex
		runErr error
	)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			for {
				idx := int(atomic.AddInt64(&next, 1))
				if idx >= jobs {
					return
				}
				mi := idx % len(serveMix)
				ref := &refs[mi]
				t0 := time.Since(start)
				res, err := fleet.Submit(ctx, ref.prog, serveMix[mi].Cfg, ref.args...)
				lat := time.Since(start) - t0
				if err == nil {
					err = checkServeJob(res, ref)
				}
				if err != nil {
					mu.Lock()
					if runErr == nil {
						runErr = fmt.Errorf("job %d (%s): %w", idx, serveMix[mi].Kernel, err)
					}
					mu.Unlock()
					return
				}
				r.Records[idx] = ServeJobRecord{
					Index: idx, Kernel: serveMix[mi].Kernel, Client: client,
					Start: t0, Latency: lat,
				}
			}
		}(c)
	}
	wg.Wait()
	r.Wall = time.Since(start)
	if runErr != nil {
		return nil, runErr
	}

	lats := make([]time.Duration, 0, jobs)
	byKernel := make(map[string][]time.Duration)
	var sum time.Duration
	for _, rec := range r.Records {
		lats = append(lats, rec.Latency)
		byKernel[rec.Kernel] = append(byKernel[rec.Kernel], rec.Latency)
		sum += rec.Latency
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	r.Throughput = float64(jobs) / r.Wall.Seconds()
	r.Mean = sum / time.Duration(jobs)
	r.P50 = percentile(lats, 0.50)
	r.P90 = percentile(lats, 0.90)
	r.P99 = percentile(lats, 0.99)
	r.Max = lats[len(lats)-1]
	for kn, ls := range byKernel {
		sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
		var s time.Duration
		for _, l := range ls {
			s += l
		}
		r.PerKernel[kn] = ServeKernelStat{
			Jobs: len(ls),
			Mean: s / time.Duration(len(ls)),
			P99:  percentile(ls, 0.99),
		}
	}
	return r, nil
}

// checkServeJob verifies one job's arrays against the kernel's simulator
// reference (values and written-masks both).
func checkServeJob(res *cluster.Result, ref *serveRef) error {
	for _, name := range ref.names {
		vals, mask, _, err := res.ReadArray(name)
		if err != nil {
			return err
		}
		want, wantMask := ref.vals[name], ref.masks[name]
		if len(vals) != len(want) {
			return fmt.Errorf("%s: %d elements, want %d", name, len(vals), len(want))
		}
		for i := range want {
			if mask[i] != wantMask[i] {
				return fmt.Errorf("%s[%d]: written=%v, want %v", name, i, mask[i], wantMask[i])
			}
			if mask[i] && vals[i] != want[i] {
				return fmt.Errorf("%s[%d] = %v, want %v (fleet job disagrees with sim)",
					name, i, vals[i], want[i])
			}
		}
	}
	return nil
}

// percentile reads the q-quantile from an ascending-sorted sample
// (nearest-rank).
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Format renders the experiment.
func (r *ServeResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "SERVE — multi-program job service, n=%d @%d PEs, %d clients, %d jobs (mixed %s)\n",
		r.N, r.PEs, r.Clients, r.Jobs, serveMixNames())
	fmt.Fprintf(&b, "(closed loop; every job verified bit-for-bit against the simulator)\n\n")
	ms := func(d time.Duration) string {
		return fmt.Sprintf("%.3f", float64(d.Microseconds())/1000)
	}
	fmt.Fprintf(&b, "throughput %.1f jobs/s over %s wall\n", r.Throughput, r.Wall.Round(time.Millisecond))
	fmt.Fprintf(&b, "latency ms: mean %s  p50 %s  p90 %s  p99 %s  max %s\n\n",
		ms(r.Mean), ms(r.P50), ms(r.P90), ms(r.P99), ms(r.Max))
	fmt.Fprintf(&b, "%-12s %6s %12s %12s\n", "kernel", "jobs", "mean-ms", "p99-ms")
	for _, mx := range serveMix {
		s, ok := r.PerKernel[mx.Kernel]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "%-12s %6d %12s %12s\n", mx.Kernel, s.Jobs, ms(s.Mean), ms(s.P99))
	}
	return b.String()
}

func serveMixNames() string {
	names := make([]string, len(serveMix))
	for i, mx := range serveMix {
		names[i] = mx.Kernel
	}
	return strings.Join(names, "/")
}

// WriteCSV emits one row per job: index, kernel, client, start and
// latency in milliseconds.
func (r *ServeResult) WriteCSV(w io.Writer) error {
	var rows [][]string
	for _, rec := range r.Records {
		rows = append(rows, []string{
			strconv.Itoa(rec.Index), rec.Kernel, strconv.Itoa(rec.Client),
			fmtF(float64(rec.Start.Microseconds()) / 1000),
			fmtF(float64(rec.Latency.Microseconds()) / 1000),
		})
	}
	return writeCSV(w, []string{"job", "kernel", "client", "start_ms", "latency_ms"}, rows)
}
