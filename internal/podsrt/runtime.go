// Package podsrt executes translated PODS programs with real concurrency:
// one goroutine per Subcompact Process, channels for inter-SP tokens, and a
// shared I-structure store with deferred reads. It is the "run it on a real
// shared-memory multiprocessor" counterpart to the timing-accurate
// discrete-event simulator in internal/sim — goroutines play the role of
// SPs and channel sends the role of dataflow tokens (the mapping the paper's
// model invites on modern hardware).
//
// Distribution still matters: the runtime honours SPAWND/Range-Filter
// semantics by assigning each SP instance a virtual PE, so the same
// partitioned program runs unchanged and the Church-Rosser property can be
// checked against the simulator's results.
package podsrt

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/isa"
	"repro/internal/istructure"
	"repro/internal/rtcfg"
)

// Config parameterizes the runtime.
type Config struct {
	// VirtualPEs is the number of copies a SPAWND creates (and the divisor
	// for Range Filters). Defaults to 4.
	VirtualPEs int

	// PageElems sets the logical partitioning geometry (Range Filters
	// follow it exactly as in the simulator). Defaults to 32.
	PageElems int

	// DistThreshold mirrors sim.Config.DistThreshold. Defaults to 2 pages.
	DistThreshold int
}

func (c *Config) fill() error {
	g := rtcfg.Geometry{PEs: c.VirtualPEs, PageElems: c.PageElems, DistThreshold: c.DistThreshold}
	if err := g.Fill(rtcfg.DefaultPEs); err != nil {
		return err
	}
	c.VirtualPEs, c.PageElems, c.DistThreshold = g.PEs, g.PageElems, g.DistThreshold
	return nil
}

// Runtime executes one program.
type Runtime struct {
	cfg  Config
	prog *isa.Program

	wg sync.WaitGroup

	mu        sync.Mutex
	arrays    map[int64]*rtArray
	byName    map[string]int64
	nameSeq   []string
	nextArray int64
	nextSP    int64
	insts     map[int64]*inst
	result    *isa.Value
	err       error

	cancel context.CancelFunc
}

type rtArray struct {
	h  *istructure.Header
	mu sync.Mutex
	// vals/set cover the whole array (shared memory).
	vals    []isa.Value
	set     []bool
	waiters map[int][]waiter
}

type waiter struct {
	inst *inst
	slot int
}

type token struct {
	slot int
	val  isa.Value
}

type inst struct {
	id   int64
	tmpl *isa.Template
	pe   int
	mail chan token
}

// New builds a runtime for a validated program.
func New(prog *isa.Program, cfg Config) (*Runtime, error) {
	if err := cfg.fill(); err != nil {
		return nil, fmt.Errorf("podsrt: %w", err)
	}
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("podsrt: %w", err)
	}
	return &Runtime{
		cfg:    cfg,
		prog:   prog,
		arrays: make(map[int64]*rtArray),
		byName: make(map[string]int64),
		insts:  make(map[int64]*inst),
	}, nil
}

func (r *Runtime) fail(err error) {
	r.mu.Lock()
	if r.err == nil {
		r.err = err
		if r.cancel != nil {
			r.cancel()
		}
	}
	r.mu.Unlock()
}

// Run executes the program to completion (all SPs terminated) and returns
// the entry block's result value, if any. The context bounds the run; a
// blocked dataflow program (deadlock) is reported when ctx expires.
func (r *Runtime) Run(ctx context.Context, args ...isa.Value) (*isa.Value, error) {
	entry := r.prog.Entry()
	want := entry.NParams
	if entry.HasResult {
		want -= 2
	}
	if len(args) != want {
		return nil, fmt.Errorf("podsrt: entry %q wants %d args, got %d", entry.Name, want, len(args))
	}
	if entry.HasResult {
		args = append(append([]isa.Value{}, args...), isa.SPRef(0), isa.Int(0))
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	r.cancel = cancel

	r.spawn(ctx, entry, 0, args)
	done := make(chan struct{})
	go func() {
		r.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		r.wg.Wait() // goroutines unblock via ctx select
		r.mu.Lock()
		defer r.mu.Unlock()
		if r.err != nil {
			return nil, r.err
		}
		return nil, fmt.Errorf("podsrt: run cancelled (deadlocked dataflow program?): %w", ctx.Err())
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return nil, r.err
	}
	return r.result, nil
}

func (r *Runtime) newInst(tmpl *isa.Template, pe int) *inst {
	r.mu.Lock()
	r.nextSP++
	in := &inst{
		id:   r.nextSP,
		tmpl: tmpl,
		pe:   pe,
		// One outstanding external token per slot at most (reads are
		// cleared at issue and consumed before reissue), so NSlots+1
		// buffering means deliveries never block.
		mail: make(chan token, tmpl.NSlots+1),
	}
	r.insts[in.id] = in
	r.mu.Unlock()
	return in
}

func (r *Runtime) spawn(ctx context.Context, tmpl *isa.Template, pe int, args []isa.Value) {
	in := r.newInst(tmpl, pe)
	r.wg.Add(1)
	go r.exec(ctx, in, args)
}

// deliver routes a token to an instance (or records the program result for
// the environment instance 0).
func (r *Runtime) deliver(id int64, slot int, v isa.Value) {
	if id == 0 {
		r.mu.Lock()
		val := v
		r.result = &val
		r.mu.Unlock()
		return
	}
	r.mu.Lock()
	in := r.insts[id]
	r.mu.Unlock()
	if in == nil {
		r.fail(fmt.Errorf("podsrt: token for dead SP %d", id))
		return
	}
	in.mail <- token{slot: slot, val: v}
}

func (r *Runtime) release(id int64) {
	r.mu.Lock()
	delete(r.insts, id)
	r.mu.Unlock()
}

// alloc creates an array shared across all virtual PEs.
func (r *Runtime) alloc(name string, dims []int, dist bool) (int64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextArray++
	id := r.nextArray
	elems := 1
	for _, d := range dims {
		elems *= d
	}
	physDist := dist && elems >= r.cfg.DistThreshold
	h, err := istructure.NewHeader(id, name, dims, r.cfg.PageElems, r.cfg.VirtualPEs, 0, physDist)
	if err != nil {
		return 0, err
	}
	if name == "" {
		name = fmt.Sprintf("anon%d", id)
	}
	r.arrays[id] = &rtArray{
		h:       h,
		vals:    make([]isa.Value, elems),
		set:     make([]bool, elems),
		waiters: make(map[int][]waiter),
	}
	if _, seen := r.byName[name]; !seen {
		r.nameSeq = append(r.nameSeq, name)
	}
	r.byName[name] = id
	return id, nil
}

func (r *Runtime) array(id int64) *rtArray {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.arrays[id]
}

// read delivers the element to (inst, slot) now or when written.
func (a *rtArray) read(off int, w waiter, deliver func(id int64, slot int, v isa.Value)) {
	a.mu.Lock()
	if a.set[off] {
		v := a.vals[off]
		a.mu.Unlock()
		deliver(w.inst.id, w.slot, v)
		return
	}
	a.waiters[off] = append(a.waiters[off], w)
	a.mu.Unlock()
}

func (a *rtArray) write(off int, v isa.Value) ([]waiter, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.set[off] {
		return nil, &istructure.SingleAssignmentError{Array: a.h.Name, Off: off}
	}
	a.vals[off] = v
	a.set[off] = true
	ws := a.waiters[off]
	delete(a.waiters, off)
	return ws, nil
}

// ReadArray gathers a named array's contents after a run.
func (r *Runtime) ReadArray(name string) (vals []float64, mask []bool, dims []int, err error) {
	r.mu.Lock()
	id, ok := r.byName[name]
	var a *rtArray
	if ok {
		a = r.arrays[id]
	}
	r.mu.Unlock()
	if a == nil {
		return nil, nil, nil, fmt.Errorf("podsrt: unknown array %q", name)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	vals = make([]float64, len(a.vals))
	mask = make([]bool, len(a.vals))
	for i := range a.vals {
		if a.set[i] {
			vals[i] = a.vals[i].AsFloat()
			mask[i] = true
		}
	}
	return vals, mask, append([]int(nil), a.h.Dims...), nil
}

// exec interprets one SP to completion.
func (r *Runtime) exec(ctx context.Context, in *inst, args []isa.Value) {
	defer r.wg.Done()
	defer r.release(in.id)

	tmpl := in.tmpl
	frame := make([]isa.Value, tmpl.NSlots)
	present := make([]bool, tmpl.NSlots)
	if len(args) != tmpl.NParams {
		r.fail(fmt.Errorf("podsrt: %q spawned with %d args, want %d", tmpl.Name, len(args), tmpl.NParams))
		return
	}
	copy(frame, args)
	for i := range args {
		present[i] = true
	}

	drain := func() {
		for {
			select {
			case t := <-in.mail:
				frame[t.slot] = t.val
				present[t.slot] = true
			default:
				return
			}
		}
	}
	// await blocks until the slot is present (tokens may fill other slots
	// meanwhile); returns false when the run is cancelled.
	await := func(slot int) bool {
		for !present[slot] {
			select {
			case t := <-in.mail:
				frame[t.slot] = t.val
				present[t.slot] = true
			case <-ctx.Done():
				return false
			}
		}
		return true
	}

	var inputs [8]int
	pc := 0
	for {
		if pc < 0 || pc >= len(tmpl.Code) {
			r.fail(fmt.Errorf("podsrt: %q pc %d out of range", tmpl.Name, pc))
			return
		}
		ins := &tmpl.Code[pc]
		drain()
		for _, s := range ins.Inputs(inputs[:0]) {
			if !await(s) {
				return
			}
		}
		next := pc + 1
		if isa.IsScalar(ins.Op) {
			var bv isa.Value
			if ins.B != isa.None {
				bv = frame[ins.B]
			}
			v, err := isa.EvalScalar(ins.Op, frame[ins.A], bv)
			if err != nil {
				r.fail(fmt.Errorf("podsrt: %q pc %d: %v", tmpl.Name, pc, err))
				return
			}
			frame[ins.Dst], present[ins.Dst] = v, true
			pc = next
			continue
		}
		switch ins.Op {
		case isa.NOP:
		case isa.CONST:
			frame[ins.Dst], present[ins.Dst] = ins.Imm, true
		case isa.MOVE:
			frame[ins.Dst], present[ins.Dst] = frame[ins.A], true
		case isa.CLEAR:
			present[ins.Dst] = false
		case isa.SELF:
			frame[ins.Dst], present[ins.Dst] = isa.SPRef(in.id), true

		case isa.JUMP:
			next = ins.Target
		case isa.BRFALSE:
			if !frame[ins.A].AsBool() {
				next = ins.Target
			}
		case isa.BRTRUE:
			if frame[ins.A].AsBool() {
				next = ins.Target
			}

		case isa.ALLOC, isa.ALLOCD:
			dims := make([]int, len(ins.Args))
			for i, s := range ins.Args {
				dims[i] = int(frame[s].AsInt())
			}
			id, err := r.alloc(ins.Comment, dims, ins.Op == isa.ALLOCD)
			if err != nil {
				r.fail(err)
				return
			}
			frame[ins.Dst], present[ins.Dst] = isa.Array(id), true

		case isa.AREAD:
			a := r.array(frame[ins.A].I)
			if a == nil {
				r.fail(fmt.Errorf("podsrt: %q: read of unknown array", tmpl.Name))
				return
			}
			off, err := a.offset(frame, ins.Args)
			if err != nil {
				r.fail(err)
				return
			}
			present[ins.Dst] = false
			a.read(off, waiter{inst: in, slot: ins.Dst}, r.deliver)

		case isa.AWRITE:
			a := r.array(frame[ins.A].I)
			if a == nil {
				r.fail(fmt.Errorf("podsrt: %q: write to unknown array", tmpl.Name))
				return
			}
			off, err := a.offset(frame, ins.Args)
			if err != nil {
				r.fail(err)
				return
			}
			ws, err := a.write(off, frame[ins.B])
			if err != nil {
				r.fail(fmt.Errorf("podsrt: %q: %w", tmpl.Name, err))
				return
			}
			for _, w := range ws {
				r.deliver(w.inst.id, w.slot, frame[ins.B])
			}

		case isa.ROWLO, isa.ROWHI:
			a := r.array(frame[ins.A].I)
			lo, hi, ok := a.h.OwnedRows(in.pe)
			if !ok {
				lo, hi = 1, 0
			}
			v := lo
			if ins.Op == isa.ROWHI {
				v = hi
			}
			frame[ins.Dst], present[ins.Dst] = isa.Int(v), true
		case isa.COLLO, isa.COLHI:
			a := r.array(frame[ins.A].I)
			lo, hi, ok := a.h.OwnedCols(in.pe, frame[ins.B].AsInt())
			if !ok {
				lo, hi = 1, 0
			}
			v := lo
			if ins.Op == isa.COLHI {
				v = hi
			}
			frame[ins.Dst], present[ins.Dst] = isa.Int(v), true
		case isa.UNIFLO, isa.UNIFHI:
			lo := frame[ins.A].AsInt()
			hi := frame[ins.B].AsInt()
			n := hi - lo + 1
			if n < 0 {
				n = 0
			}
			pes := int64(r.cfg.VirtualPEs)
			id := int64(in.pe)
			v := lo + n*id/pes
			if ins.Op == isa.UNIFHI {
				v = lo + n*(id+1)/pes - 1
			}
			frame[ins.Dst], present[ins.Dst] = isa.Int(v), true

		case isa.SPAWN, isa.SPAWND:
			child := r.prog.Template(int(ins.Imm.I))
			cargs := make([]isa.Value, len(ins.Args))
			for i, s := range ins.Args {
				cargs[i] = frame[s]
			}
			if ins.Op == isa.SPAWND {
				for pe := 0; pe < r.cfg.VirtualPEs; pe++ {
					r.spawn(ctx, child, pe, cargs)
				}
			} else {
				r.spawn(ctx, child, in.pe, cargs)
			}

		case isa.SEND:
			ref := frame[ins.A]
			base := int64(0)
			if len(ins.Args) > 0 {
				base = frame[ins.Args[0]].AsInt()
			}
			r.deliver(ref.I, int(base+ins.Imm.I), frame[ins.B])

		case isa.HALT:
			return

		default:
			r.fail(fmt.Errorf("podsrt: %q pc %d: unimplemented opcode %s", tmpl.Name, pc, ins.Op))
			return
		}
		pc = next
	}
}

func (a *rtArray) offset(frame []isa.Value, idxSlots []int) (int, error) {
	idx := make([]int64, len(idxSlots))
	for i, s := range idxSlots {
		idx[i] = frame[s].AsInt()
	}
	return a.h.Offset(idx)
}
