package podsrt_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/idlang"
	"repro/internal/isa"
	"repro/internal/istructure"
	"repro/internal/partition"
	"repro/internal/podsrt"
	"repro/internal/sim"
	"repro/internal/simple"
	"repro/internal/translate"
)

func compile(t *testing.T, src string) *isa.Program {
	t.Helper()
	gp, err := idlang.Compile("rt.id", src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := translate.Translate(gp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := partition.Partition(prog, partition.Options{}); err != nil {
		t.Fatal(err)
	}
	return prog
}

func runRT(t *testing.T, prog *isa.Program, pes int, args ...isa.Value) (*isa.Value, *podsrt.Runtime) {
	t.Helper()
	rt, err := podsrt.New(prog, podsrt.Config{VirtualPEs: pes, PageElems: 8, DistThreshold: 16})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	v, err := rt.Run(ctx, args...)
	if err != nil {
		t.Fatalf("runtime (PEs=%d): %v", pes, err)
	}
	return v, rt
}

func TestRuntimeScalarResult(t *testing.T) {
	prog := compile(t, `
func main(n: int) -> int {
	s = 0;
	for k = 1 to n {
		next s = s + k * k;
	}
	return s;
}`)
	v, _ := runRT(t, prog, 2, isa.Int(10))
	if v == nil || v.I != 385 {
		t.Fatalf("result = %+v, want 385", v)
	}
}

func TestRuntimeMatchesSimulator(t *testing.T) {
	src := `
func main(n: int) {
	A = array(n, n);
	B = array(n, n);
	for i = 1 to n {
		for j = 1 to n {
			A[i, j] = float(i * 3 + j);
		}
	}
	for i2 = 1 to n {
		for j2 = 1 to n {
			s = 0.0;
			for k = 1 to n {
				next s = s + A[i2, k] * A[k, j2];
			}
			B[i2, j2] = s;
		}
	}
}`
	const n = 6
	prog := compile(t, src)

	mach, err := sim.New(prog, sim.Config{NumPEs: 4, PageElems: 8, DistThreshold: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mach.Run(isa.Int(n)); err != nil {
		t.Fatal(err)
	}
	simVals, _, _, err := mach.ReadArray("B")
	if err != nil {
		t.Fatal(err)
	}

	for _, pes := range []int{1, 4, 7} {
		_, rt := runRT(t, prog, pes, isa.Int(n))
		rtVals, mask, _, err := rt.ReadArray("B")
		if err != nil {
			t.Fatal(err)
		}
		for i := range rtVals {
			if !mask[i] {
				t.Fatalf("PEs=%d: B[%d] unwritten", pes, i)
			}
			if rtVals[i] != simVals[i] {
				t.Fatalf("PEs=%d: runtime B[%d]=%v, simulator %v (Church-Rosser violated)", pes, i, rtVals[i], simVals[i])
			}
		}
	}
}

func TestRuntimeSIMPLEMatchesNative(t *testing.T) {
	const n = 8
	prog := compile(t, simple.Source)
	ref := simple.NewGrid(n)
	ref.Step()
	_, rt := runRT(t, prog, 4, isa.Int(n))
	vals, mask, _, err := rt.ReadArray("t2")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n*n; i++ {
		if !mask[i] {
			t.Fatalf("t2[%d] unwritten", i)
		}
		if d := vals[i] - ref.T2[i]; d > 1e-9 || d < -1e-9 {
			t.Fatalf("t2[%d]=%v, native %v", i, vals[i], ref.T2[i])
		}
	}
}

func TestRuntimeDeadlockReported(t *testing.T) {
	prog := compile(t, `
func main() {
	A = array(64);
	x = A[5] + 1.0; # never written
	A[1] = x;
}`)
	rt, err := podsrt.New(prog, podsrt.Config{VirtualPEs: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if _, err := rt.Run(ctx); err == nil {
		t.Fatal("deadlocked program should report an error")
	}
}

func TestRuntimeSingleAssignmentViolation(t *testing.T) {
	prog := compile(t, `
func main() {
	A = array(64);
	for i = 1 to 2 {
		A[1] = float(i); # written twice
	}
}`)
	rt, err := podsrt.New(prog, podsrt.Config{VirtualPEs: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err = rt.Run(ctx)
	var sav *istructure.SingleAssignmentError
	if !errors.As(err, &sav) {
		t.Fatalf("err = %v, want SingleAssignmentError", err)
	}
}

func TestRuntimeRepeatedRunsDeterministic(t *testing.T) {
	src := `
func main(n: int) {
	A = array(n, n);
	for i = 1 to n {
		for j = 1 to n {
			A[i, j] = float(i) / float(j) + float(j) * 0.5;
		}
	}
}`
	prog := compile(t, src)
	var ref []float64
	for trial := 0; trial < 5; trial++ {
		_, rt := runRT(t, prog, 4, isa.Int(12))
		vals, _, _, err := rt.ReadArray("A")
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = vals
			continue
		}
		for i := range vals {
			if vals[i] != ref[i] {
				t.Fatalf("trial %d: A[%d]=%v != %v", trial, i, vals[i], ref[i])
			}
		}
	}
}

func TestRuntimeWhileLoop(t *testing.T) {
	prog := compile(t, `
func main(x: int) -> float {
	c = float(x);
	g = c;
	while g * g - c > 0.000001 {
		next g = 0.5 * (g + c / g);
	}
	return g;
}`)
	v, _ := runRT(t, prog, 2, isa.Int(81))
	if v == nil || v.F < 8.999999 || v.F > 9.000001 {
		t.Fatalf("sqrt(81) ≈ %+v, want ≈ 9", v)
	}
}

func TestRuntimeColumnFilter(t *testing.T) {
	// The Figure-5 in-row column filter on the goroutine runtime.
	prog := compile(t, `
func main(n: int) {
	A = array(n, n);
	scale = 1.0;
	for i = 1 to n {
		for j = 1 to n {
			A[i, j] = scale * float(j);
		}
		next scale = scale + 1.0;
	}
}`)
	for _, pes := range []int{1, 3, 8} {
		_, rt := runRT(t, prog, pes, isa.Int(10))
		vals, mask, _, err := rt.ReadArray("A")
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i <= 10; i++ {
			for j := 1; j <= 10; j++ {
				off := (i-1)*10 + j - 1
				if !mask[off] || vals[off] != float64(i*j) {
					t.Fatalf("PEs=%d: A[%d,%d]=%v written=%v", pes, i, j, vals[off], mask[off])
				}
			}
		}
	}
}
