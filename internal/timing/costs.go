// Package timing holds the cost model of the PODS simulator: the iPSC/2
// instruction execution times, functional-unit service times, and Dunigan's
// message-latency equations, all taken from §5.1 of the paper. Durations are
// integer nanoseconds of virtual time so that every published constant
// (e.g. 0.558 µs, 19.5 µs, 697 + 0.4·L µs) is exactly representable and the
// simulation is bit-for-bit deterministic.
package timing

import (
	"repro/internal/isa"
)

// Duration is virtual time in nanoseconds.
type Duration = int64

const ns = Duration(1)

// Instruction execution times measured on the iPSC/2 (paper §5.1, table
// "iPSC/2 Instruction Execution time"). Entries not in the paper's table are
// derived and documented inline.
const (
	IntAddTime   = 300 * ns   // integer add: 0.300 µs
	IntSubTime   = 300 * ns   // integer subtraction: 0.300 µs
	BitwiseTime  = 558 * ns   // bitwise logical: 0.558 µs
	FNegTime     = 555 * ns   // floating point negate: 0.555 µs
	FCmpTime     = 5803 * ns  // floating point compare: 5.803 µs
	FPowTime     = 96418 * ns // floating point power: 96.418 µs
	FAbsTime     = 12626 * ns // floating point abs: 12.626 µs
	FSqrtTime    = 18929 * ns // floating point square root: 18.929 µs
	FMulTime     = 7217 * ns  // floating point multiply: 7.217 µs
	FDivTime     = 10707 * ns // floating point division: 10.707 µs
	FAddTime     = 6753 * ns  // floating point addition: 6.753 µs
	FSubTime     = 6757 * ns  // floating point subtraction: 6.757 µs
	IntCmpTime   = 300 * ns   // integer comparison (paper folds it into the 2.7 µs local-read budget at 0.3 µs)
	IntMulTime   = 1200 * ns  // integer multiply: derived from the 2.7 µs local read = 1 imul + 1 iadd + 3 icmp + 1 read ⇒ 2.7−0.3−0.9−0.3 = 1.2 µs
	IntDivTime   = 1500 * ns  // integer divide: estimate, slightly above imul (not used on hot paths)
	MoveTime     = 300 * ns   // register/slot move ≈ one memory reference (0.3 µs)
	ConstTime    = 300 * ns   // immediate materialization ≈ one memory reference
	JumpTime     = 300 * ns   // PC update ≈ one memory reference
	ConvTime     = 555 * ns   // int↔float conversion ≈ FP negate class
	MinMaxTime   = 600 * ns   // compare + conditional move: 2 × 0.3 µs
	SpawnEUTime  = 900 * ns   // EU-side work to package a spawn: 3 memory references
	SendEUTime   = 600 * ns   // EU-side work to emit one token: 2 memory references
	HaltEUTime   = 300 * ns   // EU-side terminate signal to the MM
	OwnQueryTime = 900 * ns   // Range-Filter header lookup: 3 local reads (array header is local)
)

// Execution-unit context switch: 80386 CALL ptr16:32 worst case, 21 clock
// cycles at 16 MHz = 1.312 µs (paper §5.1).
const ContextSwitchTime = 1312 * ns

// Local array access (paper §5.1): offset computation + 3 comparisons +
// local read = 2.7 µs when the element is local; the same address
// arithmetic precedes remote or deferred handling.
const LocalArrayReadTime = 2700 * ns

// Memory timings (paper §5.1 "where" block).
const (
	MemReadTime      = 300 * ns  // local read: 0.3 µs
	MemWriteTime     = 400 * ns  // local write: 0.4 µs
	UnitSignalTime   = 1000 * ns // signal between functional units on one PE: 1.0 µs
	EnqueuedReadTime = 2900 * ns // push an early read: 3 reads + 5 writes = 2.9 µs
)

// Matching Unit: hash-table lookup on (SP ID, frame pointer): 15 µs.
const MatchTime = 15000 * ns

// Memory Manager: each linked-list add/delete is ≈3 memory references =
// 0.9 µs. Activating an SP allocates a frame and enqueues the PCB (2 ops);
// terminating one releases the frame (1 op).
const (
	MMListOpTime   = 900 * ns
	ActivateSPTime = 2 * MMListOpTime
	ReleaseSPTime  = 1 * MMListOpTime
)

// Routing Unit. Tokens are <100 B and batched in groups of 20, so the
// simulation charges 19.5 µs of RU occupancy per batched small message
// (paper §5.1); long messages (page transfers) follow Dunigan's measured
// equation.
//
// Batching only applies to asynchronous traffic (result tokens, spawn
// requests, remote writes): a synchronous read request or reply cannot wait
// for a batch to fill, so it pays Dunigan's full short-message time as
// in-flight latency on top of the RU setup.
const (
	SmallMessageRUTime = 19500 * ns
	SmallMessageBytes  = 100
)

// SyncMessageFlight is the end-to-end latency of an unbatched short message
// (Dunigan: 390 µs for ≤100 bytes).
const SyncMessageFlight = 390000 * ns

// DuniganTime returns the iPSC/2 message time for a message of n bytes
// (Dunigan, ORNL/TM-10881): 390 µs up to 100 bytes, else 697 + 0.4·n µs.
func DuniganTime(n int) Duration {
	if n <= SmallMessageBytes {
		return 390000 * ns
	}
	return 697000*ns + Duration(n)*400*ns
}

// Network: the iPSC/2 network is modeled as pure propagation, 1 µs per hop
// with an average of 2.5 hops ⇒ 2.5 µs per message (paper §5.1).
const NetworkTime = 2500 * ns

// Array Manager task times (paper §5.1 "The Array Manager handles the
// following tasks in the indicated times").
const (
	AMWriteTime      = MemWriteTime               // array write (plus per-queued-read signal)
	AMPerQueuedRead  = UnitSignalTime             // per queued read released by a write
	AMCachedReadTime = MemReadTime                // cache probe
	AMCacheMissExtra = UnitSignalTime             // "+ message_time if not present"
	AMRemoteReadTime = MemReadTime                // owner-side presence check
	AMEnqueueTime    = EnqueuedReadTime           // queue an early read
	AMAllocTime      = 100000*ns + UnitSignalTime // allocate array: 100 µs + message_time
	AMDeliverTime    = UnitSignalTime             // hand a value to another unit
)

// PageReceiveTime and PageSendTime cost a page of n elements at the AM
// (paper: page_size × memory read/write time; send adds a unit signal).
func PageReceiveTime(elems int) Duration { return Duration(elems) * MemWriteTime }

// PageSendTime is the owner-side cost of extracting a page of n elements.
func PageSendTime(elems int) Duration {
	return Duration(elems)*MemReadTime + UnitSignalTime
}

// ElemBytes is the wire size of one array element (float64).
const ElemBytes = 8

// DefaultPageElems is the page size in elements: "the best page size has
// been determined to be 32 elements or approximately 2 kilobytes" (§4.1).
const DefaultPageElems = 32

// InstrTime returns the EU execution time for an instruction. For
// comparisons the operand kinds decide between the integer and floating
// point compare costs, so callers pass the already-fetched operands' kinds.
func InstrTime(op isa.Opcode, floatCmp bool) Duration {
	switch op {
	case isa.NOP:
		return JumpTime
	case isa.CONST:
		return ConstTime
	case isa.MOVE, isa.SELF, isa.CLEAR:
		return MoveTime
	case isa.IADD:
		return IntAddTime
	case isa.ISUB, isa.INEG:
		return IntSubTime
	case isa.IMUL:
		return IntMulTime
	case isa.IDIV, isa.IMOD:
		return IntDivTime
	case isa.FADD:
		return FAddTime
	case isa.FSUB:
		return FSubTime
	case isa.FMUL:
		return FMulTime
	case isa.FDIV:
		return FDivTime
	case isa.FNEG:
		return FNegTime
	case isa.FABS:
		return FAbsTime
	case isa.FSQRT:
		return FSqrtTime
	case isa.FPOW:
		return FPowTime
	case isa.CMPLT, isa.CMPLE, isa.CMPGT, isa.CMPGE, isa.CMPEQ, isa.CMPNE:
		if floatCmp {
			return FCmpTime
		}
		return IntCmpTime
	case isa.AND, isa.OR, isa.NOT:
		return BitwiseTime
	case isa.MAX, isa.MIN:
		return MinMaxTime
	case isa.ITOF, isa.FTOI:
		return ConvTime
	case isa.JUMP, isa.BRFALSE, isa.BRTRUE:
		return JumpTime
	case isa.AREAD, isa.AWRITE:
		return LocalArrayReadTime
	case isa.ALLOC, isa.ALLOCD:
		return SpawnEUTime
	case isa.ROWLO, isa.ROWHI, isa.COLLO, isa.COLHI, isa.UNIFLO, isa.UNIFHI:
		return OwnQueryTime
	case isa.SPAWN, isa.SPAWND:
		return SpawnEUTime
	case isa.SEND:
		return SendEUTime
	case isa.HALT:
		return HaltEUTime
	default:
		return MoveTime
	}
}
