package timing

import (
	"testing"

	"repro/internal/isa"
)

// TestPaperInstructionTable pins every constant from the paper's §5.1
// instruction table (nanoseconds).
func TestPaperInstructionTable(t *testing.T) {
	cases := []struct {
		name string
		got  Duration
		want Duration
	}{
		{"integer add", IntAddTime, 300},
		{"integer sub", IntSubTime, 300},
		{"bitwise", BitwiseTime, 558},
		{"fneg", FNegTime, 555},
		{"fcmp", FCmpTime, 5803},
		{"fpow", FPowTime, 96418},
		{"fabs", FAbsTime, 12626},
		{"fsqrt", FSqrtTime, 18929},
		{"fmul", FMulTime, 7217},
		{"fdiv", FDivTime, 10707},
		{"fadd", FAddTime, 6753},
		{"fsub", FSubTime, 6757},
		{"context switch", ContextSwitchTime, 1312},
		{"local array read", LocalArrayReadTime, 2700},
		{"mem read", MemReadTime, 300},
		{"mem write", MemWriteTime, 400},
		{"unit signal", UnitSignalTime, 1000},
		{"enqueued read", EnqueuedReadTime, 2900},
		{"match", MatchTime, 15000},
		{"mm list op", MMListOpTime, 900},
		{"small msg RU", SmallMessageRUTime, 19500},
		{"network", NetworkTime, 2500},
		{"sync flight", SyncMessageFlight, 390000},
	}
	for _, c := range cases {
		if c.got != c.want*1000/1000 { // both already ns
			t.Errorf("%s = %d ns, want %d ns", c.name, c.got, c.want)
		}
	}
}

// TestLocalReadDecomposition checks the paper's derivation: 2.7 µs =
// 1 imul + 1 iadd + 3 icmp + 1 read.
func TestLocalReadDecomposition(t *testing.T) {
	sum := IntMulTime + IntAddTime + 3*IntCmpTime + MemReadTime
	if sum != LocalArrayReadTime {
		t.Errorf("decomposition sums to %d ns, want %d", sum, LocalArrayReadTime)
	}
}

func TestDuniganEquation(t *testing.T) {
	if got := DuniganTime(1); got != 390000 {
		t.Errorf("Dunigan(1) = %d, want 390000", got)
	}
	if got := DuniganTime(100); got != 390000 {
		t.Errorf("Dunigan(100) = %d, want 390000", got)
	}
	// 697 + 0.4·256 µs = 799.4 µs.
	if got := DuniganTime(256); got != 799400 {
		t.Errorf("Dunigan(256) = %d, want 799400", got)
	}
	// Monotone beyond the knee.
	if DuniganTime(101) >= DuniganTime(1000) {
		t.Error("Dunigan must grow with message size")
	}
}

func TestPageCosts(t *testing.T) {
	if got := PageSendTime(32); got != 32*300+1000 {
		t.Errorf("PageSendTime(32) = %d", got)
	}
	if got := PageReceiveTime(32); got != 32*400 {
		t.Errorf("PageReceiveTime(32) = %d", got)
	}
	if DefaultPageElems != 32 {
		t.Errorf("page size %d, want the paper's 32", DefaultPageElems)
	}
	if DefaultPageElems*ElemBytes != 256 {
		t.Errorf("page bytes = %d", DefaultPageElems*ElemBytes)
	}
}

func TestInstrTimeCoversAllOpcodes(t *testing.T) {
	for op := isa.Opcode(1); int(op) < isa.NumOpcodes; op++ {
		if d := InstrTime(op, false); d < 0 {
			t.Errorf("InstrTime(%s) = %d", op, d)
		}
		if d := InstrTime(op, true); d <= 0 {
			t.Errorf("InstrTime(%s, float) = %d", op, d)
		}
	}
	// Comparison dispatch.
	if InstrTime(isa.CMPLT, true) != FCmpTime {
		t.Error("float compare cost")
	}
	if InstrTime(isa.CMPLT, false) != IntCmpTime {
		t.Error("int compare cost")
	}
	// FP ops cost more than integer ops (drives the EU balance).
	if InstrTime(isa.FADD, false) <= InstrTime(isa.IADD, false) {
		t.Error("FP add should cost more than integer add")
	}
}

func TestAllocTime(t *testing.T) {
	if AMAllocTime != 100000+1000 {
		t.Errorf("AMAllocTime = %d, want 101 µs", AMAllocTime)
	}
	if ActivateSPTime != 1800 || ReleaseSPTime != 900 {
		t.Errorf("SP activate/release = %d/%d", ActivateSPTime, ReleaseSPTime)
	}
}
