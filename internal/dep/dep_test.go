package dep

import (
	"testing"

	"repro/internal/isa"
)

func access(arr string, write bool, subs ...interface{}) isa.ArrayAccess {
	a := isa.ArrayAccess{Array: arr, IsWrite: write}
	for i := 0; i < len(subs); i += 2 {
		v := subs[i].(string)
		off := int64(subs[i+1].(int))
		if v == "?" {
			a.Dims = append(a.Dims, isa.SubOther)
			a.Vars = append(a.Vars, "")
			a.Offsets = append(a.Offsets, 0)
		} else {
			a.Dims = append(a.Dims, isa.SubAffine)
			a.Vars = append(a.Vars, v)
			a.Offsets = append(a.Offsets, off)
		}
	}
	return a
}

func TestNoLCDSimpleFill(t *testing.T) {
	// for i: for j: A[i,j] = f(i,j) — no reads of A at all.
	acc := []isa.ArrayAccess{access("A", true, "i", 0, "j", 0)}
	if HasLCD("i", acc, false) {
		t.Error("plain fill should have no LCD at i")
	}
	if HasLCD("j", acc, false) {
		t.Error("plain fill should have no LCD at j")
	}
}

func TestLCDSweep(t *testing.T) {
	// write alpha[i,j], read alpha[i-1,j]: LCD at i, none at j.
	acc := []isa.ArrayAccess{
		access("alpha", true, "i", 0, "j", 0),
		access("alpha", false, "i", -1, "j", 0),
	}
	if !HasLCD("i", acc, false) {
		t.Error("sweep should have LCD at i")
	}
	if HasLCD("j", acc, false) {
		t.Error("sweep should have no LCD at j")
	}
}

func TestLCDColumnSweep(t *testing.T) {
	// write B[i,j], read B[i,j-1]: LCD at j, none at i.
	acc := []isa.ArrayAccess{
		access("B", true, "i", 0, "j", 0),
		access("B", false, "i", 0, "j", -1),
	}
	if HasLCD("i", acc, false) {
		t.Error("column sweep should have no LCD at i")
	}
	if !HasLCD("j", acc, false) {
		t.Error("column sweep should have LCD at j")
	}
}

func TestReadOfOtherArrayNoLCD(t *testing.T) {
	// Jacobi-style: write New[i,j], read Old[i±1,j±1] — no LCD anywhere.
	acc := []isa.ArrayAccess{
		access("New", true, "i", 0, "j", 0),
		access("Old", false, "i", -1, "j", 0),
		access("Old", false, "i", 1, "j", 0),
		access("Old", false, "i", 0, "j", -1),
	}
	if HasLCD("i", acc, false) || HasLCD("j", acc, false) {
		t.Error("Jacobi stencil should have no LCD")
	}
}

func TestCarriedScalarIsLCD(t *testing.T) {
	if !HasLCD("k", nil, true) {
		t.Error("carried scalar must imply LCD")
	}
}

func TestNonAffineConservative(t *testing.T) {
	// write A[i], read A[B[i]] → non-affine read subscript → LCD.
	acc := []isa.ArrayAccess{
		access("A", true, "i", 0),
		access("A", false, "?", 0),
	}
	if !HasLCD("i", acc, false) {
		t.Error("non-affine read must be conservatively carried")
	}
}

func TestWriteNotVaryingWithVIsLCD(t *testing.T) {
	// write A[j] inside i-loop (i not in subscript), read A[j]: conservative
	// LCD at i (same element every i iteration).
	acc := []isa.ArrayAccess{
		access("A", true, "j", 0),
		access("A", false, "j", 0),
	}
	if !HasLCD("i", acc, false) {
		t.Error("write not varying with i must be conservatively carried at i")
	}
}

func TestChooseRFRow(t *testing.T) {
	acc := []isa.ArrayAccess{access("A", true, "i", 0, "j", 0)}
	c, ok := ChooseRF("i", acc, map[string]bool{})
	if !ok || c.Kind != isa.RFRow || c.Array != "A" {
		t.Fatalf("ChooseRF(i) = %+v ok=%v, want row filter on A", c, ok)
	}
}

func TestChooseRFCol(t *testing.T) {
	acc := []isa.ArrayAccess{access("A", true, "i", 0, "j", 0)}
	c, ok := ChooseRF("j", acc, map[string]bool{"i": true})
	if !ok || c.Kind != isa.RFCol || c.Array != "A" || c.Outer != "i" {
		t.Fatalf("ChooseRF(j) = %+v ok=%v, want col filter on A keyed by i", c, ok)
	}
}

func TestChooseRFUniform(t *testing.T) {
	// Loop over j writing A[i,j] where dimension 0 is swept inside (by a
	// non-outer var) cannot follow ownership: write with offset≠0.
	acc := []isa.ArrayAccess{access("A", true, "i", 1, "j", 0)}
	c, ok := ChooseRF("i", acc, map[string]bool{})
	if !ok || c.Kind != isa.RFUniform {
		t.Fatalf("ChooseRF(i) with offset-1 write = %+v ok=%v, want uniform", c, ok)
	}
}

func TestChooseRFNoWrites(t *testing.T) {
	acc := []isa.ArrayAccess{access("A", false, "i", 0)}
	if _, ok := ChooseRF("i", acc, map[string]bool{}); ok {
		t.Fatal("loop with no writes should not be distributed")
	}
}

func TestChooseRFPrefersRow(t *testing.T) {
	acc := []isa.ArrayAccess{
		access("B", true, "x", 1, "i", 0), // would be uniform
		access("A", true, "i", 0, "j", 0), // row
	}
	c, ok := ChooseRF("i", acc, map[string]bool{})
	if !ok || c.Kind != isa.RFRow || c.Array != "A" {
		t.Fatalf("ChooseRF = %+v ok=%v, want row on A preferred", c, ok)
	}
}

func TestChooseRF1D(t *testing.T) {
	acc := []isa.ArrayAccess{access("V", true, "i", 0)}
	c, ok := ChooseRF("i", acc, map[string]bool{})
	if !ok || c.Kind != isa.RFRow || c.Array != "V" {
		t.Fatalf("ChooseRF 1-D = %+v ok=%v, want row filter (element ranges)", c, ok)
	}
}
