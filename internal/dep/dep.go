// Package dep implements the dependence analysis that drives the PODS
// partitioner (§4.2.4): detecting loop-carried dependencies (LCDs) and
// choosing a Range-Filter form for a distributable loop level.
//
// As the paper notes, declarative semantics make this analysis simple — the
// only dependence is flow dependence and there is no aliasing — and a wrong
// answer only costs performance, never correctness, because I-structures
// still synchronize every read with its write. The analysis is therefore
// deliberately conservative: affine subscripts of the form var±const are
// understood; anything else is assumed carried.
package dep

import (
	"repro/internal/isa"
)

// HasLCD reports whether loop level v (the loop variable's name) carries a
// dependence, given the array accesses of the loop's whole body subtree and
// whether the level has loop-carried scalars (`next` variables — those are
// LCDs by definition).
func HasLCD(v string, accesses []isa.ArrayAccess, hasCarriedScalars bool) bool {
	if hasCarriedScalars {
		return true
	}
	for _, w := range accesses {
		if !w.IsWrite {
			continue
		}
		for _, r := range accesses {
			if r.IsWrite || r.Array != w.Array {
				continue
			}
			if flowDependsAt(v, w, r) {
				return true
			}
		}
	}
	return false
}

// flowDependsAt reports whether read r may observe a value written by w in
// a *different* iteration of loop v.
func flowDependsAt(v string, w, r isa.ArrayAccess) bool {
	usesV := false
	for d := range w.Dims {
		if w.Dims[d] == isa.SubAffine && w.Vars[d] == v {
			usesV = true
			if d >= len(r.Dims) {
				return true // shape mismatch: be conservative
			}
			if r.Dims[d] != isa.SubAffine || r.Vars[d] != v {
				// The read's subscript in this dimension is not v+c: it may
				// name any iteration's element.
				return true
			}
			if r.Offsets[d] != w.Offsets[d] {
				// Classic carried flow dependence, e.g. write A[i], read A[i-1].
				return true
			}
		}
	}
	if !usesV {
		// The write does not vary with v: every iteration targets the same
		// element(s); any read of the array is potentially carried.
		return true
	}
	return false
}

// RFChoice describes the Range Filter to install for a distributed loop.
type RFChoice struct {
	Kind  isa.RFKind
	Array string // array whose header drives the filter (RFRow/RFCol)
	Dim   int    // array dimension indexed by the loop variable
	Outer string // RFCol: the outer loop variable fixing dimension 0
}

// ChooseRF selects a Range-Filter form for loop level v from the write
// accesses of its body subtree:
//
//   - the loop variable indexes dimension 0 of a written array with offset
//     0 → row filter (first-element ownership rule, §4.2.3);
//   - it indexes dimension 1 while dimension 0 is fixed by an *enclosing*
//     loop variable (a member of outerVars) → in-row column filter
//     (Figure 5);
//   - it indexes a written array some other way → uniform block split of
//     the index range (ownership cannot be followed);
//   - the subtree writes nothing → no distribution (ok=false).
func ChooseRF(v string, accesses []isa.ArrayAccess, outerVars map[string]bool) (RFChoice, bool) {
	var best RFChoice
	rank := 0 // 0 none, 1 uniform, 2 col, 3 row
	consider := func(c RFChoice, r int) {
		if r > rank {
			best, rank = c, r
		}
	}
	anyWrite := false
	for _, w := range accesses {
		if !w.IsWrite {
			continue
		}
		anyWrite = true
		for d := range w.Dims {
			if w.Dims[d] != isa.SubAffine || w.Vars[d] != v || w.Offsets[d] != 0 {
				continue
			}
			switch d {
			case 0:
				consider(RFChoice{Kind: isa.RFRow, Array: w.Array, Dim: 0}, 3)
			case 1:
				if w.Dims[0] == isa.SubAffine && w.Offsets[0] == 0 && w.Vars[0] != v && outerVars[w.Vars[0]] {
					consider(RFChoice{Kind: isa.RFCol, Array: w.Array, Dim: 1, Outer: w.Vars[0]}, 2)
				} else {
					consider(RFChoice{Kind: isa.RFUniform}, 1)
				}
			}
		}
	}
	if rank == 0 && anyWrite {
		// Writes exist but none track v directly: split iterations evenly.
		return RFChoice{Kind: isa.RFUniform}, true
	}
	return best, rank > 0
}
