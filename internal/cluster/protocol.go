// Package cluster is a message-passing distributed-memory runtime for
// translated PODS programs: N PE workers, each owning its own shard of
// I-structure memory and its own run queue, communicate exclusively through
// a typed message protocol — token delivery, SPAWND broadcast, remote
// I-structure read with deferred-read queueing, page request/ship with
// invalidation-free single-assignment caching, and distributed termination
// detection — over a pluggable Transport. Two transports exist: an
// in-process channel transport (one goroutine + mailbox per PE, zero shared
// state) and a TCP transport (length-prefixed frames over net.Conn, so PEs
// can run as separate OS processes; see cmd/podsd).
//
// Unlike internal/podsrt, which models a shared-memory multiprocessor with
// a single mutex-protected I-structure store, this runtime is faithful to
// the paper's iPSC/2 setting: no worker ever touches another worker's
// memory, and every remote array access costs a real message round-trip.
package cluster

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/isa"
)

// MsgKind discriminates protocol messages.
type MsgKind uint8

// Protocol message kinds. Data-plane kinds (spawn, token, alloc, readReq,
// page, write) are counted by the termination detector; control-plane kinds
// are not.
const (
	// KInit configures a TCP worker: its PE index, the cluster geometry,
	// the peer address list, and the serialized program. Channel-transport
	// workers are configured in-process and never see it.
	KInit MsgKind = iota + 1

	// KSpawn instantiates template Tmpl with Args on the receiving PE
	// (the remote half of the L / distributing-LD operators).
	KSpawn

	// KToken delivers Val to slot Slot of SP instance SP. SP 0 is the
	// driver environment: such tokens become the program result.
	KToken

	// KAlloc is the distributing-allocate broadcast (§4.1): every PE (and
	// the driver) installs the array header described by Arr/Name/Dims/
	// Origin/Dist.
	KAlloc

	// KReadReq asks the owning PE for element Off of array Arr on behalf
	// of SP/Slot on PE ReqPE. If the element is present the owner ships
	// the whole page (KPage); if absent it queues the request and later
	// answers with a KToken when the write lands (§5.1 Array Manager).
	KReadReq

	// KPage ships a snapshot of page Page of array Arr (Vals/Set), plus
	// the originally requested element Off for SP/Slot delivery. Single
	// assignment makes the cache invalidation-free: present entries are
	// final, absent entries may only be filled by a later refetch.
	KPage

	// KWrite stores Val at element Off of array Arr on the owning PE.
	KWrite

	// KFail reports a fatal worker error (Name holds the message).
	KFail

	// KProbe is a termination-detection probe for round Round.
	KProbe

	// KAck answers a probe: cumulative worker-to-worker Sent/Recv message
	// counts, the Live SP count, and shard statistics.
	KAck

	// KDumpReq asks a worker for its owned segment of array Arr.
	KDumpReq

	// KDump returns a segment: values and presence bits starting at linear
	// offset Off.
	KDump

	// KStop shuts a worker down.
	KStop

	// KStealReq asks a peer for not-yet-started SP instances. Sent by an
	// idle worker (empty ready queue) to a victim chosen round-robin with
	// backoff. Hot carries the thief's hot-array summary — the arrays with
	// pages resident in its cache — so the victim can prefer granting SPs
	// whose operand arrays the thief already holds.
	KStealReq

	// KStealGrant answers a steal request with a batch of stolen SPs
	// (Batch): up to half of the victim's stealable backlog in one
	// message, locality-preferred (SPs whose operand arrays appear in the
	// thief's Hot summary first, oldest first within equal locality). Each
	// item ships the SP's home ID, template, operand frame, and cost tag;
	// the victim leaves one forwarding stub per item behind so tokens
	// addressed to the home IDs are relayed to the thief.
	KStealGrant

	// KStealNone answers a steal request when the victim has nothing to
	// give (unloaded, failed, or only in-flight SPs); the thief's backoff
	// grows.
	KStealNone

	// KCostReport flushes a worker's per-iteration instruction costs for
	// one (Range-Filtered loop, sweep) pair to the driver: Tmpl names the
	// loop template, Sweep the fan-out the costs belong to, and Iters/Costs
	// are parallel slices of iteration indices and instruction counts
	// accumulated since the worker's previous flush. Sent alongside each
	// probe ack, so the reports ride the termination-detection cadence and
	// stay off the four-counter sums (driver traffic is control-plane).
	KCostReport

	// KRebound installs new adaptive index bounds for loop template Tmpl on
	// every worker: Cuts[p] is the last iteration assigned to PE p (the
	// final PE's upper bound is implied +inf). Workers apply the cuts to
	// future SPAWND fan-outs of that loop by stamping explicit per-PE
	// bounds onto the spawn messages, so every copy of one sweep sees one
	// consistent partition no matter when the rebound arrived.
	KRebound

	// KSpawnLog records one SPAWND fan-out with the driver (Tmpl, Args,
	// Sweep, and the Cuts that stamped it). Sent by the spawner before the
	// fan-out itself when recovery is enabled, so the driver can replay a
	// dead PE's root assignments against a replacement worker. Driver
	// control-plane: invisible to the four-counter sums.
	KSpawnLog

	// KRecover announces a completed recovery to the surviving workers:
	// Epoch is the new counting epoch, Incs the full per-PE incarnation
	// vector (a PE whose incarnation grew was respawned), and Peers the
	// updated worker address list (TCP — the dead PE's slot now names its
	// spare). Survivors zero their termination counters, fence the dead
	// incarnations, repoint the transport, and replay their share of the
	// lost state: logged remote writes, outstanding remote reads, and
	// steal grants made to the dead incarnation.
	KRecover

	// KDown reports a dead worker to the driver: PE names it, Inc the
	// incarnation that died. It is synthesized locally — by the channel
	// transport's fault injector and by the TCP driver's connection pumps —
	// and never crosses a wire, so a worker death is detected at
	// connection-loss speed instead of waiting out a probe-round deadline.
	KDown

	// KStealDone tells the grantor of a stolen SP that it ran to completion
	// on the thief (SP names the home ID). Each hop of a steal chain drops
	// its forwarding stub and grant record and relays the notice toward the
	// home PE, so a later recovery does not re-instantiate work that
	// already finished. Sent only when recovery is enabled; control-plane.
	KStealDone

	// KFlush is an epoch flush marker: a worker that adopts a new counting
	// epoch sends one to every peer (after repointing at the replacement
	// addresses). Per-pair FIFO puts the marker behind every frame the
	// sender emitted in older epochs, so once a worker holds markers from
	// all peers, no pre-epoch frame — invisible to the new epoch's
	// four-counter sums — can still be in flight toward it; the detector
	// requires exactly that (the ack's Flushed bit) before it will declare
	// termination. Control-plane.
	KFlush

	// KTraceReq asks a worker to flush its trace ring to the driver. Sent
	// after termination (the gather phase) or when a stalled probe round
	// needs diagnostics. Control-plane: trace traffic must never move the
	// four-counter sums, or tracing would perturb the runs it observes.
	KTraceReq

	// KTrace answers a trace request: TraceEvs is the worker's event ring
	// flattened oldest-first (five int64 words per event), TraceDrops the
	// count of events the ring's capacity bound discarded. Control-plane.
	KTrace

	// KJobStart creates a per-job worker instance on a fleet host: Job
	// names the job, Prog carries the serialized program, the flat config
	// fields and the init/recover blocks carry the job's scheduling knobs,
	// budgets, counting epoch, and incarnation vector. Fleet hosts route
	// every subsequent frame stamped with this Job to that instance.
	KJobStart

	// KJobEnd tears a job down on a fleet host: the host stops the job's
	// worker instance, frees its shard and logs, and drops any straggler
	// frames still addressed to the job. Control-plane.
	KJobEnd

	// KSubmit asks a job server (podsd -serve) to run a program: Prog is
	// the serialized .pods program, Args the main arguments, Name a label,
	// Seq a client-chosen correlation tag. The per-job budget fields ride
	// the init block.
	KSubmit

	// KResult answers a KSubmit once the job finished: Val is the program
	// result (echoing Seq). The server streams each array as a KDump frame
	// (Name/Dims/Vals/Set) before the KResult; errors arrive as KFail.
	KResult

	// KCkpt starts a log-GC checkpoint on every worker: Seq is the
	// checkpoint ID and Iters the sweep IDs the adapt coordinator has
	// retired since the previous checkpoint. Each worker records its
	// remote-write log cut, then sends KCkptMark to all peers.
	KCkpt

	// KCkptMark is the flush marker workers exchange during a checkpoint:
	// per-pair FIFO puts it behind every remote write its sender logged
	// before its cut, so a worker holding marks from all peers knows its
	// owned segments already contain every pre-cut write. Control-plane.
	KCkptMark

	// KCkptAck tells the driver one worker finished its checkpoint dump
	// (owned segments shipped as KDump frames). Control-plane.
	KCkptAck

	// KCkptOK completes a checkpoint: every worker dumped, so workers drop
	// their pre-cut write-log prefixes and the fan-out log entries of the
	// sweeps named in the opening KCkpt. Control-plane.
	KCkptOK

	// KRestore pushes a checkpointed owned segment back to a respawned
	// worker (Arr/Off/Vals/Set, same shape as KDump): values a GC'd log
	// can no longer replay are reinstalled as idempotent owner writes,
	// releasing any deferred readers queued by re-executed SPs.
	KRestore
)

func (k MsgKind) String() string {
	switch k {
	case KInit:
		return "init"
	case KSpawn:
		return "spawn"
	case KToken:
		return "token"
	case KAlloc:
		return "alloc"
	case KReadReq:
		return "readReq"
	case KPage:
		return "page"
	case KWrite:
		return "write"
	case KFail:
		return "fail"
	case KProbe:
		return "probe"
	case KAck:
		return "ack"
	case KDumpReq:
		return "dumpReq"
	case KDump:
		return "dump"
	case KStop:
		return "stop"
	case KStealReq:
		return "stealReq"
	case KStealGrant:
		return "stealGrant"
	case KStealNone:
		return "stealNone"
	case KCostReport:
		return "costReport"
	case KRebound:
		return "rebound"
	case KSpawnLog:
		return "spawnLog"
	case KRecover:
		return "recover"
	case KDown:
		return "down"
	case KStealDone:
		return "stealDone"
	case KFlush:
		return "flush"
	case KTraceReq:
		return "traceReq"
	case KTrace:
		return "trace"
	case KJobStart:
		return "jobStart"
	case KJobEnd:
		return "jobEnd"
	case KSubmit:
		return "submit"
	case KResult:
		return "result"
	case KCkpt:
		return "ckpt"
	case KCkptMark:
		return "ckptMark"
	case KCkptAck:
		return "ckptAck"
	case KCkptOK:
		return "ckptOK"
	case KRestore:
		return "restore"
	default:
		return fmt.Sprintf("msg(%d)", uint8(k))
	}
}

// Msg is one protocol message. It is a flat union: each kind uses the
// subset of fields its documentation names. A Msg (and every slice it
// references) is owned by the receiver once sent and must not be mutated by
// the sender afterwards — the channel transport passes pointers.
type Msg struct {
	Kind MsgKind
	From int32 // sending endpoint: worker PE, or N (the driver)

	// Job names the job a frame belongs to on a multi-program fleet
	// (stamped by the per-job endpoint wrappers; 0 is fleet-level
	// control). Seq is a multi-purpose sequence number: the victim-minted
	// per-thief grant sequence on KStealGrant (so a re-delivered completed
	// grant is detected and dropped), the checkpoint ID on KCkpt*, and the
	// client correlation tag on KSubmit/KResult.
	Job int32
	Seq int64

	// SP routing (spawn, token, readReq, page).
	SP   int64
	Slot int32
	Val  isa.Value
	Tmpl int32
	Args []isa.Value

	// Array operations (alloc, readReq, page, write, dump).
	Arr    int64
	Off    int32
	Page   int32
	Vals   []isa.Value
	Set    []bool
	Name   string // alloc array name; fail error text
	Dims   []int32
	Origin int32
	Dist   bool
	ReqPE  int32

	// Failure recovery (every kind). Epoch is the sender's counting epoch
	// (bumped by one per recovery event); Inc is the sender's incarnation,
	// checked against the receiver's incarnation vector so frames from a
	// dead PE's previous life are dropped at the boundary.
	Epoch int32
	Inc   int32

	// Termination detection (probe, ack).
	Round      int32
	Sent, Recv int64
	Live       int32
	Deferred   int64 // shard deferred-read count (ack)
	Hits       int64 // page-cache hits (ack)
	Misses     int64 // page-cache misses (ack)
	Steals     int64 // SPs stolen and installed by this worker (ack)
	Forwards   int64 // tokens relayed through forwarding stubs (ack)
	Instrs     int64 // instructions executed by this worker (ack)
	Evicts     int64 // cached pages evicted by the cache bound (ack)
	Refetches  int64 // previously evicted pages fetched again (ack)
	Replayed   int64 // SPs re-sent or re-instantiated for replacements (ack)
	Flushed    bool  // epoch flush markers held from every peer (ack)
	QDepth     int64 // ready-queue depth at the probe (ack)

	// Page-heat counters (ack): prefetches issued, prefetched pages that
	// served a demand read, and the shard's current (possibly adapted)
	// cache cap.
	Prefetches   int64
	PrefetchHits int64
	CacheCapNow  int64

	// Adaptive repartitioning (spawn, costReport, rebound). A migrating
	// SP's cost tag travels per StealItem in the grant batch.
	Sweep int64   // fan-out identity of a distributed spawn (spawn, costReport)
	RngOn bool    // spawn carries explicit adaptive bounds (spawn)
	RngLo int64   // adaptive lower index bound for the receiving PE (spawn)
	RngHi int64   // adaptive upper index bound for the receiving PE (spawn)
	Iters []int64 // iteration indices of a cost flush (costReport)
	Costs []int64 // instruction counts parallel to Iters (costReport)
	Cuts  []int64 // per-PE last-iteration cut points (rebound)

	// Work stealing (stealReq, stealGrant).
	Hot      []int64     // thief's hot-array summary (stealReq, legacy mode)
	HotPages []int64     // thief's hot-page summary as (array, page) pairs (stealReq, heat mode)
	Batch    []StealItem // granted SP instances, locality-preferred order (stealGrant)

	// Worker configuration (init) and recovery announcements (recover).
	// Incs is the full per-PE incarnation vector; Recover enables the
	// worker-side recovery machinery (write logging, grant logging,
	// idempotent rewrites).
	PE            int32
	NumPEs        int32
	PageElems     int32
	DistThreshold int32
	CachePages    int32
	Steal         bool
	Adapt         bool
	Recover       bool
	Incs          []int32
	Peers         []string
	Prog          []byte

	// Observability (init, trace). The init block carries the tracing
	// configuration to remote workers; the trace block carries a flushed
	// event ring back (trace.Recorder.Flatten layout).
	Trace       bool
	TraceCap    int32
	TraceSample int32
	TraceEvs    []int64
	TraceDrops  int64

	// Per-job budgets (init block: jobStart, submit). Zero = unlimited.
	// A worker that exceeds its instruction budget, or allocates past its
	// element budget, fails its job — only that job.
	MaxInstrs int64
	MaxElems  int64

	// Heat (init block) enables the unified page-heat machinery on the
	// receiving worker: page-granular steal summaries, streaming
	// prefetch, the adaptive cache cap, and rebind migration. A versioned
	// knob: both sides of a job agree on the KStealReq.Hot/HotPages
	// semantics because the same KJobStart/KSubmit frame that starts the
	// job carries it.
	Heat bool
}

// StealItem is one SP instance migrating inside a KStealGrant batch: its
// home ID, template, operand frame with presence bits, and the cost-
// attribution tag, so a migrated iteration keeps billing the iteration (on
// the loop that spawned it) that caused it.
type StealItem struct {
	SP       int64
	Tmpl     int32
	CostLoop int32 // -1 = untagged
	Sweep    int64
	CostIter int64
	Args     []isa.Value
	Set      []bool
}

// hasAdaptBlock reports whether the kind carries the adaptive-
// repartitioning fields (Sweep … Cuts) on the wire. Gating the block on
// the kind — known to both codec halves before the block is reached —
// keeps the flat encoding symmetric while sparing the high-volume data
// kinds (tokens, writes, pages) ~50 always-zero bytes per frame.
func (k MsgKind) hasAdaptBlock() bool {
	switch k {
	case KSpawn, KCostReport, KRebound, KSpawnLog, KCkpt, KCkptAck, KCkptOK:
		return true
	}
	return false
}

// hasRecoverBlock reports whether the kind carries the recovery
// configuration fields (Recover, Incs) on the wire, gated like the other
// blocks so data frames stay free of them.
func (k MsgKind) hasRecoverBlock() bool {
	switch k {
	case KInit, KRecover, KJobStart:
		return true
	}
	return false
}

// hasStealBlock reports whether the kind carries the work-stealing fields
// (Hot, HotPages, Batch) on the wire, gated the same way as the adapt
// block.
func (k MsgKind) hasStealBlock() bool {
	switch k {
	case KStealReq, KStealGrant:
		return true
	}
	return false
}

// hasStatsBlock reports whether the kind carries the probe-answer counters
// (Sent … QDepth) on the wire. Only the ack does; gating them spares
// every hot data frame (tokens, writes, pages) the 76 always-zero bytes
// the ten counters would cost. Round stays in the flat prefix — probes
// carry it too.
func (k MsgKind) hasStatsBlock() bool { return k == KAck }

// hasInitBlock reports whether the kind carries the observability
// configuration (Trace, TraceCap, TraceSample) and the per-job budgets
// (MaxInstrs, MaxElems): worker bring-up, per-job bring-up, and job
// submission do.
func (k MsgKind) hasInitBlock() bool {
	switch k {
	case KInit, KJobStart, KSubmit:
		return true
	}
	return false
}

// hasTraceBlock reports whether the kind carries a flushed trace ring
// (TraceEvs, TraceDrops), gated like the other blocks.
func (k MsgKind) hasTraceBlock() bool { return k == KTrace }

// isData reports whether the kind is counted by termination detection.
// Of the steal traffic, exactly the grant is data: a KStealGrant in flight
// carries a live SP, so it must keep the four counters unequal (and the
// granting victim holds the SP in its live count until the moment it
// sends). KStealReq/KStealNone are scheduling control-plane like probes —
// counting them would let the idle workers' own polling hold off
// termination detection indefinitely.
func (k MsgKind) isData() bool {
	switch k {
	case KSpawn, KToken, KAlloc, KReadReq, KPage, KWrite, KStealGrant:
		return true
	}
	return false
}

// The wire encoding is a flat, field-ordered binary layout: fixed-width
// little-endian scalars, length-prefixed slices and strings. Every field is
// always encoded — frames stay small because unused slices encode as a
// 4-byte zero length, and the simplicity buys us an obviously symmetric
// encoder/decoder pair. The exceptions are the kind-gated blocks — probe
// statistics (hasStatsBlock), adaptive repartitioning (hasAdaptBlock), and
// work stealing (hasStealBlock): both codec halves branch on the kind they
// have already read, so symmetry is preserved while the high-volume data
// kinds stay free of always-zero bytes.

func appendU32(b []byte, v uint32) []byte  { return binary.LittleEndian.AppendUint32(b, v) }
func appendI32(b []byte, v int32) []byte   { return appendU32(b, uint32(v)) }
func appendI64(b []byte, v int64) []byte   { return binary.LittleEndian.AppendUint64(b, uint64(v)) }
func appendF64(b []byte, v float64) []byte { return appendI64(b, int64(math.Float64bits(v))) }

func appendValue(b []byte, v isa.Value) []byte {
	b = append(b, byte(v.Kind))
	b = appendI64(b, v.I)
	return appendF64(b, v.F)
}

func appendString(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

func appendI64s(b []byte, vs []int64) []byte {
	b = appendU32(b, uint32(len(vs)))
	for _, v := range vs {
		b = appendI64(b, v)
	}
	return b
}

// encodeMsg appends the wire form of m to b.
func encodeMsg(b []byte, m *Msg) []byte {
	b = append(b, byte(m.Kind))
	b = appendI32(b, m.From)
	b = appendI32(b, m.Job)
	b = appendI64(b, m.Seq)
	b = appendI64(b, m.SP)
	b = appendI32(b, m.Slot)
	b = appendValue(b, m.Val)
	b = appendI32(b, m.Tmpl)
	b = appendU32(b, uint32(len(m.Args)))
	for _, v := range m.Args {
		b = appendValue(b, v)
	}
	b = appendI64(b, m.Arr)
	b = appendI32(b, m.Off)
	b = appendI32(b, m.Page)
	b = appendU32(b, uint32(len(m.Vals)))
	for _, v := range m.Vals {
		b = appendValue(b, v)
	}
	b = appendU32(b, uint32(len(m.Set)))
	for _, s := range m.Set {
		if s {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	b = appendString(b, m.Name)
	b = appendU32(b, uint32(len(m.Dims)))
	for _, d := range m.Dims {
		b = appendI32(b, d)
	}
	b = appendI32(b, m.Origin)
	if m.Dist {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = appendI32(b, m.ReqPE)
	b = appendI32(b, m.Epoch)
	b = appendI32(b, m.Inc)
	b = appendI32(b, m.Round)
	if m.Kind.hasStatsBlock() {
		b = appendI64(b, m.Sent)
		b = appendI64(b, m.Recv)
		b = appendI32(b, m.Live)
		b = appendI64(b, m.Deferred)
		b = appendI64(b, m.Hits)
		b = appendI64(b, m.Misses)
		b = appendI64(b, m.Steals)
		b = appendI64(b, m.Forwards)
		b = appendI64(b, m.Instrs)
		b = appendI64(b, m.Evicts)
		b = appendI64(b, m.Refetches)
		b = appendI64(b, m.Replayed)
		if m.Flushed {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		b = appendI64(b, m.QDepth)
		b = appendI64(b, m.Prefetches)
		b = appendI64(b, m.PrefetchHits)
		b = appendI64(b, m.CacheCapNow)
	}
	if m.Kind.hasAdaptBlock() {
		b = appendI64(b, m.Sweep)
		if m.RngOn {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		b = appendI64(b, m.RngLo)
		b = appendI64(b, m.RngHi)
		b = appendI64s(b, m.Iters)
		b = appendI64s(b, m.Costs)
		b = appendI64s(b, m.Cuts)
	}
	if m.Kind.hasStealBlock() {
		b = appendI64s(b, m.Hot)
		b = appendI64s(b, m.HotPages)
		b = appendU32(b, uint32(len(m.Batch)))
		for i := range m.Batch {
			it := &m.Batch[i]
			b = appendI64(b, it.SP)
			b = appendI32(b, it.Tmpl)
			b = appendI32(b, it.CostLoop)
			b = appendI64(b, it.Sweep)
			b = appendI64(b, it.CostIter)
			b = appendU32(b, uint32(len(it.Args)))
			for _, v := range it.Args {
				b = appendValue(b, v)
			}
			b = appendU32(b, uint32(len(it.Set)))
			for _, s := range it.Set {
				if s {
					b = append(b, 1)
				} else {
					b = append(b, 0)
				}
			}
		}
	}
	b = appendI32(b, m.PE)
	b = appendI32(b, m.NumPEs)
	b = appendI32(b, m.PageElems)
	b = appendI32(b, m.DistThreshold)
	b = appendI32(b, m.CachePages)
	if m.Steal {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	if m.Adapt {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	if m.Kind.hasRecoverBlock() {
		if m.Recover {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		b = appendU32(b, uint32(len(m.Incs)))
		for _, v := range m.Incs {
			b = appendI32(b, v)
		}
	}
	if m.Kind.hasInitBlock() {
		if m.Trace {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		b = appendI32(b, m.TraceCap)
		b = appendI32(b, m.TraceSample)
		b = appendI64(b, m.MaxInstrs)
		b = appendI64(b, m.MaxElems)
		if m.Heat {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	if m.Kind.hasTraceBlock() {
		b = appendI64s(b, m.TraceEvs)
		b = appendI64(b, m.TraceDrops)
	}
	b = appendU32(b, uint32(len(m.Peers)))
	for _, p := range m.Peers {
		b = appendString(b, p)
	}
	b = appendU32(b, uint32(len(m.Prog)))
	b = append(b, m.Prog...)
	return b
}

// reader decodes the flat layout with sticky error handling.
type reader struct {
	b   []byte
	err error
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.b) < n {
		r.err = fmt.Errorf("cluster: truncated frame (want %d bytes, have %d)", n, len(r.b))
		return nil
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}

func (r *reader) u8() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) i32() int32 { return int32(r.u32()) }

func (r *reader) i64() int64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(b))
}

func (r *reader) f64() float64 { return math.Float64frombits(uint64(r.i64())) }

func (r *reader) value() isa.Value {
	k := isa.Kind(r.u8())
	i := r.i64()
	f := r.f64()
	return isa.Value{Kind: k, I: i, F: f}
}

func (r *reader) str() string {
	n := r.u32()
	b := r.take(int(n))
	return string(b)
}

func (r *reader) i64s() []int64 {
	n := r.sliceLen(8)
	if n == 0 {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = r.i64()
	}
	return out
}

// sliceLen validates a slice-length prefix against the remaining bytes so a
// corrupt frame cannot force a huge allocation.
func (r *reader) sliceLen(elemSize int) int {
	n := int(r.u32())
	if r.err == nil && n*elemSize > len(r.b) {
		r.err = fmt.Errorf("cluster: frame slice length %d exceeds payload", n)
		return 0
	}
	return n
}

// decodeMsg parses one wire-format message.
func decodeMsg(b []byte) (*Msg, error) {
	r := &reader{b: b}
	m := &Msg{}
	m.Kind = MsgKind(r.u8())
	m.From = r.i32()
	m.Job = r.i32()
	m.Seq = r.i64()
	m.SP = r.i64()
	m.Slot = r.i32()
	m.Val = r.value()
	m.Tmpl = r.i32()
	if n := r.sliceLen(17); n > 0 {
		m.Args = make([]isa.Value, n)
		for i := range m.Args {
			m.Args[i] = r.value()
		}
	}
	m.Arr = r.i64()
	m.Off = r.i32()
	m.Page = r.i32()
	if n := r.sliceLen(17); n > 0 {
		m.Vals = make([]isa.Value, n)
		for i := range m.Vals {
			m.Vals[i] = r.value()
		}
	}
	if n := r.sliceLen(1); n > 0 {
		m.Set = make([]bool, n)
		for i := range m.Set {
			m.Set[i] = r.u8() != 0
		}
	}
	m.Name = r.str()
	if n := r.sliceLen(4); n > 0 {
		m.Dims = make([]int32, n)
		for i := range m.Dims {
			m.Dims[i] = r.i32()
		}
	}
	m.Origin = r.i32()
	m.Dist = r.u8() != 0
	m.ReqPE = r.i32()
	m.Epoch = r.i32()
	m.Inc = r.i32()
	m.Round = r.i32()
	if m.Kind.hasStatsBlock() {
		m.Sent = r.i64()
		m.Recv = r.i64()
		m.Live = r.i32()
		m.Deferred = r.i64()
		m.Hits = r.i64()
		m.Misses = r.i64()
		m.Steals = r.i64()
		m.Forwards = r.i64()
		m.Instrs = r.i64()
		m.Evicts = r.i64()
		m.Refetches = r.i64()
		m.Replayed = r.i64()
		m.Flushed = r.u8() != 0
		m.QDepth = r.i64()
		m.Prefetches = r.i64()
		m.PrefetchHits = r.i64()
		m.CacheCapNow = r.i64()
	}
	if m.Kind.hasAdaptBlock() {
		m.Sweep = r.i64()
		m.RngOn = r.u8() != 0
		m.RngLo = r.i64()
		m.RngHi = r.i64()
		m.Iters = r.i64s()
		m.Costs = r.i64s()
		m.Cuts = r.i64s()
	}
	if m.Kind.hasStealBlock() {
		m.Hot = r.i64s()
		m.HotPages = r.i64s()
		// Minimum wire size of one item: the five fixed scalars plus two
		// empty slice-length prefixes.
		if n := r.sliceLen(40); n > 0 {
			m.Batch = make([]StealItem, n)
			for i := range m.Batch {
				it := &m.Batch[i]
				it.SP = r.i64()
				it.Tmpl = r.i32()
				it.CostLoop = r.i32()
				it.Sweep = r.i64()
				it.CostIter = r.i64()
				if na := r.sliceLen(17); na > 0 {
					it.Args = make([]isa.Value, na)
					for j := range it.Args {
						it.Args[j] = r.value()
					}
				}
				if ns := r.sliceLen(1); ns > 0 {
					it.Set = make([]bool, ns)
					for j := range it.Set {
						it.Set[j] = r.u8() != 0
					}
				}
			}
		}
	}
	m.PE = r.i32()
	m.NumPEs = r.i32()
	m.PageElems = r.i32()
	m.DistThreshold = r.i32()
	m.CachePages = r.i32()
	m.Steal = r.u8() != 0
	m.Adapt = r.u8() != 0
	if m.Kind.hasRecoverBlock() {
		m.Recover = r.u8() != 0
		if n := r.sliceLen(4); n > 0 {
			m.Incs = make([]int32, n)
			for i := range m.Incs {
				m.Incs[i] = r.i32()
			}
		}
	}
	if m.Kind.hasInitBlock() {
		m.Trace = r.u8() != 0
		m.TraceCap = r.i32()
		m.TraceSample = r.i32()
		m.MaxInstrs = r.i64()
		m.MaxElems = r.i64()
		m.Heat = r.u8() != 0
	}
	if m.Kind.hasTraceBlock() {
		m.TraceEvs = r.i64s()
		m.TraceDrops = r.i64()
	}
	if n := r.sliceLen(4); n > 0 {
		m.Peers = make([]string, n)
		for i := range m.Peers {
			m.Peers[i] = r.str()
		}
	}
	if n := r.sliceLen(1); n > 0 {
		m.Prog = append([]byte(nil), r.take(n)...)
	}
	if r.err != nil {
		return nil, r.err
	}
	return m, nil
}

// ID packing: SP instances and arrays are identified by 64-bit IDs
// allocated without coordination. The layout, high to low:
//
//	bits 48..62  job namespace (low 15 bits of the job ID; 0 = single-job)
//	bits 40..47  owning PE index + 1 (the driver environment keeps ID 0)
//	bits 32..39  minting worker's incarnation
//	bits  0..31  per-PE sequence number
//
// The incarnation byte makes a replacement worker's IDs distinguishable
// from its dead predecessor's: a token that arrives at a PE for a local ID
// minted by an earlier incarnation is provably stale and is dropped, not
// failed. The job bits give every concurrent job on a shared fleet its own
// ID namespace, so two jobs' SP and array IDs can never collide in any
// shared map even though frames are already routed per job.

const (
	jobShift = 48
	peShift  = 40
	incShift = 32
	jobMask  = 0x7fff
)

func packID(pe int, seq int64) int64 { return int64(pe+1)<<peShift | seq }

// packIncID mints an ID under a specific incarnation.
func packIncID(pe int, inc int32, seq int64) int64 {
	return packID(pe, int64(inc)<<incShift|seq)
}

// packJobID mints an ID under a specific job namespace and incarnation.
func packJobID(job int32, pe int, inc int32, seq int64) int64 {
	return (int64(job)&jobMask)<<jobShift | packIncID(pe, inc, seq)
}

// peOf recovers the owning PE from a packed ID; ID 0 (the driver
// environment) returns -1. The mask strips the job namespace bits.
func peOf(id int64) int { return int((id>>peShift)&0xff) - 1 }

// incOf recovers the minting incarnation from a packed ID.
func incOf(id int64) int32 { return int32(id>>incShift) & 0xff }

// jobOf recovers the job namespace bits from a packed ID.
func jobOf(id int64) int32 { return int32(id>>jobShift) & jobMask }
