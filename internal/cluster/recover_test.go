package cluster

import (
	"context"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/rtcfg"
	"repro/internal/sim"
)

// Tests for worker-failure recovery: the fault injector killing a PE
// mid-run, the incarnation fence in isolation, and TCP re-homing onto a
// spare worker.

// maskedRef is one reference array: values plus written-mask (kernels like
// triangular legitimately leave elements unwritten).
type maskedRef struct {
	vals []float64
	mask []bool
}

// simMaskedArrays runs the simulator as the reference backend, keeping the
// presence masks so partially-written arrays compare exactly.
func simMaskedArrays(t *testing.T, prog *isa.Program, pes int, names []string, args ...isa.Value) map[string]maskedRef {
	t.Helper()
	m, err := sim.New(prog, sim.Config{NumPEs: pes})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(args...); err != nil {
		t.Fatal(err)
	}
	out := make(map[string]maskedRef)
	for _, name := range names {
		vals, mask, _, err := m.ReadArray(name)
		if err != nil {
			t.Fatal(err)
		}
		out[name] = maskedRef{vals: vals, mask: mask}
	}
	return out
}

// checkMasked diffs a cluster result against the masked reference bit for
// bit — values and presence both.
func checkMasked(t *testing.T, res *Result, want map[string]maskedRef) {
	t.Helper()
	for name, ref := range want {
		vals, mask, _, err := res.ReadArray(name)
		if err != nil {
			t.Fatal(err)
		}
		if len(vals) != len(ref.vals) {
			t.Fatalf("%s: %d elements, want %d", name, len(vals), len(ref.vals))
		}
		for i := range vals {
			if mask[i] != ref.mask[i] {
				t.Fatalf("%s[%d]: written=%v, want %v", name, i, mask[i], ref.mask[i])
			}
			if ref.mask[i] && vals[i] != ref.vals[i] {
				t.Fatalf("%s[%d] = %v, want %v (recovered run diverged)", name, i, vals[i], ref.vals[i])
			}
		}
	}
}

// runKilled executes a kernel with PE killPE fault-injected after
// killAfter worker-to-worker frames and recovery enabled, then checks the
// arrays bit-for-bit against the simulator.
func runKilled(t *testing.T, k kernels.Kernel, n, pes, killPE int, killAfter int64, cfg Config) *Result {
	t.Helper()
	prog := compile(t, k.File(), k.Source)
	want := simMaskedArrays(t, prog, pes, k.Arrays, k.Args(n)...)
	cfg.NumPEs = pes
	cfg.Recover = true
	cfg.KillPE = killPE
	cfg.KillAfter = killAfter
	res, err := Execute(testCtx(t), prog, cfg, k.Args(n)...)
	if err != nil {
		t.Fatalf("killed run (pes=%d kill=%d after=%d): %v", pes, killPE, killAfter, err)
	}
	checkMasked(t, res, want)
	return res
}

func TestRecoverKillMidRun(t *testing.T) {
	k, _ := kernels.ByName("heat")
	for _, pes := range []int{2, 4, 8} {
		res := runKilled(t, k, 10, pes, 1, 4, Config{PageElems: 8})
		if res.Stats.Recoveries < 1 {
			t.Errorf("%d PEs: Recoveries = %d, want >= 1 (kill never fired?)", pes, res.Stats.Recoveries)
		}
		if res.Stats.ReplayedSPs < 1 {
			t.Errorf("%d PEs: ReplayedSPs = %d, want >= 1", pes, res.Stats.ReplayedSPs)
		}
		t.Logf("%d PEs: recoveries=%d replayed=%d msgs=%d",
			pes, res.Stats.Recoveries, res.Stats.ReplayedSPs, res.Stats.MsgsSent)
	}
}

// TestRecoverKillPEZero kills the PE that runs the entry SP: recovery must
// replay the entry spawn itself (plus every fan-out copy assigned to PE 0)
// and still converge to the reference results.
func TestRecoverKillPEZero(t *testing.T) {
	k, _ := kernels.ByName("heat")
	res := runKilled(t, k, 10, 4, 0, 6, Config{PageElems: 8})
	if res.Stats.Recoveries < 1 {
		t.Errorf("Recoveries = %d, want >= 1", res.Stats.Recoveries)
	}
}

// TestRecoverWithDynamicMechanisms kills a PE while stealing, adaptive
// repartitioning, and a page-cache cap are all engaged — recovery has to
// discard or re-mint the dead incarnation's share of each mechanism's
// state.
func TestRecoverWithDynamicMechanisms(t *testing.T) {
	for _, name := range []string{"triangular", "relax"} {
		k, _ := kernels.ByName(name)
		n := 10
		if name == "relax" {
			n = 8
		}
		res := runKilled(t, k, n, 4, 2, 2, Config{
			PageElems: 8, Steal: true, Adapt: true, CachePages: 2,
			ProbeInterval: 20 * time.Microsecond,
		})
		if res.Stats.Recoveries < 1 {
			t.Errorf("%s: Recoveries = %d, want >= 1", name, res.Stats.Recoveries)
		}
	}
}

// TestRecoverDisabledStillFails pins the pre-recovery contract: with
// Config.Recover off, a worker death fails the run with a diagnostic
// instead of hanging or silently succeeding.
func TestRecoverDisabledStillFails(t *testing.T) {
	k, _ := kernels.ByName("heat")
	prog := compile(t, k.File(), k.Source)
	cfg := Config{NumPEs: 4, PageElems: 8, KillPE: 1, KillAfter: 4, RoundTimeout: 2 * time.Second}
	_, err := Execute(testCtx(t), prog, cfg, k.Args(10)...)
	if err == nil {
		t.Fatal("want failure when a worker dies with recovery disabled")
	}
	if !strings.Contains(err.Error(), "died") && !strings.Contains(err.Error(), "stalled") {
		t.Errorf("error %q does not describe the worker death", err)
	}
}

// --- incarnation fencing in isolation ---

// fenceWorker builds a worker wired to a private transport, with recovery
// armed and the given peer-incarnation vector.
func fenceWorker(t *testing.T, incs []int32) (*worker, []Endpoint) {
	t.Helper()
	prog := compile(t, "fence.id", `
func main(n: int) {
	A = array(n);
	A[1] = 1.0;
}`)
	eps := newChanTransport(2, 0)
	w := newWorker(0, 2, rtcfg.Geometry{PEs: 2, PageElems: 8, DistThreshold: 16}, prog, eps[0], workerOpts{steal: true})
	w.enableRecovery(0, 0, incs)
	return w, eps
}

// TestFenceDropsStaleFrames: a frame of any kind from a dead incarnation
// of its sender must be dropped whole — not counted, not executed, not
// failing the run.
func TestFenceDropsStaleFrames(t *testing.T) {
	w, _ := fenceWorker(t, []int32{0, 2})
	stale := []*Msg{
		{Kind: KToken, From: 1, Inc: 1, SP: packIncID(0, 0, 1), Slot: 0, Val: isa.Int(7)},
		{Kind: KWrite, From: 1, Inc: 1, Arr: packIncID(1, 1, 1), Off: 0, Val: isa.Float(3)},
		{Kind: KStealGrant, From: 1, Inc: 1, Batch: []StealItem{{SP: packIncID(1, 1, 1), Tmpl: 0}}},
		{Kind: KSpawn, From: 1, Inc: 1, Tmpl: 99},
	}
	for _, m := range stale {
		w.handle(m)
	}
	if w.failed {
		t.Fatal("stale frames failed the worker")
	}
	if w.recv != 0 {
		t.Fatalf("stale data frames were counted: recv = %d", w.recv)
	}
	if w.staleMsgs != int64(len(stale)) {
		t.Fatalf("staleMsgs = %d, want %d", w.staleMsgs, len(stale))
	}
	if len(w.insts) != 0 {
		t.Fatalf("stale grant installed %d SPs", len(w.insts))
	}

	// The same kinds at the current incarnation are processed (the bogus
	// spawn must now fail the run — proving the fence, not the handler,
	// dropped it above).
	w.handle(&Msg{Kind: KSpawn, From: 1, Inc: 2, Tmpl: 99})
	if !w.failed {
		t.Fatal("current-incarnation frame was not processed")
	}
}

// TestStaleLocalTokenDropped: a token for an ID minted by this PE's dead
// predecessor is a release for re-executed work and is dropped; a token
// for a genuinely unknown current ID still fails an unrecovered worker.
func TestStaleLocalTokenDropped(t *testing.T) {
	w, _ := fenceWorker(t, nil)
	w.inc = 1
	w.recovered = false
	w.deliver(packIncID(0, 0, 5), 0, isa.Int(1))
	if w.failed {
		t.Fatal("stale-incarnation token failed the worker")
	}
	if w.staleMsgs != 1 {
		t.Fatalf("staleMsgs = %d, want 1", w.staleMsgs)
	}
	w.deliver(packIncID(0, 1, 5), 0, isa.Int(1))
	if !w.failed {
		t.Fatal("token for unknown current-incarnation SP did not fail the run")
	}
}

// TestDetectorIgnoresStaleEpochAcks: after a recovery the detector only
// counts acks from the new epoch — an old-epoch ack still in flight can
// neither complete a round nor leak pre-recovery sums into the totals.
func TestDetectorIgnoresStaleEpochAcks(t *testing.T) {
	d := newDetector(2)
	d.reset(1)
	d.begin(1)
	if d.record(0, &Msg{Kind: KAck, Round: 1, Epoch: 0, Sent: 10, Recv: 10, Flushed: true}) {
		t.Fatal("stale-epoch ack completed the round")
	}
	if d.record(0, &Msg{Kind: KAck, Round: 1, Epoch: 1, Sent: 1, Recv: 1, Flushed: true}) {
		t.Fatal("round complete after one PE")
	}
	if !d.record(1, &Msg{Kind: KAck, Round: 1, Epoch: 1, Sent: 1, Recv: 1, Flushed: true}) {
		t.Fatal("round not complete after both PEs answered in the new epoch")
	}
}

// TestDetectorUnflushedBlocksTermination: after an epoch reset, a frame
// sent in the old epoch is counted by neither side, so quiet rounds alone
// prove nothing — the detector must refuse termination until every worker
// reports its epoch flushed (markers from all peers received, which per-
// pair FIFO puts behind every pre-epoch frame).
func TestDetectorUnflushedBlocksTermination(t *testing.T) {
	d := newDetector(2)
	d.reset(1)
	quiet := func(round int32, flushed1 bool) bool {
		d.begin(round)
		d.record(0, &Msg{Kind: KAck, Round: round, Epoch: 1, Flushed: true})
		d.record(1, &Msg{Kind: KAck, Round: round, Epoch: 1, Flushed: flushed1})
		return d.roundDone()
	}
	if quiet(1, false) || quiet(2, false) {
		t.Fatal("terminated with a worker still awaiting flush markers")
	}
	// Marker lands: the next quiet pair terminates.
	if quiet(3, true) {
		t.Fatal("terminated after a single fully-flushed quiet round")
	}
	if !quiet(4, true) {
		t.Fatal("two fully-flushed quiet rounds did not terminate")
	}
}

// --- TCP recovery onto a spare worker ---

// startServeWorker runs one in-process ServeWorker on a loopback listener
// and returns its address and a kill function that severs it mid-run. The
// caller must have registered the WaitGroup's Wait as a cleanup *before*
// the first call, so the LIFO cleanup order cancels every worker first.
func startServeWorker(t *testing.T, wg *sync.WaitGroup) (addr string, kill func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = ServeWorker(ctx, ln)
	}()
	return ln.Addr().String(), cancel
}

// TestRecoverTCPSpare is the TCP half of recovery end to end, in process:
// four ServeWorker PEs on loopback plus one spare; one worker is severed
// mid-run; the driver re-homes its PE onto the spare and the results still
// match the simulator bit for bit.
func TestRecoverTCPSpare(t *testing.T) {
	k, _ := kernels.ByName("relax")
	prog := compile(t, k.File(), k.Source)
	// Long-running arguments: enough gate-serialized sweeps that the kill
	// timer below reliably lands mid-run over loopback TCP.
	args := []isa.Value{isa.Int(12), isa.Int(24)}
	want := simMaskedArrays(t, prog, 4, k.Arrays, args...)

	var wg sync.WaitGroup
	t.Cleanup(wg.Wait)
	cfg := Config{PageElems: 8, Recover: true, ProbeInterval: time.Millisecond}
	var kills []func()
	for i := 0; i < 4; i++ {
		addr, kill := startServeWorker(t, &wg)
		cfg.Workers = append(cfg.Workers, addr)
		kills = append(kills, kill)
	}
	spareAddr, _ := startServeWorker(t, &wg)
	cfg.Spares = []string{spareAddr}

	// Sever worker 2 a moment into the run. The exact instant does not
	// matter for correctness — that is the point — but it must land before
	// the run finishes for the recovery assertions below.
	timer := time.AfterFunc(25*time.Millisecond, kills[2])
	defer timer.Stop()

	res, err := Execute(testCtx(t), prog, cfg, args...)
	if err != nil {
		t.Fatalf("TCP run with spare: %v", err)
	}
	checkMasked(t, res, want)
	if res.Stats.Recoveries < 1 {
		t.Skip("run finished before the kill landed (recoveries=0); results verified anyway")
	}
	t.Logf("tcp spare recovery: recoveries=%d replayed=%d", res.Stats.Recoveries, res.Stats.ReplayedSPs)
}
