package cluster

import (
	"sort"

	"repro/internal/isa"
)

// Worker-side half of driver-coordinated replay-log checkpoints (the GC
// protocol that keeps recovery's write/fan-out logs bounded on long runs).
//
// The driver proposes a checkpoint when the adapt coordinator retires
// sweeps — fan-outs whose cost reports are complete, so their iterations
// are believed finished. The protocol then proves the store covers them:
//
//  1. KCkpt(seq, sweeps): every worker records a cut in each per-peer
//     write log and sends KCkptMark(seq) to every peer. Per-pair FIFO puts
//     the mark *behind* every pre-cut write on that stream.
//  2. On holding marks from all n-1 peers, a worker's owned segments
//     contain every pre-cut remote write plus all its local ones; it dumps
//     them to the driver (KDump stamped with the checkpoint seq) and acks
//     with the proposed sweeps that still have live instances here — its
//     veto.
//  3. The driver assembles the dumps into its snapshot, subtracts the
//     vetoes, and broadcasts KCkptOK(seq, effective): each worker drops
//     its pre-cut write-log prefixes and the effective sweeps' fan-out
//     records. The driver likewise drops those sweeps from its own log;
//     vetoed sweeps return to the pending pool for the next checkpoint.
//
// After a later failure, survivors replay only post-cut suffixes and
// unretired fan-outs; the replacement's owned segments are backfilled from
// the driver snapshot (KRestore). A recovery aborts any open checkpoint on
// both sides — checkpoint IDs are never reused, so stale marks and acks
// are inert.

// startCkpt begins checkpoint m.Seq: record write-log cuts, adopt the
// proposed sweep set, announce the mark to every peer, and absorb any
// peer marks that overtook this KCkpt.
func (w *worker) startCkpt(m *Msg) {
	if !w.recover || m.Seq == 0 {
		return
	}
	w.ckptID = m.Seq
	w.ckptDumped = false
	w.ckptCuts = make(map[int]int, len(w.writeLog))
	for pe, log := range w.writeLog {
		w.ckptCuts[pe] = len(log)
	}
	w.ckptSweeps = append([]int64(nil), m.Iters...)
	// Prune mark entries of aborted/finished checkpoints (IDs only grow).
	for seq := range w.ckptMark {
		if seq < m.Seq {
			delete(w.ckptMark, seq)
		}
	}
	for pe := 0; pe < w.n; pe++ {
		if pe != w.pe {
			w.send(pe, &Msg{Kind: KCkptMark, Seq: m.Seq})
		}
	}
	w.maybeCkptDump()
}

// handleCkptMark records one peer's cut marker. Marks for a checkpoint
// this worker has not started yet are held in the seq-keyed table and
// counted once the KCkpt arrives.
func (w *worker) handleCkptMark(m *Msg) {
	f := int(m.From)
	if !w.recover || m.Seq == 0 || f < 0 || f >= w.n || f == w.pe {
		return
	}
	if w.ckptMark == nil {
		w.ckptMark = make(map[int64]map[int]bool)
	}
	if w.ckptMark[m.Seq] == nil {
		w.ckptMark[m.Seq] = make(map[int]bool)
	}
	w.ckptMark[m.Seq][f] = true
	w.maybeCkptDump()
}

// maybeCkptDump fires the dump+ack once this worker holds the open
// checkpoint's marks from every peer (immediately for a 1-PE cluster).
func (w *worker) maybeCkptDump() {
	if w.ckptID != 0 && !w.ckptDumped && len(w.ckptMark[w.ckptID]) == w.n-1 {
		w.ckptDumped = true
		w.ckptDump()
	}
}

// ckptDump ships every owned segment to the driver stamped with the
// checkpoint ID (so the driver's result gather cannot mistake it for a
// final dump), then acks with this worker's veto: proposed sweeps that
// still have an instance live here — queued, running, or granted away and
// not yet reported done — whose writes a pre-veto GC could lose.
func (w *worker) ckptDump() {
	seq := w.ckptID
	for _, arr := range w.arrays {
		h := w.shard.Header(arr)
		if h == nil {
			continue
		}
		lo, hi := h.SegmentElems(w.pe)
		for base := lo; base < hi; base += restoreChunk {
			end := min(base+restoreChunk, hi)
			vals := make([]isa.Value, end-base)
			set := make([]bool, end-base)
			any := false
			for off := base; off < end; off++ {
				if v, present := w.shard.Peek(arr, off); present {
					vals[off-base] = v
					set[off-base] = true
					any = true
				}
			}
			if !any {
				continue
			}
			w.send(w.driverID(), &Msg{Kind: KDump, Seq: seq,
				Arr: arr, Off: int32(base), Vals: vals, Set: set})
		}
	}
	proposed := make(map[int64]bool, len(w.ckptSweeps))
	for _, s := range w.ckptSweeps {
		proposed[s] = true
	}
	veto := make(map[int64]bool)
	for _, sp := range w.insts {
		if proposed[sp.costSweep] {
			veto[sp.costSweep] = true
		}
	}
	for _, e := range w.grantLog {
		if proposed[e.item.Sweep] {
			veto[e.item.Sweep] = true
		}
	}
	vetoed := make([]int64, 0, len(veto))
	for s := range veto {
		vetoed = append(vetoed, s)
	}
	sort.Slice(vetoed, func(i, j int) bool { return vetoed[i] < vetoed[j] })
	w.send(w.driverID(), &Msg{Kind: KCkptAck, Seq: seq, Iters: vetoed})
}

// finishCkpt applies the driver's commit: the snapshot covers every
// pre-cut write and every effective sweep, so the write-log prefixes and
// those sweeps' fan-out records are garbage.
func (w *worker) finishCkpt(m *Msg) {
	if m.Seq == 0 || m.Seq != w.ckptID {
		return
	}
	for pe, cut := range w.ckptCuts {
		log := w.writeLog[pe]
		if cut > len(log) {
			cut = len(log)
		}
		if cut == 0 {
			continue
		}
		rest := append([]writeRec(nil), log[cut:]...)
		if len(rest) == 0 {
			delete(w.writeLog, pe)
		} else {
			w.writeLog[pe] = rest
		}
	}
	if len(m.Iters) > 0 {
		done := make(map[int64]bool, len(m.Iters))
		for _, s := range m.Iters {
			if s != 0 {
				done[s] = true
			}
		}
		kept := w.fanoutLog[:0]
		for _, f := range w.fanoutLog {
			if !done[f.sweep] {
				kept = append(kept, f)
			}
		}
		for i := len(kept); i < len(w.fanoutLog); i++ {
			w.fanoutLog[i] = fanoutRec{}
		}
		w.fanoutLog = kept
	}
	delete(w.ckptMark, m.Seq)
	w.ckptID = 0
	w.ckptDumped = false
	w.ckptCuts = nil
	w.ckptSweeps = nil
}
