package cluster

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/rtcfg"
)

// StealFetchStats is one deterministic steal-locality probe measurement.
type StealFetchStats struct {
	Steals       int64 // SP instances migrated
	Misses       int64 // demand page fetches (the post-steal cost under test)
	Hits         int64 // demand reads served from the cache
	Prefetches   int64 // pages requested ahead of the miss (heat arm)
	PrefetchHits int64 // prefetched pages that later served a demand read
}

// StealFetchProbe runs a kernel on hand-pumped workers — the same
// deterministic, adversarially fair round-robin schedule the steal tests
// use — with work stealing enabled, and reports the page-fetch counters at
// quiescence. Free-running schedules resolve most of a steal-heavy
// kernel's reads through the deferred-token path (the read reaches the
// owner before the write does, so no page ever ships) and therefore
// cannot show what a steal-grant policy costs; the pumped schedule
// interleaves every PE fairly, so stolen iterations read already-written
// pages and the post-steal fetch count is exact and reproducible. The
// CACHE experiment uses it to A/B array-granular locality (heat off, the
// steal-grant policy as first shipped) against page-granular ranking plus
// prefetch (heat on) on identical schedules.
func StealFetchProbe(prog *isa.Program, args []isa.Value, pes, cachePages int, heat bool) (StealFetchStats, error) {
	var st StealFetchStats
	geo := rtcfg.Geometry{PEs: pes, PageElems: 8, DistThreshold: 16}
	if err := geo.Fill(pes); err != nil {
		return st, err
	}
	eps := newChanTransport(pes, 0)
	ws := make([]*worker, pes)
	for pe := range ws {
		ws[pe] = newWorker(pe, pes, geo, prog, eps[pe], workerOpts{
			steal: true, cachePages: cachePages, heat: heat,
		})
	}
	driver := eps[pes]
	drainDriver := func() error {
		for {
			m, ok := driver.TryRecv()
			if !ok {
				return nil
			}
			if m.Kind == KFail {
				return fmt.Errorf("cluster: probe worker failed: %s", m.Name)
			}
		}
	}

	if err := driver.Send(0, &Msg{Kind: KSpawn, Tmpl: int32(prog.EntryID), Args: args}); err != nil {
		return st, err
	}
	for rounds := 0; ; rounds++ {
		if rounds > 50_000_000 {
			return st, fmt.Errorf("cluster: probe did not quiesce")
		}
		progress := false
		for i, w := range ws {
			for {
				m, ok := eps[i].TryRecv()
				if !ok {
					break
				}
				w.handle(m)
				progress = true
			}
			if w.readyHead != len(w.ready) {
				w.step()
				progress = true
			} else {
				before := w.stealOutstanding
				w.maybeSteal()
				progress = progress || (w.stealOutstanding && !before)
			}
		}
		if err := drainDriver(); err != nil {
			return st, err
		}
		if !progress {
			break
		}
	}
	for _, w := range ws {
		if len(w.insts) != 0 {
			return st, fmt.Errorf("cluster: probe deadlocked with %d live SPs on pe %d", len(w.insts), w.pe)
		}
		st.Steals += w.steals
		st.Misses += w.shard.CacheMisses
		st.Hits += w.shard.CacheHits
		st.Prefetches += w.heat.prefetches
		st.PrefetchHits += w.heat.prefetchHits
	}
	return st, nil
}
