package cluster

import (
	"testing"

	"repro/internal/kernels"
)

// Tests for the worker-side page-heat machinery: the adaptive-cap
// governor's hysteresis, the page-granular steal-locality win over the
// array-granular policy it replaced, the streaming prefetcher on a real
// sequential-scan kernel, and the PODS_FORCE_PREFETCH escape hatch.

// TestCapGovernorHysteresis pins the governor's movement rules: growth is
// immediate and multiplicative under refetch pressure (capped at the
// ceiling), shrinking needs capQuietRounds consecutive eviction-free
// rounds (clamped at the floor), and rounds that evict without
// refetching hold position — reacting to those is what would oscillate.
func TestCapGovernorHysteresis(t *testing.T) {
	type round struct {
		refetch, evict int64
		wantCap        int
		wantChanged    bool
	}
	cases := []struct {
		name   string
		floor  int
		rounds []round
	}{
		{"grow on refetch pressure", 4, []round{
			{refetch: 1, evict: 3, wantCap: 6, wantChanged: true},
			{refetch: 5, evict: 9, wantCap: 9, wantChanged: true},
		}},
		{"growth saturates at the ceiling", 2, []round{
			{refetch: 1, wantCap: 3, wantChanged: true},
			{refetch: 1, wantCap: 4, wantChanged: true},
			{refetch: 1, wantCap: 6, wantChanged: true},
			{refetch: 1, wantCap: 9, wantChanged: true},
			{refetch: 1, wantCap: 13, wantChanged: true},
			{refetch: 1, wantCap: 16, wantChanged: true},
			{refetch: 1, wantCap: 16, wantChanged: false},
		}},
		{"shrink only after quiet hysteresis", 4, []round{
			{refetch: 1, wantCap: 6, wantChanged: true},
			{wantCap: 6, wantChanged: false}, // quiet 1
			{wantCap: 6, wantChanged: false}, // quiet 2
			{wantCap: 5, wantChanged: true},  // quiet 3: shrink, counter resets
			{wantCap: 5, wantChanged: false},
			{wantCap: 5, wantChanged: false},
			{wantCap: 4, wantChanged: true}, // floor reached
			{wantCap: 4, wantChanged: false},
			{wantCap: 4, wantChanged: false},
			{wantCap: 4, wantChanged: false}, // floor holds
		}},
		{"evictions without refetches hold position", 4, []round{
			{refetch: 1, wantCap: 6, wantChanged: true},
			{evict: 2, wantCap: 6, wantChanged: false},
			{wantCap: 6, wantChanged: false},
			{wantCap: 6, wantChanged: false},
			{evict: 1, wantCap: 6, wantChanged: false}, // quiet run broken
			{wantCap: 6, wantChanged: false},
			{wantCap: 6, wantChanged: false},
			{wantCap: 5, wantChanged: true},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := newCapGovernor(tc.floor)
			if !g.enabled() {
				t.Fatal("governor disabled for a positive floor")
			}
			for i, r := range tc.rounds {
				cap, changed := g.tick(r.refetch, r.evict)
				if cap != r.wantCap || changed != r.wantChanged {
					t.Fatalf("round %d: tick(%d,%d) = (%d,%v), want (%d,%v)",
						i, r.refetch, r.evict, cap, changed, r.wantCap, r.wantChanged)
				}
			}
		})
	}
	// An unbounded cache (cap 0) disables the governor entirely.
	g := newCapGovernor(0)
	if g.enabled() {
		t.Fatal("governor enabled for an unbounded cache")
	}
	if cap, changed := g.tick(100, 100); cap != 0 || changed {
		t.Fatalf("disabled governor moved: (%d,%v)", cap, changed)
	}
}

// TestPageGranularStealReducesPostStealFetches A/Bs the steal-grant
// policies on the deterministic pumped schedule: the heat-off arm ranks
// candidates by hot *arrays* (the policy as first shipped), the heat-on
// arm by hot *pages* plus streaming prefetch. Same kernel, same
// schedule, same steal pressure — the page-granular arm must pay fewer
// demand fetches after its steals.
func TestPageGranularStealReducesPostStealFetches(t *testing.T) {
	k, ok := kernels.ByName("triread")
	if !ok {
		t.Fatal("triread kernel missing")
	}
	prog := compile(t, k.File(), k.Source)
	const n, pes, cap = 26, 8, 8
	off, err := StealFetchProbe(prog, k.Args(n), pes, cap, false)
	if err != nil {
		t.Fatal(err)
	}
	on, err := StealFetchProbe(prog, k.Args(n), pes, cap, true)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("heat off: %+v", off)
	t.Logf("heat on:  %+v", on)
	if off.Steals == 0 || on.Steals == 0 {
		t.Fatalf("vacuous probe: steals off=%d on=%d", off.Steals, on.Steals)
	}
	if off.Prefetches != 0 {
		t.Fatalf("heat-off arm issued %d prefetches", off.Prefetches)
	}
	if on.Prefetches == 0 || on.PrefetchHits == 0 {
		t.Fatalf("heat-on arm never prefetched usefully: %d issued, %d hit", on.Prefetches, on.PrefetchHits)
	}
	if on.Misses >= off.Misses {
		t.Fatalf("page-granular steal paid %d demand fetches, array-granular paid %d — no locality win", on.Misses, off.Misses)
	}
}

// TestStreamingPrefetchOnSequentialScan runs matmul — row-major scans
// over every operand — under a tight page cap and checks that the heat
// arm streams pages ahead of the scan and that some of them serve demand
// reads, while the heat-off arm issues none.
func TestStreamingPrefetchOnSequentialScan(t *testing.T) {
	k, ok := kernels.ByName("matmul")
	if !ok {
		t.Fatal("matmul kernel missing")
	}
	prog := compile(t, k.File(), k.Source)
	// The A/B needs a genuine heat-off control arm even on the CI leg
	// that forces PODS_FORCE_PREFETCH for everything else.
	t.Setenv("PODS_FORCE_PREFETCH", "")
	ctx := testCtx(t)
	const n, pes = 16, 4
	offRes, err := Execute(ctx, prog, Config{NumPEs: pes, CachePages: 2}, k.Args(n)...)
	if err != nil {
		t.Fatal(err)
	}
	onRes, err := Execute(ctx, prog, Config{NumPEs: pes, CachePages: 2, Heat: true}, k.Args(n)...)
	if err != nil {
		t.Fatal(err)
	}
	if got := offRes.Stats.Prefetches; got != 0 {
		t.Fatalf("heat off: %d prefetches issued", got)
	}
	st := onRes.Stats
	t.Logf("heat on: prefetches=%d hits=%d cacheHits=%d cacheMisses=%d capEnd=%d",
		st.Prefetches, st.PrefetchHits, st.CacheHits, st.CacheMisses, st.CacheCapNow)
	if st.Prefetches == 0 {
		t.Fatal("heat on: sequential scans never triggered a prefetch")
	}
	if st.PrefetchHits == 0 {
		t.Fatal("heat on: no prefetched page ever served a demand read")
	}
	if st.CacheCapNow < int64(2*pes) {
		t.Fatalf("summed final cache cap %d below the configured floor %d", st.CacheCapNow, 2*pes)
	}
}

// TestForcePrefetchEnvOverride: PODS_FORCE_PREFETCH turns the heat
// machinery on for runs that left Config.Heat unset, mirroring the other
// CI force knobs; an explicit config is never overridden (Heat has no
// off-override to protect, so the env can only enable).
func TestForcePrefetchEnvOverride(t *testing.T) {
	t.Setenv("PODS_FORCE_PREFETCH", "1")
	cfg := Config{NumPEs: 2}
	if err := cfg.fill(); err != nil {
		t.Fatal(err)
	}
	if !cfg.Heat {
		t.Fatal("Heat not forced on by PODS_FORCE_PREFETCH=1")
	}
	t.Setenv("PODS_FORCE_PREFETCH", "")
	cfg = Config{NumPEs: 2}
	if err := cfg.fill(); err != nil {
		t.Fatal(err)
	}
	if cfg.Heat {
		t.Fatal("Heat on without the env or the config asking for it")
	}
	t.Setenv("PODS_FORCE_PREFETCH", "0")
	cfg = Config{NumPEs: 2}
	if err := cfg.fill(); err != nil {
		t.Fatal(err)
	}
	if cfg.Heat {
		t.Fatal("PODS_FORCE_PREFETCH=0 enabled Heat")
	}
}
