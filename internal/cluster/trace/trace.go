// Package trace is the cluster runtime's observability core: a low-overhead,
// fixed-capacity per-PE event recorder plus the assembled whole-run trace the
// driver gathers after termination. The recorder is built for the worker's
// inner loop — recording is allocation-free, capacity is fixed up front
// (overflow drops the oldest event and counts the drop, it never grows), and
// high-volume SP events can be sampled deterministically — so a trace-on run
// stays within a few percent of a trace-off run and, because recording
// executes no program instructions, produces bit-identical results.
//
// Every event carries two timestamps: the wall clock (for humans and the
// Chrome trace_event export) and the recording PE's executed-instruction
// counter (the runtime's deterministic notion of local time, so traces stay
// comparable across runs and under the deterministic test schedules).
package trace

import "time"

// Kind discriminates recorded events.
type Kind uint8

// Event kinds. Arg0/Arg1 meanings are per kind (documented here; the
// exporters render them).
const (
	// EvSPDispatch: an SP instance started (or resumed) executing.
	// Arg0 = SP id, Arg1 = template id. Subject to sampling.
	EvSPDispatch Kind = iota + 1

	// EvSPComplete: an SP instance ran to HALT. Arg0 = SP id,
	// Arg1 = template id. Recorded iff the instance's dispatches were.
	EvSPComplete

	// EvStealReq: this PE, idle, asked a victim for work. Arg0 = victim PE.
	EvStealReq

	// EvStealGrant: this PE granted a batch of SPs to a thief.
	// Arg0 = thief PE, Arg1 = batch size.
	EvStealGrant

	// EvStealNone: a victim declined this PE's steal request. Arg0 = victim.
	EvStealNone

	// EvStealIn: a granted batch was installed here. Arg0 = grantor PE,
	// Arg1 = batch size.
	EvStealIn

	// EvPageFetch: a remote read missed the page cache and a page request
	// went to the owner. Arg0 = array id, Arg1 = page index.
	EvPageFetch

	// EvPageEvict: the CLOCK bound evicted a cached page. Arg0 = array id,
	// Arg1 = page index.
	EvPageEvict

	// EvRebound: an adaptive cut table was installed for a loop template.
	// Arg0 = template id.
	EvRebound

	// EvEpoch: this worker adopted a new recovery counting epoch.
	// Arg0 = epoch.
	EvEpoch

	// EvProbe: a termination probe was answered. Arg0 = round,
	// Arg1 = ready-queue depth at the probe.
	EvProbe

	// EvPrefetch: the heat machinery asked a page's owner for it ahead of
	// the miss (streaming scan or rebind migration). Arg0 = array id,
	// Arg1 = page index.
	EvPrefetch

	// EvCacheResize: the adaptive governor moved the shard's CachePages
	// bound. Arg0 = the new cap, Arg1 = the probe round's refetch delta
	// that drove it (0 for a quiet-round shrink).
	EvCacheResize
)

func (k Kind) String() string {
	switch k {
	case EvSPDispatch:
		return "sp.dispatch"
	case EvSPComplete:
		return "sp.complete"
	case EvStealReq:
		return "steal.req"
	case EvStealGrant:
		return "steal.grant"
	case EvStealNone:
		return "steal.none"
	case EvStealIn:
		return "steal.in"
	case EvPageFetch:
		return "page.fetch"
	case EvPageEvict:
		return "page.evict"
	case EvRebound:
		return "rebound"
	case EvEpoch:
		return "epoch"
	case EvProbe:
		return "probe"
	case EvPrefetch:
		return "prefetch"
	case EvCacheResize:
		return "cache-resize"
	default:
		return "ev?"
	}
}

// Event is one recorded occurrence on one PE.
type Event struct {
	Kind  Kind
	Wall  int64 // wall clock, nanoseconds since the Unix epoch
	Instr int64 // the recording PE's executed-instruction counter
	Arg0  int64 // kind-specific (see the Kind constants)
	Arg1  int64
}

// eventWords is the flattened wire size of one event in int64 words.
const eventWords = 5

// Recorder is a fixed-capacity ring of events for one PE. It is not
// goroutine-safe: exactly one worker goroutine records into it, matching the
// cluster's share-nothing worker model.
type Recorder struct {
	ring  []Event
	head  int   // index of the oldest event
	n     int   // live events (≤ len(ring))
	drops int64 // events overwritten by ring overflow

	sample int // record every sample-th sampled decision (≥1)
	tick   int // sampling counter

	now func() int64 // wall-clock source, swappable in tests
}

// New returns a recorder with the given ring capacity and SP-event sampling
// period. capacity < 1 is treated as 1; sample < 1 as 1 (record everything).
func New(capacity, sample int) *Recorder {
	if capacity < 1 {
		capacity = 1
	}
	if sample < 1 {
		sample = 1
	}
	return &Recorder{
		ring:   make([]Event, capacity),
		sample: sample,
		now:    func() int64 { return time.Now().UnixNano() },
	}
}

// SampleSP advances the deterministic sampling counter and reports whether
// the next SP instance's dispatch/complete events should be recorded. The
// decision depends only on how many times SampleSP was called before, so a
// fixed call sequence always samples the same instances.
func (r *Recorder) SampleSP() bool {
	on := r.tick%r.sample == 0
	r.tick++
	return on
}

// Record appends one event, overwriting (and counting) the oldest when the
// ring is full. The fast path allocates nothing.
func (r *Recorder) Record(k Kind, instr, arg0, arg1 int64) {
	i := r.head + r.n
	if n := len(r.ring); i >= n {
		i -= n
	}
	if r.n == len(r.ring) {
		// Full: the slot being written holds the oldest event.
		r.head++
		if r.head == len(r.ring) {
			r.head = 0
		}
		r.drops++
	} else {
		r.n++
	}
	r.ring[i] = Event{Kind: k, Wall: r.now(), Instr: instr, Arg0: arg0, Arg1: arg1}
}

// Len reports the number of live events.
func (r *Recorder) Len() int { return r.n }

// Drops reports how many events the capacity bound discarded.
func (r *Recorder) Drops() int64 { return r.drops }

// Events returns the live events oldest-first (a copy).
func (r *Recorder) Events() []Event {
	out := make([]Event, r.n)
	for i := 0; i < r.n; i++ {
		j := r.head + i
		if j >= len(r.ring) {
			j -= len(r.ring)
		}
		out[i] = r.ring[j]
	}
	return out
}

// Flatten encodes the live events oldest-first as eventWords int64s apiece —
// the wire form a KTrace frame carries.
func (r *Recorder) Flatten() []int64 {
	out := make([]int64, 0, r.n*eventWords)
	for i := 0; i < r.n; i++ {
		j := r.head + i
		if j >= len(r.ring) {
			j -= len(r.ring)
		}
		e := &r.ring[j]
		out = append(out, int64(e.Kind), e.Wall, e.Instr, e.Arg0, e.Arg1)
	}
	return out
}

// Unflatten decodes a Flatten payload. A trailing partial event (corrupt
// frame) is dropped rather than failing: traces are diagnostics, and a
// best-effort prefix beats nothing.
func Unflatten(vs []int64) []Event {
	n := len(vs) / eventWords
	out := make([]Event, n)
	for i := 0; i < n; i++ {
		w := vs[i*eventWords:]
		out[i] = Event{Kind: Kind(w[0]), Wall: w[1], Instr: w[2], Arg0: w[3], Arg1: w[4]}
	}
	return out
}

// PETrace is one PE's gathered event stream.
type PETrace struct {
	Events []Event
	Drops  int64 // events the PE's ring capacity discarded
}

// Sample is one (probe round, PE) row of the driver-side metrics timeline:
// instantaneous queue depth plus counter deltas since the PE's previous
// completed round (clamped at zero across recovery epoch resets).
type Sample struct {
	Round  int
	Wall   int64 // nanoseconds since the driver's run start
	PE     int
	Instrs int64 // instructions executed this round (delta)
	QDepth int64 // ready-queue depth at the probe (instantaneous)
	Live   int64 // live SP instances at the probe (instantaneous)
	Sent   int64 // data messages sent this round (delta)
	Hits   int64 // page-cache hits this round (delta)
	Misses int64 // page-cache misses this round (delta)
	Evicts int64 // pages evicted this round (delta)
	Steals int64 // SPs stolen in this round (delta)
}

// Timeline is the assembled per-round utilization/cache/steal timeline.
type Timeline struct {
	Samples []Sample
	Drops   int64 // samples discarded by the builder's capacity bound
}

// TimelineBuilder accumulates samples under a fixed capacity, dropping the
// oldest (and counting) on overflow — the driver-side mirror of the
// recorder's never-grow-unboundedly rule, sized for runs with arbitrarily
// many probe rounds.
type TimelineBuilder struct {
	ring  []Sample
	head  int
	n     int
	drops int64
}

// NewTimelineBuilder returns a builder bounded to capacity samples.
func NewTimelineBuilder(capacity int) *TimelineBuilder {
	if capacity < 1 {
		capacity = 1
	}
	return &TimelineBuilder{ring: make([]Sample, capacity)}
}

// Add appends one sample, dropping the oldest when full.
func (b *TimelineBuilder) Add(s Sample) {
	i := b.head + b.n
	if n := len(b.ring); i >= n {
		i -= n
	}
	if b.n == len(b.ring) {
		b.head++
		if b.head == len(b.ring) {
			b.head = 0
		}
		b.drops++
	} else {
		b.n++
	}
	b.ring[i] = s
}

// Done returns the accumulated timeline oldest-first.
func (b *TimelineBuilder) Done() *Timeline {
	t := &Timeline{Samples: make([]Sample, b.n), Drops: b.drops}
	for i := 0; i < b.n; i++ {
		j := b.head + i
		if j >= len(b.ring) {
			j -= len(b.ring)
		}
		t.Samples[i] = b.ring[j]
	}
	return t
}

// Trace is a whole run's gathered observability data: every PE's event
// stream plus the driver's per-round metrics timeline.
type Trace struct {
	NumPEs   int
	PEs      []PETrace
	Timeline *Timeline
}

// Events counts gathered events across all PEs.
func (t *Trace) Events() int {
	n := 0
	for i := range t.PEs {
		n += len(t.PEs[i].Events)
	}
	return n
}

// Drops sums every PE's ring drops.
func (t *Trace) Drops() int64 {
	var n int64
	for i := range t.PEs {
		n += t.PEs[i].Drops
	}
	return n
}
