package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// chromeEvent is one entry of the Chrome trace_event JSON array format
// (the "JSON Array Format" Perfetto and chrome://tracing both load).
// Timestamps and durations are microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChrome renders the trace as Chrome trace_event JSON. Each PE becomes
// one thread (tid = PE) of process 0. Sampled SP executions become "X"
// complete slices by pairing each sp.complete with that SP's most recent
// dispatch on the same PE; everything else — steals, page traffic, rebounds,
// epochs, probes, and dispatches that never completed inside the ring —
// becomes an instant. Timeline samples, when present, add per-PE counter
// tracks (instrs/round and queue depth). name, when non-nil, maps a template
// id to a label for SP slices; otherwise slices are named "sp/<tmpl>".
func WriteChrome(w io.Writer, t *Trace, name func(tmpl int64) string) error {
	// Normalize timestamps to the earliest wall stamp anywhere in the trace
	// so the viewer opens at t≈0 instead of the Unix epoch.
	var t0 int64
	first := true
	seen := func(wall int64) {
		if wall != 0 && (first || wall < t0) {
			t0, first = wall, false
		}
	}
	for pe := range t.PEs {
		for i := range t.PEs[pe].Events {
			seen(t.PEs[pe].Events[i].Wall)
		}
	}
	if t.Timeline != nil {
		for i := range t.Timeline.Samples {
			seen(t.Timeline.Samples[i].Wall)
		}
	}
	us := func(wall int64) float64 { return float64(wall-t0) / 1e3 }

	spName := func(tmpl int64) string {
		if name != nil {
			if s := name(tmpl); s != "" {
				return s
			}
		}
		return fmt.Sprintf("sp/%d", tmpl)
	}

	var out []chromeEvent
	for pe := range t.PEs {
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 0, TID: pe,
			Args: map[string]any{"name": fmt.Sprintf("PE %d", pe)},
		})
		// Pair complete events with the latest open dispatch per SP id.
		open := map[int64]Event{}
		for _, e := range t.PEs[pe].Events {
			switch e.Kind {
			case EvSPDispatch:
				if prev, ok := open[e.Arg0]; ok {
					// Re-dispatch without an observed completion (the
					// completion fell out of the ring): keep the record as
					// an instant so nothing is silently lost.
					out = append(out, instant(prev, pe, spName))
				}
				open[e.Arg0] = e
			case EvSPComplete:
				d, ok := open[e.Arg0]
				if !ok {
					out = append(out, instant(e, pe, spName))
					continue
				}
				delete(open, e.Arg0)
				out = append(out, chromeEvent{
					Name: spName(e.Arg1), Ph: "X", TS: us(d.Wall),
					Dur: max(us(e.Wall)-us(d.Wall), 0.001), PID: 0, TID: pe,
					Args: map[string]any{"sp": e.Arg0, "instrs": e.Instr - d.Instr},
				})
			default:
				out = append(out, instant(e, pe, spName))
			}
		}
		// Dispatches still open at gather time (e.g. a stall dump).
		for _, e := range open {
			out = append(out, instant(e, pe, spName))
		}
	}
	if t.Timeline != nil {
		for _, s := range t.Timeline.Samples {
			out = append(out, chromeEvent{
				Name: fmt.Sprintf("PE %d instrs/round", s.PE), Ph: "C",
				TS: us(s.Wall), PID: 0, TID: s.PE,
				Args: map[string]any{"instrs": s.Instrs},
			}, chromeEvent{
				Name: fmt.Sprintf("PE %d queue depth", s.PE), Ph: "C",
				TS: us(s.Wall), PID: 0, TID: s.PE,
				Args: map[string]any{"ready": s.QDepth},
			})
		}
	}
	// Instants patched above reference the un-normalized wall stamp; fix
	// them all in one pass (metadata events keep ts 0).
	for i := range out {
		if out[i].Ph == "i" {
			out[i].TS = us(int64(out[i].TS))
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].TS < out[j].TS })

	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// instant renders a non-slice event. The wall stamp is stored raw in TS and
// normalized by the caller in a final pass.
func instant(e Event, pe int, spName func(int64) string) chromeEvent {
	c := chromeEvent{Ph: "i", TS: float64(e.Wall), PID: 0, TID: pe, S: "t",
		Args: map[string]any{"instr": e.Instr}}
	switch e.Kind {
	case EvSPDispatch, EvSPComplete:
		c.Name = e.Kind.String() + " " + spName(e.Arg1)
		c.Args["sp"] = e.Arg0
	case EvStealReq, EvStealNone:
		c.Name = e.Kind.String()
		c.Args["victim"] = e.Arg0
	case EvStealGrant:
		c.Name = e.Kind.String()
		c.Args["thief"], c.Args["sps"] = e.Arg0, e.Arg1
	case EvStealIn:
		c.Name = e.Kind.String()
		c.Args["from"], c.Args["sps"] = e.Arg0, e.Arg1
	case EvPageFetch, EvPageEvict:
		c.Name = e.Kind.String()
		c.Args["array"], c.Args["page"] = e.Arg0, e.Arg1
	case EvRebound:
		c.Name = e.Kind.String()
		c.Args["tmpl"] = e.Arg0
	case EvEpoch:
		c.Name = e.Kind.String()
		c.Args["epoch"] = e.Arg0
	case EvProbe:
		c.Name = e.Kind.String()
		c.Args["round"], c.Args["ready"] = e.Arg0, e.Arg1
	default:
		c.Name = e.Kind.String()
		c.Args["arg0"], c.Args["arg1"] = e.Arg0, e.Arg1
	}
	return c
}

// WriteTimelineCSV renders the per-round metrics timeline as CSV, one row
// per (round, PE): wall offset in milliseconds, instruction and message
// deltas, instantaneous queue/live depth, and cache/steal activity.
func WriteTimelineCSV(w io.Writer, tl *Timeline) error {
	if _, err := fmt.Fprintln(w, "round,pe,wall_ms,instrs,qdepth,live,sent,hits,misses,evicts,steals"); err != nil {
		return err
	}
	for _, s := range tl.Samples {
		_, err := fmt.Fprintf(w, "%d,%d,%.3f,%d,%d,%d,%d,%d,%d,%d,%d\n",
			s.Round, s.PE, float64(s.Wall)/1e6, s.Instrs, s.QDepth, s.Live,
			s.Sent, s.Hits, s.Misses, s.Evicts, s.Steals)
		if err != nil {
			return err
		}
	}
	return nil
}

// FormatTail renders a PE's last n events as one human-readable line each —
// the shape the driver's stall diagnostics embed in the RoundTimeout error.
func FormatTail(evs []Event, n int) string {
	if len(evs) == 0 {
		return "    (no trace events)"
	}
	if n > 0 && len(evs) > n {
		evs = evs[len(evs)-n:]
	}
	t0 := evs[0].Wall
	var b strings.Builder
	for i, e := range evs {
		if i > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "    +%8.3fms instr=%-8d %-12s args=%d,%d",
			float64(e.Wall-t0)/1e6, e.Instr, e.Kind.String(), e.Arg0, e.Arg1)
	}
	return b.String()
}
