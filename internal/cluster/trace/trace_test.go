package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// fixed replaces the wall clock with a deterministic counter so tests can
// assert on event identity.
func fixed(r *Recorder) *int64 {
	var t int64
	r.now = func() int64 { t++; return t }
	return &t
}

func TestRingOverflowDropsOldest(t *testing.T) {
	r := New(4, 1)
	fixed(r)
	for i := int64(0); i < 10; i++ {
		r.Record(EvSPDispatch, i, i, 0)
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if r.Drops() != 6 {
		t.Fatalf("Drops = %d, want 6", r.Drops())
	}
	evs := r.Events()
	for i, e := range evs {
		if want := int64(6 + i); e.Instr != want {
			t.Fatalf("event %d: Instr = %d, want %d (oldest must be dropped first)", i, e.Instr, want)
		}
	}
}

func TestFlattenRoundTrip(t *testing.T) {
	r := New(8, 1)
	fixed(r)
	r.Record(EvStealGrant, 100, 3, 7)
	r.Record(EvPageEvict, 200, 42, 5)
	got := Unflatten(r.Flatten())
	want := r.Events()
	if len(got) != len(want) {
		t.Fatalf("round trip length %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("event %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	// A truncated payload decodes to the whole-event prefix.
	if evs := Unflatten(r.Flatten()[:7]); len(evs) != 1 || evs[0] != want[0] {
		t.Fatalf("truncated payload: got %+v, want one event %+v", evs, want[0])
	}
}

func TestSamplingDeterminism(t *testing.T) {
	pattern := func() []bool {
		r := New(16, 3)
		var out []bool
		for i := 0; i < 12; i++ {
			out = append(out, r.SampleSP())
		}
		return out
	}
	a, b := pattern(), pattern()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sampling diverged at call %d: %v vs %v", i, a, b)
		}
		if want := i%3 == 0; a[i] != want {
			t.Fatalf("call %d: sampled = %v, want %v (every 3rd)", i, a[i], want)
		}
	}
	// sample=1 records everything.
	r := New(4, 1)
	for i := 0; i < 5; i++ {
		if !r.SampleSP() {
			t.Fatalf("sample=1 skipped call %d", i)
		}
	}
}

func TestRecordZeroAlloc(t *testing.T) {
	r := New(64, 1)
	var i int64
	allocs := testing.AllocsPerRun(1000, func() {
		i++
		r.Record(EvSPDispatch, i, i, 0)
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %.1f times per call, want 0", allocs)
	}
}

func TestSampleSPZeroAlloc(t *testing.T) {
	r := New(4, 7)
	allocs := testing.AllocsPerRun(1000, func() { r.SampleSP() })
	if allocs != 0 {
		t.Fatalf("SampleSP allocates %.1f times per call, want 0", allocs)
	}
}

func TestTimelineBuilderBounded(t *testing.T) {
	b := NewTimelineBuilder(3)
	for i := 0; i < 5; i++ {
		b.Add(Sample{Round: i})
	}
	tl := b.Done()
	if len(tl.Samples) != 3 || tl.Drops != 2 {
		t.Fatalf("got %d samples, %d drops; want 3, 2", len(tl.Samples), tl.Drops)
	}
	for i, s := range tl.Samples {
		if s.Round != i+2 {
			t.Fatalf("sample %d: round %d, want %d", i, s.Round, i+2)
		}
	}
}

func TestWriteChromeValidJSON(t *testing.T) {
	r := New(32, 1)
	clock := fixed(r)
	*clock = 1_000_000
	r.Record(EvSPDispatch, 10, 5, 2)
	r.Record(EvPageFetch, 20, 1, 3)
	r.Record(EvSPComplete, 90, 5, 2)
	r.Record(EvSPDispatch, 95, 6, 2) // left open: must surface as an instant
	tb := NewTimelineBuilder(8)
	tb.Add(Sample{Round: 1, Wall: 1_000_500, PE: 0, Instrs: 90, QDepth: 2})

	tr := &Trace{NumPEs: 1, PEs: []PETrace{{Events: r.Events(), Drops: r.Drops()}}, Timeline: tb.Done()}
	var buf bytes.Buffer
	if err := WriteChrome(&buf, tr, nil); err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("exporter produced invalid JSON: %v\n%s", err, buf.String())
	}
	var slices, instants, counters, meta int
	for _, e := range evs {
		switch e["ph"] {
		case "X":
			slices++
		case "i":
			instants++
		case "C":
			counters++
		case "M":
			meta++
		}
	}
	if slices != 1 {
		t.Fatalf("got %d X slices, want 1 (paired dispatch/complete)", slices)
	}
	if instants != 2 {
		t.Fatalf("got %d instants, want 2 (page fetch + open dispatch)", instants)
	}
	if counters != 2 || meta != 1 {
		t.Fatalf("got %d counters, %d metadata; want 2, 1", counters, meta)
	}
}

func TestWriteTimelineCSV(t *testing.T) {
	tb := NewTimelineBuilder(4)
	tb.Add(Sample{Round: 1, Wall: 2_000_000, PE: 0, Instrs: 50, QDepth: 3, Sent: 7})
	tb.Add(Sample{Round: 1, Wall: 2_000_000, PE: 1, Instrs: 40, Misses: 2})
	var buf bytes.Buffer
	if err := WriteTimelineCSV(&buf, tb.Done()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want header + 2 rows:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "round,pe,wall_ms") {
		t.Fatalf("bad header: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "1,0,2.000,50,3,") {
		t.Fatalf("bad row: %q", lines[1])
	}
}

func TestFormatTail(t *testing.T) {
	r := New(8, 1)
	fixed(r)
	r.Record(EvStealReq, 5, 1, 0)
	r.Record(EvEpoch, 6, 2, 0)
	r.Record(EvProbe, 7, 9, 1)
	s := FormatTail(r.Events(), 2)
	if strings.Contains(s, "steal.req") {
		t.Fatalf("tail of 2 must drop the oldest event:\n%s", s)
	}
	if !strings.Contains(s, "epoch") || !strings.Contains(s, "probe") {
		t.Fatalf("tail missing expected events:\n%s", s)
	}
	if got := FormatTail(nil, 4); !strings.Contains(got, "no trace events") {
		t.Fatalf("empty tail: %q", got)
	}
}
