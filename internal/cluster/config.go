package cluster

import (
	"fmt"
	"os"
	"strconv"
	"time"

	"repro/internal/rtcfg"
)

// Config parameterizes a cluster run.
type Config struct {
	// NumPEs is the number of worker PEs (and the divisor for SPAWND and
	// Range Filters). Defaults to rtcfg.DefaultPEs. Ignored when Workers
	// is set — then the worker count is len(Workers).
	NumPEs int

	// PageElems sets the I-structure page size in elements; Range Filters
	// follow the same geometry as the simulator. Defaults to 32.
	PageElems int

	// DistThreshold is the minimum element count for an ALLOCD array to be
	// physically spread over the PEs. Defaults to 2 pages.
	DistThreshold int

	// Workers lists TCP worker addresses ("host:port", one per PE, each
	// running `podsd -worker`). When empty the run uses the in-process
	// channel transport with NumPEs worker goroutines.
	Workers []string

	// ProbeInterval is the pause between termination-detection probe
	// rounds. Defaults to 100µs (the driver backs off geometrically up to
	// 50× this while the program is still running).
	ProbeInterval time.Duration

	// Steal enables dynamic work stealing: an idle worker asks a peer
	// (round-robin with backoff) for a not-yet-started SP instance, and
	// the victim leaves a forwarding stub behind for tokens addressed to
	// the stolen SP's home ID. Off by default — static SPAWND
	// partitioning only. The PODS_FORCE_STEAL environment variable
	// ("1"/"true") forces it on, so a CI leg can run the whole steal-off
	// test matrix with stealing engaged.
	Steal bool

	// Adapt enables runtime-adaptive repartitioning of Range Filter
	// bounds: workers charge executed instructions to the (loop, sweep,
	// iteration) that caused them and flush the observations to the driver
	// with every probe ack; the driver re-splits each distributed loop's
	// index range over the PEs (balanced-prefix over observed costs, with
	// hysteresis) and broadcasts the new cuts, which workers stamp onto
	// the next sweep's SPAWND fan-out. Off by default — Range Filter
	// bounds stay fixed at their compile-time form. The PODS_FORCE_ADAPT
	// environment variable ("1"/"true") forces it on, so a CI leg can run
	// the whole test matrix with adaptation engaged.
	Adapt bool

	// Latency injects a fixed per-hop delay into the in-process channel
	// transport (every message is held that long before it becomes
	// receivable; per-pair FIFO is preserved). Zero means deliver
	// immediately. Ignored for TCP workers, whose latency is real.
	Latency time.Duration

	// CachePages bounds each worker shard's software page cache to this
	// many resident remote pages, evicted CLOCK/second-chance style once
	// the cap is reached. 0 (the default) keeps the cache unbounded.
	// Eviction only ever touches cached remote pages — owned segments are
	// the array's home storage — so with single assignment a too-small cap
	// costs refetches, never correctness. The PODS_FORCE_CACHE_PAGES
	// environment variable (a positive integer) applies a cap to runs that
	// leave this field zero, so a CI leg can run the whole test matrix
	// with eviction engaged.
	CachePages int

	// RoundTimeout bounds how long the driver waits for one termination-
	// probe round to complete. A worker that dies or wedges mid-round
	// would otherwise leave ExecuteCluster hanging silently until its
	// context expires; when a round exceeds this deadline the run fails
	// with each PE's last-ack state (round, live SPs, message counters)
	// instead — or, with Recover set, respawns and replays the silent PEs.
	// Defaults to 30s; negative disables the deadline.
	RoundTimeout time.Duration

	// Recover makes the driver survive worker deaths instead of failing
	// the run: the dead PE is fenced behind a fresh incarnation number,
	// respawned (a new goroutine on the channel transport; the next Spares
	// address on TCP), and its root SPAWND assignments are replayed
	// against the surviving shards — sound because single assignment makes
	// re-execution idempotent. Off by default: recovery costs write/grant
	// logging on every worker while it is armed.
	Recover bool

	// Spares lists standby TCP worker addresses (each running
	// `podsd -worker`) a recovery may re-home a dead PE onto. Only
	// meaningful with Workers and Recover set; each recovery consumes one
	// spare.
	Spares []string

	// KillPE / KillAfter arm the channel transport's deterministic fault
	// injector: PE KillPE's endpoint is severed — sends dropped, receives
	// closed, a down notice surfaced to the driver — the moment it has
	// sent KillAfter frames (data frames and probe acks count; both stop
	// at termination, so the kill always lands mid-run and never in the
	// gather phase, whose finished results are unrecoverable). KillAfter 0
	// (the default) disarms it; a KillPE
	// outside [0, NumPEs) never fires. Ignored on TCP, where faults are
	// real (kill the worker process). The PODS_FORCE_KILL_PE environment
	// variable (a PE index, with PODS_FORCE_KILL_AFTER optionally
	// overriding the default of 8 frames) arms it for runs that leave
	// these fields zero and forces Recover on, so a CI leg can run the
	// whole test matrix with a worker dying mid-run in every cluster
	// execution.
	KillPE    int
	KillAfter int64

	// Trace enables the observability subsystem: every worker records
	// scheduling/cache/steal/recovery events into a fixed-capacity ring
	// (internal/cluster/trace), the driver assembles a per-probe-round
	// metrics timeline from the acks, and the run's Result carries both for
	// export (Chrome trace_event JSON, timeline CSV). Recording is
	// allocation-free, bounded (overflow drops the oldest event and counts
	// it), and executes no program instructions, so results stay
	// bit-identical and overhead stays within a few percent. Off by
	// default. The PODS_FORCE_TRACE environment variable ("1"/"true")
	// forces it on, so a CI leg can run the whole test matrix with tracing
	// engaged.
	Trace bool

	// TraceCap bounds each worker's trace ring in events (oldest dropped
	// beyond it). Defaults to 4096 when Trace is set.
	TraceCap int

	// TraceSample records every TraceSample-th SP instance's dispatch and
	// completion (the high-volume events); steals, page traffic, rebounds,
	// epochs, and probes are always recorded. The sampling counter is
	// deterministic, so a given schedule always samples the same
	// instances. Defaults to 1 (record every SP).
	TraceSample int

	// MaxJobs bounds how many jobs a Fleet runs concurrently; a Submit
	// beyond the bound is rejected immediately (admission control), never
	// queued. 0 means DefaultMaxJobs. Fleet-level: ignored on the per-job
	// config passed to Submit.
	MaxJobs int

	// MaxInstrs is the job's instruction budget: the run fails once the
	// workers' acked executed-instruction total exceeds it. Enforcement
	// rides the probe cadence, so a job can overshoot by at most one
	// round's work before it is stopped. 0 (the default) is unlimited.
	MaxInstrs int64

	// Heat enables the unified page-heat machinery: every worker keeps one
	// per-shard table of (array, page) → {residency, heat, last touch,
	// sequential-run length} and spends it four ways — steal requests
	// advertise hot pages instead of hot arrays, sequential scans prefetch
	// the next page before the miss, CachePages self-tunes between the
	// configured floor and 8× it from refetch pressure, and a rebind
	// migrates the hot pages of its newly-gained iterations. Off by
	// default: every mechanism rides existing message kinds, so results
	// stay bit-identical either way. The PODS_FORCE_PREFETCH environment
	// variable ("1"/"true") forces it on, so a CI leg can run the whole
	// test matrix with the heat machinery engaged.
	Heat bool

	// MaxElems is the job's memory budget in allocated I-structure
	// elements, enforced exactly at each allocation broadcast (the driver
	// sees every ALLOC/ALLOCD before an element is written). A job whose
	// allocations would exceed the budget fails without disturbing
	// concurrent jobs. 0 (the default) is unlimited.
	MaxElems int64
}

// DefaultMaxJobs is the concurrent-job admission bound a Fleet applies
// when Config.MaxJobs is zero.
const DefaultMaxJobs = 16

// fill applies the shared backend defaults and validates the result.
func (c *Config) fill() error {
	if len(c.Workers) > 0 {
		if c.NumPEs != 0 && c.NumPEs != len(c.Workers) {
			return fmt.Errorf("cluster: NumPEs %d conflicts with %d worker addresses", c.NumPEs, len(c.Workers))
		}
		c.NumPEs = len(c.Workers)
	}
	g := rtcfg.Geometry{PEs: c.NumPEs, PageElems: c.PageElems, DistThreshold: c.DistThreshold}
	if err := g.Fill(rtcfg.DefaultPEs); err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	c.NumPEs, c.PageElems, c.DistThreshold = g.PEs, g.PageElems, g.DistThreshold
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 100 * time.Microsecond
	}
	if c.Latency < 0 {
		return fmt.Errorf("cluster: negative injected latency %v", c.Latency)
	}
	if c.CachePages < 0 {
		return fmt.Errorf("cluster: negative page-cache cap %d", c.CachePages)
	}
	if c.RoundTimeout == 0 {
		c.RoundTimeout = 30 * time.Second
	}
	if ForceStealFromEnv() {
		c.Steal = true
	}
	if ForceAdaptFromEnv() {
		c.Adapt = true
	}
	if c.CachePages == 0 {
		if cap, ok := ForceCachePagesFromEnv(); ok {
			c.CachePages = cap
		}
	}
	if len(c.Spares) > 0 && len(c.Workers) == 0 {
		return fmt.Errorf("cluster: %d spare addresses without TCP workers", len(c.Spares))
	}
	if c.KillAfter < 0 {
		return fmt.Errorf("cluster: negative KillAfter %d", c.KillAfter)
	}
	if c.KillAfter == 0 && len(c.Workers) == 0 {
		if pe, after, ok := ForceKillFromEnv(); ok {
			c.KillPE, c.KillAfter = pe, after
			c.Recover = true
		}
	}
	if ForceTraceFromEnv() {
		c.Trace = true
	}
	if ForcePrefetchFromEnv() {
		c.Heat = true
	}
	if c.TraceCap < 0 || c.TraceSample < 0 {
		return fmt.Errorf("cluster: negative trace bound (cap %d, sample %d)", c.TraceCap, c.TraceSample)
	}
	if c.MaxJobs < 0 {
		return fmt.Errorf("cluster: negative MaxJobs %d", c.MaxJobs)
	}
	if c.MaxInstrs < 0 || c.MaxElems < 0 {
		return fmt.Errorf("cluster: negative job budget (MaxInstrs %d, MaxElems %d)", c.MaxInstrs, c.MaxElems)
	}
	if c.Trace {
		if c.TraceCap == 0 {
			c.TraceCap = 4096
		}
		if c.TraceSample == 0 {
			c.TraceSample = 1
		}
	}
	return nil
}

// workerOpts bundles the per-worker feature switches newWorker takes, so
// the three spawn sites (in-process bring-up, channel respawn, TCP
// ServeWorker) stay in sync as features accrete.
type workerOpts struct {
	steal       bool
	adapt       bool
	cachePages  int
	trace       bool
	traceCap    int
	traceSample int
	heat        bool
}

// workerOpts derives a worker's option set from a filled Config.
func (c *Config) workerOpts() workerOpts {
	return workerOpts{
		steal:       c.Steal,
		adapt:       c.Adapt,
		cachePages:  c.CachePages,
		trace:       c.Trace,
		traceCap:    c.TraceCap,
		traceSample: c.TraceSample,
		heat:        c.Heat,
	}
}

// ForceKillFromEnv reports the PODS_FORCE_KILL_PE override: the PE index
// to fault-inject, with PODS_FORCE_KILL_AFTER optionally overriding the
// default budget of 8 worker-to-worker frames. Exported so tests that
// depend on fault injection being genuinely off can check the exact
// condition fill applies.
func ForceKillFromEnv() (pe int, after int64, ok bool) {
	v := os.Getenv("PODS_FORCE_KILL_PE")
	if v == "" {
		return 0, 0, false
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, 0, false
	}
	after = 8
	if av := os.Getenv("PODS_FORCE_KILL_AFTER"); av != "" {
		an, err := strconv.ParseInt(av, 10, 64)
		if err == nil && an > 0 {
			after = an
		}
	}
	return n, after, true
}

// ForceStealFromEnv reports whether the PODS_FORCE_STEAL environment
// override is active ("1" or "true"). Exported so experiment harnesses
// whose control arms depend on stealing being genuinely off (bench.Skew)
// test the exact condition fill applies.
func ForceStealFromEnv() bool { return forcedEnv("PODS_FORCE_STEAL") }

// ForceAdaptFromEnv reports whether the PODS_FORCE_ADAPT environment
// override is active ("1" or "true"). Exported for the same reason as
// ForceStealFromEnv: experiment harnesses whose control arms depend on
// adaptation being genuinely off (bench.Adapt) test the exact condition
// fill applies.
func ForceAdaptFromEnv() bool { return forcedEnv("PODS_FORCE_ADAPT") }

// ForceTraceFromEnv reports whether the PODS_FORCE_TRACE environment
// override is active ("1" or "true"). Exported so experiment harnesses
// whose control arms depend on tracing being genuinely off (bench.Trace's
// overhead baseline) test the exact condition fill applies.
func ForceTraceFromEnv() bool { return forcedEnv("PODS_FORCE_TRACE") }

// ForcePrefetchFromEnv reports whether the PODS_FORCE_PREFETCH
// environment override is active ("1" or "true"). Exported so experiment
// harnesses whose control arms depend on the heat machinery being
// genuinely off (bench.Cache's prefetch-off arm) test the exact condition
// fill applies.
func ForcePrefetchFromEnv() bool { return forcedEnv("PODS_FORCE_PREFETCH") }

// ForceCachePagesFromEnv reports the PODS_FORCE_CACHE_PAGES override: a
// positive integer page-cache cap applied to runs that leave
// Config.CachePages at its zero default. Exported so experiment harnesses
// whose unbounded control arm depends on the cache being genuinely
// uncapped (bench.Cache) test the exact condition fill applies.
func ForceCachePagesFromEnv() (int, bool) {
	v := os.Getenv("PODS_FORCE_CACHE_PAGES")
	if v == "" {
		return 0, false
	}
	n, err := strconv.Atoi(v)
	if err != nil || n <= 0 {
		return 0, false
	}
	return n, true
}

func forcedEnv(name string) bool {
	v := os.Getenv(name)
	return v == "1" || v == "true"
}
