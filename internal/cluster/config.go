package cluster

import (
	"fmt"
	"os"
	"strconv"
	"time"

	"repro/internal/rtcfg"
)

// Config parameterizes a cluster run.
type Config struct {
	// NumPEs is the number of worker PEs (and the divisor for SPAWND and
	// Range Filters). Defaults to rtcfg.DefaultPEs. Ignored when Workers
	// is set — then the worker count is len(Workers).
	NumPEs int

	// PageElems sets the I-structure page size in elements; Range Filters
	// follow the same geometry as the simulator. Defaults to 32.
	PageElems int

	// DistThreshold is the minimum element count for an ALLOCD array to be
	// physically spread over the PEs. Defaults to 2 pages.
	DistThreshold int

	// Workers lists TCP worker addresses ("host:port", one per PE, each
	// running `podsd -worker`). When empty the run uses the in-process
	// channel transport with NumPEs worker goroutines.
	Workers []string

	// ProbeInterval is the pause between termination-detection probe
	// rounds. Defaults to 100µs (the driver backs off geometrically up to
	// 50× this while the program is still running).
	ProbeInterval time.Duration

	// Steal enables dynamic work stealing: an idle worker asks a peer
	// (round-robin with backoff) for a not-yet-started SP instance, and
	// the victim leaves a forwarding stub behind for tokens addressed to
	// the stolen SP's home ID. Off by default — static SPAWND
	// partitioning only. The PODS_FORCE_STEAL environment variable
	// ("1"/"true") forces it on, so a CI leg can run the whole steal-off
	// test matrix with stealing engaged.
	Steal bool

	// Adapt enables runtime-adaptive repartitioning of Range Filter
	// bounds: workers charge executed instructions to the (loop, sweep,
	// iteration) that caused them and flush the observations to the driver
	// with every probe ack; the driver re-splits each distributed loop's
	// index range over the PEs (balanced-prefix over observed costs, with
	// hysteresis) and broadcasts the new cuts, which workers stamp onto
	// the next sweep's SPAWND fan-out. Off by default — Range Filter
	// bounds stay fixed at their compile-time form. The PODS_FORCE_ADAPT
	// environment variable ("1"/"true") forces it on, so a CI leg can run
	// the whole test matrix with adaptation engaged.
	Adapt bool

	// Latency injects a fixed per-hop delay into the in-process channel
	// transport (every message is held that long before it becomes
	// receivable; per-pair FIFO is preserved). Zero means deliver
	// immediately. Ignored for TCP workers, whose latency is real.
	Latency time.Duration

	// CachePages bounds each worker shard's software page cache to this
	// many resident remote pages, evicted CLOCK/second-chance style once
	// the cap is reached. 0 (the default) keeps the cache unbounded.
	// Eviction only ever touches cached remote pages — owned segments are
	// the array's home storage — so with single assignment a too-small cap
	// costs refetches, never correctness. The PODS_FORCE_CACHE_PAGES
	// environment variable (a positive integer) applies a cap to runs that
	// leave this field zero, so a CI leg can run the whole test matrix
	// with eviction engaged.
	CachePages int

	// RoundTimeout bounds how long the driver waits for one termination-
	// probe round to complete. A worker that dies or wedges mid-round
	// would otherwise leave ExecuteCluster hanging silently until its
	// context expires; when a round exceeds this deadline the run fails
	// with each PE's last-ack state (round, live SPs, message counters)
	// instead. Defaults to 30s; negative disables the deadline.
	RoundTimeout time.Duration
}

// fill applies the shared backend defaults and validates the result.
func (c *Config) fill() error {
	if len(c.Workers) > 0 {
		if c.NumPEs != 0 && c.NumPEs != len(c.Workers) {
			return fmt.Errorf("cluster: NumPEs %d conflicts with %d worker addresses", c.NumPEs, len(c.Workers))
		}
		c.NumPEs = len(c.Workers)
	}
	g := rtcfg.Geometry{PEs: c.NumPEs, PageElems: c.PageElems, DistThreshold: c.DistThreshold}
	if err := g.Fill(rtcfg.DefaultPEs); err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	c.NumPEs, c.PageElems, c.DistThreshold = g.PEs, g.PageElems, g.DistThreshold
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 100 * time.Microsecond
	}
	if c.Latency < 0 {
		return fmt.Errorf("cluster: negative injected latency %v", c.Latency)
	}
	if c.CachePages < 0 {
		return fmt.Errorf("cluster: negative page-cache cap %d", c.CachePages)
	}
	if c.RoundTimeout == 0 {
		c.RoundTimeout = 30 * time.Second
	}
	if ForceStealFromEnv() {
		c.Steal = true
	}
	if ForceAdaptFromEnv() {
		c.Adapt = true
	}
	if c.CachePages == 0 {
		if cap, ok := ForceCachePagesFromEnv(); ok {
			c.CachePages = cap
		}
	}
	return nil
}

// ForceStealFromEnv reports whether the PODS_FORCE_STEAL environment
// override is active ("1" or "true"). Exported so experiment harnesses
// whose control arms depend on stealing being genuinely off (bench.Skew)
// test the exact condition fill applies.
func ForceStealFromEnv() bool { return forcedEnv("PODS_FORCE_STEAL") }

// ForceAdaptFromEnv reports whether the PODS_FORCE_ADAPT environment
// override is active ("1" or "true"). Exported for the same reason as
// ForceStealFromEnv: experiment harnesses whose control arms depend on
// adaptation being genuinely off (bench.Adapt) test the exact condition
// fill applies.
func ForceAdaptFromEnv() bool { return forcedEnv("PODS_FORCE_ADAPT") }

// ForceCachePagesFromEnv reports the PODS_FORCE_CACHE_PAGES override: a
// positive integer page-cache cap applied to runs that leave
// Config.CachePages at its zero default. Exported so experiment harnesses
// whose unbounded control arm depends on the cache being genuinely
// uncapped (bench.Cache) test the exact condition fill applies.
func ForceCachePagesFromEnv() (int, bool) {
	v := os.Getenv("PODS_FORCE_CACHE_PAGES")
	if v == "" {
		return 0, false
	}
	n, err := strconv.Atoi(v)
	if err != nil || n <= 0 {
		return 0, false
	}
	return n, true
}

func forcedEnv(name string) bool {
	v := os.Getenv(name)
	return v == "1" || v == "true"
}
