package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"

	"repro/internal/cluster/trace"
	"repro/internal/isa"
	"repro/internal/istructure"
	"repro/internal/rtcfg"
)

// spInst is one live SP instance on a worker: template, operand frame with
// presence bits, program counter, and the slot it is blocked on (isa.None
// while runnable). An instance normally belongs to the worker it was
// spawned on for life, matching the paper's model where an SP executes on
// the PE it was spawned on — with one exception: a not-yet-started
// instance (pc == 0) may be stolen by an idle peer, in which case the home
// worker keeps a forwarding stub so tokens addressed to the home ID still
// reach it.
type spInst struct {
	id      int64
	tmpl    *isa.Template
	frame   []isa.Value
	present []bool
	pc      int
	blocked int

	// stolen marks an instance installed here by a steal grant. Only such
	// instances can legally see tokens arrive after their HALT (the extra
	// relay hop through the home PE's forwarding stub is what lets a
	// token trail completion), so only they enter the halted set.
	// grantedFrom is the PE the grant came from (-1 for home-spawned
	// instances) and grantedInc that PE's incarnation when it granted: the
	// completion notice that lets grantors drop their stubs and grant
	// records travels back along grantedFrom, and a not-yet-started stolen
	// instance is discarded when its grantor's incarnation dies (the
	// grantor re-instantiates it, so keeping the copy would run the work
	// twice).
	stolen      bool
	grantedFrom int
	grantedInc  int32

	// Adaptive repartitioning (Config.Adapt). costLoop/costSweep/costIter
	// name the (Range-Filtered loop template, SPAWND fan-out, iteration)
	// this instance's executed instructions are charged to; costLoop is
	// -1 for untagged instances. A distributed loop copy carries its own
	// template as costLoop and charges dynamically to the current value of
	// its loop variable; every SP it spawns inherits the (loop, sweep) tag
	// with the iteration frozen at spawn time, so a whole iteration's
	// subtree — wherever stealing moves it — bills the iteration that
	// caused it.
	costLoop  int32
	costSweep int64
	costIter  int64

	// traced is the tracing decision for this instance's dispatch/complete
	// events: 0 undecided (made at first dispatch by the recorder's
	// deterministic sampler), 1 record, -1 skip. Deciding once per instance
	// keeps dispatch/complete pairs exact under sampling.
	traced int8

	// rbOn/rbLo/rbHi are explicit adaptive Range-Filter bounds stamped on
	// a distributed copy at fan-out: when set, the copy's RF instructions
	// yield these instead of consulting array ownership or the uniform
	// split, clamped against the loop's real index range. The ends of the
	// cut vector stamp ±inf, so the per-PE ranges partition any actual
	// range exactly even if it shifted since the costs were observed.
	rbOn       bool
	rbLo, rbHi int64
}

// worker is one PE: its own I-structure shard, its own SP instances and run
// queue, and an endpoint. Everything here is confined to the worker's
// goroutine (or process); the only communication is Endpoint.Send/Recv.
type worker struct {
	pe   int
	n    int
	geo  rtcfg.Geometry
	prog *isa.Program
	ep   Endpoint

	shard *istructure.Shard
	insts map[int64]*spInst

	// ready is a double-ended run queue in classic work-stealing
	// arrangement: the worker itself pushes and pops at the top (LIFO,
	// depth-first — it digs into the most recently spawned SP and its
	// children), while steal requests are served from the bottom, where
	// the oldest not-yet-started SPs sit. Depth-first local execution is
	// what keeps the bottom stealable: a breadth-first worker touches
	// every queued SP once during ramp-up, leaving only in-flight
	// instances that cannot migrate. Removal anywhere is O(1): bottom
	// removals advance readyHead over a dead prefix, mid-deque grants
	// leave nil tombstones (readyNil counts them) that the top pop skips,
	// and compactReady squeezes the dead entries out once they outnumber
	// the live ones — so neither the prefix nor the tombstones can grow
	// without bound on a long run whose queue never fully drains.
	ready     []*spInst
	readyHead int
	readyNil  int

	// waitArray holds SPs suspended mid-instruction on an array whose
	// header has not arrived yet (an alloc broadcast from another PE can
	// lose the race against a handle forwarded through a third PE).
	waitArray map[int64][]*spInst
	// pending holds remote messages (reads, writes) for such arrays.
	pending map[int64][]*Msg

	nextSP  int64
	nextArr int64

	// sent/recv count worker-to-worker data messages for termination
	// detection (driver traffic is control-plane and excluded).
	sent, recv int64

	// instrs counts executed instructions (the per-PE load metric the
	// SKEW experiment reports).
	instrs int64

	// Work stealing (enabled by Config.Steal). forwards maps the home ID
	// of a stolen SP to the endpoint it was granted to: any token that
	// arrives for the home ID is relayed there, and the relay itself
	// counts in sent/recv so four-counter termination stays sound. halted
	// records stolen-in SPs that ran here to completion — the forwarding
	// relay is the one path that can legally deliver a token after its
	// target's last consumed slot, so late tokens for those IDs are
	// dropped instead of failing the run. A home-spawned SP that never
	// migrated keeps the old invariant: a token after its HALT is a
	// protocol bug and fails loudly. Both maps are bounded by the number
	// of migrations, not total SPs.
	steal            bool
	stealOne         bool // legacy single-grant mode (A/B comparisons in tests)
	forwards         map[int64]int
	halted           map[int64]struct{}
	stealVictim      int   // round-robin cursor over peers
	stealFails       int   // consecutive KStealNone answers since last work
	stealWait        int   // idle wake-ups to skip before the next attempt
	dormantProbes    int   // probe rounds observed while dormant
	stealOutstanding bool  // one request in flight at a time
	steals           int64 // SPs stolen and installed here
	forwarded        int64 // tokens relayed through forwarding stubs
	lateTokens       int64 // tokens dropped for halted SPs

	// Steal-grant replay protection. A victim numbers the grants it sends
	// each thief (grantSeq); a thief remembers the highest grant sequence
	// applied per (victim, incarnation) (seenGrant) and drops a whole
	// grant at or below that mark, so a re-delivered completed grant can
	// never double-apply its SPs. Incarnation-keyed: a respawned victim's
	// counters legitimately restart from 1.
	grantSeq  map[int]int64
	seenGrant map[grantKey]int64
	dupGrants int64 // grants dropped by the sequence fence

	// job is the owning job's ID on a fleet (0 in direct single-run
	// harnesses); packed into every minted SP/array/sweep ID so two jobs'
	// object namespaces can never collide.
	job int32

	// Failure recovery (enabled by Config.Recover). inc is this worker's
	// own incarnation (0 for an original, >0 for a replacement); incs is
	// the known incarnation of every PE, updated by KRecover — frames from
	// an older incarnation of their sender are dropped at the handle
	// boundary. epoch is the termination-counting epoch: each recovery
	// bumps it and zeroes sent/recv everywhere, so the four-counter sums
	// never chase message counts that died with a worker. The logs hold
	// this worker's share of a dead peer's replayable state: writeLog the
	// remote writes it sent each PE, outReads its in-flight remote reads
	// (re-issued when the owner is respawned with an empty shard), and
	// grantLog deep copies of steal grants (re-instantiated when the thief
	// dies holding them; dropped when KStealDone reports completion).
	recover   bool
	inc       int32
	epoch     int32
	minEpoch  int32 // epoch this incarnation was born into (birth fence)
	incs      []int32
	recovered bool  // some recovery has happened: tolerate duplicate-execution tokens
	staleMsgs int64 // frames and tokens dropped by incarnation fencing
	deadSends int64 // peer sends dropped on transport failure (replay covers them)
	writeLog  map[int][]writeRec
	outReads  map[outReadKey]outRead
	grantLog  map[int64]grantRec
	allocLog  []*istructure.Header // arrays this worker allocated (broadcasts replayed)
	fanoutLog []fanoutRec          // SPAWND fan-outs this worker performed
	replayed  int64                // SPs this worker re-sent or re-instantiated for replacements

	// Replay-log GC (driver-coordinated checkpoints; see KCkpt). arrays
	// lists every installed array ID, the iteration order for checkpoint
	// dumps of owned segments. ckpt* is the in-flight checkpoint: its ID,
	// the per-destination write-log cut recorded when it started, and the
	// sweeps it proposes to GC. ckptMark records peer marks keyed by
	// checkpoint ID — a peer's mark can overtake this worker's own KCkpt
	// (different FIFO streams), so early marks are held until the KCkpt
	// names them. Stale entries are pruned when the next checkpoint starts.
	arrays     []int64
	ckptID     int64
	ckptDumped bool
	ckptCuts   map[int]int
	ckptSweeps []int64
	ckptMark   map[int64]map[int]bool

	// Epoch flushing. A frame sent in an older epoch is invisible to the
	// new epoch's counters on both ends, so the sums alone cannot prove
	// it has landed. Each worker therefore sends a KFlush marker to every
	// peer when it adopts a new epoch (after repointing — the marker
	// trails every pre-epoch frame on each FIFO stream), and reports
	// Flushed in its acks once it holds markers from all peers: only then
	// can no uncounted frame still be in flight toward it. flushFrom
	// tracks the current epoch's markers.
	flushFrom []bool
	flushed   int

	// Adaptive repartitioning (enabled by Config.Adapt). cuts holds the
	// latest KRebound cut vector per distributed loop template; a SPAWND
	// fan-out of such a loop stamps each copy with its PE's explicit
	// bounds, so one spawner fixes one consistent partition per sweep.
	// costAcc accumulates executed-instruction counts per (loop, sweep,
	// iteration) between probe flushes; nextSweep numbers this worker's
	// fan-outs (packed with the PE index into a globally unique sweep ID).
	adapt     bool
	cuts      map[int][]int64
	costAcc   map[costKey]int64
	nextSweep int64

	// heat is the worker-side page-heat machinery (Config.Heat): the
	// prefetch dedup and credit tables, the adaptive-cap governor, and
	// the prefetch counters. See heat.go.
	heat heatState

	// sliceSteps counts step() calls since the last cooperative yield.
	sliceSteps int

	// tr is the observability event recorder (Config.Trace); nil when
	// tracing is off, so every hook is a single nil check. pub remembers
	// the counter values already published to the process-wide expvar
	// metrics, so each probe ack publishes only the delta.
	tr  *trace.Recorder
	pub pubCounters

	failed  bool
	stopped bool
}

// rec records one trace event when tracing is on. The worker's instruction
// counter is the event's deterministic timestamp.
func (w *worker) rec(k trace.Kind, arg0, arg1 int64) {
	if w.tr != nil {
		w.tr.Record(k, w.instrs, arg0, arg1)
	}
}

// qdepth reports the live ready-queue depth (tombstones excluded).
func (w *worker) qdepth() int64 {
	return int64(len(w.ready) - w.readyHead - w.readyNil)
}

// costKey identifies one cost-accounting bucket: the Range-Filtered loop
// template, the SPAWND fan-out (sweep), and the iteration index.
type costKey struct {
	loop  int32
	sweep int64
	iter  int64
}

// writeRec is one logged remote write (replayed to a respawned owner).
type writeRec struct {
	arr int64
	off int32
	val isa.Value
}

// outReadKey identifies one in-flight remote read by its delivery target.
type outReadKey struct {
	sp   int64
	slot int32
}

// outRead is the request half of an in-flight remote read, kept so it can
// be re-issued against a respawned owner whose deferred-read queues died
// with its shard.
type outRead struct {
	arr   int64
	off   int32
	owner int
}

// grantRec is a deep copy of one steal grant: enough to re-instantiate the
// SP if the thief dies holding it. from is where this worker itself got
// the SP (-1 if home-spawned here) — the hop a KStealDone is relayed to.
type grantRec struct {
	item  StealItem
	thief int
	from  int
}

// grantKey identifies one victim incarnation in a thief's seenGrant table.
type grantKey struct {
	pe  int
	inc int32
}

// fanoutRec is one SPAWND fan-out this worker performed: the spawner is
// the one authority on what each PE was assigned, so a respawned peer's
// copy is replayed from here — no wire race can lose it. cuts aliases the
// cut vector stamped at fan-out time (replaced wholesale by rebinds, never
// mutated), so the replayed copy carries bit-identical bounds.
type fanoutRec struct {
	tmpl  int32
	args  []isa.Value
	sweep int64
	cuts  []int64
}

func newWorker(pe, n int, geo rtcfg.Geometry, prog *isa.Program, ep Endpoint, opts workerOpts) *worker {
	w := &worker{
		pe:          pe,
		n:           n,
		geo:         geo,
		prog:        prog,
		ep:          ep,
		steal:       opts.steal && n > 1,
		adapt:       opts.adapt && n > 1,
		shard:       istructure.NewShard(pe),
		insts:       make(map[int64]*spInst),
		waitArray:   make(map[int64][]*spInst),
		pending:     make(map[int64][]*Msg),
		forwards:    make(map[int64]int),
		halted:      make(map[int64]struct{}),
		costAcc:     make(map[costKey]int64),
		stealVictim: pe, // first attempt targets (pe+1) mod n
	}
	w.shard.CacheCap = opts.cachePages
	if opts.heat {
		w.heat = newHeatState(opts.cachePages)
	}
	if opts.trace {
		w.tr = trace.New(opts.traceCap, opts.traceSample)
		// The shard's eviction point is the one place a cached page dies;
		// hooking it there catches both InstallPage paths.
		w.shard.OnEvict = func(arr int64, page int) {
			w.tr.Record(trace.EvPageEvict, w.instrs, arr, int64(page))
		}
	}
	return w
}

// enableRecovery arms the worker-side recovery machinery: incarnation
// fencing, epoch-reset termination counting, write/grant logging,
// outstanding-read tracking, and idempotent absorption of replayed writes.
// inc is this worker's own incarnation (>0 for a replacement), epoch the
// counting epoch it joins, incs the known incarnation of every PE.
func (w *worker) enableRecovery(inc, epoch int32, incs []int32) {
	w.recover = true
	w.inc = inc
	w.epoch = epoch
	w.minEpoch = epoch
	if incs == nil {
		incs = make([]int32, w.n)
	}
	w.incs = incs
	w.recovered = inc > 0 || epoch > 0
	w.writeLog = make(map[int][]writeRec)
	w.outReads = make(map[outReadKey]outRead)
	w.grantLog = make(map[int64]grantRec)
	w.flushFrom = make([]bool, w.n)
	w.shard.Idempotent = true
	if epoch > 0 {
		// A replacement joins mid-run: its streams carry no pre-epoch
		// frames, so its markers can go out immediately.
		w.sendFlush()
	}
}

// bumpEpoch adopts a newer counting epoch: zero the four-counter halves
// and invalidate the previous epoch's flush markers. The worker's own
// markers go out via sendFlush once the transport is repointed (KRecover),
// or immediately for a freshly-joined replacement.
func (w *worker) bumpEpoch(epoch int32) {
	w.epoch = epoch
	w.sent, w.recv = 0, 0
	w.recovered = true
	w.rec(trace.EvEpoch, int64(epoch), 0)
	if w.flushFrom != nil {
		clear(w.flushFrom)
		w.flushed = 0
	}
	// An in-flight checkpoint dies with the old epoch: the driver aborts it
	// on its side (the proposed sweeps return to pending) and a stale mark
	// or OK must not resurrect it here. Aborted checkpoint IDs are never
	// reused, so clearing the mark table cannot lose marks of a live one.
	w.ckptID = 0
	w.ckptDumped = false
	w.ckptCuts = nil
	w.ckptSweeps = nil
	w.ckptMark = nil
}

// sendFlush announces this worker's current epoch to every peer. Sent
// after a bump's repointing, so each per-pair FIFO stream delivers the
// marker behind every frame this worker emitted in older epochs.
func (w *worker) sendFlush() {
	for pe := 0; pe < w.n; pe++ {
		if pe == w.pe {
			continue
		}
		w.send(pe, &Msg{Kind: KFlush})
	}
}

// epochFlushed reports whether this worker has proof that no frame from an
// older counting epoch can still be in flight toward it.
func (w *worker) epochFlushed() bool {
	return w.epoch == 0 || w.flushed == w.n-1
}

// driverID is the endpoint index of the driver for this worker's cluster.
func (w *worker) driverID() int { return w.n }

// send transmits m to endpoint `to`, counting worker-to-worker data traffic.
// Every frame is stamped with the sender's epoch and incarnation so
// receivers can fence a dead predecessor's traffic and keep the counting
// epochs coherent.
func (w *worker) send(to int, m *Msg) {
	m.Epoch, m.Inc = w.epoch, w.inc
	if to != w.driverID() && m.Kind.isData() {
		w.sent++
	}
	if err := w.ep.Send(to, m); err != nil {
		if errors.Is(err, ErrClosed) {
			// This worker's own endpoint is gone — the fault injector fired
			// or the run is shutting down. The "machine" is off: go silent.
			w.stopped = true
			return
		}
		if w.recover && to != w.driverID() {
			// The peer is unreachable — dead, dying, or being replaced.
			// Dropping the frame is recoverable: every durable effect a
			// worker sends a peer is covered by a replay log (writes,
			// headers, fan-outs, grants, outstanding reads), and tokens
			// addressed to the dead incarnation are moot once its work is
			// re-executed under fresh IDs. If no recovery comes, the probe
			// round stalls and fails the run with diagnostics. The sent
			// count stays in place, keeping the sums unequal until the
			// recovery epoch resets them — a lost frame can never fake
			// termination.
			w.deadSends++
			return
		}
		w.fail(err)
	}
}

// fail reports the first fatal error to the driver and stops executing SPs.
// The worker keeps serving control messages until the driver says stop.
// The frame is stamped like every other send — a replacement's unstamped
// KFail would be dropped by the driver's incarnation fence and turn a
// loud failure into a hang.
func (w *worker) fail(err error) {
	if w.failed {
		return
	}
	w.failed = true
	_ = w.ep.Send(w.driverID(), &Msg{Kind: KFail, Epoch: w.epoch, Inc: w.inc,
		Name: fmt.Sprintf("pe %d: %v", w.pe, err)})
}

// enqueue appends an SP to the ready queue. Arriving work also resets the
// steal backoff: the worker is demonstrably not starving, so the next idle
// spell starts probing victims from scratch.
func (w *worker) enqueue(sp *spInst) {
	w.compactReady()
	w.ready = append(w.ready, sp)
	w.stealFails = 0
	w.stealWait = 0
}

// compactReady reclaims the deque's dead entries — the nil prefix left by
// bottom (steal) removals plus the mid-deque tombstones — once they
// outnumber the live entries. The old code only reset on a full drain, so
// a long run whose queue never emptied grew the slice without bound.
// Amortized O(1): each compaction moves at most as many live entries as
// dead ones were reclaimed.
func (w *worker) compactReady() {
	dead := w.readyHead + w.readyNil
	if dead == 0 || dead*2 <= len(w.ready) {
		return
	}
	live := w.ready[:0]
	for _, sp := range w.ready[w.readyHead:] {
		if sp != nil {
			live = append(live, sp)
		}
	}
	for i := len(live); i < len(w.ready); i++ {
		w.ready[i] = nil
	}
	w.ready = live
	w.readyHead, w.readyNil = 0, 0
}

// debugDump prints this worker's live state to stderr when
// PODS_CLUSTER_DEBUG is set (deadlock diagnosis in tests).
func (w *worker) debugDump(why string) {
	if os.Getenv("PODS_CLUSTER_DEBUG") == "" {
		return
	}
	for id, sp := range w.insts {
		fmt.Fprintf(os.Stderr, "DEBUG(%s) pe %d inc %d live SP %d (job %d pe %d inc %d) tmpl %q pc %d blocked %d stolen %v\n",
			why, w.pe, w.inc, id, jobOf(id), peOf(id), incOf(id), sp.tmpl.Name, sp.pc, sp.blocked, sp.stolen)
	}
	fmt.Fprintf(os.Stderr, "DEBUG(%s) pe %d inc %d pendingReads %d waitArray %d outReads %d ready %d epoch %d sent %d recv %d\n",
		why, w.pe, w.inc, w.shard.PendingReads(), len(w.waitArray), len(w.outReads), len(w.ready)-w.readyHead-w.readyNil, w.epoch, w.sent, w.recv)
}

// run is the worker main loop: drain the mailbox, then execute ready SPs;
// block on the endpoint when there is nothing to do — after first trying
// to steal work from a peer if stealing is enabled.
func (w *worker) run(ctx context.Context) {
	for !w.stopped {
		for {
			m, ok := w.ep.TryRecv()
			if !ok {
				break
			}
			w.handle(m)
			if w.stopped {
				return
			}
		}
		if w.failed || w.readyHead == len(w.ready) {
			w.maybeSteal()
			m, err := w.ep.Recv(ctx)
			if err != nil {
				w.debugDump("recv-exit")
				return
			}
			w.handle(m)
			continue
		}
		w.step()
		// Yield to the Go scheduler periodically. On a host with fewer
		// cores than PEs a compute-bound worker would otherwise hold its
		// core for a whole preemption quantum (~10ms), serializing the
		// "parallel" PEs into long bursts and stretching a steal
		// request/grant round trip to multiple quanta. A cooperative
		// yield every few steps keeps the PEs finely interleaved — much
		// closer to the paper's independent-processor model — for ~100ns
		// every couple thousand instructions. With idle cores available
		// the yield is a no-op.
		w.sliceSteps++
		if w.sliceSteps >= yieldEvery {
			w.sliceSteps = 0
			runtime.Gosched()
		}
	}
}

// yieldEvery is the number of step() calls between cooperative yields.
const yieldEvery = 64

// stealReviveProbes is the number of probe rounds a dormant worker waits
// before retrying a full steal sweep.
const stealReviveProbes = 8

// stealDormantAfter returns the consecutive-failure count after which an
// idle worker stops asking: two full sweeps of its peers. Termination
// detection does not need the bound (request/none traffic is not counted
// by the four counters), but an endgame where every idle worker polls
// every busy worker each probe round is pure overhead; going dormant until
// new work arrives caps it. Any newly enqueued work resets the counter.
func (w *worker) stealDormantAfter() int { return 2 * (w.n - 1) }

// maybeSteal sends one KStealReq when this worker is idle and allowed to:
// stealing enabled, nothing in flight, backoff elapsed, not dormant. The
// victim is chosen round-robin over the other PEs; each KStealNone grows
// the wait linearly (idle wake-ups are paced by incoming traffic — in the
// steady state, the driver's probe rounds).
func (w *worker) maybeSteal() {
	if !w.steal || w.failed || w.stopped || w.stealOutstanding {
		return
	}
	if w.stealFails >= w.stealDormantAfter() {
		return
	}
	if w.stealWait > 0 {
		w.stealWait--
		return
	}
	w.stealVictim = (w.stealVictim + 1) % w.n
	if w.stealVictim == w.pe {
		w.stealVictim = (w.stealVictim + 1) % w.n
	}
	w.stealOutstanding = true
	w.rec(trace.EvStealReq, int64(w.stealVictim), 0)
	// The request advertises what is hot here, so the victim can prefer
	// granting SPs whose operands this worker already holds — a stolen
	// iteration that reads a hot operand pays cache hits instead of fresh
	// page fetches. In heat mode the summary is page-granular (it can
	// tell apart iterations of a single shared array); otherwise it is
	// the legacy array-granular list.
	req := &Msg{Kind: KStealReq}
	if w.heat.on {
		req.HotPages = w.hotPagePairs(stealHotMax)
	} else {
		req.Hot = w.shard.HotArrays(stealHotMax)
	}
	w.send(w.stealVictim, req)
}

// stealHotMax caps the hot-array summary a steal request carries.
const stealHotMax = 16

// stealBatch selects and removes up to half of the stealable backlog for a
// thief whose locality summary is hot (array-granular) or hotPages
// (page-granular (array, page) pairs, heat mode): nil when the victim is
// unloaded (fewer than two live entries — it must stay loaded after
// granting) or holds only in-flight SPs. Selection prefers SPs whose
// operands are resident at the thief (more hot operands first) and is
// stable within equal locality, so with no locality signal the grant is
// the oldest not-yet-started SPs in age order — for a loop nest, whole
// outer iterations rather than inner fragments. Removal never shifts the
// deque: the bottom entry advances readyHead, mid-deque entries become nil
// tombstones (amortized O(1) per grant, reclaimed by compactReady).
//
// Distributed (Range-Filtered) templates are pinned: their ROWLO/UNIFLO/…
// instructions clamp the index range to the executing PE's area of
// responsibility, so running one on a different PE would recompute that
// PE's share — a double write, not a migration. Everything else is
// location-independent: its inputs travel in the operand frame.
func (w *worker) stealBatch(hot, hotPages []int64) []*spInst {
	live := len(w.ready) - w.readyHead - w.readyNil
	if live < 2 {
		return nil
	}
	var cand []int // deque indices of stealable SPs, oldest first
	for i := w.readyHead; i < len(w.ready); i++ {
		sp := w.ready[i]
		if sp == nil || sp.pc != 0 || sp.tmpl.Distributed {
			continue
		}
		if w.recover && sp.stolen {
			// With recovery armed, a stolen-in SP is pinned: re-granting it
			// would chain grant records across PEs, and a middle hop dying
			// after the SP started at the final thief would make its
			// grantor re-instantiate a second live copy under the same home
			// ID — the two copies would race for each other's tokens. A
			// one-hop migration keeps exactly one re-instantiation
			// authority per grant.
			continue
		}
		cand = append(cand, i)
	}
	if len(cand) == 0 {
		return nil
	}
	limit := (len(cand) + 1) / 2 // steal-half, rounded up so one SP still moves
	if limit > live-1 {
		limit = live - 1
	}
	if w.stealOne {
		// Legacy PR 2 policy for A/B comparisons: one SP, oldest first,
		// locality-blind.
		limit, hot, hotPages = 1, nil, nil
	}
	if (len(hot) > 0 || len(hotPages) > 1) && len(cand) > 1 {
		// Score each candidate once (the comparator would otherwise
		// rescan every operand frame O(log k) times per candidate).
		scores := make(map[int]int, len(cand))
		if len(hotPages) > 1 {
			// Page-granular (heat mode): rank by the operand rows the
			// thief actually holds.
			pageSet := make(map[heatKey]struct{}, len(hotPages)/2)
			for i := 0; i+1 < len(hotPages); i += 2 {
				pageSet[heatKey{hotPages[i], int(hotPages[i+1])}] = struct{}{}
			}
			for _, idx := range cand {
				scores[idx] = w.pageScore(w.ready[idx], pageSet)
			}
		} else {
			hotSet := make(map[int64]struct{}, len(hot))
			for _, id := range hot {
				hotSet[id] = struct{}{}
			}
			for _, idx := range cand {
				sp := w.ready[idx]
				n := 0
				for s, v := range sp.frame {
					if sp.present[s] && v.Kind == isa.KindArray {
						if _, ok := hotSet[v.I]; ok {
							n++
						}
					}
				}
				scores[idx] = n
			}
		}
		sort.SliceStable(cand, func(i, j int) bool {
			return scores[cand[i]] > scores[cand[j]]
		})
	}
	if len(cand) > limit {
		cand = cand[:limit]
	}
	batch := make([]*spInst, len(cand))
	for i, idx := range cand {
		batch[i] = w.ready[idx]
		w.ready[idx] = nil
		w.readyNil++
	}
	// Normalize: tombstones at the bottom become dead prefix.
	for w.readyHead < len(w.ready) && w.ready[w.readyHead] == nil {
		w.readyHead++
		w.readyNil--
	}
	w.compactReady()
	return batch
}

// handleStealReq answers a peer's steal request: grant up to half of the
// stealable backlog in one batch (leaving a forwarding stub per home ID)
// or decline.
func (w *worker) handleStealReq(m *Msg) {
	thief := int(m.From)
	if thief < 0 || thief >= w.n || thief == w.pe {
		w.fail(fmt.Errorf("steal request from invalid PE %d", thief))
		return
	}
	var batch []*spInst
	if !w.failed {
		batch = w.stealBatch(m.Hot, m.HotPages)
	}
	if len(batch) == 0 {
		w.send(thief, &Msg{Kind: KStealNone})
		return
	}
	items := make([]StealItem, len(batch))
	for i, sp := range batch {
		// The SP leaves this worker's live set the moment it is granted;
		// the grant in flight keeps the four counters unequal, so a probe
		// round cannot terminate around the migrating batch. One stub per
		// item relays tokens addressed to the home IDs.
		delete(w.insts, sp.id)
		w.forwards[sp.id] = thief
		// The frame slices travel with the grant; the receiver owns them
		// now. The cost-attribution tag travels too, so a migrated
		// iteration keeps billing the iteration (on the loop that spawned
		// it) that caused it.
		items[i] = StealItem{
			SP:       sp.id,
			Tmpl:     int32(sp.tmpl.ID),
			CostLoop: sp.costLoop,
			Sweep:    sp.costSweep,
			CostIter: sp.costIter,
			Args:     sp.frame,
			Set:      sp.present,
		}
		if w.recover {
			// A deep copy stays behind: if the thief's incarnation dies
			// holding the SP, this worker re-instantiates it from the copy.
			// The record is dropped when KStealDone reports completion.
			it := items[i]
			it.Args = append([]isa.Value(nil), sp.frame...)
			it.Set = append([]bool(nil), sp.present...)
			w.grantLog[sp.id] = grantRec{item: it, thief: thief, from: sp.grantedFrom}
		}
	}
	w.rec(trace.EvStealGrant, int64(thief), int64(len(items)))
	// Grants to each thief are numbered from 1 so the thief can fence a
	// re-delivered (replayed) grant it has already applied.
	if w.grantSeq == nil {
		w.grantSeq = make(map[int]int64)
	}
	w.grantSeq[thief]++
	w.send(thief, &Msg{Kind: KStealGrant, Seq: w.grantSeq[thief], Batch: items})
}

// handleStealDone retires one completed steal grant: the stub becomes a
// halted tombstone (late tokens drop here instead of relaying to a thief
// that would drop them anyway), the grant record is freed, and the notice
// is relayed one hop toward the SP's home so the whole chain cleans up.
func (w *worker) handleStealDone(m *Msg) {
	e, ok := w.grantLog[m.SP]
	if !ok {
		return
	}
	delete(w.grantLog, m.SP)
	delete(w.forwards, m.SP)
	w.halted[m.SP] = struct{}{}
	if e.from >= 0 {
		w.send(e.from, &Msg{Kind: KStealDone, SP: m.SP})
	}
}

// applyRecover handles a KRecover announcement on a surviving worker:
// adopt the new counting epoch, fence the dead incarnations, repoint the
// transport at the replacement addresses, and replay this worker's share
// of the lost state toward each respawned PE.
func (w *worker) applyRecover(m *Msg) {
	if m.Epoch > w.epoch {
		w.bumpEpoch(m.Epoch)
	}
	w.recovered = true
	if w.incs == nil {
		w.incs = make([]int32, w.n)
	}
	var dead []int
	for pe, inc := range m.Incs {
		if pe < len(w.incs) && pe != w.pe && inc > w.incs[pe] {
			w.incs[pe] = inc
			dead = append(dead, pe)
		}
	}
	if len(m.Peers) > 0 {
		if rp, ok := w.ep.(interface{ Repoint([]string) }); ok {
			rp.Repoint(m.Peers)
		}
	}
	for _, k := range dead {
		w.replayFor(k)
	}
	// Markers last: the transport now points at the replacements, and on
	// every stream the marker trails all of this worker's older-epoch
	// frames (and the replays above, which is fine — they are counted in
	// the current epoch).
	w.sendFlush()
}

// replayFor re-creates this worker's share of a respawned PE k's lost
// state. Single assignment is what makes each piece replayable without
// coordination: re-sent writes are absorbed idempotently, re-issued reads
// fetch immutable data, and re-instantiated SPs regenerate exactly the
// values their first execution produced.
func (w *worker) replayFor(k int) {
	// Headers this worker allocated: the original broadcast to k may have
	// died with the old incarnation (or been dropped while its address was
	// dark), and nothing re-executes a completed ALLOC — so the broadcast
	// itself is replayed, and duplicate installs are absorbed.
	for _, h := range w.allocLog {
		w.send(k, allocMsg(h))
	}
	// The dead shard's owned segments lost every remote write this worker
	// ever sent it; play the log back so the replacement's store converges
	// with what the survivors have already read.
	for _, wr := range w.writeLog[k] {
		w.send(k, &Msg{Kind: KWrite, Arr: wr.arr, Off: wr.off, Val: wr.val})
	}
	// Every fan-out this worker performed is re-sent: k's copy of each one
	// died with its shard (or on the wire), and re-execution regenerates
	// exactly the writes the first execution produced, absorbed
	// idempotently where they overlap surviving state.
	for i := range w.fanoutLog {
		f := &w.fanoutLog[i]
		m := &Msg{Kind: KSpawn, Tmpl: f.tmpl, Sweep: f.sweep,
			Args: append([]isa.Value(nil), f.args...)}
		if f.cuts != nil {
			m.RngOn = true
			m.RngLo, m.RngHi = cutBounds(f.cuts, k, w.n)
		}
		w.send(k, m)
		w.replayed++
	}
	// In-flight reads owned by k — requested, queued as deferred reads in
	// the dead shard, or answered by a page that died on the wire — are
	// re-issued against the replacement; the blocked SPs wake when the
	// replayed writes land.
	for key, rd := range w.outReads {
		if rd.owner != k {
			continue
		}
		w.send(k, &Msg{Kind: KReadReq, Arr: rd.arr, Off: rd.off,
			ReqPE: int32(w.pe), SP: key.sp, Slot: key.slot})
	}
	// SPs granted to the dead incarnation are re-instantiated from the
	// grant-time copies and run here as if the steal never happened.
	for id, e := range w.grantLog {
		if e.thief != k {
			continue
		}
		delete(w.grantLog, id)
		delete(w.forwards, id)
		tmpl := w.prog.Template(int(e.item.Tmpl))
		if tmpl == nil {
			w.fail(fmt.Errorf("grant log for %d names unknown template %d", id, e.item.Tmpl))
			return
		}
		sp := &spInst{
			id:          id,
			tmpl:        tmpl,
			frame:       e.item.Args,
			present:     e.item.Set,
			blocked:     isa.None,
			stolen:      e.from >= 0,
			grantedFrom: e.from,
			costLoop:    e.item.CostLoop,
			costSweep:   e.item.Sweep,
			costIter:    e.item.CostIter,
		}
		w.insts[id] = sp
		w.enqueue(sp)
		w.replayed++
	}
	// Conversely, not-yet-started SPs the dead incarnation granted *to*
	// this worker are discarded: their grantor (or the replacement's
	// replay) re-creates them, and an untouched queue entry has produced
	// no observable effect, so dropping it is always safe and prevents
	// double execution.
	for i := w.readyHead; i < len(w.ready); i++ {
		sp := w.ready[i]
		if sp == nil || !sp.stolen || sp.pc != 0 ||
			sp.grantedFrom != k || sp.grantedInc >= w.incs[k] {
			continue
		}
		delete(w.insts, sp.id)
		w.ready[i] = nil
		w.readyNil++
	}
	for w.readyHead < len(w.ready) && w.ready[w.readyHead] == nil {
		w.readyHead++
		w.readyNil--
	}
	w.compactReady()
	// A steal request addressed to the dead incarnation will never be
	// answered; clear the in-flight latch so this worker can ask again.
	if w.stealOutstanding && w.stealVictim == k {
		w.stealOutstanding = false
	}
}

// installStolen installs each granted SP under its home ID and runs it as
// if it had been spawned here.
func (w *worker) installStolen(m *Msg) {
	w.stealOutstanding = false
	if len(m.Batch) == 0 {
		w.fail(errors.New("empty steal grant"))
		return
	}
	// Grant-sequence fence: a victim numbers its grants per thief, and a
	// re-delivered grant at or below the highest sequence already applied
	// from this (victim, incarnation) is dropped whole — its SPs were
	// installed (and may have run to completion) the first time, so
	// re-applying would fail the duplicate-live-SP check at best and run the
	// work twice at worst. Keyed by incarnation: a respawned victim's
	// numbering legitimately restarts from 1.
	key := grantKey{pe: int(m.From), inc: m.Inc}
	if m.Seq != 0 {
		if w.seenGrant == nil {
			w.seenGrant = make(map[grantKey]int64)
		}
		if m.Seq <= w.seenGrant[key] {
			w.dupGrants++
			return
		}
		w.seenGrant[key] = m.Seq
	}
	w.rec(trace.EvStealIn, int64(m.From), int64(len(m.Batch)))
	for i := range m.Batch {
		it := &m.Batch[i]
		tmpl := w.prog.Template(int(it.Tmpl))
		if tmpl == nil {
			w.fail(fmt.Errorf("steal grant with unknown template %d", it.Tmpl))
			return
		}
		if len(it.Args) != tmpl.NSlots || len(it.Set) != tmpl.NSlots {
			w.fail(fmt.Errorf("steal grant for %q with %d/%d slots, want %d",
				tmpl.Name, len(it.Args), len(it.Set), tmpl.NSlots))
			return
		}
		if w.insts[it.SP] != nil {
			w.fail(fmt.Errorf("steal grant duplicates live SP %d", it.SP))
			return
		}
		// Re-acquiring an SP this worker once granted away must clear its
		// own stale stub, or the stub chain forms a relay cycle once the
		// SP halts here (deliver prefers forwards over halted).
		delete(w.forwards, it.SP)
		delete(w.grantLog, it.SP)
		sp := &spInst{
			id:          it.SP,
			tmpl:        tmpl,
			frame:       it.Args,
			present:     it.Set,
			blocked:     isa.None,
			stolen:      true,
			grantedFrom: int(m.From),
			grantedInc:  m.Inc,
			costLoop:    it.CostLoop,
			costSweep:   it.Sweep,
			costIter:    it.CostIter,
		}
		w.insts[sp.id] = sp
		w.steals++
		w.enqueue(sp)
	}
}

// handle dispatches one incoming message.
func (w *worker) handle(m *Msg) {
	// Incarnation fence: a frame from a dead incarnation of its sender is
	// dropped whole, whatever its kind. Every effect the old incarnation
	// produced is regenerated by the replay protocol, so processing the
	// stale frame could only duplicate or corrupt — and a zombie (a worker
	// presumed dead that is still limping) is silenced the same way.
	if f := int(m.From); f >= 0 && f < w.n && w.incs != nil && m.Inc < w.incs[f] {
		w.staleMsgs++
		return
	}
	// Birth-epoch fence: a replacement joins at its recovery's new epoch,
	// and any peer frame stamped with an older one was in flight toward
	// its dead predecessor (on a fleet, the re-homed host faithfully
	// stashes and delivers traffic a severed mailbox used to drop). The
	// predecessor's requests died with it and everything durable is
	// replayed under the new epoch, so a pre-birth frame can only
	// duplicate or corrupt. Driver frames are exempt: the driver's stream
	// is repointed at respawn, so nothing pre-birth survives on it.
	if int(m.From) != w.driverID() && m.Epoch < w.minEpoch {
		w.staleMsgs++
		return
	}
	// Epoch piggyback: a frame from a newer counting epoch proves a
	// recovery happened; adopt it before counting so the four-counter sums
	// only ever mix messages of one epoch. (The KRecover that explains the
	// epoch follows on the driver stream; the counters cannot wait for it.)
	if m.Epoch > w.epoch {
		w.bumpEpoch(m.Epoch)
	}
	if m.Kind.isData() && int(m.From) != w.driverID() && m.Epoch == w.epoch {
		w.recv++
	}
	switch m.Kind {
	case KSpawn:
		tmpl := w.prog.Template(int(m.Tmpl))
		if tmpl == nil {
			w.fail(fmt.Errorf("spawn of unknown template %d", m.Tmpl))
			return
		}
		sp := w.instantiate(tmpl, m.Args)
		if sp != nil && m.Sweep != 0 {
			// A distributed fan-out copy: it charges its subtree to this
			// sweep and, when stamped, overrides its Range Filter with the
			// explicit bounds the spawner computed for this PE.
			sp.costLoop, sp.costSweep = m.Tmpl, m.Sweep
			if m.RngOn {
				sp.rbOn, sp.rbLo, sp.rbHi = true, m.RngLo, m.RngHi
			}
		}

	case KToken:
		w.deliver(m.SP, int(m.Slot), m.Val)

	case KAlloc:
		dims := make([]int, len(m.Dims))
		for i, d := range m.Dims {
			dims[i] = int(d)
		}
		h, err := istructure.NewHeader(m.Arr, m.Name, dims, w.geo.PageElems, w.n, int(m.Origin), m.Dist)
		if err != nil {
			w.fail(err)
			return
		}
		w.installArray(h)

	case KReadReq:
		w.handleReadReq(m)

	case KPage:
		w.handlePage(m)

	case KWrite:
		w.handleWrite(m)

	case KProbe:
		// A dormant worker revives after a few probe rounds: skew that
		// arrives late (a victim whose queue grows only after the thieves
		// gave up) would otherwise never be stolen for the rest of the
		// run. The endgame cost is bounded — at most one fruitless sweep
		// of the peers every stealReviveProbes rounds, none of it counted
		// by the four-counter detector.
		if w.stealFails >= w.stealDormantAfter() {
			w.dormantProbes++
			if w.dormantProbes >= stealReviveProbes {
				w.dormantProbes = 0
				w.stealFails = 0
				w.stealWait = 0
			}
		}
		// Flush cost observations before the ack: per-sender FIFO then
		// guarantees the driver has merged this worker's reports by the
		// time it evaluates the round, so a rebind decision made at a
		// round boundary never misses costs the round's acks imply.
		w.flushCosts()
		// The adaptive cache cap ticks on the probe cadence: the round's
		// refetch and eviction deltas are the pressure signal, and a cap
		// move takes effect immediately (growth) or at the next install
		// (shrink, via InstallPage's shrink loop).
		if w.heat.on && w.heat.gov.enabled() {
			rd := w.shard.Refetches - w.heat.lastRefetches
			ed := w.shard.Evictions - w.heat.lastEvicts
			w.heat.lastRefetches, w.heat.lastEvicts = w.shard.Refetches, w.shard.Evictions
			if cap, changed := w.heat.gov.tick(rd, ed); changed {
				w.shard.CacheCap = cap
				w.rec(trace.EvCacheResize, int64(cap), rd)
			}
		}
		w.rec(trace.EvProbe, int64(m.Round), w.qdepth())
		w.publishMetrics()
		w.send(w.driverID(), &Msg{
			Kind:         KAck,
			Round:        m.Round,
			Sent:         w.sent,
			Recv:         w.recv,
			Live:         int32(len(w.insts)),
			Deferred:     w.shard.DeferredReads,
			Hits:         w.shard.CacheHits,
			Misses:       w.shard.CacheMisses,
			Steals:       w.steals,
			Forwards:     w.forwarded,
			Instrs:       w.instrs,
			Evicts:       w.shard.Evictions,
			Refetches:    w.shard.Refetches,
			Replayed:     w.replayed,
			Flushed:      w.epochFlushed(),
			QDepth:       w.qdepth(),
			Prefetches:   w.heat.prefetches,
			PrefetchHits: w.heat.prefetchHits,
			CacheCapNow:  int64(w.shard.CacheCap),
		})

	case KStealReq:
		w.handleStealReq(m)

	case KStealGrant:
		w.installStolen(m)

	case KStealNone:
		w.stealOutstanding = false
		w.stealFails++
		w.stealWait = w.stealFails
		w.rec(trace.EvStealNone, int64(m.From), 0)

	case KRebound:
		if len(m.Cuts) != w.n-1 {
			w.fail(fmt.Errorf("rebound for template %d with %d cuts, want %d", m.Tmpl, len(m.Cuts), w.n-1))
			return
		}
		if w.cuts == nil {
			w.cuts = make(map[int][]int64)
		}
		old := w.cuts[int(m.Tmpl)]
		w.cuts[int(m.Tmpl)] = m.Cuts
		w.rec(trace.EvRebound, int64(m.Tmpl), 0)
		// Heat mode: iterations gained by the new cut prefetch their rows'
		// pages now, so the adapted copies start warm instead of paying a
		// cold remote fetch each.
		w.migrateHotPages(old, m.Cuts)

	case KRecover:
		w.applyRecover(m)

	case KFlush:
		// An epoch marker from a peer: everything it sent in older epochs
		// has arrived (same FIFO stream). Markers are epoch-scoped.
		if f := int(m.From); m.Epoch == w.epoch && f >= 0 && f < w.n &&
			w.flushFrom != nil && !w.flushFrom[f] {
			w.flushFrom[f] = true
			w.flushed++
		}

	case KStealDone:
		w.handleStealDone(m)

	case KTraceReq:
		// Flush the trace ring to the driver. A worker without a recorder
		// answers with an empty frame so the driver's gather never waits on
		// a PE that has nothing to say.
		ans := &Msg{Kind: KTrace}
		if w.tr != nil {
			ans.TraceEvs = w.tr.Flatten()
			ans.TraceDrops = w.tr.Drops()
		}
		w.send(w.driverID(), ans)

	case KDumpReq:
		w.handleDumpReq(m)

	case KCkpt:
		w.startCkpt(m)

	case KCkptMark:
		w.handleCkptMark(m)

	case KCkptOK:
		w.finishCkpt(m)

	case KRestore:
		w.handleRestore(m)

	case KFail:
		// A peer's transport pump reported a decode/socket error.
		w.fail(errors.New(m.Name))

	case KStop:
		w.debugDump("stop")
		w.stopped = true

	default:
		w.fail(fmt.Errorf("unexpected %s message", m.Kind))
	}
}

// instantiate creates a live SP instance on this worker and returns it so
// the caller can tag it (cost attribution, stamped bounds) before it first
// runs; nil on failure.
func (w *worker) instantiate(tmpl *isa.Template, args []isa.Value) *spInst {
	if len(args) != tmpl.NParams {
		w.fail(fmt.Errorf("%q spawned with %d args, want %d", tmpl.Name, len(args), tmpl.NParams))
		return nil
	}
	w.nextSP++
	sp := &spInst{
		id:          packJobID(w.job, w.pe, w.inc, w.nextSP),
		tmpl:        tmpl,
		frame:       make([]isa.Value, tmpl.NSlots),
		present:     make([]bool, tmpl.NSlots),
		blocked:     isa.None,
		grantedFrom: -1,
		costLoop:    -1,
	}
	copy(sp.frame, args)
	for i := range args {
		sp.present[i] = true
	}
	w.insts[sp.id] = sp
	w.enqueue(sp)
	return sp
}

// charge adds n executed instructions to a cost-accounting bucket.
func (w *worker) charge(loop int32, sweep, iter, n int64) {
	w.costAcc[costKey{loop: loop, sweep: sweep, iter: iter}] += n
}

// flushCosts sends the accumulated cost buckets to the driver as one
// KCostReport per (loop, sweep) pair and clears them. Buckets are flushed
// in sorted order so the report stream is deterministic for a given
// accumulation state.
func (w *worker) flushCosts() {
	if len(w.costAcc) == 0 {
		return
	}
	keys := make([]costKey, 0, len(w.costAcc))
	for k := range w.costAcc {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.loop != b.loop {
			return a.loop < b.loop
		}
		if a.sweep != b.sweep {
			return a.sweep < b.sweep
		}
		return a.iter < b.iter
	})
	var cur *Msg
	for _, k := range keys {
		if cur == nil || cur.Tmpl != k.loop || cur.Sweep != k.sweep {
			if cur != nil {
				w.send(w.driverID(), cur)
			}
			cur = &Msg{Kind: KCostReport, Tmpl: k.loop, Sweep: k.sweep}
		}
		cur.Iters = append(cur.Iters, k.iter)
		cur.Costs = append(cur.Costs, w.costAcc[k])
	}
	w.send(w.driverID(), cur)
	clear(w.costAcc)
}

// cutBounds returns PE pe's index range under a rebound cut vector:
// (cuts[pe-1], cuts[pe]], with ∓inf at the two ends. Because the ranges
// tile all of ℤ, clamping them against the loop's real bounds partitions
// any iteration range exactly — a range that shifted or shrank since the
// costs were observed degrades balance, never correctness.
func cutBounds(cuts []int64, pe, n int) (lo, hi int64) {
	lo, hi = math.MinInt64, math.MaxInt64
	if pe > 0 {
		lo = cuts[pe-1] + 1
	}
	if pe < n-1 {
		hi = cuts[pe]
	}
	return lo, hi
}

// deliver places a token into a local SP's frame, waking it if it was
// blocked on that slot. For an SP that was stolen away, the token is
// relayed to the thief through the forwarding stub (the relay counts as a
// data message, balancing the extra receive). A token for an SP that ran
// here and halted is legal with stealing in play — result tokens an SP
// never consumes can trail its HALT — and is dropped. A token for a local
// ID minted by an earlier incarnation of this PE is a release for work
// that died and is being re-executed under fresh IDs: dropped and counted.
// After a recovery, a token for any unknown ID is tolerated the same way —
// replay re-executes subtrees whose first execution's tokens may still be
// in flight. In an unrecovered run, a token for an ID this worker has
// never seen still fails the run.
func (w *worker) deliver(id int64, slot int, v isa.Value) {
	sp := w.insts[id]
	if sp == nil {
		if thief, ok := w.forwards[id]; ok {
			w.forwarded++
			w.send(thief, &Msg{Kind: KToken, SP: id, Slot: int32(slot), Val: v})
			return
		}
		if _, ok := w.halted[id]; ok {
			w.lateTokens++
			return
		}
		if peOf(id) == w.pe && incOf(id) < w.inc {
			w.staleMsgs++
			return
		}
		if w.recovered {
			w.lateTokens++
			return
		}
		w.fail(fmt.Errorf("token for dead SP %d", id))
		return
	}
	if slot < 0 || slot >= len(sp.frame) {
		w.fail(fmt.Errorf("token slot %d out of range for SP %q", slot, sp.tmpl.Name))
		return
	}
	if w.outReads != nil {
		delete(w.outReads, outReadKey{sp: id, slot: int32(slot)})
	}
	sp.frame[slot] = v
	sp.present[slot] = true
	if sp.blocked == slot {
		sp.blocked = isa.None
		w.enqueue(sp)
	}
}

// route delivers a token to an SP instance anywhere in the cluster:
// locally (including SPs stolen from another PE's queue, which keep their
// home ID), to the owning worker, or to the driver environment (ID 0).
func (w *worker) route(id int64, slot int, v isa.Value) {
	if w.insts[id] != nil {
		// Local fast path: the instance lives here, whether home-spawned
		// or stolen in.
		w.deliver(id, slot, v)
		return
	}
	pe := peOf(id)
	switch {
	case pe == w.pe:
		w.deliver(id, slot, v) // forwarding stub / late-token handling
	case pe < 0: // driver environment
		w.send(w.driverID(), &Msg{Kind: KToken, SP: 0, Slot: int32(slot), Val: v})
	case pe < w.n:
		if _, ok := w.halted[id]; ok {
			// The SP was stolen in and already halted here; skip the
			// round trip through its home PE's stub.
			w.lateTokens++
			return
		}
		if thief, ok := w.forwards[id]; ok {
			// Stolen in and then stolen away again: relay directly.
			w.forwarded++
			w.send(thief, &Msg{Kind: KToken, SP: id, Slot: int32(slot), Val: v})
			return
		}
		w.send(pe, &Msg{Kind: KToken, SP: id, Slot: int32(slot), Val: v})
	default:
		w.fail(fmt.Errorf("token for SP %d on unknown PE %d", id, pe))
	}
}

// firstAbsent returns the first absent input slot of in, or isa.None.
func firstAbsent(sp *spInst, in *isa.Instr) int {
	if in.A != isa.None && !sp.present[in.A] {
		return in.A
	}
	if in.B != isa.None && !sp.present[in.B] {
		return in.B
	}
	for _, a := range in.Args {
		if !sp.present[a] {
			return a
		}
	}
	return isa.None
}

func (sp *spInst) set(slot int, v isa.Value) {
	sp.frame[slot] = v
	sp.present[slot] = true
}

// suspendOnArray parks the SP until the header for array id arrives. The
// program counter has not advanced, so the instruction re-executes on wake.
func (w *worker) suspendOnArray(id int64, sp *spInst) {
	w.waitArray[id] = append(w.waitArray[id], sp)
}

// header returns the installed header for an array handle value, or parks
// the SP and returns nil when the alloc broadcast has not arrived yet.
func (w *worker) header(sp *spInst, slot int) *istructure.Header {
	hv := sp.frame[slot]
	if hv.Kind != isa.KindArray {
		w.fail(fmt.Errorf("%q: %s is not an array handle", sp.tmpl.Name, hv))
		return nil
	}
	h := w.shard.Header(hv.I)
	if h == nil {
		w.suspendOnArray(hv.I, sp)
	}
	return h
}

// step interprets one ready SP until it halts, blocks on an absent operand,
// or suspends on a missing array header. It pops from the top of the deque
// (the most recently pushed SP): depth-first execution follows each spawn
// chain down before touching older siblings, which both bounds the live
// frontier and keeps untouched SPs at the bottom for thieves.
func (w *worker) step() {
	// The shard's heat table stamps last-touch times with this worker's
	// instruction counter — deterministic per PE, monotone per step.
	w.shard.Now = w.instrs
	var sp *spInst
	for sp == nil {
		if w.readyHead == len(w.ready) {
			// Only tombstones were left; the deque is now truly empty.
			w.ready = w.ready[:0]
			w.readyHead, w.readyNil = 0, 0
			return
		}
		sp = w.ready[len(w.ready)-1]
		w.ready[len(w.ready)-1] = nil
		w.ready = w.ready[:len(w.ready)-1]
		if sp == nil {
			w.readyNil--
		}
	}
	if w.readyHead == len(w.ready) {
		w.ready = w.ready[:0]
		w.readyHead, w.readyNil = 0, 0
	}

	// Tracing: the sampling decision is made once per instance at its first
	// dispatch, so a sampled instance contributes every dispatch/complete
	// pair and an unsampled one contributes nothing — exact pairing at any
	// sampling rate. A resumed instance records a fresh dispatch; the
	// exporter pairs the completion with the last one (the final run
	// segment) and keeps earlier segments as instants.
	if w.tr != nil {
		if sp.traced == 0 {
			if w.tr.SampleSP() {
				sp.traced = 1
			} else {
				sp.traced = -1
			}
		}
		if sp.traced == 1 {
			w.tr.Record(trace.EvSPDispatch, w.instrs, sp.id, int64(sp.tmpl.ID))
		}
	}

	// Cost attribution: a tagged instance charges every completed
	// instruction to its (loop, sweep, iteration) bucket. A distributed
	// loop copy charges dynamically to the current value of its loop
	// variable (so the copy's own control overhead lands on the iteration
	// being driven); everything else carries a frozen iteration from spawn
	// time. Charges are batched per run segment and flushed on exit or
	// when the dynamic iteration advances.
	track := sp.costLoop >= 0
	dynSlot := isa.None
	if track && sp.tmpl.Distributed && sp.tmpl.Loop != nil {
		dynSlot = sp.tmpl.Loop.VarSlot
	}
	costIter := sp.costIter
	var costN int64
	defer func() {
		if costN > 0 {
			w.charge(sp.costLoop, sp.costSweep, costIter, costN)
		}
	}()
	chargeStep := func() {
		if !track {
			return
		}
		if dynSlot != isa.None {
			if !sp.present[dynSlot] || sp.frame[dynSlot].Kind != isa.KindInt {
				return // before the loop variable exists there is no iteration to bill
			}
			if cur := sp.frame[dynSlot].I; cur != costIter {
				if costN > 0 {
					w.charge(sp.costLoop, sp.costSweep, costIter, costN)
					costN = 0
				}
				costIter = cur
			}
		}
		costN++
	}

	for {
		if w.failed || w.stopped {
			return
		}
		if sp.pc < 0 || sp.pc >= len(sp.tmpl.Code) {
			w.fail(fmt.Errorf("%q pc %d out of range", sp.tmpl.Name, sp.pc))
			return
		}
		ins := &sp.tmpl.Code[sp.pc]
		if missing := firstAbsent(sp, ins); missing != isa.None {
			sp.blocked = missing
			return
		}
		next := sp.pc + 1
		f := sp.frame
		if isa.IsScalar(ins.Op) {
			var bv isa.Value
			if ins.B != isa.None {
				bv = f[ins.B]
			}
			v, err := isa.EvalScalar(ins.Op, f[ins.A], bv)
			if err != nil {
				w.fail(fmt.Errorf("%q pc %d: %v", sp.tmpl.Name, sp.pc, err))
				return
			}
			sp.set(ins.Dst, v)
			w.instrs++
			chargeStep()
			sp.pc = next
			continue
		}
		switch ins.Op {
		case isa.NOP:
		case isa.CONST:
			sp.set(ins.Dst, ins.Imm)
		case isa.MOVE:
			sp.set(ins.Dst, f[ins.A])
		case isa.CLEAR:
			sp.present[ins.Dst] = false
		case isa.SELF:
			sp.set(ins.Dst, isa.SPRef(sp.id))

		case isa.JUMP:
			next = ins.Target
		case isa.BRFALSE:
			if !f[ins.A].AsBool() {
				next = ins.Target
			}
		case isa.BRTRUE:
			if f[ins.A].AsBool() {
				next = ins.Target
			}

		case isa.ALLOC, isa.ALLOCD:
			w.execAlloc(sp, ins)

		case isa.AREAD:
			if suspended := w.execRead(sp, ins); suspended {
				return
			}
		case isa.AWRITE:
			if suspended := w.execWrite(sp, ins); suspended {
				return
			}

		case isa.ROWLO, isa.ROWHI:
			// Stamped adaptive bounds override the ownership rule: the
			// filter's MAX/MIN clamps against the loop's real init/limit
			// still apply, so a ±inf end stamp degenerates to "no bound".
			if sp.rbOn {
				v := sp.rbLo
				if ins.Op == isa.ROWHI {
					v = sp.rbHi
				}
				sp.set(ins.Dst, isa.Int(v))
				break
			}
			h := w.header(sp, ins.A)
			if h == nil {
				return
			}
			lo, hi, ok := h.OwnedRows(w.pe)
			if !ok {
				lo, hi = 1, 0
			}
			v := lo
			if ins.Op == isa.ROWHI {
				v = hi
			}
			sp.set(ins.Dst, isa.Int(v))
		case isa.COLLO, isa.COLHI:
			if sp.rbOn {
				v := sp.rbLo
				if ins.Op == isa.COLHI {
					v = sp.rbHi
				}
				sp.set(ins.Dst, isa.Int(v))
				break
			}
			h := w.header(sp, ins.A)
			if h == nil {
				return
			}
			lo, hi, ok := h.OwnedCols(w.pe, f[ins.B].AsInt())
			if !ok {
				lo, hi = 1, 0
			}
			v := lo
			if ins.Op == isa.COLHI {
				v = hi
			}
			sp.set(ins.Dst, isa.Int(v))
		case isa.UNIFLO, isa.UNIFHI:
			lo := f[ins.A].AsInt()
			hi := f[ins.B].AsInt()
			if sp.rbOn {
				// The uniform filter replaces the loop bounds outright, so
				// clamp the stamped range against the real one here.
				v := max(lo, sp.rbLo)
				if ins.Op == isa.UNIFHI {
					v = min(hi, sp.rbHi)
				}
				sp.set(ins.Dst, isa.Int(v))
				break
			}
			n := hi - lo + 1
			if n < 0 {
				n = 0
			}
			pes := int64(w.n)
			id := int64(w.pe)
			v := lo + n*id/pes
			if ins.Op == isa.UNIFHI {
				v = lo + n*(id+1)/pes - 1
			}
			sp.set(ins.Dst, isa.Int(v))

		case isa.SPAWN, isa.SPAWND:
			child := w.prog.Template(int(ins.Imm.I))
			if child == nil {
				w.fail(fmt.Errorf("%q pc %d: spawn of unknown template %d", sp.tmpl.Name, sp.pc, ins.Imm.I))
				return
			}
			cargs := make([]isa.Value, len(ins.Args))
			for i, s := range ins.Args {
				cargs[i] = f[s]
			}
			if ins.Op == isa.SPAWND {
				// The distributing L operator: one copy per PE. Remote
				// copies each get their own argument slice — messages are
				// receiver-owned. Under adaptive repartitioning the fan-out
				// of a Range-Filtered loop is also a sweep boundary: this
				// spawner mints the sweep ID the copies charge their costs
				// to, and stamps each copy with its PE's bounds from the
				// latest rebound — one spawner, one consistent partition,
				// no install race with a rebound broadcast in flight.
				var sweep int64
				var cuts []int64
				if w.adapt && child.Distributed {
					w.nextSweep++
					sweep = packJobID(w.job, w.pe, w.inc, w.nextSweep)
					cuts = w.cuts[child.ID]
				}
				if w.recover {
					// Log the fan-out locally — the spawner is the one
					// authority on what each PE was assigned, and replays a
					// respawned peer's copy itself — and with the driver
					// *before* performing it, so that if this worker dies
					// mid-broadcast the driver can replay every PE's
					// assignment, including copies whose spawn frames never
					// left this machine. The cuts travel too, so a replayed
					// copy is stamped with bit-identical bounds.
					w.fanoutLog = append(w.fanoutLog, fanoutRec{
						tmpl: int32(child.ID), args: append([]isa.Value(nil), cargs...),
						sweep: sweep, cuts: cuts})
					lg := &Msg{Kind: KSpawnLog, Tmpl: int32(child.ID),
						Args: append([]isa.Value(nil), cargs...), Sweep: sweep}
					if cuts != nil {
						lg.Cuts = append([]int64(nil), cuts...)
					}
					w.send(w.driverID(), lg)
				}
				for pe := 0; pe < w.n; pe++ {
					var rlo, rhi int64
					if cuts != nil {
						rlo, rhi = cutBounds(cuts, pe, w.n)
					}
					if pe == w.pe {
						csp := w.instantiate(child, cargs)
						if csp != nil && sweep != 0 {
							csp.costLoop, csp.costSweep = int32(child.ID), sweep
							if cuts != nil {
								csp.rbOn, csp.rbLo, csp.rbHi = true, rlo, rhi
							}
						}
						continue
					}
					m := &Msg{Kind: KSpawn, Tmpl: int32(child.ID), Args: append([]isa.Value(nil), cargs...), Sweep: sweep}
					if cuts != nil {
						m.RngOn, m.RngLo, m.RngHi = true, rlo, rhi
					}
					w.send(pe, m)
				}
			} else {
				// A plain spawn stays local and joins the spawner's cost
				// subtree: the child bills the iteration the spawner was
				// executing when it was created.
				csp := w.instantiate(child, cargs)
				if csp != nil && track {
					csp.costLoop, csp.costSweep, csp.costIter = sp.costLoop, sp.costSweep, costIter
				}
			}

		case isa.SEND:
			ref := f[ins.A]
			if ref.Kind != isa.KindSP {
				w.fail(fmt.Errorf("%q pc %d: SEND target is %s, not an SP reference", sp.tmpl.Name, sp.pc, ref))
				return
			}
			base := int64(0)
			if len(ins.Args) > 0 {
				base = f[ins.Args[0]].AsInt()
			}
			w.route(ref.I, int(base+ins.Imm.I), f[ins.B])

		case isa.HALT:
			if sp.traced == 1 {
				w.tr.Record(trace.EvSPComplete, w.instrs, sp.id, int64(sp.tmpl.ID))
			}
			delete(w.insts, sp.id)
			if sp.stolen {
				w.halted[sp.id] = struct{}{}
				if w.recover && sp.grantedFrom >= 0 {
					// Tell the grantor the migrated SP completed, so its
					// grant record (and stub chain) can retire instead of
					// being re-instantiated by a later recovery.
					w.send(sp.grantedFrom, &Msg{Kind: KStealDone, SP: sp.id})
				}
			}
			return

		default:
			w.fail(fmt.Errorf("%q pc %d: unimplemented opcode %s", sp.tmpl.Name, sp.pc, ins.Op))
			return
		}
		if w.failed || w.stopped {
			return
		}
		// Count the instruction only once it completes: a suspension on a
		// missing array header returns above with pc unchanged, and the
		// re-execution on wake would otherwise count twice (skewing the
		// per-PE load numbers the SKEW experiment reports).
		w.instrs++
		chargeStep()
		sp.pc = next
	}
}
