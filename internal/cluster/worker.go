package cluster

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/isa"
	"repro/internal/istructure"
	"repro/internal/rtcfg"
)

// spInst is one live SP instance on a worker: template, operand frame with
// presence bits, program counter, and the slot it is blocked on (isa.None
// while runnable). An instance belongs to exactly one worker for life —
// there is no migration, matching the paper's model where an SP executes on
// the PE it was spawned on.
type spInst struct {
	id      int64
	tmpl    *isa.Template
	frame   []isa.Value
	present []bool
	pc      int
	blocked int
}

// worker is one PE: its own I-structure shard, its own SP instances and run
// queue, and an endpoint. Everything here is confined to the worker's
// goroutine (or process); the only communication is Endpoint.Send/Recv.
type worker struct {
	pe   int
	n    int
	geo  rtcfg.Geometry
	prog *isa.Program
	ep   Endpoint

	shard *istructure.Shard
	insts map[int64]*spInst

	// ready is a head-indexed FIFO run queue (same amortized-O(1) pop as
	// mailbox; a plain front shift would make scheduling quadratic in the
	// queue length).
	ready     []*spInst
	readyHead int

	// waitArray holds SPs suspended mid-instruction on an array whose
	// header has not arrived yet (an alloc broadcast from another PE can
	// lose the race against a handle forwarded through a third PE).
	waitArray map[int64][]*spInst
	// pending holds remote messages (reads, writes) for such arrays.
	pending map[int64][]*Msg

	nextSP  int64
	nextArr int64

	// sent/recv count worker-to-worker data messages for termination
	// detection (driver traffic is control-plane and excluded).
	sent, recv int64

	failed  bool
	stopped bool
}

func newWorker(pe, n int, geo rtcfg.Geometry, prog *isa.Program, ep Endpoint) *worker {
	return &worker{
		pe:        pe,
		n:         n,
		geo:       geo,
		prog:      prog,
		ep:        ep,
		shard:     istructure.NewShard(pe),
		insts:     make(map[int64]*spInst),
		waitArray: make(map[int64][]*spInst),
		pending:   make(map[int64][]*Msg),
	}
}

// driverID is the endpoint index of the driver for this worker's cluster.
func (w *worker) driverID() int { return w.n }

// send transmits m to endpoint `to`, counting worker-to-worker data traffic.
func (w *worker) send(to int, m *Msg) {
	if to != w.driverID() && m.Kind.isData() {
		w.sent++
	}
	if err := w.ep.Send(to, m); err != nil {
		w.fail(err)
	}
}

// fail reports the first fatal error to the driver and stops executing SPs.
// The worker keeps serving control messages until the driver says stop.
func (w *worker) fail(err error) {
	if w.failed {
		return
	}
	w.failed = true
	_ = w.ep.Send(w.driverID(), &Msg{Kind: KFail, Name: fmt.Sprintf("pe %d: %v", w.pe, err)})
}

// run is the worker main loop: drain the mailbox, then execute ready SPs;
// block on the endpoint when there is nothing to do.
func (w *worker) run(ctx context.Context) {
	for !w.stopped {
		for {
			m, ok := w.ep.TryRecv()
			if !ok {
				break
			}
			w.handle(m)
			if w.stopped {
				return
			}
		}
		if w.failed || w.readyHead == len(w.ready) {
			m, err := w.ep.Recv(ctx)
			if err != nil {
				return
			}
			w.handle(m)
			continue
		}
		w.step()
	}
}

// handle dispatches one incoming message.
func (w *worker) handle(m *Msg) {
	if m.Kind.isData() && int(m.From) != w.driverID() {
		w.recv++
	}
	switch m.Kind {
	case KSpawn:
		tmpl := w.prog.Template(int(m.Tmpl))
		if tmpl == nil {
			w.fail(fmt.Errorf("spawn of unknown template %d", m.Tmpl))
			return
		}
		w.instantiate(tmpl, m.Args)

	case KToken:
		w.deliver(m.SP, int(m.Slot), m.Val)

	case KAlloc:
		dims := make([]int, len(m.Dims))
		for i, d := range m.Dims {
			dims[i] = int(d)
		}
		h, err := istructure.NewHeader(m.Arr, m.Name, dims, w.geo.PageElems, w.n, int(m.Origin), m.Dist)
		if err != nil {
			w.fail(err)
			return
		}
		w.installArray(h)

	case KReadReq:
		w.handleReadReq(m)

	case KPage:
		w.handlePage(m)

	case KWrite:
		w.handleWrite(m)

	case KProbe:
		w.send(w.driverID(), &Msg{
			Kind:     KAck,
			Round:    m.Round,
			Sent:     w.sent,
			Recv:     w.recv,
			Live:     int32(len(w.insts)),
			Deferred: w.shard.DeferredReads,
			Hits:     w.shard.CacheHits,
			Misses:   w.shard.CacheMisses,
		})

	case KDumpReq:
		w.handleDumpReq(m)

	case KFail:
		// A peer's transport pump reported a decode/socket error.
		w.fail(errors.New(m.Name))

	case KStop:
		w.stopped = true

	default:
		w.fail(fmt.Errorf("unexpected %s message", m.Kind))
	}
}

// instantiate creates a live SP instance on this worker.
func (w *worker) instantiate(tmpl *isa.Template, args []isa.Value) {
	if len(args) != tmpl.NParams {
		w.fail(fmt.Errorf("%q spawned with %d args, want %d", tmpl.Name, len(args), tmpl.NParams))
		return
	}
	w.nextSP++
	sp := &spInst{
		id:      packID(w.pe, w.nextSP),
		tmpl:    tmpl,
		frame:   make([]isa.Value, tmpl.NSlots),
		present: make([]bool, tmpl.NSlots),
		blocked: isa.None,
	}
	copy(sp.frame, args)
	for i := range args {
		sp.present[i] = true
	}
	w.insts[sp.id] = sp
	w.ready = append(w.ready, sp)
}

// deliver places a token into a local SP's frame, waking it if it was
// blocked on that slot.
func (w *worker) deliver(id int64, slot int, v isa.Value) {
	sp := w.insts[id]
	if sp == nil {
		w.fail(fmt.Errorf("token for dead SP %d", id))
		return
	}
	if slot < 0 || slot >= len(sp.frame) {
		w.fail(fmt.Errorf("token slot %d out of range for SP %q", slot, sp.tmpl.Name))
		return
	}
	sp.frame[slot] = v
	sp.present[slot] = true
	if sp.blocked == slot {
		sp.blocked = isa.None
		w.ready = append(w.ready, sp)
	}
}

// route delivers a token to an SP instance anywhere in the cluster: locally,
// to the owning worker, or to the driver environment (ID 0).
func (w *worker) route(id int64, slot int, v isa.Value) {
	pe := peOf(id)
	switch {
	case pe == w.pe:
		w.deliver(id, slot, v)
	case pe < 0: // driver environment
		w.send(w.driverID(), &Msg{Kind: KToken, SP: 0, Slot: int32(slot), Val: v})
	case pe < w.n:
		w.send(pe, &Msg{Kind: KToken, SP: id, Slot: int32(slot), Val: v})
	default:
		w.fail(fmt.Errorf("token for SP %d on unknown PE %d", id, pe))
	}
}

// firstAbsent returns the first absent input slot of in, or isa.None.
func firstAbsent(sp *spInst, in *isa.Instr) int {
	if in.A != isa.None && !sp.present[in.A] {
		return in.A
	}
	if in.B != isa.None && !sp.present[in.B] {
		return in.B
	}
	for _, a := range in.Args {
		if !sp.present[a] {
			return a
		}
	}
	return isa.None
}

func (sp *spInst) set(slot int, v isa.Value) {
	sp.frame[slot] = v
	sp.present[slot] = true
}

// suspendOnArray parks the SP until the header for array id arrives. The
// program counter has not advanced, so the instruction re-executes on wake.
func (w *worker) suspendOnArray(id int64, sp *spInst) {
	w.waitArray[id] = append(w.waitArray[id], sp)
}

// header returns the installed header for an array handle value, or parks
// the SP and returns nil when the alloc broadcast has not arrived yet.
func (w *worker) header(sp *spInst, slot int) *istructure.Header {
	hv := sp.frame[slot]
	if hv.Kind != isa.KindArray {
		w.fail(fmt.Errorf("%q: %s is not an array handle", sp.tmpl.Name, hv))
		return nil
	}
	h := w.shard.Header(hv.I)
	if h == nil {
		w.suspendOnArray(hv.I, sp)
	}
	return h
}

// step interprets one ready SP until it halts, blocks on an absent operand,
// or suspends on a missing array header.
func (w *worker) step() {
	sp := w.ready[w.readyHead]
	w.ready[w.readyHead] = nil
	w.readyHead++
	if w.readyHead == len(w.ready) {
		w.ready = w.ready[:0]
		w.readyHead = 0
	}

	for {
		if w.failed {
			return
		}
		if sp.pc < 0 || sp.pc >= len(sp.tmpl.Code) {
			w.fail(fmt.Errorf("%q pc %d out of range", sp.tmpl.Name, sp.pc))
			return
		}
		ins := &sp.tmpl.Code[sp.pc]
		if missing := firstAbsent(sp, ins); missing != isa.None {
			sp.blocked = missing
			return
		}
		next := sp.pc + 1
		f := sp.frame
		if isa.IsScalar(ins.Op) {
			var bv isa.Value
			if ins.B != isa.None {
				bv = f[ins.B]
			}
			v, err := isa.EvalScalar(ins.Op, f[ins.A], bv)
			if err != nil {
				w.fail(fmt.Errorf("%q pc %d: %v", sp.tmpl.Name, sp.pc, err))
				return
			}
			sp.set(ins.Dst, v)
			sp.pc = next
			continue
		}
		switch ins.Op {
		case isa.NOP:
		case isa.CONST:
			sp.set(ins.Dst, ins.Imm)
		case isa.MOVE:
			sp.set(ins.Dst, f[ins.A])
		case isa.CLEAR:
			sp.present[ins.Dst] = false
		case isa.SELF:
			sp.set(ins.Dst, isa.SPRef(sp.id))

		case isa.JUMP:
			next = ins.Target
		case isa.BRFALSE:
			if !f[ins.A].AsBool() {
				next = ins.Target
			}
		case isa.BRTRUE:
			if f[ins.A].AsBool() {
				next = ins.Target
			}

		case isa.ALLOC, isa.ALLOCD:
			w.execAlloc(sp, ins)

		case isa.AREAD:
			if suspended := w.execRead(sp, ins); suspended {
				return
			}
		case isa.AWRITE:
			if suspended := w.execWrite(sp, ins); suspended {
				return
			}

		case isa.ROWLO, isa.ROWHI:
			h := w.header(sp, ins.A)
			if h == nil {
				return
			}
			lo, hi, ok := h.OwnedRows(w.pe)
			if !ok {
				lo, hi = 1, 0
			}
			v := lo
			if ins.Op == isa.ROWHI {
				v = hi
			}
			sp.set(ins.Dst, isa.Int(v))
		case isa.COLLO, isa.COLHI:
			h := w.header(sp, ins.A)
			if h == nil {
				return
			}
			lo, hi, ok := h.OwnedCols(w.pe, f[ins.B].AsInt())
			if !ok {
				lo, hi = 1, 0
			}
			v := lo
			if ins.Op == isa.COLHI {
				v = hi
			}
			sp.set(ins.Dst, isa.Int(v))
		case isa.UNIFLO, isa.UNIFHI:
			lo := f[ins.A].AsInt()
			hi := f[ins.B].AsInt()
			n := hi - lo + 1
			if n < 0 {
				n = 0
			}
			pes := int64(w.n)
			id := int64(w.pe)
			v := lo + n*id/pes
			if ins.Op == isa.UNIFHI {
				v = lo + n*(id+1)/pes - 1
			}
			sp.set(ins.Dst, isa.Int(v))

		case isa.SPAWN, isa.SPAWND:
			child := w.prog.Template(int(ins.Imm.I))
			if child == nil {
				w.fail(fmt.Errorf("%q pc %d: spawn of unknown template %d", sp.tmpl.Name, sp.pc, ins.Imm.I))
				return
			}
			cargs := make([]isa.Value, len(ins.Args))
			for i, s := range ins.Args {
				cargs[i] = f[s]
			}
			if ins.Op == isa.SPAWND {
				// The distributing L operator: one copy per PE. Remote
				// copies each get their own argument slice — messages are
				// receiver-owned.
				for pe := 0; pe < w.n; pe++ {
					if pe == w.pe {
						w.instantiate(child, cargs)
						continue
					}
					w.send(pe, &Msg{Kind: KSpawn, Tmpl: int32(child.ID), Args: append([]isa.Value(nil), cargs...)})
				}
			} else {
				w.instantiate(child, cargs)
			}

		case isa.SEND:
			ref := f[ins.A]
			if ref.Kind != isa.KindSP {
				w.fail(fmt.Errorf("%q pc %d: SEND target is %s, not an SP reference", sp.tmpl.Name, sp.pc, ref))
				return
			}
			base := int64(0)
			if len(ins.Args) > 0 {
				base = f[ins.Args[0]].AsInt()
			}
			w.route(ref.I, int(base+ins.Imm.I), f[ins.B])

		case isa.HALT:
			delete(w.insts, sp.id)
			return

		default:
			w.fail(fmt.Errorf("%q pc %d: unimplemented opcode %s", sp.tmpl.Name, sp.pc, ins.Op))
			return
		}
		if w.failed {
			return
		}
		sp.pc = next
	}
}
