package cluster

import (
	"expvar"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Process-wide live metrics, published by every worker in this process at
// each probe ack (delta-encoded, so restarts of the counters across recovery
// epochs never subtract). Registered under expvar, which also exposes them
// on /debug/vars wherever an HTTP server is running; MetricsHandler serves
// the same counters as a plain-text /metrics endpoint, so the multi-
// container CI topology can assert a worker is making progress mid-run with
// one wget. In-process runs publish too — the counters are process-global
// by design (a podsd worker process hosts exactly one worker at a time, and
// a test binary's totals are still meaningful as totals).
var (
	mInstrs  = expvar.NewInt("pods_instrs_total")
	mMsgs    = expvar.NewInt("pods_msgs_total")
	mAcks    = expvar.NewInt("pods_acks_total")
	mSteals  = expvar.NewInt("pods_steals_total")
	mHits    = expvar.NewInt("pods_cache_hits_total")
	mMisses  = expvar.NewInt("pods_cache_misses_total")
	mEvicts  = expvar.NewInt("pods_evictions_total")
	mReplays = expvar.NewInt("pods_replayed_total")

	mPrefetches   = expvar.NewInt("pods_prefetches_total")
	mPrefetchHits = expvar.NewInt("pods_prefetch_hits_total")

	// Job-service counters, maintained by Fleet.Submit: jobs running now,
	// jobs ever admitted, and jobs bounced by admission control.
	mJobsActive   = expvar.NewInt("pods_jobs_active")
	mJobsTotal    = expvar.NewInt("pods_jobs_total")
	mJobsRejected = expvar.NewInt("pods_jobs_rejected_total")
)

// pubCounters remembers the last counter values a worker pushed into the
// process-wide metrics, so each probe publishes only the delta.
type pubCounters struct {
	instrs, msgs, steals, hits, misses, evicts, replays int64
	prefetches, prefetchHits                            int64
}

// publishMetrics folds this worker's counter growth since the previous
// probe into the process-wide expvar metrics. Deltas are clamped at zero:
// a recovery epoch zeroes sent/recv, and a monotone total must not absorb
// the negative step.
func (w *worker) publishMetrics() {
	delta := func(cur int64, prev *int64) int64 {
		d := cur - *prev
		*prev = cur
		if d < 0 {
			return 0
		}
		return d
	}
	mInstrs.Add(delta(w.instrs, &w.pub.instrs))
	mMsgs.Add(delta(w.sent+w.recv, &w.pub.msgs))
	mSteals.Add(delta(w.steals, &w.pub.steals))
	mHits.Add(delta(w.shard.CacheHits, &w.pub.hits))
	mMisses.Add(delta(w.shard.CacheMisses, &w.pub.misses))
	mEvicts.Add(delta(w.shard.Evictions, &w.pub.evicts))
	mReplays.Add(delta(w.replayed, &w.pub.replays))
	mPrefetches.Add(delta(w.heat.prefetches, &w.pub.prefetches))
	mPrefetchHits.Add(delta(w.heat.prefetchHits, &w.pub.prefetchHits))
	mAcks.Add(1)
}

// MetricsText writes every pods_* counter as one "name value" line,
// alphabetically — the plain-text /metrics format.
func MetricsText(w io.Writer) error {
	var err error
	expvar.Do(func(kv expvar.KeyValue) {
		if err != nil || !strings.HasPrefix(kv.Key, "pods_") {
			return
		}
		_, err = fmt.Fprintf(w, "%s %s\n", kv.Key, kv.Value.String())
	})
	return err
}

// MetricsHandler serves MetricsText over HTTP (the podsd -metrics
// endpoint's /metrics route).
func MetricsHandler() http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, _ *http.Request) {
		rw.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = MetricsText(rw)
	})
}
