package cluster

import (
	"fmt"

	"repro/internal/cluster/trace"
	"repro/internal/isa"
	"repro/internal/istructure"
)

// This file holds the worker's distributed Array-Manager role: the message
// half of the I-structure memory. Local accesses go straight to the owned
// shard; remote accesses become KReadReq / KWrite messages to the owner,
// and the owner answers reads with whole-page shipments (KPage) or queues
// them as remote deferred reads released by the eventual write (§4, §5.1).

// allocMsg builds one KAlloc frame describing h — the single definition of
// the alloc broadcast's wire shape, shared by the original broadcast and
// both replay paths (worker and driver). Each call returns a fresh message
// with its own slices: a sent Msg is receiver-owned.
func allocMsg(h *istructure.Header) *Msg {
	dims := make([]int32, len(h.Dims))
	for i, d := range h.Dims {
		dims[i] = int32(d)
	}
	return &Msg{Kind: KAlloc, Arr: h.ID, Name: h.Name, Dims: dims,
		Origin: int32(h.Origin), Dist: h.Dist}
}

// execAlloc implements ALLOC/ALLOCD: build the header, install the local
// segment, broadcast the header to every other PE and the driver, and hand
// the array ID to the allocating SP.
func (w *worker) execAlloc(sp *spInst, ins *isa.Instr) {
	dims := make([]int, len(ins.Args))
	elems := 1
	for i, s := range ins.Args {
		dims[i] = int(sp.frame[s].AsInt())
		elems *= dims[i]
	}
	w.nextArr++
	id := packJobID(w.job, w.pe, w.inc, w.nextArr)
	name := ins.Comment
	if name == "" {
		name = fmt.Sprintf("anon%d", id)
	}
	dist := ins.Op == isa.ALLOCD && elems >= w.geo.DistThreshold && w.n > 1
	h, err := istructure.NewHeader(id, name, dims, w.geo.PageElems, w.n, w.pe, dist)
	if err != nil {
		w.fail(fmt.Errorf("%q: %w", sp.tmpl.Name, err))
		return
	}
	w.installArray(h)
	if w.recover {
		w.allocLog = append(w.allocLog, h)
	}
	for pe := 0; pe <= w.n; pe++ { // every other worker, plus the driver
		if pe == w.pe {
			continue
		}
		w.send(pe, allocMsg(h))
	}
	sp.set(ins.Dst, isa.Array(id))
}

// installArray installs a header, wakes SPs suspended on it, and replays
// remote messages that arrived before the broadcast.
func (w *worker) installArray(h *istructure.Header) {
	fresh := w.shard.Header(h.ID) == nil
	if err := w.shard.Install(h); err != nil {
		w.fail(err)
		return
	}
	if fresh {
		// The install order is the checkpoint-dump iteration order; a
		// replayed duplicate broadcast must not enter the list twice.
		w.arrays = append(w.arrays, h.ID)
	}
	if sps := w.waitArray[h.ID]; len(sps) > 0 {
		for _, sp := range sps {
			w.enqueue(sp)
		}
		delete(w.waitArray, h.ID)
	}
	if msgs := w.pending[h.ID]; len(msgs) > 0 {
		delete(w.pending, h.ID)
		for _, m := range msgs {
			switch m.Kind {
			case KReadReq:
				w.handleReadReq(m)
			case KWrite:
				w.handleWrite(m)
			case KDumpReq:
				w.handleDumpReq(m)
			case KRestore:
				w.handleRestore(m)
			}
		}
	}
}

// offset resolves an access's index slots against the header.
func (w *worker) offset(sp *spInst, h *istructure.Header, idxSlots []int) (int, bool) {
	idx := make([]int64, len(idxSlots))
	for i, s := range idxSlots {
		idx[i] = sp.frame[s].AsInt()
	}
	off, err := h.Offset(idx)
	if err != nil {
		w.fail(fmt.Errorf("%q: %w", sp.tmpl.Name, err))
		return 0, false
	}
	return off, true
}

// execRead implements AREAD. Local present elements are immediate hits;
// local absent elements become deferred reads (the SP blocks when a later
// instruction consumes the slot); remote elements probe the page cache and
// otherwise ask the owner. Returns true when the SP suspended on a missing
// header (pc not advanced).
func (w *worker) execRead(sp *spInst, ins *isa.Instr) (suspended bool) {
	h := w.header(sp, ins.A)
	if h == nil {
		return true
	}
	off, ok := w.offset(sp, h, ins.Args)
	if !ok {
		return false
	}
	sp.present[ins.Dst] = false

	owner := h.OwnerOf(off)
	if owner == w.pe {
		v, res, err := w.shard.ReadLocal(h.ID, off, istructure.Waiter{PE: w.pe, SP: sp.id, Slot: ins.Dst})
		if err != nil {
			w.fail(err)
			return false
		}
		if res == istructure.ReadHit {
			sp.set(ins.Dst, v)
		}
		// ReadDeferred: the waiter is queued; the releasing write delivers.
		return false
	}

	if v, _, hit := w.shard.CacheLookup(h.ID, h, off); hit {
		w.shard.CacheHits++
		w.notePrefetchHit(h.ID, h.PageOf(off))
		sp.set(ins.Dst, v)
		w.maybePrefetch(h, off)
		return false
	}
	w.shard.CacheMisses++
	w.rec(trace.EvPageFetch, h.ID, int64(h.PageOf(off)))
	w.maybePrefetch(h, off)
	if w.recover {
		// Track the in-flight read so it can be re-issued if the owner is
		// respawned before answering (the entry clears on delivery).
		w.outReads[outReadKey{sp: sp.id, slot: int32(ins.Dst)}] =
			outRead{arr: h.ID, off: int32(off), owner: owner}
	}
	w.send(owner, &Msg{
		Kind:  KReadReq,
		Arr:   h.ID,
		Off:   int32(off),
		ReqPE: int32(w.pe),
		SP:    sp.id,
		Slot:  int32(ins.Dst),
	})
	return false
}

// execWrite implements AWRITE: owned elements are written in place (and
// release queued readers); remote elements travel to the owner as a KWrite.
// Returns true when the SP suspended on a missing header.
func (w *worker) execWrite(sp *spInst, ins *isa.Instr) (suspended bool) {
	h := w.header(sp, ins.A)
	if h == nil {
		return true
	}
	off, ok := w.offset(sp, h, ins.Args)
	if !ok {
		return false
	}
	val := sp.frame[ins.B]
	owner := h.OwnerOf(off)
	if owner == w.pe {
		w.ownerWrite(h.ID, off, val)
		return false
	}
	if w.recover {
		// Log the remote write: if the owner is respawned with an empty
		// shard, the log replays and the single-assignment store absorbs
		// any overlap with re-executed work idempotently.
		w.writeLog[owner] = append(w.writeLog[owner], writeRec{arr: h.ID, off: int32(off), val: val})
	}
	w.send(owner, &Msg{Kind: KWrite, Arr: h.ID, Off: int32(off), Val: val})
	return false
}

// ownerWrite stores an owned element and releases deferred readers: local
// waiters get a direct frame delivery, remote waiters a KToken ("Array
// Write: ... number_queued_reads * message_time", §5.1).
func (w *worker) ownerWrite(arr int64, off int, val isa.Value) {
	local, remote, err := w.shard.Write(arr, off, val)
	if err != nil {
		w.fail(err)
		return
	}
	for _, wt := range local {
		w.deliver(wt.SP, wt.Slot, val)
	}
	for _, rw := range remote {
		w.send(rw.PE, &Msg{Kind: KToken, SP: rw.SP, Slot: int32(rw.Slot), Val: val})
	}
}

// handleReadReq serves a remote read at the owner: present elements ship
// the whole containing page; absent elements queue a remote deferred read.
// A prefetch hint (SP 0 — never a live instance ID) ships the page
// snapshot as-is and never queues a waiter: nothing blocks on a prefetch,
// so an unproductive hint must cost at most the request frame.
func (w *worker) handleReadReq(m *Msg) {
	if w.shard.Header(m.Arr) == nil {
		w.pending[m.Arr] = append(w.pending[m.Arr], m)
		return
	}
	off := int(m.Off)
	if m.SP == 0 {
		pageIdx, pg, _, err := w.shard.ExtractPage(m.Arr, off)
		if err != nil {
			return // page not owned here (stale hint): drop silently
		}
		any := false
		for _, set := range pg.Set {
			if set {
				any = true
				break
			}
		}
		if !any {
			// An all-absent snapshot would occupy a cache frame at the
			// requester for nothing; the scan will re-ask via a demand
			// read when it actually arrives at the page.
			return
		}
		w.send(int(m.ReqPE), &Msg{
			Kind: KPage,
			Arr:  m.Arr,
			Page: int32(pageIdx),
			Off:  m.Off,
			Vals: pg.Vals,
			Set:  pg.Set,
		})
		return
	}
	if _, present := w.shard.Peek(m.Arr, off); present {
		pageIdx, pg, _, err := w.shard.ExtractPage(m.Arr, off)
		if err != nil {
			w.fail(err)
			return
		}
		w.send(int(m.ReqPE), &Msg{
			Kind: KPage,
			Arr:  m.Arr,
			Page: int32(pageIdx),
			Off:  m.Off,
			SP:   m.SP,
			Slot: m.Slot,
			Vals: pg.Vals,
			Set:  pg.Set,
		})
		return
	}
	if err := w.shard.QueueRemote(m.Arr, off, istructure.RemoteWaiter{PE: int(m.ReqPE), SP: m.SP, Slot: int(m.Slot)}); err != nil {
		w.fail(err)
	}
}

// handlePage installs a shipped page in the software cache and delivers the
// requested element to the waiting SP. With Config.CachePages set the
// install may evict a colder page (CLOCK, inside the shard) — and counts as
// a refetch if this page was itself evicted earlier; the element is
// delivered from the shipped snapshot either way, so even a page that is
// evicted again immediately cannot lose the read that fetched it.
func (w *worker) handlePage(m *Msg) {
	h := w.shard.Header(m.Arr)
	if h == nil {
		// The requester had the header when it sent the request; a page
		// for an unknown array means protocol corruption.
		w.fail(fmt.Errorf("page for unknown array %d", m.Arr))
		return
	}
	pg := &istructure.CachedPage{Vals: m.Vals, Set: m.Set}
	w.shard.InstallPage(m.Arr, int(m.Page), pg)
	if w.heat.on {
		delete(w.heat.inflight, heatKey{m.Arr, int(m.Page)})
	}
	if m.SP == 0 {
		// A prefetched page: the install is the whole job. No element was
		// requested, so neither the presence check nor a delivery applies;
		// the first demand hit on the page credits the prefetch.
		if w.heat.on {
			w.heat.arrived[heatKey{m.Arr, int(m.Page)}] = struct{}{}
		}
		return
	}
	i := int(m.Off) - int(m.Page)*h.PageElems
	if i < 0 || i >= len(pg.Vals) || !pg.Set[i] {
		w.fail(fmt.Errorf("page %d of array %d shipped without requested element", m.Page, m.Arr))
		return
	}
	w.deliver(m.SP, int(m.Slot), pg.Vals[i])
}

// handleWrite performs a remote write at the owner.
func (w *worker) handleWrite(m *Msg) {
	if w.shard.Header(m.Arr) == nil {
		w.pending[m.Arr] = append(w.pending[m.Arr], m)
		return
	}
	w.ownerWrite(m.Arr, int(m.Off), m.Val)
}

// handleRestore applies one checkpoint-snapshot chunk to a respawned
// owner's segment: each present element becomes an idempotent owner write,
// releasing any deferred readers already queued against the empty shard.
// Kind information survives the round trip — the driver snapshots raw
// values, not a rendered form.
func (w *worker) handleRestore(m *Msg) {
	if w.shard.Header(m.Arr) == nil {
		w.pending[m.Arr] = append(w.pending[m.Arr], m)
		return
	}
	for i, set := range m.Set {
		if set {
			w.ownerWrite(m.Arr, int(m.Off)+i, m.Vals[i])
		}
	}
}

// handleDumpReq ships this PE's owned segment of an array to the driver
// (result gathering after termination).
func (w *worker) handleDumpReq(m *Msg) {
	h := w.shard.Header(m.Arr)
	if h == nil {
		w.pending[m.Arr] = append(w.pending[m.Arr], m)
		return
	}
	lo, hi := h.SegmentElems(w.pe)
	vals := make([]isa.Value, hi-lo)
	set := make([]bool, hi-lo)
	for off := lo; off < hi; off++ {
		if v, present := w.shard.Peek(m.Arr, off); present {
			vals[off-lo] = v
			set[off-lo] = true
		}
	}
	w.send(w.driverID(), &Msg{Kind: KDump, Arr: m.Arr, Off: int32(lo), Vals: vals, Set: set})
}
