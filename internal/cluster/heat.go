package cluster

import (
	"math"

	"repro/internal/cluster/trace"
	"repro/internal/isa"
	"repro/internal/istructure"
)

// This file is the worker-side half of the unified page-heat machinery
// (Config.Heat). The shard's heat table (istructure/heat.go) records what
// happened to every page; this layer turns the record into decisions:
//
//   - streaming prefetch: a detected sequential scan asks the owner for
//     the next page before the miss, via an SP-0 KReadReq answered on the
//     ordinary KPage path — recovery, replay, and the four-counter
//     termination sums need no new cases;
//   - page-granular steal locality: steal requests advertise hot pages
//     instead of hot arrays, and the victim ranks candidates by the rows
//     their operand frames would touch at the thief;
//   - the adaptive cache cap: CachePages self-tunes between a floor and a
//     ceiling from per-probe-round refetch pressure;
//   - rebind migration: a KRebound's newly-gained iterations prefetch the
//     pages of their rows, so adapted copies start warm.

// heatKey identifies one (array, page) on the worker side.
type heatKey struct {
	arr  int64
	page int
}

// heatState is the worker's page-heat bookkeeping.
type heatState struct {
	// on mirrors Config.Heat for this worker.
	on bool

	// inflight dedups prefetch requests: one per page until its KPage
	// lands (or a demand fetch of the same page overtakes it).
	inflight map[heatKey]struct{}

	// arrived marks pages installed by a prefetch that have not yet
	// served a demand read; the first cache hit on such a page counts as
	// a PrefetchHit and clears the mark.
	arrived map[heatKey]struct{}

	// gov is the adaptive-cap governor; last* are the counter values at
	// the previous probe round, for delta extraction.
	gov           capGovernor
	lastRefetches int64
	lastEvicts    int64

	prefetches   int64 // prefetch requests issued (scan + migration)
	prefetchHits int64 // prefetched pages that later served a demand read
}

// newHeatState arms the worker-side heat machinery.
func newHeatState(cachePages int) heatState {
	return heatState{
		on:       true,
		inflight: make(map[heatKey]struct{}),
		arrived:  make(map[heatKey]struct{}),
		gov:      newCapGovernor(cachePages),
	}
}

// prefetchRun is the sequential-run length that triggers a streaming
// prefetch: two consecutive pages touched in order is taken as a scan.
const prefetchRun = 2

// maybePrefetch issues a streaming prefetch for the page after the one
// holding off when the heat table shows a sequential scan ending there.
// Called on the remote-read path for both hits and misses: the scan's
// own misses start the chain, and the hits keep it one page ahead.
func (w *worker) maybePrefetch(h *istructure.Header, off int) {
	if !w.heat.on {
		return
	}
	page := h.PageOf(off)
	if w.shard.ScanRun(h.ID, page) < prefetchRun {
		return
	}
	w.prefetchPage(h, page+1)
}

// prefetchPage asks the owner of (h, page) for the page with an SP-0
// KReadReq — SP 0 is never a live instance ID, so the owner ships the
// page without queuing a waiter and the arrival installs without a
// delivery. Reports whether a request actually went out (already-local,
// already-inflight, self-owned, and out-of-range pages are skipped).
func (w *worker) prefetchPage(h *istructure.Header, page int) bool {
	if !w.heat.on || page < 0 || page >= h.Pages() {
		return false
	}
	if w.shard.PageLocal(h.ID, page) {
		return false
	}
	k := heatKey{h.ID, page}
	if _, dup := w.heat.inflight[k]; dup {
		return false
	}
	off := page * h.PageElems
	owner := h.OwnerOf(off)
	if owner == w.pe {
		return false
	}
	w.heat.inflight[k] = struct{}{}
	w.heat.prefetches++
	w.rec(trace.EvPrefetch, h.ID, int64(page))
	w.send(owner, &Msg{
		Kind:  KReadReq,
		Arr:   h.ID,
		Off:   int32(off),
		ReqPE: int32(w.pe),
	})
	return true
}

// notePrefetchHit credits a demand cache hit to the prefetch that staged
// the page, once per prefetched page.
func (w *worker) notePrefetchHit(arr int64, page int) {
	if !w.heat.on {
		return
	}
	k := heatKey{arr, page}
	if _, ok := w.heat.arrived[k]; ok {
		delete(w.heat.arrived, k)
		w.heat.prefetchHits++
	}
}

// hotPagePairs flattens the shard's page-granular locality summary into
// the wire encoding: (array, page) pairs in one int64 slice. Array IDs
// use the high bits of their 64-bit space, so the pair encoding — not a
// packed single word — is what keeps the page index intact.
func (w *worker) hotPagePairs(limit int) []int64 {
	hps := w.shard.HotPages(limit)
	if len(hps) == 0 {
		return nil
	}
	out := make([]int64, 0, 2*len(hps))
	for _, hp := range hps {
		out = append(out, hp.Arr, int64(hp.Page))
	}
	return out
}

// pageScore counts how many of the thief's resident pages this SP's
// operands would actually touch: for each array operand in the frame,
// the pages holding the rows named by the frame's integer operands.
// Array-granular scoring cannot separate two iterations of a sweep over
// one shared array — every candidate scores 1 — but iteration i scores
// here on the page holding row i, which is exactly what the thief has or
// hasn't.
func (w *worker) pageScore(sp *spInst, pages map[heatKey]struct{}) int {
	n := 0
	for s, v := range sp.frame {
		if !sp.present[s] || v.Kind != isa.KindArray {
			continue
		}
		h := w.shard.Header(v.I)
		if h == nil {
			continue
		}
		for s2, iv := range sp.frame {
			if !sp.present[s2] || iv.Kind != isa.KindInt {
				continue
			}
			row := iv.I
			if row < 1 || row > int64(h.Dims[0]) {
				continue
			}
			off := int(row) - 1
			if len(h.Dims) == 2 {
				off = (int(row) - 1) * h.RowLen()
			}
			if _, ok := pages[heatKey{v.I, h.PageOf(off)}]; ok {
				n++
			}
		}
	}
	return n
}

// migrate bounds for one rebind: how many arrays are considered and how
// many pages one KRebound may prefetch in total.
const (
	migrateArrs = 4
	migrateMax  = 32
)

// migrateHotPages warms the cache for iterations a rebind newly assigned
// to this PE: for the hottest arrays, the pages holding the rows of the
// gained iteration range are prefetched, so the adapted copies start
// with residency instead of paying a cold remote fetch per row. Storage
// ownership never moves — only the computation rebinds — so the pages
// arrive through the ordinary prefetch path and the page budget bounds
// the burst. Iterations are taken as 1-based row indices, the convention
// every distributed sweep in the ISA uses.
func (w *worker) migrateHotPages(oldCuts, newCuts []int64) {
	if !w.heat.on {
		return
	}
	newLo, newHi := cutBounds(newCuts, w.pe, w.n)
	oldLo, oldHi := int64(math.MaxInt64), int64(math.MinInt64) // empty before the first rebind
	if oldCuts != nil {
		oldLo, oldHi = cutBounds(oldCuts, w.pe, w.n)
	}
	budget := migrateMax
	for _, id := range w.shard.HotArrays(migrateArrs) {
		h := w.shard.Header(id)
		if h == nil || budget <= 0 {
			continue
		}
		lo, hi := newLo, newHi
		if lo < 1 {
			lo = 1
		}
		if rows := int64(h.Dims[0]); hi > rows {
			hi = rows
		}
		for row := lo; row <= hi && budget > 0; row++ {
			if row >= oldLo && row <= oldHi {
				continue // was already this PE's share
			}
			off := int(row) - 1
			if len(h.Dims) == 2 {
				off = (int(row) - 1) * h.RowLen()
			}
			if w.prefetchPage(h, h.PageOf(off)) {
				budget--
			}
		}
	}
}

// capGovernor self-tunes the shard's CachePages bound between a floor
// (the configured cap) and a ceiling (capCeilFactor times it) from
// observed refetch pressure. Refetches mean the bound is actively
// throwing away pages the run still needs — grow. Quiet rounds with no
// evictions at all mean the working set fits with room to spare — after
// capQuietRounds of them, shrink back toward the floor. Rounds that
// evict without refetching hold position: the bound is working at no
// cost, and reacting to them is what would oscillate.
type capGovernor struct {
	floor, ceil int
	cap         int
	quiet       int
}

const (
	capCeilFactor  = 8
	capQuietRounds = 3
)

// newCapGovernor builds a governor for a configured cap; a zero cap
// (unbounded cache) disables it.
func newCapGovernor(configured int) capGovernor {
	if configured <= 0 {
		return capGovernor{}
	}
	return capGovernor{floor: configured, ceil: configured * capCeilFactor, cap: configured}
}

// enabled reports whether the governor is active.
func (g *capGovernor) enabled() bool { return g.floor > 0 }

// tick observes one probe round's refetch and eviction deltas and moves
// the cap: growth is immediate and multiplicative (pressure is paid in
// remote fetches every round it persists), shrinking needs
// capQuietRounds eviction-free rounds (hysteresis). Returns the cap and
// whether it changed.
func (g *capGovernor) tick(refetchDelta, evictDelta int64) (int, bool) {
	if !g.enabled() {
		return 0, false
	}
	old := g.cap
	switch {
	case refetchDelta > 0:
		g.quiet = 0
		g.cap = min(g.ceil, g.cap+max(1, g.cap/2))
	case evictDelta == 0:
		g.quiet++
		if g.quiet >= capQuietRounds && g.cap > g.floor {
			g.cap = max(g.floor, g.cap-max(1, g.cap/4))
			g.quiet = 0
		}
	default:
		g.quiet = 0
	}
	return g.cap, g.cap != old
}
