package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"

	"repro/internal/isa"
)

// The job-server protocol lets a remote client run a program on a live
// Fleet without being the process that opened it. Framing is the same
// 4-byte length prefix + protocol.go encoding the worker transport uses;
// each client connection carries exactly one job:
//
//	client → server  KSubmit  serialized .pods program, main args, knobs,
//	                          budgets (init block), Seq correlation tag
//	server → client  KDump*   one frame per array chunk (Name, Dims, Off,
//	                          Vals, Set), in allocation order
//	server → client  KResult  the program's result value (Slot=1 when the
//	                          program returns one), echoing Seq
//	                 KFail    instead of the above on any error (Name is
//	                          the error text)
//
// The server clamps the client's budgets to its own caps (a client may
// tighten its budget but never exceed the server's), so one server-side
// policy bounds every tenant. Admission control, job IDs, and per-job
// teardown are the Fleet's own (Submit); the protocol layer adds nothing
// stateful.

// serveChunk bounds one KDump frame's element count on the client wire.
const serveChunk = 1 << 16

// clampBudget resolves a client-requested budget against a server cap:
// zero means unlimited on both sides, and the effective budget is the
// tighter of the two.
func clampBudget(client, server int64) int64 {
	if server > 0 && (client <= 0 || client > server) {
		return server
	}
	if client < 0 {
		return 0
	}
	return client
}

// ServeJobs accepts job submissions on ln and runs each on the fleet
// until ctx ends or the listener fails. Each connection is one job; any
// number run concurrently, bounded by the fleet's admission control.
func (f *Fleet) ServeJobs(ctx context.Context, ln net.Listener) error {
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
		case <-done:
		}
		ln.Close()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		go f.serveJobConn(ctx, conn)
	}
}

// serveJobConn handles one submission: decode, clamp budgets, run, and
// stream the results back. All errors are reported to the client as
// KFail frames; a broken client connection just abandons the stream (the
// job itself still ran under the fleet's normal teardown).
func (f *Fleet) serveJobConn(ctx context.Context, conn net.Conn) {
	defer conn.Close()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-stop:
		}
	}()

	m, err := readFrame(conn)
	if err != nil {
		return
	}
	seq := m.Seq
	fail := func(err error) {
		_ = writeFrame(conn, &Msg{Kind: KFail, Seq: seq, Name: err.Error()})
	}
	if m.Kind != KSubmit {
		fail(fmt.Errorf("cluster: job server expects a submit frame, got %v", m.Kind))
		return
	}
	prog, err := isa.UnmarshalPods(m.Prog)
	if err != nil {
		fail(fmt.Errorf("cluster: decoding submitted program: %w", err))
		return
	}

	// The job's knobs are the client's; transport, fault injection, and
	// recovery policy are the fleet's. Budgets are clamped to the server
	// caps so a tenant cannot out-ask the operator.
	cfg := Config{
		PageElems:     int(m.PageElems),
		DistThreshold: int(m.DistThreshold),
		CachePages:    int(m.CachePages),
		Steal:         m.Steal,
		Adapt:         m.Adapt,
		Trace:         m.Trace,
		TraceCap:      int(m.TraceCap),
		TraceSample:   int(m.TraceSample),
		Heat:          m.Heat,
		Recover:       f.cfg.Recover,
		MaxInstrs:     clampBudget(m.MaxInstrs, f.cfg.MaxInstrs),
		MaxElems:      clampBudget(m.MaxElems, f.cfg.MaxElems),
	}
	res, err := f.Submit(ctx, prog, cfg, m.Args...)
	if err != nil {
		fail(err)
		return
	}

	for _, name := range res.ArrayNames() {
		vals, mask, dims, err := res.ReadArray(name)
		if err != nil {
			fail(err)
			return
		}
		d32 := make([]int32, len(dims))
		for i, d := range dims {
			d32[i] = int32(d)
		}
		// The first chunk always goes out — it registers the array and its
		// dims even when nothing was written; later all-absent chunks are
		// skipped.
		for base := 0; base == 0 || base < len(vals); base += serveChunk {
			end := min(base+serveChunk, len(vals))
			any := base == 0
			for i := base; i < end && !any; i++ {
				any = mask[i]
			}
			if !any {
				continue
			}
			wv := make([]isa.Value, end-base)
			for i := base; i < end; i++ {
				if mask[i] {
					wv[i-base] = isa.Float(vals[i])
				}
			}
			if err := writeFrame(conn, &Msg{Kind: KDump, Seq: seq, Name: name,
				Dims: d32, Off: int32(base), Vals: wv,
				Set: append([]bool(nil), mask[base:end]...)}); err != nil {
				return
			}
			if len(vals) == 0 {
				break
			}
		}
	}
	rm := &Msg{Kind: KResult, Seq: seq}
	if res.Value != nil {
		rm.Val = *res.Value
		rm.Slot = 1 // value present (void programs leave Slot 0)
	}
	_ = writeFrame(conn, rm)
}

// JobArray is one array streamed back by a job server, flattened in
// row-major order with a written-mask (exactly Result.ReadArray's shape).
type JobArray struct {
	Name string
	Dims []int
	Vals []float64
	Mask []bool
}

// JobReply is a job server's answer to SubmitJob.
type JobReply struct {
	// Value is the program's returned value (nil for void main).
	Value *isa.Value

	// Arrays holds every array the program allocated, in allocation
	// order.
	Arrays []JobArray
}

// Array returns a streamed array by name.
func (r *JobReply) Array(name string) (*JobArray, error) {
	for i := range r.Arrays {
		if r.Arrays[i].Name == name {
			return &r.Arrays[i], nil
		}
	}
	return nil, fmt.Errorf("cluster: unknown array %q", name)
}

// SubmitJob sends one program to a job server (Fleet.ServeJobs, typically
// `podsd -serve`) and waits for the streamed reply. cfg supplies the
// job's scheduling knobs and budget requests; transport fields are
// ignored — the server's fleet decides those.
func SubmitJob(ctx context.Context, addr string, prog *isa.Program, cfg Config, args ...isa.Value) (*JobReply, error) {
	wire, err := isa.MarshalPods(prog)
	if err != nil {
		return nil, fmt.Errorf("cluster: marshal program: %w", err)
	}
	var dialer net.Dialer
	conn, err := dialer.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: dialing job server %s: %w", addr, err)
	}
	defer conn.Close()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-stop:
		}
	}()

	if err := writeFrame(conn, &Msg{
		Kind:          KSubmit,
		Seq:           1,
		Args:          args,
		PageElems:     int32(cfg.PageElems),
		DistThreshold: int32(cfg.DistThreshold),
		CachePages:    int32(cfg.CachePages),
		Steal:         cfg.Steal,
		Adapt:         cfg.Adapt,
		Trace:         cfg.Trace,
		TraceCap:      int32(cfg.TraceCap),
		TraceSample:   int32(cfg.TraceSample),
		Heat:          cfg.Heat,
		MaxInstrs:     cfg.MaxInstrs,
		MaxElems:      cfg.MaxElems,
		Prog:          wire,
	}); err != nil {
		return nil, fmt.Errorf("cluster: submitting job: %w", err)
	}

	reply := &JobReply{}
	byName := make(map[string]int) // index into reply.Arrays (stable under append)
	for {
		m, err := readFrame(conn)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, fmt.Errorf("cluster: job server reply: %w", err)
		}
		switch m.Kind {
		case KDump:
			idx, seen := byName[m.Name]
			if !seen {
				dims := make([]int, len(m.Dims))
				elems := 1
				for i, d := range m.Dims {
					dims[i] = int(d)
					elems *= int(d)
				}
				if elems < 0 {
					elems = 0
				}
				idx = len(reply.Arrays)
				byName[m.Name] = idx
				reply.Arrays = append(reply.Arrays, JobArray{
					Name: m.Name, Dims: dims,
					Vals: make([]float64, elems),
					Mask: make([]bool, elems),
				})
			}
			a := &reply.Arrays[idx]
			off := int(m.Off)
			for i, v := range m.Vals {
				if off+i >= len(a.Vals) {
					break
				}
				if i < len(m.Set) && m.Set[i] {
					a.Vals[off+i] = v.F
					a.Mask[off+i] = true
				}
			}
		case KResult:
			if m.Slot == 1 {
				v := m.Val
				reply.Value = &v
			}
			return reply, nil
		case KFail:
			return nil, errors.New(m.Name)
		default:
			return nil, fmt.Errorf("cluster: unexpected %v frame from job server", m.Kind)
		}
	}
}
