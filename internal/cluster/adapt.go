package cluster

// Driver-side half of adaptive repartitioning: the driver is the rebind
// coordinator. Workers flush per-(loop, sweep, iteration) instruction
// costs with every probe ack (KCostReport); the coordinator merges them
// and, once a sweep's observations are complete enough to trust, asks the
// split planner for new cuts and broadcasts them (KRebound). All of this
// traffic is driver control-plane, so it is invisible to the four-counter
// termination sums, and the cuts themselves reach the program only by
// being stamped onto a later SPAWND fan-out — there is no stop-the-world
// barrier to compose with stealing or termination probing.
//
// A sweep is considered finished when a newer sweep of the same loop has
// reported costs and one further complete probe round has passed. The
// first half is the real signal — an iterative kernel whose sweeps are
// serialized by a data dependence cannot start sweep k+1 until sweep k is
// done — and the extra round closes the straggler window: a worker that
// answered the round's probe before executing its last iterations flushes
// the remainder with its next ack, which the driver has merged by the time
// the following round completes (flushes precede acks on the same FIFO
// stream). Nothing cheaper is trustworthy: iteration *coverage* completes
// almost immediately after a fan-out (the loop copies charge every
// iteration while spawning its body SPs, long before the bodies run), so
// planning on coverage would balance spawn overhead, not work.
//
// The heuristic only gates *when* a rebind happens, never what it may
// break: stamped cut vectors tile all of ℤ, so any fan-out — before,
// after, or concurrent with a rebind — partitions its real index range
// exactly, and single-assignment semantics make the results identical no
// matter how the bounds moved.

// sweepCosts accumulates one (loop, sweep)'s observations.
type sweepCosts struct {
	iters      map[int64]int64
	min, max   int64
	firstRound int32 // probe round in which the sweep first reported
}

// loopCosts is the coordinator's per-loop state.
type loopCosts struct {
	sweeps map[int64]*sweepCosts
	order  []int64            // sweep IDs in first-report order
	done   map[int64]struct{} // planned sweeps; late reports are ignored
	cuts   []int64            // currently installed cuts (nil = static)
}

// rebind is one planned cut-vector broadcast.
type rebind struct {
	tmpl int32
	cuts []int64
}

// adaptCoord is the driver's rebind coordinator.
type adaptCoord struct {
	n        int
	loops    map[int32]*loopCosts
	rebounds int64
	retired  []int64 // sweeps retired since the last drainRetired
}

// adaptHysteresis is the minimum fractional predicted-makespan improvement
// a new cut vector must deliver before it is broadcast; smaller gains are
// churn, not balance.
const adaptHysteresis = 0.05

func newAdaptCoord(n int) *adaptCoord {
	return &adaptCoord{n: n, loops: make(map[int32]*loopCosts)}
}

// merge folds one KCostReport into the tables. round is the probe round
// currently being collected. It reports whether the message opened a new
// sweep — the driver's cue to re-tighten its probe cadence, since a sweep
// in flight means a rebind decision is coming up.
func (a *adaptCoord) merge(m *Msg, round int32) (newSweep bool) {
	if len(m.Iters) != len(m.Costs) {
		return false // malformed report; ignore rather than fail a healthy run
	}
	lc := a.loops[m.Tmpl]
	if lc == nil {
		lc = &loopCosts{sweeps: make(map[int64]*sweepCosts), done: make(map[int64]struct{})}
		a.loops[m.Tmpl] = lc
	}
	if _, planned := lc.done[m.Sweep]; planned {
		return false // straggler for a sweep already consumed by the planner
	}
	sc := lc.sweeps[m.Sweep]
	if sc == nil {
		sc = &sweepCosts{iters: make(map[int64]int64), firstRound: round}
		lc.sweeps[m.Sweep] = sc
		lc.order = append(lc.order, m.Sweep)
		newSweep = true
	}
	for i, iter := range m.Iters {
		if len(sc.iters) == 0 || iter < sc.min {
			sc.min = iter
		}
		if len(sc.iters) == 0 || iter > sc.max {
			sc.max = iter
		}
		sc.iters[iter] += m.Costs[i]
	}
	return newSweep
}

// tick runs the rebind policy at the end of complete probe round `round`
// and returns the cut broadcasts to send.
func (a *adaptCoord) tick(round int32) []rebind {
	var out []rebind
	for tmpl, lc := range a.loops {
		idx := -1 // newest finished sweep, as an index into lc.order
		for i := range lc.order {
			if i == len(lc.order)-1 {
				break // the newest sweep has no successor yet
			}
			// A newer sweep has reported: this one is done. Wait one
			// further complete round so workers that were still finishing
			// it when the newer sweep appeared have flushed the remainder.
			if round > lc.sweeps[lc.order[i+1]].firstRound {
				idx = i
			}
		}
		if idx < 0 {
			continue
		}
		sc := lc.sweeps[lc.order[idx]]
		span := sc.max - sc.min + 1
		if span > maxPlanSpan {
			// A loop with an astronomically wide observed index range
			// would need an equally wide dense profile; leave it on its
			// static split rather than allocating one.
			a.retire(lc, idx)
			continue
		}
		costs := make([]int64, span)
		for iter, c := range sc.iters {
			costs[iter-sc.min] = c
		}
		cuts, changed := planCuts(sc.min, costs, a.n, lc.cuts, adaptHysteresis)
		if changed {
			lc.cuts = cuts
			a.rebounds++
			out = append(out, rebind{tmpl: tmpl, cuts: cuts})
		}
		// The planned sweep and everything older is consumed.
		a.retire(lc, idx)
	}
	return out
}

// maxPlanSpan bounds the dense cost profile the planner materializes.
const maxPlanSpan = 1 << 22

// retire drops sweeps order[0..idx] from the tables, remembering their IDs
// so stragglers cannot revive them. Retired IDs also accumulate for the
// driver's replay-log GC: a retired sweep is one whose successor has
// reported (plus a straggler round), the coordinator's strongest
// completion signal.
func (a *adaptCoord) retire(lc *loopCosts, idx int) {
	for _, id := range lc.order[:idx+1] {
		delete(lc.sweeps, id)
		lc.done[id] = struct{}{}
		a.retired = append(a.retired, id)
	}
	lc.order = append(lc.order[:0], lc.order[idx+1:]...)
}

// drainRetired hands the sweeps retired since the last call to the caller
// (the driver's checkpoint kickoff).
func (a *adaptCoord) drainRetired() []int64 {
	out := a.retired
	a.retired = nil
	return out
}
