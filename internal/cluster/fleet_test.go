package cluster

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/isa"
	"repro/internal/rtcfg"
)

// --- concurrent jobs on one persistent TCP fleet ---

// TestFleetTCPConcurrentJobs is the distributed-process leg of the
// concurrent-jobs determinacy column: four jobs of mixed kernels and mixed
// knob sets run at once on one persistent fleet of TCP workers, and each
// must agree bit-for-bit with the simulator reference — the proof that
// job-keyed worker state isolates tenants across real wires, not just
// in-process channels.
func TestFleetTCPConcurrentJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a TCP fleet")
	}
	ctx := testCtx(t)
	addrs, join := startTCPWorkers(t, ctx, 4)
	defer join()

	fleet, err := OpenFleet(ctx, Config{Workers: addrs, MaxJobs: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	jobs := []struct {
		kernel string
		n      int
		cfg    Config
	}{
		{"matmul", 10, Config{PageElems: 8}},
		{"heat", 10, Config{PageElems: 8, Steal: true}},
		{"relax", 8, Config{PageElems: 8, Adapt: true, ProbeInterval: 20 * time.Microsecond}},
		{"triangular", 10, Config{PageElems: 8, Steal: true, CachePages: 2}},
	}

	type ref struct {
		prog  *isa.Program
		args  []isa.Value
		vals  map[string][]float64
		masks map[string][]bool
	}
	refs := make([]ref, len(jobs))
	for i, j := range jobs {
		k, prog := compileKernel(t, j.kernel)
		args := k.Args(j.n)
		vals, masks := simArraysMasked(t, prog, 4, k.Arrays, args...)
		refs[i] = ref{prog: prog, args: args, vals: vals, masks: masks}
	}

	var wg sync.WaitGroup
	results := make([]*Result, len(jobs))
	errs := make([]error, len(jobs))
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = fleet.Submit(ctx, refs[i].prog, jobs[i].cfg, refs[i].args...)
		}(i)
	}
	wg.Wait()
	for i, j := range jobs {
		if errs[i] != nil {
			t.Fatalf("%s: %v", j.kernel, errs[i])
		}
		checkAgainstSimMasked(t, results[i], refs[i].vals, refs[i].masks)
	}
}

// --- admission control ---

// TestFleetAdmissionCap pins the rejection contract deterministically: a
// fleet at its MaxJobs ceiling rejects the next Submit immediately with a
// diagnostic, and accepts again as soon as a slot frees. The occupied
// slots are injected directly so the test never races real job lifetimes.
func TestFleetAdmissionCap(t *testing.T) {
	ctx := testCtx(t)
	fleet, err := OpenFleet(ctx, Config{NumPEs: 2, MaxJobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	fleet.mu.Lock()
	for i := 0; i < 2; i++ {
		id := fleet.allocJobIDLocked()
		fleet.jobs[id] = &fleetJob{box: newMailbox()}
	}
	fleet.mu.Unlock()

	k, prog := compileKernel(t, "matmul")
	_, err = fleet.Submit(ctx, prog, Config{PageElems: 8}, k.Args(6)...)
	if err == nil {
		t.Fatal("submit to a full fleet succeeded; want rejection")
	}
	if !strings.Contains(err.Error(), "job rejected") {
		t.Fatalf("rejection error %q does not name the admission cap", err)
	}

	// Free one slot: the same submission must now run to completion.
	fleet.mu.Lock()
	for id := range fleet.jobs {
		delete(fleet.jobs, id)
		break
	}
	fleet.mu.Unlock()
	res, err := fleet.Submit(ctx, prog, Config{PageElems: 8}, k.Args(6)...)
	if err != nil {
		t.Fatalf("submit after a slot freed: %v", err)
	}
	vals, masks := simArraysMasked(t, prog, 2, k.Arrays, k.Args(6)...)
	checkAgainstSimMasked(t, res, vals, masks)

	fleet.mu.Lock()
	for id := range fleet.jobs {
		delete(fleet.jobs, id) // drop the remaining fake so Close is clean
	}
	fleet.mu.Unlock()
}

// --- steal-grant sequence fence ---

// TestStealGrantSeqFence pins the duplicate-grant dedup in isolation: a
// re-delivered KStealGrant at an already-applied sequence number from the
// same (victim, incarnation) is dropped whole — not failed, not
// re-installed — while higher sequences and other incarnations install
// normally (a respawned victim's numbering legitimately restarts).
func TestStealGrantSeqFence(t *testing.T) {
	prog := taskProgram()
	eps := newChanTransport(2, 0)
	geo := rtcfg.Geometry{PEs: 2, PageElems: 8, DistThreshold: 16}
	w := newWorker(1, 2, geo, prog, eps[1], workerOpts{steal: true})

	item := func(seq int64) StealItem {
		return StealItem{
			SP:   packID(0, seq),
			Tmpl: 0,
			Args: make([]isa.Value, 4), // taskProgram's template: NSlots 4
			Set:  make([]bool, 4),
		}
	}

	w.installStolen(&Msg{Kind: KStealGrant, From: 0, Seq: 1, Batch: []StealItem{item(1)}})
	if w.steals != 1 || len(w.insts) != 1 {
		t.Fatalf("first grant installed %d SPs (%d steals), want 1", len(w.insts), w.steals)
	}

	// Re-delivery of the same grant (retry after a lost ack, or a replayed
	// wire): must be dropped before any per-item check can fail the run —
	// even though its SP is still live here.
	w.installStolen(&Msg{Kind: KStealGrant, From: 0, Seq: 1, Batch: []StealItem{item(1)}})
	if w.failed {
		t.Fatal("re-delivered grant failed the worker")
	}
	if w.dupGrants != 1 {
		t.Fatalf("dupGrants = %d, want 1", w.dupGrants)
	}
	if w.steals != 1 || len(w.insts) != 1 {
		t.Fatalf("re-delivered grant changed state: %d SPs, %d steals", len(w.insts), w.steals)
	}

	// A stale lower sequence arriving late is equally dead.
	w.installStolen(&Msg{Kind: KStealGrant, From: 0, Seq: 2, Batch: []StealItem{item(2)}})
	w.installStolen(&Msg{Kind: KStealGrant, From: 0, Seq: 1, Batch: []StealItem{item(3)}})
	if w.dupGrants != 2 || w.steals != 2 {
		t.Fatalf("after stale low-seq grant: dupGrants = %d, steals = %d; want 2, 2",
			w.dupGrants, w.steals)
	}

	// The victim's next incarnation restarts its numbering: Seq 1 under
	// Inc 1 is a fresh grant, not a duplicate of Inc 0's Seq 1.
	reborn := StealItem{SP: packIncID(0, 1, 9), Tmpl: 0,
		Args: make([]isa.Value, 4), Set: make([]bool, 4)}
	w.installStolen(&Msg{Kind: KStealGrant, From: 0, Inc: 1, Seq: 1, Batch: []StealItem{reborn}})
	if w.failed || w.steals != 3 {
		t.Fatalf("new-incarnation Seq 1 grant not installed: failed=%v steals=%d",
			w.failed, w.steals)
	}
}

// --- replay-log GC checkpoints ---

// TestReplayLogGCCheckpoints: with recovery and adaptation both on, the
// driver must complete at least one replay-log GC checkpoint on a kernel
// whose sweeps retire mid-run — and the run must still match the
// simulator bit-for-bit (the GC dropped only provably-covered log
// entries). Checkpoint kickoff rides probe-round timing, so the test
// retries a few times before declaring the mechanism dead.
func TestReplayLogGCCheckpoints(t *testing.T) {
	k, prog := compileKernel(t, "relax")
	args := k.Args(10)
	wantVals, wantMasks := simArraysMasked(t, prog, 1, k.Arrays, args...)
	cfg := Config{
		NumPEs: 4, PageElems: 8, Adapt: true, Recover: true,
		ProbeInterval: 20 * time.Microsecond,
	}
	for attempt := 0; attempt < 5; attempt++ {
		res, err := Execute(testCtx(t), prog, cfg, args...)
		if err != nil {
			t.Fatal(err)
		}
		checkAgainstSimMasked(t, res, wantVals, wantMasks)
		if res.Stats.Checkpoints >= 1 {
			t.Logf("attempt %d: %d checkpoints completed", attempt, res.Stats.Checkpoints)
			return
		}
	}
	t.Fatal("no replay-log GC checkpoint completed in 5 runs (Recover+Adapt)")
}

// --- job-server protocol round trip ---

// TestServeJobsRoundTrip drives the framed submit protocol end to end
// against a live fleet: a client ships a serialized program over TCP,
// the server runs it as one fleet job and streams the arrays back, and
// the reassembled reply matches the simulator reference exactly.
func TestServeJobsRoundTrip(t *testing.T) {
	ctx := testCtx(t)
	fleet, err := OpenFleet(ctx, Config{NumPEs: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go fleet.ServeJobs(ctx, ln)

	k, prog := compileKernel(t, "matmul")
	n := 10
	want := simArrays(t, prog, 4, k.Arrays, k.Args(n)...)

	reply, err := SubmitJob(ctx, ln.Addr().String(), prog, Config{PageElems: 8}, k.Args(n)...)
	if err != nil {
		t.Fatal(err)
	}
	for name, ref := range want {
		a, err := reply.Array(name)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Vals) != len(ref) {
			t.Fatalf("%s: %d elements streamed, want %d", name, len(a.Vals), len(ref))
		}
		for i := range ref {
			if !a.Mask[i] {
				t.Fatalf("%s[%d] not marked written in the streamed reply", name, i)
			}
			if a.Vals[i] != ref[i] {
				t.Fatalf("%s[%d] = %v, want %v (server reply disagrees with sim)",
					name, i, a.Vals[i], ref[i])
			}
		}
	}
}

// TestServeJobsServerBudgetCap: the server clamps every tenant's budget
// to its own cap — a client asking for unlimited elements on a capped
// server is rejected with the budget diagnostic, streamed back as a
// failure frame rather than a hang or a dropped connection.
func TestServeJobsServerBudgetCap(t *testing.T) {
	ctx := testCtx(t)
	fleet, err := OpenFleet(ctx, Config{NumPEs: 2, MaxElems: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go fleet.ServeJobs(ctx, ln)

	k, prog := compileKernel(t, "matmul")
	_, err = SubmitJob(ctx, ln.Addr().String(), prog, Config{PageElems: 8}, k.Args(6)...)
	if err == nil {
		t.Fatal("over-budget job succeeded on a capped server")
	}
	if !strings.Contains(err.Error(), "budget") {
		t.Fatalf("capped server failed with %q; want the element-budget diagnostic", err)
	}
}

// TestClampBudget pins the budget-merge table: zero is unlimited on both
// sides, the effective budget is the tighter of the two, and a negative
// client request degrades to unlimited-within-cap rather than wrapping.
func TestClampBudget(t *testing.T) {
	cases := []struct{ client, server, want int64 }{
		{0, 0, 0},  // both unlimited
		{5, 0, 5},  // client tightens an unlimited server
		{0, 7, 7},  // server cap applies to an unlimited client
		{5, 7, 5},  // client under the cap keeps its ask
		{9, 7, 7},  // client over the cap is clamped
		{-3, 0, 0}, // nonsense request, unlimited server
		{-3, 7, 7}, // nonsense request degrades to the cap
	}
	for _, c := range cases {
		if got := clampBudget(c.client, c.server); got != c.want {
			t.Errorf("clampBudget(%d, %d) = %d, want %d", c.client, c.server, got, c.want)
		}
	}
}
