package cluster

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/isa"
)

// The TCP transport runs each PE as its own endpoint over real sockets, so
// workers can be separate OS processes (cmd/podsd). Framing is a 4-byte
// big-endian length prefix followed by the protocol.go wire encoding.
//
// Topology: the driver dials every worker and configures it with KInit
// (PE index, geometry, peer address list, serialized program). Workers dial
// each other lazily on first send. Every connection is written only by the
// endpoint that created it — except the driver connection, which is duplex
// (driver → probes/spawns, worker → acks/results) — so each direction has
// exactly one writer and no write locking is needed. Per-pair FIFO follows
// from each (sender, receiver) pair using a single ordered stream.

// maxFrame bounds a frame's payload (a page of values is ~KB; programs a
// few hundred KB — 64 MiB is generous headroom against corrupt prefixes).
const maxFrame = 1 << 26

// writeFrame encodes m and writes one length-prefixed frame.
func writeFrame(conn net.Conn, m *Msg) error {
	payload := encodeMsg(make([]byte, 4), m)
	if len(payload)-4 > maxFrame {
		return fmt.Errorf("cluster: frame of %d bytes exceeds limit", len(payload)-4)
	}
	binary.BigEndian.PutUint32(payload[:4], uint32(len(payload)-4))
	_, err := conn.Write(payload)
	return err
}

// readFrame reads one length-prefixed frame and decodes it.
func readFrame(conn net.Conn) (*Msg, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("cluster: frame length %d exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(conn, buf); err != nil {
		return nil, err
	}
	return decodeMsg(buf)
}

// pump reads frames from conn into box until EOF or error. onInit, when
// non-nil, observes KInit messages (the worker uses it to learn its driver
// connection). Decode errors (corrupt frames) surface as synthetic KFail
// messages so the endpoint's owner can abort cleanly; connection-level
// errors (EOF, reset, close) are connection *loss*, which the owner
// detects through its own means — the driver's per-conn wrapper
// synthesizes a KDown, a worker sees its driver stream close.
func pump(conn net.Conn, box *mailbox, onInit func(net.Conn)) {
	for {
		m, err := readFrame(conn)
		if err != nil {
			var ne net.Error
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) &&
				!errors.Is(err, io.ErrUnexpectedEOF) && !errors.As(err, &ne) {
				box.put(&Msg{Kind: KFail, Name: fmt.Sprintf("transport: %v", err)})
			}
			return
		}
		if m.Kind == KInit && onInit != nil {
			onInit(conn)
		}
		box.put(m)
	}
}

// tcpDriver is the driver's endpoint: one dialed connection per worker.
// The mutex serializes writers — every concurrent job's driver loop sends
// through this one endpoint — and guards re-homing swaps of a dead
// worker's connection.
type tcpDriver struct {
	self int
	box  *mailbox

	mu    sync.Mutex
	conns []net.Conn
}

func (d *tcpDriver) Send(to int, m *Msg) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if to < 0 || to >= len(d.conns) {
		return fmt.Errorf("cluster: send to unknown worker %d", to)
	}
	m.From = int32(d.self)
	return writeFrame(d.conns[to], m)
}

// repoint swaps pe's connection for a re-homed replacement. The old
// connection's pump (if still running) exits on the close; its KDown
// notice carries the old host generation and is fenced by the fleet.
func (d *tcpDriver) repoint(pe int, conn net.Conn) {
	d.mu.Lock()
	if old := d.conns[pe]; old != nil {
		old.Close()
	}
	d.conns[pe] = conn
	d.mu.Unlock()
}

func (d *tcpDriver) Recv(ctx context.Context) (*Msg, error) { return d.box.recv(ctx) }

func (d *tcpDriver) TryRecv() (*Msg, bool) {
	m, ok, _, _ := d.box.pop()
	return m, ok
}

func (d *tcpDriver) Close() error {
	d.mu.Lock()
	for _, c := range d.conns {
		c.Close()
	}
	d.mu.Unlock()
	d.box.close()
	return nil
}

// pumpWorkerConn pumps one worker connection into the driver's mailbox and
// synthesizes a KDown notice when it drops: a worker dying mid-run is
// detected at connection-loss speed, and the notice carries the host
// generation the connection served so a replaced worker's teardown is
// fenced instead of re-triggering recovery. After d.Close() the box is
// closed, so the put is a no-op during normal cleanup.
func pumpWorkerConn(d *tcpDriver, pe int, inc int32, conn net.Conn) {
	pump(conn, d.box, nil)
	d.box.put(&Msg{Kind: KDown, From: int32(pe), PE: int32(pe), Inc: inc})
}

// tcpWorker is a worker's endpoint: the accepted driver connection plus
// lazily dialed peer connections. The mutex serializes writers — every
// job instance hosted on this PE sends through this one endpoint.
type tcpWorker struct {
	self  int
	n     int
	peers []string

	mu     sync.Mutex
	driver net.Conn
	dialed []net.Conn

	box *mailbox
}

func (t *tcpWorker) Send(to int, m *Msg) error {
	m.From = int32(t.self)
	t.mu.Lock()
	defer t.mu.Unlock()
	if to == t.n {
		if t.driver == nil {
			return errors.New("cluster: no driver connection")
		}
		return writeFrame(t.driver, m)
	}
	if to < 0 || to >= t.n {
		return fmt.Errorf("cluster: send to unknown endpoint %d", to)
	}
	if t.dialed[to] == nil {
		conn, err := net.Dial("tcp", t.peers[to])
		if err != nil {
			return fmt.Errorf("cluster: dialing peer %d at %s: %w", to, t.peers[to], err)
		}
		t.dialed[to] = conn
	}
	return writeFrame(t.dialed[to], m)
}

// Repoint installs an updated peer address list after a recovery: a peer
// whose address changed was replaced, so its cached connection (which may
// point at the dead incarnation) is dropped and redialed lazily on the
// next send.
func (t *tcpWorker) Repoint(peers []string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, addr := range peers {
		if i >= t.n {
			break
		}
		if t.peers[i] == addr {
			continue
		}
		t.peers[i] = addr
		if t.dialed[i] != nil {
			t.dialed[i].Close()
			t.dialed[i] = nil
		}
	}
}

func (t *tcpWorker) Recv(ctx context.Context) (*Msg, error) { return t.box.recv(ctx) }

func (t *tcpWorker) TryRecv() (*Msg, bool) {
	m, ok, _, _ := t.box.pop()
	return m, ok
}

func (t *tcpWorker) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.driver != nil {
		t.driver.Close()
	}
	for _, c := range t.dialed {
		if c != nil {
			c.Close()
		}
	}
	t.box.close()
	return nil
}

// ServeWorker runs one TCP worker PE on ln until the driver session ends
// (fleet-level KStop, driver connection loss, or ctx expiry). It accepts
// connections from the driver and from peer workers, waits for the
// driver's fleet-level KInit (identity and peer table — programs and
// knobs arrive per job), and then hosts any number of concurrent job
// instances, created by KJobStart frames and torn down by KJobEnd. Each
// call serves one driver session; a long-lived `podsd -worker` process
// serves sessions in a loop, staying up across drivers and jobs.
func ServeWorker(ctx context.Context, ln net.Listener) error {
	t := &tcpWorker{box: newMailbox()}
	onInit := func(conn net.Conn) {
		t.mu.Lock()
		t.driver = conn
		t.mu.Unlock()
	}

	var accepted []net.Conn
	var amu sync.Mutex
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			amu.Lock()
			accepted = append(accepted, conn)
			amu.Unlock()
			go func(conn net.Conn) {
				pump(conn, t.box, onInit)
				// If the driver's connection drops without a KStop (driver
				// killed mid-run), close the mailbox so the host drains
				// what it has and exits instead of hanging forever.
				t.mu.Lock()
				isDriver := conn == t.driver
				t.mu.Unlock()
				if isDriver {
					t.box.close()
				}
			}(conn)
		}
	}()
	defer func() {
		ln.Close()
		amu.Lock()
		for _, c := range accepted {
			c.Close()
		}
		amu.Unlock()
		t.Close()
	}()

	// Wait for the driver's fleet configuration; frames from eager peers
	// can arrive first and are replayed into the host once it exists.
	var stash []*Msg
	var init *Msg
	for init == nil {
		m, err := t.box.recv(ctx)
		if err != nil {
			return err
		}
		if m.Kind == KInit {
			init = m
		} else {
			stash = append(stash, m)
		}
	}
	t.self = int(init.PE)
	t.n = int(init.NumPEs)
	t.peers = init.Peers
	t.dialed = make([]net.Conn, t.n)
	h := newFleetHost(t.self, t.n, t, func(_ int32, wire []byte) (*isa.Program, error) {
		if len(wire) == 0 {
			return nil, errors.New("job start carried no program")
		}
		return isa.UnmarshalPods(wire)
	})
	h.serve(ctx, stash)
	return nil
}
