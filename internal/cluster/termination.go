package cluster

import (
	"fmt"
	"strings"
)

// Distributed termination detection, four-counter style (Mattern 1987): the
// driver repeatedly probes all workers; each worker answers with its
// cumulative worker-to-worker message counts (sent, received) and its live
// SP count. The computation has terminated when two consecutive complete
// rounds observe zero live SPs everywhere and all four message sums are
// equal — then no worker was active between the waves and no data message
// was in flight, so nothing can ever change again.
//
// Per-sender FIFO makes the check double as a result barrier: a worker's
// round-r ack follows every result token and alloc broadcast it previously
// sent the driver, so by the time round r is evaluated the driver has
// already processed them.

// ackState is one worker's most recent probe answer.
type ackState struct {
	round      int32
	sent, recv int64
	live       int32
	deferred   int64
	hits       int64
	misses     int64
	steals     int64
	forwards   int64
	instrs     int64
	evicts     int64
	refetches  int64
	replayed   int64
	flushed    bool
	qdepth     int64

	prefetches   int64
	prefetchHits int64
	capNow       int64
}

// detector accumulates probe rounds and decides termination.
type detector struct {
	acks []ackState // per worker, latest ack

	// round is the probe round currently being collected; seen marks the
	// PEs that have answered it, and got counts how many have. Tracking
	// both is what makes a duplicated or replayed ack harmless: an ack for
	// any other round is ignored, and a PE counts at most once per round —
	// a duplicate can therefore never complete a round in place of a PE
	// that never answered.
	round int32
	seen  []bool
	got   int

	// epoch is the counting epoch acks must belong to. A recovery bumps it
	// (and every worker zeroes its counters on adoption), so an ack whose
	// sums predate the recovery can never mix into the new epoch's totals.
	epoch int32

	// prev holds the previous complete round's sums; prevOK marks it as a
	// candidate (all live == 0, sent == recv).
	prevSent, prevRecv int64
	prevOK             bool
}

func newDetector(n int) *detector {
	return &detector{acks: make([]ackState, n), seen: make([]bool, n)}
}

// begin starts collecting a new probe round.
func (d *detector) begin(round int32) {
	d.round = round
	d.got = 0
	for i := range d.seen {
		d.seen[i] = false
	}
}

// record stores one ack; acks from any round other than the current one
// (or any counting epoch other than the current one), and repeated acks
// from the same PE within a round, are ignored. It returns true when the
// round is complete (every PE answered once).
func (d *detector) record(pe int, m *Msg) bool {
	if pe < 0 || pe >= len(d.acks) || m.Round != d.round || m.Epoch != d.epoch || d.seen[pe] {
		return false
	}
	d.seen[pe] = true
	d.acks[pe] = ackState{
		round: m.Round, sent: m.Sent, recv: m.Recv, live: m.Live,
		deferred: m.Deferred, hits: m.Hits, misses: m.Misses,
		steals: m.Steals, forwards: m.Forwards, instrs: m.Instrs,
		evicts: m.Evicts, refetches: m.Refetches, replayed: m.Replayed,
		flushed: m.Flushed, qdepth: m.QDepth,
		prefetches: m.Prefetches, prefetchHits: m.PrefetchHits, capNow: m.CacheCapNow,
	}
	d.got++
	return d.got == len(d.acks)
}

// roundDone evaluates a completed round. It returns true when termination
// is detected. Beyond the classic conditions, every worker must report
// its counting epoch flushed: a frame sent before an epoch reset is
// invisible to the new epoch's sums on both ends, so only the flush
// markers (which trail all older-epoch traffic on each FIFO stream) prove
// nothing uncounted is still in flight.
func (d *detector) roundDone() bool {
	var sent, recv int64
	allIdle := true
	for _, a := range d.acks {
		sent += a.sent
		recv += a.recv
		if a.live > 0 {
			allIdle = false
		}
		if !a.flushed {
			allIdle = false
		}
	}
	ok := allIdle && sent == recv
	terminated := ok && d.prevOK && sent == d.prevSent && recv == d.prevRecv
	d.prevSent, d.prevRecv, d.prevOK = sent, recv, ok
	return terminated
}

// reset moves the detector into a new counting epoch after a recovery: the
// quiet-round candidate is discarded (its sums belong to the old epoch)
// and subsequent acks must carry the new epoch to count.
func (d *detector) reset(epoch int32) {
	d.epoch = epoch
	d.prevOK = false
	d.prevSent, d.prevRecv = 0, 0
}

// unacked lists the PEs that have not answered the round being collected —
// the recovery candidates when the round deadline fires.
func (d *detector) unacked() []int {
	var out []int
	for pe, s := range d.seen {
		if !s {
			out = append(out, pe)
		}
	}
	return out
}

// liveSPs sums the live SP counts of the latest acks (deadlock diagnostics).
func (d *detector) liveSPs() int {
	n := 0
	for _, a := range d.acks {
		n += int(a.live)
	}
	return n
}

// stats aggregates the shard statistics of the latest acks.
func (d *detector) stats() Stats {
	var s Stats
	for _, a := range d.acks {
		s.DeferredReads += a.deferred
		s.CacheHits += a.hits
		s.CacheMisses += a.misses
		s.Evictions += a.evicts
		s.Refetches += a.refetches
		s.MsgsSent += a.sent
		s.Steals += a.steals
		s.Forwards += a.forwards
		s.ReplayedSPs += a.replayed
		s.Prefetches += a.prefetches
		s.PrefetchHits += a.prefetchHits
		// Summed across PEs: the cluster-wide resident-page budget at the
		// last ack (each PE reports its own current CachePages bound).
		s.CacheCapNow += a.capNow
	}
	return s
}

// stallReport describes the round being collected for the driver's
// round-deadline diagnostic: which PEs never answered, and every PE's
// last recorded ack state.
func (d *detector) stallReport() string {
	var b strings.Builder
	for pe, a := range d.acks {
		if pe > 0 {
			b.WriteString("; ")
		}
		if d.seen[pe] {
			fmt.Fprintf(&b, "pe %d: acked round %d", pe, a.round)
		} else {
			fmt.Fprintf(&b, "pe %d: NO ACK for round %d (last ack round %d)", pe, d.round, a.round)
		}
		fmt.Fprintf(&b, " live=%d sent=%d recv=%d", a.live, a.sent, a.recv)
	}
	return b.String()
}

// perPEInstrs reports each worker's executed-instruction count from the
// latest acks (the SKEW experiment's load-balance metric).
func (d *detector) perPEInstrs() []int64 {
	out := make([]int64, len(d.acks))
	for i, a := range d.acks {
		out[i] = a.instrs
	}
	return out
}

// perPEStats reports each worker's full counter breakdown from the latest
// acks — the per-PE half of Result.Stats, so balance claims are checkable
// per worker instead of only as cluster-wide sums.
func (d *detector) perPEStats() []PEStat {
	out := make([]PEStat, len(d.acks))
	for i, a := range d.acks {
		out[i] = PEStat{
			PE: i, Instrs: a.instrs, Sent: a.sent, Recv: a.recv,
			DeferredReads: a.deferred, CacheHits: a.hits, CacheMisses: a.misses,
			Evictions: a.evicts, Refetches: a.refetches,
			Steals: a.steals, Forwards: a.forwards, Replayed: a.replayed,
			Prefetches: a.prefetches, PrefetchHits: a.prefetchHits,
			CacheCapNow: a.capNow,
		}
	}
	return out
}
