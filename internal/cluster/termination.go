package cluster

// Distributed termination detection, four-counter style (Mattern 1987): the
// driver repeatedly probes all workers; each worker answers with its
// cumulative worker-to-worker message counts (sent, received) and its live
// SP count. The computation has terminated when two consecutive complete
// rounds observe zero live SPs everywhere and all four message sums are
// equal — then no worker was active between the waves and no data message
// was in flight, so nothing can ever change again.
//
// Per-sender FIFO makes the check double as a result barrier: a worker's
// round-r ack follows every result token and alloc broadcast it previously
// sent the driver, so by the time round r is evaluated the driver has
// already processed them.

// ackState is one worker's most recent probe answer.
type ackState struct {
	round      int32
	sent, recv int64
	live       int32
	deferred   int64
	hits       int64
	misses     int64
}

// detector accumulates probe rounds and decides termination.
type detector struct {
	acks []ackState // per worker, latest ack

	// got counts acks received for the current round.
	got int

	// prev holds the previous complete round's sums; prevOK marks it as a
	// candidate (all live == 0, sent == recv).
	prevSent, prevRecv int64
	prevOK             bool
}

func newDetector(n int) *detector {
	return &detector{acks: make([]ackState, n)}
}

// record stores one ack for the given round; acks from stale rounds are
// ignored. It returns true when the round is complete.
func (d *detector) record(pe int, m *Msg) bool {
	if pe < 0 || pe >= len(d.acks) {
		return false
	}
	d.acks[pe] = ackState{
		round: m.Round, sent: m.Sent, recv: m.Recv, live: m.Live,
		deferred: m.Deferred, hits: m.Hits, misses: m.Misses,
	}
	d.got++
	return d.got == len(d.acks)
}

// roundDone evaluates a completed round and resets for the next one. It
// returns true when termination is detected.
func (d *detector) roundDone() bool {
	d.got = 0
	var sent, recv int64
	allIdle := true
	for _, a := range d.acks {
		sent += a.sent
		recv += a.recv
		if a.live > 0 {
			allIdle = false
		}
	}
	ok := allIdle && sent == recv
	terminated := ok && d.prevOK && sent == d.prevSent && recv == d.prevRecv
	d.prevSent, d.prevRecv, d.prevOK = sent, recv, ok
	return terminated
}

// liveSPs sums the live SP counts of the latest acks (deadlock diagnostics).
func (d *detector) liveSPs() int {
	n := 0
	for _, a := range d.acks {
		n += int(a.live)
	}
	return n
}

// stats aggregates the shard statistics of the latest acks.
func (d *detector) stats() Stats {
	var s Stats
	for _, a := range d.acks {
		s.DeferredReads += a.deferred
		s.CacheHits += a.hits
		s.CacheMisses += a.misses
		s.MsgsSent += a.sent
	}
	return s
}
