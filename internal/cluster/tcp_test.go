package cluster

import (
	"context"
	"net"
	"sync"
	"testing"

	"repro/internal/isa"
	"repro/internal/kernels"
)

// startTCPWorkers launches n in-process TCP workers on loopback ports and
// returns their addresses plus a join function.
func startTCPWorkers(t *testing.T, ctx context.Context, n int) ([]string, func()) {
	t.Helper()
	addrs := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := ServeWorker(ctx, ln); err != nil && ctx.Err() == nil {
				t.Errorf("worker: %v", err)
			}
		}()
	}
	return addrs, wg.Wait
}

// TestTCPMatmulAgreesWithSim is the acceptance check for the TCP transport:
// workers on separate loopback ports, exchanging length-prefixed frames,
// must produce bit-for-bit the simulator's arrays.
func TestTCPMatmulAgreesWithSim(t *testing.T) {
	k, _ := kernels.ByName("matmul")
	prog := compile(t, k.File(), k.Source)
	const n = 8
	want := simArrays(t, prog, 4, k.Arrays, k.Args(n)...)

	ctx := testCtx(t)
	addrs, join := startTCPWorkers(t, ctx, 4)
	res, err := Execute(ctx, prog, Config{Workers: addrs}, k.Args(n)...)
	if err != nil {
		t.Fatal(err)
	}
	join()
	checkAgainstSim(t, res, want)
	if res.Stats.MsgsSent == 0 {
		t.Error("TCP run sent no inter-PE messages")
	}
}

// TestTCPStealTriangular checks that the Steal knob travels through KInit
// to TCP workers and that migration over real sockets stays determinate.
// (Whether any steal lands depends on host scheduling; the knob plumbing
// and the steal-on schedule's agreement are what this pins down.)
func TestTCPStealTriangular(t *testing.T) {
	k, _ := kernels.ByName("triangular")
	prog := compile(t, k.File(), k.Source)
	const n = 24
	wantVals, wantMasks := simArraysMasked(t, prog, 4, k.Arrays, k.Args(n)...)

	ctx := testCtx(t)
	addrs, join := startTCPWorkers(t, ctx, 4)
	res, err := Execute(ctx, prog, Config{Workers: addrs, Steal: true}, k.Args(n)...)
	if err != nil {
		t.Fatal(err)
	}
	join()
	checkAgainstSimMasked(t, res, wantVals, wantMasks)
	t.Logf("tcp triangular@4PE: steals=%d forwards=%d", res.Stats.Steals, res.Stats.Forwards)
}

// TestTCPReturnsValue checks the result-token path over TCP.
func TestTCPReturnsValue(t *testing.T) {
	prog := compile(t, "ret.id", `
func main(a: int, b: int) -> int {
	return a * b + 1;
}`)
	ctx := testCtx(t)
	addrs, join := startTCPWorkers(t, ctx, 2)
	res, err := Execute(ctx, prog, Config{Workers: addrs}, isa.Int(6), isa.Int(7))
	if err != nil {
		t.Fatal(err)
	}
	join()
	if res.Value == nil || res.Value.I != 43 {
		t.Fatalf("result = %+v, want 43", res.Value)
	}
}
