package cluster

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/isa"
	"repro/internal/rtcfg"
)

// Unit tests for the four-counter termination detector in isolation: round
// accounting (duplicate and stale acks), the two-consecutive-quiet-rounds
// rule, and the stall report the driver's round deadline prints.

// detAck records one probe answer on d: PE pe answering round with the
// given counters and live SP count (epoch 0, trivially flushed). Returns
// whether the round completed.
func detAck(d *detector, pe int, round int32, sent, recv int64, live int32) bool {
	return d.record(pe, &Msg{Kind: KAck, Round: round, Sent: sent, Recv: recv, Live: live, Flushed: true})
}

// completeRound collects one full round on d and evaluates it.
func completeRound(t *testing.T, d *detector, round int32, sent, recv int64, live int32) bool {
	t.Helper()
	d.begin(round)
	for pe := 0; pe < len(d.acks); pe++ {
		done := detAck(d, pe, round, sent, recv, live)
		if (pe == len(d.acks)-1) != done {
			t.Fatalf("round %d: completion after pe %d = %v", round, pe, done)
		}
	}
	return d.roundDone()
}

// TestDetectorIgnoresDuplicateAcks is the regression test for the probe
// accounting bug: a duplicated or replayed ack from one PE must not
// complete a round in place of a PE that never answered, and acks from
// stale rounds must be ignored.
func TestDetectorIgnoresDuplicateAcks(t *testing.T) {
	d := newDetector(2)
	d.begin(1)
	ack := func(pe int, round int32, sent int64) bool {
		return detAck(d, pe, round, sent, sent, 0)
	}
	if ack(0, 1, 10) {
		t.Fatal("round complete after a single PE answered")
	}
	if ack(0, 1, 10) {
		t.Fatal("duplicate ack from PE 0 completed the round")
	}
	if ack(0, 1, 11) {
		t.Fatal("replayed ack with different counters completed the round")
	}
	if ack(1, 0, 5) {
		t.Fatal("stale-round ack completed the round")
	}
	if !ack(1, 1, 10) {
		t.Fatal("round not complete after both PEs answered")
	}

	// Out-of-range PE indexes are ignored too.
	d.begin(2)
	if ack(-1, 2, 0) || ack(2, 2, 0) {
		t.Fatal("out-of-range PE completed the round")
	}

	// An ack from a round the detector has moved past stays ignored.
	if ack(0, 1, 10) {
		t.Fatal("ack from a finished round completed the new round")
	}
}

// TestDetectorTwoQuietRoundsRule: termination needs two consecutive
// complete rounds that both observe zero live SPs everywhere and equal,
// unchanged message sums — one quiet round alone proves nothing (a message
// could have been in flight around the probe wave).
func TestDetectorTwoQuietRoundsRule(t *testing.T) {
	d := newDetector(3)

	// Round 1: quiet (all idle, sums balanced) — but first of its kind.
	if completeRound(t, d, 1, 10, 10, 0) {
		t.Fatal("terminated after a single quiet round")
	}
	// Round 2: identical sums, still idle — now termination.
	if !completeRound(t, d, 2, 10, 10, 0) {
		t.Fatal("two identical quiet rounds did not terminate")
	}
}

func TestDetectorQuietRoundResetByTraffic(t *testing.T) {
	d := newDetector(2)
	if completeRound(t, d, 1, 10, 10, 0) {
		t.Fatal("terminated after a single quiet round")
	}
	// Traffic happened between the waves: sums moved, so the candidate
	// resets even though the round is quiet again.
	if completeRound(t, d, 2, 12, 12, 0) {
		t.Fatal("terminated although the sums changed between quiet rounds")
	}
	if !completeRound(t, d, 3, 12, 12, 0) {
		t.Fatal("stable quiet pair after traffic did not terminate")
	}
}

func TestDetectorLiveSPsBlockTermination(t *testing.T) {
	d := newDetector(2)
	// Balanced sums but a live SP: not even a candidate round.
	if completeRound(t, d, 1, 10, 10, 1) {
		t.Fatal("terminated with live SPs")
	}
	if completeRound(t, d, 2, 10, 10, 0) {
		t.Fatal("terminated with the previous round non-quiet")
	}
	if !completeRound(t, d, 3, 10, 10, 0) {
		t.Fatal("quiet pair after drain did not terminate")
	}
}

func TestDetectorUnbalancedSumsBlockTermination(t *testing.T) {
	d := newDetector(2)
	// sent != recv: a data message is in flight, so the wave is not quiet
	// no matter how often it repeats.
	for round := int32(1); round <= 3; round++ {
		if completeRound(t, d, round, 11, 10, 0) {
			t.Fatal("terminated with a message permanently in flight")
		}
	}
}

// TestDetectorStallReport: the report names the PEs that never answered
// the stalled round and carries every PE's last-ack state.
func TestDetectorStallReport(t *testing.T) {
	d := newDetector(2)
	d.begin(1)
	detAck(d, 0, 1, 7, 7, 2)
	detAck(d, 1, 1, 3, 3, 1)
	d.begin(2)
	detAck(d, 0, 2, 9, 8, 2)
	rep := d.stallReport()
	for _, want := range []string{"pe 0: acked round 2", "pe 1: NO ACK for round 2", "last ack round 1", "live=1"} {
		if !strings.Contains(rep, want) {
			t.Errorf("stall report %q missing %q", rep, want)
		}
	}
}

// dropDumpReqEndpoint wraps the driver endpoint and silently loses every
// KDumpReq addressed to one PE — the observable shape of a worker dying
// between the final quiet probe round and the result gather.
type dropDumpReqEndpoint struct {
	Endpoint
	dropTo int
}

func (d *dropDumpReqEndpoint) Send(to int, m *Msg) error {
	if m.Kind == KDumpReq && to == d.dropTo {
		return nil // lost on the wire
	}
	return d.Endpoint.Send(to, m)
}

// TestDriveGatherDeadlineReportsLostDump: a worker that terminates cleanly
// but never serves its dump request must fail the gather phase within the
// round deadline with an outstanding-segments diagnostic, not hang the
// driver until the run context expires.
func TestDriveGatherDeadlineReportsLostDump(t *testing.T) {
	prog := compile(t, "fill.id", `
func main(n: int) {
	A = array(n, n);
	for i = 1 to n {
		for j = 1 to n {
			A[i, j] = float(i * j);
		}
	}
}`)
	cfg := Config{NumPEs: 2, PageElems: 8, ProbeInterval: time.Millisecond}
	if err := cfg.fill(); err != nil {
		t.Fatal(err)
	}
	cfg.RoundTimeout = 200 * time.Millisecond

	eps := newChanTransport(cfg.NumPEs, 0)
	geo := rtcfg.Geometry{PEs: cfg.NumPEs, PageElems: cfg.PageElems, DistThreshold: cfg.DistThreshold}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for pe := 0; pe < cfg.NumPEs; pe++ {
		w := newWorker(pe, cfg.NumPEs, geo, prog, eps[pe], workerOpts{})
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.run(ctx)
		}()
	}

	driverEp := &dropDumpReqEndpoint{Endpoint: eps[cfg.NumPEs], dropTo: 1}
	_, err := drive(ctx, driverEp, cfg, prog.Entry(), []isa.Value{isa.Int(8)}, nil)
	if err == nil {
		t.Fatal("drive returned no error although PE 1's dump request was lost")
	}
	if ctx.Err() != nil {
		t.Fatalf("drive only failed via the outer context: %v", err)
	}
	for _, want := range []string{"gather stalled", "outstanding"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
	cancel()
	wg.Wait()
	for _, ep := range eps {
		ep.Close()
	}
}

// TestDriveRoundDeadlineReportsSilentWorker: a worker that never answers
// probes (dead, wedged, dropped acks) must fail the run with the per-PE
// stall diagnostic within Config.RoundTimeout instead of hanging until the
// run context expires.
func TestDriveRoundDeadlineReportsSilentWorker(t *testing.T) {
	prog := taskProgram()
	cfg := Config{NumPEs: 2, ProbeInterval: time.Millisecond, RoundTimeout: 150 * time.Millisecond}
	if err := cfg.fill(); err != nil {
		t.Fatal(err)
	}
	cfg.RoundTimeout = 150 * time.Millisecond // keep the test deadline even if fill defaults change

	eps := newChanTransport(cfg.NumPEs, 0)
	geo := rtcfg.Geometry{PEs: cfg.NumPEs, PageElems: cfg.PageElems, DistThreshold: cfg.DistThreshold}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Only PE 0 runs; PE 1 exists on the transport but never serves its
	// mailbox — the equivalent of a worker dying mid-round (its acks are
	// dropped forever).
	var wg sync.WaitGroup
	w0 := newWorker(0, cfg.NumPEs, geo, prog, eps[0], workerOpts{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		w0.run(ctx)
	}()

	start := time.Now()
	_, err := drive(ctx, eps[cfg.NumPEs], cfg, prog.Entry(), []isa.Value{isa.SPRef(0), isa.Float(0)}, nil)
	if err == nil {
		t.Fatal("drive returned no error although PE 1 never acked")
	}
	if ctx.Err() != nil {
		t.Fatalf("drive only failed via the outer context: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("stall detection took %v, want roughly the 150ms round deadline", elapsed)
	}
	for _, want := range []string{"stalled", "pe 1: NO ACK"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
	cancel()
	wg.Wait()
	for _, ep := range eps {
		ep.Close()
	}
}
