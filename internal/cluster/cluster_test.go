package cluster

import (
	"context"
	"reflect"
	"testing"
	"time"

	"repro/internal/idlang"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/partition"
	"repro/internal/sim"
	"repro/internal/translate"
)

func compile(t *testing.T, name, src string) *isa.Program {
	t.Helper()
	gp, err := idlang.Compile(name, src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := translate.Translate(gp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := partition.Partition(prog, partition.Options{}); err != nil {
		t.Fatal(err)
	}
	return prog
}

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestMsgCodecRoundTrip(t *testing.T) {
	msgs := []*Msg{
		{Kind: KToken, From: 3, SP: packID(2, 7), Slot: 5, Val: isa.Float(3.25)},
		{Kind: KSpawn, Tmpl: 4, Args: []isa.Value{isa.Int(9), isa.SPRef(0), isa.Bool(true)}},
		{Kind: KAlloc, Arr: packID(1, 1), Name: "A", Dims: []int32{8, 8}, Origin: 1, Dist: true},
		{Kind: KReadReq, Arr: 77, Off: 12, ReqPE: 2, SP: packID(2, 3), Slot: 1},
		{Kind: KPage, Arr: 77, Page: 2, Off: 65, SP: packID(0, 1), Slot: 2,
			Vals: []isa.Value{isa.Float(1), {}, isa.Float(2)}, Set: []bool{true, false, true}},
		{Kind: KWrite, Arr: 77, Off: 40, Val: isa.Int(-9)},
		{Kind: KFail, Name: "pe 1: boom"},
		{Kind: KProbe, Round: 12},
		{Kind: KAck, Round: 12, Sent: 100, Recv: 99, Live: 3, Deferred: 7, Hits: 5, Misses: 2,
			Steals: 4, Forwards: 6, Instrs: 12345, Evicts: 11, Refetches: 3},
		{Kind: KDumpReq, Arr: 77},
		{Kind: KDump, Arr: 77, Off: 64, Vals: []isa.Value{isa.Float(1.5)}, Set: []bool{true}},
		{Kind: KInit, PE: 1, NumPEs: 4, PageElems: 32, DistThreshold: 64, CachePages: 16,
			Steal: true, Adapt: true,
			Peers: []string{"a:1", "b:2"}, Prog: []byte("{}")},
		{Kind: KStop},
		{Kind: KStealReq, From: 2},
		{Kind: KStealReq, From: 3, Hot: []int64{packID(0, 1), packID(2, 5)}},
		{Kind: KStealGrant, Batch: []StealItem{
			{SP: packID(1, 9), Tmpl: 3,
				Args: []isa.Value{isa.Int(7), {}}, Set: []bool{true, false},
				CostLoop: 5, Sweep: packID(0, 2), CostIter: 41},
			{SP: packID(1, 10), Tmpl: 3,
				Args: []isa.Value{isa.Float(2.5), {}}, Set: []bool{true, false},
				CostLoop: -1},
		}},
		{Kind: KStealNone},
		{Kind: KSpawn, Tmpl: 6, Args: []isa.Value{isa.Int(3)},
			Sweep: packID(3, 4), RngOn: true, RngLo: -12, RngHi: 99},
		{Kind: KCostReport, Tmpl: 6, Sweep: packID(3, 4),
			Iters: []int64{1, 2, 5}, Costs: []int64{10, 20, 50}},
		{Kind: KRebound, Tmpl: 6, Cuts: []int64{4, 9, 13}},
		{Kind: KToken, From: 2, Epoch: 3, Inc: 1, SP: packIncID(1, 1, 9), Slot: 2, Val: isa.Int(5)},
		{Kind: KSpawnLog, From: 1, Inc: 2, Tmpl: 6, Sweep: packIncID(1, 2, 3),
			Args: []isa.Value{isa.Int(8)}, Cuts: []int64{3, 7, 11}},
		{Kind: KRecover, Epoch: 2, Incs: []int32{0, 1, 0, 2}, Peers: []string{"a:1", "s:9"}},
		{Kind: KInit, PE: 3, NumPEs: 4, Epoch: 1, Recover: true, Incs: []int32{0, 0, 0, 1},
			Peers: []string{"a:1"}, Prog: []byte("p")},
		{Kind: KStealDone, From: 2, SP: packIncID(0, 0, 4)},
		{Kind: KFlush, From: 1, Epoch: 2, Inc: 1},
		{Kind: KAck, Round: 3, Epoch: 1, Sent: 4, Recv: 4, Replayed: 2, Flushed: true},
		{Kind: KStealReq, From: 1, HotPages: []int64{packID(0, 1), 3, packID(2, 5), 0}},
		{Kind: KAck, Round: 9, Sent: 8, Recv: 8, Hits: 40, Misses: 3,
			Prefetches: 6, PrefetchHits: 4, CacheCapNow: 24},
		{Kind: KJobStart, Job: 2, NumPEs: 4, PageElems: 8, DistThreshold: 16,
			CachePages: 2, Steal: true, Heat: true, Prog: []byte("{}")},
		{Kind: KSubmit, Job: 1, Seq: 7, Name: "triread", CachePages: 4, Heat: true,
			Args: []isa.Value{isa.Int(26)}, Prog: []byte("p")},
	}
	for _, m := range msgs {
		b := encodeMsg(nil, m)
		got, err := decodeMsg(b)
		if err != nil {
			t.Fatalf("%s: decode: %v", m.Kind, err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Errorf("%s: round trip mismatch:\n sent %+v\n got  %+v", m.Kind, m, got)
		}
	}
}

func TestMsgCodecTruncated(t *testing.T) {
	b := encodeMsg(nil, &Msg{Kind: KPage, Vals: make([]isa.Value, 4), Set: make([]bool, 4)})
	for _, n := range []int{0, 1, 7, len(b) / 2, len(b) - 1} {
		if _, err := decodeMsg(b[:n]); err == nil {
			t.Errorf("decode of %d/%d bytes: want error", n, len(b))
		}
	}
}

func TestIDPacking(t *testing.T) {
	// The PE field is one byte storing pe+1, so 254 is the largest index.
	for _, pe := range []int{0, 1, 31, 254} {
		id := packID(pe, 12345)
		if got := peOf(id); got != pe {
			t.Errorf("peOf(packID(%d, _)) = %d", pe, got)
		}
	}
	if peOf(0) != -1 {
		t.Errorf("peOf(0) = %d, want -1 (driver environment)", peOf(0))
	}
	for _, inc := range []int32{0, 1, 7, 255} {
		id := packIncID(3, inc, 99)
		if got := incOf(id); got != inc {
			t.Errorf("incOf(packIncID(3, %d, 99)) = %d", inc, got)
		}
		if got := peOf(id); got != 3 {
			t.Errorf("peOf(packIncID(3, %d, 99)) = %d, want 3", inc, got)
		}
	}
	for _, job := range []int32{0, 1, 9, jobMask} {
		id := packJobID(job, 3, 2, 99)
		if got := jobOf(id); got != job {
			t.Errorf("jobOf(packJobID(%d, 3, 2, 99)) = %d", job, got)
		}
		if got, want := peOf(id), 3; got != want {
			t.Errorf("peOf(packJobID(%d, ...)) = %d, want %d", job, got, want)
		}
		if got, want := incOf(id), int32(2); got != want {
			t.Errorf("incOf(packJobID(%d, ...)) = %d, want %d", job, got, want)
		}
	}
	if packJobID(0, 4, 1, 7) != packIncID(4, 1, 7) {
		t.Error("job 0 must pack identically to a single-job ID")
	}
}

// simArrays runs the simulator as the reference backend.
func simArrays(t *testing.T, prog *isa.Program, pes int, names []string, args ...isa.Value) map[string][]float64 {
	t.Helper()
	m, err := sim.New(prog, sim.Config{NumPEs: pes})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(args...); err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]float64)
	for _, name := range names {
		vals, mask, _, err := m.ReadArray(name)
		if err != nil {
			t.Fatal(err)
		}
		for i, okv := range mask {
			if !okv {
				t.Fatalf("sim: %s[%d] never written", name, i)
			}
			_ = i
		}
		out[name] = vals
	}
	return out
}

func checkAgainstSim(t *testing.T, res *Result, want map[string][]float64) {
	t.Helper()
	for name, ref := range want {
		vals, mask, _, err := res.ReadArray(name)
		if err != nil {
			t.Fatal(err)
		}
		if len(vals) != len(ref) {
			t.Fatalf("%s: %d elements, want %d", name, len(vals), len(ref))
		}
		for i := range vals {
			if !mask[i] {
				t.Fatalf("%s[%d] never written in cluster run", name, i)
			}
			if vals[i] != ref[i] {
				t.Fatalf("%s[%d] = %v, cluster disagrees with sim's %v", name, i, vals[i], ref[i])
			}
		}
	}
}

func TestExecuteMatmulAgreesWithSim(t *testing.T) {
	k, _ := kernels.ByName("matmul")
	prog := compile(t, k.File(), k.Source)
	const n = 8
	want := simArrays(t, prog, 4, k.Arrays, k.Args(n)...)
	for _, pes := range []int{1, 2, 4, 8} {
		res, err := Execute(testCtx(t), prog, Config{NumPEs: pes}, k.Args(n)...)
		if err != nil {
			t.Fatalf("%d PEs: %v", pes, err)
		}
		checkAgainstSim(t, res, want)
	}
}

func TestExecuteMirrorDeferredRemoteReads(t *testing.T) {
	k, _ := kernels.ByName("mirror")
	prog := compile(t, k.File(), k.Source)
	const n = 12
	want := simArrays(t, prog, 4, k.Arrays, k.Args(n)...)
	res, err := Execute(testCtx(t), prog, Config{NumPEs: 4}, k.Args(n)...)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstSim(t, res, want)
	t.Logf("mirror @4PE: deferred=%d hits=%d misses=%d msgs=%d",
		res.Stats.DeferredReads, res.Stats.CacheHits, res.Stats.CacheMisses, res.Stats.MsgsSent)
	if res.Stats.MsgsSent == 0 {
		t.Error("4-PE mirror run sent no inter-PE messages — not message passing at all")
	}
}

func TestExecuteReturnsValue(t *testing.T) {
	prog := compile(t, "ret.id", `
func main(a: int, b: int) -> int {
	return a * b + 1;
}`)
	res, err := Execute(testCtx(t), prog, Config{NumPEs: 2}, isa.Int(6), isa.Int(7))
	if err != nil {
		t.Fatal(err)
	}
	if res.Value == nil || res.Value.I != 43 {
		t.Fatalf("result = %+v, want 43", res.Value)
	}
}

func TestExecuteLoopResult(t *testing.T) {
	prog := compile(t, "sum.id", `
func main(n: int) -> int {
	s = 0;
	for k = 1 to n {
		next s = s + k;
	}
	return s;
}`)
	res, err := Execute(testCtx(t), prog, Config{NumPEs: 3}, isa.Int(10))
	if err != nil {
		t.Fatal(err)
	}
	if res.Value == nil || res.Value.I != 55 {
		t.Fatalf("result = %+v, want 55", res.Value)
	}
}

func TestExecuteSingleAssignmentViolation(t *testing.T) {
	prog := compile(t, "dup.id", `
func main(n: int) {
	A = array(n);
	A[1] = 1.0;
	A[1] = 2.0;
}`)
	_, err := Execute(testCtx(t), prog, Config{NumPEs: 2}, isa.Int(8))
	if err == nil {
		t.Fatal("want single-assignment violation error")
	}
}

func TestExecuteDeadlockReported(t *testing.T) {
	prog := compile(t, "dead.id", `
func main(n: int) {
	A = array(n);
	B = array(n);
	B[1] = A[1];
}`)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_, err := Execute(ctx, prog, Config{NumPEs: 2}, isa.Int(8))
	if err == nil {
		t.Fatal("want deadlock error for read of never-written element")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Execute(testCtx(t), compile(t, "t.id", `func main(n: int) { A = array(n); A[1] = 1.0; }`),
		Config{NumPEs: 2, Workers: []string{"a:1", "b:2", "c:3"}}, isa.Int(4)); err == nil {
		t.Fatal("want NumPEs/Workers conflict error")
	}
}
