package cluster

import (
	"fmt"

	"repro/internal/isa"
)

// Driver-side half of worker-failure recovery.
//
// The failure model is fail-stop: a worker PE dies (process killed,
// machine gone, fault injector fired) and never speaks under its old
// identity again — and if it does, the incarnation fence silences it. The
// driver learns of a death from a KDown notice (connection loss, fault
// injection) or from a probe-round deadline, and then:
//
//  1. bumps the counting epoch and the dead PE's incarnation,
//  2. respawns the PE — a fresh goroutine on the channel transport, a
//     redialed spare address on TCP,
//  3. announces KRecover to the survivors, who zero their termination
//     counters, fence the dead incarnation, and replay their share of the
//     lost state (logged remote writes, outstanding reads, steal grants),
//  4. re-sends every array header to the replacement and replays the dead
//     PE's root assignments from the fan-out log: the entry spawn (PE 0)
//     and every SPAWND copy it was ever assigned, stamped with the same
//     sweep IDs and adaptive bounds as the originals.
//
// Single assignment is the load-bearing property: re-execution regenerates
// exactly the values the first execution produced, so replayed writes are
// absorbed idempotently, refetched pages carry identical data, and the
// results are bit-for-bit what an unkilled run computes. What is *not*
// replayed: the dead PE's statistics (its counters restart at zero), its
// adapt cost observations (the coordinator restarts), and any in-flight
// frames between survivors — those were never lost.
type recovery struct {
	enabled bool
	n       int
	epoch   int32
	incs    []int32
	rsp     respawner
	peers   []string // current worker addresses (TCP); nil in-process
	log     []fanout

	recoveries int64
	replayed   int64
}

// fanout is one logged root assignment: a SPAWND fan-out (only == -1,
// every PE got a copy) or the entry spawn (only == 0). from is the
// spawning PE (-1 for the driver's entry spawn): when *it* dies, its
// fan-out frames may have died on the wire before reaching anyone, so the
// whole fan-out is re-broadcast, not just the dead PE's copy.
type fanout struct {
	tmpl  int32
	args  []isa.Value
	sweep int64
	cuts  []int64
	only  int
	from  int
}

// respawner brings up a replacement worker for a dead PE. The channel
// transport starts a goroutine on a fresh mailbox; the TCP transport dials
// a spare `podsd -worker` address and re-inits it.
type respawner interface {
	// respawn starts PE pe's replacement at incarnation inc, joining
	// counting epoch epoch with incarnation vector incs. It returns the
	// updated peer address list (nil for in-process transports).
	respawn(pe int, inc, epoch int32, incs []int32) ([]string, error)
}

// maxIncarnations caps respawns per PE slot — the ID encoding carries the
// incarnation in one byte.
const maxIncarnations = 255

func newRecovery(n int, enabled bool, rsp respawner) *recovery {
	return &recovery{enabled: enabled && rsp != nil, n: n, incs: make([]int32, n), rsp: rsp}
}

// fenced reports whether a driver-bound frame was sent by a dead
// incarnation of its worker and must be dropped whole.
func (r *recovery) fenced(m *Msg) bool {
	pe := int(m.From)
	return pe >= 0 && pe < r.n && m.Inc < r.incs[pe]
}

// logEntry records the entry spawn so a dead PE 0 can be replayed.
func (r *recovery) logEntry(tmpl int32, args []isa.Value) {
	r.log = append(r.log, fanout{tmpl: tmpl, args: append([]isa.Value(nil), args...), only: 0, from: -1})
}

// logFanout records one KSpawnLog fan-out report. The message is receiver-
// owned, so its slices can be retained directly.
func (r *recovery) logFanout(m *Msg) {
	r.log = append(r.log, fanout{tmpl: m.Tmpl, args: m.Args, sweep: m.Sweep, cuts: m.Cuts, only: -1, from: int(m.From)})
}

// replayTo reports whether this assignment must be re-sent to PE pe when
// the PEs in deadSet were lost. The driver is only the authority for
// assignments whose *spawner* cannot speak for itself: the entry spawn
// (the driver made it) when its PE died, and every fan-out a dead PE
// performed — its deliveries to everyone are suspect, and a duplicate is
// absorbed by idempotent re-execution while a missing copy deadlocks the
// program. Fan-outs whose spawner survives are replayed by the spawner
// (its local log cannot be lost to a wire race).
func (f *fanout) replayTo(pe int, deadSet map[int]bool) bool {
	if f.only >= 0 && f.only != pe {
		return false
	}
	if f.from < 0 {
		return deadSet[pe]
	}
	return deadSet[f.from]
}

// perform executes one recovery event for the given dead PEs: respawn,
// announce, replay. On return the cluster is whole again and the probe
// loop can resume at the new epoch.
func (r *recovery) perform(ep Endpoint, dead []int, res *Result) error {
	r.epoch++
	deadSet := make(map[int]bool, len(dead))
	var uniq []int
	for _, pe := range dead {
		if pe < 0 || pe >= r.n || deadSet[pe] {
			continue
		}
		if r.incs[pe] >= maxIncarnations {
			return fmt.Errorf("cluster: pe %d exceeded %d incarnations", pe, maxIncarnations)
		}
		deadSet[pe] = true
		uniq = append(uniq, pe)
		r.incs[pe]++
	}
	if len(uniq) == 0 {
		return fmt.Errorf("cluster: recovery requested with no dead PEs")
	}
	for _, pe := range uniq {
		peers, err := r.rsp.respawn(pe, r.incs[pe], r.epoch, append([]int32(nil), r.incs...))
		if err != nil {
			return fmt.Errorf("cluster: respawning pe %d: %w", pe, err)
		}
		if peers != nil {
			r.peers = peers
		}
	}
	// Announce to the survivors. Per-receiver FIFO guarantees each
	// survivor fences the dead incarnation before it can see any frame the
	// driver sends afterwards on the same stream.
	for pe := 0; pe < r.n; pe++ {
		if deadSet[pe] {
			continue
		}
		m := &Msg{Kind: KRecover, Epoch: r.epoch,
			Incs:  append([]int32(nil), r.incs...),
			Peers: append([]string(nil), r.peers...)}
		if err := ep.Send(pe, m); err != nil {
			return err
		}
	}
	// Rebuild: every PE gets every known array header (duplicates are
	// absorbed by the idempotent install — a header broadcast can have
	// died on the wire with its sender), then each PE's share of the
	// replayable assignments in their original order, stamped exactly as
	// the first execution was: a replacement gets everything it was ever
	// assigned; survivors get the fan-outs a dead PE performed, whose
	// frames may never have arrived.
	for pe := 0; pe < r.n; pe++ {
		for _, g := range res.arrays {
			m := allocMsg(g.h)
			m.Epoch = r.epoch
			if err := ep.Send(pe, m); err != nil {
				return err
			}
		}
		for i := range r.log {
			f := &r.log[i]
			if !f.replayTo(pe, deadSet) {
				continue
			}
			m := &Msg{Kind: KSpawn, Tmpl: f.tmpl, Sweep: f.sweep, Epoch: r.epoch,
				Args: append([]isa.Value(nil), f.args...)}
			if f.cuts != nil {
				m.RngOn = true
				m.RngLo, m.RngHi = cutBounds(f.cuts, pe, r.n)
			}
			if err := ep.Send(pe, m); err != nil {
				return err
			}
			r.replayed++
		}
		// Restore the replacement's owned segments from the driver's
		// checkpoint snapshot. This backfills the writes whose logs were
		// GC'd at the last completed checkpoint: survivors replay only
		// their post-checkpoint write-log suffixes, and GC'd sweeps are
		// not re-spawned at all. With no checkpoint completed the
		// snapshot is empty and no frames go out. Headers were re-sent
		// above on this same stream, so the restore always finds them.
		if deadSet[pe] {
			if err := r.restoreTo(ep, pe, res); err != nil {
				return err
			}
		}
	}
	r.recoveries++
	return nil
}

// restoreChunk bounds one KRestore frame's element span.
const restoreChunk = 1 << 16

// restoreTo ships the checkpoint snapshot of pe's owned segments to its
// replacement as KRestore frames (KDump-shaped; applied as idempotent
// owner writes). Chunks with no present elements are skipped.
func (r *recovery) restoreTo(ep Endpoint, pe int, res *Result) error {
	for id, g := range res.arrays {
		lo, hi := g.h.SegmentElems(pe)
		for base := lo; base < hi; base += restoreChunk {
			end := min(base+restoreChunk, hi)
			any := false
			for i := base; i < end; i++ {
				if g.mask[i] {
					any = true
					break
				}
			}
			if !any {
				continue
			}
			m := &Msg{Kind: KRestore, Arr: id, Off: int32(base), Epoch: r.epoch,
				Vals: append([]isa.Value(nil), g.raw[base:end]...),
				Set:  append([]bool(nil), g.mask[base:end]...)}
			if err := ep.Send(pe, m); err != nil {
				return err
			}
		}
	}
	return nil
}

// dropSweeps garbage-collects the driver's fan-out log: assignments whose
// sweep completed a checkpoint are covered by the snapshot and need never
// be replayed again. The entry spawn (sweep 0) is permanent.
func (r *recovery) dropSweeps(sweeps []int64) {
	if len(sweeps) == 0 {
		return
	}
	done := make(map[int64]bool, len(sweeps))
	for _, s := range sweeps {
		if s != 0 {
			done[s] = true
		}
	}
	kept := r.log[:0]
	for _, f := range r.log {
		if !done[f.sweep] {
			kept = append(kept, f)
		}
	}
	for i := len(kept); i < len(r.log); i++ {
		r.log[i] = fanout{}
	}
	r.log = kept
}
