package cluster

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/cluster/trace"
	"repro/internal/isa"
	"repro/internal/istructure"
)

// Stats aggregates cluster-wide dynamic counts gathered from the workers'
// final probe answers.
type Stats struct {
	DeferredReads int64 // I-structure reads queued on absent elements
	CacheHits     int64 // remote reads satisfied from the page cache
	CacheMisses   int64 // remote reads that fetched a page
	Evictions     int64 // cached pages evicted by the cache bound (Config.CachePages)
	Refetches     int64 // previously evicted pages fetched again
	MsgsSent      int64 // worker-to-worker data messages
	Steals        int64 // SP instances migrated by work stealing
	Forwards      int64 // tokens relayed through forwarding stubs
	Rebounds      int64 // adaptive Range-Filter cut broadcasts (Config.Adapt)
	Recoveries    int64 // worker deaths survived by respawn + replay (Config.Recover)
	ReplayedSPs   int64 // root assignments replayed against replacement workers
	Checkpoints   int64 // completed replay-log GC checkpoints (Recover+Adapt)
	Prefetches    int64 // pages requested ahead of the miss (Config.Heat)
	PrefetchHits  int64 // prefetched pages that later served a demand read
	CacheCapNow   int64 // final resident-page budget, summed over PEs (adaptive cap)
}

// PEStat is one worker's counter breakdown from its final probe answer —
// the per-PE decomposition of the cluster-wide Stats sums.
type PEStat struct {
	PE            int
	Instrs        int64
	Sent, Recv    int64
	DeferredReads int64
	CacheHits     int64
	CacheMisses   int64
	Evictions     int64
	Refetches     int64
	Steals        int64
	Forwards      int64
	Replayed      int64
	Prefetches    int64
	PrefetchHits  int64
	CacheCapNow   int64
}

// gathered is one assembled array after a run. raw keeps the wire values
// alongside the float view: a checkpoint restore (KRestore) must replay
// the exact Value a worker wrote — single-assignment idempotence compares
// full values, not float projections.
type gathered struct {
	h    *istructure.Header
	vals []float64
	raw  []isa.Value
	mask []bool
}

// merge folds one worker's KDump segment into the assembled array. The
// offsets come off the wire, so they are validated against the assembled
// size — a corrupt or duplicated dump must fail the run, not panic the
// driver.
func (g *gathered) merge(m *Msg) error {
	base := int(m.Off)
	if base < 0 || len(m.Vals) != len(m.Set) || base > len(g.vals)-len(m.Vals) {
		return fmt.Errorf("cluster: dump segment [%d,%d) with %d presence bits does not fit array %q (%d elements)",
			base, base+len(m.Vals), len(m.Set), g.h.Name, len(g.vals))
	}
	if g.raw == nil {
		g.raw = make([]isa.Value, len(g.vals))
	}
	for i, v := range m.Vals {
		if m.Set[i] {
			g.vals[base+i] = v.AsFloat()
			g.raw[base+i] = v
			g.mask[base+i] = true
		}
	}
	return nil
}

// Result is a completed cluster run: the program's returned value (if any),
// aggregate statistics, and the gathered I-structure contents.
type Result struct {
	// Value is the entry block's returned value (nil for void main).
	Value *isa.Value

	// Stats holds cluster-wide dynamic counts.
	Stats Stats

	// NumPEs is the effective worker count after defaults were applied
	// (cfg.NumPEs may be zero on entry).
	NumPEs int

	// PEInstrs is each worker's executed-instruction count — the per-PE
	// load distribution (the SKEW experiment derives its balance metric
	// from it).
	PEInstrs []int64

	// PEStats is each worker's full counter breakdown (the per-PE
	// decomposition of Stats).
	PEStats []PEStat

	// Trace holds the run's observability data when Config.Trace was set:
	// every PE's gathered event ring plus the per-probe-round metrics
	// timeline. Nil when tracing was off.
	Trace *trace.Trace

	arrays  map[int64]*gathered
	byName  map[string]int64
	nameSeq []string
}

// ReadArray gathers a named array's contents: values, a written-mask, and
// the array dimensions.
func (r *Result) ReadArray(name string) (vals []float64, mask []bool, dims []int, err error) {
	id, ok := r.byName[name]
	if !ok {
		return nil, nil, nil, fmt.Errorf("cluster: unknown array %q", name)
	}
	g := r.arrays[id]
	return g.vals, g.mask, append([]int(nil), g.h.Dims...), nil
}

// ArrayNames lists allocated source-level array names in arrival order.
func (r *Result) ArrayNames() []string { return append([]string(nil), r.nameSeq...) }

// Execute runs a validated program on the cluster runtime. With
// cfg.Workers empty it spins up cfg.NumPEs in-process workers over the
// channel transport; otherwise it drives the listed TCP workers. The
// context bounds the run; a blocked dataflow program (deadlock) is reported
// when it expires.
func Execute(ctx context.Context, prog *isa.Program, cfg Config, args ...isa.Value) (*Result, error) {
	f, err := OpenFleet(ctx, cfg)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return f.Submit(ctx, prog, cfg, args...)
}

// drive is the driver loop: spawn the entry SP on PE 0, then alternate
// between handling worker messages and termination probes; on termination,
// gather every array and stop the workers. rsp, when non-nil and
// cfg.Recover is set, lets the driver survive worker deaths by respawning
// and replaying them instead of failing the run.
func drive(ctx context.Context, ep Endpoint, cfg Config, entry *isa.Template, args []isa.Value, rsp respawner) (*Result, error) {
	n := cfg.NumPEs
	res := &Result{
		NumPEs: n,
		arrays: make(map[int64]*gathered),
		byName: make(map[string]int64),
	}
	det := newDetector(n)
	ad := newAdaptCoord(n)
	rec := newRecovery(n, cfg.Recover, rsp)
	rec.peers = append([]string(nil), cfg.Workers...)

	// Per-job budgets (admission control): MaxElems is enforced exactly at
	// each KAlloc broadcast (the driver sees every allocation before any
	// element is written); MaxInstrs is enforced at each completed probe
	// round from the workers' acked instruction counters — round-lagged,
	// but a job can only overshoot by one round's worth of work.
	var allocElems int64

	// Replay-log GC rides the adapt coordinator's sweep retirement: when a
	// sweep is provably complete the driver checkpoints — every worker
	// marks its write-log cut, dumps its owned segments once all peers'
	// marks arrived, and on the driver's all-acked confirmation drops the
	// logged writes now covered by the driver's snapshot plus the retired
	// sweeps' fan-out entries (minus any a worker vetoed as still live).
	var (
		ckptSeq     int64   // monotone checkpoint IDs (Msg.Seq, nonzero)
		ckptOpen    bool    // one checkpoint in flight at a time
		ckptID      int64   // the open checkpoint's ID
		ckptAcks    int     // workers that finished dumping
		ckptSweeps  []int64 // sweeps the open checkpoint proposes to GC
		ckptVetoed  []int64 // sweeps some worker reported still running
		ckptPending []int64 // retired sweeps awaiting the next checkpoint
		checkpoints int64
	)
	// An array can be checkpoint-dumped by its owner before the
	// allocator's KAlloc broadcast reaches the driver (different FIFO
	// streams); such dumps wait here for their header.
	var pendingDumps map[int64][]*Msg

	// Observability (Config.Trace): the timeline builder turns each
	// completed probe round's acks into one delta-encoded sample per PE;
	// prevAcks holds the previous completed round's counters the deltas are
	// taken against.
	var tb *trace.TimelineBuilder
	var prevAcks []ackState
	driverStart := time.Now()
	if cfg.Trace {
		tb = trace.NewTimelineBuilder(timelineCap)
		prevAcks = make([]ackState, n)
	}
	sampleTimeline := func(round int32) {
		if tb == nil {
			return
		}
		wall := int64(time.Since(driverStart))
		for pe := 0; pe < n; pe++ {
			a, p := det.acks[pe], prevAcks[pe]
			// A recovery epoch zeroes sent/recv mid-run; clamp so the
			// reset never shows up as negative traffic.
			d := func(cur, prev int64) int64 { return max(cur-prev, 0) }
			tb.Add(trace.Sample{
				Round: int(round), Wall: wall, PE: pe,
				Instrs: d(a.instrs, p.instrs), QDepth: a.qdepth, Live: int64(a.live),
				Sent: d(a.sent, p.sent), Hits: d(a.hits, p.hits),
				Misses: d(a.misses, p.misses), Evicts: d(a.evicts, p.evicts),
				Steals: d(a.steals, p.steals),
			})
			prevAcks[pe] = a
		}
	}
	stopAll := func() {
		for pe := 0; pe < n; pe++ {
			_ = ep.Send(pe, &Msg{Kind: KStop})
		}
	}

	rec.logEntry(int32(entry.ID), args)
	if err := ep.Send(0, &Msg{Kind: KSpawn, Tmpl: int32(entry.ID), Args: args}); err != nil {
		return nil, err
	}

	// handle processes one driver-bound message; it returns an error for
	// KFail and flags round completion for KAck. A frame from a dead
	// incarnation is dropped whole, and a KDown notice queues its PE for
	// recovery (or fails the run when recovery is off).
	round := int32(0)
	roundComplete := false
	probeReset := false
	var down []int
	handle := func(m *Msg) error {
		if rec.fenced(m) {
			return nil
		}
		switch m.Kind {
		case KToken:
			val := m.Val
			res.Value = &val
		case KAlloc:
			dims := make([]int, len(m.Dims))
			for i, d := range m.Dims {
				dims[i] = int(d)
			}
			if res.arrays[m.Arr] != nil {
				// Duplicate broadcast (a recovery replay re-ran the
				// allocating SP): array IDs are deterministic, so keep the
				// assembled state — it may already hold checkpoint dumps.
				return nil
			}
			h, err := istructure.NewHeader(m.Arr, m.Name, dims, cfg.PageElems, n, int(m.Origin), m.Dist)
			if err != nil {
				return err
			}
			allocElems += int64(h.Elems())
			if cfg.MaxElems > 0 && allocElems > cfg.MaxElems {
				return fmt.Errorf("cluster: job exceeded its element budget: %d elements allocated, budget %d (Config.MaxElems)",
					allocElems, cfg.MaxElems)
			}
			g := &gathered{h: h, vals: make([]float64, h.Elems()), raw: make([]isa.Value, h.Elems()), mask: make([]bool, h.Elems())}
			res.arrays[m.Arr] = g
			if _, seen := res.byName[h.Name]; !seen {
				res.nameSeq = append(res.nameSeq, h.Name)
			}
			res.byName[h.Name] = m.Arr
			for _, d := range pendingDumps[m.Arr] {
				if err := g.merge(d); err != nil {
					return err
				}
			}
			delete(pendingDumps, m.Arr)
		case KFail:
			return fmt.Errorf("cluster: %s", m.Name)
		case KAck:
			// The detector ignores stale-round and duplicate acks itself.
			if det.record(int(m.From), m) {
				roundComplete = true
			}
		case KCostReport:
			if ad.merge(m, round) {
				probeReset = true
			}
		case KSpawnLog:
			rec.logFanout(m)
		case KDown:
			if !rec.enabled {
				return fmt.Errorf("cluster: worker %d died mid-run (transport closed); set Config.Recover (and Spares, on TCP) to survive worker failures", m.PE)
			}
			down = append(down, int(m.PE))
		case KDump:
			g := res.arrays[m.Arr]
			if g == nil {
				if m.Seq != 0 {
					// Checkpoint dump racing the allocator's KAlloc
					// broadcast on another stream: hold it for the header.
					if pendingDumps == nil {
						pendingDumps = make(map[int64][]*Msg)
					}
					pendingDumps[m.Arr] = append(pendingDumps[m.Arr], m)
					return nil
				}
				return fmt.Errorf("cluster: dump for unknown array %d", m.Arr)
			}
			if err := g.merge(m); err != nil {
				return err
			}
		case KCkptAck:
			if !ckptOpen || m.Seq != ckptID {
				return nil // stale ack from an aborted checkpoint
			}
			ckptAcks++
			ckptVetoed = append(ckptVetoed, m.Iters...)
			if ckptAcks < n {
				return nil
			}
			// Every worker dumped: the driver's snapshot now covers all
			// pre-cut logged writes. Confirm, GC the driver's own fan-out
			// log, and release the workers' logs — minus sweeps some
			// worker reported still live (those retry next checkpoint).
			vetoed := make(map[int64]bool, len(ckptVetoed))
			for _, s := range ckptVetoed {
				vetoed[s] = true
			}
			var effective []int64
			for _, s := range ckptSweeps {
				if vetoed[s] {
					ckptPending = append(ckptPending, s)
				} else {
					effective = append(effective, s)
				}
			}
			for pe := 0; pe < n; pe++ {
				ok := &Msg{Kind: KCkptOK, Seq: ckptID, Iters: append([]int64(nil), effective...)}
				if err := ep.Send(pe, ok); err != nil {
					if rec.enabled {
						down = append(down, pe)
						continue
					}
					return err
				}
			}
			rec.dropSweeps(effective)
			checkpoints++
			ckptOpen = false
			ckptSweeps, ckptVetoed = nil, nil
		default:
			return fmt.Errorf("cluster: driver got unexpected %s message", m.Kind)
		}
		return nil
	}

	// Probe rounds with geometric back-off: tight while the run is short,
	// cheap while it is long. Adaptive repartitioning rides the probe
	// cadence (cost flushes and rebind decisions happen at round
	// boundaries), so the back-off additionally resets whenever a new
	// sweep starts reporting: a sweep in flight means a rebind decision
	// is imminent and must not wait tens of sweep-lengths for the next
	// round, while a run whose sweeps have stopped arriving (or that
	// never rebinds at all) pays no lasting probe overhead.
	// recoverNow survives the deaths collected in `down`: respawn, announce,
	// replay, then restart the detector and adapt coordinator in the new
	// epoch (their accumulated state mixes incarnations and counting
	// epochs, and replay regenerates the observations that still matter).
	recoverNow := func() error {
		dead := down
		down = nil
		// Abort any checkpoint in flight: its marks and acks mix
		// incarnations. The sweeps return to the pending pool — nothing
		// was GC'd (logs only drop on KCkptOK), so nothing is lost.
		if ckptOpen {
			ckptOpen = false
			ckptPending = append(ckptPending, ckptSweeps...)
			ckptSweeps, ckptVetoed = nil, nil
		}
		if err := rec.perform(ep, dead, res); err != nil {
			return err
		}
		det.reset(rec.epoch)
		ad = newAdaptCoord(n)
		return nil
	}

	interval := cfg.ProbeInterval
	maxInterval := 50 * cfg.ProbeInterval
	for {
		round++
		roundComplete = false
		det.begin(round)
		for pe := 0; pe < n; pe++ {
			if err := ep.Send(pe, &Msg{Kind: KProbe, Round: round}); err != nil {
				// A probe bouncing off a dead connection is a death notice
				// in its own right; recover it like one when possible.
				if rec.enabled {
					down = append(down, pe)
					continue
				}
				stopAll()
				return nil, err
			}
		}
		// The round deadline turns a dead or wedged worker into a
		// diagnosable failure — or, with recovery enabled, into a recovery:
		// the PEs that never acked the round are respawned and replayed.
		// The deadline re-arms on every received message, so it measures
		// genuine silence — no driver-bound traffic at all for the whole
		// timeout while the round stays open, meaning some PE will never
		// answer — and can never trip a slow-but-progressing phase. Without
		// recovery, expiry fails the run with each PE's last-ack state
		// instead of hanging until the run context expires.
		for !roundComplete && len(down) == 0 {
			m, stalled, err := recvStallGuarded(ctx, ep, cfg.RoundTimeout)
			if err != nil {
				if stalled && rec.enabled {
					down = det.unacked()
					break
				}
				if stalled {
					// With tracing on, pull each PE's last trace events
					// before tearing the cluster down: a wedged-but-alive
					// worker still answers KTraceReq from its message loop,
					// and the event tail says what it was doing when the
					// round stalled — far more than last-ack counters can.
					diag := ""
					if cfg.Trace {
						diag = stallTraceDump(ctx, ep, n, rec)
					}
					stopAll()
					return nil, fmt.Errorf("cluster: probe round %d stalled for %v (worker dead or wedged?): %s%s",
						round, cfg.RoundTimeout, det.stallReport(), diag)
				}
				stopAll()
				return nil, fmt.Errorf("cluster: run cancelled (deadlocked dataflow program? %d live SPs): %w", det.liveSPs(), err)
			}
			if herr := handle(m); herr != nil {
				stopAll()
				return nil, herr
			}
		}
		if len(down) > 0 {
			if err := recoverNow(); err != nil {
				stopAll()
				return nil, err
			}
			// The disturbed round proves nothing; probe tightly again while
			// the replacements replay.
			interval = cfg.ProbeInterval
			continue
		}
		sampleTimeline(round)
		if cfg.MaxInstrs > 0 {
			var instrs int64
			for pe := 0; pe < n; pe++ {
				instrs += det.acks[pe].instrs
			}
			if instrs > cfg.MaxInstrs {
				stopAll()
				return nil, fmt.Errorf("cluster: job exceeded its instruction budget: %d instructions executed, budget %d (Config.MaxInstrs)",
					instrs, cfg.MaxInstrs)
			}
		}
		if det.roundDone() {
			break
		}
		// Rebind check at the round boundary: every worker has flushed its
		// cost observations at least once this round (the flush precedes
		// the ack on the same FIFO stream), so the coordinator's view is as
		// fresh as the round itself. A broadcast bouncing off a dead
		// connection is a death notice like a failed probe: recover it when
		// possible (losing the rebind itself is harmless — the coordinator
		// restarts and replans).
		for _, rb := range ad.tick(round) {
			for pe := 0; pe < n; pe++ {
				m := &Msg{Kind: KRebound, Tmpl: rb.tmpl, Cuts: append([]int64(nil), rb.cuts...)}
				if err := ep.Send(pe, m); err != nil {
					if rec.enabled {
						down = append(down, pe)
						continue
					}
					stopAll()
					return nil, err
				}
			}
		}
		if len(down) > 0 {
			if err := recoverNow(); err != nil {
				stopAll()
				return nil, err
			}
			interval = cfg.ProbeInterval
			continue
		}
		// Checkpoint kickoff rides the same round boundary as rebinds:
		// sweeps the adapt coordinator has retired since the last
		// checkpoint are proposed for replay-log GC (one checkpoint in
		// flight at a time; new retirements queue for the next one).
		if rec.enabled && cfg.Adapt {
			ckptPending = append(ckptPending, ad.drainRetired()...)
			if !ckptOpen && len(ckptPending) > 0 {
				ckptSeq++
				ckptID = ckptSeq
				ckptSweeps = ckptPending
				ckptPending = nil
				ckptAcks = 0
				ckptVetoed = nil
				ckptOpen = true
				for pe := 0; pe < n; pe++ {
					m := &Msg{Kind: KCkpt, Seq: ckptID, Iters: append([]int64(nil), ckptSweeps...)}
					if err := ep.Send(pe, m); err != nil {
						down = append(down, pe)
					}
				}
				if len(down) > 0 {
					if err := recoverNow(); err != nil {
						stopAll()
						return nil, err
					}
					interval = cfg.ProbeInterval
					continue
				}
			}
		}
		select {
		case <-time.After(interval):
		case <-ctx.Done():
			stopAll()
			return nil, fmt.Errorf("cluster: run cancelled (deadlocked dataflow program? %d live SPs): %w", det.liveSPs(), ctx.Err())
		}
		if probeReset {
			interval = cfg.ProbeInterval
			probeReset = false
		} else if interval < maxInterval {
			interval *= 2
		}
	}
	res.Stats = det.stats()
	res.Stats.Rebounds = ad.rebounds
	res.Stats.Recoveries = rec.recoveries
	res.Stats.ReplayedSPs += rec.replayed
	res.Stats.Checkpoints = checkpoints
	res.PEInstrs = det.perPEInstrs()
	res.PEStats = det.perPEStats()

	// Gather: ask each owning PE for its segment of every array.
	expect := 0
	for id, g := range res.arrays {
		for pe := 0; pe < n; pe++ {
			lo, hi := g.h.SegmentElems(pe)
			if lo >= hi {
				continue
			}
			if err := ep.Send(pe, &Msg{Kind: KDumpReq, Arr: id}); err != nil {
				stopAll()
				return nil, err
			}
			expect++
		}
	}
	// The gather phase gets the same re-arming stall guard as a probe
	// round: a worker dying between the final quiet round and its
	// KDumpReq would otherwise hang the driver here just as silently as a
	// mid-round death would above, while a large gather that keeps making
	// progress can take as long as it needs. Recovery does not extend past
	// termination: a worker dying *here* lost finished results, not
	// re-runnable work, so the run fails with diagnostics instead.
	for expect > 0 {
		m, stalled, err := recvStallGuarded(ctx, ep, cfg.RoundTimeout)
		if err != nil {
			stopAll()
			if stalled {
				return nil, fmt.Errorf("cluster: result gather stalled for %v with %d dump segments outstanding (worker dead or wedged?)",
					cfg.RoundTimeout, expect)
			}
			return nil, fmt.Errorf("cluster: gathering results: %w", err)
		}
		if rec.fenced(m) {
			continue
		}
		if m.Kind == KDump && m.Seq == 0 {
			// Seq != 0 marks a straggling checkpoint dump — merged below
			// like any other, but not one of the requested segments.
			expect--
		}
		if herr := handle(m); herr != nil {
			stopAll()
			return nil, herr
		}
		if len(down) > 0 {
			stopAll()
			return nil, fmt.Errorf("cluster: worker %d died during result gather (its finished segments are lost)", down[0])
		}
	}
	// Trace gather rides behind the array gather (same FIFO streams, so
	// every PE's ring is final by the time its answer arrives). Collection
	// is best-effort: the run's results are already in hand, and a PE that
	// cannot answer any more costs an empty trace, never the run.
	if cfg.Trace {
		pts := gatherTraces(ctx, ep, n, traceGatherWait(cfg.RoundTimeout), rec)
		res.Trace = &trace.Trace{NumPEs: n, PEs: pts, Timeline: tb.Done()}
	}
	stopAll()
	return res, nil
}

// timelineCap bounds the driver-side metrics timeline in samples (one per
// PE per completed probe round); the oldest rounds drop (and are counted)
// beyond it.
const timelineCap = 1 << 16

// stallTailEvents is how many trailing trace events per PE a stalled
// round's diagnostic dump includes.
const stallTailEvents = 8

// traceGatherWait bounds each receive of the post-termination trace
// gather. The run is already complete, so the wait only covers a flush of
// an in-memory ring: far shorter than a full round deadline.
func traceGatherWait(roundTimeout time.Duration) time.Duration {
	w := 2 * time.Second
	if roundTimeout > 0 && roundTimeout < w {
		w = roundTimeout
	}
	if w < 100*time.Millisecond {
		w = 100 * time.Millisecond
	}
	return w
}

// gatherTraces asks every worker for its trace ring and collects the
// answers best-effort: a PE that cannot answer (dead, or wedged below its
// message loop) contributes an empty PETrace instead of failing the
// gather. Driver-bound frames of any other kind arriving in the window are
// stale post-termination traffic and are dropped.
func gatherTraces(ctx context.Context, ep Endpoint, n int, wait time.Duration, rec *recovery) []trace.PETrace {
	out := make([]trace.PETrace, n)
	got := make([]bool, n)
	need := 0
	for pe := 0; pe < n; pe++ {
		if err := ep.Send(pe, &Msg{Kind: KTraceReq}); err == nil {
			need++
		}
	}
	for need > 0 {
		m, _, err := recvStallGuarded(ctx, ep, wait)
		if err != nil {
			break
		}
		if rec != nil && rec.fenced(m) {
			continue
		}
		if m.Kind != KTrace {
			continue
		}
		pe := int(m.From)
		if pe < 0 || pe >= n || got[pe] {
			continue
		}
		got[pe] = true
		need--
		out[pe] = trace.PETrace{Events: trace.Unflatten(m.TraceEvs), Drops: m.TraceDrops}
	}
	return out
}

// stallTraceDump formats each PE's trailing trace events for a stalled
// round's error message. The wait per receive is short: the PEs that can
// still talk answer immediately, and the one the round is stalled on
// probably never will.
func stallTraceDump(ctx context.Context, ep Endpoint, n int, rec *recovery) string {
	pts := gatherTraces(ctx, ep, n, 500*time.Millisecond, rec)
	var b strings.Builder
	for pe := range pts {
		fmt.Fprintf(&b, "\n  pe %d trace tail (%d events, %d dropped):\n%s",
			pe, len(pts[pe].Events), pts[pe].Drops, trace.FormatTail(pts[pe].Events, stallTailEvents))
	}
	return b.String()
}

// recvStallGuarded receives one driver-bound message, bounding the wait to
// stallAfter (0 or negative disables the guard). The deadline covers a
// single receive, so it re-arms with every message: it fires only on
// genuine silence, never on a phase that is slow but progressing. stalled
// distinguishes the guard firing from the caller's context ending.
func recvStallGuarded(ctx context.Context, ep Endpoint, stallAfter time.Duration) (m *Msg, stalled bool, err error) {
	if stallAfter <= 0 {
		m, err = ep.Recv(ctx)
		return m, false, err
	}
	rctx, rcancel := context.WithTimeout(ctx, stallAfter)
	m, err = ep.Recv(rctx)
	rcancel()
	return m, err != nil && ctx.Err() == nil && rctx.Err() != nil, err
}
