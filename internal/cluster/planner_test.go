package cluster

import (
	"math"
	"reflect"
	"testing"
)

// sums evaluates the per-PE cost totals a cut vector induces on a profile.
func sums(lo int64, costs []int64, cuts []int64, npes int) []int64 {
	out := make([]int64, npes)
	for k, c := range costs {
		iter := lo + int64(k)
		pe := 0
		for pe < len(cuts) && iter > cuts[pe] {
			pe++
		}
		out[pe] += c
	}
	return out
}

func TestPlanCutsUniformCostsEvenSplit(t *testing.T) {
	costs := make([]int64, 16)
	for i := range costs {
		costs[i] = 10
	}
	// With no installed cuts the static uniform split is already even, so
	// the planner must not churn.
	if cuts, changed := planCuts(1, costs, 4, nil, 0.05); changed {
		t.Fatalf("uniform profile over the static split must not rebind, got %v", cuts)
	}
	// From a badly skewed installed split, a uniform profile restores the
	// even one.
	skewed := []int64{1, 2, 3} // PE 3 carries 13 of 16 iterations
	cuts, changed := planCuts(1, costs, 4, skewed, 0.05)
	if !changed {
		t.Fatal("uniform profile should rebalance a skewed installed split")
	}
	if want := []int64{4, 8, 12}; !reflect.DeepEqual(cuts, want) {
		t.Fatalf("cuts = %v, want %v", cuts, want)
	}
	for pe, s := range sums(1, costs, cuts, 4) {
		if s != 40 {
			t.Errorf("PE %d carries %d, want 40", pe, s)
		}
	}
}

func TestPlanCutsTriangularPrefixBalanced(t *testing.T) {
	// cost(i) = i for i in [1,32]: total 528, ideal share 132 per PE.
	costs := make([]int64, 32)
	for i := range costs {
		costs[i] = int64(i + 1)
	}
	cuts, changed := planCuts(1, costs, 4, nil, 0.05)
	if !changed {
		t.Fatal("triangular profile should beat the uniform split by far more than 5%")
	}
	// Later PEs must receive strictly fewer iterations than earlier ones.
	widths := []int64{cuts[0], cuts[1] - cuts[0], cuts[2] - cuts[1], 32 - cuts[2]}
	for p := 1; p < len(widths); p++ {
		if widths[p] >= widths[p-1] {
			t.Fatalf("prefix balance violated: widths %v should strictly decrease", widths)
		}
	}
	// Every PE's load is within one iteration's worth (the granularity
	// bound) of the ideal share.
	for pe, s := range sums(1, costs, cuts, 4) {
		if s < 132-32 || s > 132+32 {
			t.Errorf("PE %d carries %d, want 132±32", pe, s)
		}
	}
}

func TestPlanCutsHysteresisSuppressesSmallChurn(t *testing.T) {
	// Installed cuts one iteration off the optimum on a flat 80-iteration
	// profile: predicted makespan 210 vs the optimal 200 — a 4.76%
	// improvement, under the 5% hysteresis, so the rebind is suppressed.
	costs := make([]int64, 80)
	for i := range costs {
		costs[i] = 10
	}
	nudged := []int64{21, 40, 60} // balanced would be {20,40,60}
	cuts, changed := planCuts(1, costs, 4, nudged, 0.05)
	if changed {
		t.Fatalf("sub-5%% improvement must not churn: got new cuts %v over %v", cuts, nudged)
	}
	if !reflect.DeepEqual(cuts, nudged) {
		t.Fatalf("suppressed rebind must return the installed cuts, got %v", cuts)
	}
	// Sanity: with hysteresis off the same inputs do move.
	if _, changed := planCuts(1, costs, 4, nudged, 0); !changed {
		t.Fatal("zero hysteresis should adopt the strictly better split")
	}
}

func TestPlanCutsSingleIteration(t *testing.T) {
	cuts, changed := planCuts(7, []int64{100}, 4, nil, 0.05)
	if !changed {
		// A single iteration cannot beat the uniform split of a 1-wide
		// range (both give one PE everything), so no rebind is fine —
		// but the planner must not panic or emit malformed cuts.
		return
	}
	if len(cuts) != 3 {
		t.Fatalf("got %d cuts, want 3", len(cuts))
	}
	total := int64(0)
	for _, s := range sums(7, []int64{100}, cuts, 4) {
		total += s
	}
	if total != 100 {
		t.Fatalf("cuts lose cost: total %d, want 100", total)
	}
}

func TestPlanCutsSinglePE(t *testing.T) {
	cuts, changed := planCuts(1, []int64{5, 5, 5}, 1, nil, 0.05)
	if changed || cuts != nil {
		t.Fatalf("1 PE has nothing to split: got cuts=%v changed=%v", cuts, changed)
	}
}

func TestPlanCutsEmptyAndZeroProfiles(t *testing.T) {
	if cuts, changed := planCuts(1, nil, 4, []int64{1, 2, 3}, 0.05); changed || !reflect.DeepEqual(cuts, []int64{1, 2, 3}) {
		t.Fatalf("empty profile must keep installed cuts, got %v changed=%v", cuts, changed)
	}
	if cuts, changed := planCuts(1, []int64{0, 0, 0}, 4, nil, 0.05); changed || cuts != nil {
		t.Fatalf("zero-cost profile must not rebind, got %v changed=%v", cuts, changed)
	}
}

func TestCutBoundsPartitionAnyRange(t *testing.T) {
	cuts := []int64{3, 9, 14}
	n := 4
	// The stamped ranges must tile ℤ: ends are ±inf, interior contiguous.
	if lo, _ := cutBounds(cuts, 0, n); lo != math.MinInt64 {
		t.Fatalf("PE 0 lower bound = %d, want -inf", lo)
	}
	if _, hi := cutBounds(cuts, n-1, n); hi != math.MaxInt64 {
		t.Fatalf("last PE upper bound = %d, want +inf", hi)
	}
	for pe := 1; pe < n; pe++ {
		_, prevHi := cutBounds(cuts, pe-1, n)
		lo, _ := cutBounds(cuts, pe, n)
		if lo != prevHi+1 {
			t.Fatalf("gap between PE %d and %d: hi=%d lo=%d", pe-1, pe, prevHi, lo)
		}
	}
	// Clamping against an arbitrary real range assigns every iteration to
	// exactly one PE — even a range that overlaps no cut at all.
	for _, rng := range [][2]int64{{1, 20}, {-5, 2}, {16, 40}, {7, 7}} {
		for iter := rng[0]; iter <= rng[1]; iter++ {
			owners := 0
			for pe := 0; pe < n; pe++ {
				lo, hi := cutBounds(cuts, pe, n)
				if iter >= max(lo, rng[0]) && iter <= min(hi, rng[1]) {
					owners++
				}
			}
			if owners != 1 {
				t.Fatalf("range %v: iteration %d owned by %d PEs", rng, iter, owners)
			}
		}
	}
}
