package cluster

import (
	"testing"
	"time"

	"repro/internal/isa"
	"repro/internal/istructure"
	"repro/internal/kernels"
	"repro/internal/rtcfg"
	"repro/internal/sim"
)

// taskProgram builds a minimal hand-assembled program for the white-box
// steal tests: template 0 ("task", the entry) takes a continuation SP
// reference and a float; it blocks on a token slot, adds it to its
// argument, sends the sum to the continuation, and halts.
func taskProgram() *isa.Program {
	add := isa.NewInstr(isa.FADD)
	add.Dst, add.A, add.B = 3, 1, 2
	snd := isa.NewInstr(isa.SEND)
	snd.A, snd.B = 0, 3
	snd.Imm = isa.Int(0)
	return &isa.Program{
		EntryID: 0,
		Templates: []*isa.Template{{
			ID:      0,
			Name:    "task",
			Kind:    isa.TmplMain,
			NParams: 2,
			NSlots:  4,
			Code:    []isa.Instr{add, snd, isa.NewInstr(isa.HALT)},
		}},
	}
}

// simArraysMasked runs the simulator as the reference backend, returning
// values and written-masks (kernels like triangular legitimately leave
// elements unwritten, which plain simArrays rejects).
func simArraysMasked(t *testing.T, prog *isa.Program, pes int, names []string,
	args ...isa.Value) (map[string][]float64, map[string][]bool) {
	t.Helper()
	m, err := sim.New(prog, sim.Config{NumPEs: pes})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(args...); err != nil {
		t.Fatal(err)
	}
	vals := make(map[string][]float64)
	masks := make(map[string][]bool)
	for _, name := range names {
		v, mask, _, err := m.ReadArray(name)
		if err != nil {
			t.Fatal(err)
		}
		vals[name], masks[name] = v, mask
	}
	return vals, masks
}

// checkAgainstSimMasked asserts a cluster result agrees bit-for-bit with
// the simulator on both values and written-masks.
func checkAgainstSimMasked(t *testing.T, res *Result, wantVals map[string][]float64, wantMasks map[string][]bool) {
	t.Helper()
	for name, ref := range wantVals {
		vals, mask, _, err := res.ReadArray(name)
		if err != nil {
			t.Fatal(err)
		}
		if len(vals) != len(ref) {
			t.Fatalf("%s: %d elements, want %d", name, len(vals), len(ref))
		}
		for i := range ref {
			if mask[i] != wantMasks[name][i] {
				t.Fatalf("%s[%d]: written=%v, want %v", name, i, mask[i], wantMasks[name][i])
			}
			if mask[i] && vals[i] != ref[i] {
				t.Fatalf("%s[%d] = %v, want %v (cluster disagrees with sim)", name, i, vals[i], ref[i])
			}
		}
	}
}

// pumpWorker drains one worker's mailbox and runs its ready SPs to
// quiescence, single-threaded and deterministic.
func pumpWorker(w *worker, ep Endpoint) bool {
	progress := false
	for {
		stepped := false
		for {
			m, ok := ep.TryRecv()
			if !ok {
				break
			}
			w.handle(m)
			progress, stepped = true, true
		}
		for w.readyHead != len(w.ready) {
			w.step()
			progress, stepped = true, true
		}
		if !stepped {
			return progress
		}
	}
}

// TestStealProtocolGrantForwardLateToken walks the whole steal protocol
// deterministically, with no goroutines: a victim grants its oldest
// not-yet-started SP, tokens for the stolen SP's home ID are relayed
// through the forwarding stub, a token trailing the stolen SP's HALT is
// dropped, a token for a genuinely unknown SP still fails the run, and the
// sent/recv counters balance at quiescence (termination soundness).
func TestStealProtocolGrantForwardLateToken(t *testing.T) {
	prog := taskProgram()
	eps := newChanTransport(2, 0)
	geo := rtcfg.Geometry{PEs: 2, PageElems: 8, DistThreshold: 16}
	w0 := newWorker(0, 2, geo, prog, eps[0], workerOpts{steal: true})
	w1 := newWorker(1, 2, geo, prog, eps[1], workerOpts{steal: true})
	driver := eps[2]
	// drainOnly delivers pending messages without running ready SPs, so
	// the test controls exactly when instances start executing.
	drainOnly := func(w *worker, ep Endpoint) {
		for {
			m, ok := ep.TryRecv()
			if !ok {
				return
			}
			w.handle(m)
		}
	}
	pump := func() {
		for pumpWorker(w0, eps[0]) || pumpWorker(w1, eps[1]) {
		}
	}

	// Two task SPs spawned on PE 0, delivered but not yet run: both sit
	// in the ready queue at pc 0.
	for i := 0; i < 2; i++ {
		if err := driver.Send(0, &Msg{Kind: KSpawn, Tmpl: 0,
			Args: []isa.Value{isa.SPRef(0), isa.Float(float64(i))}}); err != nil {
			t.Fatal(err)
		}
	}
	drainOnly(w0, eps[0])
	id1, id2 := packID(0, 1), packID(0, 2)
	if len(w0.insts) != 2 {
		t.Fatalf("PE 0 has %d live SPs, want 2", len(w0.insts))
	}

	// PE 1 is idle: its first steal attempt targets PE 0 and must be
	// granted the oldest instance.
	w1.maybeSteal()
	drainOnly(w0, eps[0])
	drainOnly(w1, eps[1])
	if w1.steals != 1 || w1.insts[id1] == nil {
		t.Fatalf("steals=%d insts[id1]=%v, want the first SP stolen to PE 1", w1.steals, w1.insts[id1])
	}
	if to, ok := w0.forwards[id1]; !ok || to != 1 {
		t.Fatalf("victim forwarding stub = (%d, %v), want (1, true)", to, ok)
	}
	if w0.insts[id1] != nil {
		t.Fatal("victim still owns the stolen SP")
	}

	// A token addressed to the stolen SP's home ID arrives at the victim:
	// it must be relayed to the thief, wake the SP there, and produce the
	// result at the driver.
	if err := driver.Send(0, &Msg{Kind: KToken, SP: id1, Slot: 2, Val: isa.Float(2.5)}); err != nil {
		t.Fatal(err)
	}
	pump()
	if w0.forwarded != 1 {
		t.Fatalf("victim forwarded %d tokens, want 1", w0.forwarded)
	}
	m, ok := driver.TryRecv()
	if !ok || m.Kind != KToken || m.Val.F != 2.5 {
		t.Fatalf("driver got %+v, want the stolen SP's result token 0+2.5", m)
	}
	if w1.insts[id1] != nil {
		t.Fatal("stolen SP still live after HALT")
	}

	// A second token trailing the stolen SP's HALT takes the same stub
	// path and must be dropped by the thief, not fail the run.
	if err := driver.Send(0, &Msg{Kind: KToken, SP: id1, Slot: 2, Val: isa.Float(9)}); err != nil {
		t.Fatal(err)
	}
	pump()
	if w1.lateTokens != 1 || w1.failed || w0.failed {
		t.Fatalf("late token: lateTokens=%d failed=%v/%v, want 1 drop and no failure",
			w1.lateTokens, w0.failed, w1.failed)
	}

	// Unblock the remaining home SP so the cluster quiesces, then check
	// the four-counter invariant: every counted send was received.
	if err := driver.Send(0, &Msg{Kind: KToken, SP: id2, Slot: 2, Val: isa.Float(1)}); err != nil {
		t.Fatal(err)
	}
	pump()
	if _, ok := driver.TryRecv(); !ok {
		t.Fatal("home SP produced no result")
	}
	if w0.sent+w1.sent != w0.recv+w1.recv {
		t.Fatalf("counters unbalanced at quiescence: sent %d+%d, recv %d+%d",
			w0.sent, w1.sent, w0.recv, w1.recv)
	}

	// A token for an ID no worker has ever seen is still a hard failure.
	if err := driver.Send(1, &Msg{Kind: KToken, SP: packID(1, 99), Slot: 2, Val: isa.Float(0)}); err != nil {
		t.Fatal(err)
	}
	pump()
	if !w1.failed {
		t.Fatal("token for unknown SP did not fail the worker")
	}
}

// TestStealBackClearsStaleStub is the regression test for the stub-cycle
// bug: when a worker re-acquires an SP it had granted away, its own stale
// forwarding stub must be cleared at install time — otherwise, once the SP
// halts, a late token would relay home→thief→home forever (each hop counts
// in sent/recv, so the run would also never terminate).
func TestStealBackClearsStaleStub(t *testing.T) {
	prog := taskProgram()
	eps := newChanTransport(2, 0)
	geo := rtcfg.Geometry{PEs: 2, PageElems: 8, DistThreshold: 16}
	w0 := newWorker(0, 2, geo, prog, eps[0], workerOpts{steal: true})
	w1 := newWorker(1, 2, geo, prog, eps[1], workerOpts{steal: true})
	driver := eps[2]
	drainOnly := func(w *worker, ep Endpoint) {
		for {
			m, ok := ep.TryRecv()
			if !ok {
				return
			}
			w.handle(m)
		}
	}

	// PE 0 holds two unstarted SPs; PE 1 steals the oldest (id1).
	for i := 0; i < 2; i++ {
		if err := driver.Send(0, &Msg{Kind: KSpawn, Tmpl: 0,
			Args: []isa.Value{isa.SPRef(0), isa.Float(0)}}); err != nil {
			t.Fatal(err)
		}
	}
	drainOnly(w0, eps[0])
	id1 := packID(0, 1)
	w1.maybeSteal()
	drainOnly(w0, eps[0])
	drainOnly(w1, eps[1])
	if w1.insts[id1] == nil {
		t.Fatal("first steal did not move id1 to PE 1")
	}

	// Load PE 1 with a second unstarted SP, then let PE 0 steal id1 back.
	if err := driver.Send(1, &Msg{Kind: KSpawn, Tmpl: 0,
		Args: []isa.Value{isa.SPRef(0), isa.Float(0)}}); err != nil {
		t.Fatal(err)
	}
	drainOnly(w1, eps[1])
	w0.maybeSteal()
	drainOnly(w1, eps[1])
	drainOnly(w0, eps[0])
	if w0.insts[id1] == nil {
		t.Fatal("steal-back did not return id1 to PE 0")
	}
	if _, stale := w0.forwards[id1]; stale {
		t.Fatal("steal-back left PE 0's stale forwarding stub in place (token relay cycle)")
	}
	if to, ok := w1.forwards[id1]; !ok || to != 0 {
		t.Fatalf("PE 1 stub = (%d, %v), want (0, true)", to, ok)
	}

	// Run everything down, then push a late token through PE 1's stub: it
	// must come home and be dropped, not orbit.
	pump := func() {
		for pumpWorker(w0, eps[0]) || pumpWorker(w1, eps[1]) {
		}
	}
	for _, id := range []int64{id1, packID(0, 2), packID(1, 1)} {
		if err := driver.Send(peOf(id), &Msg{Kind: KToken, SP: id, Slot: 2, Val: isa.Float(1)}); err != nil {
			t.Fatal(err)
		}
	}
	pump()
	if err := driver.Send(1, &Msg{Kind: KToken, SP: id1, Slot: 2, Val: isa.Float(9)}); err != nil {
		t.Fatal(err)
	}
	pump()
	if w0.lateTokens != 1 || w0.failed || w1.failed {
		t.Fatalf("late token through stub chain: lateTokens=%d failed=%v/%v, want 1/false/false",
			w0.lateTokens, w0.failed, w1.failed)
	}
}

// TestStealDeclinedWhenUnloaded pins the victim policy: a victim with one
// (or zero) queued SPs answers KStealNone and the thief's backoff grows.
func TestStealDeclinedWhenUnloaded(t *testing.T) {
	prog := taskProgram()
	eps := newChanTransport(2, 0)
	geo := rtcfg.Geometry{PEs: 2, PageElems: 8, DistThreshold: 16}
	w0 := newWorker(0, 2, geo, prog, eps[0], workerOpts{steal: true})
	w1 := newWorker(1, 2, geo, prog, eps[1], workerOpts{steal: true})
	driver := eps[2]
	pump := func() {
		for pumpWorker(w0, eps[0]) || pumpWorker(w1, eps[1]) {
		}
	}

	// One blocked SP on PE 0: stealing it would leave the victim empty.
	if err := driver.Send(0, &Msg{Kind: KSpawn, Tmpl: 0,
		Args: []isa.Value{isa.SPRef(0), isa.Float(0)}}); err != nil {
		t.Fatal(err)
	}
	pump()
	w1.maybeSteal()
	pump()
	if w1.steals != 0 || w1.stealFails != 1 || w1.stealWait != 1 {
		t.Fatalf("after decline: steals=%d fails=%d wait=%d, want 0/1/1",
			w1.steals, w1.stealFails, w1.stealWait)
	}
	// The next idle wake-up only pays down the backoff; no request goes
	// out until it reaches zero.
	w1.maybeSteal()
	pump()
	if w1.stealFails != 1 || w1.stealWait != 0 || w1.steals != 0 {
		t.Fatalf("backoff wake-up: fails=%d wait=%d steals=%d, want 1/0/0",
			w1.stealFails, w1.stealWait, w1.steals)
	}
	// Repeated declines reach dormancy (2 sweeps of the single peer);
	// after that, no further requests are sent.
	for i := 0; i < 16; i++ {
		w1.maybeSteal()
		pump()
	}
	if w1.stealFails < w1.stealDormantAfter() {
		t.Fatalf("fails=%d, want dormancy at %d", w1.stealFails, w1.stealDormantAfter())
	}
	w1.maybeSteal()
	if w1.stealOutstanding {
		t.Fatal("dormant worker still sent a steal request")
	}

	// Dormancy is not forever: after stealReviveProbes probe rounds the
	// backoff resets, so skew that arrives late in the run still gets
	// stolen eventually.
	for i := 0; i < stealReviveProbes; i++ {
		w1.handle(&Msg{Kind: KProbe, Round: int32(i + 1), From: int32(w1.driverID())})
	}
	if w1.stealFails != 0 {
		t.Fatalf("fails=%d after %d probe rounds, want dormancy revived", w1.stealFails, stealReviveProbes)
	}
	w1.maybeSteal()
	if !w1.stealOutstanding {
		t.Fatal("revived worker sent no steal request")
	}
	pump()
}

// stepOneRound gives every worker one drain plus at most one step — a
// deterministic stand-in for N PEs progressing in parallel.
func stepOneRound(ws []*worker, eps []Endpoint) bool {
	progress := false
	for i, w := range ws {
		for {
			m, ok := eps[i].TryRecv()
			if !ok {
				break
			}
			w.handle(m)
			progress = true
		}
		if w.readyHead != len(w.ready) {
			w.step()
			progress = true
		} else {
			before := w.stealOutstanding
			w.maybeSteal()
			progress = progress || (w.stealOutstanding && !before)
		}
	}
	return progress
}

// TestStealDeterminacyPumpedTriangular runs the triangular kernel on four
// hand-pumped workers — a deterministic, adversarially fair schedule with
// stealing enabled — and asserts both that steals actually happen and that
// the gathered array is bit-for-bit the simulator's (Church-Rosser under
// migration).
func TestStealDeterminacyPumpedTriangular(t *testing.T) {
	k, _ := kernels.ByName("triangular")
	prog := compile(t, k.File(), k.Source)
	const n, pes = 24, 4
	wantVals, wantMasks := simArraysMasked(t, prog, pes, k.Arrays, k.Args(n)...)

	geo := rtcfg.Geometry{PEs: pes, PageElems: 8, DistThreshold: 16}
	if err := geo.Fill(pes); err != nil {
		t.Fatal(err)
	}
	eps := newChanTransport(pes, 0)
	ws := make([]*worker, pes)
	for pe := range ws {
		ws[pe] = newWorker(pe, pes, geo, prog, eps[pe], workerOpts{steal: true})
	}
	driver := eps[pes]

	// Mini-driver: collect alloc headers and dumps, fail on KFail.
	arrays := make(map[int64]*gathered)
	drainDriver := func() {
		for {
			m, ok := driver.TryRecv()
			if !ok {
				return
			}
			switch m.Kind {
			case KAlloc:
				dims := make([]int, len(m.Dims))
				for i, d := range m.Dims {
					dims[i] = int(d)
				}
				h, err := istructure.NewHeader(m.Arr, m.Name, dims, geo.PageElems, pes, int(m.Origin), m.Dist)
				if err != nil {
					t.Fatal(err)
				}
				arrays[m.Arr] = &gathered{h: h, vals: make([]float64, h.Elems()), mask: make([]bool, h.Elems())}
			case KFail:
				t.Fatalf("worker failed: %s", m.Name)
			case KDump:
				if err := arrays[m.Arr].merge(m); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	if err := driver.Send(0, &Msg{Kind: KSpawn, Tmpl: int32(prog.EntryID), Args: k.Args(n)}); err != nil {
		t.Fatal(err)
	}
	for rounds := 0; ; rounds++ {
		if rounds > 50_000_000 {
			t.Fatal("pumped run did not quiesce")
		}
		progress := stepOneRound(ws, eps)
		drainDriver()
		if !progress {
			break
		}
	}
	var steals, live int64
	for _, w := range ws {
		steals += w.steals
		live += int64(len(w.insts))
	}
	if live != 0 {
		t.Fatalf("%d live SPs at quiescence (deadlock)", live)
	}
	if steals == 0 {
		t.Fatal("no steals under a skewed triangular load with idle PEs")
	}
	t.Logf("triangular pumped @%dPE: %d steals", pes, steals)

	// Gather and compare against the simulator.
	for id, g := range arrays {
		for pe := 0; pe < pes; pe++ {
			lo, hi := g.h.SegmentElems(pe)
			if lo >= hi {
				continue
			}
			if err := driver.Send(pe, &Msg{Kind: KDumpReq, Arr: id}); err != nil {
				t.Fatal(err)
			}
		}
	}
	for stepOneRound(ws, eps) {
		drainDriver()
	}
	drainDriver()
	for name, ref := range wantVals {
		var g *gathered
		for _, cand := range arrays {
			if cand.h.Name == name {
				g = cand
			}
		}
		if g == nil {
			t.Fatalf("array %q never allocated", name)
		}
		if len(g.vals) != len(ref) {
			t.Fatalf("%s: %d elements, want %d", name, len(g.vals), len(ref))
		}
		for i := range ref {
			if g.mask[i] != wantMasks[name][i] {
				t.Fatalf("%s[%d]: written=%v, want %v", name, i, g.mask[i], wantMasks[name][i])
			}
			if g.mask[i] && g.vals[i] != ref[i] {
				t.Fatalf("%s[%d] = %v, want %v (stealing broke determinacy)", name, i, g.vals[i], ref[i])
			}
		}
	}
}

// TestStealKeepsKernelsDeterminate is the end-to-end steal-on agreement
// matrix: every kernel, every PE count, cluster runtime with stealing
// enabled, compared bit-for-bit against the simulator.
func TestStealKeepsKernelsDeterminate(t *testing.T) {
	const n = 8
	for _, k := range kernels.All() {
		t.Run(k.Name, func(t *testing.T) {
			prog := compile(t, k.File(), k.Source)
			wantVals, wantMasks := simArraysMasked(t, prog, 4, k.Arrays, k.Args(n)...)
			for _, pes := range []int{1, 2, 4, 8} {
				res, err := Execute(testCtx(t), prog, Config{NumPEs: pes, PageElems: 8, Steal: true}, k.Args(n)...)
				if err != nil {
					t.Fatalf("%d PEs: %v", pes, err)
				}
				checkAgainstSimMasked(t, res, wantVals, wantMasks)
			}
		})
	}
}

// TestClusterDeterminacyDefaultKnob runs the kernel agreement matrix with
// Config.Steal left untouched — the one Steal|Determinacy test that
// actually consults the PODS_FORCE_STEAL override in Config.fill. In the
// ordinary CI leg this covers the static scheduler; in the forced-steal
// leg the identical matrix runs with migration on.
func TestClusterDeterminacyDefaultKnob(t *testing.T) {
	const n = 8
	for _, k := range kernels.All() {
		t.Run(k.Name, func(t *testing.T) {
			prog := compile(t, k.File(), k.Source)
			wantVals, wantMasks := simArraysMasked(t, prog, 4, k.Arrays, k.Args(n)...)
			for _, pes := range []int{1, 2, 4, 8} {
				res, err := Execute(testCtx(t), prog, Config{NumPEs: pes, PageElems: 8}, k.Args(n)...)
				if err != nil {
					t.Fatalf("%d PEs: %v", pes, err)
				}
				checkAgainstSimMasked(t, res, wantVals, wantMasks)
			}
		})
	}
}

// TestStealTriangularEndToEnd runs the skewed kernel on the real goroutine
// cluster with stealing on, checks agreement, and reports the realized
// rebalance. Steal counts depend on host scheduling, so only the
// load-movement direction is asserted, never an exact figure.
func TestStealTriangularEndToEnd(t *testing.T) {
	// This test runs its own steal-off control arm, so neutralize the CI
	// leg's blanket PODS_FORCE_STEAL override.
	t.Setenv("PODS_FORCE_STEAL", "")
	k, _ := kernels.ByName("triangular")
	prog := compile(t, k.File(), k.Source)
	const n = 48
	wantVals, wantMasks := simArraysMasked(t, prog, 4, k.Arrays, k.Args(n)...)

	off, err := Execute(testCtx(t), prog, Config{NumPEs: 4}, k.Args(n)...)
	if err != nil {
		t.Fatal(err)
	}
	on, err := Execute(testCtx(t), prog, Config{NumPEs: 4, Steal: true}, k.Args(n)...)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstSimMasked(t, on, wantVals, wantMasks)
	if off.Stats.Steals != 0 {
		t.Fatalf("steal-off run reports %d steals", off.Stats.Steals)
	}
	t.Logf("triangular@4PE: steal-off perPE=%v, steal-on perPE=%v (%d steals)",
		off.PEInstrs, on.PEInstrs, on.Stats.Steals)
	// Host scheduling decides how many steals land, so the makespan
	// usually improves but is not guaranteed to on every run; only a
	// catastrophic regression (a PE hoarding far beyond the static
	// maximum share) is a hard failure.
	if lim := maxOf(off.PEInstrs) + maxOf(off.PEInstrs)/4; maxOf(on.PEInstrs) > lim {
		t.Errorf("stealing ballooned the makespan: max per-PE instrs %d > %d",
			maxOf(on.PEInstrs), lim)
	}
}

func maxOf(vs []int64) int64 {
	var m int64
	for _, v := range vs {
		if v > m {
			m = v
		}
	}
	return m
}

// TestStealGrantBatchHalfOldestFirst pins the batched victim policy: a
// victim with k stealable SPs grants ⌈k/2⌉ in one KStealGrant, and with no
// locality signal the batch is the oldest not-yet-started SPs in age order.
func TestStealGrantBatchHalfOldestFirst(t *testing.T) {
	prog := taskProgram()
	eps := newChanTransport(2, 0)
	geo := rtcfg.Geometry{PEs: 2, PageElems: 8, DistThreshold: 16}
	w0 := newWorker(0, 2, geo, prog, eps[0], workerOpts{steal: true})
	w1 := newWorker(1, 2, geo, prog, eps[1], workerOpts{steal: true})
	driver := eps[2]
	for i := 0; i < 5; i++ {
		if err := driver.Send(0, &Msg{Kind: KSpawn, Tmpl: 0,
			Args: []isa.Value{isa.SPRef(0), isa.Float(float64(i))}}); err != nil {
			t.Fatal(err)
		}
	}
	for {
		m, ok := eps[0].TryRecv()
		if !ok {
			break
		}
		w0.handle(m)
	}

	w1.maybeSteal()
	if m, ok := eps[0].TryRecv(); ok {
		w0.handle(m)
	} else {
		t.Fatal("no steal request reached the victim")
	}
	grant, ok := eps[1].TryRecv()
	if !ok || grant.Kind != KStealGrant {
		t.Fatalf("thief got %+v, want a grant", grant)
	}
	if len(grant.Batch) != 3 {
		t.Fatalf("grant batch of %d SPs, want 3 (⌈5/2⌉)", len(grant.Batch))
	}
	for i, it := range grant.Batch {
		if want := packID(0, int64(i+1)); it.SP != want {
			t.Errorf("batch[%d] = SP %d, want %d (oldest first)", i, it.SP, want)
		}
		if _, stub := w0.forwards[it.SP]; !stub {
			t.Errorf("no forwarding stub for granted SP %d", it.SP)
		}
		if w0.insts[it.SP] != nil {
			t.Errorf("victim still owns granted SP %d", it.SP)
		}
	}
	w1.handle(grant)
	if w1.steals != 3 || len(w1.insts) != 3 {
		t.Fatalf("thief installed %d SPs (%d steals), want 3", len(w1.insts), w1.steals)
	}
}

// TestStealLocalityPreference: the victim prefers granting SPs whose
// operand-frame arrays appear in the thief's hot summary, oldest first
// within equal locality.
func TestStealLocalityPreference(t *testing.T) {
	prog := taskProgram()
	eps := newChanTransport(2, 0)
	geo := rtcfg.Geometry{PEs: 2, PageElems: 8, DistThreshold: 16}
	w0 := newWorker(0, 2, geo, prog, eps[0], workerOpts{steal: true})
	// Three unstarted SPs whose first operand is an array handle; only the
	// second references the thief's hot array 77.
	for _, arr := range []int64{55, 77, 55} {
		if err := eps[2].Send(0, &Msg{Kind: KSpawn, Tmpl: 0,
			Args: []isa.Value{isa.Array(arr), isa.Float(0)}}); err != nil {
			t.Fatal(err)
		}
	}
	for {
		m, ok := eps[0].TryRecv()
		if !ok {
			break
		}
		w0.handle(m)
	}
	w0.handle(&Msg{Kind: KStealReq, From: 1, Hot: []int64{77}})
	grant, ok := eps[1].TryRecv()
	if !ok || grant.Kind != KStealGrant {
		t.Fatalf("got %+v, want a grant", grant)
	}
	if len(grant.Batch) != 2 {
		t.Fatalf("batch of %d, want 2 (⌈3/2⌉)", len(grant.Batch))
	}
	if grant.Batch[0].SP != packID(0, 2) {
		t.Errorf("batch[0] = SP %d, want %d (the hot-array SP preferred over older cold ones)",
			grant.Batch[0].SP, packID(0, 2))
	}
	if grant.Batch[1].SP != packID(0, 1) {
		t.Errorf("batch[1] = SP %d, want %d (oldest of the cold SPs)",
			grant.Batch[1].SP, packID(0, 1))
	}
}

// TestStealMidDequeGrantNoShift is the regression test for the O(n) copy
// in the old popStealable: granting around an in-flight entry must leave a
// tombstone instead of shifting the tail, and the skipped entry must stay
// where it was.
func TestStealMidDequeGrantNoShift(t *testing.T) {
	prog := taskProgram()
	eps := newChanTransport(2, 0)
	geo := rtcfg.Geometry{PEs: 2, PageElems: 8, DistThreshold: 16}
	w0 := newWorker(0, 2, geo, prog, eps[0], workerOpts{steal: true})
	for i := 0; i < 3; i++ {
		if err := eps[2].Send(0, &Msg{Kind: KSpawn, Tmpl: 0,
			Args: []isa.Value{isa.SPRef(0), isa.Float(0)}}); err != nil {
			t.Fatal(err)
		}
	}
	for {
		m, ok := eps[0].TryRecv()
		if !ok {
			break
		}
		w0.handle(m)
	}
	// Mark the bottom SP as started (in flight): it is pinned, so the
	// grant must skip it and take the next-oldest.
	started, third := w0.ready[0], w0.ready[2]
	started.pc = 1
	batch := w0.stealBatch(nil, nil)
	if len(batch) != 1 || batch[0].id != packID(0, 2) {
		t.Fatalf("batch = %v, want exactly the second SP", batch)
	}
	if w0.ready[0] != started || w0.ready[1] != nil || w0.ready[2] != third {
		t.Fatalf("grant shifted the deque: %v", w0.ready)
	}
	if w0.readyNil != 1 {
		t.Fatalf("readyNil = %d, want 1 tombstone", w0.readyNil)
	}
}

// TestReadyDequeBoundedGrowth is the regression test for the unbounded
// nil prefix: on a run whose queue never drains, steady enqueue-at-top /
// steal-from-bottom traffic must not grow the backing slice without bound
// — the dead prefix and tombstones are compacted once they exceed half
// the slice.
func TestReadyDequeBoundedGrowth(t *testing.T) {
	prog := taskProgram()
	eps := newChanTransport(2, 0)
	geo := rtcfg.Geometry{PEs: 2, PageElems: 8, DistThreshold: 16}
	w0 := newWorker(0, 2, geo, prog, eps[0], workerOpts{steal: true})
	spawn := func() {
		if err := eps[2].Send(0, &Msg{Kind: KSpawn, Tmpl: 0,
			Args: []isa.Value{isa.SPRef(0), isa.Float(0)}}); err != nil {
			t.Fatal(err)
		}
		m, ok := eps[0].TryRecv()
		if !ok {
			t.Fatal("spawn not delivered")
		}
		w0.handle(m)
	}
	spawn()
	for round := 0; round < 10_000; round++ {
		spawn() // two live SPs queued, never fully drained
		if got := w0.stealBatch(nil, nil); len(got) != 1 {
			t.Fatalf("round %d: stole %d SPs, want 1", round, len(got))
		}
		if dead := w0.readyHead + w0.readyNil; dead > len(w0.ready) {
			t.Fatalf("round %d: dead count %d exceeds deque length %d", round, dead, len(w0.ready))
		}
		if len(w0.ready) > 8 {
			t.Fatalf("round %d: deque grew to %d entries for 2 live SPs (prefix never reclaimed)",
				round, len(w0.ready))
		}
	}
}

// TestDumpBoundsChecked is the regression test for the driver-side KDump
// handler: a malformed frame whose segment does not fit the assembled
// array must produce an error, not a panic.
func TestDumpBoundsChecked(t *testing.T) {
	h, err := istructure.NewHeader(7, "A", []int{2, 4}, 8, 2, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	g := &gathered{h: h, vals: make([]float64, 8), mask: make([]bool, 8)}

	good := &Msg{Kind: KDump, Arr: 7, Off: 4,
		Vals: []isa.Value{isa.Float(1), isa.Float(2)}, Set: []bool{true, true}}
	if err := g.merge(roundTrip(t, good)); err != nil {
		t.Fatalf("in-bounds dump rejected: %v", err)
	}
	bad := []*Msg{
		{Kind: KDump, Arr: 7, Off: 7, Vals: []isa.Value{isa.Float(1), isa.Float(2)}, Set: []bool{true, true}},
		{Kind: KDump, Arr: 7, Off: -1, Vals: []isa.Value{isa.Float(1)}, Set: []bool{true}},
		{Kind: KDump, Arr: 7, Off: 0, Vals: make([]isa.Value, 9), Set: make([]bool, 9)},
		{Kind: KDump, Arr: 7, Off: 0, Vals: []isa.Value{isa.Float(1)}, Set: []bool{true, true}},
	}
	for i, m := range bad {
		if err := g.merge(roundTrip(t, m)); err == nil {
			t.Errorf("malformed dump %d accepted (vals=%d set=%d off=%d)", i, len(m.Vals), len(m.Set), m.Off)
		}
	}
}

// roundTrip pushes a message through the wire codec so the regression test
// exercises the same path a corrupt TCP frame would take.
func roundTrip(t *testing.T, m *Msg) *Msg {
	t.Helper()
	out, err := decodeMsg(encodeMsg(nil, m))
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestLatencyMailboxOrdering pins the latency-injection mechanics at the
// mailbox level: an undue message is invisible to TryRecv, Recv waits it
// out, and per-pair FIFO survives the delay.
func TestLatencyMailboxOrdering(t *testing.T) {
	b := newDelayMailbox(20 * time.Millisecond)
	b.put(&Msg{Kind: KProbe, Round: 1})
	b.put(&Msg{Kind: KProbe, Round: 2})
	if _, ok, wait, _ := b.pop(); ok || wait <= 0 {
		t.Fatalf("undue message already receivable (ok=%v wait=%v)", ok, wait)
	}
	start := time.Now()
	for round := int32(1); round <= 2; round++ {
		m, err := b.recv(testCtx(t))
		if err != nil {
			t.Fatal(err)
		}
		if m.Round != round {
			t.Fatalf("got round %d, want %d (FIFO violated)", m.Round, round)
		}
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("messages delivered after %v, want ≥ the injected 20ms", elapsed)
	}
}

// TestLatencyInjectedRuns exercises the steal path (triangular, stealing
// on) and the deferred-remote-read path (mirror) under 0/1/5ms injected
// per-hop latency, asserting bit-for-bit agreement with the simulator at
// every latency.
func TestLatencyInjectedRuns(t *testing.T) {
	const n = 6
	for _, kn := range []string{"triangular", "mirror"} {
		k, _ := kernels.ByName(kn)
		prog := compile(t, k.File(), k.Source)
		wantVals, wantMasks := simArraysMasked(t, prog, 2, k.Arrays, k.Args(n)...)
		for _, lat := range []time.Duration{0, time.Millisecond, 5 * time.Millisecond} {
			res, err := Execute(testCtx(t), prog,
				Config{NumPEs: 2, PageElems: 8, Steal: kn == "triangular", Latency: lat}, k.Args(n)...)
			if err != nil {
				t.Fatalf("%s@%v: %v", kn, lat, err)
			}
			checkAgainstSimMasked(t, res, wantVals, wantMasks)
		}
	}
}
