package cluster

// The split planner is the pure heart of adaptive repartitioning: given the
// observed per-iteration instruction costs of one completed sweep of a
// Range-Filtered loop, compute new per-PE index bounds for the next sweep.
// It is deliberately a plain function of its inputs — no worker or driver
// state — so the rebind decision is reproducible and table-testable.

// planCuts computes npes-1 interior cut points splitting the iteration
// range [lo, lo+len(costs)-1] into npes contiguous, possibly empty,
// sub-ranges of near-equal total cost. costs[k] is the observed cost of
// iteration lo+k (missing observations are zero). cuts[p] is the last
// iteration assigned to PE p; PE p executes (cuts[p-1], cuts[p]], with
// cuts[-1] = -inf and cuts[npes-1] = +inf implied, so any iteration range —
// even one that later grows or shifts — is still partitioned exactly.
//
// prev is the currently installed cut vector (nil when the loop still runs
// on its static split). The new cuts are adopted only when they improve the
// predicted makespan — the maximum per-PE cost sum under the observed
// profile — by more than the hysteresis fraction; otherwise prev is
// returned unchanged (changed=false), so near-balanced splits do not churn
// rebound broadcasts. A static split is modelled as the uniform index split
// of the observed range, which is what every Range-Filter form degenerates
// to when ownership is spread evenly.
func planCuts(lo int64, costs []int64, npes int, prev []int64, hysteresis float64) (cuts []int64, changed bool) {
	if npes <= 1 || len(costs) == 0 {
		return prev, false
	}

	var total int64
	for _, c := range costs {
		total += c
	}
	if total <= 0 {
		return prev, false
	}

	// Balanced-prefix split: cut p is placed at the smallest iteration
	// whose cost prefix reaches the ideal share (p+1)·total/npes. The
	// greedy prefix walk is optimal to within one iteration's cost, which
	// is the finest granularity any contiguous split can achieve.
	cuts = make([]int64, npes-1)
	var prefix int64
	k := 0
	for p := 0; p < npes-1; p++ {
		target := total * int64(p+1) / int64(npes)
		for k < len(costs) && prefix < target {
			prefix += costs[k]
			k++
		}
		cuts[p] = lo + int64(k) - 1
	}

	baseline := prev
	if baseline == nil {
		baseline = uniformCuts(lo, int64(len(costs)), npes)
	}
	oldSpan := predictedMakespan(lo, costs, baseline)
	newSpan := predictedMakespan(lo, costs, cuts)
	if float64(newSpan) >= float64(oldSpan)*(1-hysteresis) {
		return prev, false
	}
	return cuts, true
}

// uniformCuts is the static uniform block split of [lo, lo+n-1] over npes —
// the same arithmetic the UNIFLO/UNIFHI instructions evaluate.
func uniformCuts(lo, n int64, npes int) []int64 {
	cuts := make([]int64, npes-1)
	for p := 0; p < npes-1; p++ {
		cuts[p] = lo + n*int64(p+1)/int64(npes) - 1
	}
	return cuts
}

// predictedMakespan evaluates a cut vector against an observed cost
// profile: the maximum total cost any PE would carry if the profile
// repeated unchanged.
func predictedMakespan(lo int64, costs []int64, cuts []int64) int64 {
	var worst, acc int64
	p := 0
	for k, c := range costs {
		iter := lo + int64(k)
		for p < len(cuts) && iter > cuts[p] {
			if acc > worst {
				worst = acc
			}
			acc = 0
			p++
		}
		acc += c
	}
	if acc > worst {
		worst = acc
	}
	return worst
}
