package cluster

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/isa"
	"repro/internal/rtcfg"
)

// TestStallDumpIncludesTraceTails: when a traced run stalls on the probe
// round deadline, the error must carry each reachable PE's last trace
// events — the stall diagnostic a flight recorder exists for.
func TestStallDumpIncludesTraceTails(t *testing.T) {
	prog := taskProgram()
	cfg := Config{NumPEs: 2, ProbeInterval: time.Millisecond,
		RoundTimeout: 150 * time.Millisecond, Trace: true}
	if err := cfg.fill(); err != nil {
		t.Fatal(err)
	}
	cfg.RoundTimeout = 150 * time.Millisecond

	eps := newChanTransport(cfg.NumPEs, 0)
	geo := rtcfg.Geometry{PEs: cfg.NumPEs, PageElems: cfg.PageElems, DistThreshold: cfg.DistThreshold}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Only PE 0 runs; PE 1 never serves its mailbox (a dead worker). PE 0
	// can still answer the trace gather, so its tail must appear.
	var wg sync.WaitGroup
	w0 := newWorker(0, cfg.NumPEs, geo, prog, eps[0], cfg.workerOpts())
	wg.Add(1)
	go func() {
		defer wg.Done()
		w0.run(ctx)
	}()

	_, err := drive(ctx, eps[cfg.NumPEs], cfg, prog.Entry(), []isa.Value{isa.SPRef(0), isa.Float(0)}, nil)
	if err == nil {
		t.Fatal("drive returned no error although PE 1 never acked")
	}
	for _, want := range []string{"stalled", "pe 0 trace tail", "pe 1 trace tail", "(no trace events)"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("stall error missing %q:\n%v", want, err)
		}
	}
	cancel()
	wg.Wait()
	for _, ep := range eps {
		ep.Close()
	}
}

// TestMetricsTextPublishes: after a run the process-wide /metrics text must
// list every pods_* counter, with instruction and ack totals moving.
func TestMetricsTextPublishes(t *testing.T) {
	prog := compile(t, "m.id", `
func main(n: int) {
	A = array(n);
	for i = 1 to n { A[i] = i * 2; }
}`)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := Execute(ctx, prog, Config{NumPEs: 2}, isa.Int(16)); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := MetricsText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, name := range []string{"pods_instrs_total", "pods_msgs_total", "pods_acks_total",
		"pods_steals_total", "pods_cache_hits_total", "pods_cache_misses_total",
		"pods_evictions_total", "pods_replayed_total"} {
		if !strings.Contains(text, name+" ") {
			t.Errorf("/metrics text missing %s:\n%s", name, text)
		}
	}
	for _, want := range []string{"pods_instrs_total 0\n", "pods_acks_total 0\n"} {
		if strings.Contains(text, want) {
			t.Errorf("counter stuck at zero after a run: %q in\n%s", want, text)
		}
	}
}
