package cluster

import (
	"testing"

	"repro/internal/istructure"
	"repro/internal/kernels"
	"repro/internal/rtcfg"
)

// Tests for the bounded page cache (Config.CachePages): the cap is a hard
// bound on resident cached pages at every moment of a run, eviction is
// invisible in the results (single assignment: a refetch returns the same
// immutable data), and batched locality-aware steal grants reduce the
// post-steal page fetches that location-blind single grants pay.

// pumpedRun executes a kernel on hand-pumped workers — a deterministic,
// adversarially fair schedule — and returns the workers and gathered
// arrays at quiescence. perRound, when non-nil, observes the workers after
// every pumping round (invariant checks mid-run).
func pumpedRun(t *testing.T, k kernels.Kernel, n, pes int, steal, stealOne bool,
	cachePages int, perRound func([]*worker)) ([]*worker, map[int64]*gathered) {
	t.Helper()
	prog := compile(t, k.File(), k.Source)
	geo := rtcfg.Geometry{PEs: pes, PageElems: 8, DistThreshold: 16}
	if err := geo.Fill(pes); err != nil {
		t.Fatal(err)
	}
	eps := newChanTransport(pes, 0)
	ws := make([]*worker, pes)
	for pe := range ws {
		ws[pe] = newWorker(pe, pes, geo, prog, eps[pe], workerOpts{steal: steal, cachePages: cachePages})
		ws[pe].stealOne = stealOne
	}
	driver := eps[pes]

	arrays := make(map[int64]*gathered)
	drainDriver := func() {
		for {
			m, ok := driver.TryRecv()
			if !ok {
				return
			}
			switch m.Kind {
			case KAlloc:
				dims := make([]int, len(m.Dims))
				for i, d := range m.Dims {
					dims[i] = int(d)
				}
				h, err := istructure.NewHeader(m.Arr, m.Name, dims, geo.PageElems, pes, int(m.Origin), m.Dist)
				if err != nil {
					t.Fatal(err)
				}
				arrays[m.Arr] = &gathered{h: h, vals: make([]float64, h.Elems()), mask: make([]bool, h.Elems())}
			case KFail:
				t.Fatalf("worker failed: %s", m.Name)
			case KDump:
				if err := arrays[m.Arr].merge(m); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	if err := driver.Send(0, &Msg{Kind: KSpawn, Tmpl: int32(prog.EntryID), Args: k.Args(n)}); err != nil {
		t.Fatal(err)
	}
	for rounds := 0; ; rounds++ {
		if rounds > 50_000_000 {
			t.Fatal("pumped run did not quiesce")
		}
		progress := stepOneRound(ws, eps)
		drainDriver()
		if perRound != nil {
			perRound(ws)
		}
		if !progress {
			break
		}
	}
	var live int64
	for _, w := range ws {
		live += int64(len(w.insts))
	}
	if live != 0 {
		t.Fatalf("%d live SPs at quiescence (deadlock)", live)
	}
	for id, g := range arrays {
		for pe := 0; pe < pes; pe++ {
			lo, hi := g.h.SegmentElems(pe)
			if lo >= hi {
				continue
			}
			if err := driver.Send(pe, &Msg{Kind: KDumpReq, Arr: id}); err != nil {
				t.Fatal(err)
			}
		}
	}
	for stepOneRound(ws, eps) {
		drainDriver()
	}
	drainDriver()
	return ws, arrays
}

// checkGathered compares pumped-run arrays bit-for-bit against the
// simulator reference.
func checkGathered(t *testing.T, k kernels.Kernel, arrays map[int64]*gathered,
	wantVals map[string][]float64, wantMasks map[string][]bool) {
	t.Helper()
	for name, ref := range wantVals {
		var g *gathered
		for _, cand := range arrays {
			if cand.h.Name == name {
				g = cand
			}
		}
		if g == nil {
			t.Fatalf("array %q never allocated", name)
		}
		if len(g.vals) != len(ref) {
			t.Fatalf("%s: %d elements, want %d", name, len(g.vals), len(ref))
		}
		for i := range ref {
			if g.mask[i] != wantMasks[name][i] {
				t.Fatalf("%s[%d]: written=%v, want %v", name, i, g.mask[i], wantMasks[name][i])
			}
			if g.mask[i] && g.vals[i] != ref[i] {
				t.Fatalf("%s[%d] = %v, want %v (eviction broke determinacy)", name, i, g.vals[i], ref[i])
			}
		}
	}
}

// TestCacheCapHardBoundDuringRun asserts the acceptance criterion
// directly: with CachePages set, no shard's resident cached page count
// ever exceeds the cap at any observable point of the run — checked after
// every pumping round of a remote-read-heavy kernel, not just at the end.
func TestCacheCapHardBoundDuringRun(t *testing.T) {
	const cap = 2
	k, _ := kernels.ByName("mirror")
	wantVals, wantMasks := simArraysMasked(t, compile(t, k.File(), k.Source), 4, k.Arrays, k.Args(12)...)
	ws, arrays := pumpedRun(t, k, 12, 4, false, false, cap, func(ws []*worker) {
		for _, w := range ws {
			if got := w.shard.CachedPages(); got > cap {
				t.Fatalf("pe %d: %d resident cached pages, cap %d", w.pe, got, cap)
			}
		}
	})
	var evictions, hits int64
	for _, w := range ws {
		evictions += w.shard.Evictions
		hits += w.shard.CacheHits
	}
	if evictions == 0 {
		t.Fatal("mirror at cap 2 evicted nothing — the bound was never exercised")
	}
	t.Logf("mirror@4PE cap=%d: %d evictions, %d hits", cap, evictions, hits)
	checkGathered(t, k, arrays, wantVals, wantMasks)
}

// TestEvictionKeepsKernelsDeterminate runs the kernel agreement matrix
// with a tight page-cache cap — evictions and refetches mid-run must not
// be observable — alone and combined with stealing and adaptation.
func TestEvictionKeepsKernelsDeterminate(t *testing.T) {
	const n = 8
	for _, k := range kernels.All() {
		t.Run(k.Name, func(t *testing.T) {
			prog := compile(t, k.File(), k.Source)
			wantVals, wantMasks := simArraysMasked(t, prog, 4, k.Arrays, k.Args(n)...)
			for _, pes := range []int{1, 2, 4, 8} {
				res, err := Execute(testCtx(t), prog,
					Config{NumPEs: pes, PageElems: 8, CachePages: 2}, k.Args(n)...)
				if err != nil {
					t.Fatalf("%d PEs: %v", pes, err)
				}
				checkAgainstSimMasked(t, res, wantVals, wantMasks)

				both, err := Execute(testCtx(t), prog,
					Config{NumPEs: pes, PageElems: 8, CachePages: 2, Steal: true, Adapt: true},
					k.Args(n)...)
				if err != nil {
					t.Fatalf("%d PEs (steal+adapt): %v", pes, err)
				}
				checkAgainstSimMasked(t, both, wantVals, wantMasks)
			}
		})
	}
}

// TestBatchedLocalityStealReducesPostStealMisses is the A/B acceptance
// check for the grant policy, on a deterministic hand-pumped schedule: the
// triangular kernel with reads (triread — plain triangular never reads an
// array, so its post-steal miss count is vacuously zero) at 8 PEs must pay
// fewer page fetches under batched locality-aware grants than under the
// PR 2 policy (one location-blind SP per grant). Two mechanisms buy the
// reduction: a batch is adjacent rows of one victim's block, whose operand
// rows share straddling pages (n is deliberately not page-aligned), and
// whole-batch migration means fewer scattered grant events. The pumped
// schedule is deterministic, so the counts are exactly reproducible.
func TestBatchedLocalityStealReducesPostStealMisses(t *testing.T) {
	const n, pes = 26, 8
	k, ok := kernels.ByName("triread")
	if !ok {
		t.Fatal("triread kernel missing")
	}
	run := func(single bool) (misses, steals int64) {
		ws, _ := pumpedRun(t, k, n, pes, true, single, 0, nil)
		for _, w := range ws {
			misses += w.shard.CacheMisses
			steals += w.steals
		}
		return misses, steals
	}
	singleMisses, singleSteals := run(true)
	batchMisses, batchSteals := run(false)
	t.Logf("triread@%dPE: single-grant misses=%d steals=%d, batched misses=%d steals=%d",
		pes, singleMisses, singleSteals, batchMisses, batchSteals)
	if singleSteals == 0 || batchSteals == 0 {
		t.Fatalf("steals single=%d batched=%d — the comparison is vacuous", singleSteals, batchSteals)
	}
	if batchMisses >= singleMisses {
		t.Errorf("batched locality-aware grants paid %d page fetches, single-grant stealing %d — no reduction",
			batchMisses, singleMisses)
	}
}

// TestForceCachePagesEnvOverride: the PODS_FORCE_CACHE_PAGES override caps
// runs that leave CachePages at its default and never overrides an
// explicit cap.
func TestForceCachePagesEnvOverride(t *testing.T) {
	t.Setenv("PODS_FORCE_CACHE_PAGES", "3")
	cfg := Config{NumPEs: 2}
	if err := cfg.fill(); err != nil {
		t.Fatal(err)
	}
	if cfg.CachePages != 3 {
		t.Fatalf("CachePages = %d, want 3 from the environment", cfg.CachePages)
	}
	cfg = Config{NumPEs: 2, CachePages: 7}
	if err := cfg.fill(); err != nil {
		t.Fatal(err)
	}
	if cfg.CachePages != 7 {
		t.Fatalf("CachePages = %d, explicit cap must win over the environment", cfg.CachePages)
	}
	t.Setenv("PODS_FORCE_CACHE_PAGES", "")
	cfg = Config{NumPEs: 2, CachePages: -1}
	if err := cfg.fill(); err == nil {
		t.Fatal("negative CachePages accepted")
	}
}
