package cluster

import (
	"context"
	"fmt"
	"math"
	"net"
	"sync"

	"repro/internal/isa"
	"repro/internal/rtcfg"
)

// This file turns the one-shot cluster runtime into a job service. A Fleet
// owns the transport (in-process mailboxes or TCP connections) and the
// worker hosts on the far side; jobs are submitted to the running fleet,
// execute concurrently, and tear down individually without disturbing each
// other.
//
// The key to coexistence is that nothing per-run is shared: each submitted
// job gets its own worker instance per PE (istructure shard, run queue,
// recovery log, trace ring) and its own driver loop, and every frame is
// stamped with the job ID so the single physical wire multiplexes many
// logical clusters. Job IDs also ride inside packed SP/array/sweep IDs
// (bits 48+), so two jobs' object namespaces can never collide even in
// shared diagnostics.

// hostStashMax bounds the total frames a fleet host will hold for jobs it
// has not seen a KJobStart for yet (peer traffic can race the start frame,
// which travels on a different sender stream). Beyond the bound frames are
// dropped; recovery-armed jobs replay, others would have failed anyway.
const hostStashMax = 1 << 16

// jobEndpoint is a job's private view of the fleet wire: sends stamp the
// job ID and go out on the shared transport endpoint (which stamps From);
// receives drain the job's own mailbox, fed by the dispatcher (driver
// side) or the fleet host (worker side).
type jobEndpoint struct {
	job int32
	out Endpoint
	in  *mailbox
}

func (e *jobEndpoint) Send(to int, m *Msg) error {
	m.Job = e.job
	return e.out.Send(to, m)
}

func (e *jobEndpoint) Recv(ctx context.Context) (*Msg, error) {
	return e.in.recv(ctx)
}

func (e *jobEndpoint) TryRecv() (*Msg, bool) {
	m, ok, _, _ := e.in.pop()
	return m, ok
}

func (e *jobEndpoint) Close() error {
	e.in.close()
	return nil
}

// Repoint forwards peer-address updates to the underlying transport (TCP
// workers re-dial a re-homed peer; the channel transport has nothing to do).
func (e *jobEndpoint) Repoint(peers []string) {
	if rp, ok := e.out.(interface{ Repoint([]string) }); ok {
		rp.Repoint(peers)
	}
}

// fleetHost is the worker-side demultiplexer: one per PE, single-threaded,
// owning the PE's transport endpoint. It routes each incoming frame to the
// addressed job's worker instance, creates instances on KJobStart, and
// tears them down on KJobEnd. Frames for a job that has not started here
// yet are stashed and replayed at start (FIFO guarantees a job's *driver*
// frames follow its KJobStart, but peer frames ride other streams).
type fleetHost struct {
	pe, n       int
	ep          Endpoint
	resolveProg func(job int32, wire []byte) (*isa.Program, error)

	jobs    map[int32]*mailbox
	done    map[int32]struct{}
	stash   map[int32][]*Msg
	stashed int
	wg      sync.WaitGroup
}

func newFleetHost(pe, n int, ep Endpoint, resolveProg func(int32, []byte) (*isa.Program, error)) *fleetHost {
	return &fleetHost{
		pe: pe, n: n, ep: ep,
		resolveProg: resolveProg,
		jobs:        make(map[int32]*mailbox),
		done:        make(map[int32]struct{}),
		stash:       make(map[int32][]*Msg),
	}
}

// serve runs the host until the fleet stops (fleet-level KStop), the
// endpoint dies, or the context ends. early frames (stashed by a TCP
// accept loop before KInit) are replayed first.
func (h *fleetHost) serve(ctx context.Context, early []*Msg) {
	defer func() {
		for _, box := range h.jobs {
			box.close()
		}
		h.wg.Wait()
	}()
	for _, m := range early {
		if !h.handle(ctx, m) {
			return
		}
	}
	for {
		m, err := h.ep.Recv(ctx)
		if err != nil {
			return
		}
		if !h.handle(ctx, m) {
			return
		}
	}
}

// handle routes one frame; false means the fleet is shutting down.
func (h *fleetHost) handle(ctx context.Context, m *Msg) bool {
	switch {
	case m.Kind == KJobStart:
		h.startJob(ctx, m)
	case m.Kind == KJobEnd:
		h.endJob(m.Job)
	case m.Job == 0:
		// Fleet-level traffic. KStop shuts the host down; a transport
		// decode failure (KFail minted by the pump, unattributable to a
		// job) is fanned out to every live job so none hangs on a
		// half-dead wire. Anything else fleet-level is dropped.
		switch m.Kind {
		case KStop:
			return false
		case KFail:
			for _, box := range h.jobs {
				c := *m
				box.put(&c)
			}
		}
	default:
		if _, ended := h.done[m.Job]; ended {
			return true // late frame for a torn-down job
		}
		if box := h.jobs[m.Job]; box != nil {
			box.put(m)
			return true
		}
		if h.stashed >= hostStashMax {
			return true // pathological: shed rather than grow unboundedly
		}
		h.stash[m.Job] = append(h.stash[m.Job], m)
		h.stashed++
	}
	return true
}

// startJob instantiates a worker for the job described by m. A replacement
// start for a job already running here (driver-side respawn after a stall)
// retires the old instance first: its frames carry the old incarnation and
// are fenced by every receiver.
func (h *fleetHost) startJob(ctx context.Context, m *Msg) {
	job := m.Job
	if old := h.jobs[job]; old != nil {
		old.close()
		delete(h.jobs, job)
	}
	delete(h.done, job)

	prog, err := h.resolveProg(job, m.Prog)
	if err != nil {
		h.done[job] = struct{}{}
		h.stashed -= len(h.stash[job])
		delete(h.stash, job)
		// Inc 1<<30 outruns any job-level incarnation fence so the
		// driver's recovery filter cannot swallow the failure.
		_ = h.ep.Send(h.n, &Msg{
			Kind: KFail, Job: job, Inc: 1 << 30,
			Name: fmt.Sprintf("pe %d: job start: %v", h.pe, err),
		})
		return
	}

	geo := rtcfg.Geometry{PEs: h.n, PageElems: int(m.PageElems), DistThreshold: int(m.DistThreshold)}
	box := newMailbox()
	jep := &jobEndpoint{job: job, out: h.ep, in: box}
	w := newWorker(h.pe, h.n, geo, prog, jep, workerOpts{
		steal:       m.Steal,
		adapt:       m.Adapt,
		cachePages:  int(m.CachePages),
		trace:       m.Trace,
		traceCap:    int(m.TraceCap),
		traceSample: int(m.TraceSample),
		heat:        m.Heat,
	})
	w.job = job
	if m.Recover {
		var inc int32
		if h.pe < len(m.Incs) {
			inc = m.Incs[h.pe]
		}
		w.enableRecovery(inc, m.Epoch, m.Incs)
	}

	h.jobs[job] = box
	for _, sm := range h.stash[job] {
		box.put(sm)
		h.stashed--
	}
	delete(h.stash, job)

	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		w.run(ctx)
	}()
}

// endJob tears a job's instance down: the worker drains its queue, sees
// the KStop, and exits; the shard and logs go with it. Later frames for
// the job are dropped via the done set.
func (h *fleetHost) endJob(job int32) {
	if box := h.jobs[job]; box != nil {
		box.put(&Msg{Kind: KStop})
		box.close()
		delete(h.jobs, job)
	}
	h.done[job] = struct{}{}
	h.stashed -= len(h.stash[job])
	delete(h.stash, job)
}

// Fleet is a persistent cluster: NumPEs workers stay up across jobs, over
// the in-process channel transport (Config.Workers empty) or TCP. Submit
// runs one program on the fleet; any number of Submits may be in flight
// concurrently, bounded by Config.MaxJobs.
type Fleet struct {
	cfg Config
	n   int
	ep  Endpoint

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu          sync.Mutex
	jobs        map[int32]*fleetJob
	progs       map[int32]*isa.Program // chan-mode program registry
	nextJob     int32
	closed      bool
	hostInc     []int32  // per-PE host generation (TCP re-homing fence)
	deadPending []bool   // host died; not yet re-homed
	peers       []string // current TCP worker addresses
	sparesLeft  []string

	cnet *chanTransport
	td   *tcpDriver
}

// fleetJob is the driver-side record of a live job: its inbox (fed by the
// dispatcher) and what Submit needs to restart workers during recovery.
type fleetJob struct {
	box  *mailbox
	cfg  Config
	prog []byte // serialized program (TCP mode; nil on the channel transport)
}

// OpenFleet brings a persistent fleet up. Geometry-free: per-job knobs
// (page size, stealing, budgets, ...) are chosen at Submit time; the fleet
// config fixes the transport, PE count, fault injection, and the
// concurrent-job cap.
func OpenFleet(ctx context.Context, cfg Config) (*Fleet, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	f := &Fleet{
		cfg:   cfg,
		n:     cfg.NumPEs,
		jobs:  make(map[int32]*fleetJob),
		progs: make(map[int32]*isa.Program),
	}
	f.ctx, f.cancel = context.WithCancel(ctx)
	f.hostInc = make([]int32, f.n)
	f.deadPending = make([]bool, f.n)

	if len(cfg.Workers) > 0 {
		if err := f.dialTCP(ctx, cfg); err != nil {
			f.cancel()
			return nil, err
		}
	} else {
		killPE := -1
		if cfg.KillAfter > 0 && cfg.KillPE >= 0 && cfg.KillPE < f.n {
			killPE = cfg.KillPE
		}
		f.cnet = newChanNet(f.n, cfg.Latency, killPE, cfg.KillAfter)
		for pe := 0; pe < f.n; pe++ {
			h := newFleetHost(pe, f.n, f.cnet.endpoint(pe), f.lookupProg)
			f.wg.Add(1)
			go func() {
				defer f.wg.Done()
				h.serve(f.ctx, nil)
			}()
		}
		f.ep = f.cnet.endpoint(f.n)
	}

	f.wg.Add(1)
	go f.dispatch()
	return f, nil
}

// dialTCP connects to every worker address, announces the fleet geometry
// with a fleet-level KInit, and starts a liveness pump per connection.
func (f *Fleet) dialTCP(ctx context.Context, cfg Config) error {
	d := &tcpDriver{self: f.n, box: newMailbox()}
	var dialer net.Dialer
	for i, addr := range cfg.Workers {
		conn, err := dialer.DialContext(ctx, "tcp", addr)
		if err != nil {
			d.Close()
			return fmt.Errorf("cluster: dialing worker %d at %s: %w", i, addr, err)
		}
		d.conns = append(d.conns, conn)
		if err := writeFrame(conn, fleetInitMsg(i, cfg.Workers)); err != nil {
			d.Close()
			return fmt.Errorf("cluster: init worker %d at %s: %w", i, addr, err)
		}
		go pumpWorkerConn(d, i, 0, conn)
	}
	f.td = d
	f.ep = d
	f.peers = append([]string(nil), cfg.Workers...)
	f.sparesLeft = append([]string(nil), cfg.Spares...)
	return nil
}

// fleetInitMsg is the fleet-level KInit a TCP worker receives once per
// driver session: identity and peer table only — programs and knobs arrive
// per job in KJobStart frames.
func fleetInitMsg(pe int, peers []string) *Msg {
	return &Msg{
		Kind:   KInit,
		From:   int32(len(peers)),
		PE:     int32(pe),
		NumPEs: int32(len(peers)),
		Peers:  append([]string(nil), peers...),
	}
}

// lookupProg resolves a job's program on the channel transport (shared
// memory: no serialization round-trip) or decodes the wire bytes on TCP.
func (f *Fleet) lookupProg(job int32, wire []byte) (*isa.Program, error) {
	if len(wire) > 0 {
		return isa.UnmarshalPods(wire)
	}
	f.mu.Lock()
	p := f.progs[job]
	f.mu.Unlock()
	if p == nil {
		return nil, fmt.Errorf("no program registered for job %d", job)
	}
	return p, nil
}

// dispatch is the driver-side demultiplexer: it drains the shared
// endpoint and routes each frame to the addressed job's inbox. Host-death
// notices (KDown, always fleet-level) are fanned out to every live job.
func (f *Fleet) dispatch() {
	defer f.wg.Done()
	for {
		m, err := f.ep.Recv(f.ctx)
		if err != nil {
			f.mu.Lock()
			for _, fj := range f.jobs {
				fj.box.close()
			}
			f.mu.Unlock()
			return
		}
		if m.Kind == KDown {
			f.noteDown(m)
			continue
		}
		if m.Job == 0 {
			if m.Kind == KFail {
				f.mu.Lock()
				for _, fj := range f.jobs {
					c := *m
					fj.box.put(&c)
				}
				f.mu.Unlock()
			}
			continue
		}
		f.mu.Lock()
		fj := f.jobs[m.Job]
		f.mu.Unlock()
		if fj != nil {
			fj.box.put(m)
		}
	}
}

// noteDown records a host death and tells every live job. The per-job
// copies carry Inc = MaxInt32: job-level incarnation fences (which drop
// frames from incarnations older than the job's view) must never swallow
// a death notice, whose authority is the transport, not any incarnation.
func (f *Fleet) noteDown(m *Msg) {
	pe := int(m.PE)
	f.mu.Lock()
	defer f.mu.Unlock()
	if pe < 0 || pe >= f.n || m.Inc < f.hostInc[pe] {
		return // stale notice from an already-re-homed host
	}
	f.deadPending[pe] = true
	for _, fj := range f.jobs {
		fj.box.put(&Msg{Kind: KDown, From: m.From, PE: m.PE, Inc: math.MaxInt32})
	}
}

// jobStartMsg builds one PE's KJobStart: the job's full knob set, budget,
// recovery state, and (on TCP) the serialized program. incs must be a
// fresh slice per call — the receiving worker retains and mutates it.
func jobStartMsg(cfg *Config, prog []byte, epoch int32, incs []int32) *Msg {
	return &Msg{
		Kind:          KJobStart,
		PageElems:     int32(cfg.PageElems),
		DistThreshold: int32(cfg.DistThreshold),
		CachePages:    int32(cfg.CachePages),
		Steal:         cfg.Steal,
		Adapt:         cfg.Adapt,
		Recover:       cfg.Recover,
		Trace:         cfg.Trace,
		TraceCap:      int32(cfg.TraceCap),
		TraceSample:   int32(cfg.TraceSample),
		Heat:          cfg.Heat,
		MaxInstrs:     cfg.MaxInstrs,
		MaxElems:      cfg.MaxElems,
		Epoch:         epoch,
		Incs:          incs,
		Prog:          prog,
	}
}

// allocJobIDLocked mints a job ID. IDs whose low 15 bits are zero are
// skipped: packed object IDs carry only job&0x7fff, and all-zero would be
// indistinguishable from pre-fleet (job-less) IDs in diagnostics.
func (f *Fleet) allocJobIDLocked() int32 {
	for {
		f.nextJob++
		if f.nextJob <= 0 {
			f.nextJob = 1
		}
		id := f.nextJob
		if id&jobMask == 0 {
			continue
		}
		if _, live := f.jobs[id]; live {
			continue
		}
		return id
	}
}

// Submit runs one program on the fleet and waits for its result. Safe for
// concurrent use; each call is an isolated job. cfg supplies the job's
// scheduling knobs, geometry, and budgets — transport fields (Workers,
// Spares, NumPEs, fault injection) come from the fleet.
func (f *Fleet) Submit(ctx context.Context, prog *isa.Program, cfg Config, args ...isa.Value) (*Result, error) {
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	entry := prog.Entry()
	want := entry.NParams
	if entry.HasResult {
		want -= 2
	}
	if len(args) != want {
		return nil, fmt.Errorf("cluster: entry %q wants %d args, got %d", entry.Name, want, len(args))
	}
	if entry.HasResult {
		args = append(append([]isa.Value{}, args...), isa.SPRef(0), isa.Int(0))
	}

	// The job inherits the fleet's transport shape; everything else is per
	// job. Workers is snapshotted so recovery sees the *current* peer
	// table (a re-homed PE lives at its spare's address).
	f.mu.Lock()
	curPeers := append([]string(nil), f.peers...)
	f.mu.Unlock()
	cfg.NumPEs = f.n
	cfg.Workers = curPeers
	cfg.Spares = nil
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	// Fault injection is a fleet-level property (armed by OpenFleet); the
	// fields are cleared only after fill so its env-forcing check still sees
	// the caller's intent — clearing first would make every job config look
	// uninjected and force Recover on jobs that deliberately left it off.
	cfg.KillPE, cfg.KillAfter = 0, 0

	var progBytes []byte
	if f.td != nil {
		b, err := isa.MarshalPods(prog)
		if err != nil {
			return nil, fmt.Errorf("cluster: marshal program: %w", err)
		}
		progBytes = b
	}

	// Admission: a full fleet rejects rather than queues — callers see
	// the rejection immediately and can back off or resubmit.
	maxJobs := f.cfg.MaxJobs
	if maxJobs <= 0 {
		maxJobs = DefaultMaxJobs
	}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, fmt.Errorf("cluster: fleet is closed")
	}
	if len(f.jobs) >= maxJobs {
		f.mu.Unlock()
		mJobsRejected.Add(1)
		return nil, fmt.Errorf("cluster: job rejected: %d jobs already running (Config.MaxJobs)", maxJobs)
	}
	id := f.allocJobIDLocked()
	fj := &fleetJob{box: newMailbox(), cfg: cfg, prog: progBytes}
	f.jobs[id] = fj
	if f.td == nil {
		f.progs[id] = prog
	}
	f.mu.Unlock()
	mJobsTotal.Add(1)
	mJobsActive.Add(1)
	defer func() {
		f.mu.Lock()
		delete(f.jobs, id)
		delete(f.progs, id)
		f.mu.Unlock()
		fj.box.close()
		mJobsActive.Add(-1)
	}()

	jep := &jobEndpoint{job: id, out: f.ep, in: fj.box}
	var startErr error
	for pe := 0; pe < f.n; pe++ {
		// Fresh Msg and incs per PE: the receiver owns them.
		if err := jep.Send(pe, jobStartMsg(&cfg, progBytes, 0, nil)); err != nil {
			startErr = err
			break
		}
	}
	if startErr != nil && !cfg.Recover {
		f.endJobEverywhere(id)
		return nil, fmt.Errorf("cluster: starting job: %w", startErr)
	}
	// With recovery armed a failed start frame is just an early death:
	// the first probe round times out and the respawner takes over.

	var rsp respawner
	if cfg.Recover {
		rsp = &fleetRespawner{f: f, job: id}
	}
	res, err := drive(ctx, jep, cfg, entry, args, rsp)
	f.endJobEverywhere(id)
	return res, err
}

// endJobEverywhere tells every host to tear the job's instance down.
func (f *Fleet) endJobEverywhere(id int32) {
	for pe := 0; pe < f.n; pe++ {
		_ = f.ep.Send(pe, &Msg{Kind: KJobEnd, Job: id})
	}
}

// fleetRespawner adapts a job's recovery to the shared fleet: the first
// job to respawn onto a dead PE re-homes the host (fresh mailbox on chan,
// spare address on TCP); every job then restarts its own worker instance
// there with its bumped incarnation vector.
type fleetRespawner struct {
	f   *Fleet
	job int32
}

func (r *fleetRespawner) respawn(pe int, inc, epoch int32, incs []int32) ([]string, error) {
	return r.f.respawnJob(r.job, pe, epoch, incs)
}

func (f *Fleet) respawnJob(job int32, pe int, epoch int32, incs []int32) ([]string, error) {
	f.mu.Lock()
	fj := f.jobs[job]
	if fj == nil {
		f.mu.Unlock()
		return nil, fmt.Errorf("job %d is gone", job)
	}
	if pe < 0 || pe >= f.n {
		f.mu.Unlock()
		return nil, fmt.Errorf("respawn of unknown pe %d", pe)
	}
	if f.deadPending[pe] {
		gen := f.hostInc[pe] + 1
		f.hostInc[pe] = gen // fences the dead host's late notices first
		if err := f.rehomeLocked(pe, gen); err != nil {
			f.mu.Unlock()
			return nil, err
		}
		f.deadPending[pe] = false
	}
	var peers []string
	if f.td != nil {
		peers = append([]string(nil), f.peers...)
	}
	cfg := fj.cfg
	prog := fj.prog
	f.mu.Unlock()

	m := jobStartMsg(&cfg, prog, epoch, append([]int32(nil), incs...))
	m.Job = job
	if err := f.ep.Send(pe, m); err != nil {
		return nil, err
	}
	return peers, nil
}

// rehomeLocked replaces a dead PE's host: a fresh mailbox + host goroutine
// on the channel transport, or the next spare address on TCP (re-announced
// to the driver pump and, via the returned peer table, to survivors).
func (f *Fleet) rehomeLocked(pe int, gen int32) error {
	if f.cnet != nil {
		h := newFleetHost(pe, f.n, f.cnet.replace(pe), f.lookupProg)
		f.wg.Add(1)
		go func() {
			defer f.wg.Done()
			h.serve(f.ctx, nil)
		}()
		return nil
	}
	if len(f.sparesLeft) == 0 {
		return fmt.Errorf("no spare worker addresses left (Config.Spares)")
	}
	addr := f.sparesLeft[0]
	var dialer net.Dialer
	conn, err := dialer.DialContext(f.ctx, "tcp", addr)
	if err != nil {
		return fmt.Errorf("dialing spare %s: %w", addr, err)
	}
	f.sparesLeft = f.sparesLeft[1:]
	f.peers[pe] = addr
	if err := writeFrame(conn, fleetInitMsg(pe, f.peers)); err != nil {
		conn.Close()
		return fmt.Errorf("init spare %s: %w", addr, err)
	}
	f.td.repoint(pe, conn)
	go pumpWorkerConn(f.td, pe, gen, conn)
	return nil
}

// Close shuts the fleet down: hosts stop (fleet-level KStop), the
// transport closes, and every goroutine is joined. Jobs still in flight
// fail with closed-endpoint errors. Idempotent.
func (f *Fleet) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	f.mu.Unlock()
	for pe := 0; pe < f.n; pe++ {
		_ = f.ep.Send(pe, &Msg{Kind: KStop})
	}
	f.cancel()
	err := f.ep.Close()
	f.wg.Wait()
	return err
}
