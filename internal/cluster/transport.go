package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrClosed is returned by Endpoint.Recv after Close.
var ErrClosed = errors.New("cluster: endpoint closed")

// Endpoint is one party on a cluster transport: worker PEs 0..N-1 plus the
// driver at ID N. Sends are asynchronous, reliable, and FIFO per
// (sender, receiver) pair — the ordering contract the protocol relies on
// (e.g. an alloc broadcast reaches a PE before any spawn the allocator
// sends it afterwards). Recv returns messages in arrival order.
//
// A sent Msg is owned by the receiver: the sender must not retain or
// mutate it (or any slice it references) after Send returns.
type Endpoint interface {
	// Send enqueues m for endpoint `to` and returns without waiting for
	// delivery.
	Send(to int, m *Msg) error

	// Recv blocks until a message arrives, the context is done, or the
	// endpoint is closed.
	Recv(ctx context.Context) (*Msg, error)

	// TryRecv returns the next message if one is already queued.
	TryRecv() (*Msg, bool)

	// Close releases the endpoint. Pending and subsequent Recvs fail with
	// ErrClosed once the queue drains.
	Close() error
}

// mailbox is an unbounded FIFO message queue. Unboundedness is load-bearing:
// worker loops both send and receive, so any bounded queue could deadlock on
// cyclic token traffic (A blocked sending to B while B is blocked sending to
// A). Real message-passing machines solve this with flow control; we solve
// it with memory.
//
// A mailbox can also inject transport latency: with delay > 0 every message
// is stamped with a due time on put and only becomes receivable once it has
// "been on the wire" that long. Because the delay is one constant, due times
// are monotone in queue order, so delivery order — and with it the per-pair
// FIFO contract — is exactly what it would be with zero latency.
type mailbox struct {
	mu     sync.Mutex
	q      []mboxEntry
	head   int
	notify chan struct{} // capacity 1: a "queue became non-empty" latch
	closed bool
	delay  time.Duration // injected per-hop latency (0 = immediate)
}

// mboxEntry is one queued message plus its delivery due time (zero when the
// mailbox has no injected latency).
type mboxEntry struct {
	m   *Msg
	due time.Time
}

func newMailbox() *mailbox {
	return &mailbox{notify: make(chan struct{}, 1)}
}

func newDelayMailbox(delay time.Duration) *mailbox {
	b := newMailbox()
	b.delay = delay
	return b
}

func (b *mailbox) put(m *Msg) {
	e := mboxEntry{m: m}
	if b.delay > 0 {
		e.due = time.Now().Add(b.delay)
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.q = append(b.q, e)
	b.mu.Unlock()
	select {
	case b.notify <- struct{}{}:
	default:
	}
}

// pop returns the next due message. wait is non-zero when the head message
// exists but its injected latency has not elapsed yet.
func (b *mailbox) pop() (m *Msg, ok bool, wait time.Duration, closed bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.head < len(b.q) {
		e := b.q[b.head]
		if !e.due.IsZero() {
			if w := time.Until(e.due); w > 0 {
				return nil, false, w, b.closed
			}
		}
		b.q[b.head] = mboxEntry{}
		b.head++
		if b.head == len(b.q) {
			b.q = b.q[:0]
			b.head = 0
		}
		return e.m, true, 0, b.closed
	}
	return nil, false, 0, b.closed
}

func (b *mailbox) recv(ctx context.Context) (*Msg, error) {
	for {
		m, ok, wait, closed := b.pop()
		if ok {
			return m, nil
		}
		if closed && wait == 0 {
			// Truly empty and closed; in-flight (undue) messages still
			// drain before ErrClosed.
			return nil, ErrClosed
		}
		if wait > 0 {
			t := time.NewTimer(wait)
			select {
			case <-b.notify:
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return nil, ctx.Err()
			}
			t.Stop()
			continue
		}
		select {
		case <-b.notify:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

func (b *mailbox) close() {
	b.mu.Lock()
	b.closed = true
	b.mu.Unlock()
	select {
	case b.notify <- struct{}{}:
	default:
	}
}

// chanTransport is the in-process transport: one mailbox per endpoint,
// message pointers handed over directly. There is no shared program state —
// the only thing workers share is the wire.
type chanTransport struct {
	boxes []*mailbox
}

// chanEndpoint is one endpoint of a chanTransport.
type chanEndpoint struct {
	net  *chanTransport
	self int
}

// newChanTransport builds endpoints for n workers plus the driver (index
// n). latency, when non-zero, is injected on every hop: a sent message only
// becomes receivable after that delay.
func newChanTransport(n int, latency time.Duration) []Endpoint {
	t := &chanTransport{boxes: make([]*mailbox, n+1)}
	eps := make([]Endpoint, n+1)
	for i := range t.boxes {
		t.boxes[i] = newDelayMailbox(latency)
		eps[i] = &chanEndpoint{net: t, self: i}
	}
	return eps
}

func (e *chanEndpoint) Send(to int, m *Msg) error {
	if to < 0 || to >= len(e.net.boxes) {
		return fmt.Errorf("cluster: send to unknown endpoint %d", to)
	}
	m.From = int32(e.self)
	e.net.boxes[to].put(m)
	return nil
}

func (e *chanEndpoint) Recv(ctx context.Context) (*Msg, error) {
	return e.net.boxes[e.self].recv(ctx)
}

func (e *chanEndpoint) TryRecv() (*Msg, bool) {
	m, ok, _, _ := e.net.boxes[e.self].pop()
	return m, ok
}

func (e *chanEndpoint) Close() error {
	e.net.boxes[e.self].close()
	return nil
}
