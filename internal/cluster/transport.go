package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// ErrClosed is returned by Endpoint.Recv after Close.
var ErrClosed = errors.New("cluster: endpoint closed")

// Endpoint is one party on a cluster transport: worker PEs 0..N-1 plus the
// driver at ID N. Sends are asynchronous, reliable, and FIFO per
// (sender, receiver) pair — the ordering contract the protocol relies on
// (e.g. an alloc broadcast reaches a PE before any spawn the allocator
// sends it afterwards). Recv returns messages in arrival order.
//
// A sent Msg is owned by the receiver: the sender must not retain or
// mutate it (or any slice it references) after Send returns.
type Endpoint interface {
	// Send enqueues m for endpoint `to` and returns without waiting for
	// delivery.
	Send(to int, m *Msg) error

	// Recv blocks until a message arrives, the context is done, or the
	// endpoint is closed.
	Recv(ctx context.Context) (*Msg, error)

	// TryRecv returns the next message if one is already queued.
	TryRecv() (*Msg, bool)

	// Close releases the endpoint. Pending and subsequent Recvs fail with
	// ErrClosed once the queue drains.
	Close() error
}

// mailbox is an unbounded FIFO message queue. Unboundedness is load-bearing:
// worker loops both send and receive, so any bounded queue could deadlock on
// cyclic token traffic (A blocked sending to B while B is blocked sending to
// A). Real message-passing machines solve this with flow control; we solve
// it with memory.
type mailbox struct {
	mu     sync.Mutex
	q      []*Msg
	head   int
	notify chan struct{} // capacity 1: a "queue became non-empty" latch
	closed bool
}

func newMailbox() *mailbox {
	return &mailbox{notify: make(chan struct{}, 1)}
}

func (b *mailbox) put(m *Msg) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.q = append(b.q, m)
	b.mu.Unlock()
	select {
	case b.notify <- struct{}{}:
	default:
	}
}

// pop returns (msg, ok, closed).
func (b *mailbox) pop() (*Msg, bool, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.head < len(b.q) {
		m := b.q[b.head]
		b.q[b.head] = nil
		b.head++
		if b.head == len(b.q) {
			b.q = b.q[:0]
			b.head = 0
		}
		return m, true, b.closed
	}
	return nil, false, b.closed
}

func (b *mailbox) recv(ctx context.Context) (*Msg, error) {
	for {
		if m, ok, closed := b.pop(); ok {
			return m, nil
		} else if closed {
			return nil, ErrClosed
		}
		select {
		case <-b.notify:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

func (b *mailbox) close() {
	b.mu.Lock()
	b.closed = true
	b.mu.Unlock()
	select {
	case b.notify <- struct{}{}:
	default:
	}
}

// chanTransport is the in-process transport: one mailbox per endpoint,
// message pointers handed over directly. There is no shared program state —
// the only thing workers share is the wire.
type chanTransport struct {
	boxes []*mailbox
}

// chanEndpoint is one endpoint of a chanTransport.
type chanEndpoint struct {
	net  *chanTransport
	self int
}

// newChanTransport builds endpoints for n workers plus the driver (index n).
func newChanTransport(n int) []Endpoint {
	t := &chanTransport{boxes: make([]*mailbox, n+1)}
	eps := make([]Endpoint, n+1)
	for i := range t.boxes {
		t.boxes[i] = newMailbox()
		eps[i] = &chanEndpoint{net: t, self: i}
	}
	return eps
}

func (e *chanEndpoint) Send(to int, m *Msg) error {
	if to < 0 || to >= len(e.net.boxes) {
		return fmt.Errorf("cluster: send to unknown endpoint %d", to)
	}
	m.From = int32(e.self)
	e.net.boxes[to].put(m)
	return nil
}

func (e *chanEndpoint) Recv(ctx context.Context) (*Msg, error) {
	return e.net.boxes[e.self].recv(ctx)
}

func (e *chanEndpoint) TryRecv() (*Msg, bool) {
	m, ok, _ := e.net.boxes[e.self].pop()
	return m, ok
}

func (e *chanEndpoint) Close() error {
	e.net.boxes[e.self].close()
	return nil
}
