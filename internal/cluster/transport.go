package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrClosed is returned by Endpoint.Recv after Close.
var ErrClosed = errors.New("cluster: endpoint closed")

// Endpoint is one party on a cluster transport: worker PEs 0..N-1 plus the
// driver at ID N. Sends are asynchronous, reliable, and FIFO per
// (sender, receiver) pair — the ordering contract the protocol relies on
// (e.g. an alloc broadcast reaches a PE before any spawn the allocator
// sends it afterwards). Recv returns messages in arrival order.
//
// A sent Msg is owned by the receiver: the sender must not retain or
// mutate it (or any slice it references) after Send returns.
type Endpoint interface {
	// Send enqueues m for endpoint `to` and returns without waiting for
	// delivery.
	Send(to int, m *Msg) error

	// Recv blocks until a message arrives, the context is done, or the
	// endpoint is closed.
	Recv(ctx context.Context) (*Msg, error)

	// TryRecv returns the next message if one is already queued.
	TryRecv() (*Msg, bool)

	// Close releases the endpoint. Pending and subsequent Recvs fail with
	// ErrClosed once the queue drains.
	Close() error
}

// mailbox is an unbounded FIFO message queue. Unboundedness is load-bearing:
// worker loops both send and receive, so any bounded queue could deadlock on
// cyclic token traffic (A blocked sending to B while B is blocked sending to
// A). Real message-passing machines solve this with flow control; we solve
// it with memory.
//
// A mailbox can also inject transport latency: with delay > 0 every message
// is stamped with a due time on put and only becomes receivable once it has
// "been on the wire" that long. Because the delay is one constant, due times
// are monotone in queue order, so delivery order — and with it the per-pair
// FIFO contract — is exactly what it would be with zero latency.
type mailbox struct {
	mu     sync.Mutex
	q      []mboxEntry
	head   int
	notify chan struct{} // capacity 1: a "queue became non-empty" latch
	closed bool
	delay  time.Duration // injected per-hop latency (0 = immediate)
}

// mboxEntry is one queued message plus its delivery due time (zero when the
// mailbox has no injected latency).
type mboxEntry struct {
	m   *Msg
	due time.Time
}

func newMailbox() *mailbox {
	return &mailbox{notify: make(chan struct{}, 1)}
}

func newDelayMailbox(delay time.Duration) *mailbox {
	b := newMailbox()
	b.delay = delay
	return b
}

func (b *mailbox) put(m *Msg) {
	e := mboxEntry{m: m}
	if b.delay > 0 {
		e.due = time.Now().Add(b.delay)
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.q = append(b.q, e)
	b.mu.Unlock()
	select {
	case b.notify <- struct{}{}:
	default:
	}
}

// pop returns the next due message. wait is non-zero when the head message
// exists but its injected latency has not elapsed yet.
func (b *mailbox) pop() (m *Msg, ok bool, wait time.Duration, closed bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.head < len(b.q) {
		e := b.q[b.head]
		if !e.due.IsZero() {
			if w := time.Until(e.due); w > 0 {
				return nil, false, w, b.closed
			}
		}
		b.q[b.head] = mboxEntry{}
		b.head++
		if b.head == len(b.q) {
			b.q = b.q[:0]
			b.head = 0
		}
		return e.m, true, 0, b.closed
	}
	return nil, false, 0, b.closed
}

func (b *mailbox) recv(ctx context.Context) (*Msg, error) {
	for {
		m, ok, wait, closed := b.pop()
		if ok {
			return m, nil
		}
		if closed && wait == 0 {
			// Truly empty and closed; in-flight (undue) messages still
			// drain before ErrClosed.
			return nil, ErrClosed
		}
		if wait > 0 {
			t := time.NewTimer(wait)
			select {
			case <-b.notify:
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return nil, ctx.Err()
			}
			t.Stop()
			continue
		}
		select {
		case <-b.notify:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

func (b *mailbox) close() {
	b.mu.Lock()
	b.closed = true
	b.mu.Unlock()
	select {
	case b.notify <- struct{}{}:
	default:
	}
}

// chanTransport is the in-process transport: one mailbox per endpoint,
// message pointers handed over directly. There is no shared program state —
// the only thing workers share is the wire.
//
// The transport doubles as the fault injector: with killPE/killAfter armed
// it severs PE killPE's endpoint — sends dropped, receives closed — the
// moment that PE has sent killAfter frames, and puts a KDown notice in the
// driver's mailbox, exactly the observable shape of a worker process dying
// mid-run with its socket resetting. The count advances on data frames and
// probe acks only: acks tick every round even on a PE whose work is
// entirely local, and both stop once termination is detected — steal
// polling and dump segments don't count — so the kill always lands
// mid-run, never in the gather phase where finished results would be
// unrecoverable.
//
// replace installs a fresh mailbox for a PE and returns a new endpoint
// bound to it — the respawn half of recovery. The dead endpoint keeps
// pointing at its orphaned mailbox, so a zombie worker can neither consume
// the replacement's messages nor have its own heard (senders resolve
// mailboxes at send time, under the lock).
type chanTransport struct {
	mu      sync.RWMutex
	boxes   []*mailbox
	latency time.Duration

	killPE    int   // PE to fault-inject; -1 disarmed
	killAfter int64 // worker-to-worker frames it may send first
	killSent  atomic.Int64
	killed    atomic.Bool
}

// chanEndpoint is one endpoint of a chanTransport. The receive side binds
// to the mailbox current at creation; the send side resolves the target's
// mailbox per send, so replacement takes effect for everyone at once.
// dead is atomic because a fleet host shares one endpoint across every
// job's worker goroutine: the kill can fire inside one job's send while
// another job is mid-send.
type chanEndpoint struct {
	net  *chanTransport
	self int
	box  *mailbox
	dead atomic.Bool // fault injection fired: the "machine" is off
}

// newChanNet builds the transport for n workers plus the driver (index n).
// latency, when non-zero, is injected on every hop. killPE/killAfter arm
// the fault injector (killPE -1 disarms it).
func newChanNet(n int, latency time.Duration, killPE int, killAfter int64) *chanTransport {
	t := &chanTransport{boxes: make([]*mailbox, n+1), latency: latency, killPE: killPE, killAfter: killAfter}
	for i := range t.boxes {
		t.boxes[i] = newDelayMailbox(latency)
	}
	return t
}

// endpoint returns endpoint i bound to its current mailbox.
func (t *chanTransport) endpoint(i int) Endpoint {
	return &chanEndpoint{net: t, self: i, box: t.boxes[i]}
}

// replace installs a fresh mailbox for pe — dropping whatever undelivered
// frames the dead incarnation had queued — and returns the replacement's
// endpoint (never fault-injected: the kill fires once).
func (t *chanTransport) replace(pe int) Endpoint {
	b := newDelayMailbox(t.latency)
	t.mu.Lock()
	t.boxes[pe] = b
	t.mu.Unlock()
	return &chanEndpoint{net: t, self: pe, box: b}
}

// newChanTransport builds endpoints for n workers plus the driver (index
// n) with no fault injection. latency, when non-zero, is injected on every
// hop: a sent message only becomes receivable after that delay.
func newChanTransport(n int, latency time.Duration) []Endpoint {
	t := newChanNet(n, latency, -1, 0)
	eps := make([]Endpoint, n+1)
	for i := range eps {
		eps[i] = t.endpoint(i)
	}
	return eps
}

func (e *chanEndpoint) Send(to int, m *Msg) error {
	if e.dead.Load() {
		return ErrClosed
	}
	t := e.net
	if to < 0 || to >= len(t.boxes) {
		return fmt.Errorf("cluster: send to unknown endpoint %d", to)
	}
	driver := len(t.boxes) - 1
	if e.self == t.killPE && (m.Kind.isData() || m.Kind == KAck) && !t.killed.Load() {
		if t.killSent.Add(1) > t.killAfter && t.killed.CompareAndSwap(false, true) {
			// The fault fires: this frame is lost on the wire, the endpoint
			// goes dark, and the driver hears the "connection reset".
			e.dead.Store(true)
			t.mu.RLock()
			box := t.boxes[driver]
			t.mu.RUnlock()
			box.put(&Msg{Kind: KDown, From: int32(e.self), PE: int32(e.self)})
			return ErrClosed
		}
	}
	m.From = int32(e.self)
	t.mu.RLock()
	box := t.boxes[to]
	t.mu.RUnlock()
	box.put(m)
	return nil
}

func (e *chanEndpoint) Recv(ctx context.Context) (*Msg, error) {
	if e.dead.Load() {
		return nil, ErrClosed
	}
	return e.box.recv(ctx)
}

func (e *chanEndpoint) TryRecv() (*Msg, bool) {
	if e.dead.Load() {
		return nil, false
	}
	m, ok, _, _ := e.box.pop()
	return m, ok
}

func (e *chanEndpoint) Close() error {
	e.box.close()
	return nil
}
