package cluster

import (
	"testing"
	"time"

	"repro/internal/isa"
	"repro/internal/kernels"
)

// compileKernel compiles a registry kernel through the shared pipeline.
func compileKernel(t *testing.T, name string) (*kernels.Kernel, *isa.Program) {
	t.Helper()
	k, ok := kernels.ByName(name)
	if !ok {
		t.Fatalf("unknown kernel %q", name)
	}
	return &k, compile(t, k.File(), k.Source)
}

// TestAdaptRelaxAgreesWithSimAndRebinds runs the drifting-skew kernel with
// adaptation on at several PE counts and checks both halves of the
// contract: the results stay bit-for-bit identical to the simulator no
// matter how the bounds moved, and the coordinator actually moved them
// (rebound broadcasts were observed wherever a rebind is possible).
func TestAdaptRelaxAgreesWithSimAndRebinds(t *testing.T) {
	k, prog := compileKernel(t, "relax")
	args := k.Args(12)
	wantVals, wantMasks := simArraysMasked(t, prog, 1, k.Arrays, args...)
	for _, pes := range []int{2, 4, 8} {
		res, err := Execute(testCtx(t), prog, Config{
			NumPEs:    pes,
			PageElems: 8,
			Adapt:     true,
			// A tight probe cadence makes rebinds land between the tiny
			// test sweeps instead of after the run is already over.
			ProbeInterval: 20 * time.Microsecond,
		}, args...)
		if err != nil {
			t.Fatalf("adapt@%d: %v", pes, err)
		}
		checkAgainstSimMasked(t, res, wantVals, wantMasks)
		if res.Stats.Rebounds == 0 {
			t.Errorf("adapt@%d: no rebound broadcasts — adaptation never engaged", pes)
		}
		t.Logf("adapt@%d: rebounds=%d msgs=%d", pes, res.Stats.Rebounds, res.Stats.MsgsSent)
	}
}

// TestAdaptWithStealingAgreesWithSim drives the full dynamic machinery at
// once: adaptive bounds moving iterations between sweeps while work
// stealing migrates SPs within them, plus injected transport latency so
// rebound broadcasts genuinely race fan-outs.
func TestAdaptWithStealingAgreesWithSim(t *testing.T) {
	k, prog := compileKernel(t, "relax")
	args := k.Args(12)
	wantVals, wantMasks := simArraysMasked(t, prog, 1, k.Arrays, args...)
	for _, latency := range []time.Duration{0, 200 * time.Microsecond} {
		res, err := Execute(testCtx(t), prog, Config{
			NumPEs:        4,
			PageElems:     8,
			Adapt:         true,
			Steal:         true,
			Latency:       latency,
			ProbeInterval: 20 * time.Microsecond,
		}, args...)
		if err != nil {
			t.Fatalf("adapt+steal latency=%v: %v", latency, err)
		}
		checkAgainstSimMasked(t, res, wantVals, wantMasks)
		t.Logf("adapt+steal latency=%v: rebounds=%d steals=%d",
			latency, res.Stats.Rebounds, res.Stats.Steals)
	}
}

// TestAdaptCoordSweepLifecycle drives the driver-side coordinator directly:
// sweeps are planned once their successor reports (plus one round), late
// stragglers for planned sweeps are ignored, and a balanced profile does
// not churn rebounds.
func TestAdaptCoordSweepLifecycle(t *testing.T) {
	a := newAdaptCoord(2)
	sweep1, sweep2 := packID(0, 1), packID(0, 2)

	// Sweep 1: iteration 1 dominates (the uniform split would cut at 2).
	a.merge(&Msg{Kind: KCostReport, Tmpl: 7, Sweep: sweep1,
		Iters: []int64{1, 2, 3}, Costs: []int64{90, 10, 10}}, 1)
	if out := a.tick(1); len(out) != 0 {
		t.Fatalf("round 1: nothing is finished yet, got %v", out)
	}
	if out := a.tick(2); len(out) != 0 {
		t.Fatalf("round 2: still only one sweep, got %v", out)
	}

	// Sweep 2 appears in round 3 → sweep 1 is finished, but the planner
	// must wait one more full round for stragglers.
	a.merge(&Msg{Kind: KCostReport, Tmpl: 7, Sweep: sweep2,
		Iters: []int64{1}, Costs: []int64{80}}, 3)
	if out := a.tick(3); len(out) != 0 {
		t.Fatalf("round 3: must wait a round for stragglers, got %v", out)
	}
	a.merge(&Msg{Kind: KCostReport, Tmpl: 7, Sweep: sweep1,
		Iters: []int64{4}, Costs: []int64{10}}, 4) // straggler arrives in time
	out := a.tick(4)
	if len(out) != 1 || out[0].tmpl != 7 {
		t.Fatalf("round 4: want one rebind for template 7, got %v", out)
	}
	// 90/10/10/10: the balanced split cuts after iteration 1 (makespan 90
	// vs the uniform split's 100 — a 10% improvement, over hysteresis).
	if len(out[0].cuts) != 1 || out[0].cuts[0] != 1 {
		t.Fatalf("cuts = %v, want [1]", out[0].cuts)
	}
	if a.rebounds != 1 {
		t.Fatalf("rebounds = %d, want 1", a.rebounds)
	}

	// A late report for the planned sweep 1 must be ignored, not revive it.
	a.merge(&Msg{Kind: KCostReport, Tmpl: 7, Sweep: sweep1,
		Iters: []int64{1}, Costs: []int64{5}}, 5)
	if lc := a.loops[7]; len(lc.order) != 1 || lc.order[0] != sweep2 {
		t.Fatalf("late report revived a planned sweep: order=%v", lc.order)
	}

	// Sweep 2 finishes (sweep 3 reports): its profile is already balanced
	// under the installed cuts, so hysteresis suppresses a new rebind.
	a.merge(&Msg{Kind: KCostReport, Tmpl: 7, Sweep: sweep2,
		Iters: []int64{2, 3, 4}, Costs: []int64{26, 26, 26}}, 5)
	a.merge(&Msg{Kind: KCostReport, Tmpl: 7, Sweep: packID(0, 3),
		Iters: []int64{1}, Costs: []int64{70}}, 6)
	if out := a.tick(7); len(out) != 0 {
		t.Fatalf("balanced profile must not churn, got %v", out)
	}
	if a.rebounds != 1 {
		t.Fatalf("rebounds = %d after churn check, want 1", a.rebounds)
	}
	if lc := a.loops[7]; len(lc.order) != 1 || len(lc.sweeps) != 1 {
		t.Fatalf("planned sweeps must be dropped: order=%v", lc.order)
	}
}
