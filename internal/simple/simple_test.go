package simple_test

import (
	"math"
	"testing"

	"repro/internal/idlang"
	"repro/internal/isa"
	"repro/internal/partition"
	"repro/internal/sim"
	"repro/internal/simple"
	"repro/internal/translate"
)

func compileSimple(t *testing.T, src string) (*isa.Program, *partition.Report) {
	t.Helper()
	gp, err := idlang.Compile("simple.id", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	prog, err := translate.Translate(gp)
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	rep, err := partition.Partition(prog, partition.Options{})
	if err != nil {
		t.Fatalf("partition: %v", err)
	}
	return prog, rep
}

func TestPartitioningDecisions(t *testing.T) {
	prog, rep := compileSimple(t, simple.Source)

	dist := map[string]isa.RFKind{}
	for _, d := range rep.Distributed {
		dist[d.Template] = d.Kind
	}

	// velocity_position and hydrodynamics outer loops: row-distributed.
	wantRow := []string{"velocity_position.i.L", "hydrodynamics.i.L", "main.i.L", "conduction.i.L"}
	for _, prefix := range wantRow {
		found := false
		for name, kind := range dist {
			if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
				found = true
				if kind != isa.RFRow {
					t.Errorf("%s distributed as %s, want row", name, kind)
				}
			}
		}
		if !found {
			t.Errorf("no distributed loop with prefix %q (got %v)", prefix, dist)
		}
	}
	// Conduction phase B (j3) must be uniform (ownership cannot be followed).
	foundUniform := false
	for name, kind := range dist {
		if len(name) >= 13 && name[:13] == "conduction.j3" && kind == isa.RFUniform {
			foundUniform = true
		}
	}
	if !foundUniform {
		t.Errorf("conduction column phase should be uniform-distributed: %v", dist)
	}
	// The sweeps carry scalars: LCDs recorded, never distributed.
	for _, prefix := range []string{"conduction.j.L", "conduction.j2", "conduction.i2", "conduction.i3"} {
		found := false
		for _, tm := range prog.Templates {
			if tm.Loop == nil || len(tm.Name) < len(prefix) || tm.Name[:len(prefix)] != prefix {
				continue
			}
			found = true
			if !tm.Loop.HasLCD {
				t.Errorf("sweep %s should have an LCD", tm.Name)
			}
			if tm.Distributed {
				t.Errorf("sweep %s must not be distributed", tm.Name)
			}
		}
		if !found {
			t.Errorf("no loop template with prefix %q", prefix)
		}
	}
}

// runSimple simulates the full step and returns the machine for readback.
func runSimple(t *testing.T, n, pes int) (*sim.Result, *sim.Machine) {
	t.Helper()
	prog, _ := compileSimple(t, simple.Source)
	m, err := sim.New(prog, sim.Config{NumPEs: pes})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(isa.Int(int64(n)))
	if err != nil {
		t.Fatalf("n=%d PEs=%d: %v", n, pes, err)
	}
	return res, m
}

func checkArray(t *testing.T, m *sim.Machine, name string, want []float64, n int, interiorOnly bool) {
	t.Helper()
	vals, mask, dims, err := m.ReadArray(name)
	if err != nil {
		t.Fatal(err)
	}
	if dims[0] != n || dims[1] != n {
		t.Fatalf("%s dims=%v", name, dims)
	}
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			if interiorOnly && (i == 1 || i == n || j == 1 || j == n) {
				continue
			}
			off := (i-1)*n + (j - 1)
			if !mask[off] {
				t.Fatalf("%s[%d,%d] never written", name, i, j)
			}
			if d := math.Abs(vals[off] - want[off]); d > 1e-9*(1+math.Abs(want[off])) {
				t.Fatalf("%s[%d,%d] = %v, native %v (diff %g)", name, i, j, vals[off], want[off], d)
			}
		}
	}
}

func TestSimpleMatchesNative(t *testing.T) {
	const n = 10
	ref := simple.NewGrid(n)
	ref.Step()
	for _, pes := range []int{1, 4} {
		_, m := runSimple(t, n, pes)
		checkArray(t, m, "un", ref.Un, n, false)
		checkArray(t, m, "wn", ref.Wn, n, false)
		checkArray(t, m, "rn", ref.Rn, n, false)
		checkArray(t, m, "rhon", ref.Rhon, n, false)
		checkArray(t, m, "pn", ref.Pn, n, false)
		checkArray(t, m, "en", ref.En, n, false)
		checkArray(t, m, "tn", ref.Tn, n, false)
		checkArray(t, m, "th", ref.Th, n, false)
		checkArray(t, m, "t2", ref.T2, n, false)
		checkArray(t, m, "cpa", ref.Cpa, n, true)
		checkArray(t, m, "dpb", ref.Dpb, n, true)
	}
}

func TestSimpleDeterministicAcrossPEs(t *testing.T) {
	const n = 8
	var ref []float64
	for _, pes := range []int{1, 2, 3, 8} {
		_, m := runSimple(t, n, pes)
		vals, _, _, err := m.ReadArray("t2")
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = vals
			continue
		}
		for i := range vals {
			if vals[i] != ref[i] {
				t.Fatalf("PEs=%d: t2[%d]=%v != %v (Church-Rosser violated)", pes, i, vals[i], ref[i])
			}
		}
	}
}

func TestSimpleSpeedsUp(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const n = 16
	r1, _ := runSimple(t, n, 1)
	r8, _ := runSimple(t, n, 8)
	sp := float64(r1.Time) / float64(r8.Time)
	if sp < 1.5 {
		t.Errorf("16×16 speed-up 1→8 PEs = %.2f, want ≥ 1.5", sp)
	}
	t.Logf("16×16: T1=%.2fms T8=%.2fms speedup=%.2f", float64(r1.Time)/1e6, float64(r8.Time)/1e6, sp)
}

func TestConductionOnlyMatchesNative(t *testing.T) {
	const n = 10
	ref := simple.NewGrid(n)
	ref.ConductionOnly()
	prog, _ := compileSimple(t, simple.ConductionSource)
	m, err := sim.New(prog, sim.Config{NumPEs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(isa.Int(n)); err != nil {
		t.Fatal(err)
	}
	checkArray(t, m, "t2", ref.T2, n, false)
}

func TestEUIsBusiestUnit(t *testing.T) {
	res, _ := runSimple(t, 12, 4)
	eu := res.Utilization("EU")
	for _, u := range []string{"MU", "MM", "AM", "RU"} {
		if res.Utilization(u) >= eu {
			t.Errorf("unit %s utilization %.3f >= EU %.3f (EU should dominate, Figure 8)", u, res.Utilization(u), eu)
		}
	}
	if eu <= 0.05 {
		t.Errorf("EU utilization %.3f suspiciously low", eu)
	}
}
