package simple

// Native reference implementation of the SIMPLE step, mirroring the Idlite
// source expression by expression. It serves two purposes: validating every
// simulated run's array contents, and acting as the hand-written sequential
// program of the §5.3.4 efficiency comparison.

// Grid holds the state arrays of one SIMPLE step, row-major, 0-based
// internally (element (i,j) of the 1-based Idlite program is At(g.X, i, j)).
type Grid struct {
	N                    int
	R, Z, U, W           []float64
	Rho, P, Q, E         []float64
	Un, Wn, Rn, Zn       []float64
	Rhon, Pn, Qn, En, Tn []float64
	Cpa, Dpa, Th         []float64
	Cpb, Dpb, T2         []float64
}

// At reads element (i, j) (1-based) of an n×n row-major array.
func At(a []float64, n, i, j int) float64 { return a[(i-1)*n+(j-1)] }

func alloc(n int) []float64 { return make([]float64, n*n) }

// NewGrid allocates all state for an n×n mesh.
func NewGrid(n int) *Grid {
	g := &Grid{N: n}
	for _, p := range []*[]float64{
		&g.R, &g.Z, &g.U, &g.W, &g.Rho, &g.P, &g.Q, &g.E,
		&g.Un, &g.Wn, &g.Rn, &g.Zn, &g.Rhon, &g.Pn, &g.Qn, &g.En, &g.Tn,
		&g.Cpa, &g.Dpa, &g.Th, &g.Cpb, &g.Dpb, &g.T2,
	} {
		*p = alloc(n)
	}
	return g
}

func eosNative(rho, e float64) float64 { return 0.4 * rho * e }

func kappaNative(t float64) float64 { return 0.01 + 0.004*t }

// Init fills the initial state exactly like the Idlite main.
func (g *Grid) Init() {
	n := g.N
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			fi, fj := float64(i), float64(j)
			o := (i-1)*n + (j - 1)
			g.R[o] = fj * 0.1
			g.Z[o] = fi * 0.1
			g.U[o] = 0.01*fj - 0.005*fi
			g.W[o] = 0.004*fi + 0.002*fj
			rhov := 1.0 + 0.05*fi/float64(n)
			ev := 2.0 + 0.01*fj
			g.Rho[o] = rhov
			g.E[o] = ev
			g.P[o] = 0.4 * rhov * ev
			g.Q[o] = 0
		}
	}
}

// VelocityPosition runs routine 1.
func (g *Grid) VelocityPosition(dt float64) {
	n := g.N
	at := func(a []float64, i, j int) float64 { return a[(i-1)*n+(j-1)] }
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			pick := func(a []float64, ii, jj int) float64 {
				if jj < 1 || jj > n || ii < 1 || ii > n {
					return at(a, i, j)
				}
				return at(a, ii, jj)
			}
			pl, pr := pick(g.P, i, j-1), pick(g.P, i, j+1)
			pd, pu := pick(g.P, i-1, j), pick(g.P, i+1, j)
			ql, qr := pick(g.Q, i, j-1), pick(g.Q, i, j+1)
			qd, qu := pick(g.Q, i-1, j), pick(g.Q, i+1, j)
			ax := (pr - pl + qr - ql) * 0.5
			ay := (pu - pd + qu - qd) * 0.5
			o := (i-1)*n + (j - 1)
			uv := g.U[o] - dt*ax/g.Rho[o]
			wv := g.W[o] - dt*ay/g.Rho[o]
			g.Un[o] = uv
			g.Wn[o] = wv
			g.Rn[o] = g.R[o] + dt*uv
			g.Zn[o] = g.Z[o] + dt*wv
		}
	}
}

// Hydrodynamics runs routine 2.
func (g *Grid) Hydrodynamics(dt float64) {
	n := g.N
	at := func(a []float64, i, j int) float64 { return a[(i-1)*n+(j-1)] }
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			pick := func(a []float64, ii, jj int) float64 {
				if jj < 1 || jj > n || ii < 1 || ii > n {
					return at(a, i, j)
				}
				return at(a, ii, jj)
			}
			ul, ur := pick(g.Un, i, j-1), pick(g.Un, i, j+1)
			wd, wu := pick(g.Wn, i-1, j), pick(g.Wn, i+1, j)
			div := (ur - ul + wu - wd) * 0.5
			o := (i-1)*n + (j - 1)
			rv := g.Rho[o] * (1.0 - dt*div)
			qv := 0.0
			if div < 0 {
				qv = 2.0 * rv * div * div
			}
			ev := g.E[o] - dt*(g.P[o]+qv)*div/rv
			g.Rhon[o] = rv
			g.Qn[o] = qv
			g.En[o] = ev
			g.Pn[o] = eosNative(rv, ev)
			g.Tn[o] = 0.5 * ev
		}
	}
}

// Conduction runs routine 3 on the temperature field t (g.Tn for the full
// step), writing g.Th (after row sweeps) and g.T2 (final).
func (g *Grid) Conduction(lam float64, t []float64) {
	n := g.N
	at := func(a []float64, i, j int) float64 { return a[(i-1)*n+(j-1)] }
	set := func(a []float64, i, j int, v float64) { a[(i-1)*n+(j-1)] = v }

	// Phase A: row sweeps.
	for i := 2; i <= n-1; i++ {
		cprev, dprev := 0.0, at(t, i, 1)
		for j := 2; j <= n-1; j++ {
			kap := kappaNative(at(t, i, j))
			a := lam * kap
			b := 1.0 + 2.0*a
			d := at(t, i, j) + lam*kap*(at(t, i-1, j)-2.0*at(t, i, j)+at(t, i+1, j))
			den := b - a*cprev
			cpj := a / den
			dpj := (d + a*dprev) / den
			set(g.Cpa, i, j, cpj)
			set(g.Dpa, i, j, dpj)
			cprev, dprev = cpj, dpj
		}
		xprev := at(t, i, n)
		for j := n - 1; j >= 2; j-- {
			xj := at(g.Dpa, i, j) + at(g.Cpa, i, j)*xprev
			set(g.Th, i, j, xj)
			xprev = xj
		}
		set(g.Th, i, 1, at(t, i, 1))
		set(g.Th, i, n, at(t, i, n))
	}
	for j := 1; j <= n; j++ {
		set(g.Th, 1, j, at(t, 1, j))
		set(g.Th, n, j, at(t, n, j))
	}

	// Phase B: column sweeps.
	for j := 2; j <= n-1; j++ {
		cprev, dprev := 0.0, at(g.Th, 1, j)
		for i := 2; i <= n-1; i++ {
			kap := 0.01 + 0.004*at(g.Th, i, j)
			a := lam * kap
			b := 1.0 + 2.0*a
			d := at(g.Th, i, j) + lam*kap*(at(g.Th, i, j-1)-2.0*at(g.Th, i, j)+at(g.Th, i, j+1))
			den := b - a*cprev
			cpj := a / den
			dpj := (d + a*dprev) / den
			set(g.Cpb, i, j, cpj)
			set(g.Dpb, i, j, dpj)
			cprev, dprev = cpj, dpj
		}
		xp := at(g.Th, n, j)
		for i := n - 1; i >= 2; i-- {
			xj := at(g.Dpb, i, j) + at(g.Cpb, i, j)*xp
			set(g.T2, i, j, xj)
			xp = xj
		}
		set(g.T2, 1, j, at(g.Th, 1, j))
		set(g.T2, n, j, at(g.Th, n, j))
	}
	for i := 1; i <= n; i++ {
		set(g.T2, i, 1, at(g.Th, i, 1))
		set(g.T2, i, n, at(g.Th, i, n))
	}
}

// Step runs one full SIMPLE cycle, matching the Idlite main.
func (g *Grid) Step() {
	const dt, lam = 0.01, 0.5
	g.Init()
	g.VelocityPosition(dt)
	g.Hydrodynamics(dt)
	g.Conduction(lam, g.Tn)
}

// ConductionOnly mirrors ConductionSource's main: initialize the
// temperature field directly and run conduction alone.
func (g *Grid) ConductionOnly() {
	n := g.N
	t := alloc(n)
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			t[(i-1)*n+(j-1)] = 1.0 + 0.5*float64(i)/float64(n) + 0.25*float64(j)/float64(n)
		}
	}
	g.Conduction(0.5, t)
}
