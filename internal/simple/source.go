// Package simple is the Lawrence Livermore SIMPLE benchmark (Crowley et
// al., UCID-17715) as reproduced for PODS: a 2-D Lagrangian hydrodynamics
// and heat-conduction simulation on an n×n mesh, written in Idlite with the
// paper's routine structure (§5.2):
//
//   - velocity_position — no LCDs, no function calls, embarrassingly
//     parallel (distributed with a row Range Filter);
//   - hydrodynamics — "basically one big nested loop" with an equation-of-
//     state function call per zone;
//   - conduction — the hard part: ADI-style sweep phases in which every
//     element is recalculated twice from its neighbors, with loop-carried
//     dependencies along both ascending and descending for-loops, plus
//     per-zone conductivity function calls. The row phase distributes along
//     data ownership; the column phase cannot follow ownership and falls
//     back to a uniform index split, generating the remote traffic that
//     makes conduction the scalability bottleneck — exactly the behaviour
//     the paper reports.
//
// The package also contains a plain-Go reference implementation used to
// validate every simulated run and to time the "most efficient sequential
// version" of §5.3.4.
package simple

// Source is the SIMPLE benchmark in Idlite. main takes the mesh size n.
const Source = `
# SIMPLE — 2-D Lagrangian hydrodynamics + heat conduction (PODS reproduction).

# Equation of state: ideal gas, gamma = 1.4.
func eos(rho: float, e: float) -> float {
	return 0.4 * rho * e;
}

# Heat-conductivity interpolation (linear fit).
func kappa(t: float) -> float {
	return 0.01 + 0.004 * t;
}

# Routine 1: velocity and position update. Fully parallel: no LCDs.
func velocity_position(n: int, dt: float, rho: array2, p: array2, q: array2,
                       u: array2, w: array2, r: array2, z: array2,
                       un: array2, wn: array2, rn: array2, zn: array2) {
	for i = 1 to n {
		for j = 1 to n {
			pl = if j == 1 then p[i, j] else p[i, j - 1];
			pr = if j == n then p[i, j] else p[i, j + 1];
			pd = if i == 1 then p[i, j] else p[i - 1, j];
			pu = if i == n then p[i, j] else p[i + 1, j];
			ql = if j == 1 then q[i, j] else q[i, j - 1];
			qr = if j == n then q[i, j] else q[i, j + 1];
			qd = if i == 1 then q[i, j] else q[i - 1, j];
			qu = if i == n then q[i, j] else q[i + 1, j];
			ax = (pr - pl + qr - ql) * 0.5;
			ay = (pu - pd + qu - qd) * 0.5;
			uv = u[i, j] - dt * ax / rho[i, j];
			wv = w[i, j] - dt * ay / rho[i, j];
			un[i, j] = uv;
			wn[i, j] = wv;
			rn[i, j] = r[i, j] + dt * uv;
			zn[i, j] = z[i, j] + dt * wv;
		}
	}
}

# Routine 2: hydrodynamics — density, artificial viscosity, energy and
# pressure (via the eos call) in one big nested loop. Writes the new
# temperature consumed by conduction.
func hydrodynamics(n: int, dt: float, rho: array2, p: array2, q: array2, e: array2,
                   un: array2, wn: array2,
                   rhon: array2, pn: array2, qn: array2, en: array2, tn: array2) {
	for i = 1 to n {
		for j = 1 to n {
			ul = if j == 1 then un[i, j] else un[i, j - 1];
			ur = if j == n then un[i, j] else un[i, j + 1];
			wd = if i == 1 then wn[i, j] else wn[i - 1, j];
			wu = if i == n then wn[i, j] else wn[i + 1, j];
			div = (ur - ul + wu - wd) * 0.5;
			rv = rho[i, j] * (1.0 - dt * div);
			qv = if div < 0.0 then 2.0 * rv * div * div else 0.0;
			ev = e[i, j] - dt * (p[i, j] + qv) * div / rv;
			rhon[i, j] = rv;
			qn[i, j] = qv;
			en[i, j] = ev;
			pn[i, j] = eos(rv, ev);
			tn[i, j] = 0.5 * ev;
		}
	}
}

# Boundary copies for the conduction phases (void helper functions).
func row_boundary(n: int, t: array2, th: array2) {
	for j = 1 to n {
		th[1, j] = t[1, j];
		th[n, j] = t[n, j];
	}
}

func col_boundary(n: int, th: array2, t2: array2) {
	for i = 1 to n {
		t2[i, 1] = th[i, 1];
		t2[i, n] = th[i, n];
	}
}

# Routine 3: heat conduction — ADI-style: a tridiagonal (Thomas) solve along
# every row (phase A), then along every column (phase B). The sweeps carry
# scalars (LCDs) in both directions; the enclosing loops are LCD-free and
# distribute.
func conduction(n: int, lam: float, t: array2,
                cpa: array2, dpa: array2, th: array2,
                cpb: array2, dpb: array2, t2: array2) {
	# Phase A: row sweeps, parallel across rows (follows the row
	# partitioning of the arrays — all writes land on the local PE).
	for i = 2 to n - 1 {
		cprev = 0.0;
		dprev = t[i, 1];
		for j = 2 to n - 1 {
			kap = kappa(t[i, j]);
			a = lam * kap;
			b = 1.0 + 2.0 * a;
			d = t[i, j] + lam * kap * (t[i - 1, j] - 2.0 * t[i, j] + t[i + 1, j]);
			den = b - a * cprev;
			cpj = a / den;
			dpj = (d + a * dprev) / den;
			cpa[i, j] = cpj;
			dpa[i, j] = dpj;
			next cprev = cpj;
			next dprev = dpj;
		}
		xprev = t[i, n];
		for j2 = n - 1 downto 2 {
			xj = dpa[i, j2] + cpa[i, j2] * xprev;
			th[i, j2] = xj;
			next xprev = xj;
		}
		th[i, 1] = t[i, 1];
		th[i, n] = t[i, n];
	}
	row_boundary(n, t, th);

	# Phase B: column sweeps. The written dimension is swept inside, so the
	# Range Filter cannot follow ownership — PODS falls back to a uniform
	# split of the column range and pays remote reads/writes.
	for j3 = 2 to n - 1 {
		cprev2 = 0.0;
		dprev2 = th[1, j3];
		for i2 = 2 to n - 1 {
			kap2 = 0.01 + 0.004 * th[i2, j3];
			a2 = lam * kap2;
			b2 = 1.0 + 2.0 * a2;
			d2 = th[i2, j3] + lam * kap2 * (th[i2, j3 - 1] - 2.0 * th[i2, j3] + th[i2, j3 + 1]);
			den2 = b2 - a2 * cprev2;
			cpj2 = a2 / den2;
			dpj2 = (d2 + a2 * dprev2) / den2;
			cpb[i2, j3] = cpj2;
			dpb[i2, j3] = dpj2;
			next cprev2 = cpj2;
			next dprev2 = dpj2;
		}
		xp2 = th[n, j3];
		for i3 = n - 1 downto 2 {
			xj2 = dpb[i3, j3] + cpb[i3, j3] * xp2;
			t2[i3, j3] = xj2;
			next xp2 = xj2;
		}
		t2[1, j3] = th[1, j3];
		t2[n, j3] = th[n, j3];
	}
	col_boundary(n, th, t2);
}

func main(n: int) {
	dt = 0.01;
	lam = 0.5;

	r = array(n, n);   z = array(n, n);
	u = array(n, n);   w = array(n, n);
	rho = array(n, n); p = array(n, n);
	q = array(n, n);   e = array(n, n);

	for i = 1 to n {
		for j = 1 to n {
			fi = float(i);
			fj = float(j);
			r[i, j] = fj * 0.1;
			z[i, j] = fi * 0.1;
			u[i, j] = 0.01 * fj - 0.005 * fi;
			w[i, j] = 0.004 * fi + 0.002 * fj;
			rhov = 1.0 + 0.05 * fi / float(n);
			ev = 2.0 + 0.01 * fj;
			rho[i, j] = rhov;
			e[i, j] = ev;
			p[i, j] = 0.4 * rhov * ev;
			q[i, j] = 0.0;
		}
	}

	un = array(n, n); wn = array(n, n);
	rn = array(n, n); zn = array(n, n);
	velocity_position(n, dt, rho, p, q, u, w, r, z, un, wn, rn, zn);

	rhon = array(n, n); pn = array(n, n);
	qn = array(n, n);   en = array(n, n);
	tn = array(n, n);
	hydrodynamics(n, dt, rho, p, q, e, un, wn, rhon, pn, qn, en, tn);

	cpa = array(n, n); dpa = array(n, n); th = array(n, n);
	cpb = array(n, n); dpb = array(n, n); t2 = array(n, n);
	conduction(n, lam, tn, cpa, dpa, th, cpb, dpb, t2);
}
`

// ConductionSource is the conduction routine driven standalone (used by the
// §5.3.4 efficiency comparison, which times "a 32 x 32 input conduction").
const ConductionSource = `
func kappa(t: float) -> float {
	return 0.01 + 0.004 * t;
}

func row_boundary(n: int, t: array2, th: array2) {
	for j = 1 to n {
		th[1, j] = t[1, j];
		th[n, j] = t[n, j];
	}
}

func col_boundary(n: int, th: array2, t2: array2) {
	for i = 1 to n {
		t2[i, 1] = th[i, 1];
		t2[i, n] = th[i, n];
	}
}

func conduction(n: int, lam: float, t: array2,
                cpa: array2, dpa: array2, th: array2,
                cpb: array2, dpb: array2, t2: array2) {
	for i = 2 to n - 1 {
		cprev = 0.0;
		dprev = t[i, 1];
		for j = 2 to n - 1 {
			kap = kappa(t[i, j]);
			a = lam * kap;
			b = 1.0 + 2.0 * a;
			d = t[i, j] + lam * kap * (t[i - 1, j] - 2.0 * t[i, j] + t[i + 1, j]);
			den = b - a * cprev;
			cpj = a / den;
			dpj = (d + a * dprev) / den;
			cpa[i, j] = cpj;
			dpa[i, j] = dpj;
			next cprev = cpj;
			next dprev = dpj;
		}
		xprev = t[i, n];
		for j2 = n - 1 downto 2 {
			xj = dpa[i, j2] + cpa[i, j2] * xprev;
			th[i, j2] = xj;
			next xprev = xj;
		}
		th[i, 1] = t[i, 1];
		th[i, n] = t[i, n];
	}
	row_boundary(n, t, th);
	for j3 = 2 to n - 1 {
		cprev2 = 0.0;
		dprev2 = th[1, j3];
		for i2 = 2 to n - 1 {
			kap2 = 0.01 + 0.004 * th[i2, j3];
			a2 = lam * kap2;
			b2 = 1.0 + 2.0 * a2;
			d2 = th[i2, j3] + lam * kap2 * (th[i2, j3 - 1] - 2.0 * th[i2, j3] + th[i2, j3 + 1]);
			den2 = b2 - a2 * cprev2;
			cpj2 = a2 / den2;
			dpj2 = (d2 + a2 * dprev2) / den2;
			cpb[i2, j3] = cpj2;
			dpb[i2, j3] = dpj2;
			next cprev2 = cpj2;
			next dprev2 = dpj2;
		}
		xp2 = th[n, j3];
		for i3 = n - 1 downto 2 {
			xj2 = dpb[i3, j3] + cpb[i3, j3] * xp2;
			t2[i3, j3] = xj2;
			next xp2 = xj2;
		}
		t2[1, j3] = th[1, j3];
		t2[n, j3] = th[n, j3];
	}
	col_boundary(n, th, t2);
}

func main(n: int) {
	lam = 0.5;
	t = array(n, n);
	for i = 1 to n {
		for j = 1 to n {
			t[i, j] = 1.0 + 0.5 * float(i) / float(n) + 0.25 * float(j) / float(n);
		}
	}
	cpa = array(n, n); dpa = array(n, n); th = array(n, n);
	cpb = array(n, n); dpb = array(n, n); t2 = array(n, n);
	conduction(n, lam, t, cpa, dpa, th, cpb, dpb, t2);
}
`
