package translate_test

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/isa"
	"repro/internal/partition"
	"repro/internal/sim"
	"repro/internal/translate"
)

// TestPaperFigure2 reproduces the paper's running example end to end:
//
//	A = matrix(50,10);
//	for i = 1 to 50
//	  for j = 1 to 10
//	    A[i,j] = f(i,j);
//
// built directly as a dataflow graph (Figure 2's three scopes: the outer
// allocation block, the i-loop, the j-loop), translated to three SPs,
// partitioned with the Range Filter exactly where Figure 5 places it (the
// i-level, keyed on A), and simulated on 1..32 PEs. f(i,j) = 100·i + j so
// every element identifies its writer.
func TestPaperFigure2(t *testing.T) {
	bl := graph.NewBuilder()

	mb := bl.NewBlock("main", graph.BlockMain, nil)

	jb := bl.NewBlock("j-loop", graph.BlockLoop, []graph.Param{
		{Name: "$init", Type: isa.KindInt}, {Name: "$limit", Type: isa.KindInt},
		{Name: "A", Type: isa.KindArray}, {Name: "i", Type: isa.KindInt},
	})
	jb.SetLoop(&graph.LoopMeta{Var: "j"})
	{
		arr := jb.Param(2)
		i := jb.Param(3)
		j := jb.LoopVar()
		hundred := jb.Const(isa.Int(100))
		v := jb.Binary(graph.OpIMul, isa.KindInt, i, hundred)
		v = jb.Binary(graph.OpIAdd, isa.KindInt, v, j)
		vf := jb.Unary(graph.OpItoF, isa.KindFloat, v)
		jb.AWrite("A", arr, []int{i, j}, vf, []graph.Subscript{graph.Sub("i", 0), graph.Sub("j", 0)})
	}

	ib := bl.NewBlock("i-loop", graph.BlockLoop, []graph.Param{
		{Name: "$init", Type: isa.KindInt}, {Name: "$limit", Type: isa.KindInt},
		{Name: "A", Type: isa.KindArray},
	})
	ib.SetLoop(&graph.LoopMeta{Var: "i"})
	{
		arr := ib.Param(2)
		one := ib.Const(isa.Int(1))
		ten := ib.Const(isa.Int(10))
		i := ib.LoopVar()
		ib.ForLoop(jb.Block(), one, ten, []int{arr, i}, nil)
	}

	{
		rows := mb.Const(isa.Int(50))
		cols := mb.Const(isa.Int(10))
		arr := mb.Alloc("A", []int{rows, cols})
		one := mb.Const(isa.Int(1))
		fifty := mb.Const(isa.Int(50))
		mb.ForLoop(ib.Block(), one, fifty, []int{arr}, nil)
	}

	gp, err := bl.Program()
	if err != nil {
		t.Fatal(err)
	}
	prog, err := translate.Translate(gp)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Templates) != 3 {
		t.Fatalf("Figure 2 has three scopes; got %d SPs", len(prog.Templates))
	}
	rep, err := partition.Partition(prog, partition.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Distributed) != 1 || rep.Distributed[0].Kind != isa.RFRow || rep.Distributed[0].Array != "A" {
		t.Fatalf("expected exactly the i-level row RF on A:\n%s", rep)
	}

	for _, pes := range []int{1, 4, 32} {
		m, err := sim.New(prog, sim.Config{NumPEs: pes})
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatalf("PEs=%d: %v", pes, err)
		}
		vals, mask, dims, err := m.ReadArray("A")
		if err != nil {
			t.Fatal(err)
		}
		if dims[0] != 50 || dims[1] != 10 {
			t.Fatalf("dims %v", dims)
		}
		for i := 1; i <= 50; i++ {
			for j := 1; j <= 10; j++ {
				off := (i-1)*10 + j - 1
				if !mask[off] || vals[off] != float64(100*i+j) {
					t.Fatalf("PEs=%d: A[%d,%d]=%v written=%v", pes, i, j, vals[off], mask[off])
				}
			}
		}
		// One SP instance per PE for the distributed i-loop, one j-loop SP
		// per row owned, plus main.
		if pes == 1 && res.Counts.SPsCreated != int64(1+1+50) {
			t.Errorf("1 PE: SPs = %d, want 52 (main + i-loop + 50 j-loops)", res.Counts.SPsCreated)
		}
		if pes == 32 && res.Counts.SPsCreated != int64(1+32+50) {
			t.Errorf("32 PEs: SPs = %d, want 83 (main + 32 i-loop copies + 50 j-loops)", res.Counts.SPsCreated)
		}
	}
}
