package translate_test

import (
	"strings"
	"testing"

	"repro/internal/idlang"
	"repro/internal/isa"
	"repro/internal/partition"
	"repro/internal/sim"
	"repro/internal/translate"
)

func compileSrc(t *testing.T, src string) *isa.Program {
	t.Helper()
	gp, err := idlang.Compile("x.id", src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := translate.Translate(gp)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestFunctionTemplatesHaveContinuationParams(t *testing.T) {
	prog := compileSrc(t, `
func f(x: float) -> float { return x + 1.0; }
func main() -> float { return f(f(2.0)); }
`)
	var f *isa.Template
	for _, tm := range prog.Templates {
		if tm.Name == "f" {
			f = tm
		}
	}
	if f == nil {
		t.Fatal("no template for f")
	}
	if !f.HasResult || f.NResults != 1 {
		t.Fatalf("f: HasResult=%v NResults=%d", f.HasResult, f.NResults)
	}
	// Declared param (x) plus retRef and retBase.
	if f.NParams != 3 {
		t.Fatalf("f.NParams = %d, want 3 (x + continuation pair)", f.NParams)
	}
	// The body must end with SEND then HALT.
	n := len(f.Code)
	if f.Code[n-1].Op != isa.HALT || f.Code[n-2].Op != isa.SEND {
		t.Fatalf("f epilogue:\n%s", f.Listing())
	}
}

func TestNestedCallsExecute(t *testing.T) {
	prog := compileSrc(t, `
func f(x: float) -> float { return x + 1.0; }
func g(x: float) -> float { return f(x) * 2.0; }
func main() -> float { return g(f(1.0)); }
`)
	m, err := sim.New(prog, sim.Config{NumPEs: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	// g(f(1)) = g(2) = (2+1)*2 = 6.
	if res.MainValue == nil || res.MainValue.F != 6 {
		t.Fatalf("result %+v, want 6", res.MainValue)
	}
}

func TestUnconsumedLoopResultsNotSent(t *testing.T) {
	// The carried scalar's final value is never used: the loop template
	// must not SEND it and the parent must not pass a continuation.
	prog := compileSrc(t, `
func main(n: int) {
	A = array(n);
	s = 0;
	for i = 1 to n {
		next s = s + i;
		A[i] = float(i);
	}
}`)
	var loop *isa.Template
	for _, tm := range prog.Templates {
		if tm.Kind == isa.TmplLoop {
			loop = tm
		}
	}
	if loop == nil {
		t.Fatal("no loop template")
	}
	if loop.HasResult || loop.NResults != 0 {
		t.Fatalf("unconsumed results should be stripped: HasResult=%v NResults=%d", loop.HasResult, loop.NResults)
	}
	for _, in := range loop.Code {
		if in.Op == isa.SEND {
			t.Fatalf("unconsumed carried scalar is SENT:\n%s", loop.Listing())
		}
	}
	// And the program must still run (the dead-SP token bug regression).
	if _, err := partition.Partition(prog, partition.Options{}); err != nil {
		t.Fatal(err)
	}
	m, err := sim.New(prog, sim.Config{NumPEs: 2, PageElems: 8, DistThreshold: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(isa.Int(12)); err != nil {
		t.Fatal(err)
	}
}

func TestPartiallyConsumedLoopResults(t *testing.T) {
	// Two carried scalars; only one final value is used.
	prog := compileSrc(t, `
func main(n: int) -> int {
	a = 0;
	b = 0;
	for i = 1 to n {
		next a = a + i;
		next b = b + 2 * i;
	}
	return b;
}`)
	var loop *isa.Template
	for _, tm := range prog.Templates {
		if tm.Kind == isa.TmplLoop {
			loop = tm
		}
	}
	sends := 0
	for _, in := range loop.Code {
		if in.Op == isa.SEND {
			sends++
		}
	}
	if sends != 1 {
		t.Fatalf("sends = %d, want 1 (only b is consumed)\n%s", sends, loop.Listing())
	}
	m, err := sim.New(prog, sim.Config{NumPEs: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(isa.Int(10))
	if err != nil {
		t.Fatal(err)
	}
	if res.MainValue == nil || res.MainValue.I != 110 {
		t.Fatalf("result %+v, want 110", res.MainValue)
	}
}

func TestListingReadable(t *testing.T) {
	prog := compileSrc(t, `
func main(n: int) {
	A = array(n);
	for i = 1 to n {
		A[i] = float(i);
	}
}`)
	l := prog.Listing()
	for _, want := range []string{"main", "ALLOC", "SPAWN", "loop", "AWRITE", "HALT", "i = init"} {
		if !strings.Contains(l, want) {
			t.Errorf("listing missing %q:\n%s", want, l)
		}
	}
}

func TestLoopTemplateNamesExposed(t *testing.T) {
	prog := compileSrc(t, `
func main(n: int) {
	A = array(n, n);
	for i = 1 to n {
		for j = 1 to n {
			A[i, j] = float(i + j);
		}
	}
}`)
	for _, tm := range prog.Templates {
		if tm.Loop == nil || tm.Loop.Var != "j" {
			continue
		}
		if _, ok := tm.Names["A"]; !ok {
			t.Error("inner loop should expose A")
		}
		if _, ok := tm.Names["i"]; !ok {
			t.Error("inner loop should expose the imported i")
		}
		if tm.Names["j"] != tm.Loop.VarSlot {
			t.Error("loop variable slot mapping")
		}
	}
}
