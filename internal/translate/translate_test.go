package translate_test

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/isa"
	"repro/internal/partition"
	"repro/internal/sim"
	"repro/internal/translate"
)

// buildFill2D builds: main(n,m) { A=alloc(n,m); for i { for j { A[i,j]=i*100+j } } }.
func buildFill2D(t *testing.T) *graph.Program {
	t.Helper()
	bl := graph.NewBuilder()

	mb := bl.NewBlock("main", graph.BlockMain, []graph.Param{
		{Name: "n", Type: isa.KindInt}, {Name: "m", Type: isa.KindInt},
	})

	// Inner j-loop block: params init, limit, A, i.
	jb := bl.NewBlock("j.loop", graph.BlockLoop, []graph.Param{
		{Name: "init", Type: isa.KindInt}, {Name: "limit", Type: isa.KindInt},
		{Name: "A", Type: isa.KindArray}, {Name: "i", Type: isa.KindInt},
	})
	jb.SetLoop(&graph.LoopMeta{Var: "j"})
	{
		arr := jb.Param(2)
		i := jb.Param(3)
		j := jb.LoopVar()
		hundred := jb.Const(isa.Int(100))
		v := jb.Binary(graph.OpIMul, isa.KindInt, i, hundred)
		v = jb.Binary(graph.OpIAdd, isa.KindInt, v, j)
		vf := jb.Unary(graph.OpItoF, isa.KindFloat, v)
		jb.AWrite("A", arr, []int{i, j}, vf, []graph.Subscript{graph.Sub("i", 0), graph.Sub("j", 0)})
	}

	// Outer i-loop block: params init, limit, A, m.
	ib := bl.NewBlock("i.loop", graph.BlockLoop, []graph.Param{
		{Name: "init", Type: isa.KindInt}, {Name: "limit", Type: isa.KindInt},
		{Name: "A", Type: isa.KindArray}, {Name: "m", Type: isa.KindInt},
	})
	ib.SetLoop(&graph.LoopMeta{Var: "i"})
	{
		arr := ib.Param(2)
		m := ib.Param(3)
		one := ib.Const(isa.Int(1))
		i := ib.LoopVar()
		ib.ForLoop(jb.Block(), one, m, []int{arr, i}, nil)
	}

	// main body.
	{
		n := mb.Param(0)
		mn := mb.Param(1)
		arr := mb.Alloc("A", []int{n, mn})
		one := mb.Const(isa.Int(1))
		mb.ForLoop(ib.Block(), one, n, []int{arr, mn}, nil)
	}

	gp, err := bl.Program()
	if err != nil {
		t.Fatal(err)
	}
	return gp
}

func TestTranslateFill2DStructure(t *testing.T) {
	gp := buildFill2D(t)
	prog, err := translate.Translate(gp)
	if err != nil {
		t.Fatal(err)
	}
	iloop := prog.Templates[2]
	if iloop.Kind != isa.TmplLoop || iloop.Loop == nil {
		t.Fatalf("i.loop not a loop template: %+v", iloop)
	}
	// Access rollup: i-loop must see the grandchild's write of A[i,j].
	found := false
	for _, a := range iloop.Loop.Accesses {
		if a.Array == "A" && a.IsWrite && len(a.Vars) == 2 && a.Vars[0] == "i" {
			found = true
		}
	}
	if !found {
		t.Fatalf("i.loop accesses missing rolled-up write of A: %+v", iloop.Loop.Accesses)
	}
	if iloop.Names["i"] != iloop.Loop.VarSlot {
		t.Error("loop var name not mapped to var slot")
	}
}

func TestPartitionFill2D(t *testing.T) {
	gp := buildFill2D(t)
	prog, err := translate.Translate(gp)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := partition.Partition(prog, partition.Options{})
	if err != nil {
		t.Fatal(err)
	}
	iloop := prog.Templates[2]
	jloop := prog.Templates[1]
	if !iloop.Distributed || iloop.RFKind != isa.RFRow || iloop.RFArray != "A" {
		t.Fatalf("i.loop should be row-distributed on A: dist=%v kind=%v arr=%q\n%s",
			iloop.Distributed, iloop.RFKind, iloop.RFArray, rep)
	}
	if jloop.Distributed {
		t.Fatal("j.loop must stay local (one RF per nest)")
	}
	// main's spawn of i.loop must now be LD.
	main := prog.Templates[0]
	foundLD := false
	for _, in := range main.Code {
		if in.Op == isa.SPAWND && in.Imm.I == 2 {
			foundLD = true
		}
	}
	if !foundLD {
		t.Fatal("main should LD-spawn i.loop")
	}
	if err := prog.Validate(); err != nil {
		t.Fatalf("partitioned program invalid: %v", err)
	}
}

func runFill2D(t *testing.T, pes, n, m int) (*sim.Result, *sim.Machine) {
	t.Helper()
	gp := buildFill2D(t)
	prog, err := translate.Translate(gp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := partition.Partition(prog, partition.Options{}); err != nil {
		t.Fatal(err)
	}
	mach, err := sim.New(prog, sim.Config{NumPEs: pes, PageElems: 8, DistThreshold: 16})
	if err != nil {
		t.Fatal(err)
	}
	res, err := mach.Run(isa.Int(int64(n)), isa.Int(int64(m)))
	if err != nil {
		t.Fatalf("PEs=%d: %v", pes, err)
	}
	return res, mach
}

func TestFill2DEndToEnd(t *testing.T) {
	const n, m = 12, 10
	for _, pes := range []int{1, 2, 4, 8} {
		_, mach := runFill2D(t, pes, n, m)
		vals, mask, dims, err := mach.ReadArray("A")
		if err != nil {
			t.Fatal(err)
		}
		if dims[0] != n || dims[1] != m {
			t.Fatalf("dims=%v", dims)
		}
		for i := 1; i <= n; i++ {
			for j := 1; j <= m; j++ {
				off := (i-1)*m + (j - 1)
				if !mask[off] {
					t.Fatalf("PEs=%d: A[%d,%d] never written", pes, i, j)
				}
				if want := float64(i*100 + j); vals[off] != want {
					t.Fatalf("PEs=%d: A[%d,%d]=%v want %v", pes, i, j, vals[off], want)
				}
			}
		}
	}
}

func TestFill2DSpeedsUp(t *testing.T) {
	r1, _ := runFill2D(t, 1, 32, 32)
	r8, _ := runFill2D(t, 8, 32, 32)
	if sp := float64(r1.Time) / float64(r8.Time); sp < 2.5 {
		t.Errorf("speed-up 1→8 = %.2f, want ≥ 2.5", sp)
	}
}

// buildSumLoop builds main() { s=0; for k=1..n { next s = s + k }; return s }
// exercising carried scalars and loop results.
func buildSumLoop(t *testing.T, n int64) *graph.Program {
	t.Helper()
	bl := graph.NewBuilder()
	mb := bl.NewBlock("main", graph.BlockMain, nil)

	kb := bl.NewBlock("k.loop", graph.BlockLoop, []graph.Param{
		{Name: "init", Type: isa.KindInt}, {Name: "limit", Type: isa.KindInt},
		{Name: "s", Type: isa.KindInt},
	})
	{
		s := kb.CarriedVar(0, isa.KindInt)
		k := kb.LoopVar()
		nxt := kb.Binary(graph.OpIAdd, isa.KindInt, s, k)
		kb.SetLoop(&graph.LoopMeta{Var: "k", Carried: []graph.Carried{{Name: "s", Type: isa.KindInt, NextNode: nxt}}})
	}

	one := mb.Const(isa.Int(1))
	lim := mb.Const(isa.Int(n))
	zero := mb.Const(isa.Int(0))
	loop := mb.ForLoop(kb.Block(), one, lim, nil, []int{zero})
	out := mb.LoopOut(loop, 0, isa.KindInt)
	mb.Return(out, isa.KindInt)

	gp, err := bl.Program()
	if err != nil {
		t.Fatal(err)
	}
	return gp
}

func TestCarriedScalarSum(t *testing.T) {
	gp := buildSumLoop(t, 100)
	prog, err := translate.Translate(gp)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := partition.Partition(prog, partition.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The k-loop has a carried scalar → LCD → must not distribute.
	if prog.Templates[1].Distributed {
		t.Fatalf("carried-scalar loop distributed:\n%s", rep)
	}
	mach, err := sim.New(prog, sim.Config{NumPEs: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := mach.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.MainValue == nil || res.MainValue.I != 5050 {
		t.Fatalf("sum = %+v, want 5050", res.MainValue)
	}
}

// TestTopoOrderIndependence checks the translator's ordering contract: the
// order nodes were *inserted* must not matter, only the dataflow arcs.
func TestTopoOrderIndependence(t *testing.T) {
	build := func(scrambled bool) *graph.Program {
		bl := graph.NewBuilder()
		mb := bl.NewBlock("main", graph.BlockMain, nil)
		if !scrambled {
			a := mb.Const(isa.Int(3))
			b := mb.Const(isa.Int(4))
			s := mb.Binary(graph.OpIAdd, isa.KindInt, a, b)
			p := mb.Binary(graph.OpIMul, isa.KindInt, s, s)
			mb.Return(p, isa.KindInt)
		} else {
			// Same dataflow, built with forward references patched after.
			b := mb.Block()
			b.Nodes = []*graph.Node{
				{ID: 0, Op: graph.OpIMul, Type: isa.KindInt, In: []int{1, 1}, HasValue: true},
				{ID: 1, Op: graph.OpIAdd, Type: isa.KindInt, In: []int{2, 3}, HasValue: true},
				{ID: 2, Op: graph.OpConst, Imm: isa.Int(3), Type: isa.KindInt, HasValue: true},
				{ID: 3, Op: graph.OpConst, Imm: isa.Int(4), Type: isa.KindInt, HasValue: true},
			}
			b.Body = []int{0, 1, 2, 3}
			b.Result = 0
			b.ResultType = isa.KindInt
		}
		gp, err := bl.Program()
		if err != nil {
			t.Fatal(err)
		}
		return gp
	}
	for _, scrambled := range []bool{false, true} {
		prog, err := translate.Translate(build(scrambled))
		if err != nil {
			t.Fatalf("scrambled=%v: %v", scrambled, err)
		}
		mach, err := sim.New(prog, sim.Config{NumPEs: 1})
		if err != nil {
			t.Fatal(err)
		}
		res, err := mach.Run()
		if err != nil {
			t.Fatalf("scrambled=%v: %v", scrambled, err)
		}
		if res.MainValue == nil || res.MainValue.I != 49 {
			t.Fatalf("scrambled=%v: result %+v, want 49", scrambled, res.MainValue)
		}
	}
}

func TestDataflowCycleRejected(t *testing.T) {
	bl := graph.NewBuilder()
	mb := bl.NewBlock("main", graph.BlockMain, nil)
	b := mb.Block()
	b.Nodes = []*graph.Node{
		{ID: 0, Op: graph.OpIAdd, Type: isa.KindInt, In: []int{1, 1}, HasValue: true},
		{ID: 1, Op: graph.OpIAdd, Type: isa.KindInt, In: []int{0, 0}, HasValue: true},
	}
	b.Body = []int{0, 1}
	gp, err := bl.Program()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := translate.Translate(gp); err == nil {
		t.Fatal("cycle should be rejected")
	}
}

func TestDisableDistributionAblation(t *testing.T) {
	gp := buildFill2D(t)
	prog, err := translate.Translate(gp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := partition.Partition(prog, partition.Options{DisableDistribution: true}); err != nil {
		t.Fatal(err)
	}
	for _, tm := range prog.Templates {
		if tm.Distributed {
			t.Fatal("DisableDistribution must leave all loops local")
		}
	}
	mach, err := sim.New(prog, sim.Config{NumPEs: 4, PageElems: 8, DistThreshold: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mach.Run(isa.Int(8), isa.Int(8)); err != nil {
		t.Fatal(err)
	}
	vals, _, _, _ := mach.ReadArray("A")
	if vals[0] != 101 {
		t.Fatalf("A[1,1]=%v want 101", vals[0])
	}
}
