package rtcfg

import (
	"testing"

	"repro/internal/timing"
)

func TestFillDefaults(t *testing.T) {
	var g Geometry
	if err := g.Fill(DefaultPEs); err != nil {
		t.Fatal(err)
	}
	if g.PEs != DefaultPEs {
		t.Errorf("PEs = %d, want %d", g.PEs, DefaultPEs)
	}
	if g.PageElems != timing.DefaultPageElems {
		t.Errorf("PageElems = %d, want %d", g.PageElems, timing.DefaultPageElems)
	}
	if g.DistThreshold != 2*timing.DefaultPageElems {
		t.Errorf("DistThreshold = %d, want %d", g.DistThreshold, 2*timing.DefaultPageElems)
	}
}

func TestFillKeepsExplicit(t *testing.T) {
	g := Geometry{PEs: 7, PageElems: 16, DistThreshold: 5}
	if err := g.Fill(1); err != nil {
		t.Fatal(err)
	}
	if g.PEs != 7 || g.PageElems != 16 || g.DistThreshold != 5 {
		t.Errorf("explicit values changed: %+v", g)
	}
}

func TestFillDistThresholdTracksPageElems(t *testing.T) {
	g := Geometry{PageElems: 8}
	if err := g.Fill(1); err != nil {
		t.Fatal(err)
	}
	if g.DistThreshold != 16 {
		t.Errorf("DistThreshold = %d, want 16 (2 × explicit PageElems)", g.DistThreshold)
	}
}

func TestFillRejectsHugePEs(t *testing.T) {
	g := Geometry{PEs: MaxPEs + 1}
	if err := g.Fill(1); err == nil {
		t.Fatal("want error for PEs above MaxPEs")
	}
}
