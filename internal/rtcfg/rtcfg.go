// Package rtcfg holds the partitioning-geometry defaults shared by every
// execution backend (the simulator, the goroutine runtime, and the cluster
// runtime). Keeping them in one validated helper guarantees the backends
// cannot silently diverge on what "default" means — a prerequisite for the
// Church-Rosser agreement tests, which compare array contents produced by
// different backends under identical geometry.
package rtcfg

import (
	"fmt"

	"repro/internal/timing"
)

// DefaultPEs is the default worker/virtual-PE count for the concurrent
// backends (podsrt, cluster). The simulator defaults to 1 PE instead, so it
// passes its own default to Fill.
const DefaultPEs = 4

// MaxPEs bounds the PE count. The cluster runtime packs the PE index into
// the high bits of SP and array IDs, and no experiment in the paper goes
// beyond 32 PEs, so a generous-but-finite bound catches garbage configs.
const MaxPEs = 1 << 16

// Geometry is the partitioning geometry every backend agrees on: how many
// PEs exist, how large an I-structure page is, and above what element count
// an array is physically distributed.
type Geometry struct {
	PEs           int
	PageElems     int
	DistThreshold int
}

// Fill applies the shared defaults in place (zero or negative fields take
// the default) and validates the result. defaultPEs is the backend's PE
// default (rtcfg.DefaultPEs for the concurrent runtimes, 1 for the
// simulator).
func (g *Geometry) Fill(defaultPEs int) error {
	if g.PEs <= 0 {
		g.PEs = defaultPEs
	}
	if g.PageElems <= 0 {
		g.PageElems = timing.DefaultPageElems
	}
	if g.DistThreshold <= 0 {
		// An array smaller than two pages cannot meaningfully be spread:
		// every PE but one would own nothing.
		g.DistThreshold = 2 * g.PageElems
	}
	if g.PEs > MaxPEs {
		return fmt.Errorf("rtcfg: %d PEs exceeds the supported maximum %d", g.PEs, MaxPEs)
	}
	return nil
}
