package istructure

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustHeader(t *testing.T, dims []int, pageElems, numPEs int) *Header {
	t.Helper()
	h, err := NewHeader(1, "A", dims, pageElems, numPEs, 0, true)
	if err != nil {
		t.Fatalf("NewHeader: %v", err)
	}
	return h
}

// TestPaperPartitioningExample reproduces the paper's §4.1 example: a 6×256
// array over 4 PEs with 32-element pages has 1536 elements, 48 pages,
// 12 pages per PE.
func TestPaperPartitioningExample(t *testing.T) {
	h := mustHeader(t, []int{6, 256}, 32, 4)
	if got := h.Elems(); got != 1536 {
		t.Fatalf("Elems = %d, want 1536", got)
	}
	if got := h.Pages(); got != 48 {
		t.Fatalf("Pages = %d, want 48", got)
	}
	for pe := 0; pe < 4; pe++ {
		lo, hi := h.SegmentPages(pe)
		if hi-lo != 12 {
			t.Errorf("PE%d: %d pages, want 12", pe, hi-lo)
		}
		if lo != pe*12 {
			t.Errorf("PE%d: segment starts at page %d, want %d", pe, lo, pe*12)
		}
	}
}

// TestPaperRowResponsibility checks the Figure 6 index-space partitioning:
// with the first-element rule, PE1 (index 0) is responsible for rows 1-2,
// PE2 for row 3, PE3 for rows 4, PE4 for rows 5-6... The paper's figure
// (0-based rows 0..5): PE1 owns rows 0,1; PE2 row 2; PE3 rows 3,4(start);
// we verify the rule directly: responsibility goes to the PE holding the
// row's first element, and responsibilities are a disjoint cover.
func TestPaperRowResponsibility(t *testing.T) {
	h := mustHeader(t, []int{6, 256}, 32, 4)
	// Each PE owns elements [pe*384, (pe+1)*384). Row r starts at r*256.
	// Row starts: 0,256,512,768,1024,1280 → owners 0,0,1,2,2,3.
	wantOwner := []int{0, 0, 1, 2, 2, 3}
	for r := 0; r < 6; r++ {
		owner := h.OwnerOf(r * 256)
		if owner != wantOwner[r] {
			t.Errorf("row %d first-element owner = PE%d, want PE%d", r, owner, wantOwner[r])
		}
	}
	covered := make(map[int64]int)
	for pe := 0; pe < 4; pe++ {
		lo, hi, ok := h.OwnedRows(pe)
		if !ok {
			continue
		}
		for r := lo; r <= hi; r++ {
			if prev, dup := covered[r]; dup {
				t.Fatalf("row %d assigned to both PE%d and PE%d", r, prev, pe)
			}
			covered[r] = pe
		}
	}
	if len(covered) != 6 {
		t.Fatalf("rows covered = %d, want 6", len(covered))
	}
	// Spot-check against the first-element rule.
	for r := 1; r <= 6; r++ {
		if covered[int64(r)] != wantOwner[r-1] {
			t.Errorf("row %d responsible PE = %d, want %d", r, covered[int64(r)], wantOwner[r-1])
		}
	}
}

// TestFigure5InnerRange checks the in-row (j) ranges of Figure 4/5: "the RF
// in PE1 produces the j range 0:255 when i is 0 but only 0:127 when i is 1"
// (paper uses 0-based indices; ours are 1-based).
func TestFigure5InnerRange(t *testing.T) {
	h := mustHeader(t, []int{6, 256}, 32, 4)
	lo, hi, ok := h.OwnedCols(0, 1) // PE1, row i=1 (paper's i=0)
	if !ok || lo != 1 || hi != 256 {
		t.Errorf("PE0 row1: [%d,%d] ok=%v, want [1,256]", lo, hi, ok)
	}
	lo, hi, ok = h.OwnedCols(0, 2) // PE1, row i=2 (paper's i=1): first half
	if !ok || lo != 1 || hi != 128 {
		t.Errorf("PE0 row2: [%d,%d] ok=%v, want [1,128]", lo, hi, ok)
	}
	lo, hi, ok = h.OwnedCols(1, 2) // PE2 holds the second half of row 2
	if !ok || lo != 129 || hi != 256 {
		t.Errorf("PE1 row2: [%d,%d] ok=%v, want [129,256]", lo, hi, ok)
	}
}

func TestOffsetRowMajor(t *testing.T) {
	h := mustHeader(t, []int{4, 5}, 32, 2)
	off, err := h.Offset([]int64{1, 1})
	if err != nil || off != 0 {
		t.Fatalf("Offset(1,1) = %d, %v", off, err)
	}
	off, err = h.Offset([]int64{2, 3})
	if err != nil || off != 7 {
		t.Fatalf("Offset(2,3) = %d, %v; want 7", off, err)
	}
	if _, err = h.Offset([]int64{5, 1}); err == nil {
		t.Fatal("Offset(5,1) should be out of bounds")
	}
	if _, err = h.Offset([]int64{0, 1}); err == nil {
		t.Fatal("Offset(0,1) should be out of bounds (1-based)")
	}
	var be *BoundsError
	_, err = h.Offset([]int64{1, 99})
	if be, _ = err.(*BoundsError); be == nil {
		t.Fatalf("want *BoundsError, got %v", err)
	}
}

// TestSegmentsTileElements property: for random geometries, per-PE element
// segments are disjoint and cover all elements; OwnerOf agrees with the
// segment containing the offset.
func TestSegmentsTileElements(t *testing.T) {
	f := func(rowsU, colsU, pesU, pageU uint8) bool {
		rows := int(rowsU%40) + 1
		cols := int(colsU%70) + 1
		pes := int(pesU%32) + 1
		page := []int{4, 8, 16, 32}[int(pageU)%4]
		h, err := NewHeader(1, "A", []int{rows, cols}, page, pes, 0, true)
		if err != nil {
			return false
		}
		total := 0
		prevHi := 0
		for pe := 0; pe < pes; pe++ {
			lo, hi := h.SegmentElems(pe)
			if lo != prevHi && lo < hi {
				return false
			}
			if lo < hi {
				prevHi = hi
				total += hi - lo
			}
		}
		if total != h.Elems() {
			return false
		}
		for trial := 0; trial < 20; trial++ {
			off := rand.Intn(h.Elems())
			owner := h.OwnerOf(off)
			lo, hi := h.SegmentElems(owner)
			if off < lo || off >= hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestOwnedRowsDisjointCover property: row responsibilities tile [1, rows].
func TestOwnedRowsDisjointCover(t *testing.T) {
	f := func(rowsU, colsU, pesU uint8) bool {
		rows := int(rowsU%64) + 1
		cols := int(colsU%64) + 1
		pes := int(pesU%32) + 1
		h, err := NewHeader(1, "A", []int{rows, cols}, 32, pes, 0, true)
		if err != nil {
			return false
		}
		next := int64(1)
		for pe := 0; pe < pes; pe++ {
			lo, hi, ok := h.OwnedRows(pe)
			if !ok {
				continue
			}
			if lo != next || hi < lo {
				return false
			}
			next = hi + 1
		}
		return next == int64(rows)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestOwnedColsTileRows property: for every row, per-PE column ranges tile
// [1, cols].
func TestOwnedColsTileRows(t *testing.T) {
	f := func(rowsU, colsU, pesU uint8) bool {
		rows := int(rowsU%20) + 1
		cols := int(colsU%50) + 1
		pes := int(pesU%16) + 1
		h, err := NewHeader(1, "A", []int{rows, cols}, 16, pes, 0, true)
		if err != nil {
			return false
		}
		for r := int64(1); r <= int64(rows); r++ {
			next := int64(1)
			for pe := 0; pe < pes; pe++ {
				lo, hi, ok := h.OwnedCols(pe, r)
				if !ok {
					continue
				}
				if lo != next || hi < lo {
					return false
				}
				next = hi + 1
			}
			if next != int64(cols)+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestLocalArrayAllOnOrigin(t *testing.T) {
	h, err := NewHeader(7, "loc", []int{10}, 32, 4, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	for pe := 0; pe < 4; pe++ {
		lo, hi := h.SegmentElems(pe)
		if pe == 2 {
			if lo != 0 || hi != 10 {
				t.Errorf("origin PE2 segment [%d,%d), want [0,10)", lo, hi)
			}
		} else if lo != hi {
			t.Errorf("PE%d segment [%d,%d), want empty", pe, lo, hi)
		}
	}
	if h.OwnerOf(5) != 2 {
		t.Errorf("OwnerOf(5) = %d, want origin 2", h.OwnerOf(5))
	}
}

func TestOneDimensionalOwnership(t *testing.T) {
	h := mustHeader(t, []int{100}, 32, 3) // 100 elems, 4 pages: 2,1,1
	lo, hi := h.SegmentPages(0)
	if hi-lo != 2 {
		t.Fatalf("PE0 pages = %d, want 2 (4 pages over 3 PEs)", hi-lo)
	}
	clo, chi, ok := h.OwnedCols(0, 1)
	if !ok || clo != 1 || chi != 64 {
		t.Errorf("PE0 1-D owned = [%d,%d] ok=%v, want [1,64]", clo, chi, ok)
	}
	clo, chi, ok = h.OwnedCols(2, 1)
	if !ok || clo != 97 || chi != 100 {
		t.Errorf("PE2 1-D owned = [%d,%d] ok=%v, want [97,100]", clo, chi, ok)
	}
}

func TestHeaderValidation(t *testing.T) {
	if _, err := NewHeader(1, "x", nil, 32, 4, 0, true); err == nil {
		t.Error("nil dims should fail")
	}
	if _, err := NewHeader(1, "x", []int{1, 2, 3}, 32, 4, 0, true); err == nil {
		t.Error("3-D should fail")
	}
	if _, err := NewHeader(1, "x", []int{0}, 32, 4, 0, true); err == nil {
		t.Error("zero extent should fail")
	}
	if _, err := NewHeader(1, "x", []int{4}, 32, 4, 9, true); err == nil {
		t.Error("origin out of range should fail")
	}
	if h, err := NewHeader(1, "x", []int{4}, 0, 4, 0, true); err != nil || h.PageElems != 32 {
		t.Errorf("pageElems 0 should default to 32: %v %+v", err, h)
	}
}
