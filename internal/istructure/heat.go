package istructure

import "sort"

// The page-heat table is the shard's single source of truth about page
// residency and use. Every access path feeds it — cache probes
// (CacheLookup), page arrivals (InstallPage), evictions (evictAt), and
// owned-segment reads (ReadLocal) — and every consumer reads it back out:
// the CLOCK sweep's reference bits are heat deltas, refetch detection is
// the eviction-generation stamp, the steal-locality summaries (HotArrays,
// HotPages) rank by heat, and the streaming-prefetch scan detector is the
// per-page sequential-run length. Before this table the same facts lived
// in four places (per-slot ref bits, two generational eviction maps, an
// on-demand cache walk, and nothing at all for scans); now there is one
// record per (array, page) and four views of it.

// pageStat is one (array, page) entry of the heat table.
type pageStat struct {
	// slot is non-nil while the page is resident in the remote-page
	// cache; it is the same frame the CLOCK ring holds.
	slot *cacheSlot

	// owned marks a page that intersects this PE's owned segment (reads
	// of it never leave the shard). Owned pages are never cached, so
	// owned and slot are mutually exclusive in practice.
	owned bool

	// heat counts every touch of the page. The CLOCK reference bit is
	// derived, not stored: the page is "referenced" iff heat > sweep,
	// and clearing the bit is sweep = heat. A freshly installed page
	// starts with sweep == heat (unreferenced), exactly like the old
	// ring's ref=false entry.
	heat  int64
	sweep int64

	// touch is the instruction stamp (Shard.Now) of the latest access.
	touch int64

	// run is the sequential-run length ending at this page: touching
	// page p sets run to heat[p-1].run+1 when the preceding page has
	// been touched, else 1. A forward scan therefore carries a growing
	// run with it, which is the streaming-prefetch trigger.
	run int32

	// evicted/gen implement the refetch window: a page evicted in
	// generation g counts as a refetch if it is re-installed while the
	// shard is still in generation g or g+1 — the same two-generation
	// window (evictedGen evictions each) the old paired maps gave.
	evicted bool
	gen     int64
}

// maxRun caps the recorded run length (the detector only ever compares
// against small thresholds; the cap just keeps long scans from counting
// forever).
const maxRun = 1 << 20

// touchPage records one access to (id, page): bumps heat, stamps the
// touch time, and updates the sequential-run length. It returns the
// entry so callers can read residency or run state without a second
// lookup.
func (s *Shard) touchPage(id int64, page int) *pageStat {
	k := pageKey{id, page}
	e := s.heat[k]
	if e == nil {
		e = &pageStat{}
		s.heat[k] = e
	}
	e.heat++
	e.touch = s.Now
	run := int32(1)
	if page > 0 {
		if p := s.heat[pageKey{id, page - 1}]; p != nil && p.run > 0 && p.run < maxRun {
			run = p.run + 1
		}
	}
	e.run = run
	return e
}

// ScanRun reports the sequential-run length currently recorded at
// (id, page): how many consecutive pages, ending here, have been touched
// in ascending order. Zero when the page has never been touched.
func (s *Shard) ScanRun(id int64, page int) int32 {
	if e := s.heat[pageKey{id, page}]; e != nil {
		return e.run
	}
	return 0
}

// PageResident reports whether (id, page) is resident in the remote-page
// cache right now.
func (s *Shard) PageResident(id int64, page int) bool {
	e := s.heat[pageKey{id, page}]
	return e != nil && e.slot != nil
}

// PageLocal reports whether a read of (id, page) costs nothing remote:
// the page is cache-resident, or it lies in this PE's owned segment.
func (s *Shard) PageLocal(id int64, page int) bool {
	if s.PageResident(id, page) {
		return true
	}
	a := s.arrays[id]
	if a == nil {
		return false
	}
	h := a.h
	plo := page * h.PageElems
	phi := plo + h.PageElems
	if n := h.Elems(); phi > n {
		phi = n
	}
	return plo < a.base+len(a.vals) && phi > a.base
}

// HotPage is one entry of a page-granular locality summary: the page and
// its cumulative heat.
type HotPage struct {
	Arr  int64
	Page int
	Heat int64
}

// HotPages summarizes this shard's locality at page granularity for a
// steal request: the pages whose data is local here — cache-resident
// remote pages and touched owned pages — hottest first, at most limit
// entries. Unlike HotArrays, this carries signal even on a single shared
// array: each PE's summary names the *rows* it holds. Ties break on
// (array ID, page) so the summary is deterministic for a given state.
func (s *Shard) HotPages(limit int) []HotPage {
	if limit <= 0 {
		return nil
	}
	out := make([]HotPage, 0, len(s.heat))
	for k, e := range s.heat {
		if e.slot == nil && !e.owned {
			continue
		}
		out = append(out, HotPage{Arr: k.arr, Page: k.page, Heat: e.heat})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Heat != out[j].Heat {
			return out[i].Heat > out[j].Heat
		}
		if out[i].Arr != out[j].Arr {
			return out[i].Arr < out[j].Arr
		}
		return out[i].Page < out[j].Page
	})
	if len(out) > limit {
		out = out[:limit]
	}
	return out
}
