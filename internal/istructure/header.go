// Package istructure implements the paper's single-assignment array memory:
// I-structures with presence bits and deferred reads (§2, §5.1), row-major
// paging, segment-per-PE partitioning with the first-element row-ownership
// rule (§4.1, §4.2.3), and the software page cache used for remote reads
// (§4, "remote data caching").
package istructure

import (
	"fmt"

	"repro/internal/timing"
)

// Header is the array header built on every PE when an array is allocated:
// "the array dimensions and, for each dimension, the starting and ending
// indices", plus the paging/partitioning geometry each PE needs to locate
// owners and answer Range-Filter queries (§4.1).
//
// Arrays are 1-based along every dimension (Idlite convention, matching the
// paper's examples "for i = 1 to 50").
type Header struct {
	ID        int64
	Name      string
	Dims      []int // extent of each dimension
	PageElems int   // page size in elements
	NumPEs    int   // number of segments
	Dist      bool  // distributed (true) or purely local to Origin
	Origin    int   // allocating PE (owner of everything when !Dist)
}

// NewHeader validates the geometry and builds a header.
func NewHeader(id int64, name string, dims []int, pageElems, numPEs, origin int, dist bool) (*Header, error) {
	if len(dims) == 0 || len(dims) > 2 {
		return nil, fmt.Errorf("array %q: %d dimensions unsupported (1 or 2)", name, len(dims))
	}
	for _, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("array %q: non-positive extent %d", name, d)
		}
	}
	if pageElems <= 0 {
		pageElems = timing.DefaultPageElems
	}
	if numPEs <= 0 {
		return nil, fmt.Errorf("array %q: numPEs %d", name, numPEs)
	}
	if origin < 0 || origin >= numPEs {
		return nil, fmt.Errorf("array %q: origin PE %d out of [0,%d)", name, origin, numPEs)
	}
	h := &Header{ID: id, Name: name, Dims: append([]int(nil), dims...),
		PageElems: pageElems, NumPEs: numPEs, Dist: dist, Origin: origin}
	return h, nil
}

// Elems is the total number of elements.
func (h *Header) Elems() int {
	n := 1
	for _, d := range h.Dims {
		n *= d
	}
	return n
}

// RowLen is the length of one row (the extent of the last dimension).
func (h *Header) RowLen() int { return h.Dims[len(h.Dims)-1] }

// Pages is the number of fixed-size pages covering the array (§4.1 step 1:
// "the array is cut-up row-major into pages of a fixed size").
func (h *Header) Pages() int {
	return (h.Elems() + h.PageElems - 1) / h.PageElems
}

// Offset converts 1-based indices to the row-major linear offset, mirroring
// the paper's "offset = size_dim2 * i + j" pseudo-code. It returns an error
// for out-of-bounds accesses.
func (h *Header) Offset(idx []int64) (int, error) {
	if len(idx) != len(h.Dims) {
		return 0, fmt.Errorf("array %q: %d indices for %d dims", h.Name, len(idx), len(h.Dims))
	}
	off := 0
	for d, i := range idx {
		if i < 1 || i > int64(h.Dims[d]) {
			return 0, &BoundsError{Array: h.Name, Dim: d, Index: i, Extent: h.Dims[d]}
		}
		off = off*h.Dims[d] + int(i-1)
	}
	return off, nil
}

// PageOf returns the page index containing linear offset off.
func (h *Header) PageOf(off int) int { return off / h.PageElems }

// segment boundaries: pages are grouped into NumPEs segments of
// approximately equal size, assigned to PEs sequentially (§4.1 step 2).
// Segment p covers pages [pageLo(p), pageLo(p+1)).
func (h *Header) pageLo(pe int) int {
	// Distribute pages as evenly as possible: the first (pages % numPEs)
	// segments get one extra page.
	pages := h.Pages()
	q, r := pages/h.NumPEs, pages%h.NumPEs
	if pe <= r {
		return pe * (q + 1)
	}
	return r*(q+1) + (pe-r)*q
}

// SegmentPages returns the page range [lo, hi) assigned to a PE.
func (h *Header) SegmentPages(pe int) (lo, hi int) {
	if !h.Dist {
		if pe == h.Origin {
			return 0, h.Pages()
		}
		return 0, 0
	}
	return h.pageLo(pe), h.pageLo(pe + 1)
}

// SegmentElems returns the linear element range [lo, hi) owned by a PE.
func (h *Header) SegmentElems(pe int) (lo, hi int) {
	plo, phi := h.SegmentPages(pe)
	lo = plo * h.PageElems
	hi = phi * h.PageElems
	if n := h.Elems(); hi > n {
		hi = n
	}
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

// OwnerOf returns the PE owning the element at linear offset off.
func (h *Header) OwnerOf(off int) int {
	if !h.Dist {
		return h.Origin
	}
	page := h.PageOf(off)
	// Invert pageLo with the same quotient/remainder split.
	pages := h.Pages()
	q, r := pages/h.NumPEs, pages%h.NumPEs
	if q == 0 {
		// Fewer pages than PEs: page p belongs to PE p.
		if page < pages {
			return page
		}
		return h.NumPEs - 1
	}
	cut := r * (q + 1)
	if page < cut {
		return page / (q + 1)
	}
	return r + (page-cut)/q
}

// OwnedRows returns the inclusive 1-based range [lo, hi] of dimension-0
// indices ("rows") that a PE is *responsible for computing* under the
// first-element-ownership rule (§4.2.3): "the PE holding the first element
// of any given row is responsible for the entire row". It returns ok=false
// when the PE is responsible for no rows.
func (h *Header) OwnedRows(pe int) (lo, hi int64, ok bool) {
	rows := h.Dims[0]
	rowLen := 1
	if len(h.Dims) == 2 {
		rowLen = h.Dims[1]
	}
	elo, ehi := h.SegmentElems(pe)
	if elo >= ehi {
		return 0, 0, false
	}
	// Rows whose first element offset r*rowLen falls in [elo, ehi).
	first := (elo + rowLen - 1) / rowLen // ceil
	last := (ehi - 1) / rowLen
	if last > rows-1 {
		last = rows - 1
	}
	if first > last {
		return 0, 0, false
	}
	return int64(first + 1), int64(last + 1), true
}

// OwnedCols returns the inclusive 1-based range of dimension-1 indices of
// row `row` whose elements live in this PE's segment — the in-row Range
// Filter of Figure 5 ("the RF in PE1 produces the j range 0:255 when i is 0
// but only 0:127 when i is 1"). ok=false when the PE holds none of the row.
// For 1-D arrays, row is ignored and the owned element range is returned.
func (h *Header) OwnedCols(pe int, row int64) (lo, hi int64, ok bool) {
	elo, ehi := h.SegmentElems(pe)
	if elo >= ehi {
		return 0, 0, false
	}
	if len(h.Dims) == 1 {
		return int64(elo + 1), int64(ehi), true
	}
	if row < 1 || row > int64(h.Dims[0]) {
		return 0, 0, false
	}
	rowLen := h.Dims[1]
	rstart := int(row-1) * rowLen
	rend := rstart + rowLen // exclusive
	lo64 := max(elo, rstart)
	hi64 := min(ehi, rend)
	if lo64 >= hi64 {
		return 0, 0, false
	}
	return int64(lo64-rstart) + 1, int64(hi64 - rstart), true
}

// BoundsError reports an out-of-range array access.
type BoundsError struct {
	Array  string
	Dim    int
	Index  int64
	Extent int
}

func (e *BoundsError) Error() string {
	return fmt.Sprintf("array %q: index %d out of range [1,%d] in dim %d", e.Array, e.Index, e.Extent, e.Dim)
}
