package istructure

import (
	"fmt"
	"testing"

	"repro/internal/isa"
)

// Tests for the unified page-heat table: the CLOCK behavior it derives
// must be indistinguishable from the old per-slot ring it replaced, the
// sequential-scan detector must recognize exactly forward scans, and the
// HotPages summary must rank deterministically.

// refClock is a faithful reference model of the pre-heat cache: a CLOCK
// ring of explicit ref bits plus the paired generational eviction maps.
// The equivalence test drives it and the Shard with one op sequence and
// compares residency and counters after every op.
type refClock struct {
	ring                 []refSlot
	hand                 int
	cap                  int
	evicted, evictedPrev map[pageKey]struct{}
	evictions, refetches int64
}

type refSlot struct {
	key pageKey
	ref bool
}

func newRefClock(cap int) *refClock {
	return &refClock{cap: cap, evicted: map[pageKey]struct{}{}, evictedPrev: map[pageKey]struct{}{}}
}

func (r *refClock) find(k pageKey) int {
	for i, s := range r.ring {
		if s.key == k {
			return i
		}
	}
	return -1
}

func (r *refClock) lookup(k pageKey) bool {
	if i := r.find(k); i >= 0 {
		r.ring[i].ref = true
		return true
	}
	return false
}

func (r *refClock) victim() int {
	for {
		if r.hand >= len(r.ring) {
			r.hand = 0
		}
		if r.ring[r.hand].ref {
			r.ring[r.hand].ref = false
			r.hand++
			continue
		}
		return r.hand
	}
}

func (r *refClock) evictAt(i int) {
	if len(r.evicted) >= evictedGen {
		r.evictedPrev = r.evicted
		r.evicted = map[pageKey]struct{}{}
	}
	r.evicted[r.ring[i].key] = struct{}{}
	r.evictions++
}

func (r *refClock) install(k pageKey) {
	if i := r.find(k); i >= 0 {
		r.ring[i].ref = true
		return
	}
	if _, was := r.evicted[k]; was {
		r.refetches++
	} else if _, was := r.evictedPrev[k]; was {
		r.refetches++
	}
	if r.cap > 0 && len(r.ring) >= r.cap {
		i := r.victim()
		r.evictAt(i)
		r.ring[i] = refSlot{key: k}
		r.hand = i + 1
	} else {
		r.ring = append(r.ring, refSlot{key: k})
	}
}

// TestHeatTableClockEquivalence drives the heat-backed cache and the
// reference ring with the same deterministic pseudo-random sequence of
// installs and lookups and requires identical residency, eviction counts,
// and refetch counts at every step. The sequence stays under one refetch
// generation (< evictedGen evictions), where the old paired maps and the
// new per-entry generation stamps define the same window.
func TestHeatTableClockEquivalence(t *testing.T) {
	const (
		pageElems = 8
		cap       = 8
		arrays    = 3
		pages     = 20
		ops       = 15000
	)
	s := NewShard(1)
	hs := make([]*Header, arrays)
	for a := 0; a < arrays; a++ {
		h, err := NewHeader(int64(a+1), fmt.Sprintf("A%d", a), []int{32, 32}, pageElems, 2, 0, true)
		if err != nil {
			t.Fatal(err)
		}
		hs[a] = h
		if err := s.Install(h); err != nil {
			t.Fatal(err)
		}
	}
	s.CacheCap = cap
	ref := newRefClock(cap)

	rng := uint64(42)
	next := func(n int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		return int((rng >> 33) % uint64(n))
	}
	for op := 0; op < ops; op++ {
		a := next(arrays)
		p := next(pages)
		k := pageKey{int64(a + 1), p}
		if next(5) < 2 { // 40% installs, 60% lookups
			s.InstallPage(k.arr, p, &CachedPage{Vals: make([]isa.Value, pageElems), Set: make([]bool, pageElems)})
			ref.install(k)
		} else {
			_, hitPage, _ := s.CacheLookup(k.arr, hs[a], p*pageElems)
			if got := ref.lookup(k); got != hitPage {
				t.Fatalf("op %d: lookup residency of %v diverged: shard=%v ref=%v", op, k, hitPage, got)
			}
		}
		if s.CachedPages() != len(ref.ring) {
			t.Fatalf("op %d: resident count diverged: shard=%d ref=%d", op, s.CachedPages(), len(ref.ring))
		}
		if s.Evictions != ref.evictions {
			t.Fatalf("op %d: evictions diverged: shard=%d ref=%d", op, s.Evictions, ref.evictions)
		}
		if s.Refetches != ref.refetches {
			t.Fatalf("op %d: refetches diverged: shard=%d ref=%d", op, s.Refetches, ref.refetches)
		}
	}
	if s.Evictions == 0 || s.Refetches == 0 {
		t.Fatalf("vacuous equivalence: %d evictions, %d refetches", s.Evictions, s.Refetches)
	}
	if s.Evictions >= evictedGen {
		t.Fatalf("%d evictions crossed the generation bound %d — the reference window no longer matches", s.Evictions, evictedGen)
	}
}

// TestScanRunDetector: the sequential-run length grows along a forward
// scan, resets on a jump, and restarts at 1 on an isolated touch.
func TestScanRunDetector(t *testing.T) {
	h, err := NewHeader(1, "A", []int{64, 8}, 8, 2, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	s := NewShard(1)
	if err := s.Install(h); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		touches []int // page indices, in order
		page    int   // query
		want    int32
	}{
		{"single touch", []int{3}, 3, 1},
		{"forward pair", []int{3, 4}, 4, 2},
		{"forward run of four", []int{2, 3, 4, 5}, 5, 4},
		{"jump resets", []int{2, 3, 9}, 9, 1},
		{"backward scan never accumulates", []int{5, 4, 3}, 3, 1},
		{"untouched page", []int{1, 2}, 7, 0},
		{"re-touch keeps run", []int{2, 3, 3}, 3, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sh := NewShard(1)
			if err := sh.Install(h); err != nil {
				t.Fatal(err)
			}
			for _, p := range tc.touches {
				sh.CacheLookup(1, h, p*h.PageElems)
			}
			if got := sh.ScanRun(1, tc.page); got != tc.want {
				t.Fatalf("ScanRun(%d) after %v = %d, want %d", tc.page, tc.touches, got, tc.want)
			}
		})
	}
}

// TestHotPages: the page-granular locality summary ranks resident and
// owned pages by heat, breaks ties by (array, page), and respects the
// limit; pages that were touched but never resident stay out.
func TestHotPages(t *testing.T) {
	ha, _ := NewHeader(1, "A", []int{16, 16}, 8, 2, 0, true)
	hb, _ := NewHeader(2, "B", []int{16, 16}, 8, 2, 0, true)
	s := NewShard(1)
	_ = s.Install(ha)
	_ = s.Install(hb)
	if got := s.HotPages(4); len(got) != 0 {
		t.Fatalf("empty shard HotPages = %v, want none", got)
	}
	pg := func() *CachedPage { return &CachedPage{Vals: make([]isa.Value, 8), Set: make([]bool, 8)} }
	s.InstallPage(1, 0, pg())
	s.InstallPage(2, 3, pg())
	// Heat page (2,3) twice, (1,0) once.
	s.CacheLookup(2, hb, 3*8)
	s.CacheLookup(2, hb, 3*8)
	s.CacheLookup(1, ha, 0)
	// A touched-but-absent page must not appear.
	s.CacheLookup(1, ha, 9*8)
	got := s.HotPages(8)
	if len(got) != 2 || got[0].Arr != 2 || got[0].Page != 3 || got[1].Arr != 1 || got[1].Page != 0 {
		t.Fatalf("HotPages = %+v, want [(2,3) (1,0)] by heat", got)
	}
	if got := s.HotPages(1); len(got) != 1 || got[0].Arr != 2 {
		t.Fatalf("HotPages(1) = %+v, want only (2,3)", got)
	}
	// Equal heat ties break on (array, page).
	s.CacheLookup(1, ha, 0) // now both heat-equal
	got = s.HotPages(8)
	if len(got) != 2 || got[0].Arr != 1 {
		t.Fatalf("HotPages with equal heat = %+v, want (1,0) first by ID", got)
	}
}
