package istructure

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func newTestShards(t *testing.T, dims []int, pes int) ([]*Shard, *Header) {
	t.Helper()
	h, err := NewHeader(1, "A", dims, 8, pes, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	shards := make([]*Shard, pes)
	for pe := 0; pe < pes; pe++ {
		shards[pe] = NewShard(pe)
		if err := shards[pe].Install(h); err != nil {
			t.Fatal(err)
		}
	}
	return shards, h
}

func TestWriteThenRead(t *testing.T) {
	shards, h := newTestShards(t, []int{4, 4}, 2)
	off, _ := h.Offset([]int64{1, 2})
	owner := h.OwnerOf(off)
	if _, _, err := shards[owner].Write(1, off, isa.Float(3.5)); err != nil {
		t.Fatal(err)
	}
	v, res, err := shards[owner].ReadLocal(1, off, Waiter{})
	if err != nil || res != ReadHit || v.F != 3.5 {
		t.Fatalf("read = %v res=%d err=%v, want hit 3.5", v, res, err)
	}
}

func TestDeferredReadReleasedByWrite(t *testing.T) {
	shards, h := newTestShards(t, []int{4, 4}, 2)
	off, _ := h.Offset([]int64{1, 1})
	owner := h.OwnerOf(off)
	w := Waiter{PE: 1, SP: 42, Slot: 7}
	_, res, err := shards[owner].ReadLocal(1, off, w)
	if err != nil || res != ReadDeferred {
		t.Fatalf("res=%d err=%v, want deferred", res, err)
	}
	if shards[owner].DeferredReads != 1 {
		t.Errorf("DeferredReads = %d, want 1", shards[owner].DeferredReads)
	}
	local, remote, err := shards[owner].Write(1, off, isa.Int(9))
	if err != nil {
		t.Fatal(err)
	}
	if len(local) != 1 || local[0] != w {
		t.Fatalf("released local waiters %v, want [%v]", local, w)
	}
	if len(remote) != 0 {
		t.Fatalf("released remote waiters %v, want none", remote)
	}
	// A second write must be a single-assignment violation.
	_, _, err = shards[owner].Write(1, off, isa.Int(10))
	var sav *SingleAssignmentError
	if !errors.As(err, &sav) {
		t.Fatalf("second write err = %v, want SingleAssignmentError", err)
	}
}

func TestRemoteWaiterReleasedByWrite(t *testing.T) {
	shards, h := newTestShards(t, []int{4, 4}, 2)
	off, _ := h.Offset([]int64{1, 1})
	owner := h.OwnerOf(off)
	rw := RemoteWaiter{PE: 1, SP: 5, Slot: 3}
	if err := shards[owner].QueueRemote(1, off, rw); err != nil {
		t.Fatal(err)
	}
	_, remote, err := shards[owner].Write(1, off, isa.Int(1))
	if err != nil || len(remote) != 1 || remote[0] != rw {
		t.Fatalf("remote=%v err=%v, want [%v]", remote, err, rw)
	}
}

func TestReadNotOwnedIsRemote(t *testing.T) {
	shards, h := newTestShards(t, []int{4, 4}, 2)
	// Find an offset owned by PE1 and read it from PE0's shard.
	off := 0
	for o := 0; o < h.Elems(); o++ {
		if h.OwnerOf(o) == 1 {
			off = o
			break
		}
	}
	_, res, err := shards[0].ReadLocal(1, off, Waiter{})
	if err != nil || res != ReadRemote {
		t.Fatalf("res=%d err=%v, want remote", res, err)
	}
}

func TestPageExtractInstallLookup(t *testing.T) {
	shards, h := newTestShards(t, []int{4, 4}, 2)
	off, _ := h.Offset([]int64{1, 3})
	owner := h.OwnerOf(off)
	if _, _, err := shards[owner].Write(1, off, isa.Float(2.25)); err != nil {
		t.Fatal(err)
	}
	pageIdx, pg, elems, err := shards[owner].ExtractPage(1, off)
	if err != nil {
		t.Fatal(err)
	}
	if elems != 8 {
		t.Errorf("page elems = %d, want 8", elems)
	}
	other := 1 - owner
	shards[other].InstallPage(1, pageIdx, pg)
	v, hitPage, hitElem := shards[other].CacheLookup(1, h, off)
	if !hitPage || !hitElem || v.F != 2.25 {
		t.Fatalf("cache lookup = %v %v %v, want hit 2.25", v, hitPage, hitElem)
	}
	// An element absent at extraction time stays a miss.
	off2, _ := h.Offset([]int64{1, 4})
	if h.PageOf(off2) != pageIdx {
		t.Fatalf("test setup: offsets not on same page")
	}
	_, hitPage, hitElem = shards[other].CacheLookup(1, h, off2)
	if !hitPage || hitElem {
		t.Fatalf("absent element: hitPage=%v hitElem=%v, want true,false", hitPage, hitElem)
	}
}

func TestDoubleInstallFails(t *testing.T) {
	shards, h := newTestShards(t, []int{4}, 1)
	if err := shards[0].Install(h); err == nil {
		t.Fatal("double install should fail")
	}
}

// TestIStructureChurchRosser property: for a random set of (offset, value)
// writes and interleaved reads in any order, every read eventually observes
// exactly the written value — reads before the write are deferred and then
// released with the same value.
func TestIStructureChurchRosser(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h, err := NewHeader(1, "A", []int{16}, 8, 1, 0, true)
		if err != nil {
			return false
		}
		s := NewShard(0)
		if err := s.Install(h); err != nil {
			return false
		}
		want := make(map[int]int64)
		type pending struct {
			off int
			w   Waiter
		}
		released := make(map[Waiter]isa.Value)
		var ops []int // offsets to write, shuffled
		for o := 0; o < 16; o++ {
			want[o] = rng.Int63n(1000)
			ops = append(ops, o)
		}
		rng.Shuffle(len(ops), func(i, j int) { ops[i], ops[j] = ops[j], ops[i] })
		got := make(map[Waiter]isa.Value)
		wid := int64(0)
		// Interleave reads and writes randomly.
		reads := make([]pending, 0, 32)
		for o := 0; o < 16; o++ {
			reads = append(reads, pending{o, Waiter{SP: wid, Slot: o}})
			wid++
			reads = append(reads, pending{o, Waiter{SP: wid, Slot: o}})
			wid++
		}
		rng.Shuffle(len(reads), func(i, j int) { reads[i], reads[j] = reads[j], reads[i] })
		ri, wi := 0, 0
		for ri < len(reads) || wi < len(ops) {
			doRead := ri < len(reads) && (wi >= len(ops) || rng.Intn(2) == 0)
			if doRead {
				p := reads[ri]
				ri++
				v, res, err := s.ReadLocal(1, p.off, p.w)
				if err != nil {
					return false
				}
				if res == ReadHit {
					got[p.w] = v
				}
			} else {
				o := ops[wi]
				wi++
				local, _, err := s.Write(1, o, isa.Int(want[o]))
				if err != nil {
					return false
				}
				for _, w := range local {
					released[w] = isa.Int(want[o])
				}
			}
		}
		for _, p := range reads {
			var v isa.Value
			var ok bool
			if v, ok = got[p.w]; !ok {
				if v, ok = released[p.w]; !ok {
					return false // read never satisfied
				}
			}
			if v.I != want[p.off] {
				return false
			}
		}
		return s.PendingReads() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestCacheNeverContradictsOwner property: a cached page entry, once
// present, always equals the owner's value — the single-assignment
// coherence argument of §4 ("a cached page will never have to be sent
// back").
func TestCacheNeverContradictsOwner(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h, err := NewHeader(1, "A", []int{8, 8}, 8, 2, 0, true)
		if err != nil {
			return false
		}
		owner, reader := NewShard(0), NewShard(1)
		if owner.Install(h) != nil || reader.Install(h) != nil {
			return false
		}
		lo, hi := h.SegmentElems(0)
		// Random interleaving of writes on PE0 and page pulls into PE1.
		offs := rng.Perm(hi - lo)
		for step, k := range offs {
			if _, _, err := owner.Write(1, lo+k, isa.Int(int64(k*7))); err != nil {
				return false
			}
			if step%3 == 0 {
				pageIdx, pg, _, err := owner.ExtractPage(1, lo+k)
				if err != nil {
					return false
				}
				reader.InstallPage(1, pageIdx, pg)
			}
		}
		// Every cached-present element must equal the owner's value.
		for off := lo; off < hi; off++ {
			cv, _, hitElem := reader.CacheLookup(1, h, off)
			if !hitElem {
				continue
			}
			ov, present := owner.Peek(1, off)
			if !present || !cv.Equal(ov) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestExtractPageErrors(t *testing.T) {
	s := NewShard(0)
	if _, _, _, err := s.ExtractPage(9, 0); err == nil {
		t.Fatal("unknown array should fail")
	}
	h, _ := NewHeader(1, "A", []int{16}, 8, 2, 0, true)
	_ = s.Install(h)
	// Offset owned by the other PE.
	if _, _, _, err := s.ExtractPage(1, 15); err == nil {
		t.Fatal("non-owned page should fail")
	}
}

// cachePage builds a full present page snapshot for cache tests.
func cachePage(elems int, base float64) *CachedPage {
	pg := &CachedPage{Vals: make([]isa.Value, elems), Set: make([]bool, elems)}
	for i := range pg.Vals {
		pg.Vals[i] = isa.Float(base + float64(i))
		pg.Set[i] = true
	}
	return pg
}

// TestCacheCapNeverExceeded: installing any number of pages keeps the
// resident count at or below CacheCap, and each overflow install evicts
// exactly one page.
func TestCacheCapNeverExceeded(t *testing.T) {
	h, _ := NewHeader(1, "A", []int{16, 16}, 8, 2, 0, true)
	s := NewShard(1)
	_ = s.Install(h)
	s.CacheCap = 3
	for p := 0; p < 20; p++ {
		s.InstallPage(1, p, cachePage(8, float64(p)))
		if got := s.CachedPages(); got > s.CacheCap {
			t.Fatalf("after installing page %d: %d resident pages, cap %d", p, got, s.CacheCap)
		}
	}
	if s.CachedPages() != 3 {
		t.Fatalf("resident = %d, want 3 (full cache)", s.CachedPages())
	}
	if s.Evictions != 17 {
		t.Fatalf("evictions = %d, want 17 (20 installs into 3 frames)", s.Evictions)
	}
	// Reinstalling the same resident page must not evict anything.
	before := s.Evictions
	s.InstallPage(1, 19, cachePage(8, 99))
	if s.Evictions != before || s.CachedPages() != 3 {
		t.Fatalf("refresh of resident page evicted (evictions %d→%d)", before, s.Evictions)
	}
}

// TestCacheClockSecondChance: a page referenced since the last sweep
// survives the next eviction; the unreferenced one goes.
func TestCacheClockSecondChance(t *testing.T) {
	h, _ := NewHeader(1, "A", []int{8, 8}, 8, 2, 0, true)
	s := NewShard(1)
	_ = s.Install(h)
	s.CacheCap = 2
	s.InstallPage(1, 0, cachePage(8, 0))
	s.InstallPage(1, 1, cachePage(8, 10))
	// Touch page 0: its CLOCK reference bit is now set.
	if _, hitPage, hitElem := s.CacheLookup(1, h, 0); !hitPage || !hitElem {
		t.Fatal("probe of resident page 0 missed")
	}
	// Page 2 forces an eviction: page 1 (unreferenced) must be the victim,
	// page 0 gets its second chance.
	s.InstallPage(1, 2, cachePage(8, 20))
	if _, hitPage, _ := s.CacheLookup(1, h, 0); !hitPage {
		t.Fatal("referenced page 0 was evicted — no second chance")
	}
	if _, hitPage, _ := s.CacheLookup(1, h, 8); hitPage {
		t.Fatal("unreferenced page 1 survived while the cache overflowed")
	}
	if _, hitPage, _ := s.CacheLookup(1, h, 16); !hitPage {
		t.Fatal("just-installed page 2 not resident")
	}
	if s.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", s.Evictions)
	}
	// Re-installing the evicted page is a refetch.
	s.InstallPage(1, 1, cachePage(8, 10))
	if s.Refetches != 1 {
		t.Fatalf("refetches = %d, want 1", s.Refetches)
	}
	// First-time installs never counted as refetches.
	if s.CachedPages() > s.CacheCap {
		t.Fatalf("resident %d exceeds cap %d", s.CachedPages(), s.CacheCap)
	}
}

// TestCacheUnboundedByDefault: CacheCap 0 keeps the pre-eviction behavior.
func TestCacheUnboundedByDefault(t *testing.T) {
	h, _ := NewHeader(1, "A", []int{32, 32}, 8, 2, 0, true)
	s := NewShard(1)
	_ = s.Install(h)
	for p := 0; p < 64; p++ {
		s.InstallPage(1, p, cachePage(8, float64(p)))
	}
	if s.CachedPages() != 64 || s.Evictions != 0 || s.Refetches != 0 {
		t.Fatalf("resident=%d evictions=%d refetches=%d, want 64/0/0",
			s.CachedPages(), s.Evictions, s.Refetches)
	}
}

// TestHotArrays: the steal-request summary ranks arrays by resident page
// count, breaks ties by ID, and respects the limit.
func TestHotArrays(t *testing.T) {
	s := NewShard(1)
	ha, _ := NewHeader(1, "A", []int{16, 16}, 8, 2, 0, true)
	hb, _ := NewHeader(2, "B", []int{16, 16}, 8, 2, 0, true)
	hc, _ := NewHeader(3, "C", []int{16, 16}, 8, 2, 0, true)
	for _, h := range []*Header{ha, hb, hc} {
		_ = s.Install(h)
	}
	if got := s.HotArrays(4); len(got) != 0 {
		t.Fatalf("empty cache HotArrays = %v, want none", got)
	}
	s.InstallPage(2, 0, cachePage(8, 0))
	s.InstallPage(2, 1, cachePage(8, 0))
	s.InstallPage(1, 0, cachePage(8, 0))
	s.InstallPage(3, 0, cachePage(8, 0))
	got := s.HotArrays(4)
	if len(got) != 3 || got[0] != 2 || got[1] != 1 || got[2] != 3 {
		t.Fatalf("HotArrays = %v, want [2 1 3] (B hottest, then ties by ID)", got)
	}
	if got := s.HotArrays(1); len(got) != 1 || got[0] != 2 {
		t.Fatalf("HotArrays(1) = %v, want [2]", got)
	}
	// An array wholly homed at this PE (non-distributed, allocated here)
	// outranks every cached array: its reads are free shard hits.
	hd, _ := NewHeader(4, "D", []int{4}, 8, 2, 1, false)
	_ = s.Install(hd)
	got = s.HotArrays(4)
	if len(got) != 4 || got[0] != 4 {
		t.Fatalf("HotArrays = %v, want the home-owned array 4 ranked first", got)
	}
}

func TestFilledAndPendingCounters(t *testing.T) {
	h, _ := NewHeader(1, "A", []int{8}, 8, 1, 0, true)
	s := NewShard(0)
	_ = s.Install(h)
	if s.Filled(1) != 0 {
		t.Fatal("fresh array should be empty")
	}
	_, res, _ := s.ReadLocal(1, 3, Waiter{SP: 1, Slot: 0})
	if res != ReadDeferred || s.PendingReads() != 1 {
		t.Fatalf("res=%v pending=%d", res, s.PendingReads())
	}
	if _, _, err := s.Write(1, 3, isa.Float(1)); err != nil {
		t.Fatal(err)
	}
	if s.PendingReads() != 0 || s.Filled(1) != 1 {
		t.Fatalf("pending=%d filled=%d", s.PendingReads(), s.Filled(1))
	}
}

// TestIdempotentRewrite: in Idempotent mode (failure recovery) a second
// write of the bit-identical value is absorbed as a no-op, releasing
// nothing (the first write already released every waiter), while a
// mismatched rewrite still fails loudly — it proves the program, or the
// recovery, is broken.
func TestIdempotentRewrite(t *testing.T) {
	shards, h := newTestShards(t, []int{4, 4}, 2)
	s := shards[0]
	s.Idempotent = true
	off, _ := h.Offset([]int64{1, 2})

	if _, _, err := s.Write(1, off, isa.Float(2.5)); err != nil {
		t.Fatal(err)
	}
	local, remote, err := s.Write(1, off, isa.Float(2.5))
	if err != nil {
		t.Fatalf("identical rewrite errored: %v", err)
	}
	if len(local) != 0 || len(remote) != 0 {
		t.Fatalf("identical rewrite released %d/%d waiters", len(local), len(remote))
	}
	if s.DupWrites != 1 {
		t.Fatalf("DupWrites = %d, want 1", s.DupWrites)
	}

	var saErr *SingleAssignmentError
	if _, _, err := s.Write(1, off, isa.Float(3.5)); !errors.As(err, &saErr) {
		t.Fatalf("mismatched rewrite got %v, want single-assignment violation", err)
	}
	// Same float value but different kind is a mismatch too: equality is
	// bit-exact over the whole value, not a numeric comparison.
	if _, _, err := s.Write(1, off, isa.Int(2)); !errors.As(err, &saErr) {
		t.Fatalf("cross-kind rewrite got %v, want single-assignment violation", err)
	}
}

// TestIdempotentRewriteOffByDefault pins that strict single assignment is
// the default: without Idempotent even a bit-identical rewrite fails.
func TestIdempotentRewriteOffByDefault(t *testing.T) {
	shards, h := newTestShards(t, []int{4, 4}, 2)
	off, _ := h.Offset([]int64{1, 2})
	if _, _, err := shards[0].Write(1, off, isa.Float(1)); err != nil {
		t.Fatal(err)
	}
	var saErr *SingleAssignmentError
	if _, _, err := shards[0].Write(1, off, isa.Float(1)); !errors.As(err, &saErr) {
		t.Fatalf("got %v, want single-assignment violation", err)
	}
}

// TestIdempotentDuplicateInstall: recovery re-broadcasts every known
// header, so a duplicate install must be a no-op in Idempotent mode (and
// keep failing otherwise — see TestDoubleInstallFails).
func TestIdempotentDuplicateInstall(t *testing.T) {
	shards, h := newTestShards(t, []int{4, 4}, 2)
	shards[0].Idempotent = true
	off, _ := h.Offset([]int64{1, 2})
	if _, _, err := shards[0].Write(1, off, isa.Float(7)); err != nil {
		t.Fatal(err)
	}
	if err := shards[0].Install(h); err != nil {
		t.Fatalf("duplicate install errored: %v", err)
	}
	// The re-install must not have wiped the segment.
	if v, ok := shards[0].Peek(1, off); !ok || v.AsFloat() != 7 {
		t.Fatalf("Peek after duplicate install = %v/%v, want 7/true", v, ok)
	}
}
