package istructure

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/isa"
)

// Waiter identifies a deferred read: when the element is finally written,
// the value must be delivered to slot Slot of SP instance SP on PE PE.
type Waiter struct {
	PE   int
	SP   int64
	Slot int
}

// RemoteWaiter records a PE that asked for a page element that was absent;
// on write, the owner sends the (now fuller) page to that PE (§5.1 Array
// Manager: "if it is absent, the request is queued in the target PE").
type RemoteWaiter struct {
	PE   int
	SP   int64
	Slot int
}

// Shard is one PE's slice of I-structure memory: for each array, the
// elements of the pages in this PE's segment, with presence bits and
// deferred-read queues, plus this PE's software page cache of remote data.
//
// The cache can be memory-bounded: with CacheCap > 0 at most that many
// remote pages stay resident, evicted CLOCK/second-chance style. Only
// cached (remote) pages are ever evicted — owned segments are the array's
// home storage and must persist — and single assignment means an eviction
// can cost a refetch of the same immutable data but never correctness.
type Shard struct {
	PE     int
	arrays map[int64]*localArray

	// heat is the unified page-heat table (see heat.go): one entry per
	// (array, page) this shard has touched, holding cache residency, the
	// reference/heat counter, the last-touch stamp, the sequential-run
	// length, and the eviction generation. CLOCK eviction, refetch
	// detection, steal-locality summaries, and the prefetch scan
	// detector are all views over this table.
	heat map[pageKey]*pageStat

	// Now is the caller-maintained instruction stamp used for the heat
	// table's last-touch times (the worker sets it to its executed
	// instruction count, giving deterministic stamps per PE).
	Now int64

	// CacheCap bounds the number of resident cached remote pages; 0 means
	// unbounded (the pre-eviction behavior). Set it before any page is
	// installed. It may be raised or lowered mid-run (the adaptive cap
	// does); a lowered cap takes effect at the next page install.
	CacheCap int

	// Idempotent tolerates a second write of the *identical* value to an
	// already-written element as a no-op (counted in DupWrites) instead of
	// failing it as a single-assignment violation. Failure recovery re-
	// executes a dead PE's work, and single assignment guarantees a
	// deterministic program regenerates exactly the values it wrote the
	// first time — so absorbing the duplicates is sound, while a
	// *mismatched* rewrite still proves the program (or the recovery) is
	// broken and keeps failing loudly.
	Idempotent bool

	// OnEvict, when non-nil, observes every page eviction (the cluster's
	// trace recorder hooks it). Called from evictAt, the single point a
	// cached page leaves the shard, with the page's array ID and index.
	OnEvict func(arr int64, page int)

	// clock is the CLOCK ring over resident cached pages: hand sweeps it
	// clearing reference bits until it finds an unreferenced victim. The
	// reference bits themselves live in the heat table (referenced iff
	// heat > sweep). New pages enter unreferenced, so a page that is
	// never probed again after its install is the first to go.
	clock []*cacheSlot
	hand  int

	// evictGen / evictGenCount implement the refetch window over the
	// heat table: each eviction stamps its entry with the current
	// generation, and a re-install counts as a refetch if the stamp is
	// within the last two generations (evictedGen evictions each) —
	// the same window the old paired eviction maps gave. Rotating a
	// generation also prunes heat entries that have aged out of the
	// window, so the table stays bounded at the cost of undercounting
	// refetches whose reuse distance exceeds two generations (a
	// statistic, never correctness).
	evictGen      int64
	evictGenCount int

	// Stats.
	DeferredReads int64 // reads enqueued on absent local elements
	CacheHits     int64 // remote reads satisfied from the page cache
	CacheMisses   int64 // remote reads that had to fetch a page
	Evictions     int64 // cached pages evicted by the CLOCK bound
	Refetches     int64 // page installs that re-fetch a previously evicted page
	DupWrites     int64 // identical rewrites absorbed by Idempotent mode
}

// pageKey identifies one cached page.
type pageKey struct {
	arr  int64
	page int
}

// cacheSlot is one resident cached page — a frame of the CLOCK ring. Its
// reference state lives in the heat-table entry it points back to.
type cacheSlot struct {
	arr  int64
	page int
	pg   *CachedPage
	st   *pageStat
}

type localArray struct {
	h    *Header
	base int // linear offset of first owned element
	vals []isa.Value
	set  []bool
	// waiting maps owned linear offset → local waiters (deferred reads).
	waiting map[int][]Waiter
	// remoteWaiting maps owned linear offset → remote PEs to send the page
	// to once the element is written.
	remoteWaiting map[int][]RemoteWaiter
}

// CachedPage is a snapshot of a remote page: values plus presence bits as of
// the time the page was shipped. Single assignment means entries never go
// stale — absent entries may be filled by a later refetch, present entries
// are final (§4: "a cached page will never have to be sent back").
type CachedPage struct {
	Vals []isa.Value
	Set  []bool
}

// NewShard returns an empty shard for a PE.
func NewShard(pe int) *Shard {
	return &Shard{
		PE:     pe,
		arrays: make(map[int64]*localArray),
		heat:   make(map[pageKey]*pageStat),
	}
}

// Install allocates this PE's segment of an array described by h. Every PE
// installs the same header (the distributing allocate broadcast of §4.1).
// In Idempotent mode a duplicate install is a no-op: recovery re-broadcasts
// every known header because any single broadcast may have died on the
// wire with its sender.
func (s *Shard) Install(h *Header) error {
	if _, dup := s.arrays[h.ID]; dup {
		if s.Idempotent {
			return nil
		}
		return fmt.Errorf("pe %d: array id %d already installed", s.PE, h.ID)
	}
	lo, hi := h.SegmentElems(s.PE)
	n := hi - lo
	s.arrays[h.ID] = &localArray{
		h:             h,
		base:          lo,
		vals:          make([]isa.Value, n),
		set:           make([]bool, n),
		waiting:       make(map[int][]Waiter),
		remoteWaiting: make(map[int][]RemoteWaiter),
	}
	return nil
}

// Header returns the installed header for an array ID, or nil.
func (s *Shard) Header(id int64) *Header {
	if a := s.arrays[id]; a != nil {
		return a.h
	}
	return nil
}

// Owns reports whether linear offset off of array id is in this PE's
// segment.
func (s *Shard) Owns(id int64, off int) bool {
	a := s.arrays[id]
	if a == nil {
		return false
	}
	return off >= a.base && off < a.base+len(a.vals)
}

// ReadResult describes the outcome of a local read attempt.
type ReadResult uint8

// Read outcomes.
const (
	ReadHit      ReadResult = iota + 1 // value present, returned
	ReadDeferred                       // element absent; waiter enqueued
	ReadRemote                         // element not owned by this PE
)

// ReadLocal attempts to read an owned element; if absent, the waiter is
// queued (I-structure deferred read). Returns ReadRemote when the offset is
// not in this PE's segment.
func (s *Shard) ReadLocal(id int64, off int, w Waiter) (isa.Value, ReadResult, error) {
	a := s.arrays[id]
	if a == nil {
		return isa.Value{}, 0, fmt.Errorf("pe %d: read of unknown array %d", s.PE, id)
	}
	i := off - a.base
	if i < 0 || i >= len(a.vals) {
		return isa.Value{}, ReadRemote, nil
	}
	// Owned-segment accesses feed the heat table too: an owned page a PE
	// keeps reading is exactly the locality a page-granular steal summary
	// should advertise.
	s.touchPage(id, a.h.PageOf(off)).owned = true
	if a.set[i] {
		return a.vals[i], ReadHit, nil
	}
	a.waiting[off] = append(a.waiting[off], w)
	s.DeferredReads++
	return isa.Value{}, ReadDeferred, nil
}

// Peek returns the element value if owned and present (no side effects).
func (s *Shard) Peek(id int64, off int) (isa.Value, bool) {
	a := s.arrays[id]
	if a == nil {
		return isa.Value{}, false
	}
	i := off - a.base
	if i < 0 || i >= len(a.vals) || !a.set[i] {
		return isa.Value{}, false
	}
	return a.vals[i], true
}

// SingleAssignmentError reports a second write to an I-structure element
// ("attempts to rewrite a value [are reported] as a single-assignment
// violation", §2).
type SingleAssignmentError struct {
	Array string
	Off   int
}

func (e *SingleAssignmentError) Error() string {
	return fmt.Sprintf("single-assignment violation: array %q element offset %d written twice", e.Array, e.Off)
}

// Write stores an owned element and returns the local waiters and remote
// page-waiters to release. A second write to the same element is a
// single-assignment violation.
func (s *Shard) Write(id int64, off int, v isa.Value) (local []Waiter, remote []RemoteWaiter, err error) {
	a := s.arrays[id]
	if a == nil {
		return nil, nil, fmt.Errorf("pe %d: write to unknown array %d", s.PE, id)
	}
	i := off - a.base
	if i < 0 || i >= len(a.vals) {
		return nil, nil, fmt.Errorf("pe %d: write to non-owned offset %d of array %q", s.PE, off, a.h.Name)
	}
	if a.set[i] {
		if s.Idempotent && sameValue(a.vals[i], v) {
			// A replayed write landing on its own first execution's result:
			// the element is already present, so any waiters were released
			// by the original write and there is nothing left to do.
			s.DupWrites++
			return nil, nil, nil
		}
		return nil, nil, &SingleAssignmentError{Array: a.h.Name, Off: off}
	}
	a.vals[i] = v
	a.set[i] = true
	local = a.waiting[off]
	delete(a.waiting, off)
	remote = a.remoteWaiting[off]
	delete(a.remoteWaiting, off)
	return local, remote, nil
}

// sameValue reports bit-exact value equality (floats compared by their
// bits, so a NaN rewrite of the same NaN is still "identical").
func sameValue(a, b isa.Value) bool {
	return a.Kind == b.Kind && a.I == b.I &&
		math.Float64bits(a.F) == math.Float64bits(b.F)
}

// QueueRemote records a remote PE waiting for an absent owned element
// (a deferred read whose reader lives on another PE, §5.1).
func (s *Shard) QueueRemote(id int64, off int, rw RemoteWaiter) error {
	a := s.arrays[id]
	if a == nil {
		return fmt.Errorf("pe %d: remote queue on unknown array %d", s.PE, id)
	}
	i := off - a.base
	if i < 0 || i >= len(a.vals) {
		return fmt.Errorf("pe %d: remote queue on non-owned offset %d", s.PE, off)
	}
	a.remoteWaiting[off] = append(a.remoteWaiting[off], rw)
	s.DeferredReads++
	return nil
}

// ExtractPage snapshots the owned page containing off for shipment to a
// requester ("this PE extracts the entire page containing that element and
// returns it", §4). The snapshot covers the intersection of the page with
// this PE's segment.
func (s *Shard) ExtractPage(id int64, off int) (pageIdx int, pg *CachedPage, elems int, err error) {
	a := s.arrays[id]
	if a == nil {
		return 0, nil, 0, fmt.Errorf("pe %d: extract page of unknown array %d", s.PE, id)
	}
	h := a.h
	pageIdx = h.PageOf(off)
	plo := pageIdx * h.PageElems
	phi := plo + h.PageElems
	if n := h.Elems(); phi > n {
		phi = n
	}
	lo := max(plo, a.base)
	hi := min(phi, a.base+len(a.vals))
	if lo >= hi {
		return 0, nil, 0, fmt.Errorf("pe %d: page %d of array %q not owned", s.PE, pageIdx, h.Name)
	}
	n := phi - plo
	pg = &CachedPage{Vals: make([]isa.Value, n), Set: make([]bool, n)}
	for o := lo; o < hi; o++ {
		pg.Vals[o-plo] = a.vals[o-a.base]
		pg.Set[o-plo] = a.set[o-a.base]
	}
	return pageIdx, pg, n, nil
}

// InstallPage stores a received remote page in the software cache,
// overwriting any older (necessarily subset) snapshot. With CacheCap set,
// installing a page beyond the cap first evicts a resident page chosen by
// the CLOCK sweep; re-installing a previously evicted page counts as a
// refetch.
func (s *Shard) InstallPage(id int64, pageIdx int, pg *CachedPage) {
	k := pageKey{id, pageIdx}
	e := s.heat[k]
	if e != nil && e.slot != nil {
		// A fuller snapshot of an already-resident page: refresh in place.
		// The touch counts as a reference — the page is demonstrably live.
		e.slot.pg = pg
		e.heat++
		e.touch = s.Now
		return
	}
	if e == nil {
		e = &pageStat{}
		s.heat[k] = e
	}
	if e.evicted && e.gen >= s.evictGen-1 {
		s.Refetches++
	}
	slot := &cacheSlot{arr: id, page: pageIdx, pg: pg, st: e}
	e.slot = slot
	// Enter unreferenced: any touches the demand miss itself recorded must
	// not count as a post-install reference (the old ring's ref=false).
	e.sweep = e.heat
	if s.CacheCap > 0 && len(s.clock) >= s.CacheCap {
		// A cap lowered mid-run shrinks the ring first, O(1) per page by
		// moving the last slot into the vacated frame.
		for len(s.clock) > s.CacheCap {
			i := s.victim()
			s.evictAt(i)
			last := len(s.clock) - 1
			s.clock[i] = s.clock[last]
			s.clock[last] = nil
			s.clock = s.clock[:last]
		}
		// Classic CLOCK: the new page replaces the victim frame in place
		// (O(1) — no ring splice), with the hand advancing past it.
		i := s.victim()
		s.evictAt(i)
		s.clock[i] = slot
		s.hand = i + 1
	} else {
		s.clock = append(s.clock, slot)
	}
}

// victim runs the CLOCK hand until it finds an unreferenced resident page
// and returns its frame index: referenced pages get their bit cleared and a
// second chance. The reference bit is the heat table's heat-since-sweep
// delta; clearing it records the current heat as seen. Terminates because
// each pass clears bits, so the second sweep must stop. Only called with a
// non-empty ring.
func (s *Shard) victim() int {
	for {
		if s.hand >= len(s.clock) {
			s.hand = 0
		}
		if e := s.clock[s.hand].st; e.heat > e.sweep {
			e.sweep = e.heat
			s.hand++
			continue
		}
		return s.hand
	}
}

// evictedGen bounds one generation of the refetch-detection window.
const evictedGen = 8192

// evictAt evicts the resident page in frame i: its heat entry loses its
// slot and gains an eviction-generation stamp for refetch detection. The
// caller reuses or removes the frame itself. Rotating into a new
// generation prunes heat entries that aged out of the refetch window, so
// the table's non-resident population stays bounded.
func (s *Shard) evictAt(i int) {
	slot := s.clock[i]
	e := slot.st
	e.slot = nil
	e.evicted = true
	e.gen = s.evictGen
	s.evictGenCount++
	if s.evictGenCount >= evictedGen {
		s.evictGen++
		s.evictGenCount = 0
		for k, st := range s.heat {
			if st.slot == nil && !st.owned && st.gen < s.evictGen-1 {
				delete(s.heat, k)
			}
		}
	}
	s.Evictions++
	if s.OnEvict != nil {
		s.OnEvict(slot.arr, slot.page)
	}
}

// CachedPages returns the number of resident cached remote pages — the
// quantity CacheCap bounds.
func (s *Shard) CachedPages() int { return len(s.clock) }

// CacheLookup probes the software cache for an element. hitPage reports the
// page being cached at all; hitElem that the element was present in it.
// Every probe — hit or miss — touches the heat table (feeding the scan
// detector); a probe that finds the page resident thereby marks it
// referenced for the CLOCK sweep.
func (s *Shard) CacheLookup(id int64, h *Header, off int) (v isa.Value, hitPage, hitElem bool) {
	page := h.PageOf(off)
	e := s.touchPage(id, page)
	if e.slot == nil {
		return isa.Value{}, false, false
	}
	pg := e.slot.pg
	i := off - page*h.PageElems
	if i < 0 || i >= len(pg.Vals) || !pg.Set[i] {
		return isa.Value{}, true, false
	}
	return pg.Vals[i], true, true
}

// HotArrays summarizes this shard's locality for a steal request: the
// arrays whose data is resident here, hottest first, at most limit
// entries. Two kinds of residency count — arrays wholly homed at this PE
// (non-distributed, allocated here: reads of them are free shard hits, the
// strongest possible signal, so they rank above everything) and arrays
// with cached remote pages, ranked by resident page count. Distributed
// arrays' owned segments are excluded: every PE owns a slice of every
// distributed array, so at array granularity they carry no signal. Ties
// break on array ID so the summary is deterministic for a given state.
func (s *Shard) HotArrays(limit int) []int64 {
	if limit <= 0 {
		return nil
	}
	type hot struct {
		id    int64
		home  bool
		pages int
	}
	hs := make([]hot, 0, len(s.arrays))
	for id, a := range s.arrays {
		if !a.h.Dist && a.h.Origin == s.PE {
			hs = append(hs, hot{id: id, home: true})
		}
	}
	resident := make(map[int64]int)
	for k, e := range s.heat {
		if e.slot != nil {
			resident[k.arr]++
		}
	}
	for id, pages := range resident {
		hs = append(hs, hot{id: id, pages: pages})
	}
	sort.Slice(hs, func(i, j int) bool {
		if hs[i].home != hs[j].home {
			return hs[i].home
		}
		if hs[i].pages != hs[j].pages {
			return hs[i].pages > hs[j].pages
		}
		return hs[i].id < hs[j].id
	})
	if len(hs) > limit {
		hs = hs[:limit]
	}
	out := make([]int64, len(hs))
	for i, h := range hs {
		out[i] = h.id
	}
	return out
}

// PendingReads returns the number of deferred local reads still queued
// across all arrays — used for deadlock diagnostics.
func (s *Shard) PendingReads() int {
	n := 0
	for _, a := range s.arrays {
		for _, ws := range a.waiting {
			n += len(ws)
		}
		for _, ws := range a.remoteWaiting {
			n += len(ws)
		}
	}
	return n
}

// Filled returns how many owned elements of array id have been written.
func (s *Shard) Filled(id int64) int {
	a := s.arrays[id]
	if a == nil {
		return 0
	}
	n := 0
	for _, b := range a.set {
		if b {
			n++
		}
	}
	return n
}
