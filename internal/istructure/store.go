package istructure

import (
	"fmt"

	"repro/internal/isa"
)

// Waiter identifies a deferred read: when the element is finally written,
// the value must be delivered to slot Slot of SP instance SP on PE PE.
type Waiter struct {
	PE   int
	SP   int64
	Slot int
}

// RemoteWaiter records a PE that asked for a page element that was absent;
// on write, the owner sends the (now fuller) page to that PE (§5.1 Array
// Manager: "if it is absent, the request is queued in the target PE").
type RemoteWaiter struct {
	PE   int
	SP   int64
	Slot int
}

// Shard is one PE's slice of I-structure memory: for each array, the
// elements of the pages in this PE's segment, with presence bits and
// deferred-read queues, plus this PE's software page cache of remote data.
type Shard struct {
	PE     int
	arrays map[int64]*localArray
	cache  map[int64]map[int]*CachedPage

	// Stats.
	DeferredReads int64 // reads enqueued on absent local elements
	CacheHits     int64 // remote reads satisfied from the page cache
	CacheMisses   int64 // remote reads that had to fetch a page
}

type localArray struct {
	h    *Header
	base int // linear offset of first owned element
	vals []isa.Value
	set  []bool
	// waiting maps owned linear offset → local waiters (deferred reads).
	waiting map[int][]Waiter
	// remoteWaiting maps owned linear offset → remote PEs to send the page
	// to once the element is written.
	remoteWaiting map[int][]RemoteWaiter
}

// CachedPage is a snapshot of a remote page: values plus presence bits as of
// the time the page was shipped. Single assignment means entries never go
// stale — absent entries may be filled by a later refetch, present entries
// are final (§4: "a cached page will never have to be sent back").
type CachedPage struct {
	Vals []isa.Value
	Set  []bool
}

// NewShard returns an empty shard for a PE.
func NewShard(pe int) *Shard {
	return &Shard{
		PE:     pe,
		arrays: make(map[int64]*localArray),
		cache:  make(map[int64]map[int]*CachedPage),
	}
}

// Install allocates this PE's segment of an array described by h. Every PE
// installs the same header (the distributing allocate broadcast of §4.1).
func (s *Shard) Install(h *Header) error {
	if _, dup := s.arrays[h.ID]; dup {
		return fmt.Errorf("pe %d: array id %d already installed", s.PE, h.ID)
	}
	lo, hi := h.SegmentElems(s.PE)
	n := hi - lo
	s.arrays[h.ID] = &localArray{
		h:             h,
		base:          lo,
		vals:          make([]isa.Value, n),
		set:           make([]bool, n),
		waiting:       make(map[int][]Waiter),
		remoteWaiting: make(map[int][]RemoteWaiter),
	}
	return nil
}

// Header returns the installed header for an array ID, or nil.
func (s *Shard) Header(id int64) *Header {
	if a := s.arrays[id]; a != nil {
		return a.h
	}
	return nil
}

// Owns reports whether linear offset off of array id is in this PE's
// segment.
func (s *Shard) Owns(id int64, off int) bool {
	a := s.arrays[id]
	if a == nil {
		return false
	}
	return off >= a.base && off < a.base+len(a.vals)
}

// ReadResult describes the outcome of a local read attempt.
type ReadResult uint8

// Read outcomes.
const (
	ReadHit      ReadResult = iota + 1 // value present, returned
	ReadDeferred                       // element absent; waiter enqueued
	ReadRemote                         // element not owned by this PE
)

// ReadLocal attempts to read an owned element; if absent, the waiter is
// queued (I-structure deferred read). Returns ReadRemote when the offset is
// not in this PE's segment.
func (s *Shard) ReadLocal(id int64, off int, w Waiter) (isa.Value, ReadResult, error) {
	a := s.arrays[id]
	if a == nil {
		return isa.Value{}, 0, fmt.Errorf("pe %d: read of unknown array %d", s.PE, id)
	}
	i := off - a.base
	if i < 0 || i >= len(a.vals) {
		return isa.Value{}, ReadRemote, nil
	}
	if a.set[i] {
		return a.vals[i], ReadHit, nil
	}
	a.waiting[off] = append(a.waiting[off], w)
	s.DeferredReads++
	return isa.Value{}, ReadDeferred, nil
}

// Peek returns the element value if owned and present (no side effects).
func (s *Shard) Peek(id int64, off int) (isa.Value, bool) {
	a := s.arrays[id]
	if a == nil {
		return isa.Value{}, false
	}
	i := off - a.base
	if i < 0 || i >= len(a.vals) || !a.set[i] {
		return isa.Value{}, false
	}
	return a.vals[i], true
}

// SingleAssignmentError reports a second write to an I-structure element
// ("attempts to rewrite a value [are reported] as a single-assignment
// violation", §2).
type SingleAssignmentError struct {
	Array string
	Off   int
}

func (e *SingleAssignmentError) Error() string {
	return fmt.Sprintf("single-assignment violation: array %q element offset %d written twice", e.Array, e.Off)
}

// Write stores an owned element and returns the local waiters and remote
// page-waiters to release. A second write to the same element is a
// single-assignment violation.
func (s *Shard) Write(id int64, off int, v isa.Value) (local []Waiter, remote []RemoteWaiter, err error) {
	a := s.arrays[id]
	if a == nil {
		return nil, nil, fmt.Errorf("pe %d: write to unknown array %d", s.PE, id)
	}
	i := off - a.base
	if i < 0 || i >= len(a.vals) {
		return nil, nil, fmt.Errorf("pe %d: write to non-owned offset %d of array %q", s.PE, off, a.h.Name)
	}
	if a.set[i] {
		return nil, nil, &SingleAssignmentError{Array: a.h.Name, Off: off}
	}
	a.vals[i] = v
	a.set[i] = true
	local = a.waiting[off]
	delete(a.waiting, off)
	remote = a.remoteWaiting[off]
	delete(a.remoteWaiting, off)
	return local, remote, nil
}

// QueueRemote records a remote PE waiting for an absent owned element
// (a deferred read whose reader lives on another PE, §5.1).
func (s *Shard) QueueRemote(id int64, off int, rw RemoteWaiter) error {
	a := s.arrays[id]
	if a == nil {
		return fmt.Errorf("pe %d: remote queue on unknown array %d", s.PE, id)
	}
	i := off - a.base
	if i < 0 || i >= len(a.vals) {
		return fmt.Errorf("pe %d: remote queue on non-owned offset %d", s.PE, off)
	}
	a.remoteWaiting[off] = append(a.remoteWaiting[off], rw)
	s.DeferredReads++
	return nil
}

// ExtractPage snapshots the owned page containing off for shipment to a
// requester ("this PE extracts the entire page containing that element and
// returns it", §4). The snapshot covers the intersection of the page with
// this PE's segment.
func (s *Shard) ExtractPage(id int64, off int) (pageIdx int, pg *CachedPage, elems int, err error) {
	a := s.arrays[id]
	if a == nil {
		return 0, nil, 0, fmt.Errorf("pe %d: extract page of unknown array %d", s.PE, id)
	}
	h := a.h
	pageIdx = h.PageOf(off)
	plo := pageIdx * h.PageElems
	phi := plo + h.PageElems
	if n := h.Elems(); phi > n {
		phi = n
	}
	lo := max(plo, a.base)
	hi := min(phi, a.base+len(a.vals))
	if lo >= hi {
		return 0, nil, 0, fmt.Errorf("pe %d: page %d of array %q not owned", s.PE, pageIdx, h.Name)
	}
	n := phi - plo
	pg = &CachedPage{Vals: make([]isa.Value, n), Set: make([]bool, n)}
	for o := lo; o < hi; o++ {
		pg.Vals[o-plo] = a.vals[o-a.base]
		pg.Set[o-plo] = a.set[o-a.base]
	}
	return pageIdx, pg, n, nil
}

// InstallPage stores a received remote page in the software cache,
// overwriting any older (necessarily subset) snapshot.
func (s *Shard) InstallPage(id int64, pageIdx int, pg *CachedPage) {
	m := s.cache[id]
	if m == nil {
		m = make(map[int]*CachedPage)
		s.cache[id] = m
	}
	m[pageIdx] = pg
}

// CacheLookup probes the software cache for an element. hitPage reports the
// page being cached at all; hitElem that the element was present in it.
func (s *Shard) CacheLookup(id int64, h *Header, off int) (v isa.Value, hitPage, hitElem bool) {
	m := s.cache[id]
	if m == nil {
		return isa.Value{}, false, false
	}
	pg := m[h.PageOf(off)]
	if pg == nil {
		return isa.Value{}, false, false
	}
	i := off - h.PageOf(off)*h.PageElems
	if i < 0 || i >= len(pg.Vals) || !pg.Set[i] {
		return isa.Value{}, true, false
	}
	return pg.Vals[i], true, true
}

// PendingReads returns the number of deferred local reads still queued
// across all arrays — used for deadlock diagnostics.
func (s *Shard) PendingReads() int {
	n := 0
	for _, a := range s.arrays {
		for _, ws := range a.waiting {
			n += len(ws)
		}
		for _, ws := range a.remoteWaiting {
			n += len(ws)
		}
	}
	return n
}

// Filled returns how many owned elements of array id have been written.
func (s *Shard) Filled(id int64) int {
	a := s.arrays[id]
	if a == nil {
		return 0
	}
	n := 0
	for _, b := range a.set {
		if b {
			n++
		}
	}
	return n
}
