package idlang

// Type is an Idlite static type.
type Type uint8

// Types.
const (
	TVoid Type = iota
	TInt
	TFloat
	TBool
	TArray1
	TArray2
)

func (t Type) String() string {
	switch t {
	case TInt:
		return "int"
	case TFloat:
		return "float"
	case TBool:
		return "bool"
	case TArray1:
		return "array1"
	case TArray2:
		return "array2"
	default:
		return "void"
	}
}

// IsArray reports whether t is an array type.
func (t Type) IsArray() bool { return t == TArray1 || t == TArray2 }

// Dims returns an array type's dimensionality (0 otherwise).
func (t Type) Dims() int {
	switch t {
	case TArray1:
		return 1
	case TArray2:
		return 2
	}
	return 0
}

// File is a parsed source file.
type File struct {
	Funcs []*FuncDecl
}

// FuncDecl is one function definition.
type FuncDecl struct {
	Name   string
	Params []ParamDecl
	Ret    Type
	Body   *BlockStmt
	Pos    Pos
}

// ParamDecl is one typed parameter.
type ParamDecl struct {
	Name string
	Type Type
	Pos  Pos
}

// Stmt is a statement node.
type Stmt interface{ stmtPos() Pos }

// BlockStmt is a `{ ... }` statement list.
type BlockStmt struct {
	Stmts []Stmt
	Pos   Pos
}

// AssignStmt binds a new name: `x = expr;`.
type AssignStmt struct {
	Name string
	X    Expr
	Pos  Pos
}

// NextStmt updates a loop-carried scalar: `next x = expr;`.
type NextStmt struct {
	Name string
	X    Expr
	Pos  Pos
}

// StoreStmt writes an I-structure element: `A[i,j] = expr;`.
type StoreStmt struct {
	Array string
	Idx   []Expr
	X     Expr
	Pos   Pos
}

// ForStmt is `for v = e1 to|downto e2 { ... }`.
type ForStmt struct {
	Var  string
	From Expr
	To   Expr
	Down bool
	Body *BlockStmt
	Pos  Pos
}

// WhileStmt is `while cond { ... }`; carried scalars advance with `next`.
type WhileStmt struct {
	Cond Expr
	Body *BlockStmt
	Pos  Pos
}

// IfStmt is `if cond { ... } [else { ... } | else if ...]`.
type IfStmt struct {
	Cond Expr
	Then *BlockStmt
	Else *BlockStmt // nil when absent; else-if chains nest here
	Pos  Pos
}

// ReturnStmt is `return expr;`.
type ReturnStmt struct {
	X   Expr
	Pos Pos
}

// ExprStmt is a call evaluated for effect: `f(a, b);`.
type ExprStmt struct {
	X   Expr
	Pos Pos
}

func (s *BlockStmt) stmtPos() Pos  { return s.Pos }
func (s *AssignStmt) stmtPos() Pos { return s.Pos }
func (s *NextStmt) stmtPos() Pos   { return s.Pos }
func (s *StoreStmt) stmtPos() Pos  { return s.Pos }
func (s *ForStmt) stmtPos() Pos    { return s.Pos }
func (s *WhileStmt) stmtPos() Pos  { return s.Pos }
func (s *IfStmt) stmtPos() Pos     { return s.Pos }
func (s *ReturnStmt) stmtPos() Pos { return s.Pos }
func (s *ExprStmt) stmtPos() Pos   { return s.Pos }

// Expr is an expression node.
type Expr interface{ exprPos() Pos }

// IntLit is an integer literal.
type IntLit struct {
	Val int64
	Pos Pos
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	Val float64
	Pos Pos
}

// BoolLit is `true` or `false`.
type BoolLit struct {
	Val bool
	Pos Pos
}

// Ident is a name reference.
type Ident struct {
	Name string
	Pos  Pos
}

// BinExpr is a binary operation; Op is the source operator text.
type BinExpr struct {
	Op   string
	L, R Expr
	Pos  Pos
}

// UnExpr is unary `-` or `!`.
type UnExpr struct {
	Op  string
	X   Expr
	Pos Pos
}

// CallExpr is `f(args...)`, including intrinsics and `array(...)`.
type CallExpr struct {
	Name string
	Args []Expr
	Pos  Pos
}

// IndexExpr is an I-structure read `A[i]` or `A[i,j]`.
type IndexExpr struct {
	Array string
	Idx   []Expr
	Pos   Pos
}

// IfExpr is `if c then a else b`.
type IfExpr struct {
	Cond, Then, Else Expr
	Pos              Pos
}

func (e *IntLit) exprPos() Pos    { return e.Pos }
func (e *FloatLit) exprPos() Pos  { return e.Pos }
func (e *BoolLit) exprPos() Pos   { return e.Pos }
func (e *Ident) exprPos() Pos     { return e.Pos }
func (e *BinExpr) exprPos() Pos   { return e.Pos }
func (e *UnExpr) exprPos() Pos    { return e.Pos }
func (e *CallExpr) exprPos() Pos  { return e.Pos }
func (e *IndexExpr) exprPos() Pos { return e.Pos }
func (e *IfExpr) exprPos() Pos    { return e.Pos }
