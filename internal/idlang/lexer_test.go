package idlang

import (
	"testing"
)

func lex(t *testing.T, src string) []Token {
	t.Helper()
	toks, err := lexAll("lex.id", src)
	if err != nil {
		t.Fatal(err)
	}
	return toks
}

func TestLexerTokens(t *testing.T) {
	toks := lex(t, `func f(x: int) -> float { return x * 2.5; }`)
	var kinds []TokKind
	var texts []string
	for _, tk := range toks {
		kinds = append(kinds, tk.Kind)
		texts = append(texts, tk.Text)
	}
	want := []string{"func", "f", "(", "x", ":", "int", ")", "->", "float", "{",
		"return", "x", "*", "2.5", ";", "}", ""}
	if len(texts) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(texts), texts, len(want))
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, texts[i], want[i])
		}
	}
	if kinds[0] != TokKeyword || kinds[1] != TokIdent || kinds[13] != TokFloat {
		t.Errorf("kinds: %v", kinds)
	}
	if kinds[len(kinds)-1] != TokEOF {
		t.Error("missing EOF token")
	}
}

func TestLexerNumbers(t *testing.T) {
	cases := []struct {
		src  string
		kind TokKind
	}{
		{"42", TokInt},
		{"0", TokInt},
		{"3.25", TokFloat},
		{"1e6", TokFloat},
		{"2.5e-3", TokFloat},
		{"1E+2", TokFloat},
	}
	for _, c := range cases {
		toks := lex(t, c.src)
		if toks[0].Kind != c.kind || toks[0].Text != c.src {
			t.Errorf("%q lexed as %v %q", c.src, toks[0].Kind, toks[0].Text)
		}
	}
	// `1.` is not a float continuation (a digit must follow the dot):
	// lexes as INT then fails on the stray dot.
	if _, err := lexAll("lex.id", "1. 2"); err == nil {
		t.Error("stray dot should be a lex error")
	}
}

func TestLexerTwoByteOperators(t *testing.T) {
	toks := lex(t, "a <= b >= c == d != e && f || g")
	var ops []string
	for _, tk := range toks {
		if tk.Kind == TokPunct {
			ops = append(ops, tk.Text)
		}
	}
	want := []string{"<=", ">=", "==", "!=", "&&", "||"}
	if len(ops) != len(want) {
		t.Fatalf("ops = %v", ops)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Errorf("op %d = %q, want %q", i, ops[i], want[i])
		}
	}
}

func TestLexerPositions(t *testing.T) {
	toks := lex(t, "a\n  b")
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("b at %v", toks[1].Pos)
	}
}

func TestLexerComments(t *testing.T) {
	toks := lex(t, "x # the rest is ignored\ny")
	if len(toks) != 3 || toks[0].Text != "x" || toks[1].Text != "y" {
		t.Errorf("tokens: %v", toks)
	}
}

func TestLexerUnicodeIdent(t *testing.T) {
	toks := lex(t, "αβ = 1;")
	if toks[0].Kind != TokIdent || toks[0].Text != "αβ" {
		t.Errorf("unicode ident: %v", toks[0])
	}
}

func TestParserPrecedence(t *testing.T) {
	// 2 + 3 * 4 == 14 must parse as 2 + (3*4).
	f, err := Parse("p.id", "func main() -> bool { return 2 + 3 * 4 == 14; }")
	if err != nil {
		t.Fatal(err)
	}
	ret := f.Funcs[0].Body.Stmts[0].(*ReturnStmt)
	cmp, ok := ret.X.(*BinExpr)
	if !ok || cmp.Op != "==" {
		t.Fatalf("top is %T, want ==", ret.X)
	}
	add, ok := cmp.L.(*BinExpr)
	if !ok || add.Op != "+" {
		t.Fatalf("left of == is %T %v", cmp.L, cmp.L)
	}
	mul, ok := add.R.(*BinExpr)
	if !ok || mul.Op != "*" {
		t.Fatalf("right of + is %T", add.R)
	}
}

func TestParserElseIfChain(t *testing.T) {
	f, err := Parse("p.id", `
func main(n: int) {
	A = array(4);
	if n == 1 { A[1] = 1.0; }
	else if n == 2 { A[2] = 2.0; }
	else { A[3] = 3.0; }
}`)
	if err != nil {
		t.Fatal(err)
	}
	ifst := f.Funcs[0].Body.Stmts[1].(*IfStmt)
	if ifst.Else == nil || len(ifst.Else.Stmts) != 1 {
		t.Fatal("else-if not nested")
	}
	if _, ok := ifst.Else.Stmts[0].(*IfStmt); !ok {
		t.Fatalf("else contains %T, want nested IfStmt", ifst.Else.Stmts[0])
	}
}

func TestParserArrayStoreVsRead(t *testing.T) {
	f, err := Parse("p.id", `
func g(A: array1) -> float { return A[1]; }
func main() {
	A = array(4);
	A[2] = g(A);
}`)
	if err != nil {
		t.Fatal(err)
	}
	st := f.Funcs[1].Body.Stmts[1].(*StoreStmt)
	if st.Array != "A" || len(st.Idx) != 1 {
		t.Fatalf("store: %+v", st)
	}
}

func TestParserErrors(t *testing.T) {
	cases := []string{
		"func",                      // truncated
		"func main() { x = ; }",     // missing expr
		"func main() { for i { } }", // missing bounds
		"func main() { if { } }",    // missing cond
		"func main() { return 1 }",  // missing semicolon
		"func main() { a = (1; }",   // unbalanced paren
		"func main() { a = 1 + ; }", // trailing op
		"func main(x) { }",          // missing param type
		"func main() -> banana { }", // bad type
		"func main() { x = 1;",      // unterminated block
	}
	for _, src := range cases {
		if _, err := Parse("e.id", src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}
