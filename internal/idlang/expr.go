package idlang

import (
	"repro/internal/graph"
	"repro/internal/isa"
)

var intrinsics = map[string]bool{
	"sqrt": true, "abs": true, "pow": true, "min": true, "max": true,
	"float": true, "int": true,
}

// coerce converts (node, from) to the `to` type, inserting conversions.
func (e *env) coerce(node int, from, to Type, pos Pos) (int, Type, error) {
	if from == to {
		return node, to, nil
	}
	if from == TInt && to == TFloat {
		return e.bb.Unary(graph.OpItoF, isa.KindFloat, node), TFloat, nil
	}
	return 0, to, e.errf(pos, "cannot use %s where %s is required", from, to)
}

// genExpr compiles an expression, returning its node and type.
func (e *env) genExpr(x Expr) (int, Type, error) {
	switch ex := x.(type) {
	case *IntLit:
		return e.bb.Const(isa.Int(ex.Val)), TInt, nil
	case *FloatLit:
		return e.bb.Const(isa.Float(ex.Val)), TFloat, nil
	case *BoolLit:
		return e.bb.Const(isa.Bool(ex.Val)), TBool, nil
	case *Ident:
		b, err := e.lookup(ex.Name, ex.Pos)
		if err != nil {
			return 0, TVoid, err
		}
		return b.node, b.typ, nil
	case *UnExpr:
		return e.genUnary(ex)
	case *BinExpr:
		return e.genBinary(ex)
	case *IndexExpr:
		return e.genIndex(ex)
	case *CallExpr:
		if ex.Name == "array" {
			return 0, TVoid, e.errf(ex.Pos, "array() may only appear directly in a binding: `A = array(...)`")
		}
		return e.genCall(ex)
	case *IfExpr:
		return e.genIfExpr(ex)
	default:
		return 0, TVoid, e.errf(x.exprPos(), "unsupported expression")
	}
}

func (e *env) genUnary(ex *UnExpr) (int, Type, error) {
	n, t, err := e.genExpr(ex.X)
	if err != nil {
		return 0, TVoid, err
	}
	switch ex.Op {
	case "-":
		switch t {
		case TInt:
			return e.bb.Unary(graph.OpINeg, isa.KindInt, n), TInt, nil
		case TFloat:
			return e.bb.Unary(graph.OpFNeg, isa.KindFloat, n), TFloat, nil
		}
		return 0, TVoid, e.errf(ex.Pos, "unary - needs a numeric operand, got %s", t)
	case "!":
		if t != TBool {
			return 0, TVoid, e.errf(ex.Pos, "! needs a bool operand, got %s", t)
		}
		return e.bb.Unary(graph.OpNot, isa.KindBool, n), TBool, nil
	}
	return 0, TVoid, e.errf(ex.Pos, "unknown unary operator %q", ex.Op)
}

var cmpGraphOps = map[string]graph.Op{
	"<": graph.OpCmpLT, "<=": graph.OpCmpLE, ">": graph.OpCmpGT,
	">=": graph.OpCmpGE, "==": graph.OpCmpEQ, "!=": graph.OpCmpNE,
}

func (e *env) genBinary(ex *BinExpr) (int, Type, error) {
	l, lt, err := e.genExpr(ex.L)
	if err != nil {
		return 0, TVoid, err
	}
	r, rt, err := e.genExpr(ex.R)
	if err != nil {
		return 0, TVoid, err
	}
	switch ex.Op {
	case "+", "-", "*", "/":
		if !isNumeric(lt) || !isNumeric(rt) {
			return 0, TVoid, e.errf(ex.Pos, "operator %q needs numeric operands, got %s and %s", ex.Op, lt, rt)
		}
		if lt == TFloat || rt == TFloat {
			l, _, _ = e.coerce(l, lt, TFloat, ex.Pos)
			r, _, _ = e.coerce(r, rt, TFloat, ex.Pos)
			ops := map[string]graph.Op{"+": graph.OpFAdd, "-": graph.OpFSub, "*": graph.OpFMul, "/": graph.OpFDiv}
			return e.bb.Binary(ops[ex.Op], isa.KindFloat, l, r), TFloat, nil
		}
		ops := map[string]graph.Op{"+": graph.OpIAdd, "-": graph.OpISub, "*": graph.OpIMul, "/": graph.OpIDiv}
		return e.bb.Binary(ops[ex.Op], isa.KindInt, l, r), TInt, nil
	case "%":
		if lt != TInt || rt != TInt {
			return 0, TVoid, e.errf(ex.Pos, "%% needs int operands, got %s and %s", lt, rt)
		}
		return e.bb.Binary(graph.OpIMod, isa.KindInt, l, r), TInt, nil
	case "<", "<=", ">", ">=", "==", "!=":
		if !isNumeric(lt) || !isNumeric(rt) {
			return 0, TVoid, e.errf(ex.Pos, "comparison needs numeric operands, got %s and %s", lt, rt)
		}
		return e.bb.Binary(cmpGraphOps[ex.Op], isa.KindBool, l, r), TBool, nil
	case "&&", "||":
		if lt != TBool || rt != TBool {
			return 0, TVoid, e.errf(ex.Pos, "%s needs bool operands, got %s and %s", ex.Op, lt, rt)
		}
		op := graph.OpAnd
		if ex.Op == "||" {
			op = graph.OpOr
		}
		return e.bb.Binary(op, isa.KindBool, l, r), TBool, nil
	}
	return 0, TVoid, e.errf(ex.Pos, "unknown operator %q", ex.Op)
}

func isNumeric(t Type) bool { return t == TInt || t == TFloat }

func (e *env) genIndex(ex *IndexExpr) (int, Type, error) {
	b, err := e.lookup(ex.Array, ex.Pos)
	if err != nil {
		return 0, TVoid, err
	}
	if !b.typ.IsArray() {
		return 0, TVoid, e.errf(ex.Pos, "%q is not an array", ex.Array)
	}
	if len(ex.Idx) != b.typ.Dims() {
		return 0, TVoid, e.errf(ex.Pos, "%q has %d dimension(s), %d indices given", ex.Array, b.typ.Dims(), len(ex.Idx))
	}
	idx := make([]int, len(ex.Idx))
	subs := make([]graph.Subscript, len(ex.Idx))
	for i, ixe := range ex.Idx {
		n, t, err := e.genExpr(ixe)
		if err != nil {
			return 0, TVoid, err
		}
		if t != TInt {
			return 0, TVoid, e.errf(ixe.exprPos(), "array index must be int, got %s", t)
		}
		idx[i] = n
		subs[i] = e.classifySub(ixe)
	}
	return e.bb.ARead(ex.Array, b.node, idx, subs), TFloat, nil
}

func (e *env) genIfExpr(ex *IfExpr) (int, Type, error) {
	cond, ct, err := e.genExpr(ex.Cond)
	if err != nil {
		return 0, TVoid, err
	}
	if ct != TBool {
		return 0, TVoid, e.errf(ex.Cond.exprPos(), "if condition must be bool, got %s", ct)
	}
	ifNode := e.bb.If(cond)
	e.regionDepth++
	tn, tt, err := e.genExpr(ex.Then)
	if err != nil {
		return 0, TVoid, err
	}
	// Branch types must unify, and any int→float promotion of the then
	// value has to be emitted *inside* the then region. A type-only pass
	// over the (not yet compiled) else branch tells us whether to promote.
	if tt == TInt {
		et, terr := e.typeOf(ex.Else)
		if terr == nil && et == TFloat {
			tn = e.bb.Unary(graph.OpItoF, isa.KindFloat, tn)
			tt = TFloat
		}
	}
	e.bb.EndThen(ifNode, tn)
	en, et, err := e.genExpr(ex.Else)
	if err != nil {
		return 0, TVoid, err
	}
	if et != tt {
		if et == TInt && tt == TFloat {
			en = e.bb.Unary(graph.OpItoF, isa.KindFloat, en)
			et = TFloat
		} else {
			e.bb.EndIf(ifNode, en)
			e.regionDepth--
			return 0, TVoid, e.errf(ex.Pos, "if-expression branches have different types: %s and %s", tt, et)
		}
	}
	e.bb.EndIf(ifNode, en)
	e.regionDepth--
	return ifNode, tt, nil
}

// typeOf computes an expression's type without emitting nodes. Used to
// unify if-expression branch types. It mirrors genExpr's typing rules.
func (e *env) typeOf(x Expr) (Type, error) {
	switch ex := x.(type) {
	case *IntLit:
		return TInt, nil
	case *FloatLit:
		return TFloat, nil
	case *BoolLit:
		return TBool, nil
	case *Ident:
		for s := e; s != nil; s = s.parent {
			if b, ok := s.names[ex.Name]; ok {
				return b.typ, nil
			}
			if b, ok := s.imports[ex.Name]; ok {
				return b.typ, nil
			}
		}
		return TVoid, e.errf(ex.Pos, "undefined name %q", ex.Name)
	case *UnExpr:
		return e.typeOf(ex.X)
	case *BinExpr:
		switch ex.Op {
		case "+", "-", "*", "/":
			lt, err := e.typeOf(ex.L)
			if err != nil {
				return TVoid, err
			}
			rt, err := e.typeOf(ex.R)
			if err != nil {
				return TVoid, err
			}
			if lt == TFloat || rt == TFloat {
				return TFloat, nil
			}
			return TInt, nil
		case "%":
			return TInt, nil
		default:
			return TBool, nil
		}
	case *IndexExpr:
		return TFloat, nil
	case *CallExpr:
		switch ex.Name {
		case "sqrt", "abs", "pow", "float":
			return TFloat, nil
		case "int":
			return TInt, nil
		case "min", "max":
			lt, err := e.typeOf(ex.Args[0])
			if err != nil || len(ex.Args) < 2 {
				return TFloat, err
			}
			rt, err := e.typeOf(ex.Args[1])
			if err != nil {
				return TVoid, err
			}
			if lt == TFloat || rt == TFloat {
				return TFloat, nil
			}
			return TInt, nil
		default:
			if fi, ok := e.c.funcs[ex.Name]; ok {
				return fi.decl.Ret, nil
			}
			return TVoid, e.errf(ex.Pos, "unknown function %q", ex.Name)
		}
	case *IfExpr:
		tt, err := e.typeOf(ex.Then)
		if err != nil {
			return TVoid, err
		}
		et, err := e.typeOf(ex.Else)
		if err != nil {
			return TVoid, err
		}
		if tt == TFloat || et == TFloat {
			return TFloat, nil
		}
		return tt, nil
	}
	return TVoid, e.errf(x.exprPos(), "unsupported expression")
}

func (e *env) genCall(ex *CallExpr) (int, Type, error) {
	if intrinsics[ex.Name] {
		return e.genIntrinsic(ex)
	}
	fi, ok := e.c.funcs[ex.Name]
	if !ok {
		return 0, TVoid, e.errf(ex.Pos, "unknown function %q", ex.Name)
	}
	fd := fi.decl
	if len(ex.Args) != len(fd.Params) {
		return 0, TVoid, e.errf(ex.Pos, "%q takes %d argument(s), %d given", ex.Name, len(fd.Params), len(ex.Args))
	}
	args := make([]int, len(ex.Args))
	for i, a := range ex.Args {
		n, t, err := e.genExpr(a)
		if err != nil {
			return 0, TVoid, err
		}
		n, _, err = e.coerce(n, t, fd.Params[i].Type, a.exprPos())
		if err != nil {
			return 0, TVoid, err
		}
		args[i] = n
	}
	node := e.bb.Call(fi.bb.Block(), args)
	return node, fd.Ret, nil
}

func (e *env) genIntrinsic(ex *CallExpr) (int, Type, error) {
	argN := func(want int) error {
		if len(ex.Args) != want {
			return e.errf(ex.Pos, "%s() takes %d argument(s), %d given", ex.Name, want, len(ex.Args))
		}
		return nil
	}
	floatArg := func(i int) (int, error) {
		n, t, err := e.genExpr(ex.Args[i])
		if err != nil {
			return 0, err
		}
		n, _, err = e.coerce(n, t, TFloat, ex.Args[i].exprPos())
		return n, err
	}
	switch ex.Name {
	case "sqrt", "abs":
		if err := argN(1); err != nil {
			return 0, TVoid, err
		}
		n, err := floatArg(0)
		if err != nil {
			return 0, TVoid, err
		}
		op := graph.OpFSqrt
		if ex.Name == "abs" {
			op = graph.OpFAbs
		}
		return e.bb.Unary(op, isa.KindFloat, n), TFloat, nil
	case "pow":
		if err := argN(2); err != nil {
			return 0, TVoid, err
		}
		a, err := floatArg(0)
		if err != nil {
			return 0, TVoid, err
		}
		b, err := floatArg(1)
		if err != nil {
			return 0, TVoid, err
		}
		return e.bb.Binary(graph.OpFPow, isa.KindFloat, a, b), TFloat, nil
	case "min", "max":
		if err := argN(2); err != nil {
			return 0, TVoid, err
		}
		a, at, err := e.genExpr(ex.Args[0])
		if err != nil {
			return 0, TVoid, err
		}
		b, bt, err := e.genExpr(ex.Args[1])
		if err != nil {
			return 0, TVoid, err
		}
		if !isNumeric(at) || !isNumeric(bt) {
			return 0, TVoid, e.errf(ex.Pos, "%s() needs numeric arguments", ex.Name)
		}
		t := TInt
		k := isa.KindInt
		if at == TFloat || bt == TFloat {
			a, _, _ = e.coerce(a, at, TFloat, ex.Pos)
			b, _, _ = e.coerce(b, bt, TFloat, ex.Pos)
			t, k = TFloat, isa.KindFloat
		}
		op := graph.OpMin
		if ex.Name == "max" {
			op = graph.OpMax
		}
		return e.bb.Binary(op, k, a, b), t, nil
	case "float":
		if err := argN(1); err != nil {
			return 0, TVoid, err
		}
		n, t, err := e.genExpr(ex.Args[0])
		if err != nil {
			return 0, TVoid, err
		}
		if t == TFloat {
			return n, TFloat, nil
		}
		if t != TInt {
			return 0, TVoid, e.errf(ex.Pos, "float() needs a numeric argument, got %s", t)
		}
		return e.bb.Unary(graph.OpItoF, isa.KindFloat, n), TFloat, nil
	case "int":
		if err := argN(1); err != nil {
			return 0, TVoid, err
		}
		n, t, err := e.genExpr(ex.Args[0])
		if err != nil {
			return 0, TVoid, err
		}
		if t == TInt {
			return n, TInt, nil
		}
		if t != TFloat {
			return 0, TVoid, e.errf(ex.Pos, "int() needs a numeric argument, got %s", t)
		}
		return e.bb.Unary(graph.OpFtoI, isa.KindInt, n), TInt, nil
	}
	return 0, TVoid, e.errf(ex.Pos, "unknown intrinsic %q", ex.Name)
}
