package idlang

import "strconv"

// parser is a recursive-descent parser over the token slice.
type parser struct {
	file string
	toks []Token
	i    int
}

// Parse parses Idlite source into a File.
func Parse(file, src string) (*File, error) {
	toks, err := lexAll(file, src)
	if err != nil {
		return nil, err
	}
	p := &parser{file: file, toks: toks}
	f := &File{}
	for !p.at(TokEOF, "") {
		fd, err := p.funcDecl()
		if err != nil {
			return nil, err
		}
		f.Funcs = append(f.Funcs, fd)
	}
	if len(f.Funcs) == 0 {
		return nil, errf(file, Pos{1, 1}, "no functions in file")
	}
	return f, nil
}

func (p *parser) cur() Token  { return p.toks[p.i] }
func (p *parser) bump() Token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) at(kind TokKind, text string) bool {
	t := p.cur()
	return t.Kind == kind && (text == "" || t.Text == text)
}

func (p *parser) eat(kind TokKind, text string) bool {
	if p.at(kind, text) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expect(kind TokKind, text string) (Token, error) {
	if p.at(kind, text) {
		return p.bump(), nil
	}
	want := text
	if want == "" {
		switch kind {
		case TokIdent:
			want = "identifier"
		case TokInt:
			want = "integer"
		default:
			want = "token"
		}
	}
	return Token{}, errf(p.file, p.cur().Pos, "expected %s, found %s", want, p.cur())
}

func (p *parser) parseType() (Type, error) {
	t := p.cur()
	if t.Kind != TokKeyword {
		return TVoid, errf(p.file, t.Pos, "expected type, found %s", t)
	}
	p.bump()
	switch t.Text {
	case "int":
		return TInt, nil
	case "float":
		return TFloat, nil
	case "bool":
		return TBool, nil
	case "array1":
		return TArray1, nil
	case "array2":
		return TArray2, nil
	}
	return TVoid, errf(p.file, t.Pos, "expected type, found %s", t)
}

func (p *parser) funcDecl() (*FuncDecl, error) {
	kw, err := p.expect(TokKeyword, "func")
	if err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, "("); err != nil {
		return nil, err
	}
	fd := &FuncDecl{Name: name.Text, Pos: kw.Pos}
	for !p.at(TokPunct, ")") {
		if len(fd.Params) > 0 {
			if _, err := p.expect(TokPunct, ","); err != nil {
				return nil, err
			}
		}
		pn, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ":"); err != nil {
			return nil, err
		}
		pt, err := p.parseType()
		if err != nil {
			return nil, err
		}
		fd.Params = append(fd.Params, ParamDecl{Name: pn.Text, Type: pt, Pos: pn.Pos})
	}
	p.bump() // ')'
	if p.eat(TokPunct, "->") {
		rt, err := p.parseType()
		if err != nil {
			return nil, err
		}
		fd.Ret = rt
	}
	body, err := p.blockStmt()
	if err != nil {
		return nil, err
	}
	fd.Body = body
	return fd, nil
}

func (p *parser) blockStmt() (*BlockStmt, error) {
	open, err := p.expect(TokPunct, "{")
	if err != nil {
		return nil, err
	}
	b := &BlockStmt{Pos: open.Pos}
	for !p.at(TokPunct, "}") {
		if p.at(TokEOF, "") {
			return nil, errf(p.file, p.cur().Pos, "unterminated block (missing '}')")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.bump()
	return b, nil
}

func (p *parser) stmt() (Stmt, error) {
	t := p.cur()
	switch {
	case t.Kind == TokKeyword && t.Text == "for":
		return p.forStmt()
	case t.Kind == TokKeyword && t.Text == "while":
		p.bump()
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		body, err := p.blockStmt()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body, Pos: t.Pos}, nil
	case t.Kind == TokKeyword && t.Text == "if":
		return p.ifStmt()
	case t.Kind == TokKeyword && t.Text == "return":
		p.bump()
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return &ReturnStmt{X: x, Pos: t.Pos}, nil
	case t.Kind == TokKeyword && t.Text == "next":
		p.bump()
		name, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, "="); err != nil {
			return nil, err
		}
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return &NextStmt{Name: name.Text, X: x, Pos: t.Pos}, nil
	case t.Kind == TokIdent:
		// Disambiguate: binding, store, or call statement.
		if p.toks[p.i+1].Kind == TokPunct {
			switch p.toks[p.i+1].Text {
			case "=":
				p.bump()
				p.bump()
				x, err := p.expr()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(TokPunct, ";"); err != nil {
					return nil, err
				}
				return &AssignStmt{Name: t.Text, X: x, Pos: t.Pos}, nil
			case "[":
				save := p.i
				p.bump()
				p.bump()
				idx, err := p.exprList("]")
				if err != nil {
					return nil, err
				}
				if p.eat(TokPunct, "=") {
					x, err := p.expr()
					if err != nil {
						return nil, err
					}
					if _, err := p.expect(TokPunct, ";"); err != nil {
						return nil, err
					}
					return &StoreStmt{Array: t.Text, Idx: idx, X: x, Pos: t.Pos}, nil
				}
				p.i = save // it was an expression like `A[i];`
			}
		}
		fallthrough
	default:
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return &ExprStmt{X: x, Pos: t.Pos}, nil
	}
}

func (p *parser) forStmt() (Stmt, error) {
	kw := p.bump()
	v, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, "="); err != nil {
		return nil, err
	}
	from, err := p.expr()
	if err != nil {
		return nil, err
	}
	down := false
	if p.eat(TokKeyword, "downto") {
		down = true
	} else if _, err := p.expect(TokKeyword, "to"); err != nil {
		return nil, err
	}
	to, err := p.expr()
	if err != nil {
		return nil, err
	}
	body, err := p.blockStmt()
	if err != nil {
		return nil, err
	}
	return &ForStmt{Var: v.Text, From: from, To: to, Down: down, Body: body, Pos: kw.Pos}, nil
}

func (p *parser) ifStmt() (Stmt, error) {
	kw := p.bump()
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	then, err := p.blockStmt()
	if err != nil {
		return nil, err
	}
	st := &IfStmt{Cond: cond, Then: then, Pos: kw.Pos}
	if p.eat(TokKeyword, "else") {
		if p.at(TokKeyword, "if") {
			inner, err := p.ifStmt()
			if err != nil {
				return nil, err
			}
			st.Else = &BlockStmt{Stmts: []Stmt{inner}, Pos: inner.stmtPos()}
		} else {
			els, err := p.blockStmt()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
	}
	return st, nil
}

func (p *parser) exprList(close string) ([]Expr, error) {
	var out []Expr
	for !p.at(TokPunct, close) {
		if len(out) > 0 {
			if _, err := p.expect(TokPunct, ","); err != nil {
				return nil, err
			}
		}
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		out = append(out, x)
	}
	p.bump()
	return out, nil
}

// expr parses an expression, including `if c then a else b`.
func (p *parser) expr() (Expr, error) {
	if p.at(TokKeyword, "if") {
		kw := p.bump()
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKeyword, "then"); err != nil {
			return nil, err
		}
		then, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKeyword, "else"); err != nil {
			return nil, err
		}
		els, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &IfExpr{Cond: cond, Then: then, Else: els, Pos: kw.Pos}, nil
	}
	return p.orExpr()
}

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.at(TokPunct, "||") {
		op := p.bump()
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "||", L: l, R: r, Pos: op.Pos}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.cmpExpr()
	if err != nil {
		return nil, err
	}
	for p.at(TokPunct, "&&") {
		op := p.bump()
		r, err := p.cmpExpr()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "&&", L: l, R: r, Pos: op.Pos}
	}
	return l, nil
}

var cmpOps = map[string]bool{"<": true, "<=": true, ">": true, ">=": true, "==": true, "!=": true}

func (p *parser) cmpExpr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	if p.cur().Kind == TokPunct && cmpOps[p.cur().Text] {
		op := p.bump()
		r, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		return &BinExpr{Op: op.Text, L: l, R: r, Pos: op.Pos}, nil
	}
	return l, nil
}

func (p *parser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.at(TokPunct, "+") || p.at(TokPunct, "-") {
		op := p.bump()
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: op.Text, L: l, R: r, Pos: op.Pos}
	}
	return l, nil
}

func (p *parser) mulExpr() (Expr, error) {
	l, err := p.unExpr()
	if err != nil {
		return nil, err
	}
	for p.at(TokPunct, "*") || p.at(TokPunct, "/") || p.at(TokPunct, "%") {
		op := p.bump()
		r, err := p.unExpr()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: op.Text, L: l, R: r, Pos: op.Pos}
	}
	return l, nil
}

func (p *parser) unExpr() (Expr, error) {
	if p.at(TokPunct, "-") || p.at(TokPunct, "!") {
		op := p.bump()
		x, err := p.unExpr()
		if err != nil {
			return nil, err
		}
		return &UnExpr{Op: op.Text, X: x, Pos: op.Pos}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch {
	case t.Kind == TokInt:
		p.bump()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, errf(p.file, t.Pos, "bad integer literal %q", t.Text)
		}
		return &IntLit{Val: v, Pos: t.Pos}, nil
	case t.Kind == TokFloat:
		p.bump()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, errf(p.file, t.Pos, "bad float literal %q", t.Text)
		}
		return &FloatLit{Val: v, Pos: t.Pos}, nil
	case t.Kind == TokKeyword && (t.Text == "true" || t.Text == "false"):
		p.bump()
		return &BoolLit{Val: t.Text == "true", Pos: t.Pos}, nil
	case t.Kind == TokKeyword && (t.Text == "float" || t.Text == "int"):
		// Conversion intrinsics share their spelling with type keywords.
		p.bump()
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		args, err := p.exprList(")")
		if err != nil {
			return nil, err
		}
		return &CallExpr{Name: t.Text, Args: args, Pos: t.Pos}, nil
	case t.Kind == TokPunct && t.Text == "(":
		p.bump()
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		return x, nil
	case t.Kind == TokIdent:
		p.bump()
		switch {
		case p.at(TokPunct, "("):
			p.bump()
			args, err := p.exprList(")")
			if err != nil {
				return nil, err
			}
			return &CallExpr{Name: t.Text, Args: args, Pos: t.Pos}, nil
		case p.at(TokPunct, "["):
			p.bump()
			idx, err := p.exprList("]")
			if err != nil {
				return nil, err
			}
			return &IndexExpr{Array: t.Text, Idx: idx, Pos: t.Pos}, nil
		default:
			return &Ident{Name: t.Text, Pos: t.Pos}, nil
		}
	}
	return nil, errf(p.file, t.Pos, "expected expression, found %s", t)
}
