package idlang

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/isa"
)

// Compile parses and compiles Idlite source into a dataflow graph program.
func Compile(file, src string) (*graph.Program, error) {
	f, err := Parse(file, src)
	if err != nil {
		return nil, err
	}
	return CompileFile(file, f)
}

// CompileFile compiles a parsed file.
func CompileFile(file string, f *File) (*graph.Program, error) {
	c := &compiler{file: file, bl: graph.NewBuilder(), funcs: map[string]*funcInfo{}}
	// Pass 1: create one block per function so calls can reference them.
	for _, fd := range f.Funcs {
		if _, dup := c.funcs[fd.Name]; dup {
			return nil, errf(file, fd.Pos, "function %q redefined", fd.Name)
		}
		if intrinsics[fd.Name] || fd.Name == "array" {
			return nil, errf(file, fd.Pos, "function name %q shadows a builtin", fd.Name)
		}
		kind := graph.BlockFunc
		if fd.Name == "main" {
			kind = graph.BlockMain
		}
		params := make([]graph.Param, len(fd.Params))
		for i, p := range fd.Params {
			params[i] = graph.Param{Name: p.Name, Type: kindOf(p.Type)}
		}
		bb := c.bl.NewBlock(fd.Name, kind, params)
		c.funcs[fd.Name] = &funcInfo{decl: fd, bb: bb}
	}
	if _, ok := c.funcs["main"]; !ok {
		return nil, errf(file, Pos{1, 1}, "no main function")
	}
	// Pass 2: compile bodies.
	for _, fd := range f.Funcs {
		if err := c.compileFunc(c.funcs[fd.Name]); err != nil {
			return nil, err
		}
	}
	return c.bl.Program()
}

type compiler struct {
	file  string
	bl    *graph.Builder
	funcs map[string]*funcInfo
}

type funcInfo struct {
	decl *FuncDecl
	bb   *graph.BlockBuilder
}

type binding struct {
	node int
	typ  Type
}

type carriedVar struct {
	name string
	typ  Type
	next int // node producing the next-iteration value
	set  bool
	pos  Pos
}

// env is one block-level compilation scope.
type env struct {
	c      *compiler
	parent *env
	fn     *funcInfo
	bb     *graph.BlockBuilder

	names   map[string]binding
	imports map[string]binding

	freeNames []string // imported outer names, in import order
	freeNodes []int    // the PARENT-side nodes to pass for them

	isLoop   bool
	loopVar  string
	carried  []carriedVar
	loopVars map[string]bool // loop variables visible here (name set)

	regionDepth int // >0 while compiling inside an if branch
	returned    bool
}

func (e *env) errf(pos Pos, format string, args ...interface{}) error {
	return errf(e.c.file, pos, format, args...)
}

// defined reports whether a name is visible anywhere in the scope chain.
func (e *env) defined(name string) bool {
	for s := e; s != nil; s = s.parent {
		if _, ok := s.names[name]; ok {
			return true
		}
		if _, ok := s.imports[name]; ok {
			return true
		}
	}
	return false
}

// lookup resolves a name, transitively importing it through block
// boundaries as a fresh parameter (the frontend's free-variable threading:
// inner code blocks receive outer values as L-operator arguments).
func (e *env) lookup(name string, pos Pos) (binding, error) {
	if b, ok := e.names[name]; ok {
		return b, nil
	}
	if b, ok := e.imports[name]; ok {
		return b, nil
	}
	if e.parent == nil {
		return binding{}, e.errf(pos, "undefined name %q", name)
	}
	pb, err := e.parent.lookup(name, pos)
	if err != nil {
		return binding{}, err
	}
	node := e.bb.ImportParam(name, kindOf(pb.typ))
	b := binding{node: node, typ: pb.typ}
	e.imports[name] = b
	e.freeNames = append(e.freeNames, name)
	e.freeNodes = append(e.freeNodes, pb.node)
	return b, nil
}

// bind introduces a new single-assignment binding.
func (e *env) bind(name string, b binding, pos Pos) error {
	if e.defined(name) {
		return e.errf(pos, "%q is already bound (single assignment; shadowing is not allowed)", name)
	}
	e.names[name] = b
	return nil
}

func kindOf(t Type) isa.Kind {
	switch t {
	case TInt:
		return isa.KindInt
	case TFloat:
		return isa.KindFloat
	case TBool:
		return isa.KindBool
	case TArray1, TArray2:
		return isa.KindArray
	default:
		return isa.KindInvalid
	}
}

func (c *compiler) compileFunc(fi *funcInfo) error {
	fd := fi.decl
	e := &env{
		c: c, fn: fi, bb: fi.bb,
		names: map[string]binding{}, imports: map[string]binding{},
		loopVars: map[string]bool{},
	}
	for i, p := range fd.Params {
		if err := e.bind(p.Name, binding{node: fi.bb.Param(i), typ: p.Type}, p.Pos); err != nil {
			return err
		}
	}
	if err := e.genStmts(fd.Body.Stmts, true); err != nil {
		return err
	}
	if fd.Ret != TVoid && !e.returned {
		return errf(c.file, fd.Pos, "function %q must end with a return statement", fd.Name)
	}
	return nil
}

// genStmts compiles a statement list. loopTop marks the top level of a loop
// body (where `next` statements are legal) or a function body.
func (e *env) genStmts(stmts []Stmt, topLevel bool) error {
	for i, s := range stmts {
		if e.returned {
			return e.errf(s.stmtPos(), "statement after return")
		}
		if err := e.genStmt(s, topLevel && i >= 0); err != nil {
			return err
		}
	}
	return nil
}

func (e *env) genStmt(s Stmt, topLevel bool) error {
	switch st := s.(type) {
	case *AssignStmt:
		return e.genAssign(st)
	case *NextStmt:
		return e.genNext(st, topLevel)
	case *StoreStmt:
		return e.genStore(st)
	case *ForStmt:
		return e.genFor(st)
	case *WhileStmt:
		return e.genWhile(st)
	case *IfStmt:
		return e.genIf(st)
	case *ReturnStmt:
		return e.genReturn(st)
	case *ExprStmt:
		call, ok := st.X.(*CallExpr)
		if !ok {
			return e.errf(st.Pos, "only calls may be used as statements")
		}
		node, typ, err := e.genCall(call)
		if err != nil {
			return err
		}
		if typ != TVoid {
			return e.errf(st.Pos, "result of %q call is discarded; bind it or make the function void", call.Name)
		}
		_ = node
		return nil
	case *BlockStmt:
		return e.genStmts(st.Stmts, false)
	default:
		return e.errf(s.stmtPos(), "unsupported statement")
	}
}

func (e *env) genAssign(st *AssignStmt) error {
	// Allocation: `A = array(n[, m])`.
	if call, ok := st.X.(*CallExpr); ok && call.Name == "array" {
		if len(call.Args) != 1 && len(call.Args) != 2 {
			return e.errf(st.Pos, "array() takes 1 or 2 extents")
		}
		ext := make([]int, len(call.Args))
		for i, a := range call.Args {
			n, t, err := e.genExpr(a)
			if err != nil {
				return err
			}
			if t != TInt {
				return e.errf(a.exprPos(), "array extent must be int, got %s", t)
			}
			ext[i] = n
		}
		node := e.bb.Alloc(st.Name, ext)
		typ := TArray1
		if len(ext) == 2 {
			typ = TArray2
		}
		return e.bind(st.Name, binding{node: node, typ: typ}, st.Pos)
	}
	node, typ, err := e.genExpr(st.X)
	if err != nil {
		return err
	}
	if typ == TVoid {
		return e.errf(st.Pos, "cannot bind the result of a void call")
	}
	return e.bind(st.Name, binding{node: node, typ: typ}, st.Pos)
}

func (e *env) genNext(st *NextStmt, topLevel bool) error {
	if !e.isLoop || !topLevel {
		return e.errf(st.Pos, "`next` is only allowed at the top level of a loop body")
	}
	for i := range e.carried {
		cv := &e.carried[i]
		if cv.name != st.Name {
			continue
		}
		if cv.set {
			return e.errf(st.Pos, "`next %s` appears twice in this loop", st.Name)
		}
		node, typ, err := e.genExpr(st.X)
		if err != nil {
			return err
		}
		node, typ, err = e.coerce(node, typ, cv.typ, st.X.exprPos())
		if err != nil {
			return err
		}
		cv.next = node
		cv.set = true
		return nil
	}
	return e.errf(st.Pos, "internal: carried variable %q not pre-registered", st.Name)
}

func (e *env) genStore(st *StoreStmt) error {
	b, err := e.lookup(st.Array, st.Pos)
	if err != nil {
		return err
	}
	if !b.typ.IsArray() {
		return e.errf(st.Pos, "%q is not an array", st.Array)
	}
	if len(st.Idx) != b.typ.Dims() {
		return e.errf(st.Pos, "%q has %d dimension(s), %d indices given", st.Array, b.typ.Dims(), len(st.Idx))
	}
	idx := make([]int, len(st.Idx))
	subs := make([]graph.Subscript, len(st.Idx))
	for i, ix := range st.Idx {
		n, t, err := e.genExpr(ix)
		if err != nil {
			return err
		}
		if t != TInt {
			return e.errf(ix.exprPos(), "array index must be int, got %s", t)
		}
		idx[i] = n
		subs[i] = e.classifySub(ix)
	}
	v, vt, err := e.genExpr(st.X)
	if err != nil {
		return err
	}
	v, _, err = e.coerce(v, vt, TFloat, st.X.exprPos())
	if err != nil {
		return e.errf(st.X.exprPos(), "array elements are float; cannot store %s", vt)
	}
	e.bb.AWrite(st.Array, b.node, idx, v, subs)
	return nil
}

func (e *env) genReturn(st *ReturnStmt) error {
	if e.parent != nil || e.regionDepth > 0 {
		return e.errf(st.Pos, "return is only allowed at the top level of a function body")
	}
	ret := e.fn.decl.Ret
	if ret == TVoid {
		return e.errf(st.Pos, "void function %q cannot return a value", e.fn.decl.Name)
	}
	node, typ, err := e.genExpr(st.X)
	if err != nil {
		return err
	}
	node, typ, err = e.coerce(node, typ, ret, st.X.exprPos())
	if err != nil {
		return err
	}
	e.bb.Return(node, kindOf(typ))
	e.returned = true
	return nil
}

func (e *env) genIf(st *IfStmt) error {
	cond, ct, err := e.genExpr(st.Cond)
	if err != nil {
		return err
	}
	if ct != TBool {
		return e.errf(st.Cond.exprPos(), "if condition must be bool, got %s", ct)
	}
	ifNode := e.bb.If(cond)
	e.regionDepth++
	saved := snapshot(e.names)
	if err := e.genStmts(st.Then.Stmts, false); err != nil {
		return err
	}
	e.names = saved
	e.bb.EndThen(ifNode, -1)
	saved = snapshot(e.names)
	if st.Else != nil {
		if err := e.genStmts(st.Else.Stmts, false); err != nil {
			return err
		}
	}
	e.names = saved
	e.bb.EndIf(ifNode, -1)
	e.regionDepth--
	return nil
}

func snapshot(m map[string]binding) map[string]binding {
	out := make(map[string]binding, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// scanCarried pre-registers the loop-carried scalars of a loop body:
// top-level `next x` statements whose x is bound in an enclosing scope.
func (e *env) scanCarried(body *BlockStmt, loopVar string) ([]carriedVar, error) {
	var carried []carriedVar
	seen := map[string]bool{}
	for _, s := range body.Stmts {
		nx, ok := s.(*NextStmt)
		if !ok {
			continue
		}
		if loopVar != "" && nx.Name == loopVar {
			return nil, e.errf(nx.Pos, "cannot `next` the loop variable %q", nx.Name)
		}
		if seen[nx.Name] {
			return nil, e.errf(nx.Pos, "`next %s` appears twice", nx.Name)
		}
		seen[nx.Name] = true
		pb, err := e.lookup(nx.Name, nx.Pos)
		if err != nil {
			return nil, e.errf(nx.Pos, "`next %s`: %q is not bound in an enclosing scope", nx.Name, nx.Name)
		}
		if pb.typ.IsArray() || pb.typ == TVoid {
			return nil, e.errf(nx.Pos, "only scalars can be loop-carried, %q is %s", nx.Name, pb.typ)
		}
		carried = append(carried, carriedVar{name: nx.Name, typ: pb.typ, pos: nx.Pos})
	}
	return carried, nil
}

// finishLoop emits the loop node's outputs in the parent scope: each
// carried scalar is rebound to its final value (Id loop semantics).
func (e *env) finishLoop(loopNode int, carried []carriedVar, pos Pos) error {
	for k, cv := range carried {
		out := e.bb.LoopOut(loopNode, k, kindOf(cv.typ))
		if e.regionDepth > 0 {
			return e.errf(pos, "a loop carrying %q cannot appear inside an if branch (its final value would escape the branch)", cv.name)
		}
		if e.isLoop {
			if _, own := e.names[cv.name]; !own {
				carriedHere := false
				for _, c2 := range e.carried {
					if c2.name == cv.name {
						carriedHere = true
					}
				}
				if !carriedHere {
					return e.errf(pos, "%q is updated by this inner loop but not declared `next %s` in the enclosing loop", cv.name, cv.name)
				}
			}
		}
		e.names[cv.name] = binding{node: out, typ: cv.typ}
	}
	return nil
}

// genFor compiles a loop statement into a child loop block plus an OpLoop
// spawn in the current block (the L operator of Figure 2).
func (e *env) genFor(st *ForStmt) error {
	carried, err := e.scanCarried(st.Body, st.Var)
	if err != nil {
		return err
	}

	if e.defined(st.Var) {
		return e.errf(st.Pos, "loop variable %q shadows an existing binding", st.Var)
	}

	blockName := fmt.Sprintf("%s.%s.L%d", e.fn.decl.Name, st.Var, st.Pos.Line)
	cb := e.c.bl.NewBlock(blockName, graph.BlockLoop, []graph.Param{
		{Name: "$init", Type: isa.KindInt}, {Name: "$limit", Type: isa.KindInt},
	})

	child := &env{
		c: e.c, parent: e, fn: e.fn, bb: cb,
		names: map[string]binding{}, imports: map[string]binding{},
		isLoop: true, loopVar: st.Var, carried: carried,
		loopVars: map[string]bool{},
	}
	for v := range e.loopVars {
		child.loopVars[v] = true
	}
	child.loopVars[st.Var] = true
	child.names[st.Var] = binding{node: cb.LoopVar(), typ: TInt}
	for k := range carried {
		cv := &child.carried[k]
		child.names[cv.name] = binding{node: cb.CarriedVar(k, kindOf(cv.typ)), typ: cv.typ}
	}

	if err := child.genStmts(st.Body.Stmts, true); err != nil {
		return err
	}
	meta := &graph.LoopMeta{Var: st.Var, Descending: st.Down}
	for k := range child.carried {
		cv := &child.carried[k]
		if !cv.set {
			return e.errf(cv.pos, "internal: carried %q never set", cv.name)
		}
		meta.Carried = append(meta.Carried, graph.Carried{Name: cv.name, Type: kindOf(cv.typ), NextNode: cv.next})
		cb.AppendParamDecl("$carry."+cv.name, kindOf(cv.typ))
	}
	cb.SetLoop(meta)

	// Parent side: bounds, free args, carried inits, the loop node itself.
	from, ft, err := e.genExpr(st.From)
	if err != nil {
		return err
	}
	if ft != TInt {
		return e.errf(st.From.exprPos(), "loop bound must be int, got %s", ft)
	}
	to, tt, err := e.genExpr(st.To)
	if err != nil {
		return err
	}
	if tt != TInt {
		return e.errf(st.To.exprPos(), "loop bound must be int, got %s", tt)
	}
	carriedInit := make([]int, len(carried))
	for k, cv := range carried {
		pb, err := e.lookup(cv.name, cv.pos)
		if err != nil {
			return err
		}
		carriedInit[k] = pb.node
	}
	loopNode := e.bb.ForLoop(cb.Block(), from, to, child.freeNodes, carriedInit)
	return e.finishLoop(loopNode, carried, st.Pos)
}

// genWhile compiles a condition-controlled loop: the condition sub-graph is
// compiled first into the child block (it is re-evaluated every iteration,
// reading the carried scalars), then the body.
func (e *env) genWhile(st *WhileStmt) error {
	carried, err := e.scanCarried(st.Body, "")
	if err != nil {
		return err
	}

	blockName := fmt.Sprintf("%s.while.L%d", e.fn.decl.Name, st.Pos.Line)
	cb := e.c.bl.NewBlock(blockName, graph.BlockLoop, nil)

	child := &env{
		c: e.c, parent: e, fn: e.fn, bb: cb,
		names: map[string]binding{}, imports: map[string]binding{},
		isLoop: true, carried: carried,
		loopVars: map[string]bool{},
	}
	for v := range e.loopVars {
		child.loopVars[v] = true
	}
	for k := range carried {
		cv := &child.carried[k]
		child.names[cv.name] = binding{node: cb.CarriedVar(k, kindOf(cv.typ)), typ: cv.typ}
	}

	condNode, condType, err := child.genExpr(st.Cond)
	if err != nil {
		return err
	}
	if condType != TBool {
		return e.errf(st.Cond.exprPos(), "while condition must be bool, got %s", condType)
	}
	boundary := len(cb.Block().Body)

	if err := child.genStmts(st.Body.Stmts, true); err != nil {
		return err
	}
	meta := &graph.LoopMeta{While: true, CondNode: condNode, CondBoundary: boundary}
	for k := range child.carried {
		cv := &child.carried[k]
		if !cv.set {
			return e.errf(cv.pos, "internal: carried %q never set", cv.name)
		}
		meta.Carried = append(meta.Carried, graph.Carried{Name: cv.name, Type: kindOf(cv.typ), NextNode: cv.next})
		cb.AppendParamDecl("$carry."+cv.name, kindOf(cv.typ))
	}
	cb.SetLoop(meta)

	carriedInit := make([]int, len(carried))
	for k, cv := range carried {
		pb, err := e.lookup(cv.name, cv.pos)
		if err != nil {
			return err
		}
		carriedInit[k] = pb.node
	}
	loopNode := e.bb.WhileLoop(cb.Block(), child.freeNodes, carriedInit)
	return e.finishLoop(loopNode, carried, st.Pos)
}

// classifySub classifies an index expression for dependence analysis:
// v, v+c, v-c (v a visible loop variable) are affine; all else is opaque.
func (e *env) classifySub(x Expr) graph.Subscript {
	switch ix := x.(type) {
	case *Ident:
		if e.loopVars[ix.Name] {
			return graph.Sub(ix.Name, 0)
		}
	case *BinExpr:
		if ix.Op == "+" || ix.Op == "-" {
			if id, ok := ix.L.(*Ident); ok && e.loopVars[id.Name] {
				if lit, ok := ix.R.(*IntLit); ok {
					off := lit.Val
					if ix.Op == "-" {
						off = -off
					}
					return graph.Sub(id.Name, off)
				}
			}
			if lit, ok := ix.L.(*IntLit); ok && ix.Op == "+" {
				if id, ok := ix.R.(*Ident); ok && e.loopVars[id.Name] {
					return graph.Sub(id.Name, lit.Val)
				}
			}
		}
	}
	return graph.SubOther()
}
