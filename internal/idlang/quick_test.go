package idlang_test

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/idlang"
	"repro/internal/isa"
	"repro/internal/partition"
	"repro/internal/sim"
	"repro/internal/translate"
)

// exprGen builds a random Idlite expression over float bindings while
// simultaneously computing its value, so generated programs come with their
// own oracle. All generated values stay in a safe range to keep float64
// arithmetic exact enough for == comparison after identical operation
// order (the pipeline performs the same operations in the same order).
type exprGen struct {
	rng   *rand.Rand
	binds []string  // names of bound variables
	vals  []float64 // their values
	buf   strings.Builder
	n     int
}

func (g *exprGen) expr(depth int) (string, float64) {
	if depth <= 0 || g.rng.Intn(4) == 0 {
		// Leaf: literal or existing binding.
		if len(g.binds) > 0 && g.rng.Intn(2) == 0 {
			i := g.rng.Intn(len(g.binds))
			return g.binds[i], g.vals[i]
		}
		v := float64(g.rng.Intn(200)-100) / 4.0
		return fmt.Sprintf("%g", v), v
	}
	switch g.rng.Intn(7) {
	case 0:
		a, av := g.expr(depth - 1)
		b, bv := g.expr(depth - 1)
		return fmt.Sprintf("(%s + %s)", a, b), av + bv
	case 1:
		a, av := g.expr(depth - 1)
		b, bv := g.expr(depth - 1)
		return fmt.Sprintf("(%s - %s)", a, b), av - bv
	case 2:
		a, av := g.expr(depth - 1)
		b, bv := g.expr(depth - 1)
		return fmt.Sprintf("(%s * %s)", a, b), av * bv
	case 3:
		a, av := g.expr(depth - 1)
		return fmt.Sprintf("abs(%s)", a), math.Abs(av)
	case 4:
		a, av := g.expr(depth - 1)
		b, bv := g.expr(depth - 1)
		if g.rng.Intn(2) == 0 {
			return fmt.Sprintf("min(%s, %s)", a, b), math.Min(av, bv)
		}
		return fmt.Sprintf("max(%s, %s)", a, b), math.Max(av, bv)
	case 5:
		c, cv := g.expr(depth - 1)
		d, dv := g.expr(depth - 1)
		a, av := g.expr(depth - 1)
		b, bv := g.expr(depth - 1)
		if cv < dv {
			return fmt.Sprintf("(if %s < %s then %s else %s)", c, d, a, b), av
		}
		return fmt.Sprintf("(if %s < %s then %s else %s)", c, d, a, b), bv
	default:
		// Introduce a binding usable by later sub-expressions.
		a, av := g.expr(depth - 1)
		name := fmt.Sprintf("v%d", g.n)
		g.n++
		fmt.Fprintf(&g.buf, "\t%s = %s;\n", name, a)
		g.binds = append(g.binds, name)
		g.vals = append(g.vals, av)
		return name, av
	}
}

// TestRandomExpressionPrograms pushes random expression programs through
// the full pipeline (frontend → graph → translate → partition → simulator)
// and compares against the value computed during generation.
func TestRandomExpressionPrograms(t *testing.T) {
	f := func(seed int64) bool {
		g := &exprGen{rng: rand.New(rand.NewSource(seed))}
		expr, want := g.expr(5)
		src := fmt.Sprintf("func main() -> float {\n%s\treturn %s;\n}\n", g.buf.String(), expr)

		gp, err := idlang.Compile("rand.id", src)
		if err != nil {
			t.Logf("seed %d: compile error: %v\nsource:\n%s", seed, err, src)
			return false
		}
		prog, err := translate.Translate(gp)
		if err != nil {
			t.Logf("seed %d: translate: %v", seed, err)
			return false
		}
		if _, err := partition.Partition(prog, partition.Options{}); err != nil {
			t.Logf("seed %d: partition: %v", seed, err)
			return false
		}
		m, err := sim.New(prog, sim.Config{NumPEs: 2})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		res, err := m.Run()
		if err != nil {
			t.Logf("seed %d: run: %v\nsource:\n%s", seed, err, src)
			return false
		}
		if res.MainValue == nil {
			t.Logf("seed %d: no result", seed)
			return false
		}
		got := res.MainValue.F
		if res.MainValue.Kind == "int" {
			got = float64(res.MainValue.I)
		}
		if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
			t.Logf("seed %d: got %v want %v\nsource:\n%s", seed, got, want, src)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestRandomFillPrograms generates random affine 2-D fills with conditional
// writes and checks every element on several PE counts.
func TestRandomFillPrograms(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(8)
		ai := rng.Intn(7) - 3
		aj := rng.Intn(7) - 3
		c := rng.Intn(20)
		mod := 2 + rng.Intn(3)
		src := fmt.Sprintf(`
func main(n: int) {
	A = array(n, n);
	for i = 1 to n {
		for j = 1 to n {
			base = float(%d * i + %d * j + %d);
			if (i + j) %% %d == 0 {
				A[i, j] = base * 2.0;
			} else {
				A[i, j] = base;
			}
		}
	}
}`, ai, aj, c, mod)
		gp, err := idlang.Compile("fill.id", src)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		prog, err := translate.Translate(gp)
		if err != nil {
			return false
		}
		if _, err := partition.Partition(prog, partition.Options{}); err != nil {
			return false
		}
		for _, pes := range []int{1, 3} {
			m, err := sim.New(prog, sim.Config{NumPEs: pes, PageElems: 8, DistThreshold: 16})
			if err != nil {
				return false
			}
			if _, err := m.Run(isa.Int(int64(n))); err != nil {
				t.Logf("seed %d pes %d: %v", seed, pes, err)
				return false
			}
			vals, mask, _, err := m.ReadArray("A")
			if err != nil {
				return false
			}
			for i := 1; i <= n; i++ {
				for j := 1; j <= n; j++ {
					want := float64(ai*i + aj*j + c)
					if (i+j)%mod == 0 {
						want *= 2
					}
					off := (i-1)*n + j - 1
					if !mask[off] || vals[off] != want {
						t.Logf("seed %d pes %d: A[%d,%d]=%v written=%v want %v", seed, pes, i, j, vals[off], mask[off], want)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestRandomReductions checks loop-carried sums of random affine series on
// random loop directions against the closed form.
func TestRandomReductions(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int64(1 + rng.Intn(50))
		a := int64(rng.Intn(9) - 4)
		b := int64(rng.Intn(9))
		down := rng.Intn(2) == 1
		dir := "1 to n"
		if down {
			dir = "n downto 1"
		}
		src := fmt.Sprintf(`
func main(n: int) -> int {
	s = 0;
	for k = %s {
		next s = s + (%d * k + %d);
	}
	return s;
}`, dir, a, b)
		var want int64
		for k := int64(1); k <= n; k++ {
			want += a*k + b
		}
		gp, err := idlang.Compile("red.id", src)
		if err != nil {
			return false
		}
		prog, err := translate.Translate(gp)
		if err != nil {
			return false
		}
		if _, err := partition.Partition(prog, partition.Options{}); err != nil {
			return false
		}
		m, err := sim.New(prog, sim.Config{NumPEs: 1})
		if err != nil {
			return false
		}
		res, err := m.Run(isa.Int(n))
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if res.MainValue == nil || res.MainValue.I != want {
			t.Logf("seed %d: got %+v want %d", seed, res.MainValue, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
