// Package idlang implements Idlite, an Id Nouveau-inspired single-assignment
// language (paper §2): scalars bind exactly once, arrays are I-structures
// written at most once per element, loops may carry scalars with `next`, and
// all parallelism is implicit. The compiler lowers source to the dataflow
// graph IR of internal/graph, which stands in for the MIT Id Nouveau
// compiler in the PODS pipeline (paper Figure 3).
package idlang

import "fmt"

// TokKind classifies tokens.
type TokKind uint8

// Token kinds.
const (
	TokEOF TokKind = iota + 1
	TokIdent
	TokInt
	TokFloat
	TokKeyword
	TokPunct
)

// Pos is a source position.
type Pos struct {
	Line int
	Col  int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Text string
	Pos  Pos
}

func (t Token) String() string {
	if t.Kind == TokEOF {
		return "end of file"
	}
	return fmt.Sprintf("%q", t.Text)
}

var keywords = map[string]bool{
	"func": true, "for": true, "to": true, "downto": true, "while": true,
	"if": true, "then": true, "else": true, "return": true,
	"next": true, "true": true, "false": true,
	"int": true, "float": true, "bool": true,
	"array1": true, "array2": true,
}

// Error is a source-located compile error.
type Error struct {
	File string
	Pos  Pos
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%s:%s: %s", e.File, e.Pos, e.Msg)
}

func errf(file string, pos Pos, format string, args ...interface{}) error {
	return &Error{File: file, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
