package idlang

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// lexer tokenizes Idlite source. Comments run from '#' to end of line.
type lexer struct {
	file string
	src  string
	off  int
	pos  Pos
}

func newLexer(file, src string) *lexer {
	return &lexer{file: file, src: src, pos: Pos{Line: 1, Col: 1}}
}

func (lx *lexer) peekByte() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *lexer) advance() byte {
	b := lx.src[lx.off]
	lx.off++
	if b == '\n' {
		lx.pos.Line++
		lx.pos.Col = 1
	} else {
		lx.pos.Col++
	}
	return b
}

func (lx *lexer) skipSpaceAndComments() {
	for lx.off < len(lx.src) {
		b := lx.peekByte()
		switch {
		case b == ' ' || b == '\t' || b == '\r' || b == '\n':
			lx.advance()
		case b == '#':
			for lx.off < len(lx.src) && lx.peekByte() != '\n' {
				lx.advance()
			}
		default:
			return
		}
	}
}

// twoBytePuncts are the multi-character operators.
var twoBytePuncts = map[string]bool{
	"<=": true, ">=": true, "==": true, "!=": true,
	"&&": true, "||": true, "->": true,
}

// next returns the next token.
func (lx *lexer) next() (Token, error) {
	lx.skipSpaceAndComments()
	start := lx.pos
	if lx.off >= len(lx.src) {
		return Token{Kind: TokEOF, Pos: start}, nil
	}
	b := lx.peekByte()
	r, rlen := utf8.DecodeRuneInString(lx.src[lx.off:])
	switch {
	case isIdentStartRune(r):
		var sb strings.Builder
		for lx.off < len(lx.src) {
			r, rlen = utf8.DecodeRuneInString(lx.src[lx.off:])
			if !isIdentPartRune(r) {
				break
			}
			sb.WriteRune(r)
			for i := 0; i < rlen; i++ {
				lx.advance()
			}
		}
		text := sb.String()
		kind := TokIdent
		if keywords[text] {
			kind = TokKeyword
		}
		return Token{Kind: kind, Text: text, Pos: start}, nil

	case b >= '0' && b <= '9':
		var sb strings.Builder
		isFloat := false
		for lx.off < len(lx.src) {
			c := lx.peekByte()
			if c >= '0' && c <= '9' {
				sb.WriteByte(lx.advance())
				continue
			}
			if c == '.' && !isFloat && lx.off+1 < len(lx.src) && lx.src[lx.off+1] >= '0' && lx.src[lx.off+1] <= '9' {
				isFloat = true
				sb.WriteByte(lx.advance())
				continue
			}
			if (c == 'e' || c == 'E') && lx.off+1 < len(lx.src) {
				nxt := lx.src[lx.off+1]
				if nxt >= '0' && nxt <= '9' || ((nxt == '+' || nxt == '-') && lx.off+2 < len(lx.src) && lx.src[lx.off+2] >= '0' && lx.src[lx.off+2] <= '9') {
					isFloat = true
					sb.WriteByte(lx.advance()) // e
					if lx.peekByte() == '+' || lx.peekByte() == '-' {
						sb.WriteByte(lx.advance())
					}
					for lx.off < len(lx.src) && lx.peekByte() >= '0' && lx.peekByte() <= '9' {
						sb.WriteByte(lx.advance())
					}
					break
				}
			}
			break
		}
		kind := TokInt
		if isFloat {
			kind = TokFloat
		}
		return Token{Kind: kind, Text: sb.String(), Pos: start}, nil

	default:
		if lx.off+1 < len(lx.src) {
			two := lx.src[lx.off : lx.off+2]
			if twoBytePuncts[two] {
				lx.advance()
				lx.advance()
				return Token{Kind: TokPunct, Text: two, Pos: start}, nil
			}
		}
		if strings.ContainsRune("()[]{},;:=+-*/%<>!", rune(b)) {
			lx.advance()
			return Token{Kind: TokPunct, Text: string(b), Pos: start}, nil
		}
		return Token{}, errf(lx.file, start, "unexpected character %q", string(r))
	}
}

func isIdentStartRune(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPartRune(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// lexAll tokenizes the whole source (including the trailing EOF token).
func lexAll(file, src string) ([]Token, error) {
	lx := newLexer(file, src)
	var toks []Token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}
