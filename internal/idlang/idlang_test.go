package idlang_test

import (
	"strings"
	"testing"

	"repro/internal/idlang"
	"repro/internal/isa"
	"repro/internal/partition"
	"repro/internal/sim"
	"repro/internal/translate"
)

// run compiles source through the whole pipeline and simulates it.
func run(t *testing.T, src string, pes int, args ...isa.Value) (*sim.Result, *sim.Machine) {
	t.Helper()
	gp, err := idlang.Compile("test.id", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	prog, err := translate.Translate(gp)
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	if _, err := partition.Partition(prog, partition.Options{}); err != nil {
		t.Fatalf("partition: %v", err)
	}
	m, err := sim.New(prog, sim.Config{NumPEs: pes, PageElems: 8, DistThreshold: 16})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(args...)
	if err != nil {
		t.Fatalf("run (PEs=%d): %v", pes, err)
	}
	return res, m
}

func wantCompileError(t *testing.T, src, fragment string) {
	t.Helper()
	_, err := idlang.Compile("test.id", src)
	if err == nil {
		t.Fatalf("expected compile error containing %q, got success", fragment)
	}
	if !strings.Contains(err.Error(), fragment) {
		t.Fatalf("error %q does not contain %q", err, fragment)
	}
}

func TestScalarArithmetic(t *testing.T) {
	res, _ := run(t, `
func main() -> float {
	x = 3.0;
	y = x * x + 1.5;
	return sqrt(y) + float(2);
}`, 1)
	want := 3.2404 // sqrt(10.5) + 2 ≈ 5.2404... recompute below
	_ = want
	if res.MainValue == nil {
		t.Fatal("no result")
	}
	got := res.MainValue.F
	if got < 5.24 || got > 5.241 {
		t.Fatalf("result = %v, want ≈ 5.2404", got)
	}
}

func TestIntOpsAndMod(t *testing.T) {
	res, _ := run(t, `
func main(n: int) -> int {
	a = n / 3;
	b = n % 7;
	return a * 100 + b;
}`, 1, isa.Int(23))
	if res.MainValue == nil || res.MainValue.I != 702 {
		t.Fatalf("result = %+v, want 702", res.MainValue)
	}
}

func TestIfExpressionAndComparisons(t *testing.T) {
	res, _ := run(t, `
func main(n: int) -> int {
	v = if n > 10 && n != 12 then n * 2 else 0 - n;
	return v;
}`, 1, isa.Int(11))
	if res.MainValue == nil || res.MainValue.I != 22 {
		t.Fatalf("result = %+v, want 22", res.MainValue)
	}
	res2, _ := run(t, `
func main(n: int) -> int {
	v = if n > 10 && n != 12 then n * 2 else 0 - n;
	return v;
}`, 1, isa.Int(12))
	if res2.MainValue == nil || res2.MainValue.I != -12 {
		t.Fatalf("result = %+v, want -12", res2.MainValue)
	}
}

func TestIfExpressionPromotion(t *testing.T) {
	res, _ := run(t, `
func main(n: int) -> float {
	v = if n > 0 then 1 else 2.5;
	return v;
}`, 1, isa.Int(1))
	if res.MainValue == nil || res.MainValue.F != 1.0 || res.MainValue.Kind != "float" {
		t.Fatalf("result = %+v, want float 1.0", res.MainValue)
	}
}

func TestFunctionCall(t *testing.T) {
	res, _ := run(t, `
func sq(x: float) -> float {
	return x * x;
}
func main() -> float {
	return sq(3.0) + sq(4.0);
}`, 1)
	if res.MainValue == nil || res.MainValue.F != 25 {
		t.Fatalf("result = %+v, want 25", res.MainValue)
	}
}

func TestLoopCarriedSum(t *testing.T) {
	res, _ := run(t, `
func main(n: int) -> int {
	s = 0;
	for k = 1 to n {
		next s = s + k;
	}
	return s;
}`, 1, isa.Int(100))
	if res.MainValue == nil || res.MainValue.I != 5050 {
		t.Fatalf("sum = %+v, want 5050", res.MainValue)
	}
}

func TestDownToLoop(t *testing.T) {
	res, _ := run(t, `
func main(n: int) -> int {
	s = 0;
	last = 0;
	for k = n downto 1 {
		next s = s + k;
		next last = k;
	}
	return s * 10 + last;
}`, 1, isa.Int(4))
	if res.MainValue == nil || res.MainValue.I != 101 {
		t.Fatalf("result = %+v, want 101 (sum 10, last k = 1)", res.MainValue)
	}
}

func TestArrayFillDistributed(t *testing.T) {
	src := `
func main(n: int, m: int) {
	A = array(n, m);
	for i = 1 to n {
		for j = 1 to m {
			A[i, j] = float(i * 100 + j);
		}
	}
}`
	for _, pes := range []int{1, 4} {
		_, m := run(t, src, pes, isa.Int(8), isa.Int(8))
		vals, mask, _, err := m.ReadArray("A")
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i <= 8; i++ {
			for j := 1; j <= 8; j++ {
				off := (i-1)*8 + j - 1
				if !mask[off] {
					t.Fatalf("PEs=%d: A[%d,%d] unwritten", pes, i, j)
				}
				if want := float64(i*100 + j); vals[off] != want {
					t.Fatalf("PEs=%d: A[%d,%d]=%v want %v", pes, i, j, vals[off], want)
				}
			}
		}
	}
}

func TestMatmulSource(t *testing.T) {
	src := `
func main(n: int) {
	A = array(n, n);
	B = array(n, n);
	for i = 1 to n {
		for j = 1 to n {
			A[i, j] = float(i + j);
			B[i, j] = float(i - j);
		}
	}
	C = array(n, n);
	for i2 = 1 to n {
		for j2 = 1 to n {
			s = 0.0;
			for k = 1 to n {
				next s = s + A[i2, k] * B[k, j2];
			}
			C[i2, j2] = s;
		}
	}
}`
	const n = 6
	for _, pes := range []int{1, 3} {
		_, m := run(t, src, pes, isa.Int(n))
		vals, mask, _, err := m.ReadArray("C")
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i <= n; i++ {
			for j := 1; j <= n; j++ {
				want := 0.0
				for k := 1; k <= n; k++ {
					want += float64(i+k) * float64(k-j)
				}
				off := (i-1)*n + j - 1
				if !mask[off] {
					t.Fatalf("PEs=%d: C[%d,%d] unwritten", pes, i, j)
				}
				if vals[off] != want {
					t.Fatalf("PEs=%d: C[%d,%d]=%v want %v", pes, i, j, vals[off], want)
				}
			}
		}
	}
}

func TestSweepWithLCDStaysCorrect(t *testing.T) {
	// Forward sweep: V[i] = V[i-1] + 1 with V[1] = 1; LCD at i.
	src := `
func main(n: int) {
	V = array(n);
	V[1] = 1.0;
	for i = 2 to n {
		V[i] = V[i - 1] + 1.0;
	}
}`
	gp, err := idlang.Compile("test.id", src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := translate.Translate(gp)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := partition.Partition(prog, partition.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Distributed) != 0 {
		t.Fatalf("sweep loop must not be distributed:\n%s", rep)
	}
	if len(rep.Serial) != 1 {
		t.Fatalf("sweep loop should be reported serial:\n%s", rep)
	}
	m, err := sim.New(prog, sim.Config{NumPEs: 4, PageElems: 8, DistThreshold: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(isa.Int(32)); err != nil {
		t.Fatal(err)
	}
	vals, _, _, _ := m.ReadArray("V")
	for i := 0; i < 32; i++ {
		if vals[i] != float64(i+1) {
			t.Fatalf("V[%d]=%v want %v", i+1, vals[i], i+1)
		}
	}
}

func TestIfStatementConditionalWrite(t *testing.T) {
	src := `
func main(n: int) {
	A = array(n);
	for i = 1 to n {
		if i % 2 == 0 {
			A[i] = 2.0;
		} else {
			A[i] = 1.0;
		}
	}
}`
	_, m := run(t, src, 2, isa.Int(10))
	vals, _, _, _ := m.ReadArray("A")
	for i := 1; i <= 10; i++ {
		want := 1.0
		if i%2 == 0 {
			want = 2.0
		}
		if vals[i-1] != want {
			t.Fatalf("A[%d]=%v want %v", i, vals[i-1], want)
		}
	}
}

func TestVoidFunctionFillsArray(t *testing.T) {
	src := `
func fill(A: array1, n: int, base: float) {
	for i = 1 to n {
		A[i] = base + float(i);
	}
}
func main(n: int) {
	A = array(n);
	fill(A, n, 10.0);
}`
	_, m := run(t, src, 2, isa.Int(12))
	vals, mask, _, _ := m.ReadArray("A")
	for i := 1; i <= 12; i++ {
		if !mask[i-1] || vals[i-1] != 10+float64(i) {
			t.Fatalf("A[%d]=%v (written=%v) want %v", i, vals[i-1], mask[i-1], 10+float64(i))
		}
	}
}

func TestDeterminacyAcrossPECounts(t *testing.T) {
	// Church-Rosser: same values regardless of PE count / scheduling.
	src := `
func main(n: int) {
	A = array(n, n);
	B = array(n, n);
	for i = 1 to n {
		for j = 1 to n {
			A[i, j] = float(i) * 1.5 + float(j);
		}
	}
	for i2 = 1 to n {
		for j2 = 1 to n {
			B[i2, j2] = A[i2, j2] * 2.0;
		}
	}
}`
	var ref []float64
	for _, pes := range []int{1, 2, 4, 8} {
		_, m := run(t, src, pes, isa.Int(10))
		vals, _, _, _ := m.ReadArray("B")
		if ref == nil {
			ref = vals
			continue
		}
		for i := range vals {
			if vals[i] != ref[i] {
				t.Fatalf("PEs=%d: B[%d]=%v differs from 1-PE run %v", pes, i, vals[i], ref[i])
			}
		}
	}
}

func TestErrorMessages(t *testing.T) {
	wantCompileError(t, `func main() { x = 1; x = 2; }`, "already bound")
	wantCompileError(t, `func main() { return 1; }`, "void function")
	wantCompileError(t, `func f() -> int { return 1; } func main() { f(); }`, "discarded")
	wantCompileError(t, `func main() { y = x + 1; }`, "undefined name")
	wantCompileError(t, `func main() { A = array(2); A[1, 2] = 1.0; }`, "1 dimension")
	wantCompileError(t, `func main() { next s = 1; }`, "only allowed at the top level of a loop")
	wantCompileError(t, `func main() { s = 1; for i = 1 to 2 { if true { next s = 1; } } }`, "top level of a loop")
	wantCompileError(t, `func main() { for i = 1 to 2 { i = 3; } }`, "already bound")
	wantCompileError(t, `func main() { x = 1.5 % 2.0; }`, "needs int operands")
	wantCompileError(t, `func main() { b = true + 1; }`, "needs numeric operands")
	wantCompileError(t, `func main() -> int { }`, "must end with a return")
	wantCompileError(t, `func f(x: int) -> int { return x; }`, "no main function")
	wantCompileError(t, `func main() { x = array(2) + 1; }`, "only appear directly in a binding")
}

func TestSiblingLoopsMayReuseVarNames(t *testing.T) {
	// Two sequential loops can both use "i" — shadowing is only rejected
	// along a single scope chain.
	res, _ := run(t, `
func main(n: int) -> int {
	a = 0;
	for i = 1 to n {
		next a = a + i;
	}
	b = 0;
	for i = 1 to n {
		next b = b + i * 2;
	}
	return a + b;
}`, 1, isa.Int(10))
	if res.MainValue == nil || res.MainValue.I != 165 {
		t.Fatalf("result = %+v, want 165", res.MainValue)
	}
}

func TestParseErrorsHavePositions(t *testing.T) {
	_, err := idlang.Compile("demo.id", "func main( {")
	if err == nil || !strings.Contains(err.Error(), "demo.id:1:") {
		t.Fatalf("parse error should carry file:line: %v", err)
	}
}

func TestLexerRejectsBadChar(t *testing.T) {
	_, err := idlang.Compile("x.id", "func main() { a = 1 $ 2; }")
	if err == nil || !strings.Contains(err.Error(), "unexpected character") {
		t.Fatalf("err = %v", err)
	}
}

func TestCommentsAndFloats(t *testing.T) {
	res, _ := run(t, `
# leading comment
func main() -> float {
	a = 1.5e2;   # 150
	b = 2.5;
	return a / b;  # 60
}`, 1)
	if res.MainValue == nil || res.MainValue.F != 60 {
		t.Fatalf("result = %+v, want 60", res.MainValue)
	}
}

func TestWhileLoopNewton(t *testing.T) {
	// Newton iteration for sqrt(c), starting at g = c ≥ 1.
	res, _ := run(t, `
func main(x: int) -> float {
	c = float(x);
	g = c;
	while g * g - c > 0.000001 {
		next g = 0.5 * (g + c / g);
	}
	return g;
}`, 1, isa.Int(49))
	if res.MainValue == nil {
		t.Fatal("no result")
	}
	if got := res.MainValue.F; got < 6.999999 || got > 7.000001 {
		t.Fatalf("sqrt(49) ≈ %v, want ≈ 7", got)
	}
}

func TestWhileLoopCollatzSteps(t *testing.T) {
	res, _ := run(t, `
func main(x: int) -> int {
	v = x;
	steps = 0;
	while v != 1 {
		next v = if v % 2 == 0 then v / 2 else 3 * v + 1;
		next steps = steps + 1;
	}
	return steps;
}`, 1, isa.Int(27))
	if res.MainValue == nil || res.MainValue.I != 111 {
		t.Fatalf("collatz(27) = %+v, want 111 steps", res.MainValue)
	}
}

func TestWhileZeroIterations(t *testing.T) {
	res, _ := run(t, `
func main() -> int {
	v = 10;
	while v < 10 {
		next v = v + 1;
	}
	return v;
}`, 1)
	if res.MainValue == nil || res.MainValue.I != 10 {
		t.Fatalf("result = %+v, want 10 (condition false at entry)", res.MainValue)
	}
}

func TestWhileInsideForWritesArray(t *testing.T) {
	// Integer log2 per element via a while loop nested in a distributed
	// for loop: while loops stay local, the for loop distributes.
	src := `
func main(n: int) {
	A = array(n);
	for i = 1 to n {
		v = i;
		steps = 0;
		while v > 1 {
			next v = v / 2;
			next steps = steps + 1;
		}
		A[i] = float(steps);
	}
}`
	for _, pes := range []int{1, 4} {
		_, m := run(t, src, pes, isa.Int(16))
		vals, mask, _, _ := m.ReadArray("A")
		for i := 1; i <= 16; i++ {
			want := 0
			for v := i; v > 1; v /= 2 {
				want++
			}
			if !mask[i-1] || vals[i-1] != float64(want) {
				t.Fatalf("PEs=%d: A[%d]=%v written=%v, want %d", pes, i, vals[i-1], mask[i-1], want)
			}
		}
	}
}

func TestWhileNeverDistributed(t *testing.T) {
	gp, err := idlang.Compile("w.id", `
func main(n: int) {
	A = array(n);
	k = 1;
	while k <= n {
		A[k] = float(k);
		next k = k + 1;
	}
}`)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := translate.Translate(gp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := partition.Partition(prog, partition.Options{}); err != nil {
		t.Fatal(err)
	}
	for _, tm := range prog.Templates {
		if tm.Loop != nil && tm.Loop.IsWhile {
			if tm.Distributed {
				t.Fatal("while loop must never be distributed")
			}
			if !tm.Loop.HasLCD {
				t.Fatal("while loop must be conservatively carried")
			}
		}
	}
	m, err := sim.New(prog, sim.Config{NumPEs: 4, PageElems: 8, DistThreshold: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(isa.Int(20)); err != nil {
		t.Fatal(err)
	}
	vals, mask, _, _ := m.ReadArray("A")
	for i := 0; i < 20; i++ {
		if !mask[i] || vals[i] != float64(i+1) {
			t.Fatalf("A[%d]=%v written=%v", i+1, vals[i], mask[i])
		}
	}
}

func TestWhileConditionMustBeBool(t *testing.T) {
	wantCompileError(t, `func main() { v = 1; while v { next v = v - 1; } }`, "must be bool")
}

func TestDistributedTemplateReusedAcrossCalls(t *testing.T) {
	// One distributed fill template is LD-spawned twice with different
	// array bindings — both invocations must partition and run correctly.
	src := `
func fill(A: array2, n: int, base: float) {
	for i = 1 to n {
		for j = 1 to n {
			A[i, j] = base + float(i * 100 + j);
		}
	}
}
func main(n: int) {
	X = array(n, n);
	Y = array(n, n);
	fill(X, n, 0.0);
	fill(Y, n, 0.5);
}`
	for _, pes := range []int{1, 4} {
		_, m := run(t, src, pes, isa.Int(8))
		for arr, base := range map[string]float64{"X": 0, "Y": 0.5} {
			vals, mask, _, err := m.ReadArray(arr)
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i <= 8; i++ {
				for j := 1; j <= 8; j++ {
					off := (i-1)*8 + j - 1
					if !mask[off] || vals[off] != base+float64(i*100+j) {
						t.Fatalf("PEs=%d: %s[%d,%d]=%v written=%v", pes, arr, i, j, vals[off], mask[off])
					}
				}
			}
		}
	}
}

func TestTriangularLoop(t *testing.T) {
	// Inner bound depends on the outer variable; the RF clamp composes
	// with the data-dependent limit.
	src := `
func main(n: int) {
	A = array(n, n);
	for i = 1 to n {
		for j = 1 to i {
			A[i, j] = float(i * 10 + j);
		}
	}
}`
	for _, pes := range []int{1, 4} {
		_, m := run(t, src, pes, isa.Int(10))
		vals, mask, _, _ := m.ReadArray("A")
		for i := 1; i <= 10; i++ {
			for j := 1; j <= 10; j++ {
				off := (i-1)*10 + j - 1
				if j <= i {
					if !mask[off] || vals[off] != float64(i*10+j) {
						t.Fatalf("PEs=%d: A[%d,%d]=%v written=%v", pes, i, j, vals[off], mask[off])
					}
				} else if mask[off] {
					t.Fatalf("PEs=%d: A[%d,%d] written outside triangle", pes, i, j)
				}
			}
		}
	}
}

func TestEmptyLoopRange(t *testing.T) {
	res, _ := run(t, `
func main() -> int {
	s = 100;
	for k = 5 to 1 {
		next s = s + k;
	}
	return s;
}`, 1)
	if res.MainValue == nil || res.MainValue.I != 100 {
		t.Fatalf("empty ascending range: %+v, want 100", res.MainValue)
	}
}

func TestIfBranchBindingsDoNotLeak(t *testing.T) {
	wantCompileError(t, `
func main(n: int) -> int {
	if n > 0 {
		x = 1;
	}
	return x;
}`, "undefined name")
}

func TestIfBranchBindingsAreBranchLocal(t *testing.T) {
	// The same name may be bound in both branches without conflict.
	res, _ := run(t, `
func main(n: int) {
	A = array(4);
	if n > 0 {
		v = 1.0;
		A[1] = v;
	} else {
		v = 2.0;
		A[1] = v;
	}
}`, 1, isa.Int(5))
	_ = res
}

func TestCarriedLoopInsideIfRejected(t *testing.T) {
	wantCompileError(t, `
func main(n: int) -> int {
	s = 0;
	if n > 0 {
		for k = 1 to n {
			next s = s + k;
		}
	}
	return s;
}`, "cannot appear inside an if branch")
}

func TestInnerLoopUpdateNeedsNextAtOuterLevel(t *testing.T) {
	wantCompileError(t, `
func main(n: int) -> int {
	s = 0;
	for i = 1 to n {
		for k = 1 to n {
			next s = s + k;
		}
	}
	return s;
}`, "not declared `next s`")
}

func TestNestedAccumulationIdiom(t *testing.T) {
	// The documented idiom: re-declare `next s = s;` at the outer level.
	res, _ := run(t, `
func main(n: int) -> int {
	s = 0;
	for i = 1 to n {
		for k = 1 to n {
			next s = s + 1;
		}
		next s = s;
	}
	return s;
}`, 1, isa.Int(5))
	if res.MainValue == nil || res.MainValue.I != 25 {
		t.Fatalf("result %+v, want 25", res.MainValue)
	}
}
