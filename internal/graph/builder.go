package graph

import (
	"fmt"

	"repro/internal/isa"
)

// Builder incrementally constructs a dataflow Program. It is the public
// construction surface used by the Idlite frontend and by tests/examples
// that build graphs directly.
type Builder struct {
	prog *Program
}

// NewBuilder returns an empty program builder.
func NewBuilder() *Builder {
	return &Builder{prog: &Program{Entry: -1, ArrayDims: make(map[string]int)}}
}

// Program finalizes and validates the program.
func (bl *Builder) Program() (*Program, error) {
	if err := bl.prog.Validate(); err != nil {
		return nil, err
	}
	return bl.prog, nil
}

// DeclareArray records the dimensionality of a source-level array name.
func (bl *Builder) DeclareArray(name string, dims int) { bl.prog.ArrayDims[name] = dims }

// NewBlock appends a block and returns a block builder for it.
func (bl *Builder) NewBlock(name string, kind BlockKind, params []Param) *BlockBuilder {
	b := &Block{
		ID:     len(bl.prog.Blocks),
		Name:   name,
		Kind:   kind,
		Params: params,
		Result: -1,
	}
	bl.prog.Blocks = append(bl.prog.Blocks, b)
	if kind == BlockMain {
		bl.prog.Entry = b.ID
	}
	return &BlockBuilder{bl: bl, b: b}
}

// BlockBuilder adds nodes to one block. Nodes are appended either to the
// block body or, between BeginThen/BeginElse and EndIf, to the open region.
type BlockBuilder struct {
	bl      *Builder
	b       *Block
	regions []*Region // region stack; nil entries are impossible
}

// Block returns the underlying block (for setting LoopMeta etc.).
func (bb *BlockBuilder) Block() *Block { return bb.b }

func (bb *BlockBuilder) add(n *Node) int {
	n.ID = len(bb.b.Nodes)
	bb.b.Nodes = append(bb.b.Nodes, n)
	if len(bb.regions) > 0 {
		r := bb.regions[len(bb.regions)-1]
		r.Nodes = append(r.Nodes, n.ID)
	} else {
		bb.b.Body = append(bb.b.Body, n.ID)
	}
	return n.ID
}

// Param materializes parameter i as a node.
func (bb *BlockBuilder) Param(i int) int {
	t := isa.KindInvalid
	if i >= 0 && i < len(bb.b.Params) {
		t = bb.b.Params[i].Type
	}
	return bb.add(&Node{Op: OpParam, Imm: isa.Int(int64(i)), Type: t, HasValue: true})
}

// ImportParam appends a new parameter declaration and materializes it as a
// node at the block's top level — even while an if-region is open — so that
// lazily imported free variables are always visible to every consumer in the
// block. Param nodes emit no instructions, so top-level placement is safe.
func (bb *BlockBuilder) ImportParam(name string, t isa.Kind) int {
	idx := len(bb.b.Params)
	bb.b.Params = append(bb.b.Params, Param{Name: name, Type: t})
	n := &Node{Op: OpParam, Imm: isa.Int(int64(idx)), Type: t, HasValue: true}
	n.ID = len(bb.b.Nodes)
	bb.b.Nodes = append(bb.b.Nodes, n)
	bb.b.Body = append(bb.b.Body, n.ID)
	return n.ID
}

// AppendParamDecl appends a parameter declaration without materializing a
// node (used for loop-carried initial values, which are wired by the
// translator's parameter convention rather than referenced as nodes).
func (bb *BlockBuilder) AppendParamDecl(name string, t isa.Kind) {
	bb.b.Params = append(bb.b.Params, Param{Name: name, Type: t})
}

// Const materializes a literal.
func (bb *BlockBuilder) Const(v isa.Value) int {
	return bb.add(&Node{Op: OpConst, Imm: v, Type: v.Kind, HasValue: true})
}

// LoopVar materializes the loop block's index variable.
func (bb *BlockBuilder) LoopVar() int {
	return bb.add(&Node{Op: OpLoopVar, Type: isa.KindInt, HasValue: true})
}

// CarriedVar materializes carried scalar i's current-iteration value.
func (bb *BlockBuilder) CarriedVar(i int, t isa.Kind) int {
	return bb.add(&Node{Op: OpCarried, Imm: isa.Int(int64(i)), Type: t, HasValue: true})
}

// Unary adds a one-input operator.
func (bb *BlockBuilder) Unary(op Op, t isa.Kind, x int) int {
	return bb.add(&Node{Op: op, Type: t, In: []int{x}, HasValue: true})
}

// Binary adds a two-input operator.
func (bb *BlockBuilder) Binary(op Op, t isa.Kind, x, y int) int {
	return bb.add(&Node{Op: op, Type: t, In: []int{x, y}, HasValue: true})
}

// Alloc adds an array allocation.
func (bb *BlockBuilder) Alloc(name string, extents []int) int {
	bb.bl.DeclareArray(name, len(extents))
	return bb.add(&Node{Op: OpAlloc, Type: isa.KindArray, In: extents, Name: name, HasValue: true})
}

// ARead adds an I-structure read of arr at the given indices.
func (bb *BlockBuilder) ARead(name string, arr int, idx []int, subs []Subscript) int {
	in := append([]int{arr}, idx...)
	return bb.add(&Node{Op: OpARead, Type: isa.KindFloat, In: in, Name: name, Subs: subs, HasValue: true})
}

// AWrite adds an I-structure write of val to arr at the given indices.
func (bb *BlockBuilder) AWrite(name string, arr int, idx []int, val int, subs []Subscript) int {
	in := append(append([]int{arr}, idx...), val)
	return bb.add(&Node{Op: OpAWrite, In: in, Name: name, Subs: subs})
}

// Call adds a function invocation (an L operator entering a function block).
func (bb *BlockBuilder) Call(callee *Block, args []int) int {
	n := &Node{Op: OpCall, Callee: callee.ID, In: args}
	if callee.Result >= 0 {
		n.HasValue = true
		n.Type = callee.ResultType
	}
	return bb.add(n)
}

// ForLoop adds a loop invocation. Inputs: init, limit, free-variable args,
// carried initial values (matching the loop block's parameter convention).
func (bb *BlockBuilder) ForLoop(callee *Block, init, limit int, frees, carriedInit []int) int {
	in := append([]int{init, limit}, frees...)
	in = append(in, carriedInit...)
	return bb.add(&Node{Op: OpLoop, Callee: callee.ID, In: in})
}

// WhileLoop adds a condition-controlled loop invocation. Inputs:
// free-variable args then carried initial values (no bounds).
func (bb *BlockBuilder) WhileLoop(callee *Block, frees, carriedInit []int) int {
	in := append(append([]int{}, frees...), carriedInit...)
	return bb.add(&Node{Op: OpLoop, Callee: callee.ID, In: in})
}

// LoopOut extracts carried scalar i's final value from a loop node.
func (bb *BlockBuilder) LoopOut(loop int, i int, t isa.Kind) int {
	return bb.add(&Node{Op: OpLoopOut, Imm: isa.Int(int64(i)), In: []int{loop}, Type: t, HasValue: true})
}

// If opens a conditional node; nodes added until EndThen/EndIf land in the
// respective region. Usage:
//
//	id := bb.If(cond)
//	... then nodes ...; bb.EndThen(id, thenResult)
//	... else nodes ...; bb.EndIf(id, elseResult)
func (bb *BlockBuilder) If(cond int) int {
	n := &Node{Op: OpIf, In: []int{cond}, Then: &Region{Result: -1}, Else: &Region{Result: -1}}
	id := bb.add(n)
	bb.regions = append(bb.regions, n.Then)
	return id
}

// EndThen closes the then-region (result -1 for statement ifs) and opens
// the else-region.
func (bb *BlockBuilder) EndThen(ifNode int, result int) {
	n := bb.b.Node(ifNode)
	n.Then.Result = result
	bb.regions[len(bb.regions)-1] = n.Else
}

// EndIf closes the else-region and finalizes the node's result typing.
func (bb *BlockBuilder) EndIf(ifNode int, result int) {
	n := bb.b.Node(ifNode)
	n.Else.Result = result
	bb.regions = bb.regions[:len(bb.regions)-1]
	if n.Then.Result >= 0 && n.Else.Result >= 0 {
		n.HasValue = true
		n.Type = bb.b.Node(n.Then.Result).Type
	}
}

// SetLoop attaches loop metadata to a loop block.
func (bb *BlockBuilder) SetLoop(meta *LoopMeta) { bb.b.Loop = meta }

// Return designates the block's result node.
func (bb *BlockBuilder) Return(node int, t isa.Kind) {
	bb.b.Result = node
	bb.b.ResultType = t
}

// Sub returns an affine subscript descriptor.
func Sub(varName string, off int64) Subscript { return Subscript{Var: varName, Off: off, Affine: true} }

// SubOther returns a non-affine subscript descriptor.
func SubOther() Subscript { return Subscript{} }

// Err is a convenience for frontend error construction with block context.
func Err(b *Block, format string, args ...interface{}) error {
	return fmt.Errorf("block %q: %s", b.Name, fmt.Sprintf(format, args...))
}
