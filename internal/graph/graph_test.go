package graph

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

func TestBuilderBasicProgram(t *testing.T) {
	b := NewBuilder()
	mb := b.NewBlock("main", BlockMain, []Param{{Name: "n", Type: isa.KindInt}})
	n := mb.Param(0)
	two := mb.Const(isa.Int(2))
	s := mb.Binary(OpIMul, isa.KindInt, n, two)
	mb.Return(s, isa.KindInt)
	gp, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	if gp.Entry != 0 || len(gp.Blocks) != 1 {
		t.Fatalf("entry %d blocks %d", gp.Entry, len(gp.Blocks))
	}
	if gp.Blocks[0].Result != s {
		t.Error("result node mismatch")
	}
}

func TestValidateCatchesBadInput(t *testing.T) {
	b := NewBuilder()
	mb := b.NewBlock("main", BlockMain, nil)
	x := mb.Const(isa.Int(1))
	node := mb.Block().Node(mb.Binary(OpIAdd, isa.KindInt, x, x))
	node.In[1] = 99 // dangling reference
	if _, err := b.Program(); err == nil || !strings.Contains(err.Error(), "bad input") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateCatchesBadCallee(t *testing.T) {
	b := NewBuilder()
	mb := b.NewBlock("main", BlockMain, nil)
	mb.Block().Nodes = append(mb.Block().Nodes, &Node{ID: 0, Op: OpCall, Callee: 7})
	mb.Block().Body = append(mb.Block().Body, 0)
	if _, err := b.Program(); err == nil || !strings.Contains(err.Error(), "bad callee") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateLoopBlockNeedsMeta(t *testing.T) {
	b := NewBuilder()
	b.NewBlock("main", BlockMain, nil)
	b.NewBlock("loop", BlockLoop, []Param{
		{Name: "$init", Type: isa.KindInt}, {Name: "$limit", Type: isa.KindInt},
	})
	if _, err := b.Program(); err == nil || !strings.Contains(err.Error(), "LoopMeta") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateLoopOutTarget(t *testing.T) {
	b := NewBuilder()
	mb := b.NewBlock("main", BlockMain, nil)
	x := mb.Const(isa.Int(1))
	mb.Block().Nodes = append(mb.Block().Nodes, &Node{ID: 1, Op: OpLoopOut, In: []int{x}, Imm: isa.Int(0)})
	mb.Block().Body = append(mb.Block().Body, 1)
	if _, err := b.Program(); err == nil || !strings.Contains(err.Error(), "loopout") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateParamIndex(t *testing.T) {
	b := NewBuilder()
	mb := b.NewBlock("main", BlockMain, nil)
	mb.Param(3) // out of range — no params declared
	if _, err := b.Program(); err == nil || !strings.Contains(err.Error(), "param index") {
		t.Fatalf("err = %v", err)
	}
}

func TestIfRegionsTrackNodes(t *testing.T) {
	b := NewBuilder()
	mb := b.NewBlock("main", BlockMain, nil)
	c := mb.Const(isa.Bool(true))
	ifn := mb.If(c)
	tv := mb.Const(isa.Int(1)) // lands in then-region
	mb.EndThen(ifn, tv)
	ev := mb.Const(isa.Int(2)) // lands in else-region
	mb.EndIf(ifn, ev)
	blk := mb.Block()
	node := blk.Node(ifn)
	if len(node.Then.Nodes) != 1 || node.Then.Nodes[0] != tv {
		t.Errorf("then region: %+v", node.Then)
	}
	if len(node.Else.Nodes) != 1 || node.Else.Nodes[0] != ev {
		t.Errorf("else region: %+v", node.Else)
	}
	if !node.HasValue || node.Type != isa.KindInt {
		t.Errorf("if node typing: %+v", node)
	}
	if _, err := b.Program(); err != nil {
		t.Fatal(err)
	}
}

func TestImportParamBypassesOpenRegion(t *testing.T) {
	b := NewBuilder()
	mb := b.NewBlock("main", BlockMain, nil)
	c := mb.Const(isa.Bool(true))
	ifn := mb.If(c)
	p := mb.ImportParam("outer", isa.KindFloat) // must land at top level
	mb.EndThen(ifn, p)
	e := mb.Const(isa.Float(0))
	mb.EndIf(ifn, e)
	blk := mb.Block()
	foundTop := false
	for _, id := range blk.Body {
		if id == p {
			foundTop = true
		}
	}
	if !foundTop {
		t.Fatal("imported param not at block top level")
	}
	if len(blk.Params) != 1 || blk.Params[0].Name != "outer" {
		t.Fatalf("params: %+v", blk.Params)
	}
}

func TestSubscriptHelpers(t *testing.T) {
	s := Sub("i", -1)
	if !s.Affine || s.Var != "i" || s.Off != -1 {
		t.Errorf("Sub: %+v", s)
	}
	o := SubOther()
	if o.Affine {
		t.Errorf("SubOther: %+v", o)
	}
}

func TestBlockKindStrings(t *testing.T) {
	if BlockMain.String() != "main" || BlockFunc.String() != "func" || BlockLoop.String() != "loop" {
		t.Error("block kind strings")
	}
	if OpAlloc.String() != "alloc" || OpLoopOut.String() != "loopout" {
		t.Error("op strings")
	}
	if Op(99).String() != "op(99)" {
		t.Error("unknown op string")
	}
}

func TestDuplicateNodeListing(t *testing.T) {
	b := NewBuilder()
	mb := b.NewBlock("main", BlockMain, nil)
	x := mb.Const(isa.Int(1))
	mb.Block().Body = append(mb.Block().Body, x) // listed twice
	if _, err := b.Program(); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("err = %v", err)
	}
}
