// Package graph defines the dataflow-graph intermediate representation that
// stands in for the MIT Id Nouveau compiler's output (paper Figure 2/3): a
// program is a set of *code blocks* (function bodies and loop-nest levels,
// each entered through an L operator), and each block is a set of operator
// nodes connected by data arcs. The PODS translator (internal/translate)
// orders each block's nodes along its arcs into a sequential Subcompact
// Process.
package graph

import (
	"fmt"

	"repro/internal/isa"
)

// Op is a dataflow operator kind.
type Op uint8

// Operator kinds. Arithmetic is typed (the frontend resolves int vs float);
// comparisons are generic and resolve against operand kinds at run time.
const (
	OpInvalid Op = iota
	OpParam      // block parameter; Imm.I = parameter index
	OpConst      // literal; Imm = value
	OpLoopVar    // the enclosing loop block's index variable
	OpCarried    // current value of a loop-carried scalar; Imm.I = carried index

	OpIAdd
	OpISub
	OpIMul
	OpIDiv
	OpIMod
	OpINeg
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv
	OpFNeg
	OpFAbs
	OpFSqrt
	OpFPow
	OpCmpLT
	OpCmpLE
	OpCmpGT
	OpCmpGE
	OpCmpEQ
	OpCmpNE
	OpAnd
	OpOr
	OpNot
	OpMax
	OpMin
	OpItoF
	OpFtoI

	OpIf      // In[0] = condition; Then/Else regions; 0 or 1 results
	OpAlloc   // In = extents; Name = array source name; result = handle
	OpARead   // In = [array, indices...]; Name = array source name
	OpAWrite  // In = [array, indices..., value]; Name = array source name
	OpCall    // In = args; Callee = block ID; result iff callee returns
	OpLoop    // In = [init, limit, frees..., carried inits...]; Callee = loop block
	OpLoopOut // In = [loop node]; Imm.I = carried index; result = final value
)

var opNames = map[Op]string{
	OpParam: "param", OpConst: "const", OpLoopVar: "loopvar", OpCarried: "carried",
	OpIAdd: "iadd", OpISub: "isub", OpIMul: "imul", OpIDiv: "idiv", OpIMod: "imod", OpINeg: "ineg",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFDiv: "fdiv", OpFNeg: "fneg",
	OpFAbs: "fabs", OpFSqrt: "fsqrt", OpFPow: "fpow",
	OpCmpLT: "cmplt", OpCmpLE: "cmple", OpCmpGT: "cmpgt", OpCmpGE: "cmpge",
	OpCmpEQ: "cmpeq", OpCmpNE: "cmpne",
	OpAnd: "and", OpOr: "or", OpNot: "not", OpMax: "max", OpMin: "min",
	OpItoF: "itof", OpFtoI: "ftoi",
	OpIf: "if", OpAlloc: "alloc", OpARead: "aread", OpAWrite: "awrite",
	OpCall: "call", OpLoop: "loop", OpLoopOut: "loopout",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// HasResult reports whether nodes of this op produce a value. OpIf and
// OpCall are resolved per node (see Node.Produces).
func (o Op) fixedNoResult() bool { return o == OpAWrite || o == OpLoop }

// Subscript classifies one array-index expression for dependence analysis:
// Affine means the index is `Var + Off` for an enclosing loop variable.
type Subscript struct {
	Var    string
	Off    int64
	Affine bool
}

// Region is a conditionally executed sub-graph of an OpIf node.
type Region struct {
	Nodes  []int // node IDs in this region, in insertion order
	Result int   // node ID producing the region's value, or -1
}

// Node is one dataflow operator.
type Node struct {
	ID   int
	Op   Op
	Type isa.Kind // result type (KindInvalid when no result)
	In   []int    // input node IDs (within the same block scope)
	Imm  isa.Value
	Name string // array name (Alloc/ARead/AWrite) or debug label

	Subs []Subscript // ARead/AWrite: per-dimension classification

	Callee int // Call/Loop: target block ID
	Then   *Region
	Else   *Region

	// HasValue reports whether this node produces a result (false for
	// writes, void calls, result-less ifs, loop spawns).
	HasValue bool
}

// BlockKind distinguishes block roles.
type BlockKind uint8

// Block kinds.
const (
	BlockMain BlockKind = iota + 1
	BlockFunc
	BlockLoop
)

func (k BlockKind) String() string {
	switch k {
	case BlockMain:
		return "main"
	case BlockFunc:
		return "func"
	case BlockLoop:
		return "loop"
	default:
		return "?"
	}
}

// Param declares one block parameter.
type Param struct {
	Name string
	Type isa.Kind
}

// Carried declares one loop-carried scalar of a loop block: its initial
// value arrives as a parameter; NextNode produces the value for the next
// iteration; the final value is returned to the parent via OpLoopOut.
type Carried struct {
	Name     string
	Type     isa.Kind
	NextNode int // node ID in the loop block producing the next value
}

// LoopMeta describes a loop block.
//
// For-loop parameter convention: params[0]=init, params[1]=limit, then free
// variables, then carried initial values. While-loop convention: free
// variables, then carried initial values (no bounds).
type LoopMeta struct {
	Var        string
	Descending bool
	Carried    []Carried

	// While marks a condition-controlled loop. CondNode is the node
	// producing the continue-condition, re-evaluated every iteration;
	// nodes listed in Body before index CondBoundary form the condition
	// sub-graph, the rest the loop body.
	While        bool
	CondNode     int
	CondBoundary int
}

// Block is one code block (one SP after translation).
type Block struct {
	ID     int
	Name   string
	Kind   BlockKind
	Params []Param

	Nodes []*Node // arena indexed by node ID
	Body  []int   // top-level node IDs in insertion order

	Loop *LoopMeta // non-nil for BlockLoop

	Result     int // node ID of the return value, or -1
	ResultType isa.Kind
}

// Node returns the node with the given ID.
func (b *Block) Node(id int) *Node {
	if id < 0 || id >= len(b.Nodes) {
		return nil
	}
	return b.Nodes[id]
}

// Program is a whole dataflow program.
type Program struct {
	Blocks    []*Block
	Entry     int
	ArrayDims map[string]int
}

// Block returns the block with the given ID, or nil.
func (p *Program) Block(id int) *Block {
	if id < 0 || id >= len(p.Blocks) {
		return nil
	}
	return p.Blocks[id]
}

// Validate checks referential integrity of the whole program.
func (p *Program) Validate() error {
	if p.Block(p.Entry) == nil {
		return fmt.Errorf("graph: entry block %d missing", p.Entry)
	}
	for _, b := range p.Blocks {
		if err := p.validateBlock(b); err != nil {
			return err
		}
	}
	return nil
}

func (p *Program) validateBlock(b *Block) error {
	if b.Kind == BlockLoop {
		if b.Loop == nil {
			return fmt.Errorf("graph: loop block %q missing LoopMeta", b.Name)
		}
		if !b.Loop.While && len(b.Params) < 2 {
			return fmt.Errorf("graph: loop block %q needs init/limit params", b.Name)
		}
		if b.Loop.While {
			if b.Node(b.Loop.CondNode) == nil {
				return fmt.Errorf("graph: while block %q: bad condition node %d", b.Name, b.Loop.CondNode)
			}
			if b.Loop.CondBoundary < 0 || b.Loop.CondBoundary > len(b.Body) {
				return fmt.Errorf("graph: while block %q: condition boundary %d out of range", b.Name, b.Loop.CondBoundary)
			}
		}
	}
	seen := make(map[int]bool, len(b.Nodes))
	mark := func(ids []int, where string) error {
		for _, id := range ids {
			n := b.Node(id)
			if n == nil {
				return fmt.Errorf("graph: block %q: bad node id %d in %s", b.Name, id, where)
			}
			if seen[id] {
				return fmt.Errorf("graph: block %q: node %d listed twice (%s)", b.Name, id, where)
			}
			seen[id] = true
		}
		return nil
	}
	if err := mark(b.Body, "body"); err != nil {
		return err
	}
	var walkRegions func(ids []int) error
	walkRegions = func(ids []int) error {
		for _, id := range ids {
			n := b.Node(id)
			if n.Op == OpIf {
				for _, r := range []*Region{n.Then, n.Else} {
					if r == nil {
						continue
					}
					if err := mark(r.Nodes, "region"); err != nil {
						return err
					}
					if err := walkRegions(r.Nodes); err != nil {
						return err
					}
				}
			}
		}
		return nil
	}
	if err := walkRegions(b.Body); err != nil {
		return err
	}
	for _, n := range b.Nodes {
		if n == nil {
			continue
		}
		for _, in := range n.In {
			if b.Node(in) == nil {
				return fmt.Errorf("graph: block %q node %d: bad input %d", b.Name, n.ID, in)
			}
		}
		switch n.Op {
		case OpCall, OpLoop:
			if p.Block(n.Callee) == nil {
				return fmt.Errorf("graph: block %q node %d: bad callee %d", b.Name, n.ID, n.Callee)
			}
		case OpLoopOut:
			if len(n.In) != 1 || b.Node(n.In[0]) == nil || b.Node(n.In[0]).Op != OpLoop {
				return fmt.Errorf("graph: block %q node %d: loopout must reference a loop node", b.Name, n.ID)
			}
		case OpParam:
			if n.Imm.I < 0 || int(n.Imm.I) >= len(b.Params) {
				return fmt.Errorf("graph: block %q node %d: param index %d out of range", b.Name, n.ID, n.Imm.I)
			}
		}
	}
	return nil
}
