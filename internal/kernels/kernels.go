// Package kernels holds the paper's example workloads as Idlite sources in
// one canonical place, so the examples, the benchmark harness, and the
// backend-agreement (Church-Rosser) tests all compile exactly the same
// programs. Each kernel names the arrays a test should gather and compare.
package kernels

import "repro/internal/isa"

// Kernel is one benchmark workload: an Idlite program plus the argument
// vector for a given problem size and the arrays whose final contents
// define the program's observable result.
type Kernel struct {
	// Name is the kernel's short identifier ("matmul", "heat", ...).
	Name string

	// Source is the Idlite program text.
	Source string

	// Args builds main's argument vector for problem size n.
	Args func(n int) []isa.Value

	// Arrays lists the arrays to gather and compare across backends.
	Arrays []string
}

// File returns the synthetic filename used when compiling the kernel.
func (k Kernel) File() string { return k.Name + ".id" }

// Matmul is the generic matrix-multiply example of §5.2: a dense product
// with a loop-carried inner-product accumulator. PODS distributes the outer
// loop over the rows of C and keeps the k-loop serial.
const Matmul = `
func main(n: int) {
	A = array(n, n);
	B = array(n, n);
	for i = 1 to n {
		for j = 1 to n {
			A[i, j] = float(i + j);
			B[i, j] = float(i - j) * 0.5;
		}
	}
	C = array(n, n);
	for i2 = 1 to n {
		for j2 = 1 to n {
			s = 0.0;
			for k = 1 to n {
				next s = s + A[i2, k] * B[k, j2];
			}
			C[i2, j2] = s;
		}
	}
}
`

// Heat is an explicit Jacobi heat-diffusion step: a loop nest with no
// loop-carried dependencies, so PODS distributes the row loop; neighbour
// reads at segment boundaries exercise the remote page cache.
const Heat = `
func main(n: int) {
	T0 = array(n, n);
	for i = 1 to n {
		for j = 1 to n {
			hot = if i == 1 then 10.0 else 0.0;
			T0[i, j] = hot + float(j) * 0.01;
		}
	}
	T1 = array(n, n);
	step(n, T0, T1);
	T2 = array(n, n);
	step(n, T1, T2);
	T3 = array(n, n);
	step(n, T2, T3);
}

func step(n: int, old: array2, new: array2) {
	for i = 1 to n {
		for j = 1 to n {
			up    = if i == 1 then old[i, j] else old[i - 1, j];
			down  = if i == n then old[i, j] else old[i + 1, j];
			left  = if j == 1 then old[i, j] else old[i, j - 1];
			right = if j == n then old[i, j] else old[i, j + 1];
			new[i, j] = 0.25 * (up + down + left + right);
		}
	}
}
`

// Pipeline chains three phases that synchronize element by element through
// I-structure availability instead of barriers: consumers run ahead of
// producers and their reads are deferred until the writes land.
const Pipeline = `
func model(x: float) -> float {
	return sqrt(x * x + 1.0) * 0.5;
}

func main(n: int) {
	A = array(n, n);
	for i = 1 to n {
		for j = 1 to n {
			A[i, j] = model(float(i + j));
		}
	}
	B = array(n, n);
	for i2 = 1 to n {
		for j2 = 1 to n {
			left = if j2 == 1 then A[i2, j2] else A[i2, j2 - 1];
			B[i2, j2] = A[i2, j2] + 0.5 * left;
		}
	}
	R = array(n);
	for i3 = 1 to n {
		s = 0.0;
		for k = 1 to n {
			next s = s + B[i3, k];
		}
		R[i3] = s;
	}
}
`

// Mirror reads each element of A at the mirrored index, so with more than
// one PE nearly every consumer iteration reads an element owned by another
// PE — and because both loops run concurrently, many of those reads arrive
// before the producer has written the element, exercising the remote
// deferred-read path (the owner queues the request and replies on write).
const Mirror = `
func main(n: int) {
	A = array(n, n);
	B = array(n, n);
	for i = 1 to n {
		for j = 1 to n {
			A[i, j] = float(i * 100 + j);
		}
	}
	for i2 = 1 to n {
		for j2 = 1 to n {
			B[i2, j2] = A[n - i2 + 1, n - j2 + 1] * 2.0;
		}
	}
}
`

// Triangular is a provably skewed workload under static SPAWND
// partitioning: row i of the lower-triangular update costs O(i²) (an O(j)
// accumulation per element, j ≤ i elements), so when the outer loop is
// split into contiguous row blocks the last PE does asymptotically half of
// all the work while the first finishes almost immediately. Each row is
// spawned eagerly as its own not-yet-started SP, which makes the idle PEs'
// recovery measurable: with work stealing on, they drain the loaded PEs'
// row queues. The upper triangle is never written (the agreement tests
// compare presence masks as well as values).
const Triangular = `
func main(n: int) {
	A = array(n, n);
	for i = 1 to n {
		for j = 1 to i {
			s = 0.0;
			for k = 1 to j {
				next s = s + sqrt(float(k + i * j));
			}
			A[i, j] = s;
		}
	}
}
`

// Triread is the triangular kernel with remote operand reads: row i of the
// lower-triangular update accumulates over row i of a producer array X, so
// a stolen row task drags its operand row across the machine — the
// workload that makes steal locality measurable. Under static partitioning
// X and A split identically, so a row's reads are local until the row
// migrates; after a steal they probe the thief's page cache, and because
// adjacent rows share straddling pages (rows are not page-aligned), a
// batched grant of neighbouring rows pays fewer page fetches than the same
// rows scattered one-per-victim across the thieves.
const Triread = `
func main(n: int) {
	X = array(n, n);
	for p = 1 to n {
		for q = 1 to n {
			X[p, q] = sqrt(float(p * 31 + q));
		}
	}
	A = array(n, n);
	for i = 1 to n {
		for j = 1 to i {
			s = 0.0;
			for k = 1 to j {
				next s = s + X[i, k];
			}
			A[i, j] = s * 0.5;
		}
	}
}
`

// Relax is an iterative triangular relaxation whose optimal Range-Filter
// split drifts across sweeps — the workload adaptive repartitioning is
// for. One array W holds sweeps+1 grid versions side by side in its
// columns (arrays cannot be loop-carried, so versions are column blocks);
// sweep s reads block s-1 and writes block s. Row i's cost at sweep s is
// a cyclic triangle wave over (i + 2(s-1)) inner-loop trips per element —
// a smooth load peak that rotates two rows per sweep, so any fixed
// partition is wrong for most sweeps, while costs observed in sweep s-1
// remain a near-perfect predictor for sweep s even when the rebind lands
// a sweep late. The serial gs-loop reads one element from every row of
// the freshly written block and feeds the result into the next sweep's
// arguments, making each sweep's SPAWND fan-out a true sweep barrier:
// sweep s+1 cannot start before sweep s has finished everywhere.
const Relax = `
func main(n: int, sweeps: int) {
	W = array(n, (sweeps + 1) * n);
	for i0 = 1 to n {
		for j0 = 1 to n {
			W[i0, j0] = float(i0 * 3 + j0) * 0.25;
		}
	}
	g = 0.0;
	for s = 1 to sweeps {
		relax(n, s, g, W);
		gs = 0.0;
		for r = 1 to n {
			next gs = gs + W[r, s * n + n];
		}
		next g = gs * 0.000001;
	}
}

func relax(n: int, s: int, gate: float, W: array2) {
	off = (s - 1) * 2 % (2 * n);
	for i = 1 to n {
		w = (i + off) % (2 * n);
		lim = if w < n then w + 1 else 2 * n - w;
		for j = 1 to n {
			acc = gate * 0.0;
			for k = 1 to lim {
				next acc = acc + sqrt(W[i, (s - 1) * n + j] + float(k + j));
			}
			W[i, s * n + j] = acc;
		}
	}
}
`

// All returns the kernel registry.
func All() []Kernel {
	intArg := func(n int) []isa.Value { return []isa.Value{isa.Int(int64(n))} }
	return []Kernel{
		{Name: "matmul", Source: Matmul, Args: intArg, Arrays: []string{"A", "B", "C"}},
		{Name: "heat", Source: Heat, Args: intArg,
			Arrays: []string{"T0", "T1", "T2", "T3"}},
		{Name: "pipeline", Source: Pipeline, Args: intArg, Arrays: []string{"A", "B", "R"}},
		{Name: "mirror", Source: Mirror, Args: intArg, Arrays: []string{"A", "B"}},
		{Name: "triangular", Source: Triangular, Args: intArg, Arrays: []string{"A"}},
		{Name: "triread", Source: Triread, Args: intArg, Arrays: []string{"X", "A"}},
		{Name: "relax", Source: Relax,
			Args:   func(n int) []isa.Value { return []isa.Value{isa.Int(int64(n)), isa.Int(4)} },
			Arrays: []string{"W"}},
	}
}

// ByName returns the named kernel, or ok=false.
func ByName(name string) (Kernel, bool) {
	for _, k := range All() {
		if k.Name == name {
			return k, true
		}
	}
	return Kernel{}, false
}
