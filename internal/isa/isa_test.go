package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndConversions(t *testing.T) {
	cases := []struct {
		v        Value
		asInt    int64
		asFloat  float64
		asBool   bool
		rendered string
	}{
		{Int(42), 42, 42, true, "42"},
		{Int(0), 0, 0, false, "0"},
		{Int(-7), -7, -7, true, "-7"},
		{Float(2.5), 2, 2.5, true, "2.5"},
		{Float(3.0), 3, 3.0, true, "3.0"},
		{Float(0), 0, 0, false, "0.0"},
		{Bool(true), 1, 1, true, "true"},
		{Bool(false), 0, 0, false, "false"},
		{Array(9), 9, 9, true, "array#9"},
		{SPRef(3), 3, 3, true, "sp#3"},
	}
	for _, c := range cases {
		if got := c.v.AsInt(); got != c.asInt {
			t.Errorf("%v.AsInt() = %d, want %d", c.v, got, c.asInt)
		}
		if got := c.v.AsFloat(); got != c.asFloat {
			t.Errorf("%v.AsFloat() = %v, want %v", c.v, got, c.asFloat)
		}
		if got := c.v.AsBool(); got != c.asBool {
			t.Errorf("%v.AsBool() = %v, want %v", c.v, got, c.asBool)
		}
		if got := c.v.String(); got != c.rendered {
			t.Errorf("String() = %q, want %q", got, c.rendered)
		}
	}
	var zero Value
	if zero.Kind != KindInvalid || zero.String() != "<invalid>" {
		t.Errorf("zero value should be invalid, got %q", zero.String())
	}
}

func TestValueEqual(t *testing.T) {
	if !Int(3).Equal(Float(3.0)) {
		t.Error("numeric cross-kind equality should hold")
	}
	if Int(3).Equal(Float(3.5)) {
		t.Error("3 != 3.5")
	}
	if Int(1).Equal(Bool(true)) {
		t.Error("int and bool are not comparable kinds")
	}
	if !Array(4).Equal(Array(4)) || Array(4).Equal(Array(5)) {
		t.Error("array handle equality by id")
	}
}

func TestFloatTruncationTowardZero(t *testing.T) {
	if Float(-2.9).AsInt() != -2 {
		t.Errorf("AsInt(-2.9) = %d, want -2 (truncate toward zero)", Float(-2.9).AsInt())
	}
	if Float(2.9).AsInt() != 2 {
		t.Errorf("AsInt(2.9) = %d, want 2", Float(2.9).AsInt())
	}
}

func TestOpcodeStrings(t *testing.T) {
	for op := Opcode(1); int(op) < NumOpcodes; op++ {
		s := op.String()
		if s == "" || strings.HasPrefix(s, "OP(") {
			t.Errorf("opcode %d has no name", op)
		}
	}
	if Opcode(200).String() != "OP(200)" {
		t.Errorf("unknown opcode rendering: %q", Opcode(200).String())
	}
}

func TestOpcodePurity(t *testing.T) {
	impure := []Opcode{ALLOC, ALLOCD, AREAD, AWRITE, SPAWN, SPAWND, SEND, HALT}
	for _, op := range impure {
		if op.IsPure() {
			t.Errorf("%s should be impure", op)
		}
	}
	pure := []Opcode{CONST, MOVE, CLEAR, IADD, FMUL, CMPLT, JUMP, BRFALSE, MAX, ROWLO, UNIFHI, SELF}
	for _, op := range pure {
		if !op.IsPure() {
			t.Errorf("%s should be pure", op)
		}
	}
}

func TestInstrInputsAndString(t *testing.T) {
	in := NewInstr(AWRITE)
	in.A, in.B = 1, 5
	in.Args = []int{2, 3}
	got := in.Inputs(nil)
	want := []int{1, 5, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("Inputs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Inputs = %v, want %v", got, want)
		}
	}
	s := in.String()
	if !strings.Contains(s, "AWRITE") || !strings.Contains(s, "s5") {
		t.Errorf("String() = %q", s)
	}
	br := NewInstr(BRFALSE)
	br.A, br.Target, br.Comment = 0, 7, "loop exit"
	s = br.String()
	if !strings.Contains(s, "->7") || !strings.Contains(s, "loop exit") {
		t.Errorf("branch rendering: %q", s)
	}
}

func mkTemplate(code []Instr, nslots, nparams int) *Template {
	return &Template{ID: 0, Name: "t", Kind: TmplMain, Code: code, NSlots: nslots, NParams: nparams}
}

func TestTemplateValidate(t *testing.T) {
	ok := NewInstr(MOVE)
	ok.Dst, ok.A = 1, 0
	prog := &Program{Templates: []*Template{mkTemplate([]Instr{ok, NewInstr(HALT)}, 2, 1)}, EntryID: 0}
	if err := prog.Validate(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}

	bad := NewInstr(MOVE)
	bad.Dst, bad.A = 5, 0 // slot out of range
	prog = &Program{Templates: []*Template{mkTemplate([]Instr{bad}, 2, 1)}, EntryID: 0}
	if err := prog.Validate(); err == nil {
		t.Fatal("out-of-range slot accepted")
	}

	badBr := NewInstr(JUMP)
	badBr.Target = 99
	prog = &Program{Templates: []*Template{mkTemplate([]Instr{badBr}, 1, 0)}, EntryID: 0}
	if err := prog.Validate(); err == nil {
		t.Fatal("out-of-range jump target accepted")
	}

	badSpawn := NewInstr(SPAWN)
	badSpawn.Imm = Int(42)
	prog = &Program{Templates: []*Template{mkTemplate([]Instr{badSpawn}, 1, 0)}, EntryID: 0}
	if err := prog.Validate(); err == nil {
		t.Fatal("spawn of unknown template accepted")
	}

	prog = &Program{Templates: nil, EntryID: 0}
	if err := prog.Validate(); err == nil {
		t.Fatal("missing entry accepted")
	}

	badOp := Instr{Op: Opcode(250), Dst: None, A: None, B: None, Target: None}
	prog = &Program{Templates: []*Template{mkTemplate([]Instr{badOp}, 1, 0)}, EntryID: 0}
	if err := prog.Validate(); err == nil {
		t.Fatal("invalid opcode accepted")
	}
}

func TestTemplateListing(t *testing.T) {
	in := NewInstr(CONST)
	in.Dst, in.Imm = 0, Float(1.5)
	tm := mkTemplate([]Instr{in, NewInstr(HALT)}, 1, 0)
	tm.Distributed = true
	s := tm.Listing()
	if !strings.Contains(s, "[distributed]") || !strings.Contains(s, "CONST") {
		t.Errorf("listing: %s", s)
	}
}

func TestRFKindStrings(t *testing.T) {
	if RFRow.String() != "row" || RFCol.String() != "col" || RFUniform.String() != "uniform" || RFNone.String() != "none" {
		t.Error("RFKind strings wrong")
	}
}

// Property: Equal is reflexive and symmetric for numeric values.
func TestValueEqualProperties(t *testing.T) {
	f := func(a, b int32) bool {
		va, vb := Int(int64(a)), Float(float64(b))
		if !va.Equal(va) || !vb.Equal(vb) {
			return false
		}
		return va.Equal(vb) == vb.Equal(va)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
