package isa

import (
	"fmt"
	"strings"
)

// None marks an unused slot operand or jump target.
const None = -1

// Instr is one SP instruction. Operand fields A, B and the Args list are
// frame-slot indices; Dst is the frame slot receiving the result. Target is
// a code index for control transfer. Imm carries immediate payloads: the
// constant for CONST, the child template ID for SPAWN/SPAWND, the
// destination slot for SEND, and the dimension for ownership queries.
type Instr struct {
	Op     Opcode
	Dst    int
	A, B   int
	Args   []int
	Imm    Value
	Target int

	// Comment is an optional human-readable annotation carried through
	// translation (source variable names, RF markers) for listings.
	Comment string
}

// Inputs appends the instruction's input slot indices to buf and returns it.
// It is used by the executors to test operand presence before firing.
func (in *Instr) Inputs(buf []int) []int {
	if in.A != None {
		buf = append(buf, in.A)
	}
	if in.B != None {
		buf = append(buf, in.B)
	}
	buf = append(buf, in.Args...)
	return buf
}

// String renders the instruction for listings and error messages.
func (in *Instr) String() string {
	var b strings.Builder
	b.WriteString(in.Op.String())
	if in.Dst != None {
		fmt.Fprintf(&b, " s%d <-", in.Dst)
	}
	if in.A != None {
		fmt.Fprintf(&b, " s%d", in.A)
	}
	if in.B != None {
		fmt.Fprintf(&b, " s%d", in.B)
	}
	if len(in.Args) > 0 {
		b.WriteString(" [")
		for i, a := range in.Args {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "s%d", a)
		}
		b.WriteByte(']')
	}
	if in.Imm.Kind != KindInvalid {
		fmt.Fprintf(&b, " imm=%s", in.Imm.String())
	}
	if in.Target != None && in.Op.IsBranch() {
		fmt.Fprintf(&b, " ->%d", in.Target)
	}
	if in.Comment != "" {
		fmt.Fprintf(&b, "  ; %s", in.Comment)
	}
	return b.String()
}

// NewInstr returns an Instr with all operand fields cleared to None.
func NewInstr(op Opcode) Instr {
	return Instr{Op: op, Dst: None, A: None, B: None, Target: None}
}
