package isa

import (
	"fmt"
	"strings"
)

// SubscriptKind classifies how a loop body subscripts an array dimension
// relative to a loop index variable. The partitioner uses this to pick the
// Range-Filter dimension.
type SubscriptKind uint8

// Subscript kinds.
const (
	SubOther  SubscriptKind = iota // not an affine use of the loop variable
	SubAffine                      // var + Offset
)

// ArrayAccess summarizes one static array read or write inside a loop body
// (including nested blocks), as recorded by the translator for the
// partitioner's dependence-driven decisions.
type ArrayAccess struct {
	Array   string // source-level array name
	IsWrite bool
	Dims    []SubscriptKind // per-dimension classification w.r.t. LoopVar
	Offsets []int64         // per-dimension offset when SubAffine
	Vars    []string        // per-dimension loop variable name ("" if none)
}

// LoopInfo describes the for-loop structure of an SP template so the
// partitioner can install a Range Filter without re-deriving control flow.
// All fields are code indices or slot indices into the template.
type LoopInfo struct {
	Var string // loop variable source name

	VarSlot   int // frame slot holding the loop variable
	InitEnd   int // code index just past the instructions computing the initial value
	LimitSlot int // frame slot holding the loop limit
	LimitEnd  int // code index just past the instructions computing the limit

	Descending bool // "for v = hi downto lo"

	// IsWhile marks a condition-controlled loop (no index variable, no
	// bounds); while loops are never distributed — their iteration space
	// is not enumerable in advance.
	IsWhile bool

	// NCarried is the number of loop-carried scalars (`next` variables) —
	// each is a loop-carried dependence regardless of whether its final
	// value is consumed.
	NCarried int

	// HasLCD is set by the partitioner after dependence analysis; it is
	// recorded here so listings and tests can inspect the decision.
	HasLCD bool

	// Accesses lists the array reads/writes in the loop body subtree.
	Accesses []ArrayAccess
}

// TemplateKind distinguishes what source construct an SP template encodes.
type TemplateKind uint8

// Template kinds.
const (
	TmplFunc TemplateKind = iota + 1 // function body code block
	TmplLoop                         // one for/while nest level
	TmplMain                         // program entry block
)

func (k TemplateKind) String() string {
	switch k {
	case TmplFunc:
		return "func"
	case TmplLoop:
		return "loop"
	case TmplMain:
		return "main"
	default:
		return "?"
	}
}

// Template is the code for one SP: a code block of the original dataflow
// graph turned into a sequential instruction list with a frame of operand
// slots. Instances of a template are created whenever the corresponding
// L/LD operator fires.
type Template struct {
	ID   int
	Name string
	Kind TemplateKind

	Code   []Instr
	NSlots int

	// NParams is the number of leading frame slots filled by spawn
	// arguments; every other slot starts absent.
	NParams int

	// HasResult marks a template that SENDs result value(s) to a caller
	// continuation; its final two params are the caller's SP reference and
	// the base destination slot index.
	HasResult bool

	// NResults is the number of values the template SENDs back (0 when
	// !HasResult).
	NResults int

	// Names maps source-level names (arrays, scalars, loop variables)
	// visible in this template to their frame slots; used by the
	// partitioner to locate Range-Filter operands and by listings.
	Names map[string]int

	// Loop is non-nil for TmplLoop templates.
	Loop *LoopInfo

	// Distributed marks a template that the partitioner decided to spawn
	// via LD with a Range Filter installed.
	Distributed bool

	// RFKind records which Range-Filter form the partitioner installed
	// (for listings, tests and ablation reporting).
	RFKind RFKind

	// RFArray is the array whose header drives the Range Filter.
	RFArray string
}

// RFKind enumerates the Range-Filter forms of §4.2.2–4.2.3.
type RFKind uint8

// Range-Filter kinds.
const (
	RFNone    RFKind = iota // not distributed
	RFRow                   // dim-0 subrange via first-element row ownership
	RFCol                   // dim-1 subrange within the owned part of a fixed row
	RFUniform               // uniform block split of the index range
)

func (k RFKind) String() string {
	switch k {
	case RFRow:
		return "row"
	case RFCol:
		return "col"
	case RFUniform:
		return "uniform"
	default:
		return "none"
	}
}

// Listing renders a human-readable disassembly of the template.
func (t *Template) Listing() string {
	var b strings.Builder
	dist := ""
	if t.Distributed {
		dist = " [distributed]"
	}
	fmt.Fprintf(&b, "%s #%d %q params=%d slots=%d%s\n", t.Kind, t.ID, t.Name, t.NParams, t.NSlots, dist)
	for i := range t.Code {
		fmt.Fprintf(&b, "  %3d: %s\n", i, t.Code[i].String())
	}
	return b.String()
}

// Validate checks structural well-formedness: slot indices in range, jump
// targets in range, spawn immediates referencing known templates.
func (t *Template) Validate(prog *Program) error {
	check := func(pc int, what string, slot int) error {
		if slot != None && (slot < 0 || slot >= t.NSlots) {
			return fmt.Errorf("template %q pc %d: %s slot %d out of range [0,%d)", t.Name, pc, what, slot, t.NSlots)
		}
		return nil
	}
	for pc := range t.Code {
		in := &t.Code[pc]
		if in.Op == 0 || int(in.Op) >= NumOpcodes {
			return fmt.Errorf("template %q pc %d: invalid opcode %d", t.Name, pc, in.Op)
		}
		if err := check(pc, "dst", in.Dst); err != nil {
			return err
		}
		if err := check(pc, "A", in.A); err != nil {
			return err
		}
		if err := check(pc, "B", in.B); err != nil {
			return err
		}
		for _, a := range in.Args {
			if err := check(pc, "arg", a); err != nil {
				return err
			}
		}
		if in.Op.IsBranch() {
			if in.Target < 0 || in.Target > len(t.Code) {
				return fmt.Errorf("template %q pc %d: jump target %d out of range", t.Name, pc, in.Target)
			}
		}
		if in.Op == SPAWN || in.Op == SPAWND {
			if prog == nil || prog.Template(int(in.Imm.I)) == nil {
				return fmt.Errorf("template %q pc %d: spawn of unknown template %d", t.Name, pc, in.Imm.I)
			}
		}
	}
	if t.NParams > t.NSlots {
		return fmt.Errorf("template %q: %d params exceed %d slots", t.Name, t.NParams, t.NSlots)
	}
	return nil
}

// Program is a complete translated (and possibly partitioned) PODS program:
// a set of SP templates plus the entry template.
type Program struct {
	Templates []*Template
	EntryID   int

	// ArrayDims records the declared dimensionality of each source-level
	// array name, for diagnostics and the partitioner.
	ArrayDims map[string]int
}

// Template returns the template with the given ID, or nil.
func (p *Program) Template(id int) *Template {
	if id < 0 || id >= len(p.Templates) {
		return nil
	}
	return p.Templates[id]
}

// Entry returns the entry template.
func (p *Program) Entry() *Template { return p.Template(p.EntryID) }

// Validate checks every template.
func (p *Program) Validate() error {
	if p.Entry() == nil {
		return fmt.Errorf("program: entry template %d missing", p.EntryID)
	}
	for _, t := range p.Templates {
		if err := t.Validate(p); err != nil {
			return err
		}
	}
	return nil
}

// Listing renders the whole program.
func (p *Program) Listing() string {
	var b strings.Builder
	for _, t := range p.Templates {
		b.WriteString(t.Listing())
		b.WriteByte('\n')
	}
	return b.String()
}
