package isa

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// This file implements the `.pods` file format of the paper's Figure 3
// pipeline: a translated (and typically partitioned) SP program serialized
// so the compiler driver (cmd/podsc) and the simulator driver (cmd/podsim)
// can be separate processes. The format is versioned JSON — stable,
// diffable, and stdlib-only.

// podsFileVersion is bumped on any incompatible schema change.
const podsFileVersion = 1

type podsFile struct {
	Version int      `json:"version"`
	Program *Program `json:"program"`
}

// jsonInstr mirrors Instr with stable field names.
type jsonInstr struct {
	Op      string  `json:"op"`
	Dst     int     `json:"dst"`
	A       int     `json:"a"`
	B       int     `json:"b"`
	Args    []int   `json:"args,omitempty"`
	ImmKind string  `json:"immKind,omitempty"`
	ImmI    int64   `json:"immI,omitempty"`
	ImmF    float64 `json:"immF,omitempty"`
	Target  int     `json:"target"`
	Comment string  `json:"comment,omitempty"`
}

var opByName = func() map[string]Opcode {
	m := make(map[string]Opcode, NumOpcodes)
	for op := Opcode(1); int(op) < NumOpcodes; op++ {
		m[op.String()] = op
	}
	return m
}()

var kindByName = map[string]Kind{
	"int": KindInt, "float": KindFloat, "bool": KindBool,
	"array": KindArray, "sp": KindSP,
}

// MarshalJSON implements json.Marshaler with symbolic opcode names.
func (in Instr) MarshalJSON() ([]byte, error) {
	j := jsonInstr{
		Op: in.Op.String(), Dst: in.Dst, A: in.A, B: in.B,
		Args: in.Args, Target: in.Target, Comment: in.Comment,
	}
	if in.Imm.Kind != KindInvalid {
		j.ImmKind = in.Imm.Kind.String()
		j.ImmI = in.Imm.I
		j.ImmF = in.Imm.F
	}
	return json.Marshal(j)
}

// UnmarshalJSON implements json.Unmarshaler.
func (in *Instr) UnmarshalJSON(data []byte) error {
	var j jsonInstr
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	op, ok := opByName[j.Op]
	if !ok {
		return fmt.Errorf("isa: unknown opcode %q", j.Op)
	}
	in.Op = op
	in.Dst, in.A, in.B = j.Dst, j.A, j.B
	in.Args = j.Args
	in.Target = j.Target
	in.Comment = j.Comment
	in.Imm = Value{}
	if j.ImmKind != "" {
		k, ok := kindByName[j.ImmKind]
		if !ok {
			return fmt.Errorf("isa: unknown value kind %q", j.ImmKind)
		}
		in.Imm = Value{Kind: k, I: j.ImmI, F: j.ImmF}
	}
	return nil
}

// WritePods serializes a validated program to w in the `.pods` format.
func WritePods(w io.Writer, p *Program) error {
	if err := p.Validate(); err != nil {
		return fmt.Errorf("isa: refusing to write invalid program: %w", err)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(podsFile{Version: podsFileVersion, Program: p})
}

// ReadPods deserializes and validates a program from r.
func ReadPods(r io.Reader) (*Program, error) {
	var f podsFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("isa: bad .pods file: %w", err)
	}
	if f.Version != podsFileVersion {
		return nil, fmt.Errorf("isa: .pods version %d, this build reads %d", f.Version, podsFileVersion)
	}
	if f.Program == nil {
		return nil, fmt.Errorf("isa: .pods file has no program")
	}
	if err := f.Program.Validate(); err != nil {
		return nil, fmt.Errorf("isa: .pods file invalid: %w", err)
	}
	return f.Program, nil
}

// MarshalPods serializes to a byte slice.
func MarshalPods(p *Program) ([]byte, error) {
	var buf bytes.Buffer
	if err := WritePods(&buf, p); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalPods deserializes from a byte slice.
func UnmarshalPods(data []byte) (*Program, error) {
	return ReadPods(bytes.NewReader(data))
}
