// Package isa defines the instruction set executed by Subcompact Processes
// (SPs): typed token values, frame slots with presence bits, instructions,
// SP templates, and whole programs.
//
// The PODS translator (internal/translate) lowers dataflow graphs into this
// ISA; the partitioner (internal/partition) rewrites it for distribution; and
// both the discrete-event simulator (internal/sim) and the goroutine runtime
// (internal/podsrt) execute it.
package isa

import (
	"fmt"
	"math"
	"strconv"
)

// Kind discriminates the dynamic type of a Value.
type Kind uint8

// Value kinds. They start at 1 so the zero Value is recognizably invalid.
const (
	KindInvalid Kind = iota
	KindInt
	KindFloat
	KindBool
	KindArray // I-structure handle; ID stored in the I field
	KindSP    // SP instance reference (continuation target); ID in the I field
)

func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	case KindArray:
		return "array"
	case KindSP:
		return "sp"
	default:
		return "invalid"
	}
}

// Value is a dataflow token payload. Exactly one of I/F is meaningful,
// selected by Kind; KindBool stores 0/1 in I.
type Value struct {
	Kind Kind
	I    int64
	F    float64
}

// Int returns an integer Value.
func Int(v int64) Value { return Value{Kind: KindInt, I: v} }

// Float returns a floating-point Value.
func Float(v float64) Value { return Value{Kind: KindFloat, F: v} }

// Bool returns a boolean Value.
func Bool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{Kind: KindBool, I: i}
}

// Array returns an I-structure handle Value.
func Array(id int64) Value { return Value{Kind: KindArray, I: id} }

// SPRef returns an SP instance reference Value (used as a continuation).
func SPRef(id int64) Value { return Value{Kind: KindSP, I: id} }

// AsInt converts the value to int64. Floats truncate toward zero,
// matching the frontend's explicit int() conversion semantics.
func (v Value) AsInt() int64 {
	if v.Kind == KindFloat {
		return int64(v.F)
	}
	return v.I
}

// AsFloat converts the value to float64.
func (v Value) AsFloat() float64 {
	if v.Kind == KindFloat {
		return v.F
	}
	return float64(v.I)
}

// AsBool reports the truthiness of the value.
func (v Value) AsBool() bool {
	if v.Kind == KindFloat {
		return v.F != 0
	}
	return v.I != 0
}

// IsNumeric reports whether the value is an int or float.
func (v Value) IsNumeric() bool { return v.Kind == KindInt || v.Kind == KindFloat }

// Equal reports semantic equality: numeric values compare by value across
// int/float kinds; other kinds require matching kind and payload.
func (v Value) Equal(o Value) bool {
	if v.IsNumeric() && o.IsNumeric() {
		if v.Kind == KindInt && o.Kind == KindInt {
			return v.I == o.I
		}
		return v.AsFloat() == o.AsFloat()
	}
	return v.Kind == o.Kind && v.I == o.I
}

func (v Value) String() string {
	switch v.Kind {
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		if v.F == math.Trunc(v.F) && math.Abs(v.F) < 1e15 {
			return strconv.FormatFloat(v.F, 'f', 1, 64)
		}
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	case KindArray:
		return fmt.Sprintf("array#%d", v.I)
	case KindSP:
		return fmt.Sprintf("sp#%d", v.I)
	default:
		return "<invalid>"
	}
}
