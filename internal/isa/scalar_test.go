package isa

import "testing"

func TestEvalScalar(t *testing.T) {
	cases := []struct {
		op   Opcode
		a, b Value
		want Value
	}{
		{IADD, Int(3), Int(4), Int(7)},
		{ISUB, Int(3), Int(4), Int(-1)},
		{IMUL, Int(3), Int(4), Int(12)},
		{IDIV, Int(9), Int(2), Int(4)},
		{IMOD, Int(9), Int(2), Int(1)},
		{INEG, Int(5), Value{}, Int(-5)},
		{FADD, Float(1.5), Float(2.25), Float(3.75)},
		{FDIV, Float(1), Float(4), Float(0.25)},
		{FABS, Float(-2), Value{}, Float(2)},
		{FSQRT, Float(9), Value{}, Float(3)},
		{FPOW, Float(2), Float(10), Float(1024)},
		{CMPLT, Int(1), Int(2), Bool(true)},
		// Mixed operands compare as floats.
		{CMPEQ, Int(2), Float(2), Bool(true)},
		{CMPGE, Float(1.5), Int(2), Bool(false)},
		{AND, Bool(true), Bool(false), Bool(false)},
		{OR, Bool(true), Bool(false), Bool(true)},
		{NOT, Bool(false), Value{}, Bool(true)},
		// Integer MAX/MIN preserve the integer kind.
		{MAX, Int(3), Int(7), Int(7)},
		{MIN, Int(3), Int(7), Int(3)},
		{MAX, Float(3), Int(7), Float(7)},
		{ITOF, Int(3), Value{}, Float(3)},
		{FTOI, Float(3.9), Value{}, Int(3)},
	}
	for _, c := range cases {
		got, err := EvalScalar(c.op, c.a, c.b)
		if err != nil {
			t.Errorf("EvalScalar(%s, %s, %s): %v", c.op, c.a, c.b, err)
			continue
		}
		if got != c.want {
			t.Errorf("EvalScalar(%s, %s, %s) = %s, want %s", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestEvalScalarErrors(t *testing.T) {
	if _, err := EvalScalar(IDIV, Int(1), Int(0)); err == nil {
		t.Error("IDIV by zero: want error")
	}
	if _, err := EvalScalar(IMOD, Int(1), Int(0)); err == nil {
		t.Error("IMOD by zero: want error")
	}
	if _, err := EvalScalar(SPAWN, Int(1), Int(0)); err == nil {
		t.Error("EvalScalar(SPAWN): want non-scalar error")
	}
	if IsScalar(SPAWN) || IsScalar(AREAD) || IsScalar(JUMP) {
		t.Error("IsScalar: control/memory/process ops must not be scalar")
	}
	if !IsScalar(IADD) || !IsScalar(FSQRT) || !IsScalar(CMPNE) {
		t.Error("IsScalar: ALU ops must be scalar")
	}
}
