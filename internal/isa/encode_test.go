package isa_test

import (
	"strings"
	"testing"

	"repro/internal/idlang"
	"repro/internal/isa"
	"repro/internal/partition"
	"repro/internal/sim"
	"repro/internal/translate"
)

const roundtripSrc = `
func main(n: int) -> float {
	A = array(n, n);
	for i = 1 to n {
		for j = 1 to n {
			A[i, j] = float(i * 10 + j);
		}
	}
	s = 0.0;
	for k = 1 to n {
		next s = s + A[k, k];
	}
	return s;
}
`

func compileProg(t *testing.T) *isa.Program {
	t.Helper()
	gp, err := idlang.Compile("rt.id", roundtripSrc)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := translate.Translate(gp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := partition.Partition(prog, partition.Options{}); err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestPodsRoundtrip(t *testing.T) {
	prog := compileProg(t)
	data, err := isa.MarshalPods(prog)
	if err != nil {
		t.Fatal(err)
	}
	back, err := isa.UnmarshalPods(data)
	if err != nil {
		t.Fatal(err)
	}
	// The disassembly must survive the roundtrip byte-for-byte.
	if prog.Listing() != back.Listing() {
		t.Fatal("listing changed across serialization")
	}
	if back.EntryID != prog.EntryID || len(back.Templates) != len(prog.Templates) {
		t.Fatalf("structure changed: entry %d/%d, templates %d/%d",
			back.EntryID, prog.EntryID, len(back.Templates), len(prog.Templates))
	}
	for i, tm := range prog.Templates {
		bt := back.Templates[i]
		if tm.Distributed != bt.Distributed || tm.RFKind != bt.RFKind || tm.HasResult != bt.HasResult {
			t.Errorf("template %d metadata changed", i)
		}
		if tm.Loop != nil {
			if bt.Loop == nil || bt.Loop.Var != tm.Loop.Var || bt.Loop.HasLCD != tm.Loop.HasLCD {
				t.Errorf("template %d loop info changed", i)
			}
		}
	}
}

func TestDeserializedProgramRuns(t *testing.T) {
	prog := compileProg(t)
	data, err := isa.MarshalPods(prog)
	if err != nil {
		t.Fatal(err)
	}
	back, err := isa.UnmarshalPods(data)
	if err != nil {
		t.Fatal(err)
	}
	run := func(p *isa.Program) float64 {
		m, err := sim.New(p, sim.Config{NumPEs: 4})
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run(isa.Int(8))
		if err != nil {
			t.Fatal(err)
		}
		return res.MainValue.F
	}
	if a, b := run(prog), run(back); a != b {
		t.Fatalf("deserialized program computes %v, original %v", b, a)
	}
}

func TestPodsRejectsGarbage(t *testing.T) {
	if _, err := isa.UnmarshalPods([]byte("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := isa.UnmarshalPods([]byte(`{"version": 99, "program": null}`)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("wrong version accepted: %v", err)
	}
	if _, err := isa.UnmarshalPods([]byte(`{"version": 1}`)); err == nil {
		t.Fatal("missing program accepted")
	}
	// A structurally invalid program must fail validation on read.
	bad := `{"version":1,"program":{"Templates":[{"ID":0,"Name":"m","Kind":3,"Code":[{"op":"JUMP","dst":-1,"a":-1,"b":-1,"target":42}],"NSlots":1}],"EntryID":0}}`
	if _, err := isa.UnmarshalPods([]byte(bad)); err == nil {
		t.Fatal("invalid program accepted")
	}
}

func TestWriteRefusesInvalidProgram(t *testing.T) {
	bad := &isa.Program{EntryID: 5}
	if _, err := isa.MarshalPods(bad); err == nil {
		t.Fatal("invalid program serialized")
	}
}
