package isa

import (
	"fmt"
	"math"
)

// IsScalar reports whether op is a pure scalar ALU operation that
// EvalScalar can compute: no control flow, memory, or process effects.
func IsScalar(op Opcode) bool {
	switch op {
	case IADD, ISUB, IMUL, IDIV, IMOD, INEG,
		FADD, FSUB, FMUL, FDIV, FNEG, FABS, FSQRT, FPOW,
		CMPLT, CMPLE, CMPGT, CMPGE, CMPEQ, CMPNE,
		AND, OR, NOT, MAX, MIN, ITOF, FTOI:
		return true
	}
	return false
}

// EvalScalar computes a pure scalar operation; unary ops ignore b. Every
// execution backend evaluates scalar opcodes through this one helper, so
// their arithmetic cannot diverge — the same single-source-of-truth
// guarantee rtcfg provides for geometry defaults, and a precondition for
// the Church-Rosser backend-agreement tests. Integer division or modulo by
// zero is an error.
func EvalScalar(op Opcode, a, b Value) (Value, error) {
	switch op {
	case IADD:
		return Int(a.AsInt() + b.AsInt()), nil
	case ISUB:
		return Int(a.AsInt() - b.AsInt()), nil
	case IMUL:
		return Int(a.AsInt() * b.AsInt()), nil
	case IDIV:
		d := b.AsInt()
		if d == 0 {
			return Value{}, fmt.Errorf("integer division by zero")
		}
		return Int(a.AsInt() / d), nil
	case IMOD:
		d := b.AsInt()
		if d == 0 {
			return Value{}, fmt.Errorf("integer modulo by zero")
		}
		return Int(a.AsInt() % d), nil
	case INEG:
		return Int(-a.AsInt()), nil

	case FADD:
		return Float(a.AsFloat() + b.AsFloat()), nil
	case FSUB:
		return Float(a.AsFloat() - b.AsFloat()), nil
	case FMUL:
		return Float(a.AsFloat() * b.AsFloat()), nil
	case FDIV:
		return Float(a.AsFloat() / b.AsFloat()), nil
	case FNEG:
		return Float(-a.AsFloat()), nil
	case FABS:
		return Float(math.Abs(a.AsFloat())), nil
	case FSQRT:
		return Float(math.Sqrt(a.AsFloat())), nil
	case FPOW:
		return Float(math.Pow(a.AsFloat(), b.AsFloat())), nil

	case CMPLT, CMPLE, CMPGT, CMPGE, CMPEQ, CMPNE:
		return compareValues(op, a, b), nil
	case AND:
		return Bool(a.AsBool() && b.AsBool()), nil
	case OR:
		return Bool(a.AsBool() || b.AsBool()), nil
	case NOT:
		return Bool(!a.AsBool()), nil
	case MAX, MIN:
		return minmaxValues(op, a, b), nil
	case ITOF:
		return Float(a.AsFloat()), nil
	case FTOI:
		return Int(a.AsInt()), nil
	}
	return Value{}, fmt.Errorf("EvalScalar: %s is not a scalar opcode", op)
}

// compareValues orders two values — as floats when either side is a float,
// as integers otherwise — and applies the comparison op.
func compareValues(op Opcode, a, b Value) Value {
	var c int
	if a.Kind == KindFloat || b.Kind == KindFloat {
		x, y := a.AsFloat(), b.AsFloat()
		switch {
		case x < y:
			c = -1
		case x > y:
			c = 1
		}
	} else {
		x, y := a.AsInt(), b.AsInt()
		switch {
		case x < y:
			c = -1
		case x > y:
			c = 1
		}
	}
	switch op {
	case CMPLT:
		return Bool(c < 0)
	case CMPLE:
		return Bool(c <= 0)
	case CMPGT:
		return Bool(c > 0)
	case CMPGE:
		return Bool(c >= 0)
	case CMPEQ:
		return Bool(c == 0)
	default:
		return Bool(c != 0)
	}
}

// minmaxValues picks the extremum, preserving integer identity for
// all-integer operands and following IEEE math.Max/Min when floats mix in.
func minmaxValues(op Opcode, a, b Value) Value {
	if a.Kind == KindFloat || b.Kind == KindFloat {
		if op == MAX {
			return Float(math.Max(a.AsFloat(), b.AsFloat()))
		}
		return Float(math.Min(a.AsFloat(), b.AsFloat()))
	}
	if op == MAX {
		if a.AsInt() >= b.AsInt() {
			return a
		}
		return b
	}
	if a.AsInt() <= b.AsInt() {
		return a
	}
	return b
}
