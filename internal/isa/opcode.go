package isa

// Opcode identifies an SP instruction. The set mirrors the operator
// repertoire of the paper's dataflow graphs after translation: arithmetic
// with the granularity of the iPSC/2 timing table (§5.1), control transfer
// (the translated "switch" operator), I-structure access, SP spawning
// (L and LD operators), token sends, and the Range-Filter support
// instructions inserted by the partitioner (OWNLO/OWNHI/MAX/MIN).
type Opcode uint8

// Instruction opcodes.
const (
	NOP Opcode = iota + 1

	// Data movement.
	CONST // Dst = Imm
	MOVE  // Dst = slot A
	CLEAR // mark Dst absent (used before spawning a child that SENDs into Dst)

	// Integer arithmetic (paper: integer add/sub 0.300 µs).
	IADD // Dst = A + B
	ISUB // Dst = A - B
	IMUL // Dst = A * B
	IDIV // Dst = A / B (trap on zero divisor)
	IMOD // Dst = A % B
	INEG // Dst = -A

	// Floating-point arithmetic (per-op costs from the paper's table).
	FADD  // Dst = A + B
	FSUB  // Dst = A - B
	FMUL  // Dst = A * B
	FDIV  // Dst = A / B
	FNEG  // Dst = -A
	FABS  // Dst = |A|
	FSQRT // Dst = sqrt(A)
	FPOW  // Dst = A ** B

	// Comparisons; result is a bool token. CMPxx dispatches on operand kind
	// (float compare cost if either side is a float, integer otherwise).
	CMPLT // Dst = A < B
	CMPLE // Dst = A <= B
	CMPGT // Dst = A > B
	CMPGE // Dst = A >= B
	CMPEQ // Dst = A == B
	CMPNE // Dst = A != B

	// Bitwise/logical (paper: bitwise logical 0.558 µs).
	AND // Dst = A && B (on bools) / A & B (on ints)
	OR  // Dst = A || B / A | B
	NOT // Dst = !A / ^A

	// Min/max — used by Range Filters and as frontend intrinsics.
	MAX // Dst = max(A, B)
	MIN // Dst = min(A, B)

	// Conversions.
	ITOF // Dst = float(A)
	FTOI // Dst = int(A), truncating

	// Control transfer inside an SP (the translated switch operator:
	// "the program counter is either incremented ... or set to a new value").
	JUMP    // PC = Target
	BRFALSE // if !A { PC = Target }
	BRTRUE  // if A { PC = Target }

	// I-structure access. Reads are split-phase: the read clears Dst,
	// issues the request, and execution continues until Dst is consumed.
	ALLOC  // Dst = new local array; extents in Args (one slot per dimension)
	ALLOCD // Dst = new distributed array; extents in Args
	AREAD  // request element (A=array, Args=indices) into Dst
	AWRITE // write element (A=array, Args=indices, B=value)

	// Range-Filter ownership queries, resolved against the local array
	// header at run time (§4.2.2). For ROWLO/ROWHI, the PE's responsibility
	// along dimension 0 under the first-element rule. For COLLO/COLHI, the
	// in-row subrange owned by this PE for outer index B (both are clamped
	// to an empty range when the PE owns nothing).
	ROWLO // Dst = first dim-0 index this PE is responsible for (A=array)
	ROWHI // Dst = last dim-0 index this PE is responsible for (A=array)
	COLLO // Dst = first dim-1 index owned in row B (A=array)
	COLHI // Dst = last dim-1 index owned in row B (A=array)

	// Uniform Range Filter: when loop distribution cannot follow array
	// ownership (e.g. the written dimension is swept inside, §4.2.3's
	// conflicting-responsibility discussion), the index range [A,B] is
	// block-split evenly over the PEs.
	UNIFLO // Dst = this PE's block start within [A, B]
	UNIFHI // Dst = this PE's block end within [A, B]

	// SP management. SPAWN is the translated L operator (child SP on the
	// local PE); SPAWND is the distributing L (one copy per PE). Args are
	// slots whose values become the child's parameters. Imm.I holds the
	// child template ID.
	SPAWN
	SPAWND

	// SEND routes one token to slot Imm.I of SP instance A (a KindSP
	// value), carrying the value in B. Used for loop results and function
	// returns. SELF materializes this instance's own reference into Dst so
	// it can be passed to children as a continuation.
	SEND
	SELF

	// HALT ends the SP ("reaches the end of the SP, at which time it is
	// destroyed").
	HALT

	numOpcodes // sentinel; keep last
)

// NumOpcodes is the number of defined opcodes plus one; valid opcodes are
// in [1, NumOpcodes).
const NumOpcodes = int(numOpcodes)

var opcodeNames = [...]string{
	NOP: "NOP", CONST: "CONST", MOVE: "MOVE", CLEAR: "CLEAR",
	IADD: "IADD", ISUB: "ISUB", IMUL: "IMUL", IDIV: "IDIV", IMOD: "IMOD", INEG: "INEG",
	FADD: "FADD", FSUB: "FSUB", FMUL: "FMUL", FDIV: "FDIV", FNEG: "FNEG",
	FABS: "FABS", FSQRT: "FSQRT", FPOW: "FPOW",
	CMPLT: "CMPLT", CMPLE: "CMPLE", CMPGT: "CMPGT", CMPGE: "CMPGE",
	CMPEQ: "CMPEQ", CMPNE: "CMPNE",
	AND: "AND", OR: "OR", NOT: "NOT", MAX: "MAX", MIN: "MIN",
	ITOF: "ITOF", FTOI: "FTOI",
	JUMP: "JUMP", BRFALSE: "BRFALSE", BRTRUE: "BRTRUE",
	ALLOC: "ALLOC", ALLOCD: "ALLOCD", AREAD: "AREAD", AWRITE: "AWRITE",
	ROWLO: "ROWLO", ROWHI: "ROWHI", COLLO: "COLLO", COLHI: "COLHI",
	UNIFLO: "UNIFLO", UNIFHI: "UNIFHI",
	SPAWN: "SPAWN", SPAWND: "SPAWND", SEND: "SEND", SELF: "SELF", HALT: "HALT",
}

func (op Opcode) String() string {
	if int(op) < len(opcodeNames) && opcodeNames[op] != "" {
		return opcodeNames[op]
	}
	return "OP(" + itoa(int(op)) + ")"
}

func itoa(i int) string {
	// strconv-free tiny helper to keep the String path allocation-light.
	if i == 0 {
		return "0"
	}
	var buf [8]byte
	n := len(buf)
	for i > 0 && n > 0 {
		n--
		buf[n] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[n:])
}

// IsPure reports whether the instruction only reads and writes the local
// frame (no interaction with other functional units, SPs, or PEs). The
// simulator executes runs of pure instructions inside a single event.
func (op Opcode) IsPure() bool {
	switch op {
	case ALLOC, ALLOCD, AREAD, AWRITE, SPAWN, SPAWND, SEND, HALT:
		return false
	}
	return true
}

// IsBranch reports whether the instruction may transfer control.
func (op Opcode) IsBranch() bool {
	return op == JUMP || op == BRFALSE || op == BRTRUE
}
