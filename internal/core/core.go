// Package core wires the PODS pipeline of the paper's Figure 3 into one
// object: Idlite source (standing in for Id Nouveau) is compiled to
// dataflow graphs, the Translator turns code blocks into Subcompact
// Processes, the Partitioner inserts the distribution primitives
// (distributing allocate, LD, Range Filters), and the result can be run on
// any of the three backends: the instruction-level machine simulator, the
// shared-memory goroutine runtime, or the message-passing cluster runtime.
package core

import (
	"context"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/idlang"
	"repro/internal/isa"
	"repro/internal/partition"
	"repro/internal/podsrt"
	"repro/internal/sim"
	"repro/internal/translate"
)

// Options configures compilation.
type Options struct {
	// DisableDistribution skips the partitioner's loop distribution.
	DisableDistribution bool
}

// System is a compiled, partitioned PODS program ready to run.
type System struct {
	Graph   *graph.Program
	Program *isa.Program
	Report  *partition.Report
}

// CompileSource builds a System from Idlite source text.
func CompileSource(filename, src string, opts Options) (*System, error) {
	gp, err := idlang.Compile(filename, src)
	if err != nil {
		return nil, err
	}
	return CompileGraph(gp, opts)
}

// CompileGraph builds a System from an already-constructed dataflow graph
// (e.g. one assembled with graph.Builder).
func CompileGraph(gp *graph.Program, opts Options) (*System, error) {
	prog, err := translate.Translate(gp)
	if err != nil {
		return nil, fmt.Errorf("translate: %w", err)
	}
	rep, err := partition.Partition(prog, partition.Options{DisableDistribution: opts.DisableDistribution})
	if err != nil {
		return nil, fmt.Errorf("partition: %w", err)
	}
	return &System{Graph: gp, Program: prog, Report: rep}, nil
}

// Listing returns the SP disassembly of the partitioned program.
func (s *System) Listing() string { return s.Program.Listing() }

// Simulate runs the program on the discrete-event machine simulator.
func (s *System) Simulate(cfg sim.Config, args ...isa.Value) (*sim.Result, *sim.Machine, error) {
	m, err := sim.New(s.Program, cfg)
	if err != nil {
		return nil, nil, err
	}
	res, err := m.Run(args...)
	if err != nil {
		return nil, nil, err
	}
	return res, m, nil
}

// Execute runs the program on the concurrent goroutine runtime.
func (s *System) Execute(ctx context.Context, cfg podsrt.Config, args ...isa.Value) (*isa.Value, *podsrt.Runtime, error) {
	rt, err := podsrt.New(s.Program, cfg)
	if err != nil {
		return nil, nil, err
	}
	v, err := rt.Run(ctx, args...)
	if err != nil {
		return nil, nil, err
	}
	return v, rt, nil
}

// ExecuteCluster runs the program on the message-passing distributed-memory
// runtime (in-process channel workers, or TCP workers when cfg.Workers is
// set).
func (s *System) ExecuteCluster(ctx context.Context, cfg cluster.Config, args ...isa.Value) (*cluster.Result, error) {
	return cluster.Execute(ctx, s.Program, cfg, args...)
}
