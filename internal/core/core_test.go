package core_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/podsrt"
	"repro/internal/sim"
)

const src = `
func main(n: int) -> float {
	A = array(n);
	for i = 1 to n {
		A[i] = float(i) * 1.5;
	}
	s = 0.0;
	for k = 1 to n {
		next s = s + A[k];
	}
	return s;
}
`

func TestPipelineBothEngines(t *testing.T) {
	sys, err := core.CompileSource("t.id", src, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	want := 0.0
	for i := 1; i <= n; i++ {
		want += float64(i) * 1.5
	}

	res, _, err := sys.Simulate(sim.Config{NumPEs: 4}, isa.Int(n))
	if err != nil {
		t.Fatal(err)
	}
	if res.MainValue == nil || res.MainValue.F != want {
		t.Fatalf("simulator: %+v, want %v", res.MainValue, want)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	v, _, err := sys.Execute(ctx, podsrt.Config{VirtualPEs: 4}, isa.Int(n))
	if err != nil {
		t.Fatal(err)
	}
	if v == nil || v.F != want {
		t.Fatalf("runtime: %+v, want %v", v, want)
	}
}

func TestListingAndReport(t *testing.T) {
	sys, err := core.CompileSource("t.id", src, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if l := sys.Listing(); !strings.Contains(l, "main") || !strings.Contains(l, "HALT") {
		t.Errorf("listing:\n%s", l)
	}
	if r := sys.Report.String(); !strings.Contains(r, "distribute") {
		t.Errorf("report:\n%s", r)
	}
}

func TestDisableDistribution(t *testing.T) {
	sys, err := core.CompileSource("t.id", src, core.Options{DisableDistribution: true})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sys.Listing(), "SPAWND") {
		t.Error("centralized compile must not contain LD operators")
	}
}

func TestCompileErrorsPropagate(t *testing.T) {
	if _, err := core.CompileSource("t.id", "func main( {", core.Options{}); err == nil {
		t.Fatal("want parse error")
	}
}
