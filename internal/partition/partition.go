// Package partition implements the PODS Partitioner (paper §4.2): it
// rewrites translated SP templates for distributed execution by
//
//  1. converting array allocations into distributing allocates (§4.1),
//  2. converting the L operator of each distributed loop into the
//     distributing L operator LD (§4.2.1), and
//  3. installing exactly one Range Filter per loop nest (§4.2.2–4.2.3) at
//     the outermost level that has no loop-carried dependency, rewriting
//     the index generation as init = max(init, start_range) and
//     limit = min(limit, end_range) (Figure 5).
//
// The for-loop distribution algorithm follows §4.2.4: walk each nest
// depth-first; levels with LCDs stay centralized and the walk descends;
// the first LCD-free level that writes a distributed array is distributed
// and everything below it stays local with no further RFs.
package partition

import (
	"fmt"

	"repro/internal/dep"
	"repro/internal/isa"
)

// Options controls partitioning.
type Options struct {
	// DisableDistribution leaves the program fully centralized (used for
	// ablation benchmarks); allocations still become ALLOCD so memory
	// layout matches, but no loop is distributed.
	DisableDistribution bool

	// KeepLocalAllocs leaves ALLOC instructions untouched (every array on
	// its allocating PE). Used for ablations.
	KeepLocalAllocs bool
}

// Partition rewrites prog in place and returns a report of the decisions.
func Partition(prog *isa.Program, opts Options) (*Report, error) {
	rep := &Report{}
	if !opts.KeepLocalAllocs {
		for _, t := range prog.Templates {
			for pc := range t.Code {
				if t.Code[pc].Op == isa.ALLOC {
					t.Code[pc].Op = isa.ALLOCD
					rep.DistributedAllocs++
				}
			}
		}
	}

	// Record LCD status on every loop template.
	for _, t := range prog.Templates {
		if t.Loop == nil {
			continue
		}
		t.Loop.HasLCD = t.Loop.IsWhile ||
			dep.HasLCD(t.Loop.Var, t.Loop.Accesses, t.Loop.NCarried > 0)
	}
	if opts.DisableDistribution {
		return rep, nil
	}

	// parentSpawns[child] = list of (template, pc) sites spawning child.
	parentSpawns := make(map[int][]spawnSite)
	for _, t := range prog.Templates {
		for pc := range t.Code {
			in := &t.Code[pc]
			if in.Op == isa.SPAWN || in.Op == isa.SPAWND {
				parentSpawns[int(in.Imm.I)] = append(parentSpawns[int(in.Imm.I)], spawnSite{t, pc})
			}
		}
	}
	// children[t] = templates spawned (directly) from template t, in code
	// order, deduplicated.
	children := make(map[int][]int)
	for _, t := range prog.Templates {
		seen := map[int]bool{}
		for pc := range t.Code {
			in := &t.Code[pc]
			if in.Op == isa.SPAWN || in.Op == isa.SPAWND {
				child := int(in.Imm.I)
				if prog.Template(child) != nil && !seen[child] {
					seen[child] = true
					children[t.ID] = append(children[t.ID], child)
				}
			}
		}
	}

	// Depth-first distribution per §4.2.4 from the entry template. The walk
	// crosses function calls so that a loop inside a function invoked from
	// an already-distributed loop body stays local (everything below the
	// single RF runs on one PE). A template reached from two contexts keeps
	// its first (outermost-first) decision. The walk threads the set of
	// enclosing loop variables so in-row Range Filters only key on indices
	// that are actually fixed by an outer level.
	var walk func(id int, outer map[string]bool) error
	visited := map[int]bool{}
	walk = func(id int, outer map[string]bool) error {
		if visited[id] {
			return nil
		}
		visited[id] = true
		t := prog.Template(id)
		if t.Kind == isa.TmplLoop && !t.Loop.HasLCD && !t.Loop.IsWhile {
			if choice, ok := dep.ChooseRF(t.Loop.Var, t.Loop.Accesses, outer); ok {
				applied, err := distribute(t, choice, parentSpawns[id])
				if err != nil {
					return err
				}
				if applied {
					rep.Distributed = append(rep.Distributed, Decision{
						Template: t.Name, Var: t.Loop.Var,
						Kind: t.RFKind, Array: t.RFArray,
					})
					markLocal(prog, children, visited, id)
					return nil // one RF per nest: do not descend
				}
			}
		}
		if t.Kind == isa.TmplLoop && t.Loop.HasLCD {
			rep.Serial = append(rep.Serial, Decision{Template: t.Name, Var: t.Loop.Var})
		}
		inner := outer
		if t.Kind == isa.TmplLoop {
			inner = make(map[string]bool, len(outer)+1)
			for k := range outer {
				inner[k] = true
			}
			inner[t.Loop.Var] = true
		}
		for _, c := range children[id] {
			if err := walk(c, inner); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(prog.EntryID, map[string]bool{}); err != nil {
		return nil, err
	}
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("partition: produced invalid program: %w", err)
	}
	return rep, nil
}

type spawnSite struct {
	t  *isa.Template
	pc int
}

// markLocal marks the whole subtree below a distributed loop as visited so
// no deeper level acquires a second Range Filter.
func markLocal(prog *isa.Program, children map[int][]int, visited map[int]bool, id int) {
	for _, c := range children[id] {
		if !visited[c] {
			visited[c] = true
			markLocal(prog, children, visited, c)
		}
	}
}

// Decision records one partitioning choice for reporting and tests.
type Decision struct {
	Template string
	Var      string
	Kind     isa.RFKind
	Array    string
}

// Report summarizes what the partitioner did.
type Report struct {
	DistributedAllocs int
	Distributed       []Decision // loops given an RF + LD
	Serial            []Decision // loops kept serial due to LCDs
}

// String renders the report.
func (r *Report) String() string {
	s := fmt.Sprintf("partition: %d distributing allocates\n", r.DistributedAllocs)
	for _, d := range r.Distributed {
		s += fmt.Sprintf("  distribute %s over %s (RF=%s on %q)\n", d.Template, d.Var, d.Kind, d.Array)
	}
	for _, d := range r.Serial {
		s += fmt.Sprintf("  serialize  %s (LCD at %s)\n", d.Template, d.Var)
	}
	return s
}

// distribute installs the Range Filter into t and flips its parents' spawn
// sites to LD. Returns false (without modifying anything) when the template
// lacks the slots the filter needs (e.g. the keyed array is not visible).
func distribute(t *isa.Template, choice dep.RFChoice, parents []spawnSite) (bool, error) {
	if t.NResults > 0 {
		return false, fmt.Errorf("partition: template %q has results but no LCD was detected", t.Name)
	}
	li := t.Loop

	arrSlot := isa.None
	outerSlot := isa.None
	switch choice.Kind {
	case isa.RFRow:
		s, ok := t.Names[choice.Array]
		if !ok {
			return false, nil
		}
		arrSlot = s
	case isa.RFCol:
		s, ok := t.Names[choice.Array]
		if !ok {
			return false, nil
		}
		arrSlot = s
		os, ok := t.Names[choice.Outer]
		if !ok {
			// The outer index is not visible here; fall back to a uniform split.
			choice = dep.RFChoice{Kind: isa.RFUniform}
		} else {
			outerSlot = os
		}
	}

	loSlot := t.NSlots
	hiSlot := t.NSlots + 1
	t.NSlots += 2

	mkOwn := func(op isa.Opcode, dst int) isa.Instr {
		in := isa.NewInstr(op)
		in.Dst, in.A, in.B = dst, arrSlot, outerSlot
		in.Comment = "RF"
		return in
	}
	mkClamp := func(op isa.Opcode, target, bound int) isa.Instr {
		in := isa.NewInstr(op)
		in.Dst, in.A, in.B = target, target, bound
		in.Comment = "RF clamp"
		return in
	}
	mkMove := func(dst, src int) isa.Instr {
		in := isa.NewInstr(isa.MOVE)
		in.Dst, in.A = dst, src
		in.Comment = "RF"
		return in
	}

	loOp, hiOp := isa.ROWLO, isa.ROWHI
	if choice.Kind == isa.RFCol {
		loOp, hiOp = isa.COLLO, isa.COLHI
	}

	var atInit, atLimit []isa.Instr
	switch choice.Kind {
	case isa.RFRow, isa.RFCol:
		if !li.Descending {
			// init = max(init, start_range); limit = min(limit, end_range).
			atInit = []isa.Instr{mkOwn(loOp, loSlot), mkClamp(isa.MAX, li.VarSlot, loSlot)}
			atLimit = []isa.Instr{mkOwn(hiOp, hiSlot), mkClamp(isa.MIN, li.LimitSlot, hiSlot)}
		} else {
			// Descending: the operators are interchanged (§4.2.2).
			atInit = []isa.Instr{mkOwn(hiOp, hiSlot), mkClamp(isa.MIN, li.VarSlot, hiSlot)}
			atLimit = []isa.Instr{mkOwn(loOp, loSlot), mkClamp(isa.MAX, li.LimitSlot, loSlot)}
		}
	case isa.RFUniform:
		// Needs both bounds: insert everything after the limit section.
		mk := func(op isa.Opcode, dst, a, b int) isa.Instr {
			in := isa.NewInstr(op)
			in.Dst, in.A, in.B = dst, a, b
			in.Comment = "RF uniform"
			return in
		}
		if !li.Descending {
			atLimit = []isa.Instr{
				mk(isa.UNIFLO, loSlot, li.VarSlot, li.LimitSlot),
				mk(isa.UNIFHI, hiSlot, li.VarSlot, li.LimitSlot),
				mkMove(li.VarSlot, loSlot),
				mkMove(li.LimitSlot, hiSlot),
			}
		} else {
			atLimit = []isa.Instr{
				mk(isa.UNIFLO, loSlot, li.LimitSlot, li.VarSlot),
				mk(isa.UNIFHI, hiSlot, li.LimitSlot, li.VarSlot),
				mkMove(li.VarSlot, hiSlot),
				mkMove(li.LimitSlot, loSlot),
			}
		}
	default:
		return false, fmt.Errorf("partition: template %q: unsupported RF kind", t.Name)
	}

	// Insert the limit-section filter first (higher index), then the
	// init-section filter, so recorded positions stay valid.
	insertCode(t, li.LimitEnd, atLimit)
	if len(atInit) > 0 {
		insertCode(t, li.InitEnd, atInit)
	}

	for _, p := range parents {
		p.t.Code[p.pc].Op = isa.SPAWND
	}
	t.Distributed = true
	t.RFKind = choice.Kind
	t.RFArray = choice.Array
	return true, nil
}

// insertCode splices ins into t.Code at index `at`, shifting jump targets
// and recorded loop positions.
func insertCode(t *isa.Template, at int, ins []isa.Instr) {
	n := len(ins)
	t.Code = append(t.Code[:at], append(append([]isa.Instr{}, ins...), t.Code[at:]...)...)
	for pc := range t.Code {
		if pc >= at && pc < at+n {
			continue // freshly inserted
		}
		in := &t.Code[pc]
		if in.Op.IsBranch() && in.Target >= at {
			in.Target += n
		}
	}
	if t.Loop != nil {
		if t.Loop.InitEnd >= at {
			t.Loop.InitEnd += n
		}
		if t.Loop.LimitEnd >= at {
			t.Loop.LimitEnd += n
		}
	}
}
