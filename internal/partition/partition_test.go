package partition_test

import (
	"strings"
	"testing"

	"repro/internal/idlang"
	"repro/internal/isa"
	"repro/internal/partition"
	"repro/internal/sim"
	"repro/internal/translate"
)

func compile(t *testing.T, src string) (*isa.Program, *partition.Report) {
	t.Helper()
	gp, err := idlang.Compile("p.id", src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := translate.Translate(gp)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := partition.Partition(prog, partition.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return prog, rep
}

// colFilterSrc has a loop-carried outer loop (running row scale) whose
// inner loop writes A[i,j] — §4.2.3's case: eliminate the RF at the outer
// level (it stays a single instance) and distribute the inner level with
// the in-row column filter of Figure 5.
const colFilterSrc = `
func main(n: int) {
	A = array(n, n);
	scale = 1.0;
	for i = 1 to n {
		for j = 1 to n {
			A[i, j] = scale * float(j);
		}
		next scale = scale + 1.0;
	}
}
`

func TestColumnRangeFilterChosen(t *testing.T) {
	prog, rep := compile(t, colFilterSrc)
	var outer, inner *isa.Template
	for _, tm := range prog.Templates {
		if tm.Loop == nil {
			continue
		}
		switch tm.Loop.Var {
		case "i":
			outer = tm
		case "j":
			inner = tm
		}
	}
	if outer == nil || inner == nil {
		t.Fatal("missing loop templates")
	}
	if !outer.Loop.HasLCD || outer.Distributed {
		t.Fatalf("outer loop: HasLCD=%v Distributed=%v, want LCD and centralized", outer.Loop.HasLCD, outer.Distributed)
	}
	if !inner.Distributed || inner.RFKind != isa.RFCol || inner.RFArray != "A" {
		t.Fatalf("inner loop: dist=%v kind=%v array=%q, want col filter on A\n%s",
			inner.Distributed, inner.RFKind, inner.RFArray, rep)
	}
	// The inner template must contain COLLO/COLHI keyed on the imported i.
	hasColOps := false
	for _, in := range inner.Code {
		if in.Op == isa.COLLO || in.Op == isa.COLHI {
			hasColOps = true
			if in.B != inner.Names["i"] {
				t.Errorf("column filter keyed on slot %d, want i's slot %d", in.B, inner.Names["i"])
			}
		}
	}
	if !hasColOps {
		t.Fatalf("no COLLO/COLHI in inner template:\n%s", inner.Listing())
	}
}

func TestColumnRangeFilterExecutes(t *testing.T) {
	prog, _ := compile(t, colFilterSrc)
	const n = 12
	for _, pes := range []int{1, 2, 4, 8} {
		m, err := sim.New(prog, sim.Config{NumPEs: pes, PageElems: 8, DistThreshold: 16})
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run(isa.Int(n))
		if err != nil {
			t.Fatalf("PEs=%d: %v", pes, err)
		}
		vals, mask, _, err := m.ReadArray("A")
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i <= n; i++ {
			for j := 1; j <= n; j++ {
				off := (i-1)*n + j - 1
				if !mask[off] {
					t.Fatalf("PEs=%d: A[%d,%d] never written (RF ranges must tile every row)", pes, i, j)
				}
				if want := float64(i) * float64(j); vals[off] != want {
					t.Fatalf("PEs=%d: A[%d,%d]=%v want %v", pes, i, j, vals[off], want)
				}
			}
		}
		// With the in-row filter, each element is written by the PE that
		// owns it: all writes local.
		if pes > 1 && res.Counts.RemoteWrites != 0 {
			t.Errorf("PEs=%d: %d remote writes, want 0 (column RF follows ownership)", pes, res.Counts.RemoteWrites)
		}
	}
}

// descendingSrc distributes a downto loop (the interchanged min/max RF form
// of §4.2.2).
const descendingSrc = `
func main(n: int) {
	A = array(n, n);
	for i = n downto 1 {
		for j = 1 to n {
			A[i, j] = float(i * 1000 + j);
		}
	}
}
`

func TestDescendingRowFilter(t *testing.T) {
	prog, _ := compile(t, descendingSrc)
	var outer *isa.Template
	for _, tm := range prog.Templates {
		if tm.Loop != nil && tm.Loop.Var == "i" {
			outer = tm
		}
	}
	if outer == nil || !outer.Distributed || outer.RFKind != isa.RFRow {
		t.Fatalf("descending outer loop should be row-distributed: %+v", outer)
	}
	if !outer.Loop.Descending {
		t.Fatal("descending flag lost")
	}
	const n = 10
	for _, pes := range []int{1, 4} {
		m, err := sim.New(prog, sim.Config{NumPEs: pes, PageElems: 8, DistThreshold: 16})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(isa.Int(n)); err != nil {
			t.Fatalf("PEs=%d: %v", pes, err)
		}
		vals, mask, _, _ := m.ReadArray("A")
		for i := 1; i <= n; i++ {
			for j := 1; j <= n; j++ {
				off := (i-1)*n + j - 1
				if !mask[off] || vals[off] != float64(i*1000+j) {
					t.Fatalf("PEs=%d: A[%d,%d]=%v written=%v", pes, i, j, vals[off], mask[off])
				}
			}
		}
	}
}

// TestUniformFilterDescending exercises the uniform RF on a downto loop:
// offset writes prevent ownership-aligned filtering.
func TestUniformFilterDescending(t *testing.T) {
	src := `
func main(n: int) {
	A = array(n);
	B = array(n);
	for i = 1 to n {
		A[i] = float(i);
	}
	for k = n - 1 downto 1 {
		B[k] = A[k + 1] * 2.0;
	}
}`
	prog, _ := compile(t, src)
	var kloop *isa.Template
	for _, tm := range prog.Templates {
		if tm.Loop != nil && tm.Loop.Var == "k" {
			kloop = tm
		}
	}
	if kloop == nil {
		t.Fatal("no k loop")
	}
	if !kloop.Distributed || kloop.RFKind != isa.RFRow {
		// B[k] write: k in dim0 offset 0 → row filter even though A is read
		// at k+1. Check no LCD was wrongly detected.
		t.Fatalf("k loop: dist=%v kind=%v (HasLCD=%v)", kloop.Distributed, kloop.RFKind, kloop.Loop.HasLCD)
	}
	const n = 40
	for _, pes := range []int{1, 3, 8} {
		m, err := sim.New(prog, sim.Config{NumPEs: pes, PageElems: 8, DistThreshold: 16})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(isa.Int(n)); err != nil {
			t.Fatalf("PEs=%d: %v", pes, err)
		}
		vals, mask, _, _ := m.ReadArray("B")
		for k := 1; k <= n-1; k++ {
			if !mask[k-1] || vals[k-1] != float64(k+1)*2 {
				t.Fatalf("PEs=%d: B[%d]=%v written=%v", pes, k, vals[k-1], mask[k-1])
			}
		}
	}
}

func TestKeepLocalAllocsOption(t *testing.T) {
	gp, err := idlang.Compile("p.id", descendingSrc)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := translate.Translate(gp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := partition.Partition(prog, partition.Options{KeepLocalAllocs: true}); err != nil {
		t.Fatal(err)
	}
	for _, tm := range prog.Templates {
		for _, in := range tm.Code {
			if in.Op == isa.ALLOCD {
				t.Fatal("KeepLocalAllocs must leave ALLOC untouched")
			}
		}
	}
}

func TestReportRendering(t *testing.T) {
	_, rep := compile(t, colFilterSrc)
	s := rep.String()
	if !strings.Contains(s, "distributing allocates") || !strings.Contains(s, "distribute") {
		t.Errorf("report: %s", s)
	}
}
