// Observability integration: a traced cluster run must yield a loadable
// Chrome trace_event JSON document and a parseable per-round timeline CSV,
// with the event kinds a steal+adapt relax run is known to produce.
package pods_test

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"testing"
	"time"

	pods "repro"
	"repro/internal/kernels"
)

func tracedRelaxRun(t *testing.T) *pods.ClusterResult {
	t.Helper()
	k, _ := kernels.ByName("relax")
	p, err := pods.Compile(k.File(), k.Source)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := p.ExecuteCluster(ctx, pods.ClusterConfig{
		NumPEs: 8, Steal: true, Adapt: true, Trace: true,
	}, k.Args(24)...)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestTracedRunExportsValidChromeJSON(t *testing.T) {
	res := tracedRelaxRun(t)
	tr := res.Trace()
	if tr == nil || tr.NumPEs != 8 {
		t.Fatalf("Trace() = %+v, want 8-PE trace", tr)
	}
	if tr.Events() == 0 {
		t.Fatal("traced run gathered no events")
	}

	var buf bytes.Buffer
	if err := res.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("Chrome trace is not a valid JSON array: %v", err)
	}
	phases := map[string]int{}
	names := map[string]int{}
	for _, e := range evs {
		ph, _ := e["ph"].(string)
		phases[ph]++
		name, _ := e["name"].(string)
		names[name]++
		if _, ok := e["ts"].(float64); !ok {
			t.Fatalf("event missing numeric ts: %v", e)
		}
	}
	// A steal+adapt relax run must produce SP slices ("X"), metadata
	// thread names ("M"), counter tracks ("C"), and instants ("i").
	for _, ph := range []string{"X", "M", "C", "i"} {
		if phases[ph] == 0 {
			t.Errorf("no %q events in Chrome trace (phases: %v)", ph, phases)
		}
	}
	if names["thread_name"] != 8 {
		t.Errorf("thread_name metadata count = %d, want one per PE (8)", names["thread_name"])
	}
}

func TestTracedRunExportsTimelineCSV(t *testing.T) {
	res := tracedRelaxRun(t)
	var buf bytes.Buffer
	if err := res.WriteTimelineCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("timeline CSV does not parse: %v", err)
	}
	if len(rows) < 2 {
		t.Fatalf("timeline CSV has %d rows, want header + samples", len(rows))
	}
	want := "round,pe,wall_ms,instrs,qdepth,live,sent,hits,misses,evicts,steals"
	if got := joinComma(rows[0]); got != want {
		t.Fatalf("timeline header = %q, want %q", got, want)
	}
	for _, row := range rows[1:] {
		if len(row) != len(rows[0]) {
			t.Fatalf("ragged timeline row: %v", row)
		}
	}
}

func joinComma(fields []string) string {
	out := ""
	for i, f := range fields {
		if i > 0 {
			out += ","
		}
		out += f
	}
	return out
}

// TestUntracedRunHasNoTrace pins the off-by-default contract: without
// ClusterConfig.Trace the run carries no trace and the exporters refuse.
func TestUntracedRunHasNoTrace(t *testing.T) {
	k, _ := kernels.ByName("matmul")
	p, err := pods.Compile(k.File(), k.Source)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := p.ExecuteCluster(ctx, pods.ClusterConfig{NumPEs: 2}, k.Args(8)...)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace() != nil {
		t.Error("untraced run returned a trace")
	}
	if err := res.WriteChromeTrace(&bytes.Buffer{}); err == nil {
		t.Error("WriteChromeTrace on an untraced run returned no error")
	}
	if err := res.WriteTimelineCSV(&bytes.Buffer{}); err == nil {
		t.Error("WriteTimelineCSV on an untraced run returned no error")
	}
}
