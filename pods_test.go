package pods_test

import (
	"context"
	"strings"
	"testing"
	"time"

	pods "repro"
	"repro/internal/graph"
	"repro/internal/isa"
)

const fillSrc = `
func main(n: int) {
	A = array(n, n);
	for i = 1 to n {
		for j = 1 to n {
			A[i, j] = float(i * 10 + j);
		}
	}
}
`

func TestFacadeSimulate(t *testing.T) {
	p, err := pods.Compile("fill.id", fillSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Simulate(pods.SimConfig{NumPEs: 4}, pods.Int(8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Time <= 0 {
		t.Fatal("no virtual time")
	}
	vals, mask, dims, err := res.Array("A")
	if err != nil {
		t.Fatal(err)
	}
	if dims[0] != 8 || dims[1] != 8 || !mask[0] || vals[0] != 11 {
		t.Fatalf("A[1,1]=%v (dims %v)", vals[0], dims)
	}
	if got := res.Arrays(); len(got) != 1 || got[0] != "A" {
		t.Fatalf("Arrays() = %v", got)
	}
	if !strings.Contains(p.PartitionReport(), "distribute") {
		t.Errorf("partition report:\n%s", p.PartitionReport())
	}
	if !strings.Contains(p.Listing(), "SPAWND") {
		t.Error("listing should show the distributing L operator")
	}
}

func TestFacadeExecute(t *testing.T) {
	p := pods.MustCompile("ret.id", `
func main(a: int, b: int) -> int {
	return a * b + 1;
}`)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res, err := p.Execute(ctx, pods.RunConfig{VirtualPEs: 2}, pods.Int(6), pods.Int(7))
	if err != nil {
		t.Fatal(err)
	}
	if res.Value == nil || res.Value.I != 43 {
		t.Fatalf("result = %+v, want 43", res.Value)
	}
}

func TestFacadeCentralizedAblation(t *testing.T) {
	full, err := pods.Compile("fill.id", fillSrc)
	if err != nil {
		t.Fatal(err)
	}
	cent, err := pods.CompileCentralized("fill.id", fillSrc)
	if err != nil {
		t.Fatal(err)
	}
	rFull, err := full.Simulate(pods.SimConfig{NumPEs: 8}, pods.Int(16))
	if err != nil {
		t.Fatal(err)
	}
	rCent, err := cent.Simulate(pods.SimConfig{NumPEs: 8}, pods.Int(16))
	if err != nil {
		t.Fatal(err)
	}
	if rFull.Time >= rCent.Time {
		t.Errorf("distribution should help: full %d >= centralized %d", rFull.Time, rCent.Time)
	}
}

func TestFacadeFromGraph(t *testing.T) {
	b := pods.NewGraphBuilder()
	mb := b.NewBlock("main", graph.BlockMain, nil)
	x := mb.Const(isa.Int(20))
	y := mb.Const(isa.Int(22))
	s := mb.Binary(graph.OpIAdd, isa.KindInt, x, y)
	mb.Return(s, isa.KindInt)
	p, err := pods.FromGraph(b)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Simulate(pods.SimConfig{NumPEs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.MainValue == nil || res.MainValue.I != 42 {
		t.Fatalf("result %+v, want 42", res.MainValue)
	}
}

func TestFacadeCompileError(t *testing.T) {
	if _, err := pods.Compile("bad.id", "func main() { x = ; }"); err == nil {
		t.Fatal("want compile error")
	}
}
