// Determinacy (Church-Rosser) tests: a single-assignment dataflow program
// must produce identical results no matter how its operations are
// scheduled. We compile each example kernel once and assert that all three
// backends — the discrete-event simulator, the shared-memory goroutine
// runtime, and the message-passing cluster runtime (with work stealing,
// adaptive repartitioning, and page-cache eviction off and on, separately
// and combined) — produce bit-for-bit identical array contents at every PE
// count, including the mirror kernel, whose consumers race ahead of
// producers and exercise remote deferred reads, the triangular and triread
// kernels, whose skewed load makes the steal-on column actually migrate
// SPs, and the relax kernel, whose drifting skew makes the adapt-on column
// actually move Range Filter bounds mid-run. The eviction columns run with
// a two-page cap per shard, so CLOCK evictions and refetches really happen
// inside these runs. The trace column layers event recording and per-round
// metric snapshots over all of it and must change nothing.
package pods_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	pods "repro"
	"repro/internal/kernels"
)

// kernelSizes keeps the agreement matrix fast: big enough to spread arrays
// over every PE count (n*n is at least 8 pages of 8 elements), small enough
// to run the whole matrix in seconds.
const (
	determinacyN    = 10
	determinacyPage = 8
)

var determinacyPEs = []int{1, 2, 4, 8}

// arraySet is one backend's observable result: name → values + mask.
type arraySet map[string]struct {
	vals []float64
	mask []bool
	dims []int
}

func gather(t *testing.T, k kernels.Kernel, label string,
	read func(name string) ([]float64, []bool, []int, error)) arraySet {
	t.Helper()
	out := make(arraySet)
	for _, name := range k.Arrays {
		vals, mask, dims, err := read(name)
		if err != nil {
			t.Fatalf("%s: %s: %v", label, name, err)
		}
		out[name] = struct {
			vals []float64
			mask []bool
			dims []int
		}{vals, mask, dims}
	}
	return out
}

func assertSame(t *testing.T, label string, got, want arraySet) {
	t.Helper()
	for name, w := range want {
		g := got[name]
		if len(g.vals) != len(w.vals) || fmt.Sprint(g.dims) != fmt.Sprint(w.dims) {
			t.Fatalf("%s: %s: shape %v/%d elems, want %v/%d", label, name, g.dims, len(g.vals), w.dims, len(w.vals))
		}
		for i := range w.vals {
			if g.mask[i] != w.mask[i] {
				t.Fatalf("%s: %s[%d]: written=%v, want %v", label, name, i, g.mask[i], w.mask[i])
			}
			if g.vals[i] != w.vals[i] {
				t.Fatalf("%s: %s[%d] = %v, want %v (backends disagree — determinacy violated)",
					label, name, i, g.vals[i], w.vals[i])
			}
		}
	}
}

func TestBackendAgreement(t *testing.T) {
	for _, k := range kernels.All() {
		t.Run(k.Name, func(t *testing.T) {
			t.Parallel()
			p, err := pods.Compile(k.File(), k.Source)
			if err != nil {
				t.Fatal(err)
			}
			args := k.Args(determinacyN)

			// Reference: the simulator at 1 PE (fully deterministic).
			ref, err := p.Simulate(pods.SimConfig{NumPEs: 1, PageElems: determinacyPage}, args...)
			if err != nil {
				t.Fatal(err)
			}
			want := gather(t, k, "sim@1", ref.Array)

			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			for _, pes := range determinacyPEs {
				sres, err := p.Simulate(pods.SimConfig{NumPEs: pes, PageElems: determinacyPage}, args...)
				if err != nil {
					t.Fatalf("sim@%d: %v", pes, err)
				}
				assertSame(t, fmt.Sprintf("sim@%d", pes), gather(t, k, "sim", sres.Array), want)

				rres, err := p.Execute(ctx, pods.RunConfig{VirtualPEs: pes, PageElems: determinacyPage}, args...)
				if err != nil {
					t.Fatalf("podsrt@%d: %v", pes, err)
				}
				assertSame(t, fmt.Sprintf("podsrt@%d", pes), gather(t, k, "podsrt", rres.Array), want)

				cres, err := p.ExecuteCluster(ctx, pods.ClusterConfig{NumPEs: pes, PageElems: determinacyPage}, args...)
				if err != nil {
					t.Fatalf("cluster@%d: %v", pes, err)
				}
				assertSame(t, fmt.Sprintf("cluster@%d", pes), gather(t, k, "cluster", cres.Array), want)

				// The steal-on column: dynamic SP migration must not be
				// observable in the results either.
				sres2, err := p.ExecuteCluster(ctx,
					pods.ClusterConfig{NumPEs: pes, PageElems: determinacyPage, Steal: true}, args...)
				if err != nil {
					t.Fatalf("cluster+steal@%d: %v", pes, err)
				}
				assertSame(t, fmt.Sprintf("cluster+steal@%d", pes), gather(t, k, "cluster+steal", sres2.Array), want)

				// The adapt-on column: Range Filter bounds moving between
				// sweeps must not be observable either — iterations only
				// change *where* they execute. The tight probe interval
				// makes rebinds actually land inside these tiny runs.
				ares, err := p.ExecuteCluster(ctx, pods.ClusterConfig{
					NumPEs: pes, PageElems: determinacyPage, Adapt: true,
					ProbeInterval: 20 * time.Microsecond,
				}, args...)
				if err != nil {
					t.Fatalf("cluster+adapt@%d: %v", pes, err)
				}
				assertSame(t, fmt.Sprintf("cluster+adapt@%d", pes), gather(t, k, "cluster+adapt", ares.Array), want)

				// And both dynamic mechanisms at once: rebound bounds with
				// in-flight steals.
				bres, err := p.ExecuteCluster(ctx, pods.ClusterConfig{
					NumPEs: pes, PageElems: determinacyPage, Adapt: true, Steal: true,
					ProbeInterval: 20 * time.Microsecond,
				}, args...)
				if err != nil {
					t.Fatalf("cluster+adapt+steal@%d: %v", pes, err)
				}
				assertSame(t, fmt.Sprintf("cluster+adapt+steal@%d", pes), gather(t, k, "cluster+adapt+steal", bres.Array), want)

				// The eviction column: a page-cache cap of two pages per
				// shard forces CLOCK evictions and refetches mid-run, which
				// must not be observable either (single assignment — a
				// refetched page carries the same immutable data).
				eres, err := p.ExecuteCluster(ctx, pods.ClusterConfig{
					NumPEs: pes, PageElems: determinacyPage, CachePages: 2,
				}, args...)
				if err != nil {
					t.Fatalf("cluster+evict@%d: %v", pes, err)
				}
				assertSame(t, fmt.Sprintf("cluster+evict@%d", pes), gather(t, k, "cluster+evict", eres.Array), want)

				// Eviction combined with stealing and adaptation: migrated
				// SPs refetching evicted pages while bounds rebind.
				ceres, err := p.ExecuteCluster(ctx, pods.ClusterConfig{
					NumPEs: pes, PageElems: determinacyPage, CachePages: 2,
					Adapt: true, Steal: true, ProbeInterval: 20 * time.Microsecond,
				}, args...)
				if err != nil {
					t.Fatalf("cluster+evict+adapt+steal@%d: %v", pes, err)
				}
				assertSame(t, fmt.Sprintf("cluster+evict+adapt+steal@%d", pes), gather(t, k, "cluster+evict+adapt+steal", ceres.Array), want)

				// The heat column: the unified page-heat machinery —
				// streaming prefetch, page-granular steal grants, the
				// adaptive cache cap, and rebind migration — moves pages
				// and work around, never results. The two-page floor makes
				// the governor and the prefetcher actually fire here.
				hres, err := p.ExecuteCluster(ctx, pods.ClusterConfig{
					NumPEs: pes, PageElems: determinacyPage, CachePages: 2,
					Heat: true, Adapt: true, Steal: true,
					ProbeInterval: 20 * time.Microsecond,
				}, args...)
				if err != nil {
					t.Fatalf("cluster+heat@%d: %v", pes, err)
				}
				assertSame(t, fmt.Sprintf("cluster+heat@%d", pes), gather(t, k, "cluster+heat", hres.Array), want)

				// The trace-on column: recording event rings and per-round
				// metric snapshots on top of every dynamic mechanism must not
				// perturb the computation — the trace frames are control-plane
				// (they never move the four-counter sums), and a small ring
				// exercises the drop-oldest path inside these runs too.
				tres, err := p.ExecuteCluster(ctx, pods.ClusterConfig{
					NumPEs: pes, PageElems: determinacyPage, CachePages: 2,
					Adapt: true, Steal: true, Recover: true,
					ProbeInterval: 20 * time.Microsecond,
					Trace:         true, TraceCap: 256,
				}, args...)
				if err != nil {
					t.Fatalf("cluster+trace@%d: %v", pes, err)
				}
				assertSame(t, fmt.Sprintf("cluster+trace@%d", pes), gather(t, k, "cluster+trace", tres.Array), want)
				if tr := tres.Trace(); tr == nil || tr.Events() == 0 {
					t.Fatalf("cluster+trace@%d: no trace events gathered", pes)
				}
			}
		})
	}
}

// TestClusterDeferredRemoteReadsObserved pins down that the mirror kernel
// actually exercises the remote deferred-read machinery at 4 PEs (the
// agreement above would be vacuous for the message paths otherwise).
func TestClusterDeferredRemoteReadsObserved(t *testing.T) {
	k, _ := kernels.ByName("mirror")
	p, err := pods.Compile(k.File(), k.Source)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := p.ExecuteCluster(ctx, pods.ClusterConfig{NumPEs: 4, PageElems: determinacyPage}, k.Args(16)...)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats()
	t.Logf("mirror@4PE: msgs=%d deferred=%d cacheHits=%d cacheMisses=%d",
		st.MsgsSent, st.DeferredReads, st.CacheHits, st.CacheMisses)
	if st.MsgsSent == 0 {
		t.Error("no inter-PE messages: the run was not distributed at all")
	}
	if st.CacheMisses == 0 {
		t.Error("no page fetches: remote reads never left the PE")
	}
	if st.DeferredReads == 0 {
		t.Error("no deferred reads: consumers never outran producers, so the remote deferred-read path is untested")
	}
}
