// Matmul: the paper's generic example (§5.2). A dense matrix multiply is
// written in Idlite with a loop-carried inner product; PODS distributes the
// outer loop over the rows of C (following C's partitioning) and keeps the
// k-loop serial. The example prints the speed-up curve and verifies the
// product numerically.
package main

import (
	"fmt"
	"log"

	pods "repro"
)

const src = `
func main(n: int) {
	A = array(n, n);
	B = array(n, n);
	for i = 1 to n {
		for j = 1 to n {
			A[i, j] = float(i + j);
			B[i, j] = float(i - j) * 0.5;
		}
	}
	C = array(n, n);
	for i2 = 1 to n {
		for j2 = 1 to n {
			s = 0.0;
			for k = 1 to n {
				next s = s + A[i2, k] * B[k, j2];
			}
			C[i2, j2] = s;
		}
	}
}
`

func main() {
	const n = 24
	p, err := pods.Compile("matmul.id", src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(p.PartitionReport())
	fmt.Println()

	var base float64
	for _, pes := range []int{1, 2, 4, 8, 16} {
		res, err := p.Simulate(pods.SimConfig{NumPEs: pes}, pods.Int(n))
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = res.Seconds()
		}
		fmt.Printf("%2d PEs: %9.3f ms   speed-up %5.2f   (local reads %d, remote %d, cache hits %d)\n",
			pes, res.Seconds()*1000, base/res.Seconds(),
			res.Counts.LocalReads, res.Counts.RemoteReads, res.Counts.CacheHits)

		// Verify against a plain Go multiply.
		vals, mask, _, err := res.Array("C")
		if err != nil {
			log.Fatal(err)
		}
		for i := 1; i <= n; i++ {
			for j := 1; j <= n; j++ {
				want := 0.0
				for k := 1; k <= n; k++ {
					want += float64(i+k) * float64(k-j) * 0.5
				}
				off := (i-1)*n + j - 1
				if !mask[off] || vals[off] != want {
					log.Fatalf("C[%d,%d] = %v (written=%v), want %v", i, j, vals[off], mask[off], want)
				}
			}
		}
	}
	fmt.Println("\nproduct verified against a native Go multiply at every PE count")
}
