// Simple: the paper's headline workload — the Lawrence Livermore SIMPLE
// hydrodynamics/heat-conduction benchmark (§5.2). This example compiles the
// Idlite SIMPLE source, shows the partitioner's decisions (which loops
// distribute and which sweeps stay serial), sweeps the PE axis like
// Figure 10, and validates the simulated physics against the native Go
// reference.
package main

import (
	"fmt"
	"log"
	"math"

	pods "repro"
	"repro/internal/simple"
)

func main() {
	const n = 32
	p, err := pods.Compile("simple.id", simple.Source)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(p.PartitionReport())
	fmt.Println()

	var base float64
	fmt.Printf("SIMPLE %dx%d (one cycle):\n", n, n)
	for _, pes := range []int{1, 2, 4, 8, 16, 32} {
		res, err := p.Simulate(pods.SimConfig{NumPEs: pes}, pods.Int(n))
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = res.Seconds()
		}
		fmt.Printf("%3d PEs: %9.2f ms   speed-up %5.2f   EU %5.1f%%\n",
			pes, res.Seconds()*1000, base/res.Seconds(), 100*res.Utilization("EU"))
	}

	// Validate the final temperature field against the native reference.
	res, err := p.Simulate(pods.SimConfig{NumPEs: 16}, pods.Int(n))
	if err != nil {
		log.Fatal(err)
	}
	ref := simple.NewGrid(n)
	ref.Step()
	vals, mask, _, err := res.Array("t2")
	if err != nil {
		log.Fatal(err)
	}
	worst := 0.0
	for i := range vals {
		if !mask[i] {
			log.Fatalf("t2[%d] never written", i)
		}
		if d := math.Abs(vals[i] - ref.T2[i]); d > worst {
			worst = d
		}
	}
	fmt.Printf("\nfinal temperature field matches the native reference (max |Δ| = %.2e)\n", worst)
}
