// Heat: an explicit Jacobi heat-diffusion step — the classic "parallel
// stencil" workload the paper's introduction motivates. Reading the old
// field and writing the new one gives a loop nest with no loop-carried
// dependencies, so PODS distributes the row loop; neighbour reads at
// segment boundaries exercise the remote page cache.
package main

import (
	"fmt"
	"log"

	pods "repro"
)

const src = `
func main(n: int) {
	T0 = array(n, n);
	for i = 1 to n {
		for j = 1 to n {
			hot = if i == 1 then 10.0 else 0.0;
			T0[i, j] = hot + float(j) * 0.01;
		}
	}
	# A fixed number of Jacobi sweeps; single assignment means each step
	# writes a fresh field (step count is small and static here).
	T1 = array(n, n);
	step(n, T0, T1);
	T2 = array(n, n);
	step(n, T1, T2);
	T3 = array(n, n);
	step(n, T2, T3);
}

func step(n: int, old: array2, new: array2) {
	for i = 1 to n {
		for j = 1 to n {
			up    = if i == 1 then old[i, j] else old[i - 1, j];
			down  = if i == n then old[i, j] else old[i + 1, j];
			left  = if j == 1 then old[i, j] else old[i, j - 1];
			right = if j == n then old[i, j] else old[i, j + 1];
			new[i, j] = 0.25 * (up + down + left + right);
		}
	}
}
`

func main() {
	const n = 32
	p, err := pods.Compile("heat.id", src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(p.PartitionReport())
	fmt.Println()

	var base float64
	for _, pes := range []int{1, 4, 16} {
		res, err := p.Simulate(pods.SimConfig{NumPEs: pes}, pods.Int(n))
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = res.Seconds()
		}
		fmt.Printf("%2d PEs: %9.3f ms   speed-up %5.2f   pages shipped %d, cache hits %d\n",
			pes, res.Seconds()*1000, base/res.Seconds(),
			res.Counts.PageMsgs, res.Counts.CacheHits)
	}

	// The three chained steps synchronize purely through I-structure
	// element availability — no barriers anywhere. Check conservation-ish
	// sanity: the final field is finite and bounded by the initial extremes.
	res, err := p.Simulate(pods.SimConfig{NumPEs: 8}, pods.Int(n))
	if err != nil {
		log.Fatal(err)
	}
	vals, mask, _, err := res.Array("T3")
	if err != nil {
		log.Fatal(err)
	}
	min, max := vals[0], vals[0]
	for i, v := range vals {
		if !mask[i] {
			log.Fatalf("T3[%d] never written", i)
		}
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	fmt.Printf("\nafter 3 sweeps: min %.4f, max %.4f (bounded by initial 0..10.32)\n", min, max)
	if min < 0 || max > 10.32 {
		log.Fatal("diffusion must not create new extremes")
	}
}
