// Pipeline: PODS has no barriers — consecutive phases synchronize element
// by element through I-structure availability. Whenever an SP blocks (here:
// the producer waits for an equation-of-state function result on every
// element), the PE switches to another ready SP — including *consumer*
// iterations of the next phase. Consumers therefore run ahead of producers
// and hit not-yet-written elements; the I-structure memory queues those
// reads and releases them when the write lands. The deferred-read count is
// direct, machine-checked evidence of cross-phase overlap that a
// bulk-synchronous system (barrier between phases) has at exactly zero.
package main

import (
	"fmt"
	"log"
	"math"

	pods "repro"
)

const src = `
# An "expensive" per-element model evaluation: the call makes the producer
# block on each element, letting other SPs (including phase-2 consumers)
# use the Execution Unit meanwhile.
func model(x: float) -> float {
	return sqrt(x * x + 1.0) * 0.5;
}

func main(n: int) {
	# Phase 1: produce A (row-distributed), one model() call per element.
	A = array(n, n);
	for i = 1 to n {
		for j = 1 to n {
			A[i, j] = model(float(i + j));
		}
	}
	# Phase 2: consume A into B element-wise with a left neighbour.
	B = array(n, n);
	for i2 = 1 to n {
		for j2 = 1 to n {
			left = if j2 == 1 then A[i2, j2] else A[i2, j2 - 1];
			B[i2, j2] = A[i2, j2] + 0.5 * left;
		}
	}
	# Phase 3: reduce each row of B.
	R = array(n);
	for i3 = 1 to n {
		s = 0.0;
		for k = 1 to n {
			next s = s + B[i3, k];
		}
		R[i3] = s;
	}
}
`

func main() {
	const n = 32
	p, err := pods.Compile("pipeline.id", src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(p.PartitionReport())
	fmt.Println()

	for _, pes := range []int{1, 4, 16} {
		res, err := p.Simulate(pods.SimConfig{NumPEs: pes}, pods.Int(n))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%2d PEs: %9.3f ms   deferred reads %5d   ctx switches %6d\n",
			pes, res.Seconds()*1000, res.Counts.DeferredReads, res.Counts.CtxSwitches)
	}

	// Verify the final reduction against plain Go.
	res, err := p.Simulate(pods.SimConfig{NumPEs: 8}, pods.Int(n))
	if err != nil {
		log.Fatal(err)
	}
	if res.Counts.DeferredReads == 0 {
		log.Fatal("expected consumers to outrun producers (deferred reads > 0)")
	}
	rvals, mask, _, err := res.Array("R")
	if err != nil {
		log.Fatal(err)
	}
	model := func(x float64) float64 { return math.Sqrt(x*x+1.0) * 0.5 }
	a := func(i, j int) float64 { return model(float64(i + j)) }
	for i := 1; i <= n; i++ {
		want := 0.0
		for j := 1; j <= n; j++ {
			left := a(i, j)
			if j > 1 {
				left = a(i, j-1)
			}
			want += a(i, j) + 0.5*left
		}
		if !mask[i-1] || rvals[i-1] != want {
			log.Fatalf("R[%d]=%v (written=%v), want %v", i, rvals[i-1], mask[i-1], want)
		}
	}
	fmt.Println("\nrow reductions verified against plain Go")
	fmt.Println("deferred reads > 0: phase-2/3 consumers were queued on elements their")
	fmt.Println("producers had not written yet — the phases truly overlap, no barriers")
}
