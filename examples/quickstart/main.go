// Quickstart: compile a tiny single-assignment (Idlite) program through the
// PODS pipeline, simulate it on a distributed-memory machine, and run the
// same binary program for real on goroutines.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	pods "repro"
)

const src = `
# Fill a matrix in parallel, then sum its diagonal sequentially.
func main(n: int) -> float {
	A = array(n, n);
	for i = 1 to n {
		for j = 1 to n {
			A[i, j] = float(i) * 0.5 + float(j);
		}
	}
	s = 0.0;
	for k = 1 to n {
		next s = s + A[k, k];
	}
	return s;
}
`

func main() {
	p, err := pods.Compile("quickstart.id", src)
	if err != nil {
		log.Fatal(err)
	}

	// What did the partitioner decide? The fill loop distributes with a
	// row Range Filter; the diagonal sum is loop-carried and stays serial.
	fmt.Print(p.PartitionReport())

	// Simulate on 1 and on 8 iPSC/2-like PEs.
	for _, pes := range []int{1, 8} {
		res, err := p.Simulate(pods.SimConfig{NumPEs: pes}, pods.Int(64))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%d PE(s): virtual time %8.3f ms, result %v\n",
			pes, res.Seconds()*1000, res.MainValue.F)
		fmt.Printf("         %s\n", res)
	}

	// Run the same SP program natively on goroutines.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	out, err := p.Execute(ctx, pods.RunConfig{VirtualPEs: 4}, pods.Int(64))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ngoroutine runtime result: %v (must match the simulator)\n", out.Value.F)
}
