package pods_test

import (
	"fmt"

	pods "repro"
)

// ExampleCompile shows the three-line path from Idlite source to a
// simulated distributed run.
func ExampleCompile() {
	p, err := pods.Compile("demo.id", `
func main(n: int) -> int {
	s = 0;
	for k = 1 to n {
		next s = s + k;
	}
	return s;
}`)
	if err != nil {
		fmt.Println(err)
		return
	}
	res, err := p.Simulate(pods.SimConfig{NumPEs: 4}, pods.Int(100))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(res.MainValue.I)
	// Output: 5050
}

// ExampleProgram_Simulate reads back an I-structure array after a
// distributed fill.
func ExampleProgram_Simulate() {
	p := pods.MustCompile("fill.id", `
func main(n: int) {
	A = array(n);
	for i = 1 to n {
		A[i] = float(i * i);
	}
}`)
	res, err := p.Simulate(pods.SimConfig{NumPEs: 2}, pods.Int(4))
	if err != nil {
		fmt.Println(err)
		return
	}
	vals, _, dims, _ := res.Array("A")
	fmt.Println(dims, vals)
	// Output: [4] [1 4 9 16]
}

// ExampleProgram_PartitionReport shows the partitioner's §4.2.4 decisions:
// the fill loop distributes with a row Range Filter, the carried-scalar
// reduction stays serial.
func ExampleProgram_PartitionReport() {
	p := pods.MustCompile("mix.id", `
func main(n: int) -> float {
	A = array(n, n);
	for i = 1 to n {
		for j = 1 to n {
			A[i, j] = float(i + j);
		}
	}
	s = 0.0;
	for k = 1 to n {
		next s = s + A[k, k];
	}
	return s;
}`)
	fmt.Print(p.PartitionReport())
	// Output:
	// partition: 1 distributing allocates
	//   distribute main.i.L4 over i (RF=row on "A")
	//   serialize  main.k.L10 (LCD at k)
}
