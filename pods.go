// Package pods is a reproduction of PODS — the Process-Oriented Dataflow
// System of Bic, Roy & Nagel, "Exploiting Iteration-Level Parallelism in
// Dataflow Programs" (UC Irvine TR 91-57 / ICDCS 1992).
//
// PODS executes single-assignment (Id Nouveau-style) programs on a
// conventional distributed-memory multiprocessor by grouping dataflow
// instructions into sequential light-weight Subcompact Processes (SPs) and
// distributing loop iterations to follow the data: arrays are paged and
// spread over the PEs, distributed loops are spawned on every PE with the
// distributing L operator, and a Range Filter clamps each copy's index
// range to its PE's area of responsibility.
//
// The package front door:
//
//	p, err := pods.Compile("prog.id", src)         // Idlite → partitioned SPs
//	res, err := p.Simulate(pods.SimConfig{NumPEs: 32}, pods.Int(64))
//	fmt.Println(res)                                // virtual time + unit stats
//	vals, _, dims, err := res.Array("A")            // I-structure contents
//
// Simulate runs the instruction-level machine simulator parameterized with
// the paper's measured iPSC/2 timings; Execute runs the same program for
// real on goroutines over one shared I-structure store; ExecuteCluster runs
// it on a message-passing distributed-memory runtime whose PEs share
// nothing and can even be separate OS processes (see cmd/podsd). See
// DESIGN.md for the system inventory, the backend matrix, and the
// experiment index.
package pods

import (
	"context"
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/cluster/trace"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/isa"
	"repro/internal/podsrt"
	"repro/internal/sim"
)

// Value is a dataflow token value (program argument or result).
type Value = isa.Value

// Int builds an integer argument.
func Int(v int64) Value { return isa.Int(v) }

// Float builds a floating-point argument.
func Float(v float64) Value { return isa.Float(v) }

// SimConfig parameterizes the machine simulator. See sim.Config for the
// full documentation of every knob.
type SimConfig = sim.Config

// RunConfig parameterizes the goroutine runtime.
type RunConfig = podsrt.Config

// ClusterConfig parameterizes the message-passing cluster runtime.
type ClusterConfig = cluster.Config

// GraphBuilder constructs dataflow programs directly (the API the Idlite
// frontend itself uses).
type GraphBuilder = graph.Builder

// NewGraphBuilder returns an empty dataflow-program builder.
func NewGraphBuilder() *graph.Builder { return graph.NewBuilder() }

// Program is a compiled and partitioned PODS program.
type Program struct {
	sys *core.System
}

// Compile compiles Idlite source through the full PODS pipeline
// (frontend → dataflow graph → Translator → Partitioner).
func Compile(filename, src string) (*Program, error) {
	sys, err := core.CompileSource(filename, src, core.Options{})
	if err != nil {
		return nil, err
	}
	return &Program{sys: sys}, nil
}

// CompileCentralized compiles without loop distribution (every SP runs on
// the spawning PE) — useful for ablation studies.
func CompileCentralized(filename, src string) (*Program, error) {
	sys, err := core.CompileSource(filename, src, core.Options{DisableDistribution: true})
	if err != nil {
		return nil, err
	}
	return &Program{sys: sys}, nil
}

// FromGraph compiles a builder-constructed dataflow program.
func FromGraph(b *graph.Builder) (*Program, error) {
	gp, err := b.Program()
	if err != nil {
		return nil, err
	}
	sys, err := core.CompileGraph(gp, core.Options{})
	if err != nil {
		return nil, err
	}
	return &Program{sys: sys}, nil
}

// Listing disassembles the partitioned Subcompact Processes.
func (p *Program) Listing() string { return p.sys.Listing() }

// PartitionReport describes the partitioner's distribution decisions.
func (p *Program) PartitionReport() string { return p.sys.Report.String() }

// SimResult is a completed simulation plus access to the machine's final
// I-structure memory.
type SimResult struct {
	*sim.Result
	machine *sim.Machine
}

// Array gathers a named array written by the program: values, a
// written-mask, and the array dimensions.
func (r *SimResult) Array(name string) (vals []float64, mask []bool, dims []int, err error) {
	return r.machine.ReadArray(name)
}

// Arrays lists the names of all arrays the program allocated.
func (r *SimResult) Arrays() []string { return r.machine.ArrayNames() }

// Simulate runs the program on the simulated PODS multiprocessor.
func (p *Program) Simulate(cfg SimConfig, args ...Value) (*SimResult, error) {
	res, m, err := p.sys.Simulate(cfg, args...)
	if err != nil {
		return nil, err
	}
	return &SimResult{Result: res, machine: m}, nil
}

// ExecResult is a completed native (goroutine) run.
type ExecResult struct {
	// Value is the program's returned value (nil for void main).
	Value *Value
	rt    *podsrt.Runtime
}

// Array gathers a named array written by the program.
func (r *ExecResult) Array(name string) (vals []float64, mask []bool, dims []int, err error) {
	return r.rt.ReadArray(name)
}

// Execute runs the program for real on goroutines (one per SP). The context
// bounds the run; a deadlocked dataflow program is reported when it expires.
func (p *Program) Execute(ctx context.Context, cfg RunConfig, args ...Value) (*ExecResult, error) {
	v, rt, err := p.sys.Execute(ctx, cfg, args...)
	if err != nil {
		return nil, err
	}
	return &ExecResult{Value: v, rt: rt}, nil
}

// ClusterTrace is a cluster run's gathered observability data (per-PE
// event streams plus the per-probe-round metrics timeline).
type ClusterTrace = trace.Trace

// ClusterPEStat is one worker's counter breakdown from a cluster run.
type ClusterPEStat = cluster.PEStat

// ClusterResult is a completed distributed-memory (message-passing) run.
type ClusterResult struct {
	// Value is the program's returned value (nil for void main).
	Value *Value
	res   *cluster.Result

	// tmplName labels SP templates in trace exports.
	tmplName func(tmpl int64) string
}

// Array gathers a named array written by the program.
func (r *ClusterResult) Array(name string) (vals []float64, mask []bool, dims []int, err error) {
	return r.res.ReadArray(name)
}

// Arrays lists the names of all arrays the program allocated.
func (r *ClusterResult) Arrays() []string { return r.res.ArrayNames() }

// Stats reports cluster-wide dynamic counts (messages, deferred reads,
// page-cache traffic, steals).
func (r *ClusterResult) Stats() cluster.Stats { return r.res.Stats }

// PEInstrs reports each worker's executed-instruction count — the per-PE
// load distribution, e.g. for judging how well work stealing rebalanced a
// skewed kernel.
func (r *ClusterResult) PEInstrs() []int64 { return append([]int64(nil), r.res.PEInstrs...) }

// PEStats reports each worker's full counter breakdown — the per-PE
// decomposition of Stats, so balance and locality claims are checkable per
// worker rather than only as cluster-wide sums.
func (r *ClusterResult) PEStats() []ClusterPEStat {
	return append([]ClusterPEStat(nil), r.res.PEStats...)
}

// Trace returns the run's observability data, or nil when the run was not
// traced (ClusterConfig.Trace unset).
func (r *ClusterResult) Trace() *ClusterTrace { return r.res.Trace }

// WriteChromeTrace renders the run's trace in the Chrome trace_event JSON
// array format — load the file at https://ui.perfetto.dev (or
// chrome://tracing) to browse per-PE SP execution slices, steal and page
// traffic, and utilization counter tracks.
func (r *ClusterResult) WriteChromeTrace(w io.Writer) error {
	if r.res.Trace == nil {
		return fmt.Errorf("pods: run was not traced (set ClusterConfig.Trace)")
	}
	return trace.WriteChrome(w, r.res.Trace, r.tmplName)
}

// WriteTimelineCSV renders the run's per-probe-round metrics timeline as
// CSV (one row per round per PE).
func (r *ClusterResult) WriteTimelineCSV(w io.Writer) error {
	if r.res.Trace == nil || r.res.Trace.Timeline == nil {
		return fmt.Errorf("pods: run was not traced (set ClusterConfig.Trace)")
	}
	return trace.WriteTimelineCSV(w, r.res.Trace.Timeline)
}

// ExecuteCluster runs the program on the message-passing distributed-memory
// runtime: cfg.NumPEs share-nothing workers over an in-process channel
// transport, or — when cfg.Workers lists addresses — TCP workers running as
// separate processes (`podsd -worker`). The context bounds the run; a
// deadlocked dataflow program is reported when it expires.
func (p *Program) ExecuteCluster(ctx context.Context, cfg ClusterConfig, args ...Value) (*ClusterResult, error) {
	res, err := p.sys.ExecuteCluster(ctx, cfg, args...)
	if err != nil {
		return nil, err
	}
	prog := p.sys.Program
	name := func(tmpl int64) string {
		if t := prog.Template(int(tmpl)); t != nil {
			return t.Name
		}
		return ""
	}
	return &ClusterResult{Value: res.Value, res: res, tmplName: name}, nil
}

// ClusterFleet is a persistent message-passing cluster: the workers come
// up once and stay up across any number of jobs, submitted concurrently
// from any goroutine. Each job gets its own isolated worker instances
// (I-structure shards, run queues, recovery logs, trace rings) keyed by a
// job ID, so concurrent jobs cannot observe each other. ExecuteCluster is
// the one-shot special case: open, submit one job, close.
type ClusterFleet struct {
	f *cluster.Fleet
}

// OpenClusterFleet brings a persistent fleet up. cfg fixes the transport
// (in-process channel workers, or TCP when cfg.Workers lists addresses),
// the PE count, and the concurrent-job cap (cfg.MaxJobs); scheduling
// knobs and budgets are chosen per job at Submit time.
func OpenClusterFleet(ctx context.Context, cfg ClusterConfig) (*ClusterFleet, error) {
	f, err := cluster.OpenFleet(ctx, cfg)
	if err != nil {
		return nil, err
	}
	return &ClusterFleet{f: f}, nil
}

// Submit runs one program on the fleet and waits for its result. Safe for
// concurrent use; each call is an isolated job. cfg supplies the job's
// scheduling knobs, geometry, and budgets (ClusterConfig.MaxInstrs,
// MaxElems) — transport fields come from the fleet.
func (f *ClusterFleet) Submit(ctx context.Context, p *Program, cfg ClusterConfig, args ...Value) (*ClusterResult, error) {
	res, err := f.f.Submit(ctx, p.sys.Program, cfg, args...)
	if err != nil {
		return nil, err
	}
	prog := p.sys.Program
	name := func(tmpl int64) string {
		if t := prog.Template(int(tmpl)); t != nil {
			return t.Name
		}
		return ""
	}
	return &ClusterResult{Value: res.Value, res: res, tmplName: name}, nil
}

// Close shuts the fleet down. Jobs still in flight fail; Close is
// idempotent.
func (f *ClusterFleet) Close() error { return f.f.Close() }

// MustCompile is Compile that panics on error (for examples and tests).
func MustCompile(filename, src string) *Program {
	p, err := Compile(filename, src)
	if err != nil {
		panic(fmt.Sprintf("pods: %v", err))
	}
	return p
}
