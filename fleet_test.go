// Concurrent-jobs determinacy: many programs running at once on one
// persistent fleet must each produce exactly the arrays they produce when
// run alone. The fleet multiplexes every job over the same workers and
// wires, so this is the end-to-end check that job-keyed state (shards,
// run queues, termination counters, recovery logs, trace rings) really
// isolates tenants — any cross-job leak shows up as a bitwise diff.
package pods_test

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	pods "repro"
	"repro/internal/kernels"
)

// fleetJobColumns are the per-job knob sets submitted concurrently: the
// static scheduler, and every dynamic mechanism at once (migrating SPs,
// rebinding Range Filter bounds, CLOCK-evicting cached pages, recording
// trace rings) — each job must still match its own solo run bit for bit.
var fleetJobColumns = []struct {
	label string
	cfg   pods.ClusterConfig
}{
	{"static", pods.ClusterConfig{PageElems: determinacyPage}},
	{"steal+adapt+evict+trace", pods.ClusterConfig{
		PageElems: determinacyPage, CachePages: 2,
		Steal: true, Adapt: true, ProbeInterval: 20 * time.Microsecond,
		Trace: true, TraceCap: 256,
	}},
	{"heat+steal+adapt+evict", pods.ClusterConfig{
		PageElems: determinacyPage, CachePages: 2, Heat: true,
		Steal: true, Adapt: true, ProbeInterval: 20 * time.Microsecond,
	}},
}

func TestBackendAgreementConcurrentJobs(t *testing.T) {
	const fleetPEs = 4
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// Solo references first: each kernel × column on its own one-shot
	// cluster (ExecuteCluster is itself a single-job fleet).
	type jobCase struct {
		k     kernels.Kernel
		p     *pods.Program
		label string
		cfg   pods.ClusterConfig
		want  arraySet
	}
	var cases []jobCase
	for _, k := range kernels.All() {
		p, err := pods.Compile(k.File(), k.Source)
		if err != nil {
			t.Fatal(err)
		}
		for _, col := range fleetJobColumns {
			solo, err := p.ExecuteCluster(ctx, withPEs(col.cfg, fleetPEs), k.Args(determinacyN)...)
			if err != nil {
				t.Fatalf("solo %s/%s: %v", k.Name, col.label, err)
			}
			cases = append(cases, jobCase{
				k: k, p: p, label: k.Name + "/" + col.label, cfg: col.cfg,
				want: gather(t, k, "solo "+k.Name, solo.Array),
			})
		}
	}

	// One fleet, every job in flight at once.
	fleet, err := pods.OpenClusterFleet(ctx, pods.ClusterConfig{
		NumPEs: fleetPEs, MaxJobs: len(cases) + 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	var wg sync.WaitGroup
	errs := make([]error, len(cases))
	results := make([]*pods.ClusterResult, len(cases))
	for i := range cases {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := cases[i]
			results[i], errs[i] = fleet.Submit(ctx, c.p, c.cfg, c.k.Args(determinacyN)...)
		}(i)
	}
	wg.Wait()

	for i, c := range cases {
		if errs[i] != nil {
			t.Fatalf("fleet %s: %v", c.label, errs[i])
		}
		assertSame(t, "fleet "+c.label, gather(t, c.k, c.label, results[i].Array), c.want)
		if c.cfg.Trace {
			if tr := results[i].Trace(); tr == nil || tr.Events() == 0 {
				t.Errorf("fleet %s: no trace events gathered", c.label)
			}
		}
	}
}

// TestFleetBudgetRejectionIsolation pins the admission-control contract:
// an over-budget job fails with a budget error while neighbors submitted
// concurrently to the same fleet still match their solo runs exactly.
func TestFleetBudgetRejectionIsolation(t *testing.T) {
	const fleetPEs = 4
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	k, _ := kernels.ByName("matmul")
	p, err := pods.Compile(k.File(), k.Source)
	if err != nil {
		t.Fatal(err)
	}
	cfg := pods.ClusterConfig{PageElems: determinacyPage}
	solo, err := p.ExecuteCluster(ctx, withPEs(cfg, fleetPEs), k.Args(determinacyN)...)
	if err != nil {
		t.Fatal(err)
	}
	want := gather(t, k, "solo", solo.Array)

	fleet, err := pods.OpenClusterFleet(ctx, pods.ClusterConfig{NumPEs: fleetPEs})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	const neighbors = 3
	var wg sync.WaitGroup
	errs := make([]error, neighbors)
	results := make([]*pods.ClusterResult, neighbors)
	for i := 0; i < neighbors; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = fleet.Submit(ctx, p, cfg, k.Args(determinacyN)...)
		}(i)
	}
	// Concurrently, a job whose element budget cannot even hold one of
	// matmul's arrays: it must fail — with a budget error, not a hang or
	// a transport error — without touching the neighbors.
	over := cfg
	over.MaxElems = 1
	_, err = fleet.Submit(ctx, p, over, k.Args(determinacyN)...)
	if err == nil {
		t.Fatal("over-budget job succeeded; want a budget rejection")
	}
	if !strings.Contains(err.Error(), "budget") {
		t.Fatalf("over-budget job failed with %v; want a budget error", err)
	}
	wg.Wait()
	for i := 0; i < neighbors; i++ {
		if errs[i] != nil {
			t.Fatalf("neighbor %d: %v", i, errs[i])
		}
		assertSame(t, fmt.Sprintf("neighbor %d", i), gather(t, k, "neighbor", results[i].Array), want)
	}
}

// withPEs returns cfg with the PE count set (solo-run helper; fleet
// submissions inherit the count from the fleet instead).
func withPEs(cfg pods.ClusterConfig, pes int) pods.ClusterConfig {
	cfg.NumPEs = pes
	return cfg
}
